// Benchmark harness: one benchmark per table and figure of the reproduced
// evaluation (see the experiment index in DESIGN.md). Each benchmark
// regenerates its artifact at full scale and prints it once, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's tables and figures end to end. Characterizations
// are cached in a shared runner, so artifacts that draw on the same
// application run it only once.
package commchar_test

import (
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	"commchar/internal/apps"
	"commchar/internal/experiments"
	"commchar/internal/pipeline"
)

const benchProcs = 16

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

func benchRunner() *experiments.Runner {
	runnerOnce.Do(func() {
		runner = experiments.NewRunner(apps.ScaleFull)
	})
	return runner
}

// artifact runs the generator once with output to stdout, then re-runs it
// (cached) for the remaining iterations.
func artifact(b *testing.B, banner string, fn func(w io.Writer) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		w := io.Discard
		if i == 0 {
			w = os.Stdout
			os.Stdout.WriteString("\n######## " + banner + " ########\n")
		}
		if err := fn(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1ApplicationSuite(b *testing.B) {
	r := benchRunner()
	artifact(b, "Table 1", func(w io.Writer) error { return r.Table1(w, benchProcs) })
}

func BenchmarkTable2InterarrivalSharedMemory(b *testing.B) {
	r := benchRunner()
	artifact(b, "Table 2", func(w io.Writer) error { return r.Table2(w, benchProcs) })
}

func BenchmarkTable3InterarrivalMessagePassing(b *testing.B) {
	r := benchRunner()
	artifact(b, "Table 3", func(w io.Writer) error { return r.Table3(w, benchProcs) })
}

func BenchmarkTable4MessageVolume(b *testing.B) {
	r := benchRunner()
	artifact(b, "Table 4", func(w io.Writer) error { return r.Table4(w, benchProcs) })
}

func BenchmarkTable5Locality(b *testing.B) {
	r := benchRunner()
	artifact(b, "Table 5", func(w io.Writer) error { return r.Table5(w, benchProcs) })
}

func BenchmarkTable6PerPhase(b *testing.B) {
	r := benchRunner()
	artifact(b, "Table 6", func(w io.Writer) error { return r.Table6(w, benchProcs) })
}

func BenchmarkTable7ExecutionProfiles(b *testing.B) {
	r := benchRunner()
	artifact(b, "Table 7", func(w io.Writer) error { return r.Table7(w, benchProcs) })
}

func BenchmarkFigureInterarrivalSharedMemory(b *testing.B) {
	r := benchRunner()
	artifact(b, "Figure: inter-arrival CDFs (shared memory)", func(w io.Writer) error {
		return r.FigureInterarrivalSM(w, benchProcs)
	})
}

func BenchmarkFigureSpatialSharedMemory(b *testing.B) {
	r := benchRunner()
	artifact(b, "Figure: spatial distributions (shared memory, 8 procs)", func(w io.Writer) error {
		return r.FigureSpatialSM(w)
	})
}

func BenchmarkFigureSpatialMessagePassing(b *testing.B) {
	r := benchRunner()
	artifact(b, "Figure: spatial distributions (message passing, 8 procs)", func(w io.Writer) error {
		return r.FigureSpatialMP(w)
	})
}

func BenchmarkFigureVolumeMessagePassing(b *testing.B) {
	r := benchRunner()
	artifact(b, "Figure: message volume distributions (message passing)", func(w io.Writer) error {
		return r.FigureVolumeMP(w)
	})
}

func BenchmarkFigureRateOverTime(b *testing.B) {
	r := benchRunner()
	artifact(b, "Figure: generation rate over time", func(w io.Writer) error {
		return r.FigureRateOverTime(w, benchProcs)
	})
}

func BenchmarkFigureLatencyLoad(b *testing.B) {
	r := benchRunner()
	artifact(b, "Figure: latency vs offered load", func(w io.Writer) error {
		return r.FigureLatencyLoad(w, benchProcs)
	})
}

func BenchmarkFigureAnalyticModel(b *testing.B) {
	r := benchRunner()
	artifact(b, "Figure: analytic model validation", func(w io.Writer) error {
		return r.FigureAnalyticModel(w, benchProcs)
	})
}

func BenchmarkFigureSyntheticValidation(b *testing.B) {
	r := benchRunner()
	artifact(b, "Figure: synthetic-traffic validation", func(w io.Writer) error {
		return r.FigureSyntheticValidation(w, benchProcs)
	})
}

func BenchmarkAblationContention(b *testing.B) {
	r := benchRunner()
	artifact(b, "Ablation: mesh contention", func(w io.Writer) error {
		return r.AblationContention(w, benchProcs)
	})
}

func BenchmarkAblationVirtualChannels(b *testing.B) {
	r := benchRunner()
	artifact(b, "Ablation: virtual channels", func(w io.Writer) error {
		return r.AblationVirtualChannels(w)
	})
}

func BenchmarkAblationCacheGeometry(b *testing.B) {
	r := benchRunner()
	artifact(b, "Ablation: cache geometry", func(w io.Writer) error {
		return r.AblationCacheGeometry(w, benchProcs)
	})
}

func BenchmarkAblationBarrier(b *testing.B) {
	r := benchRunner()
	artifact(b, "Ablation: barrier algorithm", func(w io.Writer) error {
		return r.AblationBarrier(w, benchProcs)
	})
}

func BenchmarkAblationTopology(b *testing.B) {
	r := benchRunner()
	artifact(b, "Ablation: topology", func(w io.Writer) error {
		return r.AblationTopology(w)
	})
}

func BenchmarkAblationProtocol(b *testing.B) {
	r := benchRunner()
	artifact(b, "Ablation: coherence protocol", func(w io.Writer) error {
		return r.AblationProtocol(w, benchProcs)
	})
}

func BenchmarkAblationRouting(b *testing.B) {
	r := benchRunner()
	artifact(b, "Ablation: routing algorithm", func(w io.Writer) error {
		return r.AblationRouting(w, benchProcs)
	})
}

// ---------------------------------------------------------------------------
// Pipeline benchmarks: the engine's worker pool and caches over the whole
// 7-application suite (small scale, 8 processors). Cold benchmarks build a
// fresh engine per iteration, so every run simulates; on a machine with >= 4
// cores the parallel cold sweep should finish at least ~2x faster than the
// sequential one (runs are independent and CPU-bound).

// pipelineSuite characterizes every suite application through the engine.
func pipelineSuite(b *testing.B, eng *pipeline.Engine) {
	b.Helper()
	names := []string{"1D-FFT", "IS", "Cholesky", "Nbody", "Maxflow", "3D-FFT", "MG"}
	specs := make([]pipeline.RunSpec, len(names))
	for i, n := range names {
		specs[i] = pipeline.RunSpec{App: n, Procs: 8, Scale: apps.ScaleSmall}
	}
	if _, err := eng.RunAll(specs...); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPipelineColdSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, err := pipeline.New(pipeline.Options{Parallel: 1})
		if err != nil {
			b.Fatal(err)
		}
		pipelineSuite(b, eng)
	}
}

func BenchmarkPipelineColdParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, err := pipeline.New(pipeline.Options{Parallel: runtime.GOMAXPROCS(0)})
		if err != nil {
			b.Fatal(err)
		}
		pipelineSuite(b, eng)
	}
}

func BenchmarkPipelineWarmMemory(b *testing.B) {
	eng := pipeline.NewDefault()
	pipelineSuite(b, eng) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipelineSuite(b, eng)
	}
}

func BenchmarkPipelineWarmDisk(b *testing.B) {
	dir := b.TempDir()
	prime, err := pipeline.New(pipeline.Options{CacheDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	pipelineSuite(b, prime) // prime the on-disk cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh engine per iteration: every artifact loads from disk.
		eng, err := pipeline.New(pipeline.Options{CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		pipelineSuite(b, eng)
		if eng.Metrics().Runs.Load() != 0 {
			b.Fatalf("warm-disk iteration executed %d simulations", eng.Metrics().Runs.Load())
		}
	}
}
