// Quickstart: characterize one application's communication in a few lines.
//
// The pipeline is the paper's dynamic strategy end to end: the 1D-FFT
// kernel executes on a simulated 16-processor CC-NUMA machine, every cache
// miss and synchronization event travels a wormhole-routed 2-D mesh, and
// the network log is reduced to closed-form temporal, spatial, and volume
// models.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"commchar/internal/apps/fft1d"
	"commchar/internal/core"
	"commchar/internal/report"
	"commchar/internal/spasm"
)

func main() {
	c, err := core.CharacterizeSharedMemory("1D-FFT", 16, func(m *spasm.Machine) error {
		cfg := fft1d.DefaultConfig()
		cfg.Points = 4096
		_, err := fft1d.Run(m, cfg)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	report.Render(os.Stdout, c)

	best := c.BestAggregate()
	fmt.Printf("\nSummary: %d messages; inter-arrival times follow %s (R²=%.4f);\n",
		c.Messages, best.Dist, best.R2)
	pattern, n := c.DominantSpatial()
	fmt.Printf("dominant spatial pattern: %s (%d of %d sources); mean message %.1f bytes.\n",
		pattern, n, c.Procs, c.Volume.Mean)
}
