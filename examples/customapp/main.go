// Custom-application scenario: characterize YOUR code. This example shows
// the whole public surface needed to put a new shared-memory kernel under
// the methodology: allocate shared arrays, express the algorithm with
// Read/Write/Compute/Lock/Barrier, and hand the machine to the analyzer.
//
// The kernel here is a pipelined producer-consumer ring: each processor
// repeatedly writes a block that its right neighbour reads — a workload
// with a strongly structured spatial pattern that none of the paper's
// seven applications exhibits, demonstrating that the methodology (not
// just the suite) is what this library ships.
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"
	"os"

	"commchar/internal/core"
	"commchar/internal/report"
	"commchar/internal/sim"
	"commchar/internal/spasm"
)

func main() {
	const procs = 8
	const blocks = 64
	const rounds = 30

	c, err := core.CharacterizeSharedMemory("ring", procs, func(m *spasm.Machine) error {
		// One block of 64 doubles per processor.
		buffers := make([]spasm.Array, procs)
		for i := range buffers {
			buffers[i] = m.NewArray(blocks, 8)
		}
		_, err := m.Run(func(e *spasm.Env) {
			left := (e.ID() - 1 + procs) % procs
			for r := 0; r < rounds; r++ {
				// Produce: fill my buffer.
				for b := 0; b < blocks; b++ {
					e.WriteArray(buffers[e.ID()], b)
					e.Compute(50 * sim.Nanosecond)
				}
				e.Barrier()
				// Consume: read my left neighbour's buffer.
				for b := 0; b < blocks; b++ {
					e.ReadArray(buffers[left], b)
					e.Compute(30 * sim.Nanosecond)
				}
				e.Barrier()
			}
		})
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	report.Render(os.Stdout, c)
	loc := c.AnalyzeLocality()
	fmt.Printf("\nring pipeline: %.1f%% of messages stay within one hop; burst ratio %.1f\n",
		100*loc.NeighbourFraction, c.BurstRatio(core.RateWindows))
}
