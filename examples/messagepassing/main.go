// Message-passing scenario: the paper's static strategy, step by step and
// explicitly — native execution of the NAS 3D-FFT kernel on an SP2-like
// machine with application-level tracing, trace serialization, dependency-
// aware replay through the 2-D mesh with the validated SP2 software-
// overhead model, and characterization of the replayed log.
//
//	go run ./examples/messagepassing [-procs 8]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"commchar/internal/apps/fft3d"
	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/mp"
	"commchar/internal/report"
	"commchar/internal/sim"
	"commchar/internal/sp2"
	"commchar/internal/trace"
)

func main() {
	procs := flag.Int("procs", 8, "ranks (power of two)")
	flag.Parse()

	// Step 1: native execution with tracing (the IBM utility's role).
	fmt.Printf("step 1: run 3D-FFT natively on an SP2-like machine, %d ranks\n", *procs)
	w := mp.NewWorld(mp.DefaultConfig(*procs))
	cfg := fft3d.DefaultConfig()
	cfg.NX, cfg.NY, cfg.NZ, cfg.Iterations = 16, 16, 16, 2
	if _, err := fft3d.Run(w, cfg, *procs); err != nil {
		log.Fatal(err)
	}
	tr := w.Trace()
	fmt.Printf("        traced %d application-level messages\n", tr.Messages())

	// Step 2: serialize the trace (round-trip through the CSV format).
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: trace serialized to %d bytes of CSV\n", buf.Len())
	tr2, err := trace.ReadCSV(&buf, *procs)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: dependency-aware replay through the mesh with SP2 costs.
	fmt.Println("step 3: replay through the 2-D wormhole mesh with SP2 overheads")
	s := sim.New()
	net := mesh.New(s, core.MeshFor(*procs))
	if err := trace.Replay(s, net, tr2, sp2.Default()); err != nil {
		log.Fatal(err)
	}
	s.Run()
	fmt.Printf("        %d messages delivered in %.3f ms of simulated time\n\n",
		net.Delivered(), float64(s.Now())/1e6)

	// Step 4: characterize the network log.
	c, err := core.Analyze("3D-FFT", core.StrategyStatic, net.Log(), *procs,
		s.Now(), net.MeanUtilization())
	if err != nil {
		log.Fatal(err)
	}
	report.Render(os.Stdout, c)

	fmt.Println("\nRank 0 roots every broadcast and reduction, making p0 the 'favorite'")
	fmt.Println("destination in the spatial figures, while the all-to-all transpose keeps")
	fmt.Println("the volume distribution uniform — the paper's observation for 3D-FFT.")
}
