// Synthetic-traffic scenario: the methodology's payoff. Characterize IS,
// rebuild its workload from the fitted distributions alone, drive a fresh
// mesh with the synthetic traffic, and compare network metrics against the
// original run — if the closed-form models are faithful, the network
// cannot tell the difference.
//
//	go run ./examples/synthetic [-procs 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"commchar/internal/apps"
	"commchar/internal/workload"
)

func main() {
	procs := flag.Int("procs", 16, "processors")
	flag.Parse()

	w, err := apps.ByName(apps.ScaleSmall, "IS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("characterizing IS on %d processors...\n", *procs)
	c, err := w.Characterize(*procs)
	if err != nil {
		log.Fatal(err)
	}
	best := c.BestAggregate()
	fmt.Printf("fitted aggregate inter-arrival model: %s (R²=%.4f)\n", best.Dist, best.R2)
	pattern, n := c.DominantSpatial()
	fmt.Printf("dominant spatial pattern: %s (%d sources)\n\n", pattern, n)

	v, err := workload.Validate(c, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %14s %14s %8s\n", "metric", "original", "synthetic", "rel.err")
	fmt.Printf("%-22s %14.4f %14.4f %8.3f\n", "msg rate (msg/us)",
		v.Original.MessageRate, v.Synthetic.MessageRate, v.RateErr)
	fmt.Printf("%-22s %14.0f %14.0f %8.3f\n", "mean latency (ns)",
		v.Original.MeanLatencyNS, v.Synthetic.MeanLatencyNS, v.LatencyErr)
	fmt.Printf("%-22s %14.4f %14.4f %8.3f\n", "mean link utilization",
		v.Original.MeanUtilization, v.Synthetic.MeanUtilization, v.UtilErr)
	fmt.Println("\nThe synthetic workload was generated purely from the fitted")
	fmt.Println("distributions — no trace was replayed.")
}
