// Shared-memory scenario: characterize the paper's five shared-memory
// applications (1D-FFT, IS, Cholesky, Nbody, Maxflow) under the dynamic
// (execution-driven) strategy and print the comparative tables — the
// regular/static applications versus the dynamic, lock-heavy ones.
//
//	go run ./examples/sharedmem [-procs 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"commchar/internal/apps"
	"commchar/internal/core"
	"commchar/internal/report"
)

func main() {
	procs := flag.Int("procs", 16, "processors")
	flag.Parse()

	var cs []*core.Characterization
	for _, w := range apps.SharedMemory(apps.ScaleSmall) {
		fmt.Printf("running %s on %d processors...\n", w.Name, *procs)
		c, err := w.Characterize(*procs)
		if err != nil {
			log.Fatalf("%s: %v", w.Name, err)
		}
		cs = append(cs, c)
	}
	fmt.Println()
	report.TemporalTable("Inter-arrival time fits (dynamic strategy)", cs).Render(os.Stdout)
	fmt.Println()
	report.SpatialTable("Spatial classification", cs).Render(os.Stdout)
	fmt.Println()
	report.VolumeTable("Volume attribute", cs).Render(os.Stdout)

	fmt.Println("\nNote how the regular SPMD codes (1D-FFT, IS, Nbody) sit at lower")
	fmt.Println("inter-arrival CV than the dynamic, lock-driven codes (Cholesky, Maxflow),")
	fmt.Println("and how every shared-memory code's traffic is a two-point length mix")
	fmt.Println("(coherence control messages vs cache-line data messages).")
}
