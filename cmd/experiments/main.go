// Command experiments regenerates every table, figure, and ablation of the
// reproduced evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	experiments [-procs 16] [-scale full|small] [-only "Table 2"]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"commchar/internal/apps"
	"commchar/internal/experiments"
)

func main() {
	procs := flag.Int("procs", 16, "number of processors")
	scale := flag.String("scale", "full", "problem scale: full or small")
	only := flag.String("only", "", "run a single experiment (substring of its banner, e.g. 'Table 2')")
	flag.Parse()

	sc := apps.ScaleFull
	switch *scale {
	case "full":
	case "small":
		sc = apps.ScaleSmall
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	r := experiments.NewRunner(sc)
	if *only == "" {
		if err := r.All(os.Stdout, *procs); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}

	steps := map[string]func() error{
		"Table 1":             func() error { return r.Table1(os.Stdout, *procs) },
		"Table 2":             func() error { return r.Table2(os.Stdout, *procs) },
		"Table 3":             func() error { return r.Table3(os.Stdout, *procs) },
		"Table 4":             func() error { return r.Table4(os.Stdout, *procs) },
		"Table 5":             func() error { return r.Table5(os.Stdout, *procs) },
		"Table 6":             func() error { return r.Table6(os.Stdout, *procs) },
		"Table 7":             func() error { return r.Table7(os.Stdout, *procs) },
		"interarrival":        func() error { return r.FigureInterarrivalSM(os.Stdout, *procs) },
		"spatial-sm":          func() error { return r.FigureSpatialSM(os.Stdout) },
		"spatial-mp":          func() error { return r.FigureSpatialMP(os.Stdout) },
		"volume-mp":           func() error { return r.FigureVolumeMP(os.Stdout) },
		"rate-over-time":      func() error { return r.FigureRateOverTime(os.Stdout, *procs) },
		"validation":          func() error { return r.FigureSyntheticValidation(os.Stdout, *procs) },
		"latency-load":        func() error { return r.FigureLatencyLoad(os.Stdout, *procs) },
		"analytic":            func() error { return r.FigureAnalyticModel(os.Stdout, *procs) },
		"ablation-contention": func() error { return r.AblationContention(os.Stdout, *procs) },
		"ablation-vc":         func() error { return r.AblationVirtualChannels(os.Stdout) },
		"ablation-cache":      func() error { return r.AblationCacheGeometry(os.Stdout, *procs) },
		"ablation-barrier":    func() error { return r.AblationBarrier(os.Stdout, *procs) },
		"ablation-topology":   func() error { return r.AblationTopology(os.Stdout) },
		"ablation-protocol":   func() error { return r.AblationProtocol(os.Stdout, *procs) },
		"ablation-routing":    func() error { return r.AblationRouting(os.Stdout, *procs) },
	}
	for name, fn := range steps {
		if strings.EqualFold(name, *only) || strings.Contains(strings.ToLower(name), strings.ToLower(*only)) {
			if err := fn(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: no experiment matches %q; options:\n", *only)
	for name := range steps {
		fmt.Fprintf(os.Stderr, "  %s\n", name)
	}
	os.Exit(2)
}
