// Command experiments regenerates every table, figure, and ablation of the
// reproduced evaluation (see DESIGN.md for the experiment index). A step
// that fails — even by panicking — is reported and skipped; the sweep
// continues and emits every other result before exiting non-zero.
//
// Runs execute through the shared run pipeline: -parallel bounds the
// worker pool, -cache-dir enables the content-addressed on-disk cache, and
// with -metrics a pipeline summary (runs executed, cache hits, dedup hits)
// is printed to stderr after the sweep. The observability flags
// (-trace-out, -debug-addr, -progress, -events-out) expose the sweep live
// and as a Perfetto-loadable Chrome trace.
//
// Usage:
//
//	experiments [-procs 16] [-scale full|small] [-only "Table 2"] [-parallel 8] [-cache-dir .cache]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"

	"commchar/internal/apps"
	"commchar/internal/cli"
	"commchar/internal/experiments"
	"commchar/internal/obs"
	"commchar/internal/pipeline"
)

func main() { cli.Main("experiments", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	procs := fs.Int("procs", 16, "number of processors")
	scale := fs.String("scale", "full", "problem scale: full or small")
	only := fs.String("only", "", "run a single experiment (substring of its key, e.g. 'Table 2')")
	pf := pipeline.AddFlags(fs)
	of := obs.AddFlags(fs)
	cf := cli.AddCommonFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cli.VersionString())
		return nil
	}

	sc := apps.ScaleFull
	switch *scale {
	case "full":
	case "small":
		sc = apps.ScaleSmall
	default:
		return cli.Usagef("unknown scale %q", *scale)
	}

	ob, err := of.Observer(stderr)
	if err != nil {
		return err
	}
	defer ob.Close()
	eng, err := pf.EngineObserved(ob)
	if err != nil {
		return err
	}
	defer eng.Close()
	if cf.Metrics {
		// The summary goes to stderr so stdout stays byte-identical across
		// -parallel settings and cache states (cold vs warm).
		defer eng.Metrics().Render(stderr)
	}

	r := experiments.NewRunnerWith(sc, eng).WithContext(ctx)
	steps := r.Steps(*procs)
	if *only != "" {
		var picked []experiments.Step
		for _, s := range steps {
			if strings.EqualFold(s.Key, *only) ||
				strings.Contains(strings.ToLower(s.Key), strings.ToLower(*only)) {
				picked = append(picked, s)
				break
			}
		}
		if len(picked) == 0 {
			var b strings.Builder
			fmt.Fprintf(&b, "no experiment matches %q; options:", *only)
			for _, s := range steps {
				fmt.Fprintf(&b, "\n  %s", s.Key)
			}
			return cli.Usagef("%s", b.String())
		}
		steps = picked
	}
	// -on-error governs both layers: the engine's sweep policy (set via
	// the shared pipeline flags) and whether a failed step stops the tool.
	stopOnFailure := pf.OnError == "fail"
	return experiments.RunStepsContext(ctx, stdout, steps, stopOnFailure)
}
