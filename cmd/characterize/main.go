// Command characterize runs one application of the suite end to end —
// execution (dynamic strategy) or trace-and-replay (static strategy),
// network simulation, and statistical analysis — and prints the complete
// communication characterization: inter-arrival fits per source, spatial
// figures, and the message-length spectrum.
//
// Usage:
//
// Runs execute through the shared run pipeline: with -cache-dir, a
// repeated characterization is served from the content-addressed on-disk
// cache instead of re-simulating.
//
// Usage:
//
//	characterize -app IS [-procs 16] [-scale full|small] [-log out.csv] [-cache-dir .cache]
//	characterize -app IS -topology fattree [-dims 4,2]   (fabric other than the 2-D mesh)
//	characterize -app 3D-FFT -app-trace-out t.csv   (static strategy: export the app trace)
//	characterize -app IS -trace-out run.trace.json -debug-addr :8080   (observability)
//	characterize -app IS -workers http://w1:7801,http://w2:7802   (run on a sweepd fleet)
//	characterize -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"commchar/internal/apps"
	"commchar/internal/cli"
	"commchar/internal/core"
	"commchar/internal/dist"
	"commchar/internal/mp"
	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/report"
	"commchar/internal/trace"
)

func main() { cli.Main("characterize", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "", "application name (see -list)")
	procs := fs.Int("procs", 16, "number of processors")
	scale := fs.String("scale", "full", "problem scale: full or small")
	logOut := fs.String("log", "", "write the raw network log (CSV) to this file")
	traceOut := fs.String("app-trace-out", "", "write the application trace (CSV, static strategy only) to this file")
	list := fs.Bool("list", false, "list the application suite and exit")
	topology := fs.String("topology", "", "interconnect fabric: "+strings.Join(core.TopologyNames(), ", ")+" (default: the paper's 2-D mesh)")
	collectives := fs.String("collectives", "", "collective algorithm family: "+strings.Join(mp.AlgorithmNames(), ", ")+" (default: linear)")
	dimsFlag := fs.String("dims", "", "fabric dimensions, e.g. 4,4,4 (topology-specific; default: derived from -procs)")
	workers := fs.String("workers", "", "comma-separated sweepd worker control URLs: run remotely on this fleet")
	distListen := fs.String("dist-listen", "127.0.0.1:0", "address to serve the coordinator lease API on (with -workers)")
	distAdvertise := fs.String("dist-advertise", "", "coordinator URL advertised to the workers (default: the bound -dist-listen address)")
	blobDir := fs.String("blob-dir", "", "serve a shared artifact blob store from this directory to the fleet (with -workers)")
	pf := pipeline.AddFlags(fs)
	of := obs.AddFlags(fs)
	cf := cli.AddCommonFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cli.VersionString())
		return nil
	}

	sc := apps.ScaleFull
	if *scale == "small" {
		sc = apps.ScaleSmall
	}

	if *list {
		for _, w := range apps.Suite(sc) {
			fmt.Fprintf(stdout, "%-10s %-8s %s\n", w.Name, w.Strategy, w.Description)
		}
		return nil
	}
	if *app == "" {
		return cli.Usagef("-app required (try -list)")
	}

	if _, err := apps.ByName(sc, *app); err != nil {
		return cli.Usagef("%v", err)
	}
	dims, err := core.ParseDims(*dimsFlag)
	if err != nil {
		return cli.Usagef("-dims: %v", err)
	}
	ob, err := of.Observer(stderr)
	if err != nil {
		return err
	}
	defer ob.Close()
	var coord *dist.Coordinator
	if *workers != "" {
		// Client mode: serve a coordinator for the fleet and route the
		// run's cache miss (if any) through it. The report is identical to
		// a local run by the determinism invariant.
		var store *dist.BlobStore
		if *blobDir != "" {
			store, err = dist.NewBlobStore(*blobDir)
			if err != nil {
				return err
			}
		}
		coord = dist.NewCoordinator(dist.CoordinatorOptions{Obs: ob, Store: store})
		ln, err := net.Listen("tcp", *distListen)
		if err != nil {
			return fmt.Errorf("coordinator listener: %w", err)
		}
		srv := &http.Server{Handler: coord.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		coord.Start(ctx)
		if ob != nil {
			coord.Metrics().RegisterWith(ob.Registry)
		}
		ob.HandleDebug("/distz", coord.DebugHandler())
		coordURL := *distAdvertise
		if coordURL == "" {
			coordURL = "http://" + ln.Addr().String()
		}
		for _, wu := range strings.Split(*workers, ",") {
			if wu = strings.TrimSpace(wu); wu == "" {
				continue
			}
			if err := dist.Attach(ctx, wu, coordURL); err != nil {
				return err
			}
		}
		pf.Remote = coord
		// On the way out (server still up: defers run inside-out), dismiss
		// the fleet so workers detach instead of waiting out their
		// unreachable grace against a dead address.
		defer func() {
			coord.Finish()
			coord.Drain(ctx, 5*time.Second)
		}()
	}
	eng, err := pf.EngineObserved(ob)
	if err != nil {
		return err
	}
	defer eng.Close()
	if cf.Metrics {
		defer eng.Metrics().Render(stderr)
	}
	art, err := eng.RunContext(ctx, pipeline.RunSpec{
		App: *app, Procs: *procs, Scale: sc,
		Topology: *topology, Dims: dims,
		Collectives: *collectives,
	})
	if err != nil {
		return err
	}
	c := art.C
	report.Render(stdout, c)

	if *logOut != "" {
		f, err := os.Create(*logOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteDeliveries(f, c.Log); err != nil {
			return fmt.Errorf("writing log: %w", err)
		}
		fmt.Fprintf(stdout, "\nnetwork log (%d messages) written to %s\n", len(c.Log), *logOut)
	}
	if *traceOut != "" {
		if c.Trace == nil {
			return fmt.Errorf("%s uses the dynamic strategy; only static-strategy apps record an application trace", *app)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.Trace.WriteCSV(f); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(stdout, "application trace (%d messages) written to %s\n", c.Trace.Messages(), *traceOut)
	}
	if coord != nil && coord.Degraded() {
		// The report above is complete and correct; exit 3 flags the
		// reduced fleet health (store fallbacks, rescued stragglers).
		m := coord.Metrics()
		return &dist.DegradedError{
			StoreReports: m.DegradedReports.Load(),
			Rescues:      m.Rescues.Load(),
		}
	}
	return nil
}
