// Command characterize runs one application of the suite end to end —
// execution (dynamic strategy) or trace-and-replay (static strategy),
// network simulation, and statistical analysis — and prints the complete
// communication characterization: inter-arrival fits per source, spatial
// figures, and the message-length spectrum.
//
// Usage:
//
//	characterize -app IS [-procs 16] [-scale full|small] [-log out.csv]
//	characterize -list
package main

import (
	"flag"
	"fmt"
	"os"

	"commchar/internal/apps"
	"commchar/internal/report"
	"commchar/internal/trace"
)

func main() {
	app := flag.String("app", "", "application name (see -list)")
	procs := flag.Int("procs", 16, "number of processors")
	scale := flag.String("scale", "full", "problem scale: full or small")
	logOut := flag.String("log", "", "write the raw network log (CSV) to this file")
	list := flag.Bool("list", false, "list the application suite and exit")
	flag.Parse()

	sc := apps.ScaleFull
	if *scale == "small" {
		sc = apps.ScaleSmall
	}

	if *list {
		for _, w := range apps.Suite(sc) {
			fmt.Printf("%-10s %-8s %s\n", w.Name, w.Strategy, w.Description)
		}
		return
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "characterize: -app required (try -list)")
		os.Exit(2)
	}

	w, err := apps.ByName(sc, *app)
	if err != nil {
		fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
		os.Exit(2)
	}
	c, err := w.Characterize(*procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
		os.Exit(1)
	}
	report.Render(os.Stdout, c)

	if *logOut != "" {
		f, err := os.Create(*logOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteDeliveries(f, c.Log); err != nil {
			fmt.Fprintf(os.Stderr, "characterize: writing log: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nnetwork log (%d messages) written to %s\n", len(c.Log), *logOut)
	}
}
