// Command characterize runs one application of the suite end to end —
// execution (dynamic strategy) or trace-and-replay (static strategy),
// network simulation, and statistical analysis — and prints the complete
// communication characterization: inter-arrival fits per source, spatial
// figures, and the message-length spectrum.
//
// Usage:
//
// Runs execute through the shared run pipeline: with -cache-dir, a
// repeated characterization is served from the content-addressed on-disk
// cache instead of re-simulating.
//
// Usage:
//
//	characterize -app IS [-procs 16] [-scale full|small] [-log out.csv] [-cache-dir .cache]
//	characterize -app 3D-FFT -app-trace-out t.csv   (static strategy: export the app trace)
//	characterize -app IS -trace-out run.trace.json -debug-addr :8080   (observability)
//	characterize -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"commchar/internal/apps"
	"commchar/internal/cli"
	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/report"
	"commchar/internal/trace"
)

func main() { cli.Main("characterize", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "", "application name (see -list)")
	procs := fs.Int("procs", 16, "number of processors")
	scale := fs.String("scale", "full", "problem scale: full or small")
	logOut := fs.String("log", "", "write the raw network log (CSV) to this file")
	traceOut := fs.String("app-trace-out", "", "write the application trace (CSV, static strategy only) to this file")
	list := fs.Bool("list", false, "list the application suite and exit")
	pf := pipeline.AddFlags(fs)
	of := obs.AddFlags(fs)
	cf := cli.AddCommonFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cli.VersionString())
		return nil
	}

	sc := apps.ScaleFull
	if *scale == "small" {
		sc = apps.ScaleSmall
	}

	if *list {
		for _, w := range apps.Suite(sc) {
			fmt.Fprintf(stdout, "%-10s %-8s %s\n", w.Name, w.Strategy, w.Description)
		}
		return nil
	}
	if *app == "" {
		return cli.Usagef("-app required (try -list)")
	}

	if _, err := apps.ByName(sc, *app); err != nil {
		return cli.Usagef("%v", err)
	}
	ob, err := of.Observer(stderr)
	if err != nil {
		return err
	}
	defer ob.Close()
	eng, err := pf.EngineObserved(ob)
	if err != nil {
		return err
	}
	defer eng.Close()
	if cf.Metrics {
		defer eng.Metrics().Render(stderr)
	}
	art, err := eng.RunContext(ctx, pipeline.RunSpec{App: *app, Procs: *procs, Scale: sc})
	if err != nil {
		return err
	}
	c := art.C
	report.Render(stdout, c)

	if *logOut != "" {
		f, err := os.Create(*logOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteDeliveries(f, c.Log); err != nil {
			return fmt.Errorf("writing log: %w", err)
		}
		fmt.Fprintf(stdout, "\nnetwork log (%d messages) written to %s\n", len(c.Log), *logOut)
	}
	if *traceOut != "" {
		if c.Trace == nil {
			return fmt.Errorf("%s uses the dynamic strategy; only static-strategy apps record an application trace", *app)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.Trace.WriteCSV(f); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(stdout, "application trace (%d messages) written to %s\n", c.Trace.Messages(), *traceOut)
	}
	return nil
}
