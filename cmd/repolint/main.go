// Repolint runs the repository's custom static-analysis suite
// (internal/lint): determinism, ctxflow, errtaxonomy, and exitcode.
//
// It is a `go vet` vettool. Invoked with package patterns it re-execs
// itself through the go command, so contributors and CI get identical
// output from one entry point:
//
//	go run ./cmd/repolint ./...
//
// is exactly equivalent to
//
//	go build -o repolint ./cmd/repolint
//	go vet -vettool=$(pwd)/repolint ./...
//
// Suppress a diagnostic by putting a justified allow comment on the
// flagged line or the line above it:
//
//	//lint:allow determinism wall-clock watchdog budget is deliberately host-time
//
// Exit status: 0 clean, 1 diagnostics or failure, 2 usage.
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"commchar/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches between the two faces of the tool: the vettool
// protocol endpoints that `go vet` invokes (-V=full, -flags, a
// <unit>.cfg path), and the human-facing package-pattern mode that
// wraps `go vet -vettool=<self>`.
func run(args []string) int {
	if len(args) == 1 {
		if a := args[0]; a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return lint.VetMain(os.Stdout, os.Stderr, a)
		}
	}
	for _, a := range args {
		if a == "-h" || a == "-help" || a == "--help" {
			usage()
			return 0
		}
		if strings.HasPrefix(a, "-") {
			fmt.Fprintf(os.Stderr, "repolint: unknown flag %q\n", a)
			usage()
			return 2
		}
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: locating own binary: %v\n", err)
		return 1
	}
	vet := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	vet.Stdout = os.Stdout
	vet.Stderr = os.Stderr
	if err := vet.Run(); err != nil {
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			return exitErr.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "repolint: running go vet: %v\n", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: repolint [packages]

Runs the repository invariant checkers (via go vet -vettool):
`)
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "\n  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress with a justified comment on or above the flagged line:\n"+
		"  //lint:allow <rule> <why this site is exempt>\n")
}
