// Repolint runs the repository's custom static-analysis suite
// (internal/lint): determinism, ctxflow, errtaxonomy, exitcode,
// hotpath, leakcheck, lockorder, and obsconv.
//
// It is a `go vet` vettool. Invoked with package patterns it re-execs
// itself through the go command, so contributors and CI get identical
// output from one entry point:
//
//	go run ./cmd/repolint ./...
//
// is exactly equivalent to
//
//	go build -o repolint ./cmd/repolint
//	go vet -vettool=$(pwd)/repolint ./...
//
// With -fix, diagnostics that carry a suggested fix are applied to the
// source in place (non-overlapping edits, gofmt re-run); a second -fix
// run is a no-op:
//
//	go run ./cmd/repolint -fix ./...
//
// Suppress a diagnostic by putting a justified allow comment on the
// flagged line or the line above it:
//
//	//lint:allow determinism wall-clock watchdog budget is deliberately host-time
//
// Exit status: 0 clean (or all diagnostics fixed), 1 diagnostics or
// failure, 2 usage.
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"commchar/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches between the two faces of the tool: the vettool
// protocol endpoints that `go vet` invokes (-V=full, -flags, an
// optional -fix, and a <unit>.cfg path), and the human-facing
// package-pattern mode that wraps `go vet -vettool=<self>`.
func run(args []string) int {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return lint.VetMain(os.Stdout, os.Stderr, args)
		}
	}
	fix := false
	var patterns []string
	for _, a := range args {
		switch {
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return 0
		case a == "-fix" || a == "--fix":
			fix = true
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "repolint: unknown flag %q\n", a)
			usage()
			return 2
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: locating own binary: %v\n", err)
		return 1
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	if fix {
		vetArgs = append(vetArgs, "-fix")
	}
	vet := exec.Command("go", append(vetArgs, patterns...)...)
	vet.Stdout = os.Stdout
	vet.Stderr = os.Stderr
	if err := vet.Run(); err != nil {
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			return exitErr.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "repolint: running go vet: %v\n", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: repolint [-fix] [packages]

Runs the repository invariant checkers (via go vet -vettool):
`)
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "\n  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nWith -fix, diagnostics carrying a suggested fix are applied in\n"+
		"place (non-overlapping edits, gofmt re-run); a second run is a no-op.\n\n"+
		"Suppress with a justified comment on or above the flagged line:\n"+
		"  //lint:allow <rule> <why this site is exempt>\n")
}
