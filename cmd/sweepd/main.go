// Command sweepd is the fault-tolerant distributed sweep service: one
// process per role of the internal/dist lease protocol.
//
// In -coordinator mode it enqueues a characterization sweep (apps ×
// processor counts × interconnect topologies), serves the lease API to
// workers, renders each
// run's report on stdout in spec order, and exits. The engine's cache,
// journal, and -resume semantics apply to distributed runs unchanged,
// so a coordinator killed mid-sweep restarts with -resume and only the
// unfinished specs go back to the fleet. With -local the same sweep
// runs in-process instead — the reference output a distributed run must
// match byte for byte.
//
// In -worker mode it executes leased specs through its own pipeline
// engine (own cache directory, own parallelism) and streams artifacts
// back. A worker is stateless: killing one costs only its in-flight
// lease, which the coordinator re-enqueues on expiry.
//
// Usage:
//
//	sweepd -coordinator -listen 127.0.0.1:7701 -apps IS,MG -procs 4,16 -scale small \
//	       -cache-dir .cache/coord -journal sweep.journal [-resume]
//	sweepd -worker -join http://127.0.0.1:7701 -cache-dir .cache/w1
//	sweepd -worker -listen 127.0.0.1:7801 -cache-dir .cache/w1   (wait for /v1/attach)
//	sweepd -coordinator -local ...                               (reference run, no fleet)
//	sweepd -coordinator -blob-dir .cache/blobs -speculate-factor 3 ...   (shared store + hedging)
//	sweepd -worker -join ... -net-chaos 'drop:0.2;delay:0.5:5ms' -net-chaos-seed 7   (chaos)
//
// A sweep that completes with every report but degraded fleet health —
// workers fell back from the shared store, or a straggler was rescued by
// a speculative re-lease — exits 3 (dist.DegradedError), not 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"commchar/internal/apps"
	"commchar/internal/cli"
	"commchar/internal/core"
	"commchar/internal/dist"
	"commchar/internal/fault"
	"commchar/internal/mp"
	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/report"
)

func main() { cli.Main("sweepd", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coordinator := fs.Bool("coordinator", false, "run the sweep coordinator")
	worker := fs.Bool("worker", false, "run a sweep worker")
	listen := fs.String("listen", "", "address to serve the role's HTTP API on (coordinator: lease API; worker: control API)")
	appsFlag := fs.String("apps", "", "comma-separated application names to sweep (default: the whole suite)")
	procsFlag := fs.String("procs", "16", "comma-separated processor counts to sweep")
	topoFlag := fs.String("topologies", "", "comma-separated interconnect fabrics to sweep: "+strings.Join(core.TopologyNames(), ", ")+" (default: the paper's 2-D mesh)")
	collFlag := fs.String("collectives", "", "comma-separated collective algorithm families to sweep: "+strings.Join(mp.AlgorithmNames(), ", ")+" (default: linear)")
	scale := fs.String("scale", "full", "problem scale: full or small")
	lease := fs.Duration("lease", 15*time.Second, "lease duration before unfinished work is re-enqueued")
	maxAttempts := fs.Int("max-attempts", 5, "lease grants per spec before the coordinator fails it permanently")
	workers := fs.String("workers", "", "comma-separated worker control URLs to attach at startup (coordinator mode)")
	advertise := fs.String("advertise", "", "coordinator URL advertised to attached workers (default: the bound -listen address)")
	local := fs.Bool("local", false, "run the sweep in-process instead of distributing: the reference a distributed run must match")
	blobDir := fs.String("blob-dir", "", "serve a shared artifact blob store from this directory (coordinator mode); workers read through it and the coordinator feeds it from completions")
	speculate := fs.Float64("speculate-factor", 0, "hedge a straggler onto an idle worker once its stage exceeds this factor times the median stage time (coordinator mode; 0 disables)")
	name := fs.String("name", "", "worker name reported in leases and lost-worker events (default: host-pid)")
	join := fs.String("join", "", "coordinator URL to poll until its sweep completes (worker mode)")
	netChaos := fs.String("net-chaos", "", "inject seeded network faults into this worker's coordinator and store clients, e.g. 'drop:0.2;delay:0.5:10ms' (see internal/fault)")
	netChaosSeed := fs.Uint64("net-chaos-seed", 1, "seed for the -net-chaos schedule")
	pf := pipeline.AddFlags(fs)
	of := obs.AddFlags(fs)
	cf := cli.AddCommonFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cli.VersionString())
		return nil
	}
	if *coordinator == *worker {
		return cli.Usagef("exactly one of -coordinator or -worker required")
	}

	ob, err := of.Observer(stderr)
	if err != nil {
		return err
	}
	defer ob.Close()

	if *worker {
		return runWorker(ctx, workerConfig{
			listen: *listen, name: *name, join: *join,
			lease: *lease, netChaos: *netChaos, netChaosSeed: *netChaosSeed,
			pf: pf, cf: cf,
		}, ob, stdout, stderr)
	}
	return runCoordinator(ctx, coordinatorConfig{
		listen: *listen, apps: *appsFlag, procs: *procsFlag,
		topologies: *topoFlag, collectives: *collFlag, scale: *scale,
		lease: *lease, maxAttempts: *maxAttempts, workers: *workers,
		advertise: *advertise, local: *local,
		blobDir: *blobDir, speculate: *speculate, pf: pf, cf: cf,
	}, ob, stdout, stderr)
}

type coordinatorConfig struct {
	listen      string
	apps        string
	procs       string
	topologies  string
	collectives string
	scale       string
	lease       time.Duration
	maxAttempts int
	workers     string
	advertise   string
	local       bool
	blobDir     string
	speculate   float64
	pf          *pipeline.Flags
	cf          *cli.CommonFlags
}

func runCoordinator(ctx context.Context, cfg coordinatorConfig, ob *obs.Observer, stdout, stderr io.Writer) error {
	specs, err := sweepSpecs(cfg.apps, cfg.procs, cfg.topologies, cfg.collectives, cfg.scale)
	if err != nil {
		return err
	}

	var coord *dist.Coordinator
	if !cfg.local {
		var store *dist.BlobStore
		if cfg.blobDir != "" {
			store, err = dist.NewBlobStore(cfg.blobDir)
			if err != nil {
				return err
			}
		}
		coord = dist.NewCoordinator(dist.CoordinatorOptions{
			Lease:           cfg.lease,
			MaxAttempts:     cfg.maxAttempts,
			Obs:             ob,
			Store:           store,
			SpeculateFactor: cfg.speculate,
		})
		addr := cfg.listen
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("coordinator listener: %w", err)
		}
		srv := &http.Server{Handler: coord.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		coord.Start(ctx)
		if ob != nil {
			coord.Metrics().RegisterWith(ob.Registry)
		}
		ob.HandleDebug("/distz", coord.DebugHandler())

		coordURL := cfg.advertise
		if coordURL == "" {
			coordURL = "http://" + ln.Addr().String()
		}
		fmt.Fprintf(stderr, "coordinator listening on %s (%d specs)\n", coordURL, len(specs))
		for _, wu := range splitList(cfg.workers) {
			if err := dist.Attach(ctx, wu, coordURL); err != nil {
				return err
			}
		}
		cfg.pf.Remote = coord
	}

	eng, err := cfg.pf.EngineObserved(ob)
	if err != nil {
		return err
	}
	defer eng.Close()
	if cfg.cf.Metrics {
		defer eng.Metrics().Render(stderr)
	}

	arts, runErr := eng.RunAllContext(ctx, specs...)
	// Render whatever completed, in spec order, before reporting the
	// failures: a degraded sweep still carries its finished reports.
	for i, art := range arts {
		if art == nil {
			continue
		}
		fmt.Fprintf(stdout, "==> %s\n", specs[i].Label())
		report.Render(stdout, art.C)
	}
	if coord != nil {
		// Dismiss the fleet before the lease API goes away: workers poll
		// StatusDone and detach cleanly instead of waiting out their
		// unreachable grace against a dead address.
		coord.Finish()
		coord.Drain(ctx, cfg.lease)
		if runErr == nil && coord.Degraded() {
			// Every report above is complete and correct, but the sweep ran
			// at reduced fleet health (store fallbacks, rescued stragglers):
			// exit 3 so operators notice without diffing metrics.
			m := coord.Metrics()
			runErr = &dist.DegradedError{
				StoreReports: m.DegradedReports.Load(),
				Rescues:      m.Rescues.Load(),
			}
		}
	}
	return runErr
}

type workerConfig struct {
	listen       string
	name         string
	join         string
	lease        time.Duration
	netChaos     string
	netChaosSeed uint64
	pf           *pipeline.Flags
	cf           *cli.CommonFlags
}

func runWorker(ctx context.Context, cfg workerConfig, ob *obs.Observer, stdout, stderr io.Writer) error {
	if cfg.join == "" && cfg.listen == "" {
		return cli.Usagef("worker mode needs -join (poll a coordinator) or -listen (wait for /v1/attach)")
	}
	name := cfg.name
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	// Each chaos-injected client owns its RoundTripper (its own request
	// ordinal stream); the store client's seed is decorrelated so the two
	// schedules fault independently.
	var rpcChaos, storeChaos http.RoundTripper
	if cfg.netChaos != "" {
		sched, err := fault.ParseNet(cfg.netChaos, cfg.netChaosSeed)
		if err != nil {
			return cli.Usagef("-net-chaos: %v", err)
		}
		storeSched, err := fault.ParseNet(cfg.netChaos, cfg.netChaosSeed+1)
		if err != nil {
			return cli.Usagef("-net-chaos: %v", err)
		}
		rpcChaos = fault.NewRoundTripper(sched, nil)
		storeChaos = fault.NewRoundTripper(storeSched, nil)
		fmt.Fprintf(stderr, "worker %s: net chaos %q (seed %d)\n", name, cfg.netChaos, cfg.netChaosSeed)
	}

	// The shared-store client is created detached; it activates when a
	// coordinator advertises its blob store in a lease. Until then every
	// Get is a miss and every Put a no-op.
	dm := &dist.Metrics{}
	if ob != nil {
		dm.RegisterWith(ob.Registry)
	}
	store := dist.NewHTTPStore(dist.HTTPStoreOptions{Obs: ob, Metrics: dm, Transport: storeChaos})
	cfg.pf.Store = store

	eng, err := cfg.pf.EngineObserved(ob)
	if err != nil {
		return err
	}
	defer eng.Close()
	if cfg.cf.Metrics {
		defer eng.Metrics().Render(stderr)
	}

	w, err := dist.NewWorker(dist.WorkerOptions{
		Name: name, Runner: eng, Obs: ob,
		Store: store, Transport: rpcChaos,
	})
	if err != nil {
		return err
	}
	if cfg.listen != "" {
		ln, err := net.Listen("tcp", cfg.listen)
		if err != nil {
			return fmt.Errorf("worker listener: %w", err)
		}
		srv := &http.Server{Handler: w.ControlHandler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(stderr, "worker %s control API on http://%s\n", name, ln.Addr().String())
	}
	if cfg.join != "" {
		// Serve this one coordinator until its sweep completes. A
		// coordinator restarting around its journal answers again within
		// the unreachable grace, so the poll survives it.
		return w.Poll(ctx, cfg.join)
	}
	// Serve attach requests until interrupted (exit 130, the
	// interrupted-run convention).
	return w.Run(ctx)
}

// sweepSpecs expands the -apps/-procs/-topologies/-collectives/-scale
// cross product into specs, in the stable apps-major (then procs, then
// topology, then collectives) order the reports are rendered in. Empty
// topology and collectives lists sweep only the defaults (2-D mesh,
// linear family), producing specs — and therefore cache keys — identical
// to builds that predate those dimensions.
func sweepSpecs(appsList, procsList, topoList, collList, scale string) ([]pipeline.RunSpec, error) {
	sc := apps.ScaleFull
	if scale == "small" {
		sc = apps.ScaleSmall
	}
	names := splitList(appsList)
	if len(names) == 0 {
		for _, w := range apps.Suite(sc) {
			names = append(names, w.Name)
		}
	}
	for _, n := range names {
		if _, err := apps.ByName(sc, n); err != nil {
			return nil, cli.Usagef("%v", err)
		}
	}
	var procs []int
	for _, p := range splitList(procsList) {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, cli.Usagef("-procs: %q is not a positive processor count", p)
		}
		procs = append(procs, v)
	}
	if len(procs) == 0 {
		return nil, cli.Usagef("-procs: at least one processor count required")
	}
	topos := splitList(topoList)
	if len(topos) == 0 {
		topos = []string{""}
	}
	for _, t := range topos {
		if t == "" {
			continue
		}
		if _, err := core.TopologyFor(t, nil, procs[0]); err != nil {
			return nil, cli.Usagef("-topologies: %v", err)
		}
	}
	colls := splitList(collList)
	if len(colls) == 0 {
		colls = []string{""}
	}
	for _, c := range colls {
		if _, err := mp.ParseAlgorithm(c); err != nil {
			return nil, cli.Usagef("-collectives: %v", err)
		}
	}
	var specs []pipeline.RunSpec
	for _, n := range names {
		for _, p := range procs {
			for _, t := range topos {
				for _, c := range colls {
					s := pipeline.RunSpec{App: n, Procs: p, Scale: sc, Topology: t, Collectives: c}
					// Label the report row with the swept dimensions so
					// the rows stay distinguishable.
					label := n
					if t != "" {
						label += "/" + t
					}
					if c != "" {
						label += "/" + c
					}
					if label != n {
						s.Name = label
					}
					specs = append(specs, s)
				}
			}
		}
	}
	return specs, nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
