// Command fitdist exposes the statistical layer directly: it reads a
// sample (one number per line, '#' comments ignored), fits every candidate
// family by DUD regression on the empirical CDF, and prints the ranked
// candidates with goodness-of-fit measures and a measured-vs-fitted
// overlay — PROC NLIN at the shell.
//
// Usage:
//
//	fitdist -in samples.txt [-overlay]
//	some-producer | fitdist
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"commchar/internal/cli"
	"commchar/internal/report"
	"commchar/internal/stats"
)

func readSamples(r io.Reader) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, field := range strings.Fields(line) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %q is not a number", lineNo, field)
			}
			out = append(out, v)
		}
	}
	return out, sc.Err()
}

func main() { cli.Main("fitdist", run) }

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fitdist", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input file (default: stdin)")
	overlay := fs.Bool("overlay", false, "print the measured-vs-fitted CDF overlay for the winner")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	xs, err := readSamples(r)
	if err != nil {
		return err
	}

	sum := stats.Summarize(xs)
	fmt.Fprintf(stdout, "n=%d mean=%.6g sd=%.6g cv=%.4g min=%.6g median=%.6g max=%.6g\n\n",
		sum.N, sum.Mean, sum.StdDev, sum.CV, sum.Min, sum.Median, sum.Max)

	fits, err := stats.FitInterarrival(xs)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Candidate families (best first)",
		Columns: []string{"Family", "Parameters", "R2", "KS", "ChiSq", "p-value"},
	}
	for _, f := range fits {
		t.AddRow(f.Dist.Name(), f.Dist.String(),
			fmt.Sprintf("%.4f", f.R2),
			fmt.Sprintf("%.4f", f.KS),
			fmt.Sprintf("%.1f", f.Chi.Statistic),
			fmt.Sprintf("%.4f", f.Chi.PValue))
	}
	t.Render(stdout)

	if *overlay {
		fmt.Fprintln(stdout)
		best := fits[0]
		report.CDFOverlay(stdout,
			fmt.Sprintf("Measured vs %s", best.Dist), xs, best.Dist, 20, 44)
	}
	return nil
}
