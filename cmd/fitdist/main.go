// Command fitdist exposes the statistical layer directly: it reads a
// sample (one number per line, '#' comments ignored), fits every candidate
// family by DUD regression on the empirical CDF, and prints the ranked
// candidates with goodness-of-fit measures and a measured-vs-fitted
// overlay — PROC NLIN at the shell.
//
// With -app, the samples are an application's pooled inter-arrival gaps
// (ns), produced by characterizing it through the shared run pipeline —
// with -cache-dir, a repeated fit is served from the content-addressed
// on-disk cache instead of re-simulating.
//
// Usage:
//
//	fitdist -in samples.txt [-overlay]
//	fitdist -app IS [-procs 16] [-scale full|small] [-overlay] [-cache-dir .cache]
//	some-producer | fitdist
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"commchar/internal/apps"
	"commchar/internal/cli"
	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/report"
	"commchar/internal/stats"
)

func readSamples(r io.Reader) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, field := range strings.Fields(line) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %q is not a number", lineNo, field)
			}
			out = append(out, v)
		}
	}
	return out, sc.Err()
}

func main() { cli.Main("fitdist", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fitdist", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input file (default: stdin)")
	app := fs.String("app", "", "fit an application's pooled inter-arrival gaps instead of reading samples")
	procs := fs.Int("procs", 16, "number of processors (with -app)")
	scale := fs.String("scale", "full", "problem scale: full or small (with -app)")
	overlay := fs.Bool("overlay", false, "print the measured-vs-fitted CDF overlay for the winner")
	pf := pipeline.AddFlags(fs)
	of := obs.AddFlags(fs)
	cf := cli.AddCommonFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cli.VersionString())
		return nil
	}
	if *app != "" && *in != "" {
		return cli.Usagef("-app and -in are mutually exclusive")
	}

	var xs []float64
	if *app != "" {
		sc := apps.ScaleFull
		if *scale == "small" {
			sc = apps.ScaleSmall
		}
		if _, err := apps.ByName(sc, *app); err != nil {
			return cli.Usagef("%v", err)
		}
		ob, err := of.Observer(stderr)
		if err != nil {
			return err
		}
		defer ob.Close()
		eng, err := pf.EngineObserved(ob)
		if err != nil {
			return err
		}
		defer eng.Close()
		if cf.Metrics {
			defer eng.Metrics().Render(stderr)
		}
		art, err := eng.RunContext(ctx, pipeline.RunSpec{App: *app, Procs: *procs, Scale: sc})
		if err != nil {
			return err
		}
		xs = art.C.AggregateGaps()
		fmt.Fprintf(stdout, "%s: %d messages, %d pooled inter-arrival gaps (ns)\n",
			art.C.Name, art.C.Messages, len(xs))
	} else {
		var r io.Reader = os.Stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		var err error
		xs, err = readSamples(r)
		if err != nil {
			return err
		}
	}

	sum := stats.Summarize(xs)
	fmt.Fprintf(stdout, "n=%d mean=%.6g sd=%.6g cv=%.4g min=%.6g median=%.6g max=%.6g\n\n",
		sum.N, sum.Mean, sum.StdDev, sum.CV, sum.Min, sum.Median, sum.Max)

	fits, err := stats.FitInterarrival(xs)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Candidate families (best first)",
		Columns: []string{"Family", "Parameters", "R2", "KS", "ChiSq", "p-value"},
	}
	for _, f := range fits {
		t.AddRow(f.Dist.Name(), f.Dist.String(),
			fmt.Sprintf("%.4f", f.R2),
			fmt.Sprintf("%.4f", f.KS),
			fmt.Sprintf("%.1f", f.Chi.Statistic),
			fmt.Sprintf("%.4f", f.Chi.PValue))
	}
	t.Render(stdout)

	if *overlay {
		fmt.Fprintln(stdout)
		best := fits[0]
		report.CDFOverlay(stdout,
			fmt.Sprintf("Measured vs %s", best.Dist), xs, best.Dist, 20, 44)
	}
	return nil
}
