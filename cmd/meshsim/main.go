// Command meshsim replays an application-level communication trace (CSV,
// as written by trace.Trace.WriteCSV) through the 2-D wormhole mesh
// simulator, honouring send/receive dependencies, and reports network
// metrics. Optionally it injects faults from a deterministic schedule and
// writes the delivery log for offline analysis.
//
// The replay executes through the shared run pipeline: with -cache-dir, a
// repeated replay of the same trace and configuration is served from the
// content-addressed on-disk cache instead of re-simulating.
//
// Usage:
//
//	meshsim -trace app.csv -ranks 16 [-width 4 -height 4] [-sp2] [-vcs 1]
//	        [-faults "drop:0.01;down:1<->2@1ms-2ms"] [-fault-seed 1]
//	        [-max-events N] [-max-sim-ms MS] [-max-wall D] [-out deliveries.csv]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"commchar/internal/cli"
	"commchar/internal/fault"
	"commchar/internal/mesh"
	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/report"
	"commchar/internal/sim"
	"commchar/internal/trace"
	"commchar/internal/workload"
)

func main() { cli.Main("meshsim", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("meshsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	traceFile := fs.String("trace", "", "trace CSV file (required)")
	ranks := fs.Int("ranks", 16, "number of ranks in the trace")
	width := fs.Int("width", 0, "mesh width (default: derived from ranks)")
	height := fs.Int("height", 0, "mesh height")
	useSP2 := fs.Bool("sp2", false, "charge IBM SP2 software overheads during replay")
	vcs := fs.Int("vcs", 1, "virtual channels per link")
	faults := fs.String("faults", "", "fault schedule, e.g. 'drop:0.01;down:1<->2@1ms-2ms' (see internal/fault)")
	faultSeed := fs.Uint64("fault-seed", 1, "seed of the fault schedule (same seed => identical run)")
	maxEvents := fs.Int64("max-events", 0, "watchdog: abort after this many simulation events (0 = unlimited)")
	maxSimMS := fs.Float64("max-sim-ms", 0, "watchdog: abort past this simulated time in ms (0 = unlimited)")
	maxWall := fs.Duration("max-wall", 0, "watchdog: abort after this much wall-clock time (0 = unlimited)")
	out := fs.String("out", "", "write the delivery log (CSV) to this file")
	pf := pipeline.AddFlags(fs)
	of := obs.AddFlags(fs)
	cf := cli.AddCommonFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cli.VersionString())
		return nil
	}

	if *traceFile == "" {
		return cli.Usagef("-trace required")
	}
	if *faults != "" {
		// Validate the schedule up front so a bad spec is a usage error,
		// not a mid-replay failure; the pipeline parses its own copy.
		if _, err := fault.Parse(*faults, *faultSeed); err != nil {
			return cli.Usagef("-faults: %v", err)
		}
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		return err
	}
	tr, err := trace.ReadCSV(f, *ranks)
	f.Close()
	if err != nil {
		var te *trace.TruncatedError
		if errors.As(err, &te) {
			// Salvageable: replay the clean prefix, but say so.
			fmt.Fprintf(stderr, "meshsim: warning: %v; replaying the %d-event prefix\n",
				err, tr.TotalEvents())
		} else {
			return err
		}
	}

	w, h := *width, *height
	if w == 0 || h == 0 {
		w, h = *ranks, 1
		if *ranks > 4 {
			w = 4
			h = (*ranks + 3) / 4
		}
	}

	ob, err := of.Observer(stderr)
	if err != nil {
		return err
	}
	defer ob.Close()
	eng, err := pf.EngineObserved(ob)
	if err != nil {
		return err
	}
	defer eng.Close()
	if cf.Metrics {
		defer eng.Metrics().Render(stderr)
	}
	art, err := eng.RunContext(ctx, pipeline.RunSpec{
		Trace:           tr,
		Procs:           *ranks,
		Width:           w,
		Height:          h,
		VirtualChannels: *vcs,
		UseSP2:          *useSP2,
		Faults:          *faults,
		FaultSeed:       *faultSeed,
		Watchdog: sim.Watchdog{
			MaxEvents:  *maxEvents,
			MaxSimTime: sim.Time(*maxSimMS * 1e6),
			MaxWall:    *maxWall,
		},
	})
	if err != nil {
		return err
	}

	c := art.C
	m := workload.MeasureLog(c.Log, c.Elapsed, c.MeanUtilization)
	fmt.Fprintf(stdout, "mesh          : %dx%d, %d VCs, %v flit cycle\n",
		w, h, *vcs, mesh.DefaultConfig(w, h).CycleTime)
	fmt.Fprintf(stdout, "messages      : %d\n", m.Messages)
	fmt.Fprintf(stdout, "simulated time: %.3f ms\n", float64(c.Elapsed)/1e6)
	fmt.Fprintf(stdout, "mean latency  : %.0f ns\n", m.MeanLatencyNS)
	fmt.Fprintf(stdout, "mean blocked  : %.0f ns\n", m.MeanBlockedNS)
	fmt.Fprintf(stdout, "mean hops     : %.2f\n", m.MeanHops)
	fmt.Fprintf(stdout, "mean link util: %.4f\n", m.MeanUtilization)
	if *faults != "" {
		failures := make([]error, 0, len(art.Failures))
		for _, msg := range art.Failures {
			failures = append(failures, errors.New(msg))
		}
		report.FaultSummary(stdout, c.Log, failures)
		fmt.Fprintf(stdout, "injector      : %d drops, %d corruptions\n",
			art.FaultCounters.Drops, art.FaultCounters.Corruptions)
	}

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := trace.WriteDeliveries(of, c.Log); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "delivery log written to %s\n", *out)
	}
	return nil
}
