// Command meshsim replays an application-level communication trace (CSV,
// as written by trace.Trace.WriteCSV) through the 2-D wormhole mesh
// simulator, honouring send/receive dependencies, and reports network
// metrics. Optionally it writes the delivery log for offline analysis.
//
// Usage:
//
//	meshsim -trace app.csv -ranks 16 [-width 4 -height 4] [-sp2] [-vcs 1] [-out deliveries.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/sp2"
	"commchar/internal/trace"
	"commchar/internal/workload"
)

func main() {
	traceFile := flag.String("trace", "", "trace CSV file (required)")
	ranks := flag.Int("ranks", 16, "number of ranks in the trace")
	width := flag.Int("width", 0, "mesh width (default: derived from ranks)")
	height := flag.Int("height", 0, "mesh height")
	useSP2 := flag.Bool("sp2", false, "charge IBM SP2 software overheads during replay")
	vcs := flag.Int("vcs", 1, "virtual channels per link")
	out := flag.String("out", "", "write the delivery log (CSV) to this file")
	flag.Parse()

	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "meshsim: -trace required")
		os.Exit(2)
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshsim: %v\n", err)
		os.Exit(1)
	}
	tr, err := trace.ReadCSV(f, *ranks)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshsim: %v\n", err)
		os.Exit(1)
	}

	w, h := *width, *height
	if w == 0 || h == 0 {
		w, h = *ranks, 1
		if *ranks > 4 {
			w = 4
			h = (*ranks + 3) / 4
		}
	}
	cfg := mesh.DefaultConfig(w, h)
	cfg.VirtualChannels = *vcs

	s := sim.New()
	net := mesh.New(s, cfg)
	var cost trace.CostModel
	if *useSP2 {
		cost = sp2.Default()
	}
	if err := trace.Replay(s, net, tr, cost); err != nil {
		fmt.Fprintf(os.Stderr, "meshsim: %v\n", err)
		os.Exit(1)
	}
	s.Run()

	m := workload.MeasureLog(net.Log(), s.Now(), net.MeanUtilization())
	fmt.Printf("mesh          : %dx%d, %d VCs, %v flit cycle\n", w, h, *vcs, cfg.CycleTime)
	fmt.Printf("messages      : %d\n", m.Messages)
	fmt.Printf("simulated time: %.3f ms\n", float64(s.Now())/1e6)
	fmt.Printf("mean latency  : %.0f ns\n", m.MeanLatencyNS)
	fmt.Printf("mean blocked  : %.0f ns\n", m.MeanBlockedNS)
	fmt.Printf("mean hops     : %.2f\n", m.MeanHops)
	fmt.Printf("mean link util: %.4f\n", m.MeanUtilization)

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshsim: %v\n", err)
			os.Exit(1)
		}
		defer of.Close()
		if err := trace.WriteDeliveries(of, net.Log()); err != nil {
			fmt.Fprintf(os.Stderr, "meshsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("delivery log written to %s\n", *out)
	}
}
