// Command meshsim replays an application-level communication trace (CSV,
// as written by trace.Trace.WriteCSV) through the wormhole interconnect
// simulator, honouring send/receive dependencies, and reports network
// metrics. The fabric defaults to the paper's 2-D mesh; -topology selects
// any other supported interconnect (torus, torus3d, torus4d, hypercube,
// fattree, dragonfly), with -dims pinning the exact shape. Optionally it
// injects faults from a deterministic schedule and writes the delivery
// log for offline analysis.
//
// The replay executes through the shared run pipeline: with -cache-dir, a
// repeated replay of the same trace and configuration is served from the
// content-addressed on-disk cache instead of re-simulating.
//
// Usage:
//
//	meshsim -trace app.csv -ranks 16 [-width 4 -height 4] [-sp2] [-vcs 1]
//	        [-topology torus3d] [-dims 4,4,4]
//	        [-faults "drop:0.01;down:1<->2@1ms-2ms"] [-fault-seed 1]
//	        [-max-events N] [-max-sim-ms MS] [-max-wall D] [-out deliveries.csv]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"commchar/internal/cli"
	"commchar/internal/core"
	"commchar/internal/fault"
	"commchar/internal/mesh"
	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/report"
	"commchar/internal/sim"
	"commchar/internal/trace"
	"commchar/internal/workload"
)

func main() { cli.Main("meshsim", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("meshsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	traceFile := fs.String("trace", "", "trace CSV file (required)")
	ranks := fs.Int("ranks", 16, "number of ranks in the trace")
	width := fs.Int("width", 0, "mesh width (default: derived from ranks)")
	height := fs.Int("height", 0, "mesh height")
	useSP2 := fs.Bool("sp2", false, "charge IBM SP2 software overheads during replay")
	vcs := fs.Int("vcs", 0, "virtual channels per link (0 = fabric default)")
	topology := fs.String("topology", "", "interconnect fabric: "+strings.Join(core.TopologyNames(), ", ")+" (default: the paper's 2-D mesh)")
	dimsFlag := fs.String("dims", "", "fabric dimensions, e.g. 4,4,4 (topology-specific; default: derived from -ranks)")
	faults := fs.String("faults", "", "fault schedule, e.g. 'drop:0.01;down:1<->2@1ms-2ms' (see internal/fault)")
	faultSeed := fs.Uint64("fault-seed", 1, "seed of the fault schedule (same seed => identical run)")
	maxEvents := fs.Int64("max-events", 0, "watchdog: abort after this many simulation events (0 = unlimited)")
	maxSimMS := fs.Float64("max-sim-ms", 0, "watchdog: abort past this simulated time in ms (0 = unlimited)")
	maxWall := fs.Duration("max-wall", 0, "watchdog: abort after this much wall-clock time (0 = unlimited)")
	out := fs.String("out", "", "write the delivery log (CSV) to this file")
	pf := pipeline.AddFlags(fs)
	of := obs.AddFlags(fs)
	cf := cli.AddCommonFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cli.VersionString())
		return nil
	}

	if *traceFile == "" {
		return cli.Usagef("-trace required")
	}
	dims, err := core.ParseDims(*dimsFlag)
	if err != nil {
		return cli.Usagef("-dims: %v", err)
	}
	if *topology != "" && (*width != 0 || *height != 0) {
		return cli.Usagef("-width/-height apply to the default mesh only; use -dims with -topology")
	}
	if dims != nil && *topology == "" {
		return cli.Usagef("-dims requires -topology")
	}
	if *faults != "" {
		// Validate the schedule up front so a bad spec is a usage error,
		// not a mid-replay failure; the pipeline parses its own copy.
		if _, err := fault.Parse(*faults, *faultSeed); err != nil {
			return cli.Usagef("-faults: %v", err)
		}
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		return err
	}
	tr, err := trace.ReadCSV(f, *ranks)
	f.Close()
	if err != nil {
		var te *trace.TruncatedError
		if errors.As(err, &te) {
			// Salvageable: replay the clean prefix, but say so.
			fmt.Fprintf(stderr, "meshsim: warning: %v; replaying the %d-event prefix\n",
				err, tr.TotalEvents())
		} else {
			return err
		}
	}

	// The default 2-D mesh path keeps its exact historical spec (explicit
	// Width/Height, VCs defaulting to 1) so cache keys and journals from
	// older builds stay valid. Any other fabric rides the spec's
	// Topology/Dims fields and lets the pipeline size it.
	spec := pipeline.RunSpec{
		Trace:           tr,
		Procs:           *ranks,
		VirtualChannels: *vcs,
		UseSP2:          *useSP2,
		Faults:          *faults,
		FaultSeed:       *faultSeed,
		Watchdog: sim.Watchdog{
			MaxEvents:  *maxEvents,
			MaxSimTime: sim.Time(*maxSimMS * 1e6),
			MaxWall:    *maxWall,
		},
	}
	var fab mesh.Topology
	var fabCycle sim.Duration
	if *topology == "" {
		w, h := *width, *height
		if w == 0 || h == 0 {
			w, h = *ranks, 1
			if *ranks > 4 {
				w = 4
				h = (*ranks + 3) / 4
			}
		}
		spec.Width, spec.Height = w, h
		if spec.VirtualChannels == 0 {
			spec.VirtualChannels = 1
		}
	} else {
		spec.Topology = *topology
		spec.Dims = dims
		// Pre-flight the fabric so a bad selector or shape is a usage
		// error before any simulation state is built; the same checks run
		// again inside spec validation.
		fcfg, err := core.TopologyFor(*topology, dims, *ranks)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		if *vcs > 0 {
			fcfg.VirtualChannels = *vcs
		}
		if err := fcfg.Validate(); err != nil {
			return cli.Usagef("%v", err)
		}
		spec.VirtualChannels = fcfg.VirtualChannels
		fab = fcfg.Fabric()
		fabCycle = fcfg.CycleTime
	}

	ob, err := of.Observer(stderr)
	if err != nil {
		return err
	}
	defer ob.Close()
	eng, err := pf.EngineObserved(ob)
	if err != nil {
		return err
	}
	defer eng.Close()
	if cf.Metrics {
		defer eng.Metrics().Render(stderr)
	}
	art, err := eng.RunContext(ctx, spec)
	if err != nil {
		return err
	}

	c := art.C
	m := workload.MeasureLog(c.Log, c.Elapsed, c.MeanUtilization)
	if fab == nil {
		fmt.Fprintf(stdout, "mesh          : %dx%d, %d VCs, %v flit cycle\n",
			spec.Width, spec.Height, spec.VirtualChannels,
			mesh.DefaultConfig(spec.Width, spec.Height).CycleTime)
	} else {
		fmt.Fprintf(stdout, "fabric        : %s, %d endpoints / %d nodes, %d VCs, %v flit cycle\n",
			fab.Name(), fab.Endpoints(), fab.Nodes(), spec.VirtualChannels, fabCycle)
	}
	fmt.Fprintf(stdout, "messages      : %d\n", m.Messages)
	fmt.Fprintf(stdout, "simulated time: %.3f ms\n", float64(c.Elapsed)/1e6)
	fmt.Fprintf(stdout, "mean latency  : %.0f ns\n", m.MeanLatencyNS)
	fmt.Fprintf(stdout, "mean blocked  : %.0f ns\n", m.MeanBlockedNS)
	fmt.Fprintf(stdout, "mean hops     : %.2f\n", m.MeanHops)
	fmt.Fprintf(stdout, "mean link util: %.4f\n", m.MeanUtilization)
	if *faults != "" {
		failures := make([]error, 0, len(art.Failures))
		for _, msg := range art.Failures {
			failures = append(failures, errors.New(msg))
		}
		report.FaultSummary(stdout, c.Log, failures)
		fmt.Fprintf(stdout, "injector      : %d drops, %d corruptions\n",
			art.FaultCounters.Drops, art.FaultCounters.Corruptions)
	}

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := trace.WriteDeliveries(of, c.Log); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "delivery log written to %s\n", *out)
	}
	return nil
}
