package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"commchar/internal/cli"
	"commchar/internal/sim"
	"commchar/internal/trace"
)

// writeRingTrace writes a balanced 4-rank ring trace (each rank sends to
// its successor, receives from its predecessor, rounds times) and returns
// its path.
func writeRingTrace(t *testing.T, rounds int) string {
	t.Helper()
	tr := trace.New(4)
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < rounds; i++ {
			tr.Add(rank, trace.Event{Op: trace.OpSend, Peer: (rank + 1) % 4, Bytes: 64, Tag: i, Compute: sim.Duration(500 * (rank + 1))})
			tr.Add(rank, trace.Event{Op: trace.OpRecv, Peer: (rank + 3) % 4, Tag: i})
		}
	}
	path := filepath.Join(t.TempDir(), "ring.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFaultRunDeterministic is the acceptance check: a fault-injected run
// with message drops and retransmissions produces byte-identical delivery
// logs when repeated with the same seed, and the log flags the faulted
// messages.
func TestFaultRunDeterministic(t *testing.T) {
	tracePath := writeRingTrace(t, 25)
	logOnce := func(seed string) ([]byte, string) {
		out := filepath.Join(t.TempDir(), "deliveries.csv")
		var stdout, stderr bytes.Buffer
		err := run(context.Background(), []string{
			"-trace", tracePath, "-ranks", "4", "-width", "2", "-height", "2",
			"-faults", "drop:0.2", "-fault-seed", seed,
			"-max-events", "5000000", "-out", out,
		}, &stdout, &stderr)
		if err != nil {
			t.Fatalf("run failed: %v\n%s", err, stderr.String())
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return data, stdout.String()
	}

	a, reportA := logOnce("7")
	b, _ := logOnce("7")
	if !bytes.Equal(a, b) {
		t.Fatal("equal-seed runs produced different delivery logs")
	}
	c, _ := logOnce("8")
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical delivery logs")
	}

	log, err := trace.ReadDeliveries(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("reading log back: %v", err)
	}
	var flagged int
	for _, d := range log {
		if d.Faults != 0 {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("p=0.2 drop schedule left no flagged messages")
	}
	if !bytes.Contains([]byte(reportA), []byte("faulted msgs")) {
		t.Errorf("report missing fault summary:\n%s", reportA)
	}
}

// TestUsageErrors: command-line mistakes map to usage errors (exit 2), not
// runtime failures.
func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), nil, &out, &out)
	var ue *cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("missing -trace: expected UsageError, got %v", err)
	}
	err = run(context.Background(), []string{"-trace", "x.csv", "-faults", "nonsense"}, &out, &out)
	if !errors.As(err, &ue) {
		t.Fatalf("bad -faults: expected UsageError, got %v", err)
	}
}
