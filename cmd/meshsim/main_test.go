package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"commchar/internal/cli"
	"commchar/internal/sim"
	"commchar/internal/trace"
)

// writeRingTrace writes a balanced 4-rank ring trace (each rank sends to
// its successor, receives from its predecessor, rounds times) and returns
// its path.
func writeRingTrace(t *testing.T, rounds int) string {
	t.Helper()
	tr := trace.New(4)
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < rounds; i++ {
			tr.Add(rank, trace.Event{Op: trace.OpSend, Peer: (rank + 1) % 4, Bytes: 64, Tag: i, Compute: sim.Duration(500 * (rank + 1))})
			tr.Add(rank, trace.Event{Op: trace.OpRecv, Peer: (rank + 3) % 4, Tag: i})
		}
	}
	path := filepath.Join(t.TempDir(), "ring.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFaultRunDeterministic is the acceptance check: a fault-injected run
// with message drops and retransmissions produces byte-identical delivery
// logs when repeated with the same seed, and the log flags the faulted
// messages.
func TestFaultRunDeterministic(t *testing.T) {
	tracePath := writeRingTrace(t, 25)
	logOnce := func(seed string) ([]byte, string) {
		out := filepath.Join(t.TempDir(), "deliveries.csv")
		var stdout, stderr bytes.Buffer
		err := run(context.Background(), []string{
			"-trace", tracePath, "-ranks", "4", "-width", "2", "-height", "2",
			"-faults", "drop:0.2", "-fault-seed", seed,
			"-max-events", "5000000", "-out", out,
		}, &stdout, &stderr)
		if err != nil {
			t.Fatalf("run failed: %v\n%s", err, stderr.String())
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return data, stdout.String()
	}

	a, reportA := logOnce("7")
	b, _ := logOnce("7")
	if !bytes.Equal(a, b) {
		t.Fatal("equal-seed runs produced different delivery logs")
	}
	c, _ := logOnce("8")
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical delivery logs")
	}

	log, err := trace.ReadDeliveries(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("reading log back: %v", err)
	}
	var flagged int
	for _, d := range log {
		if d.Faults != 0 {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("p=0.2 drop schedule left no flagged messages")
	}
	if !bytes.Contains([]byte(reportA), []byte("faulted msgs")) {
		t.Errorf("report missing fault summary:\n%s", reportA)
	}
}

// TestUsageErrors: command-line mistakes map to usage errors (exit 2), not
// runtime failures.
func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), nil, &out, &out)
	var ue *cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("missing -trace: expected UsageError, got %v", err)
	}
	err = run(context.Background(), []string{"-trace", "x.csv", "-faults", "nonsense"}, &out, &out)
	if !errors.As(err, &ue) {
		t.Fatalf("bad -faults: expected UsageError, got %v", err)
	}
}

// TestTopologyFlagEndToEnd replays the same trace on every fabric through
// the full command path and checks the header names the fabric, the run
// is deterministic, and the default path still prints the legacy header.
func TestTopologyFlagEndToEnd(t *testing.T) {
	tracePath := writeRingTrace(t, 10)
	runOnce := func(args ...string) string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		all := append([]string{"-trace", tracePath, "-ranks", "4", "-max-events", "5000000"}, args...)
		if err := run(context.Background(), all, &stdout, &stderr); err != nil {
			t.Fatalf("run %v failed: %v\n%s", args, err, stderr.String())
		}
		return stdout.String()
	}

	if out := runOnce(); !bytes.Contains([]byte(out), []byte("mesh          : 4x1")) {
		t.Errorf("default run lost the legacy header:\n%s", out)
	}
	for topo, name := range map[string]string{
		"torus3d":   "torus2x2x2",
		"fattree":   "fattree4:1",
		"dragonfly": "dragonfly a2h1",
		"hypercube": "hypercube2d",
	} {
		out := runOnce("-topology", topo)
		if !bytes.Contains([]byte(out), []byte("fabric        : "+name)) {
			t.Errorf("-topology %s header missing %q:\n%s", topo, name, out)
		}
		if out != runOnce("-topology", topo) {
			t.Errorf("-topology %s runs diverged", topo)
		}
	}
	out := runOnce("-topology", "torus", "-dims", "4,4")
	if !bytes.Contains([]byte(out), []byte("fabric        : torus4x4")) {
		t.Errorf("-dims did not pin the shape:\n%s", out)
	}
}

// TestTopologyUsageErrors: topology-invalid invocations exit as usage
// errors before any simulation state is built.
func TestTopologyUsageErrors(t *testing.T) {
	tracePath := writeRingTrace(t, 1)
	for name, args := range map[string][]string{
		"unknown fabric":    {"-topology", "nosuch"},
		"bad dims":          {"-topology", "torus", "-dims", "4,x"},
		"dims without topo": {"-dims", "4,4"},
		"width with topo":   {"-topology", "torus3d", "-width", "2", "-height", "2"},
		"torus one lane":    {"-topology", "torus3d", "-vcs", "1"},
		"too small":         {"-topology", "hypercube", "-dims", "1"},
	} {
		var out bytes.Buffer
		all := append([]string{"-trace", tracePath, "-ranks", "4"}, args...)
		err := run(context.Background(), all, &out, &out)
		var ue *cli.UsageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: expected UsageError, got %v", name, err)
		}
	}
}
