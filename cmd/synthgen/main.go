// Command synthgen demonstrates the methodology's payoff: it characterizes
// an application (or a previously saved delivery log), regenerates
// synthetic traffic from the fitted temporal/spatial/volume models, drives
// the mesh with it, and compares network metrics between the real and
// synthetic workloads.
//
// The -app path executes through the shared run pipeline: with
// -cache-dir, a repeated characterization is served from the
// content-addressed on-disk cache instead of re-simulating.
//
// Usage:
//
//	synthgen -app 1D-FFT [-procs 16] [-scale full|small] [-seed 1] [-cache-dir .cache]
//	synthgen -app 1D-FFT -topology torus3d [-dims 4,4,4]
//	synthgen -log deliveries.csv -procs 16 -elapsed-ms 3.2
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"commchar/internal/apps"
	"commchar/internal/cli"
	"commchar/internal/core"
	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/sim"
	"commchar/internal/trace"
	"commchar/internal/workload"
)

func main() { cli.Main("synthgen", run) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synthgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "", "application name to characterize and regenerate")
	logFile := fs.String("log", "", "delivery-log CSV to characterize instead of running an app")
	procs := fs.Int("procs", 16, "number of processors")
	scale := fs.String("scale", "full", "problem scale: full or small")
	seed := fs.Uint64("seed", 1, "random seed for the synthetic generator")
	elapsedMS := fs.Float64("elapsed-ms", 0, "simulated duration of the log (required with -log)")
	topology := fs.String("topology", "", "interconnect fabric for -app runs: "+strings.Join(core.TopologyNames(), ", ")+" (default: the paper's 2-D mesh)")
	dimsFlag := fs.String("dims", "", "fabric dimensions, e.g. 4,4,4 (topology-specific; default: derived from -procs)")
	pf := pipeline.AddFlags(fs)
	of := obs.AddFlags(fs)
	cf := cli.AddCommonFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cli.VersionString())
		return nil
	}

	dims, err := core.ParseDims(*dimsFlag)
	if err != nil {
		return cli.Usagef("-dims: %v", err)
	}

	var c *core.Characterization
	switch {
	case *app != "":
		sc := apps.ScaleFull
		if *scale == "small" {
			sc = apps.ScaleSmall
		}
		if _, err := apps.ByName(sc, *app); err != nil {
			return cli.Usagef("%v", err)
		}
		ob, err := of.Observer(stderr)
		if err != nil {
			return err
		}
		defer ob.Close()
		eng, err := pf.EngineObserved(ob)
		if err != nil {
			return err
		}
		defer eng.Close()
		if cf.Metrics {
			defer eng.Metrics().Render(stderr)
		}
		art, err := eng.RunContext(ctx, pipeline.RunSpec{
			App: *app, Procs: *procs, Scale: sc,
			Topology: *topology, Dims: dims,
		})
		if err != nil {
			return err
		}
		c = art.C
	case *logFile != "":
		if *elapsedMS <= 0 {
			return cli.Usagef("-elapsed-ms required with -log")
		}
		f, err := os.Open(*logFile)
		if err != nil {
			return err
		}
		log, err := trace.ReadDeliveries(f)
		f.Close()
		if err != nil {
			return err
		}
		c, err = core.Analyze(*logFile, core.StrategyStatic, log, *procs,
			sim.Time(*elapsedMS*1e6), 0)
		if err != nil {
			return err
		}
	default:
		return cli.Usagef("one of -app or -log required")
	}

	v, err := workload.Validate(c, *seed)
	if err != nil {
		return err
	}

	best := c.BestAggregate()
	fmt.Fprintf(stdout, "characterized %s: %d messages, aggregate model %s (R²=%.4f)\n\n",
		c.Name, c.Messages, best.Dist, best.R2)
	fmt.Fprintf(stdout, "%-22s %14s %14s %8s\n", "metric", "original", "synthetic", "rel.err")
	fmt.Fprintf(stdout, "%-22s %14.4f %14.4f %8.3f\n", "msg rate (msg/us)",
		v.Original.MessageRate, v.Synthetic.MessageRate, v.RateErr)
	fmt.Fprintf(stdout, "%-22s %14.0f %14.0f %8.3f\n", "mean latency (ns)",
		v.Original.MeanLatencyNS, v.Synthetic.MeanLatencyNS, v.LatencyErr)
	fmt.Fprintf(stdout, "%-22s %14.4f %14.4f %8.3f\n", "mean link utilization",
		v.Original.MeanUtilization, v.Synthetic.MeanUtilization, v.UtilErr)
	return nil
}
