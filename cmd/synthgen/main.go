// Command synthgen demonstrates the methodology's payoff: it characterizes
// an application (or a previously saved delivery log), regenerates
// synthetic traffic from the fitted temporal/spatial/volume models, drives
// the mesh with it, and compares network metrics between the real and
// synthetic workloads.
//
// Usage:
//
//	synthgen -app 1D-FFT [-procs 16] [-scale full|small] [-seed 1]
//	synthgen -log deliveries.csv -procs 16 -elapsed-ms 3.2
package main

import (
	"flag"
	"fmt"
	"os"

	"commchar/internal/apps"
	"commchar/internal/core"
	"commchar/internal/trace"
	"commchar/internal/workload"

	"commchar/internal/sim"
)

func main() {
	app := flag.String("app", "", "application name to characterize and regenerate")
	logFile := flag.String("log", "", "delivery-log CSV to characterize instead of running an app")
	procs := flag.Int("procs", 16, "number of processors")
	scale := flag.String("scale", "full", "problem scale: full or small")
	seed := flag.Uint64("seed", 1, "random seed for the synthetic generator")
	elapsedMS := flag.Float64("elapsed-ms", 0, "simulated duration of the log (required with -log)")
	flag.Parse()

	var c *core.Characterization
	switch {
	case *app != "":
		sc := apps.ScaleFull
		if *scale == "small" {
			sc = apps.ScaleSmall
		}
		w, err := apps.ByName(sc, *app)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
			os.Exit(2)
		}
		c, err = w.Characterize(*procs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
			os.Exit(1)
		}
	case *logFile != "":
		if *elapsedMS <= 0 {
			fmt.Fprintln(os.Stderr, "synthgen: -elapsed-ms required with -log")
			os.Exit(2)
		}
		f, err := os.Open(*logFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
			os.Exit(1)
		}
		log, err := trace.ReadDeliveries(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
			os.Exit(1)
		}
		c, err = core.Analyze(*logFile, core.StrategyStatic, log, *procs,
			sim.Time(*elapsedMS*1e6), 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "synthgen: one of -app or -log required")
		os.Exit(2)
	}

	v, err := workload.Validate(c, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
		os.Exit(1)
	}

	best := c.BestAggregate()
	fmt.Printf("characterized %s: %d messages, aggregate model %s (R²=%.4f)\n\n",
		c.Name, c.Messages, best.Dist, best.R2)
	fmt.Printf("%-22s %14s %14s %8s\n", "metric", "original", "synthetic", "rel.err")
	fmt.Printf("%-22s %14.4f %14.4f %8.3f\n", "msg rate (msg/us)",
		v.Original.MessageRate, v.Synthetic.MessageRate, v.RateErr)
	fmt.Printf("%-22s %14.0f %14.0f %8.3f\n", "mean latency (ns)",
		v.Original.MeanLatencyNS, v.Synthetic.MeanLatencyNS, v.LatencyErr)
	fmt.Printf("%-22s %14.4f %14.4f %8.3f\n", "mean link utilization",
		v.Original.MeanUtilization, v.Synthetic.MeanUtilization, v.UtilErr)
}
