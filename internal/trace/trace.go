// Package trace defines the application-level communication trace used by
// the paper's static (trace-driven) strategy, and the dependency-aware
// replay engine that feeds a trace through the mesh simulator without the
// classic trace-driven pitfalls [13]: a message is never injected before
// its sender has completed the receives it causally waited on, so the event
// order on the network simulator matches the order any real execution would
// produce.
package trace

import (
	"fmt"

	"commchar/internal/sim"
)

// Op is the kind of a trace event.
type Op int

const (
	// OpSend transmits Bytes to Peer with Tag.
	OpSend Op = iota
	// OpRecv blocks until a matching message (from Peer, with Tag)
	// arrives.
	OpRecv
)

func (o Op) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Event is one communication event in a rank's local program order.
// Compute is the local computation time spent since the rank's previous
// event (the "think time" the replay engine preserves).
type Event struct {
	Op      Op
	Peer    int
	Bytes   int
	Tag     int
	Compute sim.Duration
}

// Trace is a complete application trace: one event sequence per rank, in
// program order.
type Trace struct {
	Ranks  int
	Events [][]Event
}

// New returns an empty trace for n ranks.
func New(n int) *Trace {
	return &Trace{Ranks: n, Events: make([][]Event, n)}
}

// Add appends an event to a rank's sequence.
func (t *Trace) Add(rank int, e Event) {
	t.Events[rank] = append(t.Events[rank], e)
}

// Messages returns the total number of send events.
func (t *Trace) Messages() int {
	n := 0
	for _, seq := range t.Events {
		for _, e := range seq {
			if e.Op == OpSend {
				n++
			}
		}
	}
	return n
}

// TotalEvents returns the number of events across all ranks.
func (t *Trace) TotalEvents() int {
	n := 0
	for _, seq := range t.Events {
		n += len(seq)
	}
	return n
}

// Validate checks the structural sanity of the trace: peers in range and
// sends matched by receives (same count per (src, dst, tag) channel).
func (t *Trace) Validate() error {
	if len(t.Events) != t.Ranks {
		return fmt.Errorf("trace: %d event sequences for %d ranks", len(t.Events), t.Ranks)
	}
	type channel struct{ src, dst, tag int }
	balance := map[channel]int{}
	for rank, seq := range t.Events {
		for i, e := range seq {
			if e.Peer < 0 || e.Peer >= t.Ranks {
				return fmt.Errorf("trace: rank %d event %d peer %d out of range", rank, i, e.Peer)
			}
			if e.Compute < 0 {
				return fmt.Errorf("trace: rank %d event %d negative compute", rank, i)
			}
			switch e.Op {
			case OpSend:
				if e.Bytes <= 0 {
					return fmt.Errorf("trace: rank %d event %d sends %d bytes", rank, i, e.Bytes)
				}
				balance[channel{rank, e.Peer, e.Tag}]++
			case OpRecv:
				balance[channel{e.Peer, rank, e.Tag}]--
			default:
				return fmt.Errorf("trace: rank %d event %d has op %v", rank, i, e.Op)
			}
		}
	}
	for ch, b := range balance {
		if b != 0 {
			return fmt.Errorf("trace: channel %d->%d tag %d unbalanced by %d", ch.src, ch.dst, ch.tag, b)
		}
	}
	return nil
}
