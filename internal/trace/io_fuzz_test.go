package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadCSV checks the trace reader never panics on arbitrary input, and
// that any input it accepts round-trips: write the parsed trace back out
// and re-reading must reproduce it exactly.
func FuzzReadCSV(f *testing.F) {
	f.Add("rank,op,peer,bytes,tag,compute_ns\n0,send,1,8,0,100\n1,recv,0,8,0,50\n")
	f.Add("rank,op,peer,bytes,tag,compute_ns\n")
	f.Add("rank,op,peer,bytes,tag,compute_ns\n0,send,1,8")
	f.Add("rank,op,peer,bytes,tag,compute_ns\n0,send,1,8,0,100,extra,extra\n")
	f.Add("\"unterminated")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		const ranks = 4
		tr, err := ReadCSV(strings.NewReader(data), ranks)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("write-back of accepted trace failed: %v", err)
		}
		again, err := ReadCSV(&buf, ranks)
		if err != nil {
			t.Fatalf("re-read of written trace failed: %v", err)
		}
		if !reflect.DeepEqual(tr.Events, again.Events) {
			t.Fatalf("round trip diverged:\n%v\nvs\n%v", tr.Events, again.Events)
		}
	})
}

// FuzzReadDeliveries does the same for the delivery-log reader: no panics,
// and accepted logs (current 12-column or legacy 9-column) round-trip
// through WriteDeliveries unchanged.
func FuzzReadDeliveries(f *testing.F) {
	f.Add("id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops,retries,faults,status\n" +
		"1,0,3,64,0,900,900,0,3,0,0,0\n")
	f.Add("id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops\n1,0,3,64,0,900,900,0,3\n")
	f.Add("id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops,retries,faults,status\n1,0,3\n")
	f.Add("\"broken")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		log, err := ReadDeliveries(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDeliveries(&buf, log); err != nil {
			t.Fatalf("write-back of accepted log failed: %v", err)
		}
		again, err := ReadDeliveries(&buf)
		if err != nil {
			t.Fatalf("re-read of written log failed: %v", err)
		}
		if len(log) == 0 && len(again) == 0 {
			return
		}
		if !reflect.DeepEqual(log, again) {
			t.Fatalf("round trip diverged:\n%v\nvs\n%v", log, again)
		}
	})
}
