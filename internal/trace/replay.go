package trace

import (
	"fmt"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// CostModel charges communication-software overheads during replay, in the
// role of the validated IBM SP2 model of the paper.
type CostModel interface {
	// SendOverhead is the software time on the sender before the message
	// enters the network.
	SendOverhead(bytes int) sim.Duration
	// RecvOverhead is the software time on the receiver after the message
	// leaves the network.
	RecvOverhead(bytes int) sim.Duration
}

// ZeroCost charges no software overhead (raw network replay).
type ZeroCost struct{}

// SendOverhead implements CostModel.
func (ZeroCost) SendOverhead(int) sim.Duration { return 0 }

// RecvOverhead implements CostModel.
func (ZeroCost) RecvOverhead(int) sim.Duration { return 0 }

// Replay drives the trace through the network. Each rank becomes a process
// on the network's simulator that re-executes its event sequence: compute
// deltas are slept, sends inject real messages (after the sender-side
// software overhead), and receives block until the matching message's tail
// arrives (plus the receiver-side overhead). Rank i is placed on mesh node
// i. The caller runs the simulator; the network log then contains the
// replayed traffic.
//
// Matching is FIFO per (source, tag) channel, the usual message-passing
// semantics.
func Replay(s *sim.Simulator, net *mesh.Network, t *Trace, cost CostModel) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Ranks > net.Config().Nodes() {
		return fmt.Errorf("trace: %d ranks exceed %d mesh nodes", t.Ranks, net.Config().Nodes())
	}
	if cost == nil {
		cost = ZeroCost{}
	}

	// Per-rank inbox: delivered byte counts per channel, and a waiting
	// receiver (at most one per rank since ranks are sequential).
	type inbox struct {
		arrived map[replayChannel][]int // byte counts, FIFO
		waiting map[replayChannel]sim.Waker
	}
	inboxes := make([]inbox, t.Ranks)
	for i := range inboxes {
		inboxes[i] = inbox{arrived: map[replayChannel][]int{}, waiting: map[replayChannel]sim.Waker{}}
	}
	procs := make([]*sim.Process, t.Ranks)

	for rank := 0; rank < t.Ranks; rank++ {
		rank := rank
		seq := t.Events[rank]
		s.Spawn(fmt.Sprintf("replay-rank%d", rank), func(p *sim.Process) {
			procs[rank] = p
			for _, e := range seq {
				p.Hold(e.Compute)
				switch e.Op {
				case OpSend:
					p.Hold(cost.SendOverhead(e.Bytes))
					dst := e.Peer
					ch := replayChannel{src: rank, tag: e.Tag}
					m := mesh.Message{
						ID:     net.NextID(),
						Src:    rank,
						Dst:    dst,
						Bytes:  e.Bytes,
						Inject: p.Now(),
					}
					net.Inject(m, func(d mesh.Delivery) {
						if d.Status != mesh.StatusDelivered {
							// The network gave up on the message (fault
							// injection); the receiver stays blocked and
							// the watchdog reports the stall.
							return
						}
						ib := &inboxes[dst]
						ib.arrived[ch] = append(ib.arrived[ch], d.Bytes)
						if w, ok := ib.waiting[ch]; ok {
							delete(ib.waiting, ch)
							w.Wake()
						}
					})
				case OpRecv:
					ch := replayChannel{src: e.Peer, tag: e.Tag}
					ib := &inboxes[rank]
					for len(ib.arrived[ch]) == 0 {
						ib.waiting[ch] = sim.WakerFor(p)
						p.SuspendOn(replayWait{procs: procs, src: e.Peer, tag: e.Tag})
					}
					bytes := ib.arrived[ch][0]
					ib.arrived[ch] = ib.arrived[ch][1:]
					p.Hold(cost.RecvOverhead(bytes))
				}
			}
		})
	}
	return nil
}

// replayChannel is the FIFO matching key of the replay engine.
type replayChannel struct{ src, tag int }

// replayWait is the sim.Resource a replayed rank blocks on while waiting
// for a message; its holder is the sender's replay process, which gives
// watchdog reports their wait-for edges.
type replayWait struct {
	procs []*sim.Process
	src   int
	tag   int
}

// ResourceName implements sim.Resource.
func (w replayWait) ResourceName() string {
	return fmt.Sprintf("message from rank %d (tag %d)", w.src, w.tag)
}

// Holders implements sim.Resource.
func (w replayWait) Holders() []*sim.Process {
	if p := w.procs[w.src]; p != nil {
		return []*sim.Process{p}
	}
	return nil
}
