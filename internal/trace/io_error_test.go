package trace

import (
	"strings"
	"testing"
)

func TestReadCSVErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"short row", "rank,op,peer,bytes,tag,compute_ns\n0,send\n"},
		{"bad rank", "rank,op,peer,bytes,tag,compute_ns\nx,send,1,8,0,0\n"},
		{"rank out of range", "rank,op,peer,bytes,tag,compute_ns\n9,send,1,8,0,0\n"},
		{"bad op", "rank,op,peer,bytes,tag,compute_ns\n0,sendd,1,8,0,0\n"},
		{"bad peer", "rank,op,peer,bytes,tag,compute_ns\n0,send,x,8,0,0\n"},
		{"bad bytes", "rank,op,peer,bytes,tag,compute_ns\n0,send,1,x,0,0\n"},
		{"bad tag", "rank,op,peer,bytes,tag,compute_ns\n0,send,1,8,x,0\n"},
		{"bad compute", "rank,op,peer,bytes,tag,compute_ns\n0,send,1,8,0,x\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv), 2); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadDeliveriesErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"short row", "id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops\n1,2\n"},
		{"bad field", "id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops\n1,2,3,4,5,6,7,8,x\n"},
	}
	for _, c := range cases {
		if _, err := ReadDeliveries(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpSend.String() != "send" || OpRecv.String() != "recv" {
		t.Fatal("op strings wrong")
	}
	if !strings.Contains(Op(9).String(), "9") {
		t.Fatal("unknown op string")
	}
}
