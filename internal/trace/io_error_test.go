package trace

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func TestReadCSVErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"short row", "rank,op,peer,bytes,tag,compute_ns\n0,send\n"},
		{"bad rank", "rank,op,peer,bytes,tag,compute_ns\nx,send,1,8,0,0\n"},
		{"rank out of range", "rank,op,peer,bytes,tag,compute_ns\n9,send,1,8,0,0\n"},
		{"bad op", "rank,op,peer,bytes,tag,compute_ns\n0,sendd,1,8,0,0\n"},
		{"bad peer", "rank,op,peer,bytes,tag,compute_ns\n0,send,x,8,0,0\n"},
		{"bad bytes", "rank,op,peer,bytes,tag,compute_ns\n0,send,1,x,0,0\n"},
		{"bad tag", "rank,op,peer,bytes,tag,compute_ns\n0,send,1,8,x,0\n"},
		{"bad compute", "rank,op,peer,bytes,tag,compute_ns\n0,send,1,8,0,x\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv), 2); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestReadCSVParseErrorsKeepCause pins the errtaxonomy contract on the
// reader's field errors: the underlying *strconv.NumError must stay
// reachable through errors.As, so callers above the pipeline boundary
// can distinguish a malformed field from a structural trace problem.
// (The repolint errtaxonomy audit found these wraps dropping the cause.)
func TestReadCSVParseErrorsKeepCause(t *testing.T) {
	header := "rank,op,peer,bytes,tag,compute_ns\n"
	cases := []struct {
		name string
		row  string
	}{
		{"bad rank", "x,send,1,8,0,0"},
		{"bad peer", "0,send,x,8,0,0"},
		{"bad bytes", "0,send,1,x,0,0"},
		{"bad tag", "0,send,1,8,x,0"},
		{"bad compute", "0,send,1,8,0,x"},
	}
	for _, c := range cases {
		_, err := ReadCSV(strings.NewReader(header+c.row+"\n"), 2)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var ne *strconv.NumError
		if !errors.As(err, &ne) {
			t.Errorf("%s: cause not wrapped, errors.As found no *strconv.NumError in %v", c.name, err)
		}
	}
	// An in-range parse failure must not be confused with the
	// out-of-range case, which has no underlying parse error.
	_, err := ReadCSV(strings.NewReader(header+"9,send,1,8,0,0\n"), 2)
	var ne *strconv.NumError
	if err == nil || errors.As(err, &ne) {
		t.Errorf("rank out of range: got %v, want a plain range error", err)
	}
}

func TestReadDeliveriesErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"short row", "id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops\n1,2\n"},
		{"bad field", "id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops\n1,2,3,4,5,6,7,8,x\n"},
	}
	for _, c := range cases {
		if _, err := ReadDeliveries(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadCSVTruncatedFinalRecord(t *testing.T) {
	header := "rank,op,peer,bytes,tag,compute_ns\n"
	good := "0,send,1,8,0,100\n1,recv,0,8,0,50\n"
	in := header + good + "0,send,1" // write cut off mid-record

	tr, err := ReadCSV(strings.NewReader(in), 2)
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("expected TruncatedError, got %v", err)
	}
	if te.Line != 4 {
		t.Errorf("line = %d, want 4", te.Line)
	}
	if want := int64(len(header) + len(good)); te.Offset != want {
		t.Errorf("offset = %d, want %d (bytes before the broken record)", te.Offset, want)
	}
	// The clean prefix is salvaged.
	if len(tr.Events[0]) != 1 || len(tr.Events[1]) != 1 {
		t.Errorf("prefix not salvaged: %v", tr.Events)
	}
}

func TestReadCSVUnterminatedQuoteIsTruncation(t *testing.T) {
	in := "rank,op,peer,bytes,tag,compute_ns\n0,send,1,8,0,100\n\"0,send"
	tr, err := ReadCSV(strings.NewReader(in), 2)
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("expected TruncatedError, got %v", err)
	}
	if len(tr.Events[0]) != 1 {
		t.Errorf("prefix not salvaged: %v", tr.Events)
	}
}

func TestReadCSVMidFileBadRowsAreHardErrors(t *testing.T) {
	cases := []struct {
		name string
		row  string
	}{
		{"short", "0,send,1"},
		{"over-long", "0,send,1,8,0,100,junk,junk"},
		{"garbage", "\x00\xff{]garbage"},
	}
	for _, c := range cases {
		// A good row follows the bad one, so this is not a truncated tail.
		in := "rank,op,peer,bytes,tag,compute_ns\n" + c.row + "\n0,send,1,8,0,100\n"
		_, err := ReadCSV(strings.NewReader(in), 2)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var te *TruncatedError
		if errors.As(err, &te) && c.name != "garbage" {
			// Field-count errors mid-file must not claim truncation.
			// (Garbage may break the csv layer itself, which is reported
			// as a truncation at that record; that is acceptable.)
			t.Errorf("%s: mid-file error misreported as truncation: %v", c.name, err)
		}
	}
}

func TestReadDeliveriesTruncatedFinalRecord(t *testing.T) {
	header := "id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops,retries,faults,status\n"
	good := "1,0,3,64,0,900,900,0,3,0,0,0\n2,1,2,32,10,800,790,0,2,1,1,0\n"
	in := header + good + "3,2,1,16"

	log, err := ReadDeliveries(strings.NewReader(in))
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("expected TruncatedError, got %v", err)
	}
	if te.Line != 4 {
		t.Errorf("line = %d, want 4", te.Line)
	}
	if want := int64(len(header) + len(good)); te.Offset != want {
		t.Errorf("offset = %d, want %d", te.Offset, want)
	}
	if len(log) != 2 {
		t.Fatalf("salvaged %d deliveries, want 2", len(log))
	}
	if log[1].Retries != 1 || log[1].Faults == 0 {
		t.Errorf("fault columns lost in salvage: %+v", log[1])
	}
}

func TestReadDeliveriesLegacyNineColumns(t *testing.T) {
	in := "id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops\n" +
		"7,0,3,64,0,900,900,40,3\n"
	log, err := ReadDeliveries(strings.NewReader(in))
	if err != nil {
		t.Fatalf("legacy log rejected: %v", err)
	}
	if len(log) != 1 {
		t.Fatalf("got %d deliveries", len(log))
	}
	d := log[0]
	if d.ID != 7 || d.Hops != 3 || d.Blocked != 40 {
		t.Errorf("legacy fields wrong: %+v", d)
	}
	if d.Retries != 0 || d.Faults != 0 || d.Status != 0 {
		t.Errorf("legacy log should read as clean traffic: %+v", d)
	}
}

func TestOpString(t *testing.T) {
	if OpSend.String() != "send" || OpRecv.String() != "recv" {
		t.Fatal("op strings wrong")
	}
	if !strings.Contains(Op(9).String(), "9") {
		t.Fatal("unknown op string")
	}
}
