package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

func pingPong() *Trace {
	t := New(2)
	t.Add(0, Event{Op: OpSend, Peer: 1, Bytes: 64, Tag: 1, Compute: 100})
	t.Add(0, Event{Op: OpRecv, Peer: 1, Tag: 2})
	t.Add(1, Event{Op: OpRecv, Peer: 0, Tag: 1})
	t.Add(1, Event{Op: OpSend, Peer: 0, Bytes: 32, Tag: 2, Compute: 50})
	return t
}

func TestValidateAcceptsBalanced(t *testing.T) {
	if err := pingPong().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsUnbalanced(t *testing.T) {
	tr := New(2)
	tr.Add(0, Event{Op: OpSend, Peer: 1, Bytes: 8, Tag: 0})
	if tr.Validate() == nil {
		t.Fatal("unmatched send accepted")
	}
}

func TestValidateRejectsBadPeer(t *testing.T) {
	tr := New(2)
	tr.Add(0, Event{Op: OpSend, Peer: 5, Bytes: 8})
	if tr.Validate() == nil {
		t.Fatal("out-of-range peer accepted")
	}
}

func TestValidateRejectsZeroBytes(t *testing.T) {
	tr := New(2)
	tr.Add(0, Event{Op: OpSend, Peer: 1, Bytes: 0})
	tr.Add(1, Event{Op: OpRecv, Peer: 0})
	if tr.Validate() == nil {
		t.Fatal("zero-byte send accepted")
	}
}

func TestMessagesCount(t *testing.T) {
	if got := pingPong().Messages(); got != 2 {
		t.Fatalf("messages = %d, want 2", got)
	}
}

func TestReplayPingPong(t *testing.T) {
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(2, 1))
	if err := Replay(s, net, pingPong(), nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	log := net.Log()
	if len(log) != 2 {
		t.Fatalf("replayed %d messages, want 2", len(log))
	}
	// Causality: rank 1's send must be injected after rank 0's message
	// was delivered to it (plus its own compute of 50).
	first, second := log[0], log[1]
	if first.Src != 0 || second.Src != 1 {
		t.Fatalf("unexpected order: %+v", log)
	}
	if second.Inject < first.End+50 {
		t.Fatalf("dependent send at %d before delivery %d + compute", second.Inject, first.End)
	}
	// Rank 0's send must be injected at its compute offset.
	if first.Inject != 100 {
		t.Fatalf("first inject at %d, want 100", first.Inject)
	}
}

type fixedCost struct{ send, recv sim.Duration }

func (c fixedCost) SendOverhead(int) sim.Duration { return c.send }
func (c fixedCost) RecvOverhead(int) sim.Duration { return c.recv }

func TestReplayCostModelShiftsInjection(t *testing.T) {
	run := func(cost CostModel) mesh.Delivery {
		s := sim.New()
		net := mesh.New(s, mesh.DefaultConfig(2, 1))
		tr := New(2)
		tr.Add(0, Event{Op: OpSend, Peer: 1, Bytes: 64, Tag: 0})
		tr.Add(1, Event{Op: OpRecv, Peer: 0, Tag: 0})
		if err := Replay(s, net, tr, cost); err != nil {
			t.Fatal(err)
		}
		s.Run()
		return net.Log()[0]
	}
	base := run(nil)
	shifted := run(fixedCost{send: 500, recv: 200})
	if shifted.Inject != base.Inject+500 {
		t.Fatalf("send overhead not applied: %d vs %d", shifted.Inject, base.Inject)
	}
}

func TestReplayFIFOMatchingSameChannel(t *testing.T) {
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(2, 1))
	tr := New(2)
	// Two sends on the same channel; receives must match FIFO and the
	// replay must complete (no deadlock).
	tr.Add(0, Event{Op: OpSend, Peer: 1, Bytes: 8, Tag: 0})
	tr.Add(0, Event{Op: OpSend, Peer: 1, Bytes: 16, Tag: 0, Compute: 10})
	tr.Add(1, Event{Op: OpRecv, Peer: 0, Tag: 0})
	tr.Add(1, Event{Op: OpRecv, Peer: 0, Tag: 0})
	if err := Replay(s, net, tr, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if net.Delivered() != 2 {
		t.Fatalf("delivered %d", net.Delivered())
	}
}

func TestReplayManyRanksAllToAll(t *testing.T) {
	const n = 8
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(4, 2))
	tr := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			tr.Add(i, Event{Op: OpSend, Peer: j, Bytes: 128, Tag: i*n + j, Compute: 10})
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			tr.Add(i, Event{Op: OpRecv, Peer: j, Tag: j*n + i})
		}
	}
	if err := Replay(s, net, tr, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if net.Delivered() != n*(n-1) {
		t.Fatalf("delivered %d, want %d", net.Delivered(), n*(n-1))
	}
	if net.InFlight() != 0 {
		t.Fatal("messages still in flight")
	}
}

func TestReplayRejectsTooManyRanks(t *testing.T) {
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(2, 1))
	if err := Replay(s, net, New(5), nil); err == nil {
		t.Fatal("5 ranks on 2 nodes accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := pingPong()
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ranks != orig.Ranks {
		t.Fatalf("ranks = %d", back.Ranks)
	}
	for r := range orig.Events {
		if len(back.Events[r]) != len(orig.Events[r]) {
			t.Fatalf("rank %d: %d events, want %d", r, len(back.Events[r]), len(orig.Events[r]))
		}
		for i := range orig.Events[r] {
			if back.Events[r][i] != orig.Events[r][i] {
				t.Fatalf("rank %d event %d: %+v != %+v", r, i, back.Events[r][i], orig.Events[r][i])
			}
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	prop := func(seed uint64, count uint8) bool {
		st := sim.NewStream(seed)
		const ranks = 4
		tr := New(ranks)
		n := int(count)%50 + 1
		for i := 0; i < n; i++ {
			src := st.IntN(ranks)
			dst := st.IntN(ranks)
			if src == dst {
				dst = (dst + 1) % ranks
			}
			tag := st.IntN(8)
			bytes := 1 + st.IntN(4096)
			tr.Add(src, Event{Op: OpSend, Peer: dst, Bytes: bytes, Tag: tag, Compute: sim.Duration(st.IntN(1000))})
			tr.Add(dst, Event{Op: OpRecv, Peer: src, Tag: tag})
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf, ranks)
		if err != nil {
			return false
		}
		if back.Messages() != tr.Messages() {
			return false
		}
		for r := range tr.Events {
			for i := range tr.Events[r] {
				if back.Events[r][i] != tr.Events[r][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveriesRoundTrip(t *testing.T) {
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(4, 2))
	st := sim.NewStream(1)
	for i := 0; i < 50; i++ {
		net.Inject(mesh.Message{
			ID: int64(i + 1), Src: st.IntN(8), Dst: st.IntN(8),
			Bytes: 1 + st.IntN(512), Inject: sim.Time(st.IntN(1000)),
		}, nil)
	}
	s.Run()
	log := net.Log()
	var buf bytes.Buffer
	if err := WriteDeliveries(&buf, log); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDeliveries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(log) {
		t.Fatalf("read %d deliveries, want %d", len(back), len(log))
	}
	for i := range log {
		if back[i] != log[i] {
			t.Fatalf("delivery %d: %+v != %+v", i, back[i], log[i])
		}
	}
}
