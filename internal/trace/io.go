package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// WriteCSV serializes the trace as CSV with header
// rank,op,peer,bytes,tag,compute_ns — one row per event, in program order.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "op", "peer", "bytes", "tag", "compute_ns"}); err != nil {
		return err
	}
	for rank, seq := range t.Events {
		for _, e := range seq {
			row := []string{
				strconv.Itoa(rank),
				e.Op.String(),
				strconv.Itoa(e.Peer),
				strconv.Itoa(e.Bytes),
				strconv.Itoa(e.Tag),
				strconv.FormatInt(int64(e.Compute), 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. ranks is the machine size;
// rows may appear in any rank order but must be in program order per rank.
func ReadCSV(r io.Reader, ranks int) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty file")
	}
	t := New(ranks)
	for i, row := range rows[1:] { // skip header
		if len(row) != 6 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i+2, len(row))
		}
		rank, err := strconv.Atoi(row[0])
		if err != nil || rank < 0 || rank >= ranks {
			return nil, fmt.Errorf("trace: row %d bad rank %q", i+2, row[0])
		}
		var op Op
		switch row[1] {
		case "send":
			op = OpSend
		case "recv":
			op = OpRecv
		default:
			return nil, fmt.Errorf("trace: row %d bad op %q", i+2, row[1])
		}
		peer, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d bad peer %q", i+2, row[2])
		}
		bytes, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d bad bytes %q", i+2, row[3])
		}
		tag, err := strconv.Atoi(row[4])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d bad tag %q", i+2, row[4])
		}
		compute, err := strconv.ParseInt(row[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d bad compute %q", i+2, row[5])
		}
		t.Add(rank, Event{Op: op, Peer: peer, Bytes: bytes, Tag: tag, Compute: sim.Duration(compute)})
	}
	return t, nil
}

// WriteDeliveries serializes a network log as CSV with header
// id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops.
func WriteDeliveries(w io.Writer, log []mesh.Delivery) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "src", "dst", "bytes", "inject_ns", "end_ns", "latency_ns", "blocked_ns", "hops"}); err != nil {
		return err
	}
	for _, d := range log {
		row := []string{
			strconv.FormatInt(d.Message.ID, 10),
			strconv.Itoa(d.Src),
			strconv.Itoa(d.Dst),
			strconv.Itoa(d.Bytes),
			strconv.FormatInt(int64(d.Inject), 10),
			strconv.FormatInt(int64(d.End), 10),
			strconv.FormatInt(int64(d.Latency), 10),
			strconv.FormatInt(int64(d.Blocked), 10),
			strconv.Itoa(d.Hops),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDeliveries parses a network log written by WriteDeliveries.
func ReadDeliveries(r io.Reader) ([]mesh.Delivery, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty delivery log")
	}
	var out []mesh.Delivery
	for i, row := range rows[1:] {
		if len(row) != 9 {
			return nil, fmt.Errorf("trace: delivery row %d has %d fields", i+2, len(row))
		}
		ints := make([]int64, 9)
		for j, f := range row {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: delivery row %d field %d: %w", i+2, j, err)
			}
			ints[j] = v
		}
		out = append(out, mesh.Delivery{
			Message: mesh.Message{
				ID: ints[0], Src: int(ints[1]), Dst: int(ints[2]),
				Bytes: int(ints[3]), Inject: sim.Time(ints[4]),
			},
			End:     sim.Time(ints[5]),
			Latency: sim.Duration(ints[6]),
			Blocked: sim.Duration(ints[7]),
			Hops:    int(ints[8]),
		})
	}
	return out, nil
}
