package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// TruncatedError reports a structurally broken record — typically the
// final record of a partially written log. It carries the record's line
// number and the bytes consumed up to the last good record, so callers can
// salvage the prefix: the reader returns everything parsed before the
// break alongside this error.
type TruncatedError struct {
	Line   int   // 1-based line of the offending record
	Offset int64 // bytes cleanly consumed before it
	Err    error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("trace: truncated record at line %d (%d bytes consumed): %v", e.Line, e.Offset, e.Err)
}

func (e *TruncatedError) Unwrap() error { return e.Err }

// recordReader streams CSV records one at a time, tracking the line number
// and the byte offset of the last cleanly consumed record.
type recordReader struct {
	cr     *csv.Reader
	record int   // records read so far (including the header)
	offset int64 // input offset after the last good record
	prev   int64 // input offset before the last good record
}

func newRecordReader(r io.Reader) *recordReader {
	cr := csv.NewReader(r)
	// Field counts are validated by the caller (legacy logs have fewer
	// columns), not by the csv layer.
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	return &recordReader{cr: cr}
}

// next returns the following record. On a structural CSV error (bare
// quote, unterminated field, ...) it returns a *TruncatedError.
func (rr *recordReader) next() ([]string, error) {
	row, err := rr.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		line := rr.record + 1
		var pe *csv.ParseError
		if errors.As(err, &pe) {
			line = pe.Line
		}
		return nil, &TruncatedError{Line: line, Offset: rr.offset, Err: err}
	}
	rr.record++
	rr.prev = rr.offset
	rr.offset = rr.cr.InputOffset()
	return row, nil
}

// truncatedIfLast classifies a bad-length record: if it is the last record
// of the input it is a truncation (salvageable), otherwise a hard format
// error.
func (rr *recordReader) truncatedIfLast(got int, want string) error {
	// The offending record was structurally valid CSV, so next() already
	// advanced past it; the salvageable prefix ends before it.
	line, offset := rr.record, rr.prev
	_, err := rr.cr.Read()
	if err == io.EOF {
		return &TruncatedError{Line: line, Offset: offset,
			Err: fmt.Errorf("final record has %d fields, want %s", got, want)}
	}
	return fmt.Errorf("trace: row %d has %d fields, want %s", line, got, want)
}

// WriteCSV serializes the trace as CSV with header
// rank,op,peer,bytes,tag,compute_ns — one row per event, in program order.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "op", "peer", "bytes", "tag", "compute_ns"}); err != nil {
		return err
	}
	for rank, seq := range t.Events {
		for _, e := range seq {
			row := []string{
				strconv.Itoa(rank),
				e.Op.String(),
				strconv.Itoa(e.Peer),
				strconv.Itoa(e.Bytes),
				strconv.Itoa(e.Tag),
				strconv.FormatInt(int64(e.Compute), 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV, streaming record by record;
// it never buffers the whole file. ranks is the machine size; rows may
// appear in any rank order but must be in program order per rank. On a
// truncated final record it returns the cleanly parsed prefix together
// with a *TruncatedError carrying the line number and bytes consumed.
func ReadCSV(r io.Reader, ranks int) (*Trace, error) {
	rr := newRecordReader(r)
	if _, err := rr.next(); err != nil { // header
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty file")
		}
		return nil, err
	}
	t := New(ranks)
	for {
		row, err := rr.next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return t, err
		}
		rowNo := rr.record
		if len(row) != 6 {
			return t, rr.truncatedIfLast(len(row), "6")
		}
		rank, err := strconv.Atoi(row[0])
		if err != nil {
			return t, fmt.Errorf("trace: row %d bad rank %q: %w", rowNo, row[0], err)
		}
		if rank < 0 || rank >= ranks {
			return t, fmt.Errorf("trace: row %d rank %d outside %d ranks", rowNo, rank, ranks)
		}
		var op Op
		switch row[1] {
		case "send":
			op = OpSend
		case "recv":
			op = OpRecv
		default:
			return t, fmt.Errorf("trace: row %d bad op %q", rowNo, row[1])
		}
		peer, err := strconv.Atoi(row[2])
		if err != nil {
			return t, fmt.Errorf("trace: row %d bad peer %q: %w", rowNo, row[2], err)
		}
		bytes, err := strconv.Atoi(row[3])
		if err != nil {
			return t, fmt.Errorf("trace: row %d bad bytes %q: %w", rowNo, row[3], err)
		}
		tag, err := strconv.Atoi(row[4])
		if err != nil {
			return t, fmt.Errorf("trace: row %d bad tag %q: %w", rowNo, row[4], err)
		}
		compute, err := strconv.ParseInt(row[5], 10, 64)
		if err != nil {
			return t, fmt.Errorf("trace: row %d bad compute %q: %w", rowNo, row[5], err)
		}
		t.Add(rank, Event{Op: op, Peer: peer, Bytes: bytes, Tag: tag, Compute: sim.Duration(compute)})
	}
}

// deliveryFields is the current delivery-log column count; legacyFields is
// the pre-fault format still accepted on read.
const (
	deliveryFields = 12
	legacyFields   = 9
)

// WriteDeliveries serializes a network log as CSV with header
// id,src,dst,bytes,inject_ns,end_ns,latency_ns,blocked_ns,hops,retries,faults,status.
// The last three columns flag faulted traffic: retransmission count, the
// mesh.FaultFlags bitmask, and 0 (delivered) or 1 (failed).
func WriteDeliveries(w io.Writer, log []mesh.Delivery) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "src", "dst", "bytes", "inject_ns", "end_ns",
		"latency_ns", "blocked_ns", "hops", "retries", "faults", "status"}); err != nil {
		return err
	}
	for _, d := range log {
		row := []string{
			strconv.FormatInt(d.Message.ID, 10),
			strconv.Itoa(d.Src),
			strconv.Itoa(d.Dst),
			strconv.Itoa(d.Bytes),
			strconv.FormatInt(int64(d.Inject), 10),
			strconv.FormatInt(int64(d.End), 10),
			strconv.FormatInt(int64(d.Latency), 10),
			strconv.FormatInt(int64(d.Blocked), 10),
			strconv.Itoa(d.Hops),
			strconv.Itoa(d.Retries),
			strconv.Itoa(int(d.Faults)),
			strconv.Itoa(int(d.Status)),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDeliveries parses a network log written by WriteDeliveries,
// streaming record by record. Legacy 9-column logs (without the fault
// columns) are accepted, reading as clean traffic. On a truncated final
// record it returns the cleanly parsed prefix together with a
// *TruncatedError carrying the line number and bytes consumed.
func ReadDeliveries(r io.Reader) ([]mesh.Delivery, error) {
	rr := newRecordReader(r)
	if _, err := rr.next(); err != nil { // header
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty delivery log")
		}
		return nil, err
	}
	var out []mesh.Delivery
	for {
		row, err := rr.next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if len(row) != deliveryFields && len(row) != legacyFields {
			return out, rr.truncatedIfLast(len(row), "9 or 12")
		}
		ints := make([]int64, deliveryFields)
		for j, f := range row {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return out, fmt.Errorf("trace: delivery row %d field %d: %w", rr.record, j, err)
			}
			ints[j] = v
		}
		out = append(out, mesh.Delivery{
			Message: mesh.Message{
				ID: ints[0], Src: int(ints[1]), Dst: int(ints[2]),
				Bytes: int(ints[3]), Inject: sim.Time(ints[4]),
			},
			End:     sim.Time(ints[5]),
			Latency: sim.Duration(ints[6]),
			Blocked: sim.Duration(ints[7]),
			Hops:    int(ints[8]),
			Retries: int(ints[9]),
			Faults:  mesh.FaultFlags(ints[10]),
			Status:  mesh.DeliveryStatus(ints[11]),
		})
	}
}
