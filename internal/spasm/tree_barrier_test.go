package spasm

import (
	"testing"

	"commchar/internal/sim"
)

func treeMachine(n int) *Machine {
	cfg := DefaultConfig(n)
	cfg.Barrier = BarrierTree
	return New(cfg)
}

func TestTreeBarrierSynchronizes(t *testing.T) {
	const n = 8
	m := treeMachine(n)
	after := make([]sim.Time, n)
	_, err := m.Run(func(e *Env) {
		e.Compute(sim.Duration(e.ID()) * 40_000)
		e.Barrier()
		after[e.ID()] = e.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	slowest := sim.Time((n - 1) * 40_000)
	for i, a := range after {
		if a < slowest {
			t.Fatalf("proc %d left tree barrier at %d before slowest entry %d", i, a, slowest)
		}
	}
}

func TestTreeBarrierRepeats(t *testing.T) {
	const n = 7 // non-power-of-two: uneven tree
	const rounds = 12
	m := treeMachine(n)
	counts := make([]int, n)
	_, err := m.Run(func(e *Env) {
		for r := 0; r < rounds; r++ {
			e.Compute(sim.Duration(1 + (e.ID()*r)%97))
			e.Barrier()
			counts[e.ID()]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != rounds {
			t.Fatalf("proc %d completed %d rounds", i, c)
		}
	}
}

func TestTreeBarrierSpreadsTraffic(t *testing.T) {
	// Compared with the linear barrier, the tree must reduce the share of
	// barrier messages terminating at processor 0.
	share := func(kind BarrierKind) float64 {
		cfg := DefaultConfig(16)
		cfg.Barrier = kind
		m := New(cfg)
		_, err := m.Run(func(e *Env) {
			for i := 0; i < 10; i++ {
				e.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		toZero, total := 0, 0
		for _, d := range m.Net.Log() {
			total++
			if d.Dst == 0 {
				toZero++
			}
		}
		if total == 0 {
			t.Fatal("no barrier traffic")
		}
		return float64(toZero) / float64(total)
	}
	linear := share(BarrierLinear)
	tree := share(BarrierTree)
	if tree >= linear/2 {
		t.Fatalf("tree barrier share to p0 = %v, linear = %v: tree should spread traffic", tree, linear)
	}
}

func TestTreeBarrierTwoProcs(t *testing.T) {
	m := treeMachine(2)
	if _, err := m.Run(func(e *Env) { e.Barrier() }); err != nil {
		t.Fatal(err)
	}
}
