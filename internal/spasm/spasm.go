// Package spasm is the execution-driven simulation framework of the
// paper's dynamic strategy, in the role of SPASM [8]. Shared-memory
// applications are Go kernels executing on simulated processors; exactly as
// in SPASM, ordinary computation runs at native speed and only the
// "interesting" operations are simulated: shared LOADs and STOREs (which
// run the full CC-NUMA coherence protocol through the 2-D mesh), explicit
// compute delays, and synchronization (barriers and locks, which are
// message-based and therefore also appear in the network log).
//
// The network simulator feeds timing back into the application as each
// communication event completes — the execution-driven feedback loop the
// paper contrasts with trace-driven simulation.
package spasm

import (
	"fmt"

	"commchar/internal/ccnuma"
	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// BarrierKind selects the barrier algorithm.
type BarrierKind int

const (
	// BarrierLinear gathers at and releases from processor 0 — the
	// flat scheme that makes p0 a spatial favorite.
	BarrierLinear BarrierKind = iota
	// BarrierTree gathers and releases along a binary tree rooted at
	// processor 0, spreading the synchronization traffic.
	BarrierTree
)

// Config assembles the simulated machine.
type Config struct {
	Processors int
	Mesh       mesh.Config
	Memory     ccnuma.Config
	Barrier    BarrierKind
}

// DefaultConfig builds the reproduction's machine for n processors on the
// smallest mesh at most 4 wide.
func DefaultConfig(n int) Config {
	w := n
	h := 1
	if n > 4 {
		w = 4
		h = (n + 3) / 4
	}
	return Config{
		Processors: n,
		Mesh:       mesh.DefaultConfig(w, h),
		Memory:     ccnuma.DefaultConfig(n),
	}
}

// Machine is one simulated CC-NUMA multiprocessor.
type Machine struct {
	Sim *sim.Simulator
	Net *mesh.Network
	Mem *ccnuma.System

	cfg  Config
	envs []*Env

	bar   barrierState
	locks map[int]*lockState
}

// New builds a machine. It panics on inconsistent configuration (a
// programming error).
func New(cfg Config) *Machine {
	if cfg.Processors < 1 {
		panic(fmt.Sprintf("spasm: %d processors", cfg.Processors))
	}
	if cfg.Mesh.Nodes() < cfg.Processors {
		panic(fmt.Sprintf("spasm: %d processors on %d-node mesh", cfg.Processors, cfg.Mesh.Nodes()))
	}
	if cfg.Memory.Processors != cfg.Processors {
		panic("spasm: memory config processor count mismatch")
	}
	s := sim.New()
	net := mesh.New(s, cfg.Mesh)
	m := &Machine{
		Sim:   s,
		Net:   net,
		Mem:   ccnuma.New(s, net, cfg.Memory),
		cfg:   cfg,
		locks: map[int]*lockState{},
	}
	m.bar.pendingRelease = make([]int, cfg.Processors)
	return m
}

// NewDefault builds the default machine for n processors.
func NewDefault(n int) *Machine { return New(DefaultConfig(n)) }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Alloc reserves shared address space (see ccnuma.System.Alloc).
func (m *Machine) Alloc(size int) uint64 { return m.Mem.Alloc(size) }

// Array is an addressing helper for a shared array of fixed-size elements.
type Array struct {
	base   uint64
	stride uint64
	n      int
}

// NewArray allocates a shared array of n elements of elemBytes each.
func (m *Machine) NewArray(n, elemBytes int) Array {
	if n <= 0 || elemBytes <= 0 {
		panic(fmt.Sprintf("spasm: NewArray(%d, %d)", n, elemBytes))
	}
	return Array{base: m.Alloc(n * elemBytes), stride: uint64(elemBytes), n: n}
}

// Addr returns the address of element i.
func (a Array) Addr(i int) uint64 {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("spasm: array index %d out of [0,%d)", i, a.n))
	}
	return a.base + uint64(i)*a.stride
}

// Len returns the element count.
func (a Array) Len() int { return a.n }

// Run executes the SPMD kernel on every processor and returns the simulated
// makespan. It fails if any processor is still blocked when the event
// calendar drains (an application synchronization bug).
func (m *Machine) Run(kernel func(e *Env)) (sim.Time, error) {
	m.envs = make([]*Env, m.cfg.Processors)
	for i := 0; i < m.cfg.Processors; i++ {
		i := i
		env := &Env{m: m, id: i}
		m.envs[i] = env
		env.prof.Proc = i
		m.Sim.Spawn(fmt.Sprintf("proc%d", i), func(p *sim.Process) {
			env.p = p
			kernel(env)
			env.done = true
			env.prof.End = p.Now()
		})
	}
	m.Sim.Run()
	// A cancelled run stops mid-flight with processors legitimately
	// suspended; report the interruption, not a phantom deadlock.
	if err := m.Sim.Interrupted(); err != nil {
		return 0, fmt.Errorf("spasm: %w", err)
	}
	for _, e := range m.envs {
		if !e.done {
			return 0, fmt.Errorf("spasm: processor %d blocked at t=%d (deadlock)", e.id, m.Sim.Now())
		}
	}
	return m.Sim.Now(), nil
}

// Profile is the execution-time breakdown of one processor — the classic
// SPASM output separating computation from memory-system stalls and
// synchronization stalls.
type Profile struct {
	Proc    int
	Compute sim.Duration // explicit local work
	Memory  sim.Duration // shared-memory access time (hits and misses)
	Sync    sim.Duration // barriers and locks
	End     sim.Time     // when the kernel returned on this processor
}

// Busy is the sum of all accounted time.
func (pr Profile) Busy() sim.Duration { return pr.Compute + pr.Memory + pr.Sync }

// Profiles returns the per-processor execution breakdown of the last Run.
func (m *Machine) Profiles() []Profile {
	out := make([]Profile, len(m.envs))
	for i, e := range m.envs {
		out[i] = e.prof
	}
	return out
}

// Env is the per-processor view an application kernel programs against.
type Env struct {
	m    *Machine
	p    *sim.Process
	id   int
	done bool
	prof Profile
}

// ID returns the processor number.
func (e *Env) ID() int { return e.id }

// N returns the machine size.
func (e *Env) N() int { return e.m.cfg.Processors }

// Now returns the processor's local simulated time.
func (e *Env) Now() sim.Time { return e.p.Now() }

// Compute advances the processor's clock by purely local work.
func (e *Env) Compute(d sim.Duration) {
	e.p.Hold(d)
	e.prof.Compute += d
}

// Read performs a shared-memory load at addr (full coherence semantics).
func (e *Env) Read(addr uint64) {
	t0 := e.p.Now()
	e.m.Mem.Read(e.p, e.id, addr)
	e.prof.Memory += sim.Duration(e.p.Now() - t0)
}

// Write performs a shared-memory store at addr.
func (e *Env) Write(addr uint64) {
	t0 := e.p.Now()
	e.m.Mem.Write(e.p, e.id, addr)
	e.prof.Memory += sim.Duration(e.p.Now() - t0)
}

// ReadArray loads element i of a shared array.
func (e *Env) ReadArray(a Array, i int) { e.Read(a.Addr(i)) }

// WriteArray stores element i of a shared array.
func (e *Env) WriteArray(a Array, i int) { e.Write(a.Addr(i)) }
