package spasm

import (
	"testing"

	"commchar/internal/sim"
)

func TestProfileAccountsCompute(t *testing.T) {
	m := NewDefault(2)
	_, err := m.Run(func(e *Env) {
		e.Compute(1000)
		e.Compute(500)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range m.Profiles() {
		if pr.Compute != 1500 {
			t.Fatalf("proc %d compute = %d", pr.Proc, pr.Compute)
		}
		if pr.Memory != 0 || pr.Sync != 0 {
			t.Fatalf("unexpected stall time: %+v", pr)
		}
		if pr.End != 1500 {
			t.Fatalf("end = %d", pr.End)
		}
	}
}

func TestProfileAccountsMemoryStalls(t *testing.T) {
	m := NewDefault(4)
	arr := m.NewArray(128, 8)
	_, err := m.Run(func(e *Env) {
		for i := 0; i < 32; i++ {
			e.ReadArray(arr, i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range m.Profiles() {
		if pr.Memory <= 0 {
			t.Fatalf("proc %d memory time = %d", pr.Proc, pr.Memory)
		}
	}
}

func TestProfileAccountsSyncStalls(t *testing.T) {
	m := NewDefault(4)
	_, err := m.Run(func(e *Env) {
		if e.ID() == 0 {
			e.Compute(100_000) // everyone else waits at the barrier
		}
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	profs := m.Profiles()
	// Non-zero processors spend essentially the whole run in sync.
	for _, pr := range profs[1:] {
		if pr.Sync < 90_000 {
			t.Fatalf("proc %d sync = %d, want ~100000", pr.Proc, pr.Sync)
		}
	}
	if profs[0].Compute != 100_000 {
		t.Fatalf("proc 0 compute = %d", profs[0].Compute)
	}
}

func TestProfileBusyNeverExceedsEnd(t *testing.T) {
	m := NewDefault(8)
	arr := m.NewArray(256, 8)
	_, err := m.Run(func(e *Env) {
		st := sim.NewStream(uint64(e.ID()))
		for i := 0; i < 40; i++ {
			e.ReadArray(arr, st.IntN(arr.Len()))
			e.Compute(sim.Duration(st.IntN(500)))
			if i%10 == 9 {
				e.Barrier()
			}
		}
		e.Lock(1)
		e.Compute(100)
		e.Unlock(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range m.Profiles() {
		if sim.Time(pr.Busy()) > pr.End {
			t.Fatalf("proc %d busy %d exceeds end %d", pr.Proc, pr.Busy(), pr.End)
		}
		// Everything this kernel does is accounted; slack only from the
		// spawn epoch, so busy should cover almost all of it.
		if float64(pr.Busy()) < 0.95*float64(pr.End) {
			t.Fatalf("proc %d: busy %d vs end %d — unaccounted time", pr.Proc, pr.Busy(), pr.End)
		}
	}
}
