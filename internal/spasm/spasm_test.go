package spasm

import (
	"testing"
	"testing/quick"

	"commchar/internal/sim"
)

func TestRunCompletesAndTimes(t *testing.T) {
	m := NewDefault(4)
	makespan, err := m.Run(func(e *Env) {
		e.Compute(1000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if makespan != 1000 {
		t.Fatalf("makespan = %d, want 1000", makespan)
	}
}

func TestSharedReadGeneratesTraffic(t *testing.T) {
	m := NewDefault(4)
	arr := m.NewArray(64, 8)
	_, err := m.Run(func(e *Env) {
		for i := 0; i < arr.Len(); i++ {
			e.ReadArray(arr, i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Net.Delivered() == 0 {
		t.Fatal("no coherence traffic for shared reads")
	}
	if err := m.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	const n = 8
	m := NewDefault(n)
	after := make([]sim.Time, n)
	_, err := m.Run(func(e *Env) {
		e.Compute(sim.Duration(e.ID()) * 50_000)
		e.Barrier()
		after[e.ID()] = e.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	slowestWork := sim.Time((n - 1) * 50_000)
	for i, a := range after {
		if a < slowestWork {
			t.Fatalf("proc %d left barrier at %d before slowest entered (%d)", i, a, slowestWork)
		}
	}
}

func TestBarrierRepeats(t *testing.T) {
	const n = 4
	const rounds = 10
	m := NewDefault(n)
	counts := make([]int, n)
	_, err := m.Run(func(e *Env) {
		for r := 0; r < rounds; r++ {
			e.Compute(sim.Duration(1 + e.ID()*100))
			e.Barrier()
			counts[e.ID()]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != rounds {
			t.Fatalf("proc %d completed %d rounds", i, c)
		}
	}
}

func TestBarrierGeneratesFavoriteZeroTraffic(t *testing.T) {
	const n = 8
	m := NewDefault(n)
	_, err := m.Run(func(e *Env) {
		for r := 0; r < 5; r++ {
			e.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	toZero, fromZero := 0, 0
	for _, d := range m.Net.Log() {
		if d.Dst == 0 {
			toZero++
		}
		if d.Src == 0 {
			fromZero++
		}
	}
	if toZero != 5*(n-1) || fromZero != 5*(n-1) {
		t.Fatalf("barrier traffic to/from 0: %d/%d, want %d each", toZero, fromZero, 5*(n-1))
	}
}

func TestLockMutualExclusion(t *testing.T) {
	const n = 8
	m := NewDefault(n)
	inside := 0
	maxInside := 0
	total := 0
	_, err := m.Run(func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Lock(3)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			e.Compute(100)
			inside--
			total++
			e.Unlock(3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d", maxInside)
	}
	if total != n*10 {
		t.Fatalf("critical sections = %d", total)
	}
}

func TestDistinctLocksAreIndependent(t *testing.T) {
	m := NewDefault(4)
	_, err := m.Run(func(e *Env) {
		e.Lock(e.ID()) // each proc its own lock: no contention deadlock
		e.Compute(10)
		e.Unlock(e.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	m := NewDefault(2)
	panicked := false
	_, err := m.Run(func(e *Env) {
		if e.ID() == 0 {
			func() {
				defer func() {
					if recover() != nil {
						panicked = true
					}
				}()
				e.Unlock(1)
			}()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("unlock of unheld lock did not panic")
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewDefault(2)
	_, err := m.Run(func(e *Env) {
		if e.ID() == 0 {
			e.Barrier()
		}
		// proc 1 never enters the barrier
	})
	if err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestArrayBounds(t *testing.T) {
	m := NewDefault(2)
	arr := m.NewArray(4, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds address accepted")
		}
	}()
	arr.Addr(4)
}

func TestFalseSharingInvalidations(t *testing.T) {
	// Two processors write adjacent words in one cache line: the line must
	// ping-pong, producing invalidations/fetches.
	m := NewDefault(2)
	arr := m.NewArray(4, 8) // one 32-byte line
	_, err := m.Run(func(e *Env) {
		for i := 0; i < 20; i++ {
			e.WriteArray(arr, e.ID())
			e.Compute(10)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Mem.Stats()
	if st.OwnerFetches == 0 && st.Invalidations == 0 {
		t.Fatalf("no ping-pong detected: %+v", st)
	}
}

func TestLockFairnessFIFOProperty(t *testing.T) {
	// Grants are issued in request-arrival order; with staggered arrivals
	// the critical sections must follow that order.
	prop := func(seed uint64) bool {
		m := NewDefault(4)
		st := sim.NewStream(seed)
		delays := make([]sim.Duration, 4)
		for i := range delays {
			delays[i] = sim.Duration(st.IntN(100_000))
		}
		var order []int
		_, err := m.Run(func(e *Env) {
			e.Compute(delays[e.ID()])
			e.Lock(0)
			order = append(order, e.ID())
			e.Compute(1000)
			e.Unlock(0)
		})
		if err != nil {
			return false
		}
		return len(order) == 4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedWorkloadInvariants(t *testing.T) {
	const n = 8
	m := NewDefault(n)
	arr := m.NewArray(256, 8)
	counter := m.NewArray(1, 8)
	_, err := m.Run(func(e *Env) {
		st := sim.NewStream(uint64(e.ID()) + 77)
		for i := 0; i < 50; i++ {
			e.ReadArray(arr, st.IntN(arr.Len()))
			if st.Float64() < 0.25 {
				e.Lock(0)
				e.ReadArray(counter, 0)
				e.WriteArray(counter, 0)
				e.Unlock(0)
			}
			if i%10 == 9 {
				e.Barrier()
			}
		}
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Net.InFlight() != 0 {
		t.Fatal("messages still in flight after completion")
	}
}
