package spasm

import (
	"fmt"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// Synchronization is message-based, as on a real CC-NUMA without special
// hardware: barriers gather at and release from processor 0, and each lock
// lives on a home node that queues requesters. The messages travel the same
// mesh as coherence traffic, so synchronization shows up in the network log
// — which is why barrier-heavy applications exhibit processor 0 as a
// spatial "favorite" in the characterization, as the paper observes.

// syncBytes is the length of a synchronization control message.
const syncBytes = 8

// barrierState tracks the gather-release protocol across epochs. Counters
// (not booleans) keep overlapping epochs safe: a processor can be sent its
// release for barrier k while barrier k+1 arrivals are already in flight.
type barrierState struct {
	arrived        int // ARRIVE deliveries seen at processor 0 (linear)
	waiting0       *sim.Waker
	pendingRelease []int
	releaseWaiting map[int]sim.Waker

	// Tree barrier: per-processor child-arrival counters.
	childArrived  []int
	arriveWaiting map[int]sim.Waker
}

// Barrier blocks until all processors have entered it.
func (e *Env) Barrier() {
	t0 := e.p.Now()
	defer func() { e.prof.Sync += sim.Duration(e.p.Now() - t0) }()
	m := e.m
	b := &m.bar
	if b.releaseWaiting == nil {
		b.releaseWaiting = map[int]sim.Waker{}
		b.arriveWaiting = map[int]sim.Waker{}
		b.childArrived = make([]int, m.cfg.Processors)
	}
	n := m.cfg.Processors
	if n == 1 {
		return
	}
	if m.cfg.Barrier == BarrierTree {
		e.treeBarrier()
		return
	}

	if e.id == 0 {
		// Gather: wait for every other processor's arrival message.
		for b.arrived < n-1 {
			w := sim.WakerFor(e.p)
			b.waiting0 = &w
			e.p.Suspend()
		}
		b.waiting0 = nil
		b.arrived -= n - 1
		// Release everyone.
		for dst := 1; dst < n; dst++ {
			dst := dst
			m.send(e.p.Now(), 0, dst, func() {
				b.pendingRelease[dst]++
				if w, ok := b.releaseWaiting[dst]; ok {
					delete(b.releaseWaiting, dst)
					w.Wake()
				}
			})
		}
		return
	}

	// Arrive at processor 0.
	m.send(e.p.Now(), e.id, 0, func() {
		b.arrived++
		if b.waiting0 != nil {
			w := *b.waiting0
			b.waiting0 = nil
			w.Wake()
		}
	})
	// Wait for our release.
	for b.pendingRelease[e.id] == 0 {
		b.releaseWaiting[e.id] = sim.WakerFor(e.p)
		e.p.Suspend()
	}
	b.pendingRelease[e.id]--
}

// treeBarrier implements the gather-release barrier on a binary tree
// rooted at processor 0: each processor waits for its children, reports to
// its parent, and relays the release downward.
func (e *Env) treeBarrier() {
	m := e.m
	b := &m.bar
	n := m.cfg.Processors
	id := e.id
	var children []int
	for _, c := range []int{2*id + 1, 2*id + 2} {
		if c < n {
			children = append(children, c)
		}
	}
	parent := (id - 1) / 2

	// Gather: wait for every child's arrival message.
	for range children {
		for b.childArrived[id] == 0 {
			b.arriveWaiting[id] = sim.WakerFor(e.p)
			e.p.Suspend()
		}
		b.childArrived[id]--
	}
	if id != 0 {
		m.send(e.p.Now(), id, parent, func() {
			b.childArrived[parent]++
			if w, ok := b.arriveWaiting[parent]; ok {
				delete(b.arriveWaiting, parent)
				w.Wake()
			}
		})
		// Wait for the release from the parent.
		for b.pendingRelease[id] == 0 {
			b.releaseWaiting[id] = sim.WakerFor(e.p)
			e.p.Suspend()
		}
		b.pendingRelease[id]--
	}
	// Relay the release to the children.
	for _, c := range children {
		c := c
		m.send(e.p.Now(), id, c, func() {
			b.pendingRelease[c]++
			if w, ok := b.releaseWaiting[c]; ok {
				delete(b.releaseWaiting, c)
				w.Wake()
			}
		})
	}
}

// lockState is one lock's queue at its home node.
type lockState struct {
	held    bool
	holder  int
	queue   []grantTarget
	pending map[int]int // processor -> grants not yet consumed
	waiting map[int]sim.Waker
}

type grantTarget struct {
	proc int
	at   sim.Time
}

func (m *Machine) lock(id int) *lockState {
	l, ok := m.locks[id]
	if !ok {
		l = &lockState{holder: -1, pending: map[int]int{}, waiting: map[int]sim.Waker{}}
		m.locks[id] = l
	}
	return l
}

// lockHome maps a lock to its home processor.
func (m *Machine) lockHome(id int) int {
	h := id % m.cfg.Processors
	if h < 0 {
		h += m.cfg.Processors
	}
	return h
}

// Lock acquires the numbered lock, blocking in arrival (delivery) order.
func (e *Env) Lock(id int) {
	t0 := e.p.Now()
	defer func() { e.prof.Sync += sim.Duration(e.p.Now() - t0) }()
	m := e.m
	home := m.lockHome(id)
	l := m.lock(id)

	// Request travels to the lock's home.
	m.send(e.p.Now(), e.id, home, func() {
		if !l.held {
			l.held = true
			l.holder = e.id
			// Grant travels back.
			m.send(m.Sim.Now(), home, e.id, func() {
				l.pending[e.id]++
				if w, ok := l.waiting[e.id]; ok {
					delete(l.waiting, e.id)
					w.Wake()
				}
			})
			return
		}
		l.queue = append(l.queue, grantTarget{proc: e.id, at: m.Sim.Now()})
	})

	for l.pending[e.id] == 0 {
		l.waiting[e.id] = sim.WakerFor(e.p)
		e.p.Suspend()
	}
	l.pending[e.id]--
}

// Unlock releases the numbered lock. The caller does not wait for the
// release message to reach the lock's home (release is asynchronous).
func (e *Env) Unlock(id int) {
	m := e.m
	home := m.lockHome(id)
	l := m.lock(id)
	if !l.held || l.holder != e.id {
		panic(fmt.Sprintf("spasm: processor %d unlocks lock %d held by %d", e.id, id, l.holder))
	}
	l.holder = -1 // logically released; home processes the message on arrival
	m.send(e.p.Now(), e.id, home, func() {
		if len(l.queue) == 0 {
			l.held = false
			return
		}
		next := l.queue[0]
		l.queue = l.queue[1:]
		l.holder = next.proc
		m.send(m.Sim.Now(), home, next.proc, func() {
			l.pending[next.proc]++
			if w, ok := l.waiting[next.proc]; ok {
				delete(l.waiting, next.proc)
				w.Wake()
			}
		})
	})
}

// send injects a synchronization control message and invokes then on
// delivery. Same-node messages skip the fabric but still pay the local
// interface delay.
func (m *Machine) send(at sim.Time, src, dst int, then func()) {
	if src == dst {
		m.Sim.At(at+sim.Time(m.cfg.Mesh.LocalDelay), then)
		return
	}
	m.Net.Inject(mesh.Message{
		ID: m.Net.NextID(), Src: src, Dst: dst, Bytes: syncBytes, Inject: at,
	}, func(mesh.Delivery) { then() })
}
