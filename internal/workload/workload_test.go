package workload

import (
	"math"
	"testing"

	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/stats"
)

// knownLog builds a delivery log from a known generative model so the
// round-trip (characterize -> regenerate -> measure) can be validated.
func knownLog(procs, perSource int, meanGapNS float64, seed uint64) ([]mesh.Delivery, sim.Time) {
	st := sim.NewStream(seed)
	var log []mesh.Delivery
	var maxT sim.Time
	id := int64(0)
	for src := 0; src < procs; src++ {
		t := sim.Time(0)
		for i := 0; i < perSource; i++ {
			t += sim.Time(st.Exponential(meanGapNS)) + 1
			dst := st.IntN(procs - 1)
			if dst >= src {
				dst++
			}
			bytes := 8
			if st.Float64() < 0.25 {
				bytes = 40
			}
			id++
			log = append(log, mesh.Delivery{
				Message: mesh.Message{ID: id, Src: src, Dst: dst, Bytes: bytes, Inject: t},
				End:     t + 400, Latency: 400, Hops: 3,
			})
			if t > maxT {
				maxT = t
			}
		}
	}
	return log, maxT
}

func characterized(t *testing.T, procs, perSource int, meanGap float64, seed uint64) *core.Characterization {
	t.Helper()
	log, elapsed := knownLog(procs, perSource, meanGap, seed)
	c, err := core.Analyze("known", core.StrategyDynamic, log, procs, elapsed, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFromCharacterization(t *testing.T) {
	c := characterized(t, 8, 2000, 8000, 1)
	g, err := FromCharacterization(c)
	if err != nil {
		t.Fatal(err)
	}
	if g.Procs != 8 || len(g.Sources) != 8 {
		t.Fatalf("generator: procs=%d sources=%d", g.Procs, len(g.Sources))
	}
	for _, sm := range g.Sources {
		if sm.Interarrival == nil || len(sm.Lengths) == 0 {
			t.Fatalf("incomplete source model %+v", sm)
		}
	}
}

func TestSyntheticReproducesRateAndSpatial(t *testing.T) {
	c := characterized(t, 8, 4000, 8000, 2)
	g, err := FromCharacterization(c)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	net := mesh.New(s, core.MeshFor(8))
	if err := g.Drive(s, net, c.Elapsed, 99); err != nil {
		t.Fatal(err)
	}
	s.Run()
	log := net.Log()
	// Message rate within 10%.
	origRate := float64(c.Messages) / float64(c.Elapsed)
	synRate := float64(len(log)) / float64(s.Now())
	if math.Abs(synRate-origRate)/origRate > 0.1 {
		t.Fatalf("rate: synthetic %v vs original %v", synRate, origRate)
	}
	// Spatial: destinations still uniform per source.
	counts := make([][]int, 8)
	for i := range counts {
		counts[i] = make([]int, 8)
	}
	for _, d := range log {
		counts[d.Src][d.Dst]++
	}
	// The χ² classifier is alpha-sensitive (a truly-uniform source is
	// rejected ~5% of the time), so check the robust invariant instead:
	// each source's destination entropy stays essentially maximal.
	for src := 0; src < 8; src++ {
		sd := stats.AnalyzeSpatial(src, counts[src])
		if sd.Entropy < 0.995 {
			t.Fatalf("source %d synthetic destination entropy %v", src, sd.Entropy)
		}
		if sd.Fractions[src] != 0 {
			t.Fatalf("source %d sent to itself", src)
		}
	}
	// Lengths: the bimodal spectrum survives.
	lengths := map[int]bool{}
	for _, d := range log {
		lengths[d.Bytes] = true
	}
	if !lengths[8] || !lengths[40] {
		t.Fatalf("synthetic lengths: %v", lengths)
	}
}

func TestValidateEndToEnd(t *testing.T) {
	c := characterized(t, 8, 4000, 8000, 3)
	v, err := Validate(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v.Synthetic.Messages == 0 {
		t.Fatal("no synthetic messages")
	}
	if v.RateErr > 0.15 {
		t.Fatalf("rate error %v", v.RateErr)
	}
	// The original log here used a fake constant latency, so only rate is
	// compared strictly; latency fields must at least be populated.
	if v.Synthetic.MeanLatencyNS <= 0 {
		t.Fatal("synthetic latency not measured")
	}
}

func TestBimodalSpatialModelRegenerates(t *testing.T) {
	// Hand-build a characterization-like spatial model and check sampling.
	sm := SourceModel{
		Src:          0,
		Interarrival: stats.Exponential{Rate: 0.001},
		Pattern:      stats.SpatialBimodalUniform,
		Favorite:     3,
		FavFrac:      0.5,
		DestWeights:  make([]float64, 8),
		Lengths:      []stats.LengthCount{{Bytes: 8, Count: 1}},
	}
	st := sim.NewStream(5)
	counts := make([]int, 8)
	for i := 0; i < 20000; i++ {
		counts[sm.sampleDest(st)]++
	}
	if counts[0] != 0 {
		t.Fatal("self-messages generated")
	}
	frac := float64(counts[3]) / 20000
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("favorite fraction %v, want ~0.5", frac)
	}
	sd := stats.AnalyzeSpatial(0, counts)
	if sd.Pattern != stats.SpatialBimodalUniform {
		t.Fatalf("regenerated pattern = %v", sd.Pattern)
	}
}

func TestSampleLengthWeights(t *testing.T) {
	spectrum := []stats.LengthCount{{Bytes: 8, Count: 3}, {Bytes: 40, Count: 1}}
	st := sim.NewStream(6)
	n8 := 0
	for i := 0; i < 40000; i++ {
		if sampleLength(spectrum, st) == 8 {
			n8++
		}
	}
	frac := float64(n8) / 40000
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("8-byte fraction %v, want ~0.75", frac)
	}
}

func TestFromCharacterizationErrors(t *testing.T) {
	if _, err := FromCharacterization(nil); err == nil {
		t.Fatal("nil characterization accepted")
	}
}
