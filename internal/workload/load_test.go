package workload

import (
	"math"
	"testing"

	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/stats"
)

func driveFor(t *testing.T, g *Generator, until sim.Time, seed uint64) Metrics {
	t.Helper()
	s := sim.New()
	net := mesh.New(s, core.MeshFor(g.Procs))
	if err := g.Drive(s, net, until, seed); err != nil {
		t.Fatal(err)
	}
	s.Run()
	return MeasureLog(net.Log(), s.Now(), net.MeanUtilization())
}

func TestUniformPoissonRate(t *testing.T) {
	g := UniformPoisson(16, 5000, []stats.LengthCount{{Bytes: 40, Count: 1}})
	m := driveFor(t, g, 5_000_000, 1)
	// 16 sources at 1 msg / 5 µs → 3.2 msg/µs aggregate.
	if math.Abs(m.MessageRate-3.2) > 0.2 {
		t.Fatalf("rate = %v, want ~3.2", m.MessageRate)
	}
}

func TestScaledDoublesRate(t *testing.T) {
	g := UniformPoisson(16, 5000, []stats.LengthCount{{Bytes: 40, Count: 1}})
	base := driveFor(t, g, 5_000_000, 2)
	double := driveFor(t, g.Scaled(2), 5_000_000, 2)
	ratio := double.MessageRate / base.MessageRate
	if ratio < 1.85 || ratio > 2.15 {
		t.Fatalf("rate ratio = %v, want ~2", ratio)
	}
	if double.MeanLatencyNS < base.MeanLatencyNS {
		t.Fatalf("latency fell under double load: %v -> %v", base.MeanLatencyNS, double.MeanLatencyNS)
	}
}

func TestScaledPanicsOnBadFactor(t *testing.T) {
	g := UniformPoisson(4, 1000, []stats.LengthCount{{Bytes: 8, Count: 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive factor accepted")
		}
	}()
	g.Scaled(0)
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	g := UniformPoisson(16, 4000, []stats.LengthCount{{Bytes: 64, Count: 1}})
	var prev float64
	for _, f := range []float64{0.5, 1, 2, 4} {
		m := driveFor(t, g.Scaled(f), 3_000_000, 3)
		if m.MeanLatencyNS < prev*0.95 {
			t.Fatalf("latency not monotone in load: %v after %v (factor %v)", m.MeanLatencyNS, prev, f)
		}
		prev = m.MeanLatencyNS
	}
}

func TestMeanLength(t *testing.T) {
	ls := []stats.LengthCount{{Bytes: 8, Count: 3}, {Bytes: 40, Count: 1}}
	if got := MeanLength(ls); math.Abs(got-16) > 1e-12 {
		t.Fatalf("mean length = %v, want 16", got)
	}
	if MeanLength(nil) != 0 {
		t.Fatal("empty spectrum mean should be 0")
	}
}
