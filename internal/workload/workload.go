// Package workload turns a communication characterization back into
// traffic: the paper's stated purpose ("these distributions can be used in
// the analysis of ICNs for developing realistic performance models"). Each
// source processor gets a generator that draws inter-arrival times from its
// fitted temporal distribution, destinations from its classified spatial
// model, and message lengths from its length spectrum. Driving the mesh
// with this synthetic traffic and comparing against the original run is the
// validation experiment for the whole methodology.
package workload

import (
	"errors"
	"fmt"
	"math"

	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/stats"
)

// SourceModel is one source processor's generative model.
type SourceModel struct {
	Src          int
	Interarrival stats.Distribution
	// Spatial model: the classified pattern plus what it needs.
	Pattern  stats.SpatialPattern
	Favorite int
	FavFrac  float64
	// Empirical destination weights, used for structured/general
	// patterns (and as the universe of destinations elsewhere).
	DestWeights []float64
	// Length spectrum.
	Lengths []stats.LengthCount
}

// Generator regenerates an application's traffic from its characterization.
type Generator struct {
	Procs   int
	Sources []SourceModel
}

// rateCalibrated wraps a fitted distribution with a linear time rescale so
// its mean equals the measured sample mean. Regression on the empirical CDF
// optimizes shape, not the first moment; calibrating the rate keeps the
// family (and hence burstiness) while reproducing the application's message
// generation rate exactly — the attribute the paper defines temporally.
type rateCalibrated struct {
	inner stats.Distribution
	k     float64 // time scale factor
}

func (d rateCalibrated) Name() string                  { return d.inner.Name() }
func (d rateCalibrated) Params() map[string]float64    { return d.inner.Params() }
func (d rateCalibrated) Mean() float64                 { return d.k * d.inner.Mean() }
func (d rateCalibrated) CDF(x float64) float64         { return d.inner.CDF(x / d.k) }
func (d rateCalibrated) Sample(st *sim.Stream) float64 { return d.k * d.inner.Sample(st) }
func (d rateCalibrated) String() string {
	return fmt.Sprintf("%s x%.4g", d.inner.String(), d.k)
}

// calibrate returns dist rescaled to the target mean when that is sane.
func calibrate(dist stats.Distribution, targetMean float64) stats.Distribution {
	m := dist.Mean()
	if m <= 0 || targetMean <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
		return dist
	}
	k := targetMean / m
	if k > 0.999 && k < 1.001 {
		return dist
	}
	return rateCalibrated{inner: dist, k: k}
}

// FromCharacterization builds the generator. Sources with no fitted
// temporal model (too few messages) are skipped.
func FromCharacterization(c *core.Characterization) (*Generator, error) {
	if c == nil || len(c.PerSource) == 0 {
		return nil, errors.New("workload: empty characterization")
	}
	g := &Generator{Procs: c.Procs}
	lengths := c.Volume.Distinct
	if len(lengths) == 0 {
		return nil, errors.New("workload: no length spectrum")
	}
	for src := 0; src < c.Procs; src++ {
		st := c.PerSource[src]
		best := st.Best()
		if best == nil {
			continue
		}
		sp := c.Spatial[src]
		if sp.Total == 0 {
			continue
		}
		g.Sources = append(g.Sources, SourceModel{
			Src:          src,
			Interarrival: calibrate(best.Dist, st.Summary.Mean),
			Pattern:      sp.Pattern,
			Favorite:     sp.Favorite,
			FavFrac:      sp.FavoriteFraction,
			DestWeights:  sp.Fractions,
			Lengths:      lengths,
		})
	}
	if len(g.Sources) == 0 {
		return nil, errors.New("workload: no source had enough traffic to model")
	}
	return g, nil
}

// Scaled returns a copy of the generator whose every source injects at
// factor times the original rate (inter-arrival times divided by factor),
// holding the spatial and volume models fixed. This is the offered-load
// knob for latency-vs-load studies.
func (g *Generator) Scaled(factor float64) *Generator {
	if factor <= 0 {
		panic(fmt.Sprintf("workload: scale factor %v", factor))
	}
	out := &Generator{Procs: g.Procs, Sources: make([]SourceModel, len(g.Sources))}
	copy(out.Sources, g.Sources)
	for i := range out.Sources {
		out.Sources[i].Interarrival = rateCalibrated{inner: out.Sources[i].Interarrival, k: 1 / factor}
	}
	return out
}

// UniformPoisson builds the literature's classic workload model — Poisson
// arrivals, uniformly random destinations — with the given per-source mean
// inter-arrival time and length spectrum. It is the baseline the paper's
// application-derived models are meant to replace.
func UniformPoisson(procs int, meanGapNS float64, lengths []stats.LengthCount) *Generator {
	if procs < 2 || meanGapNS <= 0 || len(lengths) == 0 {
		panic("workload: invalid uniform-Poisson parameters")
	}
	g := &Generator{Procs: procs}
	for src := 0; src < procs; src++ {
		g.Sources = append(g.Sources, SourceModel{
			Src:          src,
			Interarrival: stats.Exponential{Rate: 1 / meanGapNS},
			Pattern:      stats.SpatialUniform,
			Favorite:     -1,
			DestWeights:  make([]float64, procs),
			Lengths:      lengths,
		})
	}
	return g
}

// MeanLength returns the count-weighted mean of a length spectrum.
func MeanLength(lengths []stats.LengthCount) float64 {
	var bytes, count int
	for _, lc := range lengths {
		bytes += lc.Bytes * lc.Count
		count += lc.Count
	}
	if count == 0 {
		return 0
	}
	return float64(bytes) / float64(count)
}

// Drive spawns one injector process per modeled source, generating traffic
// until the given simulated time. The caller runs the simulator afterwards.
func (g *Generator) Drive(s *sim.Simulator, net *mesh.Network, until sim.Time, seed uint64) error {
	if net.Config().Nodes() < g.Procs {
		return fmt.Errorf("workload: %d processors on %d-node mesh", g.Procs, net.Config().Nodes())
	}
	for i := range g.Sources {
		sm := g.Sources[i]
		st := sim.NewStream(seed ^ (uint64(sm.Src)+1)*0x9E3779B97F4A7C15)
		s.Spawn(fmt.Sprintf("gen-src%d", sm.Src), func(p *sim.Process) {
			for {
				gap := sm.Interarrival.Sample(st)
				if gap < 0 {
					gap = 0
				}
				next := p.Now() + sim.Time(gap)
				if next > until {
					return
				}
				p.Hold(sim.Duration(gap))
				dst := sm.sampleDest(st)
				if dst < 0 {
					continue
				}
				net.Inject(mesh.Message{
					ID:     net.NextID(),
					Src:    sm.Src,
					Dst:    dst,
					Bytes:  sampleLength(sm.Lengths, st),
					Inject: p.Now(),
				}, nil)
			}
		})
	}
	return nil
}

// sampleDest draws a destination from the classified spatial model.
func (sm *SourceModel) sampleDest(st *sim.Stream) int {
	n := len(sm.DestWeights)
	switch sm.Pattern {
	case stats.SpatialUniform:
		// Uniform over everyone else.
		d := st.IntN(n - 1)
		if d >= sm.Src {
			d++
		}
		return d
	case stats.SpatialBimodalUniform:
		if st.Float64() < sm.FavFrac {
			return sm.Favorite
		}
		// Uniform over the rest.
		for {
			d := st.IntN(n - 1)
			if d >= sm.Src {
				d++
			}
			if d != sm.Favorite {
				return d
			}
		}
	default:
		// Empirical: weighted draw over the observed fractions.
		u := st.Float64()
		var acc float64
		for d, w := range sm.DestWeights {
			acc += w
			if u < acc {
				return d
			}
		}
		// Rounding slack: return the last destination with weight.
		for d := n - 1; d >= 0; d-- {
			if sm.DestWeights[d] > 0 {
				return d
			}
		}
		return -1
	}
}

// sampleLength draws a message length from the spectrum, weighted by count.
func sampleLength(spectrum []stats.LengthCount, st *sim.Stream) int {
	total := 0
	for _, lc := range spectrum {
		total += lc.Count
	}
	pick := st.IntN(total)
	for _, lc := range spectrum {
		pick -= lc.Count
		if pick < 0 {
			return lc.Bytes
		}
	}
	return spectrum[len(spectrum)-1].Bytes
}

// Metrics summarizes a network run for validation comparisons.
type Metrics struct {
	Messages        int
	MeanLatencyNS   float64
	MeanBlockedNS   float64
	MeanHops        float64
	MeanUtilization float64
	MessageRate     float64 // messages per µs of simulated time
	Failed          int     // messages the network gave up on
}

// MeasureLog computes metrics from a delivery log. Messages the network
// gave up on (fault injection) are counted in Failed and excluded from the
// means: a failed message's "latency" is its give-up time, not a transit
// time, and would pollute the characterization.
func MeasureLog(log []mesh.Delivery, elapsed sim.Time, meanUtil float64) Metrics {
	m := Metrics{MeanUtilization: meanUtil}
	for _, d := range log {
		if d.Status != mesh.StatusDelivered {
			m.Failed++
			continue
		}
		m.Messages++
		m.MeanLatencyNS += float64(d.Latency)
		m.MeanBlockedNS += float64(d.Blocked)
		m.MeanHops += float64(d.Hops)
	}
	if m.Messages == 0 {
		return m
	}
	n := float64(m.Messages)
	m.MeanLatencyNS /= n
	m.MeanBlockedNS /= n
	m.MeanHops /= n
	if elapsed > 0 {
		m.MessageRate = n / (float64(elapsed) / 1000)
	}
	return m
}

// Validation is the outcome of the synthetic-traffic experiment.
type Validation struct {
	Original  Metrics
	Synthetic Metrics
	// Relative errors, synthetic vs original.
	LatencyErr float64
	RateErr    float64
	UtilErr    float64
}

// Validate regenerates the characterized application's traffic on a fresh
// mesh of the same geometry for the same simulated duration, and compares
// network metrics.
func Validate(c *core.Characterization, seed uint64) (*Validation, error) {
	g, err := FromCharacterization(c)
	if err != nil {
		return nil, err
	}
	s := sim.New()
	net := mesh.New(s, core.MeshFor(c.Procs))
	if err := g.Drive(s, net, c.Elapsed, seed); err != nil {
		return nil, err
	}
	s.Run()
	if net.Delivered() == 0 {
		return nil, errors.New("workload: synthetic run produced no traffic")
	}

	v := &Validation{
		Original:  MeasureLog(c.Log, c.Elapsed, c.MeanUtilization),
		Synthetic: MeasureLog(net.Log(), s.Now(), net.MeanUtilization()),
	}
	v.LatencyErr = relErr(v.Synthetic.MeanLatencyNS, v.Original.MeanLatencyNS)
	v.RateErr = relErr(v.Synthetic.MessageRate, v.Original.MessageRate)
	v.UtilErr = relErr(v.Synthetic.MeanUtilization, v.Original.MeanUtilization)
	return v, nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	e := (got - want) / want
	if e < 0 {
		return -e
	}
	return e
}
