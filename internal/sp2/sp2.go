// Package sp2 models the communication-software cost of the IBM SP2, the
// machine the paper's static strategy ran on. The paper reports a validated
// overhead of 4.63e-2·x + 73.42 microseconds to transfer x bytes, obtained
// from extensive experiments and the data in [24]. This package reproduces
// that model and splits it between sender and receiver for replay.
package sp2

import "commchar/internal/sim"

// Published model constants (microseconds).
const (
	// PerByteUS is the per-byte software cost in microseconds.
	PerByteUS = 4.63e-2
	// FixedUS is the fixed per-message software cost in microseconds.
	FixedUS = 73.42
)

// CostModel is the affine software-overhead model o(x) = PerByte·x + Fixed.
// The SendFraction of the total is charged on the sender before injection;
// the remainder on the receiver after delivery.
type CostModel struct {
	PerByte      float64 // ns per byte
	Fixed        float64 // ns per message
	SendFraction float64 // in [0, 1]
}

// Default returns the paper's validated SP2 model, split evenly between
// sender and receiver.
func Default() CostModel {
	return CostModel{
		PerByte:      PerByteUS * 1e3, // µs/byte -> ns/byte
		Fixed:        FixedUS * 1e3,
		SendFraction: 0.5,
	}
}

// Total returns the full software overhead for a message of the given size.
func (c CostModel) Total(bytes int) sim.Duration {
	return sim.Duration(c.PerByte*float64(bytes) + c.Fixed)
}

// SendOverhead implements trace.CostModel.
func (c CostModel) SendOverhead(bytes int) sim.Duration {
	return sim.Duration(c.SendFraction * float64(c.Total(bytes)))
}

// RecvOverhead implements trace.CostModel.
func (c CostModel) RecvOverhead(bytes int) sim.Duration {
	return c.Total(bytes) - c.SendOverhead(bytes)
}
