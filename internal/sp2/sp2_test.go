package sp2

import (
	"testing"
	"testing/quick"

	"commchar/internal/sim"
	"commchar/internal/trace"
)

func TestPublishedModelValues(t *testing.T) {
	m := Default()
	// 0 bytes: fixed cost only, 73.42 µs.
	if got := m.Total(0); got != sim.Duration(73420) {
		t.Fatalf("Total(0) = %d ns, want 73420", got)
	}
	// 1000 bytes: 46.3 + 73.42 = 119.72 µs.
	if got := m.Total(1000); got != sim.Duration(119720) {
		t.Fatalf("Total(1000) = %d ns, want 119720", got)
	}
}

func TestSplitSumsToTotalProperty(t *testing.T) {
	m := Default()
	prop := func(b uint16) bool {
		bytes := int(b)
		return m.SendOverhead(bytes)+m.RecvOverhead(bytes) == m.Total(bytes)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneInBytes(t *testing.T) {
	m := Default()
	prev := sim.Duration(-1)
	for b := 0; b < 10000; b += 100 {
		tot := m.Total(b)
		if tot <= prev {
			t.Fatalf("Total not increasing at %d bytes", b)
		}
		prev = tot
	}
}

func TestImplementsTraceCostModel(t *testing.T) {
	var _ trace.CostModel = Default()
}

func TestCustomSendFraction(t *testing.T) {
	m := Default()
	m.SendFraction = 1
	if m.RecvOverhead(100) != 0 {
		t.Fatal("full send fraction should leave zero recv overhead")
	}
	m.SendFraction = 0
	if m.SendOverhead(100) != 0 {
		t.Fatal("zero send fraction should leave zero send overhead")
	}
}
