// Package ccnuma simulates the shared-memory machine of the paper's dynamic
// strategy: a CC-NUMA multiprocessor with private caches kept coherent by a
// full-map directory invalidation protocol under sequential consistency
// (the configuration the paper states it simulated with SPASM [8]).
//
// Every cache miss, upgrade, invalidation, acknowledgement and writeback
// becomes a real message through the 2-D mesh simulator, with the issuing
// processor blocked until its transaction completes — the execution-driven
// feedback loop between application and network that distinguishes the
// dynamic strategy from trace replay.
package ccnuma

import (
	"fmt"
	"sort"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// LineState is the MSI/MESI state of a cache line.
type LineState int

const (
	// Invalid: the line holds no data.
	Invalid LineState = iota
	// Shared: a clean copy, readable only.
	Shared
	// Exclusive: the only copy, clean, readable; a write upgrades it to
	// Modified silently (MESI protocol only).
	Exclusive
	// Modified: the only copy, dirty, readable and writable.
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", int(s))
	}
}

// Protocol selects the coherence protocol variant.
type Protocol int

const (
	// MSI is the paper's three-state invalidation protocol.
	MSI Protocol = iota
	// MESI adds the Exclusive state: an uncached block read-missed by one
	// processor is granted exclusively, so a subsequent write needs no
	// upgrade traffic, and clean-exclusive fetches carry no writeback
	// data. Evicting an Exclusive line sends a replacement hint so the
	// directory stays exact.
	MESI
)

func (pr Protocol) String() string {
	switch pr {
	case MSI:
		return "MSI"
	case MESI:
		return "MESI"
	default:
		return fmt.Sprintf("Protocol(%d)", int(pr))
	}
}

// Config describes the memory system.
type Config struct {
	Processors    int
	CacheBytes    int // private cache capacity
	LineBytes     int // coherence unit
	Associativity int // ways per set; 1 (direct-mapped) if zero
	Protocol      Protocol

	HitTime       sim.Duration // cache hit
	DirectoryTime sim.Duration // directory/memory access at the home node

	ControlBytes int // length of request/invalidate/ack messages
	// Data messages carry ControlBytes + LineBytes.
}

// DefaultConfig is the reproduction's machine: 64 KiB direct-mapped caches
// with 32-byte lines, 10 ns hits, 100 ns directory/memory occupancy, 8-byte
// control messages.
func DefaultConfig(processors int) Config {
	return Config{
		Processors:    processors,
		CacheBytes:    64 << 10,
		LineBytes:     32,
		HitTime:       10 * sim.Nanosecond,
		DirectoryTime: 100 * sim.Nanosecond,
		ControlBytes:  8,
	}
}

// ways returns the effective associativity.
func (c Config) ways() int {
	if c.Associativity < 1 {
		return 1
	}
	return c.Associativity
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Processors < 1:
		return fmt.Errorf("ccnuma: %d processors", c.Processors)
	case c.LineBytes < 1 || c.CacheBytes < c.LineBytes:
		return fmt.Errorf("ccnuma: cache %dB / line %dB invalid", c.CacheBytes, c.LineBytes)
	case c.CacheBytes%(c.LineBytes*c.ways()) != 0:
		return fmt.Errorf("ccnuma: cache %dB not a multiple of %d-way set size (%dB lines)",
			c.CacheBytes, c.ways(), c.LineBytes)
	case c.ControlBytes < 1:
		return fmt.Errorf("ccnuma: control message %dB", c.ControlBytes)
	case c.HitTime < 0 || c.DirectoryTime < 0:
		return fmt.Errorf("ccnuma: negative latency")
	}
	return nil
}

// DataBytes is the length of a data-carrying message.
func (c Config) DataBytes() int { return c.ControlBytes + c.LineBytes }

// Stats counts memory-system activity.
type Stats struct {
	Reads, Writes        int64
	ReadHits, WriteHits  int64
	ReadMisses           int64
	WriteMisses          int64
	Upgrades             int64
	Invalidations        int64
	Writebacks           int64
	Evictions            int64
	OwnerFetches         int64
	ControlMsgs, DataMsg int64

	// MESI-specific counters.
	ExclusiveGrants  int64 // read misses granted Exclusive
	SilentUpgrades   int64 // E->M transitions without traffic
	ReplacementHints int64 // control messages clearing Exclusive owners
}

// line is one cache frame.
type line struct {
	tag     uint64
	state   LineState
	lastUse int64 // LRU counter
}

// cache is one processor's private set-associative cache with LRU
// replacement (direct-mapped when the associativity is one).
type cache struct {
	sets  int
	assoc int
	lines []line // set s occupies lines[s*assoc : (s+1)*assoc]
	tick  int64
}

func newCache(cfg Config) *cache {
	sets := cfg.CacheBytes / (cfg.LineBytes * cfg.ways())
	return &cache{sets: sets, assoc: cfg.ways(), lines: make([]line, sets*cfg.ways())}
}

// setOf returns the frames of the set the block maps to.
func (c *cache) setOf(block uint64) []line {
	s := int(block % uint64(c.sets))
	return c.lines[s*c.assoc : (s+1)*c.assoc]
}

// lookup finds the block's frame, touching its LRU stamp on a hit.
func (c *cache) lookup(block uint64) (*line, bool) {
	set := c.setOf(block)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == block {
			c.tick++
			set[i].lastUse = c.tick
			return &set[i], true
		}
	}
	return nil, false
}

// victim returns the frame to fill for the block: an invalid frame if one
// exists, otherwise the least-recently-used frame in the set.
func (c *cache) victim(block uint64) *line {
	set := c.setOf(block)
	var v *line
	for i := range set {
		if set[i].state == Invalid {
			return &set[i]
		}
		if v == nil || set[i].lastUse < v.lastUse {
			v = &set[i]
		}
	}
	return v
}

// touch stamps a frame most-recently-used (after a fill).
func (c *cache) touch(l *line) {
	c.tick++
	l.lastUse = c.tick
}

// dirEntry is the full-map directory state of one block. The home node is
// implied by the block address.
type dirEntry struct {
	owner   int // processor holding the line Modified, or -1
	sharers map[int]bool
}

// System is the coherent memory system bound to a mesh network.
type System struct {
	sim *sim.Simulator
	net *mesh.Network
	cfg Config

	caches []*cache
	dir    map[uint64]*dirEntry
	locks  map[uint64]*sim.Facility // per-block transaction serialization

	nextAlloc uint64
	stats     Stats
}

// New builds the memory system. The network must have at least
// cfg.Processors nodes; processor i sits on mesh node i.
func New(s *sim.Simulator, net *mesh.Network, cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if net.Config().Nodes() < cfg.Processors {
		panic(fmt.Sprintf("ccnuma: %d processors on %d-node mesh", cfg.Processors, net.Config().Nodes()))
	}
	sys := &System{
		sim:   s,
		net:   net,
		cfg:   cfg,
		dir:   map[uint64]*dirEntry{},
		locks: map[uint64]*sim.Facility{},
		// Leave address 0 unused so a zero address is always a bug.
		nextAlloc: uint64(cfg.LineBytes),
	}
	for i := 0; i < cfg.Processors; i++ {
		sys.caches = append(sys.caches, newCache(cfg))
	}
	return sys
}

// Config returns the memory-system configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns a snapshot of the counters.
func (s *System) Stats() Stats { return s.stats }

// Alloc reserves size bytes of shared address space, aligned to a line
// boundary, and returns the base address. Blocks are interleaved across
// home nodes by address, so consecutive lines live on consecutive homes.
func (s *System) Alloc(size int) uint64 {
	if size <= 0 {
		panic(fmt.Sprintf("ccnuma: Alloc(%d)", size))
	}
	base := s.nextAlloc
	lines := (uint64(size) + uint64(s.cfg.LineBytes) - 1) / uint64(s.cfg.LineBytes)
	s.nextAlloc += lines * uint64(s.cfg.LineBytes)
	return base
}

// Home returns the home node of an address (block-interleaved).
func (s *System) Home(addr uint64) int {
	return int((addr / uint64(s.cfg.LineBytes)) % uint64(s.cfg.Processors))
}

func (s *System) block(addr uint64) uint64 { return addr / uint64(s.cfg.LineBytes) }

func (s *System) entry(block uint64) *dirEntry {
	e, ok := s.dir[block]
	if !ok {
		e = &dirEntry{owner: -1, sharers: map[int]bool{}}
		s.dir[block] = e
	}
	return e
}

func (s *System) blockLock(block uint64) *sim.Facility {
	f, ok := s.locks[block]
	if !ok {
		f = sim.NewFacility(s.sim, fmt.Sprintf("dir-block-%d", block))
		s.locks[block] = f
	}
	return f
}

// send injects a protocol message and blocks p until the tail arrives.
func (s *System) send(p *sim.Process, src, dst, bytes int) {
	if bytes == s.cfg.DataBytes() {
		s.stats.DataMsg++
	} else {
		s.stats.ControlMsgs++
	}
	if src == dst {
		// Local: never enters the network but still costs the NI time.
		p.Hold(s.net.Config().LocalDelay)
		return
	}
	done := false
	w := sim.WakerFor(p)
	s.net.Inject(mesh.Message{
		ID: s.net.NextID(), Src: src, Dst: dst, Bytes: bytes, Inject: p.Now(),
	}, func(mesh.Delivery) {
		done = true
		w.Wake()
	})
	for !done {
		p.Suspend()
	}
}

// Read performs a shared-memory load by processor proc at addr, advancing
// p's clock by the full (possibly remote) access time.
func (s *System) Read(p *sim.Process, proc int, addr uint64) {
	s.access(p, proc, addr, false)
}

// Write performs a shared-memory store.
func (s *System) Write(p *sim.Process, proc int, addr uint64) {
	s.access(p, proc, addr, true)
}

func (s *System) access(p *sim.Process, proc int, addr uint64, write bool) {
	if proc < 0 || proc >= s.cfg.Processors {
		panic(fmt.Sprintf("ccnuma: processor %d out of range", proc))
	}
	if addr == 0 || addr >= s.nextAlloc {
		panic(fmt.Sprintf("ccnuma: access to unallocated address %#x", addr))
	}
	if write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}
	c := s.caches[proc]
	block := s.block(addr)

	// Fast path: hit under sequential consistency.
	if l, ok := c.lookup(block); ok {
		if !write {
			s.stats.ReadHits++
			p.Hold(s.cfg.HitTime)
			return
		}
		if l.state == Modified {
			s.stats.WriteHits++
			p.Hold(s.cfg.HitTime)
			return
		}
		if l.state == Exclusive {
			// MESI: the silent E->M upgrade, the protocol's whole point.
			l.state = Modified
			s.stats.WriteHits++
			s.stats.SilentUpgrades++
			p.Hold(s.cfg.HitTime)
			return
		}
		// Shared: fall through to the upgrade transaction.
	}
	p.Hold(s.cfg.HitTime) // the detecting lookup itself

	// Conflict eviction of the victim frame, as its own transaction.
	victim := c.victim(block)
	if victim.state != Invalid && victim.tag != block {
		s.evict(p, proc, victim)
	}

	s.miss(p, proc, block, write)
}

// evict writes back (if dirty) and drops the victim line. It serializes on
// the victim's block lock so directory state stays consistent; S-state
// drops are silent (no replacement hint), leaving a stale sharer that a
// later invalidation will clean up.
func (s *System) evict(p *sim.Process, proc int, victim *line) {
	block := victim.tag
	lock := s.blockLock(block)
	lock.Reserve(p)
	defer lock.Release(p)

	// Re-check under the lock: an invalidation may have raced us here.
	if victim.state == Invalid || victim.tag != block {
		return
	}
	s.stats.Evictions++
	switch victim.state {
	case Modified:
		home := int(block % uint64(s.cfg.Processors))
		s.stats.Writebacks++
		s.send(p, proc, home, s.cfg.DataBytes()) // writeback data
		p.Hold(s.cfg.DirectoryTime)              // memory update at home
		e := s.entry(block)
		e.owner = -1
	case Exclusive:
		// Clean: no data moves, but the directory must learn the owner
		// is gone (replacement hint).
		home := int(block % uint64(s.cfg.Processors))
		s.stats.ReplacementHints++
		s.send(p, proc, home, s.cfg.ControlBytes)
		p.Hold(s.cfg.DirectoryTime)
		e := s.entry(block)
		e.owner = -1
	default:
		e := s.entry(block)
		delete(e.sharers, proc)
	}
	victim.state = Invalid
}

// miss runs the full coherence transaction for a read miss, write miss, or
// write upgrade, holding the block's transaction lock throughout.
func (s *System) miss(p *sim.Process, proc int, block uint64, write bool) {
	lock := s.blockLock(block)
	lock.Reserve(p)
	defer lock.Release(p)

	c := s.caches[proc]
	// Re-evaluate under the lock: while waiting, an invalidation may have
	// taken our Shared copy, or nothing may have changed.
	l, present := c.lookup(block)
	hasShared := present && l.state == Shared
	if present && (l.state == Modified || l.state == Exclusive) {
		return // another of our accesses cannot have done this; defensive
	}
	if !write && hasShared {
		return // read satisfied by the surviving Shared copy
	}
	if !present {
		l = c.victim(block)
	}
	c.touch(l)

	home := int(block % uint64(s.cfg.Processors))
	ctl := s.cfg.ControlBytes
	data := s.cfg.DataBytes()
	e := s.entry(block)

	// Request to home.
	s.send(p, proc, home, ctl)
	p.Hold(s.cfg.DirectoryTime)

	if !write {
		s.stats.ReadMisses++
		if e.owner >= 0 && e.owner != proc {
			// Fetch from the owner, downgrading it to Shared. A Modified
			// owner must write the line back; a clean Exclusive owner
			// (MESI) only acknowledges.
			s.stats.OwnerFetches++
			owner := e.owner
			s.send(p, home, owner, ctl) // fetch request
			if s.ownerState(owner, block) == Modified {
				s.send(p, owner, home, data) // owner writes back
				p.Hold(s.cfg.DirectoryTime)  // memory update
			} else {
				s.send(p, owner, home, ctl) // clean ack
			}
			s.setState(owner, block, Shared)
			e.sharers[owner] = true
			e.owner = -1
		}
		s.send(p, home, proc, data) // data reply
		l.tag = block
		if s.cfg.Protocol == MESI && e.owner < 0 && len(e.sharers) == 0 {
			// Uncached block: grant it exclusively.
			s.stats.ExclusiveGrants++
			l.state = Exclusive
			e.owner = proc
			return
		}
		e.sharers[proc] = true
		l.state = Shared
		return
	}

	// Write: upgrade or full miss.
	if hasShared {
		s.stats.Upgrades++
	} else {
		s.stats.WriteMisses++
	}
	if e.owner >= 0 && e.owner != proc {
		// Fetch-and-invalidate the owner (data only if it was dirty).
		s.stats.OwnerFetches++
		owner := e.owner
		s.send(p, home, owner, ctl)
		if s.ownerState(owner, block) == Modified {
			s.send(p, owner, home, data)
			p.Hold(s.cfg.DirectoryTime)
		} else {
			s.send(p, owner, home, ctl)
		}
		s.setState(owner, block, Invalid)
		e.owner = -1
	}
	// Invalidate every other sharer in parallel; home collects the acks.
	// The sharer set is a map: sort so the INVs inject in processor order,
	// keeping the run (and its network log) bit-for-bit reproducible.
	var targets []int
	for sh := range e.sharers {
		if sh != proc {
			targets = append(targets, sh)
		}
	}
	sort.Ints(targets)
	if len(targets) > 0 {
		s.invalidateAll(p, home, block, targets)
		for _, t := range targets {
			delete(e.sharers, t)
		}
	}
	delete(e.sharers, proc)
	if hasShared {
		s.send(p, home, proc, ctl) // upgrade grant, no data needed
	} else {
		s.send(p, home, proc, data)
	}
	e.owner = proc
	l.tag = block
	l.state = Modified
}

// ownerState reports the state the owner actually holds the block in
// (Invalid if an eviction raced the directory, which the protocol treats
// as clean).
func (s *System) ownerState(proc int, block uint64) LineState {
	if l, ok := s.caches[proc].lookup(block); ok {
		return l.state
	}
	return Invalid
}

// setState mutates another processor's cache line for block, if present.
func (s *System) setState(proc int, block uint64, st LineState) {
	if l, ok := s.caches[proc].lookup(block); ok {
		l.state = st
		if st == Invalid {
			s.stats.Invalidations++
		}
	}
}

// invalidateAll sends INV from home to every target concurrently, applies
// the invalidation at each target when its INV arrives, has each target ack
// back to home, and resumes p when the last ack is home.
func (s *System) invalidateAll(p *sim.Process, home int, block uint64, targets []int) {
	ctl := s.cfg.ControlBytes
	remaining := len(targets)
	w := sim.WakerFor(p)
	for _, t := range targets {
		t := t
		s.stats.ControlMsgs += 2
		if t == home {
			// Local invalidate: apply and ack with only NI delays.
			s.sim.Schedule(sim.Duration(2*s.net.Config().LocalDelay), func() {
				s.setState(t, block, Invalid)
				remaining--
				if remaining == 0 {
					w.Wake()
				}
			})
			continue
		}
		s.net.Inject(mesh.Message{
			ID: s.net.NextID(), Src: home, Dst: t, Bytes: ctl, Inject: p.Now(),
		}, func(d mesh.Delivery) {
			s.setState(t, block, Invalid)
			// Ack back to home.
			s.net.Inject(mesh.Message{
				ID: s.net.NextID(), Src: t, Dst: home, Bytes: ctl, Inject: d.End,
			}, func(mesh.Delivery) {
				remaining--
				if remaining == 0 {
					w.Wake()
				}
			})
		})
	}
	for remaining > 0 {
		p.Suspend()
	}
}

// InvariantError describes a coherence violation found by CheckInvariants.
type InvariantError struct {
	Block  uint64
	Detail string
}

func (e InvariantError) Error() string {
	return fmt.Sprintf("ccnuma: block %d: %s", e.Block, e.Detail)
}

// CheckInvariants verifies the single-writer/multiple-reader property over
// all caches and the directory. Intended for tests; call when the
// simulation is quiescent.
func (s *System) CheckInvariants() error {
	type holder struct {
		proc  int
		state LineState
	}
	byBlock := map[uint64][]holder{}
	for proc, c := range s.caches {
		for _, l := range c.lines {
			if l.state != Invalid {
				byBlock[l.tag] = append(byBlock[l.tag], holder{proc, l.state})
			}
		}
	}
	for block, hs := range byBlock {
		exclusive := 0 // Modified or Exclusive copies
		var exclusiveHolder int
		for _, h := range hs {
			if h.state == Modified || h.state == Exclusive {
				exclusive++
				exclusiveHolder = h.proc
			}
		}
		if exclusive > 1 {
			return InvariantError{block, "multiple exclusive-class (M/E) copies"}
		}
		if exclusive == 1 && len(hs) > 1 {
			return InvariantError{block, "exclusive-class copy coexists with other copies"}
		}
		if exclusive == 1 {
			e := s.dir[block]
			if e == nil || e.owner != exclusiveHolder {
				return InvariantError{block, fmt.Sprintf("directory owner mismatch (cache says %d)", exclusiveHolder)}
			}
		}
	}
	// Directory owners must hold their lines Modified or Exclusive.
	for block, e := range s.dir {
		if e.owner >= 0 {
			l, ok := s.caches[e.owner].lookup(block)
			if !ok || (l.state != Modified && l.state != Exclusive) {
				return InvariantError{block, fmt.Sprintf("owner %d does not hold the line exclusively", e.owner)}
			}
		}
	}
	return nil
}
