package ccnuma

import (
	"testing"
	"testing/quick"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

func rigMESI(n int) (*sim.Simulator, *mesh.Network, *System) {
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(4, (n+3)/4))
	cfg := DefaultConfig(n)
	cfg.Protocol = MESI
	sys := New(s, net, cfg)
	return s, net, sys
}

func TestMESIGrantsExclusiveOnColdRead(t *testing.T) {
	s, _, sys := rigMESI(4)
	addr := sys.Alloc(8)
	proc := (sys.Home(addr) + 1) % 4
	s.Spawn("p", func(p *sim.Process) {
		sys.Read(p, proc, addr)
	})
	s.Run()
	l, ok := sys.caches[proc].lookup(sys.block(addr))
	if !ok || l.state != Exclusive {
		t.Fatalf("cold read state = %v ok=%v, want Exclusive", l, ok)
	}
	if sys.Stats().ExclusiveGrants != 1 {
		t.Fatalf("stats = %+v", sys.Stats())
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMESISilentUpgradeSavesTraffic(t *testing.T) {
	// Read-then-write of private data: MSI needs an upgrade round-trip,
	// MESI none.
	run := func(protocol Protocol) (int64, Stats) {
		s := sim.New()
		net := mesh.New(s, mesh.DefaultConfig(4, 1))
		cfg := DefaultConfig(4)
		cfg.Protocol = protocol
		sys := New(s, net, cfg)
		addr := sys.Alloc(8)
		proc := (sys.Home(addr) + 1) % 4
		s.Spawn("p", func(p *sim.Process) {
			sys.Read(p, proc, addr)
			sys.Write(p, proc, addr)
		})
		s.Run()
		return net.Delivered(), sys.Stats()
	}
	msiMsgs, msiStats := run(MSI)
	mesiMsgs, mesiStats := run(MESI)
	if msiStats.Upgrades != 1 {
		t.Fatalf("MSI upgrades = %d", msiStats.Upgrades)
	}
	if mesiStats.SilentUpgrades != 1 || mesiStats.Upgrades != 0 {
		t.Fatalf("MESI stats = %+v", mesiStats)
	}
	if mesiMsgs >= msiMsgs {
		t.Fatalf("MESI messages %d not below MSI %d", mesiMsgs, msiMsgs)
	}
}

func TestMESISecondReaderDowngradesToShared(t *testing.T) {
	s, net, sys := rigMESI(4)
	addr := sys.Alloc(8)
	home := sys.Home(addr)
	a, b := (home+1)%4, (home+2)%4
	s.Spawn("p", func(p *sim.Process) {
		sys.Read(p, a, addr) // E at a
		sys.Read(p, b, addr) // both S
	})
	s.Run()
	la, _ := sys.caches[a].lookup(sys.block(addr))
	lb, _ := sys.caches[b].lookup(sys.block(addr))
	if la == nil || la.state != Shared || lb == nil || lb.state != Shared {
		t.Fatalf("states after second read: %v / %v", la, lb)
	}
	// The clean-exclusive fetch must NOT have moved data back to home:
	// data messages are exactly two fills.
	dataCount := 0
	for _, d := range net.Log() {
		if d.Bytes == sys.cfg.DataBytes() {
			dataCount++
		}
	}
	if dataCount != 2 {
		t.Fatalf("data messages = %d, want 2 (no clean writeback)", dataCount)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIWriteFetchFromCleanOwner(t *testing.T) {
	s, _, sys := rigMESI(4)
	addr := sys.Alloc(8)
	home := sys.Home(addr)
	a, b := (home+1)%4, (home+2)%4
	s.Spawn("p", func(p *sim.Process) {
		sys.Read(p, a, addr)  // E at a (clean)
		sys.Write(p, b, addr) // b takes M; a's clean copy invalidated
	})
	s.Run()
	if _, ok := sys.caches[a].lookup(sys.block(addr)); ok {
		t.Fatal("previous exclusive owner still holds the line")
	}
	lb, ok := sys.caches[b].lookup(sys.block(addr))
	if !ok || lb.state != Modified {
		t.Fatalf("writer state = %v", lb)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIEvictionSendsReplacementHint(t *testing.T) {
	s, _, sys := rigMESI(4)
	a := sys.Alloc(sys.cfg.CacheBytes * 2)
	b := a + uint64(sys.cfg.CacheBytes)
	proc := (sys.Home(a) + 1) % 4
	s.Spawn("p", func(p *sim.Process) {
		sys.Read(p, proc, a) // E
		sys.Read(p, proc, b) // conflicts: evicts clean-exclusive a
	})
	s.Run()
	if sys.Stats().ReplacementHints != 1 {
		t.Fatalf("hints = %d", sys.Stats().ReplacementHints)
	}
	if e := sys.dir[sys.block(a)]; e.owner != -1 {
		t.Fatalf("directory owner %d not cleared by hint", e.owner)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIInvariantsUnderStormProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		s, net, sys := rigMESI(8)
		heap := sys.Alloc(4096)
		st := sim.NewStream(seed)
		for proc := 0; proc < 8; proc++ {
			proc := proc
			s.Spawn("p", func(p *sim.Process) {
				for i := 0; i < 60; i++ {
					addr := heap + uint64(st.IntN(4096/8)*8)
					if st.Float64() < 0.3 {
						sys.Write(p, proc, addr)
					} else {
						sys.Read(p, proc, addr)
					}
					p.Hold(sim.Duration(st.IntN(150)))
				}
			})
		}
		s.Run()
		return net.InFlight() == 0 && sys.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMESIFewerMessagesOnPrivateWorkload(t *testing.T) {
	// Mostly-private access pattern: MESI must beat MSI on total traffic.
	run := func(protocol Protocol) int64 {
		s := sim.New()
		net := mesh.New(s, mesh.DefaultConfig(4, 2))
		cfg := DefaultConfig(8)
		cfg.Protocol = protocol
		sys := New(s, net, cfg)
		heap := sys.Alloc(8 * 1024)
		for proc := 0; proc < 8; proc++ {
			proc := proc
			s.Spawn("p", func(p *sim.Process) {
				base := heap + uint64(proc*1024)
				for i := 0; i < 30; i++ {
					addr := base + uint64((i%16)*64)
					sys.Read(p, proc, addr)
					sys.Write(p, proc, addr)
				}
			})
		}
		s.Run()
		return net.Delivered()
	}
	if mesi, msi := run(MESI), run(MSI); mesi >= msi {
		t.Fatalf("MESI traffic %d not below MSI %d on private workload", mesi, msi)
	}
}
