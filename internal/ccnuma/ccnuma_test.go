package ccnuma

import (
	"testing"
	"testing/quick"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// rig builds a simulator, mesh, and memory system for n processors.
func rig(n int) (*sim.Simulator, *mesh.Network, *System) {
	s := sim.New()
	w, h := 4, (n+3)/4
	if n <= 4 {
		w, h = n, 1
	}
	net := mesh.New(s, mesh.DefaultConfig(w, h))
	sys := New(s, net, DefaultConfig(n))
	return s, net, sys
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(16).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(16)
	bad.CacheBytes = 100 // not a line multiple
	if bad.Validate() == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestAllocAlignmentAndHomes(t *testing.T) {
	_, _, sys := rig(4)
	a := sys.Alloc(100)
	b := sys.Alloc(1)
	if a%uint64(sys.cfg.LineBytes) != 0 || b%uint64(sys.cfg.LineBytes) != 0 {
		t.Fatal("allocations not line-aligned")
	}
	if b <= a {
		t.Fatal("allocations overlap")
	}
	// Block interleaving: consecutive lines on consecutive homes.
	base := sys.Alloc(4 * sys.cfg.LineBytes)
	h0 := sys.Home(base)
	for i := 1; i < 4; i++ {
		hi := sys.Home(base + uint64(i*sys.cfg.LineBytes))
		if hi != (h0+i)%4 {
			t.Fatalf("home of line %d = %d, want %d", i, hi, (h0+i)%4)
		}
	}
}

func TestReadMissThenHit(t *testing.T) {
	s, net, sys := rig(4)
	addr := sys.Alloc(8)
	// Pick a processor that is not the home so messages hit the network.
	proc := (sys.Home(addr) + 1) % 4
	var missTime, hitTime sim.Duration
	s.Spawn("p", func(p *sim.Process) {
		t0 := p.Now()
		sys.Read(p, proc, addr)
		missTime = sim.Duration(p.Now() - t0)
		t1 := p.Now()
		sys.Read(p, proc, addr)
		hitTime = sim.Duration(p.Now() - t1)
	})
	s.Run()
	if net.Delivered() != 2 {
		t.Fatalf("read miss generated %d messages, want 2 (request + data)", net.Delivered())
	}
	log := net.Log()
	if log[0].Bytes != sys.cfg.ControlBytes || log[1].Bytes != sys.cfg.DataBytes() {
		t.Fatalf("message sizes = %d, %d", log[0].Bytes, log[1].Bytes)
	}
	if hitTime != sys.cfg.HitTime {
		t.Fatalf("hit time = %d, want %d", hitTime, sys.cfg.HitTime)
	}
	if missTime <= 10*hitTime {
		t.Fatalf("miss time %d suspiciously close to hit time", missTime)
	}
	st := sys.Stats()
	if st.ReadMisses != 1 || st.ReadHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMissInvalidatesSharers(t *testing.T) {
	s, _, sys := rig(4)
	addr := sys.Alloc(8)
	home := sys.Home(addr)
	readers := []int{(home + 1) % 4, (home + 2) % 4}
	writer := (home + 3) % 4
	s.Spawn("w", func(p *sim.Process) {
		for _, r := range readers {
			sys.Read(p, r, addr)
		}
		sys.Write(p, writer, addr)
	})
	s.Run()
	st := sys.Stats()
	if st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}
	// Readers' copies must be gone; writer holds Modified.
	for _, r := range readers {
		if _, ok := sys.caches[r].lookup(sys.block(addr)); ok {
			t.Fatalf("reader %d still holds the line", r)
		}
	}
	l, ok := sys.caches[writer].lookup(sys.block(addr))
	if !ok || l.state != Modified {
		t.Fatalf("writer line = %+v ok=%v", l, ok)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMissFetchesFromDirtyOwner(t *testing.T) {
	s, net, sys := rig(4)
	addr := sys.Alloc(8)
	home := sys.Home(addr)
	writer := (home + 1) % 4
	reader := (home + 2) % 4
	s.Spawn("p", func(p *sim.Process) {
		sys.Write(p, writer, addr)
		sys.Read(p, reader, addr)
	})
	s.Run()
	st := sys.Stats()
	if st.OwnerFetches != 1 {
		t.Fatalf("owner fetches = %d, want 1", st.OwnerFetches)
	}
	// Owner downgraded to Shared, reader Shared.
	lw, okw := sys.caches[writer].lookup(sys.block(addr))
	lr, okr := sys.caches[reader].lookup(sys.block(addr))
	if !okw || lw.state != Shared || !okr || lr.state != Shared {
		t.Fatalf("states: writer %v/%v reader %v/%v", lw, okw, lr, okr)
	}
	// Messages: write miss (req+data) + read miss (req + fetch + wb + data) = 6.
	if net.Delivered() != 6 {
		t.Fatalf("delivered %d messages, want 6", net.Delivered())
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeUsesControlMessage(t *testing.T) {
	s, net, sys := rig(4)
	addr := sys.Alloc(8)
	home := sys.Home(addr)
	proc := (home + 1) % 4
	s.Spawn("p", func(p *sim.Process) {
		sys.Read(p, proc, addr)  // S
		sys.Write(p, proc, addr) // upgrade S->M
	})
	s.Run()
	st := sys.Stats()
	if st.Upgrades != 1 {
		t.Fatalf("upgrades = %d", st.Upgrades)
	}
	// Upgrade with no other sharers: REQ + GRANT, both control-sized.
	log := net.Log()
	if len(log) != 4 {
		t.Fatalf("messages = %d, want 4", len(log))
	}
	for _, d := range log[2:] {
		if d.Bytes != sys.cfg.ControlBytes {
			t.Fatalf("upgrade message %d bytes, want control size", d.Bytes)
		}
	}
}

func TestEvictionWritesBackDirtyLine(t *testing.T) {
	s, _, sys := rig(4)
	// Two addresses in the same cache set: one cache of lines apart.
	a := sys.Alloc(sys.cfg.CacheBytes * 2)
	b := a + uint64(sys.cfg.CacheBytes)
	if sys.block(a)%uint64(sys.cfg.CacheBytes/sys.cfg.LineBytes) !=
		sys.block(b)%uint64(sys.cfg.CacheBytes/sys.cfg.LineBytes) {
		t.Fatal("test addresses do not conflict")
	}
	proc := (sys.Home(a) + 1) % 4
	s.Spawn("p", func(p *sim.Process) {
		sys.Write(p, proc, a) // dirty
		sys.Read(p, proc, b)  // conflicts: evicts dirty a
	})
	s.Run()
	st := sys.Stats()
	if st.Writebacks != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// After writeback the directory must not list an owner for a.
	if e := sys.dir[sys.block(a)]; e.owner != -1 {
		t.Fatalf("directory still has owner %d for evicted block", e.owner)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCleanEvictionIsSilent(t *testing.T) {
	s, net, sys := rig(4)
	a := sys.Alloc(sys.cfg.CacheBytes * 2)
	b := a + uint64(sys.cfg.CacheBytes)
	proc := (sys.Home(a) + 1) % 4
	s.Spawn("p", func(p *sim.Process) {
		sys.Read(p, proc, a) // clean S
		sys.Read(p, proc, b) // evicts a silently
	})
	s.Run()
	// Two read misses: 2 × (req + data) = 4 messages, no writeback.
	if net.Delivered() != 4 {
		t.Fatalf("delivered %d, want 4 (clean eviction must be silent)", net.Delivered())
	}
	if sys.Stats().Writebacks != 0 {
		t.Fatal("clean eviction wrote back")
	}
}

func TestLocalAccessStaysOffNetwork(t *testing.T) {
	s, net, sys := rig(4)
	addr := sys.Alloc(8)
	home := sys.Home(addr)
	s.Spawn("p", func(p *sim.Process) {
		sys.Read(p, home, addr) // home reads its own memory
	})
	s.Run()
	if net.Delivered() != 0 {
		t.Fatalf("local access sent %d network messages", net.Delivered())
	}
}

func TestSequentialConsistencyOrdering(t *testing.T) {
	// Two processors ping-pong a line; every access must complete before
	// the next one of the same processor starts (blocking semantics), and
	// the line must end in a single consistent state.
	s, _, sys := rig(2)
	addr := sys.Alloc(8)
	const rounds = 20
	var order []int
	for proc := 0; proc < 2; proc++ {
		proc := proc
		s.Spawn("p", func(p *sim.Process) {
			for i := 0; i < rounds; i++ {
				sys.Write(p, proc, addr)
				order = append(order, proc)
				p.Hold(10)
			}
		})
	}
	s.Run()
	if len(order) != 2*rounds {
		t.Fatalf("completed %d writes", len(order))
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsUnderRandomStormProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		s, net, sys := rig(8)
		heap := sys.Alloc(4096)
		st := sim.NewStream(seed)
		for proc := 0; proc < 8; proc++ {
			proc := proc
			s.Spawn("p", func(p *sim.Process) {
				for i := 0; i < 60; i++ {
					addr := heap + uint64(st.IntN(4096/8)*8)
					if st.Float64() < 0.3 {
						sys.Write(p, proc, addr)
					} else {
						sys.Read(p, proc, addr)
					}
					p.Hold(sim.Duration(st.IntN(200)))
				}
			})
		}
		s.Run()
		if net.InFlight() != 0 {
			return false
		}
		return sys.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	s, _, sys := rig(4)
	addr := sys.Alloc(8)
	proc := (sys.Home(addr) + 1) % 4
	s.Spawn("p", func(p *sim.Process) {
		sys.Read(p, proc, addr)
		sys.Read(p, proc, addr)
		sys.Write(p, proc, addr)
		sys.Write(p, proc, addr)
	})
	s.Run()
	st := sys.Stats()
	if st.Reads != 2 || st.Writes != 2 {
		t.Fatalf("access counts: %+v", st)
	}
	if st.ReadMisses != 1 || st.ReadHits != 1 || st.Upgrades != 1 || st.WriteHits != 1 {
		t.Fatalf("path counts: %+v", st)
	}
}

func TestAccessValidation(t *testing.T) {
	s, _, sys := rig(2)
	panics := 0
	s.Spawn("p", func(p *sim.Process) {
		for _, f := range []func(){
			func() { sys.Read(p, 5, sys.Alloc(8)) }, // bad proc
			func() { sys.Read(p, 0, 0) },            // null address
		} {
			func() {
				defer func() {
					if recover() != nil {
						panics++
					}
				}()
				f()
			}()
		}
	})
	s.Run()
	if panics != 2 {
		t.Fatalf("panics = %d, want 2", panics)
	}
}
