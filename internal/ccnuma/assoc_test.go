package ccnuma

import (
	"testing"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// rigAssoc builds a system with the given associativity.
func rigAssoc(n, ways int) (*sim.Simulator, *mesh.Network, *System) {
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(4, (n+3)/4))
	cfg := DefaultConfig(n)
	cfg.Associativity = ways
	sys := New(s, net, cfg)
	return s, net, sys
}

func TestAssociativityValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Associativity = 3
	cfg.CacheBytes = 64 << 10 // 2048 lines, not divisible by 3
	if cfg.Validate() == nil {
		t.Fatal("non-dividing associativity accepted")
	}
	cfg.Associativity = 4
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoWayAvoidsConflictMiss(t *testing.T) {
	// Two blocks mapping to the same set: direct-mapped thrashes, 2-way
	// holds both.
	run := func(ways int) Stats {
		s, _, sys := rigAssoc(4, ways)
		span := sys.cfg.CacheBytes * 2 / sys.cfg.ways()
		a := sys.Alloc(span + sys.cfg.LineBytes)
		// Same set: one whole cache apart (per way count).
		setStride := uint64(sys.cfg.CacheBytes / sys.cfg.ways())
		b := a + setStride
		proc := (sys.Home(a) + 1) % 4
		s.Spawn("p", func(p *sim.Process) {
			for i := 0; i < 10; i++ {
				sys.Read(p, proc, a)
				sys.Read(p, proc, b)
			}
		})
		s.Run()
		return sys.Stats()
	}
	dm := run(1)
	twoWay := run(2)
	if dm.ReadMisses != 20 {
		t.Fatalf("direct-mapped misses = %d, want 20 (thrash)", dm.ReadMisses)
	}
	if twoWay.ReadMisses != 2 {
		t.Fatalf("2-way misses = %d, want 2 (cold only)", twoWay.ReadMisses)
	}
}

func TestLRUReplacesOldest(t *testing.T) {
	s, _, sys := rigAssoc(4, 2)
	setStride := uint64(sys.cfg.CacheBytes / sys.cfg.ways())
	base := sys.Alloc(int(3*setStride) + sys.cfg.LineBytes)
	a, b, c := base, base+setStride, base+2*setStride // same set, 3 blocks, 2 ways
	proc := (sys.Home(a) + 1) % 4
	s.Spawn("p", func(p *sim.Process) {
		sys.Read(p, proc, a) // {a}
		sys.Read(p, proc, b) // {a,b}
		sys.Read(p, proc, a) // touch a: LRU order b,a
		sys.Read(p, proc, c) // evicts b
		sys.Read(p, proc, a) // must still hit
	})
	s.Run()
	st := sys.Stats()
	// Misses: a, b, c cold. Hits: a (twice).
	if st.ReadMisses != 3 || st.ReadHits != 2 {
		t.Fatalf("stats = %+v, want 3 misses / 2 hits", st)
	}
	if _, ok := sys.caches[proc].lookup(sys.block(b)); ok {
		t.Fatal("LRU kept the wrong line (b survived)")
	}
	if _, ok := sys.caches[proc].lookup(sys.block(a)); !ok {
		t.Fatal("recently-used line a was evicted")
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAssociativeInvariantsUnderStorm(t *testing.T) {
	s, net, sys := rigAssoc(8, 4)
	heap := sys.Alloc(8192)
	st := sim.NewStream(3)
	for proc := 0; proc < 8; proc++ {
		proc := proc
		s.Spawn("p", func(p *sim.Process) {
			for i := 0; i < 80; i++ {
				addr := heap + uint64(st.IntN(8192/8)*8)
				if st.Float64() < 0.4 {
					sys.Write(p, proc, addr)
				} else {
					sys.Read(p, proc, addr)
				}
				p.Hold(sim.Duration(st.IntN(100)))
			}
		})
	}
	s.Run()
	if net.InFlight() != 0 {
		t.Fatal("in-flight messages remain")
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
