package mp

import "fmt"

// Collectives are built from point-to-point operations, as the early MPI
// implementations on the SP2 built them. The default family is linear and
// root-centric — which is what makes the root the "favorite processor"
// in the paper's 3D-FFT spatial distributions — with a binomial-tree
// family selectable per world (Config.Collectives) for Bcast and Reduce.
// Internal tags live in the negative tag space so they can never collide
// with application tags; each collective instance draws a fresh block
// from the rank's collective counter (legal because SPMD ranks execute
// collectives in identical order), and the offset within the block
// encodes which operation and algorithm produced the message. That
// encoding is what lets internal/coll reassemble the delivery log into
// collective instances exactly.

// CollectiveTagBase is the top of the reserved negative tag space:
// collective tags occupy (CollectiveTagBase - 2^20, CollectiveTagBase].
const CollectiveTagBase = -1 << 20

// CollectiveBlockSize is the number of tags one collective instance
// reserves; offsets within a block distinguish operation phases.
const CollectiveBlockSize = 16

// CollectiveBlocks is the per-rank instance capacity of the reserved
// space. Instance CollectiveBlocks would collide with the block below
// the reserved window, so nextCollectiveTag refuses to issue it.
const CollectiveBlocks = (1 << 20) / CollectiveBlockSize

// Block offsets: the tag of a phase is blockBase - offset. Every
// (operation, algorithm) pair owns a distinct offset so the delivery log
// identifies both. Barrier keeps the historical 0/1 pair.
const (
	offBarrierEnter   = 0 // linear gather toward rank 0
	offBarrierRelease = 1 // release fan-out from rank 0
	offBcastLinear    = 2
	offBcastBinomial  = 3
	offGatherLinear   = 4
	offReduceLinear   = 5
	offReduceBinomial = 6
	offAlltoallPhased = 7
)

// Algorithm selects the collective algorithm family of a World. The zero
// value is the historical linear family, so existing configurations and
// traces are unchanged.
type Algorithm int

const (
	// AlgLinear is the linear, root-centric family: the root sends to or
	// receives from every other rank directly.
	AlgLinear Algorithm = iota
	// AlgBinomial organizes Bcast and Reduce as binomial trees (the
	// MPICH small-message algorithms): ceil(log2 P) sequential steps
	// instead of P-1. Operations without a tree variant (Barrier,
	// Gather, Alltoall) keep their linear/pairwise implementations.
	AlgBinomial
)

// String returns the algorithm family name.
func (a Algorithm) String() string {
	switch a {
	case AlgLinear:
		return "linear"
	case AlgBinomial:
		return "binomial"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// AlgorithmNames lists the selectable collective algorithm families.
func AlgorithmNames() []string { return []string{"linear", "binomial"} }

// ParseAlgorithm parses an algorithm family name; the empty string is
// the default (linear) family.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "", "linear":
		return AlgLinear, nil
	case "binomial":
		return AlgBinomial, nil
	}
	return 0, fmt.Errorf("mp: unknown collective algorithm %q (have linear, binomial)", s)
}

// CollectiveOp names the operation a collective tag block encodes.
type CollectiveOp int

const (
	// OpBarrier is the gather-release barrier through rank 0.
	OpBarrier CollectiveOp = iota
	// OpBcast is the one-to-all broadcast.
	OpBcast
	// OpGather is the all-to-one gather.
	OpGather
	// OpReduce is the all-to-one reduction.
	OpReduce
	// OpAlltoall is the personalized all-to-all exchange.
	OpAlltoall
)

// String returns the operation name.
func (o CollectiveOp) String() string {
	switch o {
	case OpBarrier:
		return "barrier"
	case OpBcast:
		return "bcast"
	case OpGather:
		return "gather"
	case OpReduce:
		return "reduce"
	case OpAlltoall:
		return "alltoall"
	}
	return fmt.Sprintf("CollectiveOp(%d)", int(o))
}

// AlgorithmName returns the display name of the algorithm family as it
// applies to this operation: Alltoall is pairwise-phased regardless of
// the configured family, and Barrier/Gather only exist in linear form.
func (o CollectiveOp) AlgorithmName(a Algorithm) string {
	if o == OpAlltoall {
		return "pairwise"
	}
	return a.String()
}

// Shape names the fan-out shape of the operation under the algorithm.
func (o CollectiveOp) Shape(a Algorithm) string {
	switch o {
	case OpBarrier:
		return "gather-release"
	case OpBcast:
		if a == AlgBinomial {
			return "binomial-tree"
		}
		return "star-out"
	case OpGather:
		return "star-in"
	case OpReduce:
		if a == AlgBinomial {
			return "binomial-tree"
		}
		return "star-in"
	case OpAlltoall:
		return "pairwise-ring"
	}
	return "unknown"
}

// SequentialDepth returns the serial message depth of the operation's
// fan-out shape on p ranks: the number of message steps that cannot
// overlap, which is the "S" multiplier of the pLogP-style span model
// span ≈ L + o·S + G·S·m fitted by internal/coll.
func (o CollectiveOp) SequentialDepth(a Algorithm, p int) int {
	if p < 2 {
		return 0
	}
	switch o {
	case OpBarrier:
		return 2 * (p - 1) // gather then release, both through rank 0
	case OpBcast, OpReduce:
		if a == AlgBinomial {
			return log2Ceil(p)
		}
		return p - 1
	case OpGather:
		return p - 1
	case OpAlltoall:
		return p - 1 // pairwise phases
	}
	return 0
}

// log2Ceil returns ceil(log2 p) for p >= 1.
func log2Ceil(p int) int {
	d := 0
	for s := 1; s < p; s <<= 1 {
		d++
	}
	return d
}

// TagInfo is the decoded identity of one collective-space tag.
type TagInfo struct {
	// Block is the per-rank collective sequence number the tag belongs
	// to. SPMD ranks execute collectives in identical order, so the same
	// block number names the same collective instance on every rank.
	Block int
	// Op and Algorithm identify what produced the message.
	Op        CollectiveOp
	Algorithm Algorithm
	// Phase distinguishes sub-phases of one instance (the barrier's
	// gather=0 / release=1); 0 for single-phase operations.
	Phase int
}

// DecodeTag recovers the collective identity of a tag, reporting false
// for application tags and tags outside the reserved encoding.
func DecodeTag(tag int) (TagInfo, bool) {
	if tag > CollectiveTagBase {
		return TagInfo{}, false
	}
	d := CollectiveTagBase - tag
	block, off := d/CollectiveBlockSize, d%CollectiveBlockSize
	if block >= CollectiveBlocks {
		return TagInfo{}, false
	}
	switch off {
	case offBarrierEnter:
		return TagInfo{Block: block, Op: OpBarrier, Algorithm: AlgLinear}, true
	case offBarrierRelease:
		return TagInfo{Block: block, Op: OpBarrier, Algorithm: AlgLinear, Phase: 1}, true
	case offBcastLinear:
		return TagInfo{Block: block, Op: OpBcast, Algorithm: AlgLinear}, true
	case offBcastBinomial:
		return TagInfo{Block: block, Op: OpBcast, Algorithm: AlgBinomial}, true
	case offGatherLinear:
		return TagInfo{Block: block, Op: OpGather, Algorithm: AlgLinear}, true
	case offReduceLinear:
		return TagInfo{Block: block, Op: OpReduce, Algorithm: AlgLinear}, true
	case offReduceBinomial:
		return TagInfo{Block: block, Op: OpReduce, Algorithm: AlgBinomial}, true
	case offAlltoallPhased:
		return TagInfo{Block: block, Op: OpAlltoall, Algorithm: AlgLinear}, true
	}
	return TagInfo{}, false
}

// nextCollectiveTag returns the base tag for this rank's next collective.
// Offsets within the block distinguish phases of one collective. The
// reserved space holds CollectiveBlocks instances per rank; exhausting it
// would alias the block below the window (and eventually application tag
// space), so running out fails loudly instead of corrupting matching.
func (r *Rank) nextCollectiveTag() int {
	if r.collective >= CollectiveBlocks {
		panic(fmt.Sprintf("mp: rank %d exhausted the collective tag space (%d instances); "+
			"the next block would alias tags outside the reserved window", r.id, r.collective))
	}
	t := CollectiveTagBase - r.collective*CollectiveBlockSize
	r.collective++
	return t
}

// alg returns the world's configured collective algorithm family.
func (r *Rank) alg() Algorithm { return r.world.cfg.Collectives }

// Barrier blocks until every rank has entered it. It is implemented as a
// linear gather-release through rank 0.
func (r *Rank) Barrier() {
	tag := r.nextCollectiveTag()
	const signal = 4 // bytes of a control message
	if r.id == 0 {
		for src := 1; src < r.Size(); src++ {
			r.Recv(src, tag-offBarrierEnter)
		}
		for dst := 1; dst < r.Size(); dst++ {
			r.Send(dst, tag-offBarrierRelease, signal, nil)
		}
		return
	}
	r.Send(0, tag-offBarrierEnter, signal, nil)
	r.Recv(0, tag-offBarrierRelease)
}

// Bcast distributes data (bytes long) from root to every rank and returns
// it. Non-root callers pass nil data.
func (r *Rank) Bcast(root, bytes int, data any) any {
	tag := r.nextCollectiveTag()
	if r.alg() == AlgBinomial {
		return r.bcastBinomial(tag-offBcastBinomial, root, bytes, data)
	}
	return r.bcastLinear(tag-offBcastLinear, root, bytes, data)
}

// bcastLinear is the root-centric broadcast: root sends to every rank.
func (r *Rank) bcastLinear(tag, root, bytes int, data any) any {
	if r.id == root {
		for dst := 0; dst < r.Size(); dst++ {
			if dst != root {
				r.Send(dst, tag, bytes, data)
			}
		}
		return data
	}
	_, payload := r.Recv(root, tag)
	return payload
}

// bcastBinomial is the binomial-tree broadcast (the MPICH small-message
// algorithm): on relative rank rel = (id-root) mod P, a rank receives
// from the parent that clears its lowest set bit, then forwards down the
// sub-tree. ceil(log2 P) sequential steps instead of P-1.
func (r *Rank) bcastBinomial(tag, root, bytes int, data any) any {
	n := r.Size()
	rel := (r.id - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % n
			_, data = r.Recv(parent, tag)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			r.Send((rel+mask+root)%n, tag, bytes, data)
		}
	}
	return data
}

// Gather collects every rank's contribution at root, returning a slice
// indexed by rank at the root and nil elsewhere.
func (r *Rank) Gather(root, bytes int, data any) []any {
	tag := r.nextCollectiveTag() - offGatherLinear
	if r.id == root {
		out := make([]any, r.Size())
		out[root] = data
		for src := 0; src < r.Size(); src++ {
			if src == root {
				continue
			}
			_, payload := r.Recv(src, tag)
			out[src] = payload
		}
		return out
	}
	r.Send(root, tag, bytes, data)
	return nil
}

// Reduce folds every rank's value into one at root using combine,
// returning the result at root and nil elsewhere. combine must be
// associative; both families apply it in a fixed deterministic order
// (ascending rank for linear, ascending relative rank for binomial), but
// the two orders differ, so a non-commutative combine yields
// family-dependent results.
func (r *Rank) Reduce(root, bytes int, val any, combine func(a, b any) any) any {
	tag := r.nextCollectiveTag()
	if r.alg() == AlgBinomial {
		return r.reduceBinomial(tag-offReduceBinomial, root, bytes, val, combine)
	}
	return r.reduceLinear(tag-offReduceLinear, root, bytes, val, combine)
}

// reduceLinear is the root-centric reduction: every rank sends to root.
func (r *Rank) reduceLinear(tag, root, bytes int, val any, combine func(a, b any) any) any {
	if r.id == root {
		acc := val
		for src := 0; src < r.Size(); src++ {
			if src == root {
				continue
			}
			_, payload := r.Recv(src, tag)
			acc = combine(acc, payload)
		}
		return acc
	}
	r.Send(root, tag, bytes, val)
	return nil
}

// reduceBinomial is the binomial-tree reduction, the mirror of
// bcastBinomial: each rank folds in its sub-tree children in ascending
// relative-rank order, then forwards the partial result to its parent.
func (r *Rank) reduceBinomial(tag, root, bytes int, val any, combine func(a, b any) any) any {
	n := r.Size()
	rel := (r.id - root + n) % n
	acc := val
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % n
			r.Send(parent, tag, bytes, acc)
			return nil
		}
		if child := rel | mask; child < n {
			_, payload := r.Recv((child+root)%n, tag)
			acc = combine(acc, payload)
		}
	}
	return acc // only relative rank 0 (the root) reaches here
}

// Allreduce is Reduce to rank 0 followed by Bcast of the result.
func (r *Rank) Allreduce(bytes int, val any, combine func(a, b any) any) any {
	acc := r.Reduce(0, bytes, val, combine)
	return r.Bcast(0, bytes, acc)
}

// Alltoall performs a personalized all-to-all exchange: chunks[j] goes to
// rank j (bytesPer each), and the returned slice holds the chunk received
// from every rank (the local chunk passes through untouched). The exchange
// is pairwise-phased so no rank is a hot spot.
func (r *Rank) Alltoall(bytesPer int, chunks []any) []any {
	if len(chunks) != r.Size() {
		panic("mp: Alltoall needs one chunk per rank")
	}
	tag := r.nextCollectiveTag() - offAlltoallPhased
	out := make([]any, r.Size())
	out[r.id] = chunks[r.id]
	n := r.Size()
	for phase := 1; phase < n; phase++ {
		dst := (r.id + phase) % n
		src := (r.id - phase + n) % n
		r.Send(dst, tag, bytesPer, chunks[dst])
		_, payload := r.Recv(src, tag)
		out[src] = payload
	}
	return out
}
