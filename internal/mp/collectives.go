package mp

// Collectives are built from point-to-point operations, as the early MPI
// implementations on the SP2 built them. Broadcast and reduce are linear
// and root-centric — which is what makes the root the "favorite processor"
// in the paper's 3D-FFT spatial distributions. Internal tags live in the
// negative tag space so they can never collide with application tags; each
// collective instance draws a fresh block from the rank's collective
// counter (legal because SPMD ranks execute collectives in identical
// order).

// collectiveTagBase reserves the negative tag space for collectives.
const collectiveTagBase = -1 << 20

// nextCollectiveTag returns the base tag for this rank's next collective.
// Offsets 0..15 within the block distinguish phases of one collective.
func (r *Rank) nextCollectiveTag() int {
	t := collectiveTagBase - r.collective*16
	r.collective++
	return t
}

// Barrier blocks until every rank has entered it. It is implemented as a
// linear gather-release through rank 0.
func (r *Rank) Barrier() {
	tag := r.nextCollectiveTag()
	const signal = 4 // bytes of a control message
	if r.id == 0 {
		for src := 1; src < r.Size(); src++ {
			r.Recv(src, tag)
		}
		for dst := 1; dst < r.Size(); dst++ {
			r.Send(dst, tag-1, signal, nil)
		}
		return
	}
	r.Send(0, tag, signal, nil)
	r.Recv(0, tag-1)
}

// Bcast distributes data (bytes long) from root to every rank and returns
// it. Non-root callers pass nil data.
func (r *Rank) Bcast(root, bytes int, data any) any {
	tag := r.nextCollectiveTag()
	if r.id == root {
		for dst := 0; dst < r.Size(); dst++ {
			if dst != root {
				r.Send(dst, tag, bytes, data)
			}
		}
		return data
	}
	_, payload := r.Recv(root, tag)
	return payload
}

// Gather collects every rank's contribution at root, returning a slice
// indexed by rank at the root and nil elsewhere.
func (r *Rank) Gather(root, bytes int, data any) []any {
	tag := r.nextCollectiveTag()
	if r.id == root {
		out := make([]any, r.Size())
		out[root] = data
		for src := 0; src < r.Size(); src++ {
			if src == root {
				continue
			}
			_, payload := r.Recv(src, tag)
			out[src] = payload
		}
		return out
	}
	r.Send(root, tag, bytes, data)
	return nil
}

// Reduce folds every rank's value into one at root using combine, returning
// the result at root and nil elsewhere. combine must be associative.
func (r *Rank) Reduce(root, bytes int, val any, combine func(a, b any) any) any {
	tag := r.nextCollectiveTag()
	if r.id == root {
		acc := val
		for src := 0; src < r.Size(); src++ {
			if src == root {
				continue
			}
			_, payload := r.Recv(src, tag)
			acc = combine(acc, payload)
		}
		return acc
	}
	r.Send(root, tag, bytes, val)
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast of the result.
func (r *Rank) Allreduce(bytes int, val any, combine func(a, b any) any) any {
	acc := r.Reduce(0, bytes, val, combine)
	return r.Bcast(0, bytes, acc)
}

// Alltoall performs a personalized all-to-all exchange: chunks[j] goes to
// rank j (bytesPer each), and the returned slice holds the chunk received
// from every rank (the local chunk passes through untouched). The exchange
// is pairwise-phased so no rank is a hot spot.
func (r *Rank) Alltoall(bytesPer int, chunks []any) []any {
	if len(chunks) != r.Size() {
		panic("mp: Alltoall needs one chunk per rank")
	}
	tag := r.nextCollectiveTag()
	out := make([]any, r.Size())
	out[r.id] = chunks[r.id]
	n := r.Size()
	for phase := 1; phase < n; phase++ {
		dst := (r.id + phase) % n
		src := (r.id - phase + n) % n
		r.Send(dst, tag, bytesPer, chunks[dst])
		_, payload := r.Recv(src, tag)
		out[src] = payload
	}
	return out
}
