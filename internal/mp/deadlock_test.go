package mp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"commchar/internal/sim"
)

// TestWatchdogDetectsMismatchedSendRecv is the deadlock regression test:
// a two-rank workload with mismatched send/recv tags must terminate via
// the watchdog with the wait-for-graph diagnostic, within the run budget,
// instead of hanging go test.
func TestWatchdogDetectsMismatchedSendRecv(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Watchdog = sim.Watchdog{MaxEvents: 100_000, MaxWall: 5 * time.Second}
	w := NewWorld(cfg)

	start := time.Now()
	_, err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 64, nil) // tag 0, buffered: completes
			r.Recv(1, 1)          // rank 1 never sends tag 1
		} else {
			r.Recv(0, 2) // wrong tag: never matches rank 0's send
		}
	})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("mismatched send/recv not detected")
	}
	var de *sim.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected DeadlockError, got %T: %v", err, err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("detection blew the run budget: %v", elapsed)
	}
	msg := err.Error()
	// The diagnostic must name both blocked ranks, what each waits on,
	// and the wait-for cycle between them.
	for _, want := range []string{
		"rank0", "rank1",
		"message from rank 1 (tag 1)",
		"message from rank 0 (tag 2)",
		"wait-for cycle",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
	if len(de.Cycle) < 3 {
		t.Errorf("cycle too short: %v", de.Cycle)
	}
}

// TestWatchdogBudgetOnLivelock: a rank that computes forever (unbounded
// event generation) is cut off by the event budget rather than spinning.
func TestWatchdogBudgetOnLivelock(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Watchdog = sim.Watchdog{MaxEvents: 10_000}
	w := NewWorld(cfg)
	_, err := w.Run(func(r *Rank) {
		for {
			r.Compute(10)
		}
	})
	var de *sim.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if !strings.Contains(de.Reason, "event budget") {
		t.Fatalf("wrong reason: %q", de.Reason)
	}
}

// TestCleanRunUnaffectedByWatchdog: a correct workload runs identically
// with and without budgets installed.
func TestCleanRunUnaffectedByWatchdog(t *testing.T) {
	run := func(wd sim.Watchdog) sim.Time {
		cfg := DefaultConfig(2)
		cfg.Watchdog = wd
		w := NewWorld(cfg)
		makespan, err := w.Run(func(r *Rank) {
			if r.ID() == 0 {
				r.Send(1, 0, 128, nil)
				r.Recv(1, 1)
			} else {
				r.Recv(0, 0)
				r.Send(0, 1, 128, nil)
			}
		})
		if err != nil {
			t.Fatalf("clean run failed: %v", err)
		}
		return makespan
	}
	plain := run(sim.Watchdog{})
	budgeted := run(sim.Watchdog{MaxEvents: 1_000_000, MaxWall: time.Minute})
	if plain != budgeted {
		t.Fatalf("watchdog changed the makespan: %d vs %d", plain, budgeted)
	}
}
