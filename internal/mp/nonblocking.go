package mp

import "fmt"

// Request is a handle to an outstanding nonblocking operation. Wait
// completes it. Requests must be waited on exactly once.
type Request struct {
	rank    *Rank
	isRecv  bool
	src     int
	tag     int
	waited  bool
	bytes   int
	payload any
}

// Isend starts a nonblocking send. Sends in this library are buffered, so
// the data is already on its way when Isend returns; the request completes
// immediately. The sender-side software overhead is still charged (it is
// CPU work), matching how MPI_Isend costs behave on the SP2.
func (r *Rank) Isend(dst, tag, bytes int, payload any) *Request {
	r.Send(dst, tag, bytes, payload)
	return &Request{rank: r, isRecv: false}
}

// Irecv posts a nonblocking receive for a message from src with the given
// tag. No time passes and nothing blocks; the match happens at Wait, which
// is where the communication event is traced (that is when the processor
// actually synchronizes with the message).
func (r *Rank) Irecv(src, tag int) *Request {
	if src < 0 || src >= r.Size() {
		panic(fmt.Sprintf("mp: rank %d posts Irecv from %d", r.id, src))
	}
	return &Request{rank: r, isRecv: true, src: src, tag: tag}
}

// Wait blocks until the request completes and returns the received length
// and payload (zero values for send requests).
func (req *Request) Wait() (int, any) {
	if req.waited {
		panic("mp: Request waited on twice")
	}
	req.waited = true
	if !req.isRecv {
		return 0, nil
	}
	req.bytes, req.payload = req.rank.Recv(req.src, req.tag)
	return req.bytes, req.payload
}

// WaitAll completes a set of requests in order and returns the received
// payloads (nil entries for sends).
func WaitAll(reqs ...*Request) []any {
	out := make([]any, len(reqs))
	for i, req := range reqs {
		_, out[i] = req.Wait()
	}
	return out
}

// Test reports whether a matching message has already arrived for a
// receive request (always true for send requests). It does not complete
// the request and takes no simulated time.
func (req *Request) Test() bool {
	if !req.isRecv {
		return true
	}
	ch := channel{src: req.src, tag: req.tag}
	return len(req.rank.arrived[ch]) > 0
}

// Exchange is the shift pattern every stencil code needs: send sbytes of
// sdata to dst while receiving from src on the same tag, without deadlock
// regardless of ordering, and return the received payload.
func (r *Rank) Exchange(dst, src, tag, sbytes int, sdata any) (int, any) {
	sreq := r.Isend(dst, tag, sbytes, sdata)
	rreq := r.Irecv(src, tag)
	sreq.Wait()
	return rreq.Wait()
}

// traceEventCount is a test hook: the number of events traced for a rank.
func (r *Rank) traceEventCount() int {
	return len(r.world.tr.Events[r.id])
}
