package mp

import (
	"testing"

	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/trace"
)

func TestPingPongPayload(t *testing.T) {
	w := NewWorld(DefaultConfig(2))
	var got any
	_, err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 7, 64, "hello")
		case 1:
			_, got = r.Recv(0, 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
}

func TestRecvBlocksUntilArrival(t *testing.T) {
	w := NewWorld(DefaultConfig(2))
	var recvDone sim.Time
	makespan, err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(1_000_000) // sender works for 1 ms first
			r.Send(1, 0, 128, nil)
		case 1:
			r.Recv(0, 0)
			recvDone = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvDone < 1_000_000 {
		t.Fatalf("receiver finished at %d, before the send was even issued", recvDone)
	}
	if makespan < recvDone {
		t.Fatalf("makespan %d < receiver completion %d", makespan, recvDone)
	}
}

func TestSendIsBuffered(t *testing.T) {
	// The sender must be able to complete even if the receiver never posts
	// until much later — sends are buffered, not rendezvous.
	w := NewWorld(DefaultConfig(2))
	var sendDone sim.Time
	_, err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, 64, nil)
			sendDone = r.Now()
		case 1:
			r.Compute(50_000_000)
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendDone >= 50_000_000 {
		t.Fatalf("send blocked until receiver posted (%d)", sendDone)
	}
}

func TestDeadlockDetected(t *testing.T) {
	w := NewWorld(DefaultConfig(2))
	_, err := w.Run(func(r *Rank) {
		// Both ranks receive first: classic deadlock.
		r.Recv(1-r.ID(), 0)
	})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestSoftwareOverheadCharged(t *testing.T) {
	cfg := DefaultConfig(2)
	w := NewWorld(cfg)
	makespan, err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, 1000, nil)
		case 1:
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Makespan must cover both overhead halves plus hardware transit:
	// total software overhead for 1000 bytes is 119.72 µs.
	min := cfg.Cost.Total(1000)
	if makespan < sim.Time(min) {
		t.Fatalf("makespan %d ns < software overhead %d ns", makespan, min)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 8
	w := NewWorld(DefaultConfig(n))
	after := make([]sim.Time, n)
	var slowest sim.Time
	_, err := w.Run(func(r *Rank) {
		work := sim.Duration(r.ID()) * 100_000
		r.Compute(work)
		if s := r.Now(); s > slowest {
			slowest = s
		}
		r.Barrier()
		after[r.ID()] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range after {
		if a < slowest {
			t.Fatalf("rank %d left barrier at %d, before slowest entry %d", i, a, slowest)
		}
	}
}

func TestBcastDeliversPayload(t *testing.T) {
	const n = 6
	w := NewWorld(DefaultConfig(n))
	got := make([]any, n)
	_, err := w.Run(func(r *Rank) {
		var data any
		if r.ID() == 2 {
			data = 12345
		}
		got[r.ID()] = r.Bcast(2, 512, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 12345 {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestReduceSums(t *testing.T) {
	const n = 5
	w := NewWorld(DefaultConfig(n))
	var result any
	_, err := w.Run(func(r *Rank) {
		v := r.Reduce(0, 8, r.ID()+1, func(a, b any) any { return a.(int) + b.(int) })
		if r.ID() == 0 {
			result = v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if result != 15 { // 1+2+3+4+5
		t.Fatalf("reduce = %v, want 15", result)
	}
}

func TestAllreduceAgreement(t *testing.T) {
	const n = 4
	w := NewWorld(DefaultConfig(n))
	got := make([]any, n)
	_, err := w.Run(func(r *Rank) {
		got[r.ID()] = r.Allreduce(8, 1<<r.ID(), func(a, b any) any { return a.(int) + b.(int) })
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 15 { // 1+2+4+8
			t.Fatalf("rank %d allreduce = %v", i, v)
		}
	}
}

func TestAlltoallPermutation(t *testing.T) {
	const n = 4
	w := NewWorld(DefaultConfig(n))
	results := make([][]any, n)
	_, err := w.Run(func(r *Rank) {
		chunks := make([]any, n)
		for j := range chunks {
			chunks[j] = r.ID()*100 + j // value encodes (from, to)
		}
		results[r.ID()] = r.Alltoall(256, chunks)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := j*100 + i // rank i's slot j came from rank j
			if results[i][j] != want {
				t.Fatalf("rank %d slot %d = %v, want %d", i, j, results[i][j], want)
			}
		}
	}
}

func TestGatherCollects(t *testing.T) {
	const n = 4
	w := NewWorld(DefaultConfig(n))
	var gathered []any
	_, err := w.Run(func(r *Rank) {
		out := r.Gather(1, 64, r.ID()*r.ID())
		if r.ID() == 1 {
			gathered = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range gathered {
		if v != i*i {
			t.Fatalf("gathered[%d] = %v", i, v)
		}
	}
}

func TestTraceIsValidAndReplayable(t *testing.T) {
	const n = 8
	w := NewWorld(DefaultConfig(n))
	_, err := w.Run(func(r *Rank) {
		r.Bcast(0, 1024, nil)
		chunks := make([]any, n)
		r.Alltoall(512, chunks)
		r.Allreduce(8, 0, func(a, b any) any { return a })
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Messages() == 0 {
		t.Fatal("no messages traced")
	}
	// The trace must replay to completion through the mesh.
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(4, 2))
	if err := trace.Replay(s, net, tr, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if int(net.Delivered()) != tr.Messages() {
		t.Fatalf("replay delivered %d of %d", net.Delivered(), tr.Messages())
	}
}

func TestBcastRootIsFavoriteInTrace(t *testing.T) {
	// The paper observes p0 as "favorite" because it roots all broadcasts.
	const n = 8
	w := NewWorld(DefaultConfig(n))
	_, err := w.Run(func(r *Rank) {
		for i := 0; i < 20; i++ {
			r.Bcast(0, 256, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for rank, seq := range w.Trace().Events {
		for _, e := range seq {
			if e.Op == trace.OpSend {
				counts[rank]++
			}
		}
	}
	if counts[0] != 20*(n-1) {
		t.Fatalf("root sent %d messages, want %d", counts[0], 20*(n-1))
	}
	for i := 1; i < n; i++ {
		if counts[i] != 0 {
			t.Fatalf("rank %d sent %d messages during bcast", i, counts[i])
		}
	}
}

func TestCollectiveTagsDoNotCollideWithAppTags(t *testing.T) {
	w := NewWorld(DefaultConfig(2))
	_, err := w.Run(func(r *Rank) {
		// Interleave app-level traffic with collectives on tag 0.
		if r.ID() == 0 {
			r.Send(1, 0, 8, "app")
		} else {
			_, p := r.Recv(0, 0)
			if p != "app" {
				t.Errorf("app payload corrupted: %v", p)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
