package mp

import (
	"testing"

	"commchar/internal/sim"
)

func TestIrecvOverlapsCompute(t *testing.T) {
	// The receiver posts the receive, computes while the message is in
	// flight, and only then waits: the wait must cost (almost) nothing.
	w := NewWorld(DefaultConfig(2))
	var waitCost sim.Duration
	_, err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, 64, "x")
		case 1:
			req := r.Irecv(0, 0)
			r.Compute(10_000_000) // far longer than transit
			t0 := r.Now()
			req.Wait()
			waitCost = sim.Duration(r.Now() - t0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the receiver-side software overhead remains at Wait time.
	max := w.cfg.Cost.RecvOverhead(64) + 1
	if waitCost > max {
		t.Fatalf("wait cost %d, want <= %d (overlap failed)", waitCost, max)
	}
}

func TestWaitTwicePanics(t *testing.T) {
	w := NewWorld(DefaultConfig(2))
	panicked := false
	_, err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, 8, nil)
		case 1:
			req := r.Irecv(0, 0)
			req.Wait()
			func() {
				defer func() {
					if recover() != nil {
						panicked = true
					}
				}()
				req.Wait()
			}()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("double Wait accepted")
	}
}

func TestTestReportsArrival(t *testing.T) {
	w := NewWorld(DefaultConfig(2))
	var before, after bool
	_, err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Compute(1_000_000)
			r.Send(1, 0, 8, nil)
		case 1:
			req := r.Irecv(0, 0)
			before = req.Test()
			r.Compute(50_000_000) // message certainly arrived
			after = req.Test()
			req.Wait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if before {
		t.Fatal("Test true before the send was issued")
	}
	if !after {
		t.Fatal("Test false after arrival")
	}
}

func TestExchangeRingNoDeadlock(t *testing.T) {
	const n = 8
	w := NewWorld(DefaultConfig(n))
	got := make([]any, n)
	_, err := w.Run(func(r *Rank) {
		right := (r.ID() + 1) % n
		left := (r.ID() - 1 + n) % n
		_, payload := r.Exchange(right, left, 5, 128, r.ID()*11)
		got[r.ID()] = payload
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := ((i - 1 + n) % n) * 11
		if v != want {
			t.Fatalf("rank %d received %v, want %d", i, v, want)
		}
	}
}

func TestWaitAll(t *testing.T) {
	w := NewWorld(DefaultConfig(3))
	var payloads []any
	_, err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			reqs := []*Request{r.Irecv(1, 0), r.Irecv(2, 0)}
			payloads = WaitAll(reqs...)
		default:
			r.Send(0, 0, 16, r.ID()*100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if payloads[0] != 100 || payloads[1] != 200 {
		t.Fatalf("payloads = %v", payloads)
	}
}

func TestNonblockingTracesAtWait(t *testing.T) {
	// Irecv itself must not trace; Wait records the recv event, keeping
	// traces replayable.
	w := NewWorld(DefaultConfig(2))
	var afterIrecv, afterWait int
	_, err := w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, 8, nil)
		case 1:
			req := r.Irecv(0, 0)
			afterIrecv = r.traceEventCount()
			req.Wait()
			afterWait = r.traceEventCount()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if afterIrecv != 0 || afterWait != 1 {
		t.Fatalf("trace counts: %d after Irecv, %d after Wait", afterIrecv, afterWait)
	}
	if err := w.Trace().Validate(); err != nil {
		t.Fatal(err)
	}
}
