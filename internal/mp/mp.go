// Package mp is a message-passing programming library in the role the MPI
// library on the IBM SP2 plays in the paper's static strategy. Applications
// are SPMD kernels over ranks with blocking point-to-point sends/receives
// and the usual collectives. Execution is native (real Go data movement)
// under a simulated clock driven by the SP2 software-overhead model, and —
// exactly like the IBM utility the paper used — the library traces every
// communication call at the application level. The resulting trace.Trace is
// then replayed through the 2-D mesh simulator for characterization.
package mp

import (
	"fmt"

	"commchar/internal/sim"
	"commchar/internal/sp2"
	"commchar/internal/trace"
)

// Config describes the machine the native run models.
type Config struct {
	Ranks int
	// Cost is the communication-software model (defaults to sp2.Default).
	Cost sp2.CostModel
	// HWLatency is the hardware transit latency of the native machine.
	HWLatency sim.Duration
	// HWPerByte is the hardware per-byte transfer time.
	HWPerByte float64 // ns per byte
	// Collectives selects the collective algorithm family; the zero
	// value is the historical linear family.
	Collectives Algorithm
	// Watchdog bounds the run (events, simulated time, wall clock); the
	// zero value relies on structural deadlock detection alone, which
	// already terminates any blocked-rank deadlock.
	Watchdog sim.Watchdog
}

// DefaultConfig returns an SP2-like machine with the paper's validated
// software overheads and era-plausible switch hardware (0.5 µs latency,
// ~40 MB/s per-byte cost).
func DefaultConfig(ranks int) Config {
	return Config{
		Ranks:     ranks,
		Cost:      sp2.Default(),
		HWLatency: 500 * sim.Nanosecond,
		HWPerByte: 25,
	}
}

type channel struct {
	src, tag int
}

type inMsg struct {
	bytes   int
	payload any
}

// World is one SPMD execution: the ranks, their mailboxes, and the trace.
type World struct {
	sim   *sim.Simulator
	cfg   Config
	ranks []*Rank
	tr    *trace.Trace
}

// NewWorld creates a world on a fresh simulator.
func NewWorld(cfg Config) *World {
	if cfg.Ranks < 1 {
		panic(fmt.Sprintf("mp: %d ranks", cfg.Ranks))
	}
	if cfg.Cost == (sp2.CostModel{}) {
		cfg.Cost = sp2.Default()
	}
	w := &World{
		sim: sim.New(),
		cfg: cfg,
		tr:  trace.New(cfg.Ranks),
	}
	for i := 0; i < cfg.Ranks; i++ {
		w.ranks = append(w.ranks, &Rank{
			world:   w,
			id:      i,
			arrived: map[channel][]inMsg{},
			waiting: map[channel]sim.Waker{},
		})
	}
	return w
}

// Run executes the SPMD kernel on every rank and returns the simulated
// makespan. A communication deadlock in the application terminates the run
// with the kernel watchdog's wait-for-graph diagnostic (who waits on whom)
// instead of hanging; Config.Watchdog adds progress budgets on top.
func (w *World) Run(kernel func(r *Rank)) (sim.Time, error) {
	for _, r := range w.ranks {
		r := r
		w.sim.Spawn(fmt.Sprintf("rank%d", r.id), func(p *sim.Process) {
			r.p = p
			kernel(r)
			r.done = true
		})
	}
	w.sim.SetWatchdog(w.cfg.Watchdog)
	if err := w.sim.RunChecked(); err != nil {
		return 0, fmt.Errorf("mp: %w", err)
	}
	for _, r := range w.ranks {
		if !r.done {
			return 0, fmt.Errorf("mp: rank %d deadlocked (blocked in communication at t=%d)", r.id, w.sim.Now())
		}
	}
	return w.sim.Now(), nil
}

// Trace returns the application-level communication trace of the run.
func (w *World) Trace() *trace.Trace { return w.tr }

// Rank is one SPMD process's handle: its identity, clock, and mailbox.
type Rank struct {
	world *World
	p     *sim.Process
	id    int
	done  bool

	arrived map[channel][]inMsg
	waiting map[channel]sim.Waker

	lastEvent  sim.Time // completion time of the previous traced event
	collective int      // per-rank collective sequence number
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.world.cfg.Ranks }

// Now returns the rank's local simulated time.
func (r *Rank) Now() sim.Time { return r.p.Now() }

// Compute advances the rank's clock by local computation time.
func (r *Rank) Compute(d sim.Duration) { r.p.Hold(d) }

// Send transmits payload (bytes long at the application level) to dst with
// the given tag. The send is buffered: the sender pays its software
// overhead and proceeds without waiting for the receiver.
func (r *Rank) Send(dst, tag, bytes int, payload any) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mp: rank %d sends to %d", r.id, dst))
	}
	if bytes <= 0 {
		panic(fmt.Sprintf("mp: rank %d sends %d bytes", r.id, bytes))
	}
	w := r.world
	compute := sim.Duration(r.p.Now() - r.lastEvent)
	w.tr.Add(r.id, trace.Event{Op: trace.OpSend, Peer: dst, Bytes: bytes, Tag: tag, Compute: compute})

	r.p.Hold(w.cfg.Cost.SendOverhead(bytes))
	transit := w.cfg.HWLatency + sim.Duration(w.cfg.HWPerByte*float64(bytes))
	target := w.ranks[dst]
	ch := channel{src: r.id, tag: tag}
	msg := inMsg{bytes: bytes, payload: payload}
	w.sim.Schedule(transit, func() {
		target.arrived[ch] = append(target.arrived[ch], msg)
		if wk, ok := target.waiting[ch]; ok {
			delete(target.waiting, ch)
			wk.Wake()
		}
	})
	r.lastEvent = r.p.Now()
}

// Recv blocks until a message from src with the given tag arrives, then
// returns its application-level length and payload. Matching is FIFO per
// (src, tag) channel.
func (r *Rank) Recv(src, tag int) (int, any) {
	if src < 0 || src >= r.Size() {
		panic(fmt.Sprintf("mp: rank %d receives from %d", r.id, src))
	}
	w := r.world
	compute := sim.Duration(r.p.Now() - r.lastEvent)
	w.tr.Add(r.id, trace.Event{Op: trace.OpRecv, Peer: src, Tag: tag, Compute: compute})

	ch := channel{src: src, tag: tag}
	for len(r.arrived[ch]) == 0 {
		r.waiting[ch] = sim.WakerFor(r.p)
		r.p.SuspendOn(recvWait{rank: r, src: src, tag: tag})
	}
	m := r.arrived[ch][0]
	r.arrived[ch] = r.arrived[ch][1:]
	r.p.Hold(w.cfg.Cost.RecvOverhead(m.bytes))
	r.lastEvent = r.p.Now()
	return m.bytes, m.payload
}

// recvWait is the sim.Resource a rank blocks on inside Recv. Its holder is
// the peer rank that would have to send, which gives the watchdog's
// wait-for graph the edge it needs to expose recv/recv cycles.
type recvWait struct {
	rank     *Rank
	src, tag int
}

// ResourceName implements sim.Resource.
func (w recvWait) ResourceName() string {
	return fmt.Sprintf("message from rank %d (tag %d)", w.src, w.tag)
}

// Holders implements sim.Resource.
func (w recvWait) Holders() []*sim.Process {
	peer := w.rank.world.ranks[w.src]
	if peer.p == nil || peer.done {
		return nil
	}
	return []*sim.Process{peer.p}
}
