package mp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/trace"
)

// worldWith builds a world with the given algorithm family.
func worldWith(ranks int, alg Algorithm) *World {
	cfg := DefaultConfig(ranks)
	cfg.Collectives = alg
	return NewWorld(cfg)
}

func TestBinomialBcastDeliversPayload(t *testing.T) {
	for ranks := 2; ranks <= 16; ranks++ {
		for _, root := range []int{0, ranks - 1, ranks / 2} {
			w := worldWith(ranks, AlgBinomial)
			got := make([]any, ranks)
			_, err := w.Run(func(r *Rank) {
				var data any
				if r.ID() == root {
					data = fmt.Sprintf("payload-from-%d", root)
				}
				got[r.ID()] = r.Bcast(root, 256, data)
			})
			if err != nil {
				t.Fatalf("ranks=%d root=%d: %v", ranks, root, err)
			}
			want := fmt.Sprintf("payload-from-%d", root)
			for id, g := range got {
				if g != want {
					t.Fatalf("ranks=%d root=%d: rank %d got %v", ranks, root, id, g)
				}
			}
		}
	}
}

func TestBinomialReduceSums(t *testing.T) {
	for ranks := 2; ranks <= 16; ranks++ {
		for _, root := range []int{0, ranks - 1} {
			w := worldWith(ranks, AlgBinomial)
			var at *int
			_, err := w.Run(func(r *Rank) {
				res := r.Reduce(root, 8, r.ID()+1, func(a, b any) any { return a.(int) + b.(int) })
				if r.ID() == root {
					v := res.(int)
					at = &v
				} else if res != nil {
					t.Errorf("non-root rank %d got %v", r.ID(), res)
				}
			})
			if err != nil {
				t.Fatalf("ranks=%d root=%d: %v", ranks, root, err)
			}
			want := ranks * (ranks + 1) / 2
			if at == nil || *at != want {
				t.Fatalf("ranks=%d root=%d: reduce = %v, want %d", ranks, root, at, want)
			}
		}
	}
}

func TestBinomialBcastUsesFewerSequentialSteps(t *testing.T) {
	// On 16 ranks the binomial tree finishes a root-0 broadcast in 4
	// sequential steps against the linear root's 15 serialized sends, so
	// its makespan must be strictly shorter.
	span := func(alg Algorithm) sim.Time {
		w := worldWith(16, alg)
		mk, err := w.Run(func(r *Rank) { r.Bcast(0, 4096, nil) })
		if err != nil {
			t.Fatal(err)
		}
		return mk
	}
	lin, bin := span(AlgLinear), span(AlgBinomial)
	if bin >= lin {
		t.Fatalf("binomial bcast makespan %d >= linear %d", bin, lin)
	}
}

func TestCollectiveTagExhaustionPanics(t *testing.T) {
	// Regression: the per-rank collective counter must refuse to issue a
	// block outside the reserved window instead of silently aliasing.
	w := NewWorld(DefaultConfig(2))
	r := w.ranks[0]
	r.collective = CollectiveBlocks - 1
	if tag := r.nextCollectiveTag(); tag != CollectiveTagBase-(CollectiveBlocks-1)*CollectiveBlockSize {
		t.Fatalf("last in-window tag = %d", tag)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("tag space exhaustion did not panic")
		}
	}()
	r.nextCollectiveTag()
}

func TestDecodeTagRoundTrip(t *testing.T) {
	cases := []struct {
		off  int
		op   CollectiveOp
		alg  Algorithm
		phse int
	}{
		{offBarrierEnter, OpBarrier, AlgLinear, 0},
		{offBarrierRelease, OpBarrier, AlgLinear, 1},
		{offBcastLinear, OpBcast, AlgLinear, 0},
		{offBcastBinomial, OpBcast, AlgBinomial, 0},
		{offGatherLinear, OpGather, AlgLinear, 0},
		{offReduceLinear, OpReduce, AlgLinear, 0},
		{offReduceBinomial, OpReduce, AlgBinomial, 0},
		{offAlltoallPhased, OpAlltoall, AlgLinear, 0},
	}
	for _, block := range []int{0, 1, 77, CollectiveBlocks - 1} {
		for _, c := range cases {
			tag := CollectiveTagBase - block*CollectiveBlockSize - c.off
			info, ok := DecodeTag(tag)
			if !ok {
				t.Fatalf("block %d off %d: not a collective tag", block, c.off)
			}
			want := TagInfo{Block: block, Op: c.op, Algorithm: c.alg, Phase: c.phse}
			if info != want {
				t.Fatalf("block %d off %d: decoded %+v, want %+v", block, c.off, info, want)
			}
		}
	}
	for _, tag := range []int{0, 1, -1, 42, CollectiveTagBase + 1, CollectiveTagBase - 8, CollectiveTagBase - CollectiveBlocks*CollectiveBlockSize} {
		if info, ok := DecodeTag(tag); ok {
			t.Fatalf("tag %d decoded as %+v, want not-a-collective", tag, info)
		}
	}
}

func TestSequentialDepth(t *testing.T) {
	if d := OpBcast.SequentialDepth(AlgLinear, 16); d != 15 {
		t.Fatalf("linear bcast depth = %d", d)
	}
	if d := OpBcast.SequentialDepth(AlgBinomial, 16); d != 4 {
		t.Fatalf("binomial bcast depth = %d", d)
	}
	if d := OpBcast.SequentialDepth(AlgBinomial, 9); d != 4 {
		t.Fatalf("binomial bcast depth(9) = %d", d)
	}
	if d := OpBarrier.SequentialDepth(AlgLinear, 8); d != 14 {
		t.Fatalf("barrier depth = %d", d)
	}
	if d := OpAlltoall.SequentialDepth(AlgLinear, 8); d != 7 {
		t.Fatalf("alltoall depth = %d", d)
	}
}

// runAlltoallAllreduce is the property-test kernel: one alltoall of
// rank-stamped chunks and one allreduce, with every value verified.
func runAlltoallAllreduce(t *testing.T, ranks int, alg Algorithm) *World {
	t.Helper()
	w := worldWith(ranks, alg)
	_, err := w.Run(func(r *Rank) {
		chunks := make([]any, ranks)
		for dst := range chunks {
			chunks[dst] = fmt.Sprintf("%d->%d", r.ID(), dst)
		}
		out := r.Alltoall(64, chunks)
		for src, got := range out {
			if want := fmt.Sprintf("%d->%d", src, r.ID()); got != want {
				t.Errorf("ranks=%d rank %d: alltoall[%d] = %v, want %s", ranks, r.ID(), src, got, want)
			}
		}
		sum := r.Allreduce(8, r.ID()*r.ID(), func(a, b any) any { return a.(int) + b.(int) })
		want := 0
		for i := 0; i < ranks; i++ {
			want += i * i
		}
		if sum != want {
			t.Errorf("ranks=%d rank %d: allreduce = %v, want %d", ranks, r.ID(), sum, want)
		}
	})
	if err != nil {
		t.Fatalf("ranks=%d: %v", ranks, err)
	}
	return w
}

func TestAlltoallAllreduceProperty(t *testing.T) {
	for ranks := 2; ranks <= 16; ranks++ {
		for _, alg := range []Algorithm{AlgLinear, AlgBinomial} {
			runAlltoallAllreduce(t, ranks, alg)
		}
	}
}

// TestAlltoallAllreduceDeterministic re-runs the kernel and byte-compares
// the serialized trace and the replayed delivery log — the same
// byte-identity standard TestParallelSweepIsDeterministic enforces on
// full sweeps.
func TestAlltoallAllreduceDeterministic(t *testing.T) {
	for _, ranks := range []int{2, 5, 8, 16} {
		for _, alg := range []Algorithm{AlgLinear, AlgBinomial} {
			var traces, logs []string
			for run := 0; run < 2; run++ {
				w := runAlltoallAllreduce(t, ranks, alg)
				var tb bytes.Buffer
				if err := w.Trace().WriteCSV(&tb); err != nil {
					t.Fatal(err)
				}
				traces = append(traces, tb.String())

				s := sim.New()
				net := mesh.New(s, mesh.DefaultConfig(4, (ranks+3)/4))
				if err := trace.Replay(s, net, w.Trace(), nil); err != nil {
					t.Fatal(err)
				}
				if err := s.RunChecked(); err != nil {
					t.Fatal(err)
				}
				var lb strings.Builder
				if err := trace.WriteDeliveries(&lb, net.Log()); err != nil {
					t.Fatal(err)
				}
				logs = append(logs, lb.String())
			}
			if traces[0] != traces[1] {
				t.Fatalf("ranks=%d alg=%v: traces differ across identical runs", ranks, alg)
			}
			if logs[0] != logs[1] {
				t.Fatalf("ranks=%d alg=%v: delivery logs differ across identical runs", ranks, alg)
			}
			if len(logs[0]) == 0 {
				t.Fatalf("ranks=%d alg=%v: empty delivery log", ranks, alg)
			}
		}
	}
}
