package core

import (
	"strings"
	"testing"

	"commchar/internal/mesh"
)

// TestTopologyForDefaultIsLegacyMesh: the empty selector must reproduce
// the historical MeshFor geometry exactly — callers that never heard of
// topologies keep simulating the identical machine.
func TestTopologyForDefaultIsLegacyMesh(t *testing.T) {
	for _, procs := range []int{2, 4, 5, 16, 33} {
		got, err := TopologyFor("", nil, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		want := MeshFor(procs)
		if got.Width != want.Width || got.Height != want.Height || got.Topology != want.Topology {
			t.Errorf("procs=%d: TopologyFor = %dx%d %v, MeshFor = %dx%d %v",
				procs, got.Width, got.Height, got.Topology, want.Width, want.Height, want.Topology)
		}
	}
}

// TestTopologyForDerivedShapes pins the derived standard instance per
// fabric at 16 processors.
func TestTopologyForDerivedShapes(t *testing.T) {
	want := map[string]string{
		"mesh":      "mesh4x4",
		"torus":     "torus4x4",
		"torus3d":   "torus3x3x3",
		"torus4d":   "torus2x2x2x2",
		"hypercube": "hypercube4d",
		"fattree":   "fattree4:2",
		"dragonfly": "dragonfly a4h1",
	}
	for sel, name := range want {
		cfg, err := TopologyFor(sel, nil, 16)
		if err != nil {
			t.Errorf("%s: %v", sel, err)
			continue
		}
		fab := cfg.Fabric()
		if fab.Name() != name {
			t.Errorf("%s at 16 procs derives %q, want %q", sel, fab.Name(), name)
		}
		if fab.Endpoints() < 16 {
			t.Errorf("%s: derived %d endpoints for 16 procs", sel, fab.Endpoints())
		}
		if cfg.VirtualChannels < fab.MinVirtualChannels() {
			t.Errorf("%s: %d VCs below the fabric floor %d",
				sel, cfg.VirtualChannels, fab.MinVirtualChannels())
		}
	}
}

// TestTopologyForRejects: unknown selectors, undersized explicit shapes,
// and malformed dims fail with a descriptive error.
func TestTopologyForRejects(t *testing.T) {
	cases := []struct {
		sel  string
		dims []int
	}{
		{"nosuch", nil},
		{"hypercube", []int{3}},    // 8 endpoints < 16 procs
		{"hypercube", []int{2, 2}}, // hypercube takes one value
		{"fattree", []int{4}},      // fattree takes [arity, levels]
		{"dragonfly", []int{2}},    // dragonfly takes [routers, globals]
		{"torus", []int{1, 16}},    // torus dimension below 2
		{"mesh", []int{2, 2}},      // 4 endpoints < 16 procs
	}
	for _, c := range cases {
		if _, err := TopologyFor(c.sel, c.dims, 16); err == nil {
			t.Errorf("TopologyFor(%q, %v, 16) accepted", c.sel, c.dims)
		}
	}
}

// TestTopologyForExplicitDims: pinned shapes override derivation.
func TestTopologyForExplicitDims(t *testing.T) {
	cfg, err := TopologyFor("torus", []int{4, 4, 4}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if name := cfg.Fabric().Name(); name != "torus4x4x4" {
		t.Fatalf("pinned torus renders %q", name)
	}
	if cfg.Topology != mesh.TorusTopology || cfg.VirtualChannels != 2 {
		t.Fatalf("pinned torus config wrong: %+v", cfg)
	}
}

// TestTopologyNamesMatchBuilders: the advertised selector list is exactly
// the buildable set, sorted.
func TestTopologyNamesMatchBuilders(t *testing.T) {
	names := TopologyNames()
	if len(names) != len(topologyBuilders) {
		t.Fatalf("%d names for %d builders", len(names), len(topologyBuilders))
	}
	for i, n := range names {
		if _, ok := topologyBuilders[n]; !ok {
			t.Errorf("name %q has no builder", n)
		}
		if i > 0 && names[i-1] >= n {
			t.Errorf("names not sorted at %q", n)
		}
	}
}

func TestParseDims(t *testing.T) {
	good := map[string][]int{
		"":       nil,
		"4":      {4},
		"4,4,4":  {4, 4, 4},
		" 2, 3 ": {2, 3},
	}
	for in, want := range good {
		got, err := ParseDims(in)
		if err != nil {
			t.Errorf("ParseDims(%q): %v", in, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("ParseDims(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("ParseDims(%q) = %v, want %v", in, got, want)
				break
			}
		}
	}
	for _, in := range []string{"x", "4,", "0", "-1", "4,,4", "4.5"} {
		if _, err := ParseDims(in); err == nil {
			t.Errorf("ParseDims(%q) accepted", in)
		} else if !strings.Contains(err.Error(), "dimension") {
			t.Errorf("ParseDims(%q) error %q lacks context", in, err)
		}
	}
}
