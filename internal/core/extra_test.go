package core

import (
	"math"
	"strings"
	"testing"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// burstyLog builds a log with two dense communication phases separated by
// silence, all with known hop counts.
func burstyLog(procs int) ([]mesh.Delivery, sim.Time) {
	var log []mesh.Delivery
	id := int64(0)
	add := func(t sim.Time, src, dst, hops int) {
		id++
		log = append(log, mesh.Delivery{
			Message: mesh.Message{ID: id, Src: src, Dst: dst, Bytes: 8, Inject: t},
			End:     t + 100, Latency: 100, Hops: hops,
		})
	}
	// Phase 1: t in [0, 1000), heavy.
	for i := 0; i < 200; i++ {
		add(sim.Time(i*5), i%procs, (i+1)%procs, 1)
	}
	// Silence: [1000, 9000).
	// Phase 2: t in [9000, 10000), heavy, longer hops.
	for i := 0; i < 200; i++ {
		add(sim.Time(9000+i*5), i%procs, (i+2)%procs, 3)
	}
	return log, 10000
}

func TestRateOverTimeShowsPhases(t *testing.T) {
	log, elapsed := burstyLog(4)
	c, err := Analyze("bursty", StrategyDynamic, log, 4, elapsed, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pts := c.RateOverTime(10)
	if len(pts) != 10 {
		t.Fatalf("windows = %d", len(pts))
	}
	if pts[0].Messages != 200 || pts[9].Messages != 200 {
		t.Fatalf("edge windows: %d, %d", pts[0].Messages, pts[9].Messages)
	}
	for i := 2; i < 8; i++ {
		if pts[i].Messages != 0 {
			t.Fatalf("window %d should be silent, has %d", i, pts[i].Messages)
		}
	}
	// Total conserved.
	total := 0
	for _, p := range pts {
		total += p.Messages
	}
	if total != 400 {
		t.Fatalf("total = %d", total)
	}
}

func TestBurstRatio(t *testing.T) {
	log, elapsed := burstyLog(4)
	c, err := Analyze("bursty", StrategyDynamic, log, 4, elapsed, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// 10 windows, 2 active: mean 40 msg/window, peak 200 → ratio 5.
	if r := c.BurstRatio(10); math.Abs(r-5) > 1e-9 {
		t.Fatalf("burst ratio = %v, want 5", r)
	}
}

func TestAnalyzeLocality(t *testing.T) {
	log, elapsed := burstyLog(4)
	c, err := Analyze("bursty", StrategyDynamic, log, 4, elapsed, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	loc := c.AnalyzeLocality()
	if loc.HopCounts[1] != 200 || loc.HopCounts[3] != 200 {
		t.Fatalf("hop counts: %v", loc.HopCounts)
	}
	if math.Abs(loc.NeighbourFraction-0.5) > 1e-9 {
		t.Fatalf("neighbour fraction = %v", loc.NeighbourFraction)
	}
	if math.Abs(loc.MeanHops-2) > 1e-9 {
		t.Fatalf("mean hops = %v", loc.MeanHops)
	}
}

func TestAnalyzeReceivers(t *testing.T) {
	var log []mesh.Delivery
	for i := 0; i < 30; i++ {
		dst := 2
		if i%3 == 0 {
			dst = 1
		}
		log = append(log, mesh.Delivery{
			Message: mesh.Message{ID: int64(i + 1), Src: 0, Dst: dst, Bytes: 8, Inject: sim.Time(i * 10)},
			End:     sim.Time(i*10 + 50), Latency: 50, Hops: 1,
		})
	}
	c, err := Analyze("recv", StrategyDynamic, log, 4, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	rp := c.AnalyzeReceivers()
	if rp.Favorite != 2 {
		t.Fatalf("favorite = %d", rp.Favorite)
	}
	if math.Abs(rp.FavoriteShare-2.0/3.0) > 1e-9 {
		t.Fatalf("favorite share = %v", rp.FavoriteShare)
	}
}

func TestSummaryString(t *testing.T) {
	log, elapsed := burstyLog(4)
	c, err := Analyze("bursty", StrategyDynamic, log, 4, elapsed, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if !strings.Contains(s, "bursty") || !strings.Contains(s, "msgs") {
		t.Fatalf("summary = %q", s)
	}
}

func TestRateOverTimeDegenerate(t *testing.T) {
	log, _ := burstyLog(4)
	c, err := Analyze("x", StrategyDynamic, log, 4, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.RateOverTime(0) != nil {
		t.Fatal("zero windows should return nil")
	}
}
