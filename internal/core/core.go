// Package core implements the paper's contribution: the communication
// characterization methodology. It takes the network log produced by either
// acquisition strategy — dynamic (execution-driven, spasm+ccnuma) or static
// (trace-driven, mp+sp2 replayed through the mesh) — and quantifies the
// three communication attributes:
//
//   - temporal: the message inter-arrival time distribution at each source,
//     fitted by non-linear regression over candidate families (stats);
//   - spatial: the distribution of each source's messages over
//     destinations, classified as uniform / bimodal-uniform / structured;
//   - volume: message counts and the message-length spectrum.
//
// The result is a Characterization: the closed-form description of the
// application's communication workload that the paper proposes feeding into
// analytical and simulation studies of interconnection networks.
package core

import (
	"errors"
	"fmt"
	"sort"

	"commchar/internal/coll"
	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/stats"
	"commchar/internal/trace"
)

// Strategy names the acquisition path, as in the paper.
type Strategy string

const (
	// StrategyDynamic is execution-driven simulation (SPASM-style).
	StrategyDynamic Strategy = "dynamic"
	// StrategyStatic is trace-driven replay (SP2-style).
	StrategyStatic Strategy = "static"
)

// SourceTemporal is the temporal characterization of one source processor.
type SourceTemporal struct {
	Src     int
	Samples int
	Summary stats.Summary        // of inter-arrival times, in ns
	Fits    []stats.CandidateFit // best-first
}

// Best returns the winning fit, or nil if the source had too few messages.
func (s *SourceTemporal) Best() *stats.CandidateFit {
	if len(s.Fits) == 0 {
		return nil
	}
	return &s.Fits[0]
}

// Characterization is the complete communication characterization of one
// application run.
type Characterization struct {
	Name     string
	Strategy Strategy
	Procs    int

	Messages   int
	TotalBytes int64
	Elapsed    sim.Time

	// Temporal attribute.
	PerSource []SourceTemporal
	Aggregate SourceTemporal // pooled over sources (Src = -1)

	// Spatial attribute.
	Spatial []stats.SpatialDist

	// Volume attribute.
	Volume stats.LengthProfile

	// Network-level metrics of the run (used by the synthetic-traffic
	// validation experiment).
	MeanLatencyNS   float64
	MeanBlockedNS   float64
	MeanHops        float64
	MeanUtilization float64

	// Log retains the raw deliveries for downstream analysis.
	Log []mesh.Delivery

	// Trace is the application-level communication trace, when the
	// strategy records one (static strategy only; nil otherwise). It can
	// be re-replayed offline, e.g. through meshsim's fault injection.
	Trace *trace.Trace

	// Coll is the collective-communication and asynchronicity
	// characterization, present when the trace carries mp's collective
	// tag blocks (static strategy only; nil otherwise).
	Coll *coll.Characterization `json:",omitempty"`
}

// minSourceSamples is the fewest inter-arrival samples worth fitting.
const minSourceSamples = 8

// Analyze characterizes a network log. procs is the machine size; elapsed
// the simulated run time; meanUtil the network's mean link utilization.
func Analyze(name string, strategy Strategy, log []mesh.Delivery, procs int, elapsed sim.Time, meanUtil float64) (*Characterization, error) {
	if len(log) == 0 {
		return nil, errors.New("core: empty network log")
	}
	if procs < 2 {
		return nil, fmt.Errorf("core: %d processors", procs)
	}
	sorted := append([]mesh.Delivery(nil), log...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Inject != sorted[j].Inject {
			return sorted[i].Inject < sorted[j].Inject
		}
		return sorted[i].Message.ID < sorted[j].Message.ID
	})

	c := &Characterization{
		Name:            name,
		Strategy:        strategy,
		Procs:           procs,
		Messages:        len(sorted),
		Elapsed:         elapsed,
		MeanUtilization: meanUtil,
		Log:             sorted,
	}

	// Per-source event streams.
	bySource := make([][]sim.Time, procs)
	counts := make([][]int, procs)
	for i := range counts {
		counts[i] = make([]int, procs)
	}
	lengths := make([]int, 0, len(sorted))
	var latSum, blkSum, hopSum float64
	for _, d := range sorted {
		if d.Src < 0 || d.Src >= procs || d.Dst < 0 || d.Dst >= procs {
			return nil, fmt.Errorf("core: delivery %d endpoints %d->%d outside %d processors",
				d.Message.ID, d.Src, d.Dst, procs)
		}
		bySource[d.Src] = append(bySource[d.Src], d.Inject)
		counts[d.Src][d.Dst]++
		lengths = append(lengths, d.Bytes)
		c.TotalBytes += int64(d.Bytes)
		latSum += float64(d.Latency)
		blkSum += float64(d.Blocked)
		hopSum += float64(d.Hops)
	}
	n := float64(len(sorted))
	c.MeanLatencyNS = latSum / n
	c.MeanBlockedNS = blkSum / n
	c.MeanHops = hopSum / n

	// Temporal: per-source inter-arrival fits plus the pooled aggregate.
	var pooled []float64
	for src := 0; src < procs; src++ {
		gaps := interarrivals(bySource[src])
		pooled = append(pooled, gaps...)
		st := SourceTemporal{Src: src, Samples: len(gaps), Summary: stats.Summarize(gaps)}
		if len(gaps) >= minSourceSamples {
			if fits, err := stats.FitInterarrival(gaps); err == nil {
				st.Fits = fits
			}
		}
		c.PerSource = append(c.PerSource, st)
	}
	c.Aggregate = SourceTemporal{Src: -1, Samples: len(pooled), Summary: stats.Summarize(pooled)}
	if len(pooled) >= minSourceSamples {
		fits, err := stats.FitInterarrival(pooled)
		if err != nil {
			return nil, fmt.Errorf("core: aggregate fit: %w", err)
		}
		c.Aggregate.Fits = fits
	}

	// Spatial and volume.
	c.Spatial = stats.AggregateSpatial(counts)
	c.Volume = stats.AnalyzeLengths(lengths)
	return c, nil
}

// interarrivals returns successive positive gaps between injection times.
// Zero gaps (same-cycle injections) are kept: they are genuine bursts, and
// the fitting layer handles point masses.
func interarrivals(times []sim.Time) []float64 {
	if len(times) < 2 {
		return nil
	}
	out := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		out = append(out, float64(times[i]-times[i-1]))
	}
	return out
}

// BestAggregate returns the aggregate winning fit, or nil.
func (c *Characterization) BestAggregate() *stats.CandidateFit {
	return c.Aggregate.Best()
}

// DominantSpatial returns the most common spatial pattern across sources
// and the number of sources exhibiting it. Ties break toward the smaller
// pattern value, so repeated analyses of the same log agree byte for byte.
func (c *Characterization) DominantSpatial() (stats.SpatialPattern, int) {
	counts := map[stats.SpatialPattern]int{}
	for _, s := range c.Spatial {
		if s.Total > 0 {
			counts[s.Pattern]++
		}
	}
	var best stats.SpatialPattern
	bestN := -1
	for p, n := range counts {
		if n > bestN || (n == bestN && p < best) {
			best, bestN = p, n
		}
	}
	if bestN < 0 {
		return stats.SpatialGeneral, 0
	}
	return best, bestN
}

// AggregateGaps recomputes the pooled per-source inter-arrival sample from
// the log: the raw data behind the aggregate temporal fit, in source-major
// order.
func (c *Characterization) AggregateGaps() []float64 {
	times := make([][]sim.Time, c.Procs)
	for _, d := range c.Log {
		times[d.Src] = append(times[d.Src], d.Inject)
	}
	var out []float64
	for _, ts := range times {
		out = append(out, interarrivals(ts)...)
	}
	return out
}
