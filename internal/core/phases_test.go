package core

import (
	"testing"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// twoPhaseLog builds a log with two dense phases separated by a huge gap,
// each with a distinct message length so the split is verifiable.
func twoPhaseLog(procs int) ([]mesh.Delivery, sim.Time) {
	var log []mesh.Delivery
	id := int64(0)
	st := sim.NewStream(4)
	add := func(t sim.Time, bytes int) {
		id++
		src := st.IntN(procs)
		dst := st.IntN(procs - 1)
		if dst >= src {
			dst++
		}
		log = append(log, mesh.Delivery{
			Message: mesh.Message{ID: id, Src: src, Dst: dst, Bytes: bytes, Inject: t},
			End:     t + 200, Latency: 200, Hops: 2,
		})
	}
	t := sim.Time(0)
	for i := 0; i < 300; i++ {
		t += sim.Time(st.Exponential(100)) + 1
		add(t, 8)
	}
	t += 10_000_000 // 10 ms of silence
	for i := 0; i < 300; i++ {
		t += sim.Time(st.Exponential(100)) + 1
		add(t, 40)
	}
	return log, t + 1000
}

func TestSplitPhasesFindsTwo(t *testing.T) {
	log, elapsed := twoPhaseLog(8)
	c, err := Analyze("twophase", StrategyDynamic, log, 8, elapsed, 0)
	if err != nil {
		t.Fatal(err)
	}
	phases, err := c.SplitPhases(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("found %d phases, want 2", len(phases))
	}
	if phases[0].C.Messages != 300 || phases[1].C.Messages != 300 {
		t.Fatalf("phase sizes: %d, %d", phases[0].C.Messages, phases[1].C.Messages)
	}
	// Lengths distinguish the phases.
	if phases[0].C.Volume.Distinct[0].Bytes != 8 || phases[1].C.Volume.Distinct[0].Bytes != 40 {
		t.Fatalf("phase lengths: %+v / %+v", phases[0].C.Volume.Distinct, phases[1].C.Volume.Distinct)
	}
	if phases[0].End >= phases[1].Start {
		t.Fatal("phases overlap")
	}
	// Each phase must carry its own temporal fit.
	for _, ph := range phases {
		if ph.C.BestAggregate() == nil {
			t.Fatalf("phase %d has no fit", ph.Index)
		}
	}
}

func TestSplitPhasesSmoothTrafficIsOnePhase(t *testing.T) {
	st := sim.NewStream(5)
	var log []mesh.Delivery
	tm := sim.Time(0)
	for i := 0; i < 600; i++ {
		tm += sim.Time(st.Exponential(500)) + 1
		log = append(log, mesh.Delivery{
			Message: mesh.Message{ID: int64(i + 1), Src: i % 4, Dst: (i + 1) % 4, Bytes: 8, Inject: tm},
			End:     tm + 100, Latency: 100, Hops: 1,
		})
	}
	c, err := Analyze("smooth", StrategyDynamic, log, 4, tm+100, 0)
	if err != nil {
		t.Fatal(err)
	}
	phases, err := c.SplitPhases(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Exponential traffic has occasional large gaps; allow a couple of
	// spurious cuts but not wholesale fragmentation.
	if len(phases) > 3 {
		t.Fatalf("smooth traffic split into %d phases", len(phases))
	}
	total := 0
	for _, ph := range phases {
		total += ph.C.Messages
	}
	if total < 550 {
		t.Fatalf("phases dropped too many messages: %d", total)
	}
}

func TestBurstsRawSegmentation(t *testing.T) {
	log, elapsed := twoPhaseLog(8)
	c, err := Analyze("twophase", StrategyDynamic, log, 8, elapsed, 0)
	if err != nil {
		t.Fatal(err)
	}
	bursts := c.Bursts(0)
	if len(bursts) != 2 {
		t.Fatalf("bursts = %d, want 2", len(bursts))
	}
	total := 0
	for _, b := range bursts {
		total += b.Messages
	}
	if total != c.Messages {
		t.Fatalf("bursts lost messages: %d of %d", total, c.Messages)
	}
	if bursts[1].Start <= bursts[0].Start {
		t.Fatal("bursts out of order")
	}
}

func TestSplitPhasesTinyLog(t *testing.T) {
	log := []mesh.Delivery{{
		Message: mesh.Message{ID: 1, Src: 0, Dst: 1, Bytes: 8, Inject: 10},
		End:     20, Latency: 10, Hops: 1,
	}}
	c, err := Analyze("tiny", StrategyDynamic, log, 2, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SplitPhases(0, 0); err == nil {
		t.Fatal("single message split accepted")
	}
}

// TestSortPhasesBreaksStartTies pins the total order behind phase
// output: phases sharing a Start cycle must come out in segment-Index
// order no matter how the input slice was permuted. The repolint
// determinism analyzer found the previous comparator ordering by Start
// alone, which let equal-Start phases permute between runs.
func TestSortPhasesBreaksStartTies(t *testing.T) {
	perms := [][]Phase{
		{{Index: 2, Start: 100}, {Index: 0, Start: 100}, {Index: 3, Start: 50}, {Index: 1, Start: 100}},
		{{Index: 3, Start: 50}, {Index: 1, Start: 100}, {Index: 2, Start: 100}, {Index: 0, Start: 100}},
		{{Index: 0, Start: 100}, {Index: 3, Start: 50}, {Index: 2, Start: 100}, {Index: 1, Start: 100}},
	}
	want := []int{3, 0, 1, 2}
	for p, phases := range perms {
		sortPhases(phases)
		for i, ph := range phases {
			if ph.Index != want[i] {
				t.Fatalf("perm %d: position %d has Index %d, want %d", p, i, ph.Index, want[i])
			}
		}
	}
}
