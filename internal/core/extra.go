package core

import (
	"fmt"

	"commchar/internal/sim"
)

// RateWindows is the number of equal time windows used for the
// message-generation-rate series.
const RateWindows = 48

// RatePoint is one window of the generation-rate series.
type RatePoint struct {
	Start    sim.Time
	Messages int
	// Rate is messages per microsecond within the window.
	Rate float64
}

// RateOverTime splits the run into equal time windows and returns the
// message generation rate in each — the temporal attribute seen as a time
// series, which exposes the application's phase structure (compute phases
// are silent, communication phases spike).
func (c *Characterization) RateOverTime(windows int) []RatePoint {
	if windows < 1 || c.Elapsed <= 0 {
		return nil
	}
	width := float64(c.Elapsed) / float64(windows)
	if width <= 0 {
		return nil
	}
	out := make([]RatePoint, windows)
	for i := range out {
		out[i].Start = sim.Time(float64(i) * width)
	}
	for _, d := range c.Log {
		w := int(float64(d.Inject) / width)
		if w >= windows {
			w = windows - 1
		}
		out[w].Messages++
	}
	usPerWindow := width / 1000
	for i := range out {
		out[i].Rate = float64(out[i].Messages) / usPerWindow
	}
	return out
}

// BurstRatio is the peak-to-mean ratio of the generation-rate series: 1 for
// perfectly smooth traffic, large for phase-structured traffic.
func (c *Characterization) BurstRatio(windows int) float64 {
	pts := c.RateOverTime(windows)
	if len(pts) == 0 {
		return 0
	}
	var sum, peak float64
	for _, p := range pts {
		sum += p.Rate
		if p.Rate > peak {
			peak = p.Rate
		}
	}
	mean := sum / float64(len(pts))
	if mean == 0 {
		return 0
	}
	return peak / mean
}

// Locality is the hop-distance view of the spatial attribute: how far
// messages travel on the fabric.
type Locality struct {
	MeanHops float64
	// HopCounts[h] is the number of messages that traversed h links
	// (index 0 = node-local traffic).
	HopCounts []int
	// NeighbourFraction is the share of messages delivered within one hop.
	NeighbourFraction float64
}

// AnalyzeLocality computes the hop-distance distribution of the run.
func (c *Characterization) AnalyzeLocality() Locality {
	loc := Locality{MeanHops: c.MeanHops}
	maxHops := 0
	for _, d := range c.Log {
		if d.Hops > maxHops {
			maxHops = d.Hops
		}
	}
	loc.HopCounts = make([]int, maxHops+1)
	near := 0
	for _, d := range c.Log {
		loc.HopCounts[d.Hops]++
		if d.Hops <= 1 {
			near++
		}
	}
	if len(c.Log) > 0 {
		loc.NeighbourFraction = float64(near) / float64(len(c.Log))
	}
	return loc
}

// ReceiverProfile is the destination-side aggregate: how many messages each
// processor receives, and which processor is the machine-wide favorite
// sink (lock homes and collective roots show up here).
type ReceiverProfile struct {
	Counts   []int
	Favorite int
	// FavoriteShare is the favorite's fraction of all messages.
	FavoriteShare float64
}

// AnalyzeReceivers computes the destination-side profile.
func (c *Characterization) AnalyzeReceivers() ReceiverProfile {
	p := ReceiverProfile{Counts: make([]int, c.Procs), Favorite: -1}
	for _, d := range c.Log {
		p.Counts[d.Dst]++
	}
	total := 0
	for dst, n := range p.Counts {
		total += n
		if p.Favorite < 0 || n > p.Counts[p.Favorite] {
			p.Favorite = dst
		}
	}
	if total > 0 && p.Favorite >= 0 {
		p.FavoriteShare = float64(p.Counts[p.Favorite]) / float64(total)
	}
	return p
}

// Summary returns a one-line digest of the characterization.
func (c *Characterization) Summary() string {
	best := c.BestAggregate()
	fit := "no fit"
	if best != nil {
		fit = fmt.Sprintf("%s R²=%.4f", best.Dist, best.R2)
	}
	pattern, n := c.DominantSpatial()
	return fmt.Sprintf("%s: %d msgs over %.3f ms; temporal %s; spatial %s (%d/%d sources); mean %.1f B",
		c.Name, c.Messages, float64(c.Elapsed)/1e6, fit, pattern, n, c.Procs, c.Volume.Mean)
}
