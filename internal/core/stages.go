package core

import (
	"context"
	"fmt"

	"commchar/internal/coll"
	"commchar/internal/mesh"
	"commchar/internal/mp"
	"commchar/internal/sim"
	"commchar/internal/spasm"
	"commchar/internal/trace"
)

// RawRun is the product of the acquisition stages: the network log and
// run-level metrics of one simulated execution, before statistical
// analysis. It is the value that flows between the pipeline's acquire/log
// stages and the analyze stage.
type RawRun struct {
	Procs    int
	Elapsed  sim.Time
	MeanUtil float64
	Events   int64 // simulation events fired during the run
	Log      []mesh.Delivery
	// Trace is the application-level trace, when the acquisition records
	// one (static strategy); nil otherwise.
	Trace *trace.Trace
	// Cost is the software-overhead model the replay charged (static
	// strategy; nil means zero cost). The collective analysis replays
	// the timeline under the same model to recover idle time exactly.
	Cost trace.CostModel
	// Failures are per-message delivery failures (fault-injected runs).
	Failures []error
}

// Characterize runs the analyze stage on the raw run: the paper's three
// point-to-point attributes, plus — when the trace carries mp's
// collective tag blocks — the collective/asynchronicity characterization.
func (r *RawRun) Characterize(name string, strategy Strategy) (*Characterization, error) {
	c, err := Analyze(name, strategy, r.Log, r.Procs, r.Elapsed, r.MeanUtil)
	if err != nil {
		return nil, err
	}
	c.Trace = r.Trace
	cc, err := coll.Analyze(r.Trace, r.Log, r.Cost, r.Elapsed)
	if err != nil {
		return nil, fmt.Errorf("core: collective analysis of %s: %w", name, err)
	}
	c.Coll = cc
	return c, nil
}

// AcquireSharedMemoryOn is the dynamic-strategy acquisition stage on a
// caller-built machine: execute the kernel and collect the network log.
func AcquireSharedMemoryOn(m *spasm.Machine, run func(m *spasm.Machine) error) (*RawRun, error) {
	//lint:allow ctxflow context-free compatibility wrapper over AcquireSharedMemoryOnContext
	return AcquireSharedMemoryOnContext(context.Background(), m, run)
}

// AcquireSharedMemoryOnContext is AcquireSharedMemoryOn under cooperative
// cancellation: the machine's simulator polls ctx inside its cycle loop,
// so a hung or runaway kernel is killable mid-execution.
func AcquireSharedMemoryOnContext(ctx context.Context, m *spasm.Machine, run func(m *spasm.Machine) error) (*RawRun, error) {
	m.Sim.SetContext(ctx)
	if err := run(m); err != nil {
		return nil, err
	}
	if err := m.Sim.Interrupted(); err != nil {
		return nil, err
	}
	return &RawRun{
		Procs:    m.Config().Processors,
		Elapsed:  m.Sim.Now(),
		MeanUtil: m.Net.MeanUtilization(),
		Events:   m.Sim.EventsFired(),
		Log:      m.Net.Log(),
		Failures: m.Net.Failures(),
	}, nil
}

// AcquireMessagePassing is the static-strategy acquisition stage: execute
// the message-passing program natively on the SP2-like machine and return
// its application-level trace (replayed through the mesh by ReplayTrace).
func AcquireMessagePassing(procs int, run func(w *mp.World) error) (*trace.Trace, error) {
	return AcquireMessagePassingWith(procs, mp.AlgLinear, run)
}

// AcquireMessagePassingWith is AcquireMessagePassing with the collective
// algorithm family of the native machine selected.
func AcquireMessagePassingWith(procs int, alg mp.Algorithm, run func(w *mp.World) error) (*trace.Trace, error) {
	cfg := mp.DefaultConfig(procs)
	cfg.Collectives = alg
	w := mp.NewWorld(cfg)
	if err := run(w); err != nil {
		return nil, err
	}
	tr := w.Trace()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReplayTrace is the log stage of the static strategy: replay an
// application trace through a mesh, honouring send/receive dependencies,
// under an optional fault injector and watchdog, and collect the network
// log. The trace's rank count is used as the processor count of the run.
func ReplayTrace(tr *trace.Trace, cfg mesh.Config, cost trace.CostModel, inj mesh.Injector, wd sim.Watchdog) (*RawRun, error) {
	//lint:allow ctxflow context-free compatibility wrapper over ReplayTraceContext
	return ReplayTraceContext(context.Background(), tr, cfg, cost, inj, wd)
}

// ReplayTraceContext is ReplayTrace under cooperative cancellation: the
// simulator's cycle loop polls ctx, so a hung or fault-livelocked replay
// is killable; the returned *sim.DeadlockError then carries the usual
// blocked-process diagnostics with the context's error as its cause.
func ReplayTraceContext(ctx context.Context, tr *trace.Trace, cfg mesh.Config, cost trace.CostModel, inj mesh.Injector, wd sim.Watchdog) (*RawRun, error) {
	return ReplayTraceObserved(ctx, tr, cfg, cost, inj, wd, 0, nil)
}

// ReplayTraceObserved is ReplayTraceContext with a simulator progress hook
// installed (see sim.SetProgress): hook receives the simulated clock and
// cumulative event count every `every` fired events, the seam live
// monitoring hangs off. A nil hook (or every <= 0) observes nothing.
func ReplayTraceObserved(ctx context.Context, tr *trace.Trace, cfg mesh.Config, cost trace.CostModel, inj mesh.Injector, wd sim.Watchdog, every int64, hook sim.ProgressFunc) (*RawRun, error) {
	s := sim.New()
	s.SetContext(ctx)
	s.SetProgress(every, hook)
	net := mesh.New(s, cfg)
	if inj != nil {
		net.SetFaults(inj)
	}
	if err := trace.Replay(s, net, tr, cost); err != nil {
		return nil, err
	}
	s.SetWatchdog(wd)
	if err := s.RunCheckedContext(ctx); err != nil {
		return nil, err
	}
	return &RawRun{
		Procs:    tr.Ranks,
		Elapsed:  s.Now(),
		MeanUtil: net.MeanUtilization(),
		Events:   s.EventsFired(),
		Log:      net.Log(),
		Trace:    tr,
		Cost:     cost,
		Failures: net.Failures(),
	}, nil
}

// CharacterizeSharedMemory runs a shared-memory application under the
// dynamic strategy end to end: build the machine, execute the kernel
// (acquire), characterize the network log (analyze).
func CharacterizeSharedMemory(name string, procs int, run func(m *spasm.Machine) error) (*Characterization, error) {
	raw, err := AcquireSharedMemoryOn(spasm.NewDefault(procs), run)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	return raw.Characterize(name, StrategyDynamic)
}

// CharacterizeMessagePassing runs a message-passing application under the
// static strategy end to end: execute natively on the SP2-like machine to
// obtain the application-level trace (acquire), replay the trace through
// the mesh with the given software-overhead model (log), and characterize
// the resulting network log (analyze).
func CharacterizeMessagePassing(name string, procs int, cost trace.CostModel, run func(w *mp.World) error) (*Characterization, error) {
	tr, err := AcquireMessagePassing(procs, run)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	raw, err := ReplayTrace(tr, MeshFor(procs), cost, nil, sim.Watchdog{})
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	return raw.Characterize(name, StrategyStatic)
}

// MeshFor returns the reproduction's standard mesh geometry for n
// processors: the smallest default mesh at most four columns wide.
func MeshFor(n int) mesh.Config {
	w, h := n, 1
	if n > 4 {
		w = 4
		h = (n + 3) / 4
	}
	return mesh.DefaultConfig(w, h)
}
