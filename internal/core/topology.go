package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"commchar/internal/mesh"
)

// ParseDims parses a comma-separated dimension list such as "4,4,4", the
// shared syntax of every tool's -dims flag. An empty string means "derive
// the shape from the processor count" and parses to nil.
func ParseDims(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("core: bad dimension %q (want positive integers, e.g. 4,4,4)", p)
		}
		dims = append(dims, n)
	}
	return dims, nil
}

// TopologyNames lists the fabric selectors accepted by TopologyFor, in
// display order. The empty selector means "mesh".
func TopologyNames() []string {
	names := make([]string, 0, len(topologyBuilders))
	for name := range topologyBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// topologyBuilders maps a selector to the function that sizes that fabric
// for n processors, given optional explicit dimensions (nil = derive the
// smallest standard instance that fits n).
var topologyBuilders = map[string]func(dims []int, procs int) (mesh.Config, error){
	"mesh":      meshTopo,
	"torus":     torusTopo(2),
	"torus3d":   torusTopo(3),
	"torus4d":   torusTopo(4),
	"hypercube": hypercubeTopo,
	"fattree":   fattreeTopo,
	"dragonfly": dragonflyTopo,
}

// TopologyFor returns the reproduction's standard machine configuration
// for the named fabric and processor count. The empty name selects the
// default 2-D mesh and is byte-for-byte the historical MeshFor geometry.
// dims, when non-nil, pins the fabric's shape instead of deriving it:
// per-dimension sizes for mesh/torus*, [d] for a hypercube, [arity,
// levels] for a fat tree, [routers, globals] for a dragonfly. The
// returned config always has at least procs endpoints; a shape that
// cannot hold procs is an error.
func TopologyFor(name string, dims []int, procs int) (mesh.Config, error) {
	if name == "" {
		name = "mesh"
	}
	build, ok := topologyBuilders[name]
	if !ok {
		return mesh.Config{}, fmt.Errorf("core: unknown topology %q (have %s)",
			name, strings.Join(TopologyNames(), ", "))
	}
	cfg, err := build(dims, procs)
	if err != nil {
		return mesh.Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return mesh.Config{}, err
	}
	if cfg.Nodes() < procs {
		return mesh.Config{}, fmt.Errorf("core: %s has %d endpoints, too small for %d processors",
			cfg.Fabric().Name(), cfg.Nodes(), procs)
	}
	return cfg, nil
}

func meshTopo(dims []int, procs int) (mesh.Config, error) {
	if dims == nil {
		return MeshFor(procs), nil
	}
	if len(dims) == 2 {
		return mesh.DefaultConfig(dims[0], dims[1]), nil
	}
	return mesh.KAryConfig(mesh.MeshTopology, dims...), nil
}

// torusTopo sizes an n-dimensional torus: explicit dims (any rank), or
// the smallest k^n cube with k >= 2 that holds procs.
func torusTopo(n int) func(dims []int, procs int) (mesh.Config, error) {
	return func(dims []int, procs int) (mesh.Config, error) {
		if dims == nil {
			k := 2
			for pow(k, n) < procs {
				k++
			}
			dims = make([]int, n)
			for i := range dims {
				dims[i] = k
			}
		}
		return mesh.KAryConfig(mesh.TorusTopology, dims...), nil
	}
}

func hypercubeTopo(dims []int, procs int) (mesh.Config, error) {
	d := 1
	if dims != nil {
		if len(dims) != 1 {
			return mesh.Config{}, fmt.Errorf("core: hypercube takes one dimension value, got %d", len(dims))
		}
		d = dims[0]
	} else {
		for 1<<d < procs {
			d++
		}
	}
	return mesh.HypercubeConfig(d), nil
}

// fattreeTopo sizes a k-ary n-tree: explicit [arity, levels], or a 4-ary
// tree just deep enough for procs.
func fattreeTopo(dims []int, procs int) (mesh.Config, error) {
	if dims != nil {
		if len(dims) != 2 {
			return mesh.Config{}, fmt.Errorf("core: fattree takes [arity, levels], got %d values", len(dims))
		}
		return mesh.FatTreeConfig(dims[0], dims[1]), nil
	}
	const arity = 4
	levels := 1
	for pow(arity, levels) < procs {
		levels++
	}
	return mesh.FatTreeConfig(arity, levels), nil
}

// dragonflyTopo sizes a balanced dragonfly: explicit [routers, globals],
// or h=1 with the smallest group size a such that a*(a+1) >= procs.
func dragonflyTopo(dims []int, procs int) (mesh.Config, error) {
	if dims != nil {
		if len(dims) != 2 {
			return mesh.Config{}, fmt.Errorf("core: dragonfly takes [routers, globals], got %d values", len(dims))
		}
		return mesh.DragonflyConfig(dims[0], dims[1]), nil
	}
	a := 2
	for a*(a+1) < procs {
		a++
	}
	return mesh.DragonflyConfig(a, 1), nil
}

func pow(base, exp int) int {
	n := 1
	for i := 0; i < exp; i++ {
		n *= base
	}
	return n
}
