package core

import (
	"fmt"
	"sort"

	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// Phase is one communication phase of an application: a maximal stretch of
// the run without a long global silence. Phase-structured codes (the NAS
// kernels especially) are better described per phase than whole-run, a
// point the paper makes for the message-passing applications.
type Phase struct {
	Index      int
	Start, End sim.Time
	// Characterization of the phase's traffic alone.
	C *Characterization
}

// DefaultPhaseGapFactor declares a new phase when the global inter-message
// gap exceeds this multiple of the median gap.
const DefaultPhaseGapFactor = 20.0

// SplitPhases segments the run at global injection gaps larger than
// gapFactor times the median gap, characterizes each segment with at least
// minMessages messages independently, and returns the phases in time
// order. Segments too small to characterize are dropped (reported in the
// phase indexes skipping).
func (c *Characterization) SplitPhases(gapFactor float64, minMessages int) ([]Phase, error) {
	if len(c.Log) == 0 {
		return nil, fmt.Errorf("core: no traffic to split")
	}
	if gapFactor <= 1 {
		gapFactor = DefaultPhaseGapFactor
	}
	if minMessages < minSourceSamples+1 {
		minMessages = minSourceSamples + 1
	}

	// Global injection-time sequence (log is already injection-sorted).
	times := make([]sim.Time, len(c.Log))
	for i, d := range c.Log {
		times[i] = d.Inject
	}
	gaps := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, float64(times[i]-times[i-1]))
	}
	if len(gaps) == 0 {
		return nil, fmt.Errorf("core: single message cannot be split")
	}
	base := median(gaps)
	if base <= 0 {
		// Heavily bursty traffic (median gap zero): scale off the mean
		// gap instead, or fragment at every burst boundary.
		var sum float64
		for _, g := range gaps {
			sum += g
		}
		base = sum / float64(len(gaps))
	}
	threshold := base * gapFactor
	if threshold <= 0 {
		threshold = gapFactor
	}

	// Cut points.
	var segments [][]mesh.Delivery
	start := 0
	for i := 1; i < len(c.Log); i++ {
		if float64(c.Log[i].Inject-c.Log[i-1].Inject) > threshold {
			segments = append(segments, c.Log[start:i])
			start = i
		}
	}
	segments = append(segments, c.Log[start:])

	var phases []Phase
	for idx, seg := range segments {
		if len(seg) < minMessages {
			continue
		}
		first, last := seg[0].Inject, seg[len(seg)-1].End
		pc, err := Analyze(fmt.Sprintf("%s/phase%d", c.Name, idx), c.Strategy,
			seg, c.Procs, last, 0)
		if err != nil {
			continue
		}
		phases = append(phases, Phase{Index: idx, Start: first, End: last, C: pc})
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("core: no phase had %d+ messages", minMessages)
	}
	sortPhases(phases)
	return phases, nil
}

// sortPhases orders phases under a total order — Start, then the unique
// segment Index — so two phases that begin on the same simulated cycle
// cannot permute when the slice arrives in a different order (the
// repolint determinism analyzer flags the tie-less form this replaces).
func sortPhases(phases []Phase) {
	sort.SliceStable(phases, func(i, j int) bool {
		if phases[i].Start != phases[j].Start {
			return phases[i].Start < phases[j].Start
		}
		return phases[i].Index < phases[j].Index
	})
}

// Burst is one raw traffic segment (no minimum-size filter): the
// segmentation underlying SplitPhases, exposed for burst-cadence analyses.
type Burst struct {
	Start    sim.Time
	Messages int
}

// Bursts segments the log at global injection gaps larger than gapFactor
// times the median (or mean, for zero-median) gap and returns every
// segment, however small.
func (c *Characterization) Bursts(gapFactor float64) []Burst {
	if len(c.Log) == 0 {
		return nil
	}
	if gapFactor <= 1 {
		gapFactor = DefaultPhaseGapFactor
	}
	gaps := make([]float64, 0, len(c.Log)-1)
	for i := 1; i < len(c.Log); i++ {
		gaps = append(gaps, float64(c.Log[i].Inject-c.Log[i-1].Inject))
	}
	if len(gaps) == 0 {
		return []Burst{{Start: c.Log[0].Inject, Messages: 1}}
	}
	base := median(gaps)
	if base <= 0 {
		var sum float64
		for _, g := range gaps {
			sum += g
		}
		base = sum / float64(len(gaps))
	}
	threshold := base * gapFactor
	if threshold <= 0 {
		threshold = gapFactor
	}
	var out []Burst
	cur := Burst{Start: c.Log[0].Inject, Messages: 1}
	for i := 1; i < len(c.Log); i++ {
		if float64(c.Log[i].Inject-c.Log[i-1].Inject) > threshold {
			out = append(out, cur)
			cur = Burst{Start: c.Log[i].Inject}
		}
		cur.Messages++
	}
	return append(out, cur)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
