package core

import (
	"context"
	"errors"
	"testing"

	"commchar/internal/mp"
	"commchar/internal/sim"
	"commchar/internal/spasm"
	"commchar/internal/trace"
)

// ringTrace builds a small balanced ring trace for replay tests.
func ringTrace(t *testing.T, ranks, rounds int) *trace.Trace {
	t.Helper()
	tr := trace.New(ranks)
	for rank := 0; rank < ranks; rank++ {
		for i := 0; i < rounds; i++ {
			tr.Add(rank, trace.Event{Op: trace.OpSend, Peer: (rank + 1) % ranks, Bytes: 64, Tag: i,
				Compute: sim.Duration(500 * (rank + 1))})
			tr.Add(rank, trace.Event{Op: trace.OpRecv, Peer: (rank + ranks - 1) % ranks, Tag: i})
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReplayTraceContextCancellation(t *testing.T) {
	tr := ringTrace(t, 4, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ReplayTraceContext(ctx, tr, MeshFor(4), nil, nil, sim.Watchdog{})
	if err == nil {
		t.Fatal("cancelled replay succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	// The diagnostics survive alongside the cancellation.
	var de *sim.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("cancelled replay lost the simulator diagnostics: %v", err)
	}

	// The same replay with a live context completes normally.
	raw, err := ReplayTraceContext(context.Background(), tr, MeshFor(4), nil, nil, sim.Watchdog{})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Log) == 0 {
		t.Fatal("clean replay produced no deliveries")
	}
}

func TestAcquireSharedMemoryOnContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := spasm.NewDefault(4)
	_, err := AcquireSharedMemoryOnContext(ctx, m, func(m *spasm.Machine) error {
		_, err := m.Run(func(e *spasm.Env) {
			// A kernel with enough work that cancellation lands mid-run.
			for i := 0; i < 1000; i++ {
				e.Read(uint64(i * 64))
			}
			e.Barrier()
		})
		return err
	})
	if err == nil {
		t.Fatal("cancelled acquisition succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
}

func TestAcquireMessagePassingUnaffectedByReplayCancellation(t *testing.T) {
	// The native acquisition stage has no simulator; only the replay is
	// cancellable. This pins that a recorded trace replays identically
	// whether or not an earlier replay attempt was cancelled.
	tr, err := AcquireMessagePassing(4, func(w *mp.World) error {
		_, err := w.Run(func(r *mp.Rank) {
			peer := (r.ID() + 1) % 4
			prev := (r.ID() + 3) % 4
			for i := 0; i < 5; i++ {
				r.Send(peer, i, 64, nil)
				r.Recv(prev, i)
			}
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Messages() == 0 {
		t.Fatal("no messages recorded")
	}
}
