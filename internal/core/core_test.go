package core

import (
	"testing"

	"commchar/internal/mesh"
	"commchar/internal/mp"
	"commchar/internal/sim"
	"commchar/internal/spasm"
	"commchar/internal/stats"
)

// syntheticLog builds a log with known temporal/spatial/volume structure:
// exponential inter-arrivals from each source, uniform destinations,
// bimodal lengths.
func syntheticLog(procs, perSource int, meanGapNS float64, seed uint64) []mesh.Delivery {
	st := sim.NewStream(seed)
	var log []mesh.Delivery
	id := int64(0)
	for src := 0; src < procs; src++ {
		t := sim.Time(0)
		for i := 0; i < perSource; i++ {
			t += sim.Time(st.Exponential(meanGapNS)) + 1
			dst := st.IntN(procs - 1)
			if dst >= src {
				dst++
			}
			bytes := 8
			if st.Float64() < 0.3 {
				bytes = 40
			}
			id++
			log = append(log, mesh.Delivery{
				Message: mesh.Message{ID: id, Src: src, Dst: dst, Bytes: bytes, Inject: t},
				End:     t + 500, Latency: 500, Blocked: 0, Hops: 3,
			})
		}
	}
	return log
}

func TestAnalyzeRecoversExponentialTemporal(t *testing.T) {
	log := syntheticLog(8, 4000, 10000, 1)
	c, err := Analyze("synthetic", StrategyDynamic, log, 8, 1<<40, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Messages != len(log) {
		t.Fatalf("messages = %d", c.Messages)
	}
	best := c.BestAggregate()
	if best == nil {
		t.Fatal("no aggregate fit")
	}
	if best.Dist.Name() != "exponential" && best.R2 < 0.995 {
		t.Fatalf("aggregate best = %s (R²=%v)", best.Dist, best.R2)
	}
	// The exponential family itself must fit nearly perfectly.
	for _, f := range c.Aggregate.Fits {
		if f.Dist.Name() == "exponential" {
			if f.R2 < 0.99 {
				t.Fatalf("exponential R² = %v", f.R2)
			}
			// Mean of the fit should match the generator.
			if m := f.Dist.Mean(); m < 9000 || m > 11000 {
				t.Fatalf("fitted mean %v, want ~10000", m)
			}
		}
	}
}

func TestAnalyzeSpatialUniform(t *testing.T) {
	log := syntheticLog(8, 4000, 10000, 2)
	c, err := Analyze("synthetic", StrategyDynamic, log, 8, 1<<40, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pattern, n := c.DominantSpatial()
	if pattern != stats.SpatialUniform {
		t.Fatalf("dominant pattern = %v (%d sources)", pattern, n)
	}
}

func TestAnalyzeVolumeBimodal(t *testing.T) {
	log := syntheticLog(4, 2000, 5000, 3)
	c, err := Analyze("synthetic", StrategyDynamic, log, 4, 1<<40, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Volume.Bimodal {
		t.Fatalf("volume profile = %+v", c.Volume)
	}
	if c.Volume.Distinct[0].Bytes != 8 {
		t.Fatalf("dominant length = %d, want 8", c.Volume.Distinct[0].Bytes)
	}
}

func TestAnalyzePerSourceCoverage(t *testing.T) {
	log := syntheticLog(8, 1000, 10000, 4)
	c, err := Analyze("synthetic", StrategyDynamic, log, 8, 1<<40, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PerSource) != 8 {
		t.Fatalf("per-source entries = %d", len(c.PerSource))
	}
	for _, s := range c.PerSource {
		if s.Best() == nil {
			t.Fatalf("source %d has no fit (%d samples)", s.Src, s.Samples)
		}
	}
}

func TestAnalyzeRejectsEmptyAndBadLogs(t *testing.T) {
	if _, err := Analyze("x", StrategyDynamic, nil, 4, 0, 0); err == nil {
		t.Fatal("empty log accepted")
	}
	bad := []mesh.Delivery{{Message: mesh.Message{ID: 1, Src: 9, Dst: 0, Bytes: 8}}}
	if _, err := Analyze("x", StrategyDynamic, bad, 4, 0, 0); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestCharacterizeSharedMemoryEndToEnd(t *testing.T) {
	c, err := CharacterizeSharedMemory("toy", 4, func(m *spasm.Machine) error {
		arr := m.NewArray(512, 8)
		_, err := m.Run(func(e *spasm.Env) {
			st := sim.NewStream(uint64(e.ID()))
			for i := 0; i < 200; i++ {
				e.ReadArray(arr, st.IntN(arr.Len()))
				e.Compute(sim.Duration(100 + st.IntN(500)))
			}
			e.Barrier()
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Strategy != StrategyDynamic || c.Messages == 0 {
		t.Fatalf("characterization: %+v", c)
	}
	if c.BestAggregate() == nil {
		t.Fatal("no aggregate fit from real run")
	}
	// Shared-memory traffic is control/data bimodal.
	if len(c.Volume.Distinct) < 2 {
		t.Fatalf("volume spectrum: %+v", c.Volume.Distinct)
	}
}

func TestCharacterizeMessagePassingEndToEnd(t *testing.T) {
	c, err := CharacterizeMessagePassing("toy-mp", 4, nil, func(w *mp.World) error {
		_, err := w.Run(func(r *mp.Rank) {
			for i := 0; i < 30; i++ {
				r.Compute(sim.Duration(1000 * (r.ID() + 1)))
				r.Bcast(0, 256, nil)
				chunks := make([]any, r.Size())
				r.Alltoall(128, chunks)
			}
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Strategy != StrategyStatic {
		t.Fatal("wrong strategy tag")
	}
	if c.Messages == 0 || c.BestAggregate() == nil {
		t.Fatal("static characterization incomplete")
	}
}

func TestInterarrivalsHelper(t *testing.T) {
	got := interarrivals([]sim.Time{10, 30, 35, 100})
	want := []float64{20, 5, 65}
	if len(got) != len(want) {
		t.Fatalf("gaps = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", got, want)
		}
	}
	if interarrivals([]sim.Time{5}) != nil {
		t.Fatal("single event should yield no gaps")
	}
}

func TestMeshFor(t *testing.T) {
	if cfg := MeshFor(4); cfg.Width != 4 || cfg.Height != 1 {
		t.Fatalf("MeshFor(4) = %dx%d", cfg.Width, cfg.Height)
	}
	if cfg := MeshFor(16); cfg.Width != 4 || cfg.Height != 4 {
		t.Fatalf("MeshFor(16) = %dx%d", cfg.Width, cfg.Height)
	}
	if cfg := MeshFor(8); cfg.Nodes() < 8 {
		t.Fatal("MeshFor(8) too small")
	}
}
