package coll

import (
	"math"
	"sort"

	"commchar/internal/sim"
	"commchar/internal/stats"
)

// fitModels groups instances by (op, algorithm) and fits the pLogP-style
// span model per group: span ≈ L + O·S + G·S·m. Columns that are
// unidentifiable in the group's design — S constant (one machine size),
// m constant (one payload), or collinear — are dropped and report 0, so
// the fit is always the least-squares solution of a full-rank system.
// Goodness of fit uses the same machinery the SP2 overhead model is
// validated with: stats.RSquared plus per-instance relative error.
func fitModels(insts []Instance) []OpModel {
	groups := map[string][]int{}
	for i, inst := range insts {
		groups[inst.Op+"/"+inst.Algorithm] = append(groups[inst.Op+"/"+inst.Algorithm], i)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := make([]OpModel, 0, len(keys))
	for _, k := range keys {
		idx := groups[k]
		m := OpModel{Op: insts[idx[0]].Op, Algorithm: insts[idx[0]].Algorithm}
		y := make([]float64, len(idx))
		s := make([]float64, len(idx))
		sm := make([]float64, len(idx))
		mb := make([]float64, len(idx))
		for j, i := range idx {
			inst := insts[i]
			m.Count++
			m.Messages += inst.Messages
			m.Bytes += inst.Bytes
			y[j] = float64(inst.Span)
			s[j] = float64(inst.Depth)
			mb[j] = float64(inst.MsgBytes)
			sm[j] = s[j] * mb[j]
			m.MeanSpanNS += y[j]
		}
		m.MeanSpanNS /= float64(len(idx))

		useS := distinct(s) > 1
		useSM := distinct(sm) > 1 && !(useS && distinct(mb) == 1)
		cols := [][]float64{ones(len(y))}
		if useS {
			cols = append(cols, s)
		}
		if useSM {
			cols = append(cols, sm)
		}
		coef, ok := leastSquares(cols, y)
		if !ok {
			coef = []float64{mean(y)}
			cols = cols[:1]
			useS, useSM = false, false
		}
		m.L = coef[0]
		next := 1
		if useS {
			m.O = coef[next]
			next++
		}
		if useSM {
			m.G = coef[next]
		}

		yhat := make([]float64, len(y))
		for j := range y {
			yhat[j] = m.L + m.O*s[j] + m.G*sm[j]
		}
		m.R2 = finiteOr(stats.RSquared(y, yhat), 0)
		var maxRel, sumRel float64
		rel := 0
		for j := range y {
			if y[j] <= 0 {
				continue
			}
			e := math.Abs(y[j]-yhat[j]) / y[j]
			sumRel += e
			rel++
			if e > maxRel {
				maxRel = e
			}
		}
		if rel > 0 {
			m.MeanRelErr = sumRel / float64(rel)
		}
		m.MaxRelErr = maxRel
		out = append(out, m)
	}
	return out
}

// waveFit regresses a collective's per-rank entry times against rank
// index: the slope is the idle-wave propagation rate across the machine
// (ns per rank), the R² how wave-like the entry front is. Entries of -1
// (non-participants) are skipped; fewer than 3 points fit nothing.
func waveFit(entry []sim.Time) (slope, r2 float64) {
	var xs, ys []float64
	for r, en := range entry {
		if en < 0 {
			continue
		}
		xs = append(xs, float64(r))
		ys = append(ys, float64(en))
	}
	if len(xs) < 3 {
		return 0, 0
	}
	coef, ok := leastSquares([][]float64{ones(len(xs)), xs}, ys)
	if !ok {
		return 0, 0
	}
	yhat := make([]float64, len(xs))
	for i := range xs {
		yhat[i] = coef[0] + coef[1]*xs[i]
	}
	return coef[1], finiteOr(stats.RSquared(ys, yhat), 0)
}

// idleReport assembles the asynchronicity summary from the reconstructed
// rank clocks and the per-instance desync figures.
func idleReport(ranks []rankClock, insts []Instance, elapsed sim.Time) IdleReport {
	rep := IdleReport{PerRank: make([]RankActivity, len(ranks))}
	denom := float64(elapsed)
	var sumFrac float64
	for r, clk := range ranks {
		ra := RankActivity{
			Rank:       r,
			BusyNS:     clk.busy,
			OverheadNS: clk.overhead,
			IdleNS:     clk.idle,
			FinishNS:   int64(clk.finish),
			Waits:      clk.waits,
		}
		if denom > 0 {
			ra.IdleFraction = float64(clk.idle) / denom
		}
		rep.PerRank[r] = ra
		sumFrac += ra.IdleFraction
		if ra.IdleFraction > rep.MaxIdleFraction {
			rep.MaxIdleFraction = ra.IdleFraction
		}
	}
	if len(ranks) > 0 {
		rep.MeanIdleFraction = sumFrac / float64(len(ranks))
	}
	var sumDesync, sumWave float64
	waves := 0
	for _, inst := range insts {
		sumDesync += inst.DesyncIndex
		if inst.WaveR2 > 0 || inst.WaveNSPerRank != 0 {
			sumWave += math.Abs(inst.WaveNSPerRank)
			waves++
		}
	}
	if len(insts) > 0 {
		rep.MeanDesyncIndex = sumDesync / float64(len(insts))
	}
	if waves > 0 {
		rep.MeanAbsWaveNSPerRank = sumWave / float64(waves)
	}
	return rep
}

// leastSquares solves min ||X·b - y|| for the given design columns via
// the normal equations with partial-pivot Gaussian elimination. ok is
// false when the system is singular (collinear columns).
func leastSquares(cols [][]float64, y []float64) ([]float64, bool) {
	k := len(cols)
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := 0; i < k; i++ {
		a[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			a[i][j] = dot(cols[i], cols[j])
		}
		b[i] = dot(cols[i], y)
	}
	for col := 0; col < k; col++ {
		pivot := col
		for row := col + 1; row < k; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(a[pivot][col]) < 1e-9 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for row := 0; row < k; row++ {
			if row == col {
				continue
			}
			f := a[row][col] / a[col][col]
			for j := col; j < k; j++ {
				a[row][j] -= f * a[col][j]
			}
			b[row] -= f * b[col]
		}
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = b[i] / a[i][i]
	}
	return out, true
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func ones(n int) []float64 {
	o := make([]float64, n)
	for i := range o {
		o[i] = 1
	}
	return o
}

func mean(y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var s float64
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}

// distinct counts the distinct values of xs.
func distinct(xs []float64) int {
	seen := map[float64]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	return len(seen)
}

// finiteOr replaces a non-finite value (an R² of -Inf on a zero-variance
// group) with the fallback so the characterization stays JSON-clean.
func finiteOr(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fallback
	}
	return v
}
