package coll

import (
	"fmt"
	"sort"

	"commchar/internal/mesh"
	"commchar/internal/mp"
	"commchar/internal/sim"
	"commchar/internal/trace"
)

// hasCollectiveTags reports whether any traced event carries a tag from
// the reserved collective encoding.
func hasCollectiveTags(tr *trace.Trace) bool {
	for _, seq := range tr.Events {
		for _, e := range seq {
			if _, ok := mp.DecodeTag(e.Tag); ok {
				return true
			}
		}
	}
	return false
}

// rankClock is one rank's reconstructed time budget.
type rankClock struct {
	busy     int64
	overhead int64
	idle     int64
	waits    int
	finish   sim.Time
}

// instAcc accumulates one collective instance (one tag block) across
// ranks during the per-rank walks. Per-rank state lives in fixed-size
// slices indexed by rank, so assembly never depends on map order.
type instAcc struct {
	block int
	op    mp.CollectiveOp
	alg   mp.Algorithm
	set   bool

	entry []sim.Time // first entry per rank; -1 = did not participate
	exit  []sim.Time // last exit per rank
	sends []int
	recvs []int

	msgs        int
	bytes       int64
	maxMsgBytes int
}

// reconstruction is the full outcome of the timeline walk.
type reconstruction struct {
	ranks     []rankClock
	blocks    map[int]*instAcc
	collMsgs  int
	collBytes int64
}

// arrival is one delivered message's receive-side view.
type arrival struct {
	end   sim.Time
	bytes int
}

// chanKey matches the replay engine's FIFO channel: (src, dst, tag).
type chanKey struct{ src, dst, tag int }

// reconstruct replays the trace against the delivery log in closed form:
// it recovers per-message tags (rank deliveries in ID order are trace
// sends in program order), rebuilds every rank's timeline under the same
// cost model the replay charged, and accumulates collective instances.
// Any disagreement with the log — a count mismatch, a wrong destination,
// an injection time off by a nanosecond — is an error, so the returned
// figures are exact by construction.
func reconstruct(tr *trace.Trace, log []mesh.Delivery, cost trace.CostModel) (*reconstruction, error) {
	if cost == nil {
		cost = trace.ZeroCost{}
	}
	n := tr.Ranks

	// Per-source delivery indices in message-ID order = send program order.
	bySrc := make([][]int, n)
	for i, d := range log {
		if d.Src < 0 || d.Src >= n {
			return nil, fmt.Errorf("coll: delivery %d from rank %d outside %d-rank trace", d.ID, d.Src, n)
		}
		bySrc[d.Src] = append(bySrc[d.Src], i)
	}
	for r := 0; r < n; r++ {
		idx := bySrc[r]
		sort.Slice(idx, func(a, b int) bool {
			if log[idx[a]].ID != log[idx[b]].ID {
				return log[idx[a]].ID < log[idx[b]].ID
			}
			return log[idx[a]].Inject < log[idx[b]].Inject
		})
		sends := 0
		for _, e := range tr.Events[r] {
			if e.Op == trace.OpSend {
				sends++
			}
		}
		if sends != len(idx) {
			return nil, fmt.Errorf("coll: rank %d traced %d sends but the log holds %d deliveries from it", r, sends, len(idx))
		}
	}

	// Receive-side arrival queues in log (completion) order, mirroring
	// the replay inbox append order. Failed deliveries never reached an
	// inbox, so they are excluded here (their send cost still counts).
	queues := map[chanKey][]arrival{}
	heads := map[chanKey]int{}
	tagOf := make([]int, len(log))
	for r := 0; r < n; r++ {
		pos := 0
		for _, e := range tr.Events[r] {
			if e.Op != trace.OpSend {
				continue
			}
			li := bySrc[r][pos]
			pos++
			d := log[li]
			if d.Dst != e.Peer || d.Bytes != e.Bytes {
				return nil, fmt.Errorf("coll: rank %d send %d went to %d (%dB) but the trace says %d (%dB)",
					r, d.ID, d.Dst, d.Bytes, e.Peer, e.Bytes)
			}
			tagOf[li] = e.Tag
		}
	}
	for i, d := range log {
		if d.Status != mesh.StatusDelivered {
			continue
		}
		k := chanKey{src: d.Src, dst: d.Dst, tag: tagOf[i]}
		queues[k] = append(queues[k], arrival{end: d.End, bytes: d.Bytes})
	}

	rec := &reconstruction{
		ranks:  make([]rankClock, n),
		blocks: map[int]*instAcc{},
	}
	touch := func(block int) *instAcc {
		a := rec.blocks[block]
		if a == nil {
			a = &instAcc{block: block, entry: make([]sim.Time, n), exit: make([]sim.Time, n), sends: make([]int, n), recvs: make([]int, n)}
			for r := range a.entry {
				a.entry[r] = -1
			}
			rec.blocks[block] = a
		}
		return a
	}

	for r := 0; r < n; r++ {
		clk := &rec.ranks[r]
		t := sim.Time(0)
		pos := 0
		for _, e := range tr.Events[r] {
			enter := t + sim.Time(e.Compute)
			clk.busy += int64(e.Compute)
			var done sim.Time
			var msgBytes int
			switch e.Op {
			case trace.OpSend:
				d := log[bySrc[r][pos]]
				pos++
				inj := enter + sim.Time(cost.SendOverhead(e.Bytes))
				if d.Inject != inj {
					return nil, fmt.Errorf("coll: rank %d send %d reconstructed inject %d != logged %d (timeline drift)",
						r, d.ID, inj, d.Inject)
				}
				clk.overhead += int64(inj - enter)
				done = inj
				msgBytes = e.Bytes
			case trace.OpRecv:
				k := chanKey{src: e.Peer, dst: r, tag: e.Tag}
				q := queues[k]
				h := heads[k]
				if h >= len(q) {
					return nil, fmt.Errorf("coll: rank %d receive from %d (tag %d) has no matching delivery", r, e.Peer, e.Tag)
				}
				heads[k] = h + 1
				ar := q[h]
				start := enter
				if ar.end > enter {
					clk.idle += int64(ar.end - enter)
					clk.waits++
					start = ar.end
				}
				done = start + sim.Time(cost.RecvOverhead(ar.bytes))
				clk.overhead += int64(done - start)
				msgBytes = ar.bytes
			default:
				return nil, fmt.Errorf("coll: rank %d has unknown trace op %v", r, e.Op)
			}
			t = done
			clk.finish = done

			info, ok := mp.DecodeTag(e.Tag)
			if !ok {
				continue
			}
			a := touch(info.Block)
			if !a.set {
				a.op, a.alg, a.set = info.Op, info.Algorithm, true
			} else if a.op != info.Op || a.alg != info.Algorithm {
				return nil, fmt.Errorf("coll: tag block %d mixes %s/%s with %s/%s",
					info.Block, a.op, a.alg, info.Op, info.Algorithm)
			}
			if a.entry[r] < 0 {
				a.entry[r] = enter
			}
			a.exit[r] = done
			if e.Op == trace.OpSend {
				a.sends[r]++
				a.msgs++
				a.bytes += int64(msgBytes)
				rec.collMsgs++
				rec.collBytes += int64(msgBytes)
				if msgBytes > a.maxMsgBytes {
					a.maxMsgBytes = msgBytes
				}
			} else {
				a.recvs[r]++
			}
		}
	}

	// Losslessness check: every delivered message must have been consumed
	// by exactly one traced receive (trace.Validate guarantees channel
	// balance, so a leftover arrival means the matching above diverged
	// from the replay's).
	keys := make([]chanKey, 0, len(queues))
	for k := range queues {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].src != keys[b].src {
			return keys[a].src < keys[b].src
		}
		if keys[a].dst != keys[b].dst {
			return keys[a].dst < keys[b].dst
		}
		return keys[a].tag < keys[b].tag
	})
	for _, k := range keys {
		if heads[k] != len(queues[k]) {
			return nil, fmt.Errorf("coll: %d unconsumed deliveries on channel %d->%d tag %d",
				len(queues[k])-heads[k], k.src, k.dst, k.tag)
		}
	}
	return rec, nil
}

// instances finalizes the accumulated blocks into the per-collective
// records, in global sequence order.
func (rec *reconstruction) instances() []Instance {
	blocks := make([]int, 0, len(rec.blocks))
	for b := range rec.blocks {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	out := make([]Instance, 0, len(blocks))
	for _, b := range blocks {
		a := rec.blocks[b]
		inst := Instance{
			Seq:       a.block,
			Op:        a.op.String(),
			Algorithm: a.op.AlgorithmName(a.alg),
			Shape:     a.op.Shape(a.alg),
			Root:      rootOf(a),
			Messages:  a.msgs,
			MsgBytes:  a.maxMsgBytes,
			Bytes:     a.bytes,
			Regime:    Regime(a.maxMsgBytes),
		}
		first := true
		var maxEntry sim.Time
		for r, en := range a.entry {
			if en < 0 {
				continue
			}
			inst.Ranks++
			if first || en < inst.Start {
				inst.Start = en
			}
			if first || en > maxEntry {
				maxEntry = en
			}
			if first || a.exit[r] > inst.End {
				inst.End = a.exit[r]
			}
			first = false
		}
		inst.Span = sim.Duration(inst.End - inst.Start)
		inst.Depth = a.op.SequentialDepth(a.alg, inst.Ranks)
		inst.Desync = sim.Duration(maxEntry - inst.Start)
		if inst.Span > 0 {
			inst.DesyncIndex = float64(inst.Desync) / float64(inst.Span)
		}
		inst.WaveNSPerRank, inst.WaveR2 = waveFit(a.entry)
		out = append(out, inst)
	}
	return out
}

// rootOf identifies the rooted operation's root from the message pattern:
// a broadcast root never receives, a reduce/gather root never sends, the
// barrier's hub is rank 0, and the all-to-all has no root.
func rootOf(a *instAcc) int {
	switch a.op {
	case mp.OpBarrier:
		return 0
	case mp.OpBcast:
		for r, recvs := range a.recvs {
			if a.entry[r] >= 0 && recvs == 0 {
				return r
			}
		}
	case mp.OpReduce, mp.OpGather:
		for r, sends := range a.sends {
			if a.entry[r] >= 0 && sends == 0 {
				return r
			}
		}
	}
	return -1
}

// fuseComposites labels adjacent reduce+bcast pairs of the same root and
// payload as one logical allreduce (how mp.Allreduce is built).
func fuseComposites(insts []Instance) {
	for i := 0; i+1 < len(insts); i++ {
		a, b := &insts[i], &insts[i+1]
		if a.Op == "reduce" && b.Op == "bcast" && b.Seq == a.Seq+1 &&
			a.Root == b.Root && a.MsgBytes == b.MsgBytes {
			a.Composite = "allreduce"
			b.Composite = "allreduce"
		}
	}
}
