package coll_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"commchar/internal/coll"
	"commchar/internal/core"
	"commchar/internal/mp"
	"commchar/internal/sim"
	"commchar/internal/sp2"
	"commchar/internal/trace"
)

// runKernel acquires and replays a kernel under the given collective
// algorithm family, returning the full characterization.
func runKernel(t testing.TB, procs int, alg mp.Algorithm, kernel func(r *mp.Rank)) *core.Characterization {
	t.Helper()
	tr, err := core.AcquireMessagePassingWith(procs, alg, func(w *mp.World) error {
		_, err := w.Run(kernel)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := core.ReplayTrace(tr, core.MeshFor(procs), sp2.Default(), nil, sim.Watchdog{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := raw.Characterize("kernel", core.StrategyStatic)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// allOpsKernel exercises every collective plus point-to-point traffic.
func allOpsKernel(r *mp.Rank) {
	r.Barrier()
	r.Bcast(0, 512, nil)
	r.Gather(1, 128, fmt.Sprintf("g%d", r.ID()))
	r.Reduce(2, 64, 1, func(a, b any) any { return a.(int) + b.(int) })
	r.Allreduce(8, r.ID(), func(a, b any) any { return a.(int) + b.(int) })
	chunks := make([]any, r.Size())
	for i := range chunks {
		chunks[i] = nil
	}
	r.Alltoall(2048, chunks)
	// Point-to-point ring with an application tag.
	r.Send((r.ID()+1)%r.Size(), 7, 96, nil)
	r.Recv((r.ID()-1+r.Size())%r.Size(), 7)
}

func TestExtractionLossless(t *testing.T) {
	for _, alg := range []mp.Algorithm{mp.AlgLinear, mp.AlgBinomial} {
		c := runKernel(t, 8, alg, allOpsKernel)
		cc := c.Coll
		if cc == nil {
			t.Fatalf("alg=%v: no collective characterization", alg)
		}

		// Independent count: every traced send with a collective tag is
		// one delivery that must be attributed to exactly one instance.
		wantColl := 0
		for _, seq := range c.Trace.Events {
			for _, e := range seq {
				if e.Op != trace.OpSend {
					continue
				}
				if _, ok := mp.DecodeTag(e.Tag); ok {
					wantColl++
				}
			}
		}
		if cc.Messages != wantColl {
			t.Fatalf("alg=%v: attributed %d collective messages, trace has %d", alg, cc.Messages, wantColl)
		}
		if cc.Messages+cc.PointToPoint != len(c.Log) {
			t.Fatalf("alg=%v: %d coll + %d ptp != %d log", alg, cc.Messages, cc.PointToPoint, len(c.Log))
		}
		var instMsgs int
		for _, inst := range cc.Instances {
			instMsgs += inst.Messages
		}
		if instMsgs != cc.Messages {
			t.Fatalf("alg=%v: instances hold %d messages, attributed %d", alg, instMsgs, cc.Messages)
		}
		if cc.PointToPoint != 8 {
			t.Fatalf("alg=%v: point-to-point = %d, want 8 (the app ring)", alg, cc.PointToPoint)
		}

		// The kernel's collective sequence, in block order: barrier,
		// bcast, gather, reduce, allreduce (reduce+bcast), alltoall.
		wantOps := []string{"barrier", "bcast", "gather", "reduce", "reduce", "bcast", "alltoall"}
		if len(cc.Instances) != len(wantOps) {
			t.Fatalf("alg=%v: %d instances, want %d", alg, len(cc.Instances), len(wantOps))
		}
		for i, inst := range cc.Instances {
			if inst.Op != wantOps[i] {
				t.Fatalf("alg=%v: instance %d is %s, want %s", alg, i, inst.Op, wantOps[i])
			}
			if inst.Seq != i {
				t.Fatalf("alg=%v: instance %d has seq %d", alg, i, inst.Seq)
			}
			if inst.Ranks != 8 {
				t.Fatalf("alg=%v: instance %d has %d ranks", alg, i, inst.Ranks)
			}
			if inst.Span <= 0 {
				t.Fatalf("alg=%v: instance %d span %d", alg, i, inst.Span)
			}
		}
		if r := cc.Instances[1].Root; r != 0 {
			t.Fatalf("alg=%v: bcast root %d", alg, r)
		}
		if r := cc.Instances[2].Root; r != 1 {
			t.Fatalf("alg=%v: gather root %d", alg, r)
		}
		if r := cc.Instances[3].Root; r != 2 {
			t.Fatalf("alg=%v: reduce root %d", alg, r)
		}
		if r := cc.Instances[6].Root; r != -1 {
			t.Fatalf("alg=%v: alltoall root %d", alg, r)
		}
		// The allreduce pair is fused.
		if cc.Instances[4].Composite != "allreduce" || cc.Instances[5].Composite != "allreduce" {
			t.Fatalf("alg=%v: allreduce pair not fused: %q/%q",
				alg, cc.Instances[4].Composite, cc.Instances[5].Composite)
		}
		// Algorithm discrimination: the broadcast family names the spec.
		wantAlg := "linear"
		wantShape := "star-out"
		wantDepth := 7
		if alg == mp.AlgBinomial {
			wantAlg, wantShape, wantDepth = "binomial", "binomial-tree", 3
		}
		b := cc.Instances[1]
		if b.Algorithm != wantAlg || b.Shape != wantShape || b.Depth != wantDepth {
			t.Fatalf("alg=%v: bcast characterized as %s/%s depth %d", alg, b.Algorithm, b.Shape, b.Depth)
		}
		if a := cc.Instances[6]; a.Algorithm != "pairwise" || a.Regime != "medium" {
			t.Fatalf("alltoall characterized as %s/%s", a.Algorithm, a.Regime)
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	// Two independent acquire+replay+analyze passes must produce
	// byte-identical collective characterizations — the same standard
	// TestParallelSweepIsDeterministic enforces on whole sweeps.
	var blobs [][]byte
	for i := 0; i < 2; i++ {
		c := runKernel(t, 8, mp.AlgBinomial, allOpsKernel)
		b, err := json.Marshal(c.Coll)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	if string(blobs[0]) != string(blobs[1]) {
		t.Fatal("collective characterizations differ across identical runs")
	}
}

func TestAnalyzeSkipsForeignTraces(t *testing.T) {
	if cc, err := coll.Analyze(nil, nil, nil, 0); cc != nil || err != nil {
		t.Fatalf("nil trace: %v, %v", cc, err)
	}
	tr := trace.New(2)
	tr.Add(0, trace.Event{Op: trace.OpSend, Peer: 1, Bytes: 8, Tag: 3})
	tr.Add(1, trace.Event{Op: trace.OpRecv, Peer: 0, Tag: 3})
	if cc, err := coll.Analyze(tr, nil, nil, 0); cc != nil || err != nil {
		t.Fatalf("point-to-point trace: %v, %v", cc, err)
	}
}

// modelKernel runs one rooted collective per payload size with a barrier
// before each, so entry desynchronization does not leak into the spans
// the model is fitted against.
func modelKernel(op string, sizes []int) func(r *mp.Rank) {
	return func(r *mp.Rank) {
		for _, b := range sizes {
			r.Barrier()
			switch op {
			case "bcast":
				r.Bcast(0, b, nil)
			case "reduce":
				r.Reduce(0, b, 1, func(a, b any) any { return a.(int) + b.(int) })
			}
		}
	}
}

// findModel returns the fitted model of the (op, algorithm) group.
func findModel(t *testing.T, cc *coll.Characterization, op, alg string) coll.OpModel {
	t.Helper()
	for _, m := range cc.PerOp {
		if m.Op == op && m.Algorithm == alg {
			return m
		}
	}
	t.Fatalf("no fitted model for %s/%s in %+v", op, alg, cc.PerOp)
	return coll.OpModel{}
}

// TestModelReproducesSpans is the acceptance gate: the fitted pLogP-style
// model must reproduce the measured per-collective spans within a stated
// relative error — mean ≤ 5%, max ≤ 15% — with R² ≥ 0.95, for linear and
// binomial algorithms, validated with the same GoF machinery
// (stats.RSquared inside the fit) as the SP2 overhead model.
func TestModelReproducesSpans(t *testing.T) {
	sizes := []int{64, 256, 1024, 4096, 16384, 65536}
	for _, op := range []string{"bcast", "reduce"} {
		for _, alg := range []mp.Algorithm{mp.AlgLinear, mp.AlgBinomial} {
			c := runKernel(t, 8, alg, modelKernel(op, sizes))
			m := findModel(t, c.Coll, op, alg.String())
			if m.Count != len(sizes) {
				t.Fatalf("%s/%v: %d instances, want %d", op, alg, m.Count, len(sizes))
			}
			if m.R2 < 0.95 {
				t.Errorf("%s/%v: R2 = %.4f < 0.95", op, alg, m.R2)
			}
			if m.MeanRelErr > 0.05 {
				t.Errorf("%s/%v: mean relative error %.4f > 0.05", op, alg, m.MeanRelErr)
			}
			if m.MaxRelErr > 0.15 {
				t.Errorf("%s/%v: max relative error %.4f > 0.15", op, alg, m.MaxRelErr)
			}
			if m.G <= 0 {
				t.Errorf("%s/%v: per-byte gap G = %.4f, want > 0", op, alg, m.G)
			}
		}
	}
}

func TestIdleWaveFromStaggeredEntry(t *testing.T) {
	// Ranks enter a broadcast staggered by exactly 100 µs per rank: the
	// reconstructed entry front must be a perfect wave with that slope.
	const delta = 100_000 // ns per rank
	c := runKernel(t, 8, mp.AlgLinear, func(r *mp.Rank) {
		r.Compute(sim.Duration(r.ID() * delta))
		r.Bcast(0, 1024, nil)
	})
	cc := c.Coll
	if cc == nil || len(cc.Instances) != 1 {
		t.Fatalf("instances = %+v", cc)
	}
	inst := cc.Instances[0]
	if inst.WaveR2 < 0.9999 {
		t.Fatalf("wave R2 = %.6f", inst.WaveR2)
	}
	if inst.WaveNSPerRank < delta*0.999 || inst.WaveNSPerRank > delta*1.001 {
		t.Fatalf("wave slope = %.1f ns/rank, want ~%d", inst.WaveNSPerRank, delta)
	}
	if inst.Desync != sim.Duration(7*delta) {
		t.Fatalf("desync = %d, want %d", inst.Desync, 7*delta)
	}
	if inst.DesyncIndex <= 0 {
		t.Fatalf("desync index = %f", inst.DesyncIndex)
	}
	// Rank 0 (the root, entering first) waits on nothing in the bcast;
	// late ranks find their message already delivered or wait briefly.
	if cc.Idle.PerRank[0].IdleNS != 0 {
		t.Fatalf("root idle = %d ns", cc.Idle.PerRank[0].IdleNS)
	}
	if cc.Idle.MeanIdleFraction < 0 || cc.Idle.MaxIdleFraction > 1 {
		t.Fatalf("idle fractions out of range: %+v", cc.Idle)
	}
}

func TestRankActivityAccounting(t *testing.T) {
	c := runKernel(t, 8, mp.AlgLinear, allOpsKernel)
	cc := c.Coll
	if len(cc.Idle.PerRank) != 8 {
		t.Fatalf("%d rank activities", len(cc.Idle.PerRank))
	}
	for _, ra := range cc.Idle.PerRank {
		total := ra.BusyNS + ra.OverheadNS + ra.IdleNS
		if total != ra.FinishNS {
			t.Fatalf("rank %d: busy+overhead+idle = %d != finish %d", ra.Rank, total, ra.FinishNS)
		}
		if ra.FinishNS > int64(cc.Elapsed) {
			t.Fatalf("rank %d finishes at %d after the makespan %d", ra.Rank, ra.FinishNS, cc.Elapsed)
		}
	}
}

func TestAnalyzeEquivalentUnderExplicitCall(t *testing.T) {
	// Analyze called directly must agree with the characterization's
	// embedded result (same trace, log, cost, elapsed).
	c := runKernel(t, 4, mp.AlgLinear, allOpsKernel)
	direct, err := coll.Analyze(c.Trace, c.Log, sp2.Default(), c.Elapsed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, c.Coll) {
		t.Fatal("direct Analyze disagrees with the pipeline's embedded result")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	c := runKernel(b, 16, mp.AlgBinomial, func(r *mp.Rank) {
		for i := 0; i < 32; i++ {
			r.Allreduce(1024, r.ID(), func(a, b any) any { return a.(int) + b.(int) })
			chunks := make([]any, r.Size())
			r.Alltoall(512, chunks)
		}
	})
	// Pin the workload shape BENCH_coll.json describes.
	if len(c.Coll.Instances) != 96 || c.Coll.Messages != 8640 {
		b.Fatalf("bench workload drifted: %d instances, %d messages",
			len(c.Coll.Instances), c.Coll.Messages)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coll.Analyze(c.Trace, c.Log, sp2.Default(), c.Elapsed); err != nil {
			b.Fatal(err)
		}
	}
}
