// Package coll characterizes collective communication and asynchronicity:
// the two attributes the 1997 paper's point-to-point methodology dissolves
// into anonymous messages. It reassembles a static-strategy delivery log
// into collective *instances* using the negative-tag-space blocks that
// internal/mp reserves per collective call, fits a pLogP-style analytic
// span model per (operation, algorithm) in the tradition of
// Barchet-Estefanel & Mounié, and derives an idle-wave/desynchronization
// report from exactly reconstructed per-rank simulated-time timelines in
// the tradition of Afzal et al.
//
// Extraction is exact, not heuristic: replayed ranks are sequential, so a
// rank's deliveries in message-ID order are its trace sends in program
// order, which recovers every message's tag (the delivery log itself does
// not carry tags). The reconstruction is validated against the log — every
// recomputed injection time must equal the logged one — so the idle and
// wait figures are the replay's own, not a model's.
package coll

import (
	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/trace"
)

// Instance is one reassembled collective call: every rank's events in one
// collective tag block, across the whole machine.
type Instance struct {
	// Seq is the global collective sequence number (the tag block):
	// SPMD ranks execute collectives in identical order, so the same
	// block names the same call site on every rank.
	Seq int
	// Op and Algorithm name what ran ("bcast"/"binomial", ...); Shape is
	// the fan-out shape ("star-out", "binomial-tree", "pairwise-ring",
	// "gather-release", "star-in").
	Op        string
	Algorithm string
	Shape     string
	// Root is the rooted operation's root rank; -1 for rootless ops.
	Root int
	// Ranks is the number of participating ranks; Depth the serial
	// message depth of the fan-out shape (the pLogP "S").
	Ranks int
	Depth int
	// Messages and Bytes count the network traffic of this instance;
	// MsgBytes is the per-message payload and Regime its size class
	// (ctl / small / medium / large).
	Messages int
	MsgBytes int
	Bytes    int64
	Regime   string
	// Composite labels fused patterns: a reduce immediately followed by
	// a broadcast of the same root and size is an "allreduce" pair.
	Composite string `json:",omitempty"`

	// Start is the earliest rank entry into the call, End the latest
	// rank exit, Span their difference.
	Start sim.Time
	End   sim.Time
	Span  sim.Duration
	// Desync is the spread of rank entry times (max-min): how
	// desynchronized the machine already was when the collective began.
	// DesyncIndex normalizes it by the span.
	Desync      sim.Duration
	DesyncIndex float64
	// WaveNSPerRank is the idle-wave propagation slope: the fitted rate
	// (ns per rank index) at which the entry front sweeps across ranks,
	// with WaveR2 its goodness of fit. 0/0 when fewer than 3 ranks
	// participate.
	WaveNSPerRank float64
	WaveR2        float64
}

// OpModel is the fitted pLogP-style span model of one (operation,
// algorithm) group: Span ≈ L + O·S + G·S·m, where S is the shape's
// serial message depth and m the per-message payload bytes. Within one
// run the machine size is fixed, so S is often constant per group; the
// fit then drops the unidentifiable column and L absorbs O·S (the
// reported O is 0). Validated the same way the SP2 overhead model is:
// R² plus per-instance relative error against the measured spans.
type OpModel struct {
	Op        string
	Algorithm string
	// Count, Messages, Bytes aggregate the group's instances.
	Count    int
	Messages int
	Bytes    int64
	// MeanSpanNS is the mean measured span.
	MeanSpanNS float64
	// L (latency floor, ns), O (per-step overhead, ns), G (per-byte gap,
	// ns/byte) are the fitted coefficients; dropped columns report 0.
	L, O, G float64
	// R2, MeanRelErr, MaxRelErr measure model-vs-measured agreement over
	// the group's instances.
	R2         float64
	MeanRelErr float64
	MaxRelErr  float64
}

// RankActivity is one rank's reconstructed time budget over the run.
type RankActivity struct {
	Rank int
	// BusyNS is traced computation, OverheadNS communication-software
	// overhead, IdleNS time blocked in receives waiting for data.
	BusyNS     int64
	OverheadNS int64
	IdleNS     int64
	// FinishNS is when the rank's replay finished; Waits counts the
	// receives that actually blocked.
	FinishNS int64
	Waits    int
	// IdleFraction is IdleNS over the run's makespan.
	IdleFraction float64
}

// IdleReport is the asynchronicity summary: per-rank idle budgets plus
// desynchronization aggregates over collective instances.
type IdleReport struct {
	PerRank []RankActivity
	// MeanIdleFraction / MaxIdleFraction aggregate PerRank.
	MeanIdleFraction float64
	MaxIdleFraction  float64
	// MeanDesyncIndex averages the per-instance desynchronization
	// indices; MeanAbsWaveNSPerRank the |slope| of instances whose
	// entry front fits a wave (3+ ranks).
	MeanDesyncIndex      float64
	MeanAbsWaveNSPerRank float64
}

// Characterization is the collective/asynchronicity characterization of
// one static-strategy run. It rides inside core.Characterization, so it
// serializes through the artifact cache and the distributed wire codec
// unchanged.
type Characterization struct {
	Ranks   int
	Elapsed sim.Time
	// Messages/Bytes count the deliveries attributed to collectives;
	// PointToPoint the remaining application point-to-point messages.
	Messages     int
	Bytes        int64
	PointToPoint int

	Instances []Instance
	PerOp     []OpModel
	Idle      IdleReport
}

// Regime classifies a per-message payload size: control (<64B), small
// (<1KiB), medium (<64KiB), large.
func Regime(bytes int) string {
	switch {
	case bytes < 64:
		return "ctl"
	case bytes < 1024:
		return "small"
	case bytes < 64*1024:
		return "medium"
	default:
		return "large"
	}
}

// Analyze reassembles the run's collective instances from its trace and
// delivery log, fits the per-op span models, and derives the idle-wave
// report. cost must be the replay's software-overhead model (nil for
// ZeroCost); the reconstruction asserts exactness against the log and
// errors on any drift. A nil trace or one without collective tags (a
// foreign or purely point-to-point trace) yields (nil, nil).
func Analyze(tr *trace.Trace, log []mesh.Delivery, cost trace.CostModel, elapsed sim.Time) (*Characterization, error) {
	if tr == nil || !hasCollectiveTags(tr) {
		return nil, nil
	}
	rec, err := reconstruct(tr, log, cost)
	if err != nil {
		return nil, err
	}
	c := &Characterization{
		Ranks:        tr.Ranks,
		Elapsed:      elapsed,
		Messages:     rec.collMsgs,
		Bytes:        rec.collBytes,
		PointToPoint: len(log) - rec.collMsgs,
		Instances:    rec.instances(),
	}
	fuseComposites(c.Instances)
	c.PerOp = fitModels(c.Instances)
	c.Idle = idleReport(rec.ranks, c.Instances, elapsed)
	return c, nil
}
