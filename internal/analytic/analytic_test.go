package analytic

import (
	"math"
	"testing"

	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/stats"
	"commchar/internal/workload"
)

var testLengths = []stats.LengthCount{{Bytes: 40, Count: 1}}

func TestZeroLoadLatencyMatchesSimulator(t *testing.T) {
	// At vanishing load the model's T0 must equal the simulator's
	// uncontended latency for the same flow.
	cfg := mesh.DefaultConfig(4, 4)
	w := &Workload{Procs: 16, Lengths: testLengths,
		Flows: []Flow{{Src: 0, Dst: 15, Rate: 1e-9}}}
	pred, err := Predict(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	net := mesh.New(s, cfg)
	var d mesh.Delivery
	net.Inject(mesh.Message{ID: 1, Src: 0, Dst: 15, Bytes: 40, Inject: 0},
		func(x mesh.Delivery) { d = x })
	s.Run()
	if math.Abs(pred.T0-float64(d.Latency)) > 1 {
		t.Fatalf("analytic T0 = %v, simulator = %v", pred.T0, d.Latency)
	}
	if pred.Contention > 1 {
		t.Fatalf("contention at vanishing load = %v", pred.Contention)
	}
}

func TestContentionGrowsWithLoad(t *testing.T) {
	cfg := mesh.DefaultConfig(4, 4)
	base := Uniform(16, 1.0/20000, testLengths) // 1 msg / 20 µs / source
	var prev float64
	for _, f := range []float64{1, 4, 16, 40} {
		pred, err := Predict(base.Scale(f), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Contention < prev {
			t.Fatalf("contention fell with load at factor %v", f)
		}
		prev = pred.Contention
	}
}

func TestSaturationDetected(t *testing.T) {
	cfg := mesh.DefaultConfig(4, 4)
	// Absurd load: every source sends every 100 ns.
	w := Uniform(16, 1.0/100, testLengths)
	pred, err := Predict(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Saturated || pred.MaxRho < 1 {
		t.Fatalf("saturation missed: %+v", pred)
	}
}

func TestPredictionTracksSimulatorUniform(t *testing.T) {
	// Moderate uniform load: the analytic latency must agree with the
	// simulator within modeling error (±35%).
	cfg := mesh.DefaultConfig(4, 4)
	const meanGap = 4000.0 // ns per source
	aw := Uniform(16, 1/meanGap, testLengths)
	pred, err := Predict(aw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.UniformPoisson(16, meanGap, testLengths)
	s := sim.New()
	net := mesh.New(s, cfg)
	if err := g.Drive(s, net, 4_000_000, 7); err != nil {
		t.Fatal(err)
	}
	s.Run()
	m := workload.MeasureLog(net.Log(), s.Now(), net.MeanUtilization())
	relErr := math.Abs(pred.Latency-m.MeanLatencyNS) / m.MeanLatencyNS
	if relErr > 0.35 {
		t.Fatalf("analytic %v ns vs simulated %v ns (err %.0f%%)",
			pred.Latency, m.MeanLatencyNS, 100*relErr)
	}
}

func TestFromCharacterization(t *testing.T) {
	// Build a characterization with known per-source rates and verify the
	// extracted flows reproduce them.
	st := sim.NewStream(9)
	var log []mesh.Delivery
	id := int64(0)
	for src := 0; src < 4; src++ {
		tm := sim.Time(0)
		for i := 0; i < 500; i++ {
			tm += sim.Time(st.Exponential(2000)) + 1
			dst := st.IntN(3)
			if dst >= src {
				dst++
			}
			id++
			log = append(log, mesh.Delivery{
				Message: mesh.Message{ID: id, Src: src, Dst: dst, Bytes: 40, Inject: tm},
				End:     tm + 300, Latency: 300, Hops: 2,
			})
		}
	}
	c, err := core.Analyze("known", core.StrategyDynamic, log, 4, 1_200_000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FromCharacterization(c)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate rate = 2000 messages / 1.2 ms.
	want := 2000.0 / 1_200_000
	if got := w.AggregateRate(); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("aggregate rate %v, want %v", got, want)
	}
	if _, err := Predict(w, mesh.DefaultConfig(2, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := FromCharacterization(nil); err == nil {
		t.Fatal("nil characterization accepted")
	}
	w := Uniform(16, 1e-6, testLengths)
	if _, err := Predict(w, mesh.DefaultConfig(2, 2)); err == nil {
		t.Fatal("16 processors on 4 nodes accepted")
	}
	w.Lengths = nil
	if _, err := Predict(w, mesh.DefaultConfig(4, 4)); err == nil {
		t.Fatal("empty length spectrum accepted")
	}
}
