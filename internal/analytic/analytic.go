// Package analytic closes the loop the paper opens: "these distributions
// can be used in the analysis of ICNs for developing realistic performance
// models". It implements a per-link open-queueing model of the wormhole
// mesh in the tradition of the analytic ICN studies the paper cites
// ([2], [3], [4]): every directed link is an M/G/1 server whose arrival
// rate comes from the characterized per-source message rates and spatial
// distributions, and whose service-time moments come from the message
// length spectrum; Pollaczek-Khinchine waiting times accumulate along the
// dimension-order path of each flow.
//
// Feeding the model with a fitted application characterization instead of
// the classic uniform assumption is exactly the paper's proposal.
package analytic

import (
	"errors"
	"fmt"
	"math"

	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/stats"
)

// Flow is one source-destination traffic stream.
type Flow struct {
	Src, Dst int
	// Rate in messages per nanosecond.
	Rate float64
}

// Workload is the analytic model's input: flows plus the message-length
// spectrum (shared by all flows).
type Workload struct {
	Procs   int
	Flows   []Flow
	Lengths []stats.LengthCount
}

// FromCharacterization derives the analytic workload from a measured
// characterization: per-source rates from the observed message counts over
// the run, destinations split by the observed spatial fractions.
func FromCharacterization(c *core.Characterization) (*Workload, error) {
	if c == nil || c.Elapsed <= 0 {
		return nil, errors.New("analytic: empty characterization")
	}
	w := &Workload{Procs: c.Procs, Lengths: c.Volume.Distinct}
	elapsed := float64(c.Elapsed)
	for src := 0; src < c.Procs; src++ {
		sp := c.Spatial[src]
		if sp.Total == 0 {
			continue
		}
		srcRate := float64(sp.Total) / elapsed
		for dst, frac := range sp.Fractions {
			if frac <= 0 || dst == src {
				continue
			}
			w.Flows = append(w.Flows, Flow{Src: src, Dst: dst, Rate: srcRate * frac})
		}
	}
	if len(w.Flows) == 0 {
		return nil, errors.New("analytic: no traffic flows")
	}
	return w, nil
}

// Uniform builds the classic uniform workload: every source sends at the
// given aggregate per-source rate (messages/ns), uniformly to all others.
func Uniform(procs int, perSourceRate float64, lengths []stats.LengthCount) *Workload {
	w := &Workload{Procs: procs, Lengths: lengths}
	for src := 0; src < procs; src++ {
		for dst := 0; dst < procs; dst++ {
			if dst == src {
				continue
			}
			w.Flows = append(w.Flows, Flow{Src: src, Dst: dst, Rate: perSourceRate / float64(procs-1)})
		}
	}
	return w
}

// Prediction is the model's output.
type Prediction struct {
	// T0 is the flow-weighted zero-load latency (head propagation plus
	// serialization), in ns.
	T0 float64
	// Contention is the flow-weighted total queueing delay, in ns.
	Contention float64
	// Latency = T0 + Contention.
	Latency float64
	// MaxRho is the highest link utilization; at or above 1 the network
	// is analytically saturated and Saturated is set.
	MaxRho    float64
	MeanRho   float64
	Saturated bool
}

// Predict evaluates the model on the given fabric.
func Predict(w *Workload, cfg mesh.Config) (*Prediction, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes() < w.Procs {
		return nil, fmt.Errorf("analytic: %d processors on %d-node fabric", w.Procs, cfg.Nodes())
	}
	if len(w.Lengths) == 0 {
		return nil, errors.New("analytic: no length spectrum")
	}

	// Service-time moments of a worm's residence on one link: a message
	// of F flits streams across a link for about F cycles once granted.
	cycle := float64(cfg.CycleTime)
	var totalCount float64
	var es, es2 float64
	for _, lc := range w.Lengths {
		f := float64(cfg.Flits(lc.Bytes))
		s := f * cycle
		n := float64(lc.Count)
		es += n * s
		es2 += n * s * s
		totalCount += n
	}
	es /= totalCount
	es2 /= totalCount

	// Route every flow once over a scratch network to get link flows.
	net := mesh.New(sim.New(), cfg)
	type linkKey [2]int
	lambda := map[linkKey]float64{}
	paths := make([][][2]int, len(w.Flows))
	for i, f := range w.Flows {
		p := net.Path(f.Src, f.Dst)
		paths[i] = p
		for _, lk := range p {
			lambda[linkKey(lk)] += f.Rate
		}
	}

	// Per-link M/G/1 waiting time (Pollaczek-Khinchine), with the lane
	// count acting as service capacity (approximate: rate divided by
	// lanes).
	lanes := float64(cfg.VirtualChannels)
	wait := map[linkKey]float64{}
	pred := &Prediction{}
	var rhoSum float64
	for lk, l := range lambda {
		rho := l * es / lanes
		if rho > pred.MaxRho {
			pred.MaxRho = rho
		}
		rhoSum += rho
		if rho >= 1 {
			pred.Saturated = true
			wait[lk] = math.Inf(1)
			continue
		}
		wait[lk] = (l / lanes) * es2 / (2 * (1 - rho))
	}
	if len(lambda) > 0 {
		pred.MeanRho = rhoSum / float64(len(lambda))
	}

	// Flow-weighted latency.
	hopTime := cycle * float64(1+cfg.RouterDelay)
	meanFlits := es / cycle
	var rateSum float64
	for i, f := range w.Flows {
		t0 := float64(len(paths[i]))*hopTime + (meanFlits-1)*cycle
		var q float64
		for _, lk := range paths[i] {
			q += wait[linkKey(lk)]
		}
		pred.T0 += f.Rate * t0
		pred.Contention += f.Rate * q
		rateSum += f.Rate
	}
	if rateSum > 0 {
		pred.T0 /= rateSum
		pred.Contention /= rateSum
	}
	pred.Latency = pred.T0 + pred.Contention
	return pred, nil
}

// Scale returns the workload with every flow rate multiplied by factor.
func (w *Workload) Scale(factor float64) *Workload {
	out := &Workload{Procs: w.Procs, Lengths: w.Lengths}
	out.Flows = make([]Flow, len(w.Flows))
	copy(out.Flows, w.Flows)
	for i := range out.Flows {
		out.Flows[i].Rate *= factor
	}
	return out
}

// AggregateRate returns the total message rate (messages/ns).
func (w *Workload) AggregateRate() float64 {
	var sum float64
	for _, f := range w.Flows {
		sum += f.Rate
	}
	return sum
}
