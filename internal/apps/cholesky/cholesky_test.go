package cholesky

import (
	"math"
	"testing"

	"commchar/internal/spasm"
)

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestGenerateIsSPDWithKnownFactor(t *testing.T) {
	prob := Generate(Config{N: 32, Density: 0.15, RngSeed: 1})
	// A must equal TrueL · TrueLᵀ and be symmetric.
	n := prob.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(prob.A[j*n+i]-prob.A[i*n+j]) > 1e-12 {
				t.Fatalf("A not symmetric at (%d,%d)", i, j)
			}
			var sum float64
			for k := 0; k < n; k++ {
				sum += prob.TrueL[k*n+i] * prob.TrueL[k*n+j]
			}
			if math.Abs(sum-prob.A[j*n+i]) > 1e-9 {
				t.Fatalf("A != L·Lᵀ at (%d,%d)", i, j)
			}
		}
	}
}

func TestFactorizationRecoversTrueL(t *testing.T) {
	prob := Generate(Config{N: 48, Density: 0.12, RngSeed: 2})
	m := spasm.NewDefault(4)
	res, err := Run(m, prob, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.L, prob.TrueL); d > 1e-8 {
		t.Fatalf("factor differs from truth by %v", d)
	}
	if res.Tasks != prob.N {
		t.Fatalf("factored %d of %d columns", res.Tasks, prob.N)
	}
}

func TestFactorizationLLTEqualsA(t *testing.T) {
	prob := Generate(Config{N: 64, Density: 0.08, RngSeed: 3})
	m := spasm.NewDefault(8)
	res, err := Run(m, prob, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := prob.N
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var sum float64
			for k := 0; k <= j; k++ {
				sum += res.L[k*n+i] * res.L[k*n+j]
			}
			if math.Abs(sum-prob.A[j*n+i]) > 1e-8 {
				t.Fatalf("L·Lᵀ != A at (%d,%d): %v vs %v", i, j, sum, prob.A[j*n+i])
			}
		}
	}
	if err := m.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossProcessorCounts(t *testing.T) {
	// The factor is unique, so any processor count must yield it.
	prob := Generate(Config{N: 40, Density: 0.1, RngSeed: 4})
	var first []float64
	for _, procs := range []int{1, 2, 8} {
		m := spasm.NewDefault(procs)
		res, err := Run(m, prob, 0)
		if err != nil {
			t.Fatalf("%d procs: %v", procs, err)
		}
		if first == nil {
			first = res.L
			continue
		}
		if d := maxAbsDiff(first, res.L); d > 1e-9 {
			t.Fatalf("%d procs: factor differs by %v", procs, d)
		}
	}
}

func TestDynamicTrafficGenerated(t *testing.T) {
	prob := Generate(Config{N: 64, Density: 0.1, RngSeed: 5})
	m := spasm.NewDefault(8)
	_, err := Run(m, prob, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Net.Delivered() == 0 {
		t.Fatal("no traffic")
	}
	// Lock traffic to the queue lock's home (processor 0) must exist.
	toQueueHome := 0
	for _, d := range m.Net.Log() {
		if d.Dst == 0 {
			toQueueHome++
		}
	}
	if toQueueHome == 0 {
		t.Fatal("no task-queue lock traffic")
	}
}

func TestRejectsTooFewColumns(t *testing.T) {
	prob := Generate(Config{N: 4, Density: 0.5, RngSeed: 6})
	m := spasm.NewDefault(8)
	if _, err := Run(m, prob, 0); err == nil {
		t.Fatal("tiny problem accepted")
	}
}
