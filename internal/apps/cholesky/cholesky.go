// Package cholesky implements the paper's Cholesky application, drawn from
// the SPLASH suite [17]: Cholesky factorization of a sparse symmetric
// positive-definite matrix. The sparsity makes the algorithm's access
// pattern data-dependent and dynamic: columns are factored as their
// dependencies resolve, drawn from a lock-protected ready queue, and each
// completed column fans out updates (cmod) to the columns it touches.
// The lock and task-queue traffic gives Cholesky the bursty, irregular
// communication the paper characterizes with hyperexponential fits.
package cholesky

import (
	"fmt"
	"math"

	"commchar/internal/sim"
	"commchar/internal/spasm"
)

// Config sizes the problem.
type Config struct {
	N       int     // matrix dimension
	Density float64 // probability of a subdiagonal nonzero in the factor
	OpTime  sim.Duration
	RngSeed uint64
}

// DefaultConfig returns the benchmark problem.
func DefaultConfig() Config {
	return Config{N: 192, Density: 0.06, OpTime: 40 * sim.Nanosecond, RngSeed: 0xC0}
}

// Problem is a generated sparse SPD system with a known factor.
type Problem struct {
	N       int
	A       []float64 // dense column-major storage of the SPD matrix
	ColRows [][]int   // pattern: sorted rows i > j with L[i][j] != 0
	TrueL   []float64 // the factor the run must recover (column-major)
}

// Generate builds a sparse SPD matrix A = L0·L0ᵀ from a random sparse
// lower-triangular L0 with positive diagonal. Since the Cholesky factor is
// unique, the run must recover exactly L0 (no fill beyond its pattern).
func Generate(cfg Config) *Problem {
	n := cfg.N
	st := sim.NewStream(cfg.RngSeed)
	l := make([]float64, n*n) // column-major
	colRows := make([][]int, n)
	for j := 0; j < n; j++ {
		l[j*n+j] = 1 + st.Float64()
		for i := j + 1; i < n; i++ {
			if st.Float64() < cfg.Density {
				l[j*n+i] = st.Float64() - 0.5
				colRows[j] = append(colRows[j], i)
			}
		}
	}
	// A = L0 · L0ᵀ, dense.
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var sum float64
			for k := 0; k <= j; k++ {
				sum += l[k*n+i] * l[k*n+j]
			}
			a[j*n+i] = sum
			a[i*n+j] = sum
		}
	}
	return &Problem{N: n, A: a, ColRows: colRows, TrueL: l}
}

// Result carries the computed factor.
type Result struct {
	L        []float64 // column-major factor
	Makespan sim.Time
	Tasks    int // columns factored
}

// Lock identifiers: the queue lock plus one lock per column.
const queueLock = 0

func columnLock(j int) int { return 1 + j }

// Run factors the problem on the machine.
func Run(m *spasm.Machine, prob *Problem, opTime sim.Duration) (*Result, error) {
	n := prob.N
	p := m.Config().Processors
	if n < p {
		return nil, fmt.Errorf("cholesky: %d columns for %d processors", n, p)
	}
	if opTime <= 0 {
		opTime = DefaultConfig().OpTime
	}

	// Working matrix (becomes L in place), shared column-major.
	aArr := m.NewArray(n*n, 8)
	w := append([]float64(nil), prob.A...)

	// Dependency counts: ndeps[k] = columns j<k that must cmod k.
	ndeps := make([]int, n)
	for j := 0; j < n; j++ {
		for _, i := range prob.ColRows[j] {
			ndeps[i]++
		}
	}
	var queue []int
	for j := 0; j < n; j++ {
		if ndeps[j] == 0 {
			queue = append(queue, j)
		}
	}
	done := 0
	tasks := 0

	makespan, err := m.Run(func(e *spasm.Env) {
		for {
			// Draw a ready column from the shared queue.
			e.Lock(queueLock)
			if done == n {
				e.Unlock(queueLock)
				return
			}
			if len(queue) == 0 {
				e.Unlock(queueLock)
				e.Compute(500 * sim.Nanosecond) // spin-wait
				continue
			}
			j := queue[0]
			queue = queue[1:]
			e.Unlock(queueLock)

			// cdiv(j): scale column j by the square root of its pivot.
			e.ReadArray(aArr, j*n+j)
			pivot := math.Sqrt(w[j*n+j])
			w[j*n+j] = pivot
			e.WriteArray(aArr, j*n+j)
			for _, i := range prob.ColRows[j] {
				e.ReadArray(aArr, j*n+i)
				w[j*n+i] /= pivot
				e.WriteArray(aArr, j*n+i)
				e.Compute(opTime)
			}

			// Fan-out: cmod(k, j) for every dependent column k.
			for ki, k := range prob.ColRows[j] {
				e.Lock(columnLock(k))
				e.ReadArray(aArr, j*n+k)
				lkj := w[j*n+k]
				for _, i := range prob.ColRows[j][ki:] {
					// Rows i >= k of column j update column k; the first
					// iteration (i == k) updates k's diagonal by lkj².
					e.ReadArray(aArr, j*n+i)
					e.ReadArray(aArr, k*n+i)
					w[k*n+i] -= w[j*n+i] * lkj
					e.WriteArray(aArr, k*n+i)
					e.Compute(opTime)
				}
				ndeps[k]--
				ready := ndeps[k] == 0
				e.Unlock(columnLock(k))
				if ready {
					e.Lock(queueLock)
					queue = append(queue, k)
					e.Unlock(queueLock)
				}
			}

			e.Lock(queueLock)
			done++
			tasks++
			e.Unlock(queueLock)
		}
	})
	if err != nil {
		return nil, err
	}

	// Zero the strict upper triangle of the result view (untouched input).
	lout := make([]float64, n*n)
	for j := 0; j < n; j++ {
		lout[j*n+j] = w[j*n+j]
		for _, i := range prob.ColRows[j] {
			lout[j*n+i] = w[j*n+i]
		}
	}
	return &Result{L: lout, Makespan: makespan, Tasks: tasks}, nil
}
