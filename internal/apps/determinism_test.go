package apps

import (
	"testing"

	"commchar/internal/core"
)

// TestRunsAreBitIdentical backs the README's reproducibility claim: the
// simulation kernel is deterministic, so two characterizations of the same
// workload produce identical network logs.
func TestRunsAreBitIdentical(t *testing.T) {
	w, err := ByName(ScaleSmall, "Cholesky") // the most nondeterminism-prone app (dynamic task queue)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *core.Characterization {
		c, err := w.Characterize(8)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(), run()
	if a.Messages != b.Messages || a.Elapsed != b.Elapsed {
		t.Fatalf("runs differ: %d/%d msgs, %d/%d ns", a.Messages, b.Messages, a.Elapsed, b.Elapsed)
	}
	for i := range a.Log {
		if a.Log[i] != b.Log[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a.Log[i], b.Log[i])
		}
	}
}
