package fft3d

import (
	"math/cmplx"
	"testing"

	"commchar/internal/mesh"
	"commchar/internal/mp"
	"commchar/internal/sim"
	"commchar/internal/trace"
)

func TestReferenceAgainstDirectDFT(t *testing.T) {
	cfg := Config{NX: 4, NY: 4, NZ: 4, RngSeed: 1}
	fast := Reference(cfg)
	direct := ReferenceDirect(cfg)
	for i := range direct {
		if cmplx.Abs(fast[i]-direct[i]) > 1e-8 {
			t.Fatalf("Reference[%d] = %v, direct %v", i, fast[i], direct[i])
		}
	}
}

func TestParallelMatchesReference(t *testing.T) {
	cfg := Config{NX: 8, NY: 8, NZ: 8, Iterations: 1, RngSeed: 2}
	const procs = 4
	w := mp.NewWorld(mp.DefaultConfig(procs))
	res, err := Run(w, cfg, procs)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(cfg)
	for i := range want {
		if cmplx.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("X[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
	if res.Makespan <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestMultipleIterationsStillCorrect(t *testing.T) {
	cfg := Config{NX: 8, NY: 8, NZ: 8, Iterations: 3, RngSeed: 3}
	const procs = 8
	w := mp.NewWorld(mp.DefaultConfig(procs))
	res, err := Run(w, cfg, procs)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(cfg)
	for i := range want {
		if cmplx.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("X[%d] diverged after iterations", i)
		}
	}
}

func TestTraceReplaysAndRootIsFavorite(t *testing.T) {
	cfg := Config{NX: 8, NY: 8, NZ: 8, Iterations: 2, RngSeed: 4}
	const procs = 8
	w := mp.NewWorld(mp.DefaultConfig(procs))
	if _, err := Run(w, cfg, procs); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Replay through the mesh.
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(4, 2))
	if err := trace.Replay(s, net, tr, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if int(net.Delivered()) != tr.Messages() {
		t.Fatalf("replayed %d of %d", net.Delivered(), tr.Messages())
	}
	// Rank 0 roots bcast/reduce/gather: every rank sends to 0 more than
	// to any single other peer (checksum + gather traffic), while the
	// alltoall keeps the volume spread.
	for src := 1; src < procs; src++ {
		to := make(map[int]int)
		for _, e := range tr.Events[src] {
			if e.Op == trace.OpSend {
				to[e.Peer]++
			}
		}
		for peer, c := range to {
			if peer != 0 && c > to[0] {
				t.Fatalf("rank %d sent %d to %d but only %d to root", src, c, peer, to[0])
			}
		}
	}
}

func TestRejectsBadGeometry(t *testing.T) {
	w := mp.NewWorld(mp.DefaultConfig(4))
	if _, err := Run(w, Config{NX: 6, NY: 8, NZ: 8}, 4); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	w2 := mp.NewWorld(mp.DefaultConfig(3))
	if _, err := Run(w2, Config{NX: 8, NY: 8, NZ: 8}, 3); err == nil {
		t.Fatal("indivisible decomposition accepted")
	}
}
