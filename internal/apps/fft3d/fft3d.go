// Package fft3d implements the paper's 3D-FFT message-passing application:
// the NAS FT kernel [15]. A 3-D array of data is distributed according to
// z-planes; FFTs along x and y are local, the z dimension is brought local
// by an all-to-all transpose, and every iteration ends with a checksum
// reduction. Rank 0 roots the initial parameter broadcast and all checksum
// reductions, which is what makes processor p0 the "favorite" in the
// paper's spatial distribution for this application while the volume
// distribution stays uniform.
package fft3d

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"commchar/internal/mp"
	"commchar/internal/sim"
)

// Config sizes the problem.
type Config struct {
	NX, NY, NZ int // grid dimensions, powers of two
	Iterations int
	FlopTime   sim.Duration
	RngSeed    uint64
}

// DefaultConfig returns the benchmark problem.
func DefaultConfig() Config {
	return Config{NX: 32, NY: 32, NZ: 32, Iterations: 3, FlopTime: 50 * sim.Nanosecond, RngSeed: 0x3DF}
}

// Result carries the transform gathered at rank 0.
type Result struct {
	// X is the 3-D DFT indexed X[k3*NY*NX + k2*NX + k1] (k1 along x).
	X        []complex128
	Makespan sim.Time
	Checksum complex128
}

// Input regenerates the deterministic input field, indexed
// x + NX*(y + NY*z).
func Input(cfg Config) []complex128 {
	n := cfg.NX * cfg.NY * cfg.NZ
	st := sim.NewStream(cfg.RngSeed)
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(st.Float64()*2-1, st.Float64()*2-1)
	}
	return in
}

func pow2(v int) bool { return v > 0 && bits.OnesCount(uint(v)) == 1 }

// Run executes the kernel on the world and returns the result (populated at
// rank 0). The world must not have been run before.
func Run(w *mp.World, cfg Config, procs int) (*Result, error) {
	if !pow2(cfg.NX) || !pow2(cfg.NY) || !pow2(cfg.NZ) {
		return nil, fmt.Errorf("fft3d: grid %dx%dx%d must be powers of two", cfg.NX, cfg.NY, cfg.NZ)
	}
	if cfg.NZ%procs != 0 || cfg.NX%procs != 0 {
		return nil, fmt.Errorf("fft3d: NZ (%d) and NX (%d) must divide ranks (%d)", cfg.NZ, cfg.NX, procs)
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}
	if cfg.FlopTime <= 0 {
		cfg.FlopTime = DefaultConfig().FlopTime
	}
	nx, ny, nz := cfg.NX, cfg.NY, cfg.NZ
	zPer := nz / procs
	xPer := nx / procs
	input := Input(cfg)

	res := &Result{}
	makespan, err := w.Run(func(r *mp.Rank) {
		id := r.ID()
		fftCost := func(size, count int) sim.Duration {
			return cfg.FlopTime * sim.Duration(count*size*bits.TrailingZeros(uint(size)))
		}

		// Rank 0 broadcasts the run parameters.
		r.Bcast(0, 64, cfg)

		// Local slab: z-planes [id*zPer, (id+1)*zPer), indexed
		// x + nx*(y + ny*zLocal).
		slab := make([]complex128, nx*ny*zPer)

		var checksum complex128
		// transposed holds the x-distributed array after the all-to-all:
		// indexed z + nz*(y + ny*xLocal).
		transposed := make([]complex128, nz*ny*xPer)

		for iter := 0; iter < cfg.Iterations; iter++ {
			// (Re)load the evolved field; each NAS FT iteration
			// transforms a fresh time-evolved state, so each iteration
			// here reloads and produces identical communication.
			for zl := 0; zl < zPer; zl++ {
				z := id*zPer + zl
				copy(slab[nx*ny*zl:nx*ny*(zl+1)], input[nx*ny*z:nx*ny*(z+1)])
			}

			// FFT along x: each (y, z-local) row is contiguous.
			for zl := 0; zl < zPer; zl++ {
				for y := 0; y < ny; y++ {
					row := slab[nx*(y+ny*zl) : nx*(y+ny*zl+1)]
					fftInPlace(row)
				}
			}
			r.Compute(fftCost(nx, ny*zPer))

			// FFT along y: strided gather per (x, z-local) line.
			bufY := make([]complex128, ny)
			for zl := 0; zl < zPer; zl++ {
				for x := 0; x < nx; x++ {
					for y := 0; y < ny; y++ {
						bufY[y] = slab[x+nx*(y+ny*zl)]
					}
					fftInPlace(bufY)
					for y := 0; y < ny; y++ {
						slab[x+nx*(y+ny*zl)] = bufY[y]
					}
				}
			}
			r.Compute(fftCost(ny, nx*zPer))

			// Transpose z<->x by personalized all-to-all: the chunk for
			// rank s holds elements with x in s's range, packed
			// z-local-major: zl + zPer*(y + ny*xl).
			chunkElems := zPer * ny * xPer
			chunks := make([]any, procs)
			for s := 0; s < procs; s++ {
				ck := make([]complex128, chunkElems)
				for xl := 0; xl < xPer; xl++ {
					x := s*xPer + xl
					for y := 0; y < ny; y++ {
						for zl := 0; zl < zPer; zl++ {
							ck[zl+zPer*(y+ny*xl)] = slab[x+nx*(y+ny*zl)]
						}
					}
				}
				chunks[s] = ck
			}
			got := r.Alltoall(chunkElems*16, chunks)
			// Unpack: chunk from rank q carries z in q's range.
			for q := 0; q < procs; q++ {
				ck := got[q].([]complex128)
				for xl := 0; xl < xPer; xl++ {
					for y := 0; y < ny; y++ {
						for zl := 0; zl < zPer; zl++ {
							z := q*zPer + zl
							transposed[z+nz*(y+ny*xl)] = ck[zl+zPer*(y+ny*xl)]
						}
					}
				}
			}
			r.Compute(cfg.FlopTime * sim.Duration(nz*ny*xPer))

			// FFT along z: contiguous lines in the transposed layout.
			for xl := 0; xl < xPer; xl++ {
				for y := 0; y < ny; y++ {
					line := transposed[nz*(y+ny*xl) : nz*(y+ny*xl+1)]
					fftInPlace(line)
				}
			}
			r.Compute(fftCost(nz, ny*xPer))

			// Checksum reduction at rank 0 (NAS FT verifies this way).
			var local complex128
			for i := 0; i < len(transposed); i += 7 {
				local += transposed[i]
			}
			sum := r.Reduce(0, 16, local, func(a, b any) any {
				return a.(complex128) + b.(complex128)
			})
			if id == 0 {
				checksum = sum.(complex128)
			}
		}

		// Gather the transform at rank 0 for verification.
		all := r.Gather(0, len(transposed)*16, transposed)
		if id == 0 {
			out := make([]complex128, nx*ny*nz)
			for q := 0; q < procs; q++ {
				part := all[q].([]complex128)
				for xl := 0; xl < xPer; xl++ {
					k1 := q*xPer + xl
					for k2 := 0; k2 < ny; k2++ {
						for k3 := 0; k3 < nz; k3++ {
							out[k3*ny*nx+k2*nx+k1] = part[k3+nz*(k2+ny*xl)]
						}
					}
				}
			}
			res.X = out
			res.Checksum = checksum
		}
	})
	if err != nil {
		return nil, err
	}
	res.Makespan = makespan
	return res, nil
}

// fftInPlace computes the in-place radix-2 DIT FFT of a power-of-two slice.
func fftInPlace(v []complex128) {
	n := len(v)
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			v[i], v[j] = v[j], v[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				lo, hi := start+k, start+k+half
				t := w * v[hi]
				v[hi] = v[lo] - t
				v[lo] += t
			}
		}
	}
}

// Reference computes the direct 3-D DFT for verification, indexed like
// Result.X.
func Reference(cfg Config) []complex128 {
	nx, ny, nz := cfg.NX, cfg.NY, cfg.NZ
	in := Input(cfg)
	out := make([]complex128, nx*ny*nz)
	// Transform one axis at a time with the same fast kernel (the direct
	// O(n²) triple loop is prohibitive even at 16³).
	// Axis x.
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			row := in[nx*(y+ny*z) : nx*(y+ny*z+1)]
			fftInPlace(row)
		}
	}
	// Axis y.
	buf := make([]complex128, ny)
	for z := 0; z < nz; z++ {
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				buf[y] = in[x+nx*(y+ny*z)]
			}
			fftInPlace(buf)
			for y := 0; y < ny; y++ {
				in[x+nx*(y+ny*z)] = buf[y]
			}
		}
	}
	// Axis z.
	bufZ := make([]complex128, nz)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			for z := 0; z < nz; z++ {
				bufZ[z] = in[x+nx*(y+ny*z)]
			}
			fftInPlace(bufZ)
			for z := 0; z < nz; z++ {
				in[x+nx*(y+ny*z)] = bufZ[z]
			}
		}
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				out[z*ny*nx+y*nx+x] = in[x+nx*(y+ny*z)]
			}
		}
	}
	return out
}

// ReferenceDirect computes the direct O(N²) 3-D DFT of a small field; used
// to validate Reference itself.
func ReferenceDirect(cfg Config) []complex128 {
	nx, ny, nz := cfg.NX, cfg.NY, cfg.NZ
	in := Input(cfg)
	out := make([]complex128, nx*ny*nz)
	for k3 := 0; k3 < nz; k3++ {
		for k2 := 0; k2 < ny; k2++ {
			for k1 := 0; k1 < nx; k1++ {
				var sum complex128
				for z := 0; z < nz; z++ {
					for y := 0; y < ny; y++ {
						for x := 0; x < nx; x++ {
							ang := -2 * math.Pi * (float64(k1*x)/float64(nx) +
								float64(k2*y)/float64(ny) + float64(k3*z)/float64(nz))
							sum += in[x+nx*(y+ny*z)] * cmplx.Exp(complex(0, ang))
						}
					}
				}
				out[k3*ny*nx+k2*nx+k1] = sum
			}
		}
	}
	return out
}
