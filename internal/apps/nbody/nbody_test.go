package nbody

import (
	"math"
	"testing"

	"commchar/internal/spasm"
)

func TestMatchesSequentialReferenceExactly(t *testing.T) {
	cfg := Config{Bodies: 64, Steps: 3, DT: 1e-3, Soft: 1e-2, RngSeed: 1}
	m := spasm.NewDefault(4)
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(cfg)
	for i := range want {
		for d := 0; d < 3; d++ {
			if res.Bodies[i].Pos[d] != want[i].Pos[d] {
				t.Fatalf("body %d pos[%d]: %v != %v", i, d, res.Bodies[i].Pos[d], want[i].Pos[d])
			}
			if res.Bodies[i].Vel[d] != want[i].Vel[d] {
				t.Fatalf("body %d vel[%d] differs", i, d)
			}
		}
	}
}

func TestIndependentOfProcessorCount(t *testing.T) {
	cfg := Config{Bodies: 64, Steps: 2, DT: 1e-3, Soft: 1e-2, RngSeed: 2}
	m8 := spasm.NewDefault(8)
	r8, err := Run(m8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2 := spasm.NewDefault(2)
	r2, err := Run(m2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r8.Bodies {
		for d := 0; d < 3; d++ {
			if r8.Bodies[i].Pos[d] != r2.Bodies[i].Pos[d] {
				t.Fatalf("body %d differs across processor counts", i)
			}
		}
	}
}

func TestMomentumApproximatelyConserved(t *testing.T) {
	// Softened gravity with symmetric pairwise forces conserves momentum
	// up to integration error.
	cfg := Config{Bodies: 32, Steps: 5, DT: 1e-3, Soft: 5e-2, RngSeed: 3}
	init := InitialBodies(cfg)
	final := Reference(cfg)
	var p0, p1 [3]float64
	for i := range init {
		for d := 0; d < 3; d++ {
			p0[d] += init[i].Mass * init[i].Vel[d]
			p1[d] += final[i].Mass * final[i].Vel[d]
		}
	}
	for d := 0; d < 3; d++ {
		// Not exactly conserved (forces use m_j not m_i·m_j symmetric
		// accumulation per body), so allow drift proportional to dt.
		if math.Abs(p1[d]-p0[d]) > 0.5 {
			t.Fatalf("momentum drifted: %v -> %v", p0, p1)
		}
	}
}

func TestAllToAllCommunication(t *testing.T) {
	cfg := Config{Bodies: 64, Steps: 1, DT: 1e-3, Soft: 1e-2, RngSeed: 4}
	m := spasm.NewDefault(8)
	_, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[int]bool{}
	for _, d := range m.Net.Log() {
		srcs[d.Src] = true
	}
	if len(srcs) != 8 {
		t.Fatalf("traffic from %d sources, want 8", len(srcs))
	}
	if err := m.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsIndivisibleBodies(t *testing.T) {
	m := spasm.NewDefault(4)
	if _, err := Run(m, Config{Bodies: 10, Steps: 1, DT: 1e-3, Soft: 1e-2}); err == nil {
		t.Fatal("indivisible body count accepted")
	}
}
