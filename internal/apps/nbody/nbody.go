// Package nbody implements the paper's Nbody application [17]: bodies
// moving under mutual gravitation, with a static allocation of bodies to
// processors and three phases per simulated time step — force computation
// (reading every body's position: the communication phase), position
// update (local writes), and a global-diagnostic reduction at processor 0.
package nbody

import (
	"fmt"
	"math"

	"commchar/internal/sim"
	"commchar/internal/spasm"
)

// Config sizes the problem.
type Config struct {
	Bodies  int
	Steps   int
	DT      float64
	Soft    float64 // softening length to avoid singularities
	OpTime  sim.Duration
	RngSeed uint64
}

// DefaultConfig returns the benchmark problem.
func DefaultConfig() Config {
	return Config{Bodies: 256, Steps: 2, DT: 1e-3, Soft: 1e-2, OpTime: 30 * sim.Nanosecond, RngSeed: 0xB0D7}
}

// Body is one particle's state.
type Body struct {
	Mass       float64
	Pos, Vel   [3]float64
	forceAccum [3]float64
}

// InitialBodies generates the deterministic initial condition.
func InitialBodies(cfg Config) []Body {
	st := sim.NewStream(cfg.RngSeed)
	bodies := make([]Body, cfg.Bodies)
	for i := range bodies {
		bodies[i].Mass = 0.5 + st.Float64()
		for d := 0; d < 3; d++ {
			bodies[i].Pos[d] = st.Float64()*2 - 1
			bodies[i].Vel[d] = (st.Float64()*2 - 1) * 0.1
		}
	}
	return bodies
}

// Result carries the final state.
type Result struct {
	Bodies   []Body
	Makespan sim.Time
}

// Run executes the simulation on the machine.
func Run(m *spasm.Machine, cfg Config) (*Result, error) {
	n := cfg.Bodies
	p := m.Config().Processors
	if n < p || n%p != 0 {
		return nil, fmt.Errorf("nbody: %d bodies must divide %d processors", n, p)
	}
	if cfg.OpTime <= 0 {
		cfg.OpTime = DefaultConfig().OpTime
	}

	bodies := InitialBodies(cfg)
	posArr := m.NewArray(n, 24) // one 3-vector per body
	velArr := m.NewArray(n, 24)
	massArr := m.NewArray(n, 8)
	diagArr := m.NewArray(p, 8) // per-processor kinetic energy

	diag := make([]float64, p)
	var totalKE float64
	per := n / p
	const diagLock = 0

	makespan, err := m.Run(func(e *spasm.Env) {
		id := e.ID()
		lo, hi := id*per, (id+1)*per

		// One-time: everyone reads all masses.
		for j := 0; j < n; j++ {
			e.ReadArray(massArr, j)
		}
		e.Barrier()

		for step := 0; step < cfg.Steps; step++ {
			// Phase 1: forces on owned bodies, reading every position.
			for i := lo; i < hi; i++ {
				var f [3]float64
				for j := 0; j < n; j++ {
					e.ReadArray(posArr, j)
					if j == i {
						continue
					}
					var dr [3]float64
					var r2 float64
					for d := 0; d < 3; d++ {
						dr[d] = bodies[j].Pos[d] - bodies[i].Pos[d]
						r2 += dr[d] * dr[d]
					}
					r2 += cfg.Soft * cfg.Soft
					inv := bodies[j].Mass / (r2 * math.Sqrt(r2))
					for d := 0; d < 3; d++ {
						f[d] += dr[d] * inv
					}
					e.Compute(cfg.OpTime)
				}
				bodies[i].forceAccum = f
			}
			e.Barrier()

			// Phase 2: update owned bodies.
			var ke float64
			for i := lo; i < hi; i++ {
				for d := 0; d < 3; d++ {
					bodies[i].Vel[d] += bodies[i].forceAccum[d] * cfg.DT
					bodies[i].Pos[d] += bodies[i].Vel[d] * cfg.DT
					ke += 0.5 * bodies[i].Mass * bodies[i].Vel[d] * bodies[i].Vel[d]
				}
				e.ReadArray(velArr, i)
				e.WriteArray(velArr, i)
				e.WriteArray(posArr, i)
				e.Compute(cfg.OpTime * 3)
			}
			diag[id] = ke
			e.WriteArray(diagArr, id)
			e.Barrier()

			// Phase 3: processor 0 reduces the diagnostic.
			if id == 0 {
				e.Lock(diagLock)
				var sum float64
				for q := 0; q < p; q++ {
					e.ReadArray(diagArr, q)
					sum += diag[q]
					e.Compute(cfg.OpTime)
				}
				totalKE = sum
				e.Unlock(diagLock)
			}
			e.Barrier()
		}
	})
	if err != nil {
		return nil, err
	}
	_ = totalKE
	return &Result{Bodies: bodies, Makespan: makespan}, nil
}

// Reference runs the identical physics sequentially, for verification. The
// arithmetic order matches Run exactly, so results agree bit-for-bit.
func Reference(cfg Config) []Body {
	n := cfg.Bodies
	bodies := InitialBodies(cfg)
	for step := 0; step < cfg.Steps; step++ {
		for i := 0; i < n; i++ {
			var f [3]float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				var dr [3]float64
				var r2 float64
				for d := 0; d < 3; d++ {
					dr[d] = bodies[j].Pos[d] - bodies[i].Pos[d]
					r2 += dr[d] * dr[d]
				}
				r2 += cfg.Soft * cfg.Soft
				inv := bodies[j].Mass / (r2 * math.Sqrt(r2))
				for d := 0; d < 3; d++ {
					f[d] += dr[d] * inv
				}
			}
			bodies[i].forceAccum = f
		}
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				bodies[i].Vel[d] += bodies[i].forceAccum[d] * cfg.DT
				bodies[i].Pos[d] += bodies[i].Vel[d] * cfg.DT
			}
		}
	}
	return bodies
}
