package apps

import (
	"testing"

	"commchar/internal/core"
)

func TestSuiteComposition(t *testing.T) {
	suite := Suite(ScaleSmall)
	if len(suite) != 7 {
		t.Fatalf("suite has %d workloads, want 7", len(suite))
	}
	var dyn, stat int
	for _, w := range suite {
		switch w.Strategy {
		case core.StrategyDynamic:
			dyn++
		case core.StrategyStatic:
			stat++
		}
		if w.Name == "" || w.Description == "" || w.Characterize == nil {
			t.Fatalf("incomplete workload %+v", w)
		}
	}
	if dyn != 5 || stat != 2 {
		t.Fatalf("strategy split %d/%d, want 5/2 as in the paper", dyn, stat)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName(ScaleSmall, "IS"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName(ScaleSmall, "nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestEveryWorkloadCharacterizesSmall(t *testing.T) {
	for _, w := range Suite(ScaleSmall) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			procs := 8
			c, err := w.Characterize(procs)
			if err != nil {
				t.Fatal(err)
			}
			if c.Messages == 0 {
				t.Fatal("no messages")
			}
			if c.Strategy != w.Strategy {
				t.Fatalf("strategy %s, want %s", c.Strategy, w.Strategy)
			}
			if c.BestAggregate() == nil {
				t.Fatal("no aggregate temporal fit")
			}
			if c.Volume.Total != c.Messages {
				t.Fatalf("volume total %d != messages %d", c.Volume.Total, c.Messages)
			}
			// Every source that sent anything has a spatial record.
			active := 0
			for _, s := range c.Spatial {
				if s.Total > 0 {
					active++
				}
			}
			if active < procs/2 {
				t.Fatalf("only %d active sources", active)
			}
		})
	}
}
