// Package fft1d implements the paper's 1D-FFT shared-memory application
// [8]: a 1-dimensional complex Fast Fourier Transform in three phases.
// In the first and last phase each processor performs radix-2 butterfly
// computation on locally-owned data; the middle phase is a transpose, the
// only communication phase.
//
// The implementation is the four-step FFT: the N-point sequence is viewed
// as an n1×n2 matrix; phase 1 computes the n1-point DFT of each owned
// column and applies twiddle factors, phase 2 transposes ownership from
// columns to rows (shared-memory reads of remote data), and phase 3
// computes the n2-point DFT of each owned row.
package fft1d

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"commchar/internal/sim"
	"commchar/internal/spasm"
)

// Config sizes the problem.
type Config struct {
	Points int // total FFT size, a power of four (so n1 = n2 = sqrt(N))
	// FlopTime is the charged cost of one complex butterfly operation.
	FlopTime sim.Duration
}

// DefaultConfig returns the benchmark problem: 16384 points.
func DefaultConfig() Config {
	return Config{Points: 16384, FlopTime: 50 * sim.Nanosecond}
}

// Result carries the computed transform and run metadata.
type Result struct {
	Output   []complex128 // X[k], natural order
	Makespan sim.Time
}

// Run executes the FFT on the machine and returns the verified-ready result.
func Run(m *spasm.Machine, cfg Config) (*Result, error) {
	n := cfg.Points
	if n < 4 || bits.OnesCount(uint(n)) != 1 || bits.TrailingZeros(uint(n))%2 != 0 {
		return nil, fmt.Errorf("fft1d: %d points (need a power of four)", n)
	}
	p := m.Config().Processors
	n1 := 1 << (bits.TrailingZeros(uint(n)) / 2) // rows
	n2 := n / n1                                 // columns
	if n2 < p || n1 < p {
		return nil, fmt.Errorf("fft1d: %d points too small for %d processors", n, p)
	}
	if cfg.FlopTime <= 0 {
		cfg.FlopTime = DefaultConfig().FlopTime
	}

	// Input signal: a deterministic pseudo-random sequence.
	x := make([]complex128, n)
	st := sim.NewStream(0xFF7)
	for i := range x {
		x[i] = complex(st.Float64()*2-1, st.Float64()*2-1)
	}

	// Shared matrices. A holds the working matrix in column-major order
	// (a column is contiguous: element (l1, l2) at l2*n1 + l1), so phase 1
	// walks locally-owned lines. C holds the transposed, row-major result
	// (element (k1, l2) at k1*n2 + l2) for phase 3.
	const elemBytes = 16 // one complex128
	aArr := m.NewArray(n, elemBytes)
	cArr := m.NewArray(n, elemBytes)

	// Real data mirrors the shared arrays.
	a := make([]complex128, n) // column-major working data
	c := make([]complex128, n) // row-major transposed data
	for l1 := 0; l1 < n1; l1++ {
		for l2 := 0; l2 < n2; l2++ {
			a[l2*n1+l1] = x[l1*n2+l2] // input element x[l1*n2+l2]
		}
	}

	out := make([]complex128, n)
	fftCost := func(size int) sim.Duration {
		return cfg.FlopTime * sim.Duration(size*bits.TrailingZeros(uint(size)))
	}

	makespan, err := m.Run(func(e *spasm.Env) {
		id, np := e.ID(), e.N()

		// Phase 1: DFT down each owned column (over l1), then twiddle.
		colLo, colHi := id*n2/np, (id+1)*n2/np
		for l2 := colLo; l2 < colHi; l2++ {
			col := a[l2*n1 : (l2+1)*n1]
			for l1 := 0; l1 < n1; l1++ {
				e.ReadArray(aArr, l2*n1+l1)
			}
			fftInPlace(col)
			e.Compute(fftCost(n1))
			for k1 := 0; k1 < n1; k1++ {
				// Twiddle: multiply by w_n^{k1*l2}.
				ang := -2 * math.Pi * float64(k1) * float64(l2) / float64(n)
				col[k1] *= cmplx.Exp(complex(0, ang))
				e.WriteArray(aArr, l2*n1+k1)
			}
			e.Compute(cfg.FlopTime * sim.Duration(n1))
		}
		e.Barrier()

		// Phase 2: transpose — each processor gathers its rows k1,
		// reading every column owner's data (the communication phase).
		rowLo, rowHi := id*n1/np, (id+1)*n1/np
		for k1 := rowLo; k1 < rowHi; k1++ {
			for l2 := 0; l2 < n2; l2++ {
				e.ReadArray(aArr, l2*n1+k1)
				c[k1*n2+l2] = a[l2*n1+k1]
				e.WriteArray(cArr, k1*n2+l2)
			}
		}
		e.Barrier()

		// Phase 3: DFT along each owned row (over l2).
		for k1 := rowLo; k1 < rowHi; k1++ {
			row := c[k1*n2 : (k1+1)*n2]
			for l2 := 0; l2 < n2; l2++ {
				e.ReadArray(cArr, k1*n2+l2)
			}
			fftInPlace(row)
			e.Compute(fftCost(n2))
			for k2 := 0; k2 < n2; k2++ {
				out[k2*n1+k1] = row[k2]
				e.WriteArray(cArr, k1*n2+k2)
			}
		}
		e.Barrier()
	})
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Makespan: makespan}, nil
}

// fftInPlace computes the in-place radix-2 DIT FFT of a power-of-two slice.
func fftInPlace(v []complex128) {
	n := len(v)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			v[i], v[j] = v[j], v[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				lo, hi := start+k, start+k+half
				t := w * v[hi]
				v[hi] = v[lo] - t
				v[lo] += t
			}
		}
	}
}

// Reference computes the direct O(n²) DFT, for verification.
func Reference(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for l := 0; l < n; l++ {
			ang := -2 * math.Pi * float64(k) * float64(l) / float64(n)
			sum += x[l] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

// Input regenerates the deterministic input signal Run uses, so tests can
// verify the transform.
func Input(n int) []complex128 {
	x := make([]complex128, n)
	st := sim.NewStream(0xFF7)
	for i := range x {
		x[i] = complex(st.Float64()*2-1, st.Float64()*2-1)
	}
	return x
}
