package fft1d

import (
	"math"
	"math/cmplx"
	"testing"

	"commchar/internal/spasm"
)

func TestFFTInPlaceMatchesReference(t *testing.T) {
	x := Input(64)
	got := append([]complex128(nil), x...)
	fftInPlace(got)
	want := Reference(x)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("fft[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestParallelFFTCorrect(t *testing.T) {
	m := spasm.NewDefault(4)
	cfg := Config{Points: 256}
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(Input(256))
	for i := range want {
		if cmplx.Abs(res.Output[i]-want[i]) > 1e-6 {
			t.Fatalf("X[%d] = %v, want %v", i, res.Output[i], want[i])
		}
	}
	if res.Makespan <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestParallelFFTCorrectOn16(t *testing.T) {
	m := spasm.NewDefault(16)
	res, err := Run(m, Config{Points: 1024})
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(Input(1024))
	var maxErr float64
	for i := range want {
		if e := cmplx.Abs(res.Output[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-6 {
		t.Fatalf("max error %v", maxErr)
	}
}

func TestGeneratesCommunication(t *testing.T) {
	m := spasm.NewDefault(8)
	_, err := Run(m, Config{Points: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if m.Net.Delivered() == 0 {
		t.Fatal("FFT produced no network traffic")
	}
	if err := m.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The transpose phase makes every processor read every other
	// processor's columns: all pairs should have communicated via their
	// home nodes. Check traffic is spread over many sources.
	bySource := map[int]int{}
	for _, d := range m.Net.Log() {
		bySource[d.Src]++
	}
	if len(bySource) < 8 {
		t.Fatalf("traffic from only %d sources", len(bySource))
	}
}

func TestRejectsBadSizes(t *testing.T) {
	m := spasm.NewDefault(4)
	for _, n := range []int{0, 100, 512 /* power of two but not four */} {
		if _, err := Run(m, Config{Points: n}); err == nil {
			t.Fatalf("size %d accepted", n)
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// Parseval: sum |x|² = (1/N) sum |X|².
	m := spasm.NewDefault(4)
	res, err := Run(m, Config{Points: 256})
	if err != nil {
		t.Fatal(err)
	}
	x := Input(256)
	var ein, eout float64
	for i := range x {
		ein += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		eout += real(res.Output[i])*real(res.Output[i]) + imag(res.Output[i])*imag(res.Output[i])
	}
	if math.Abs(ein-eout/256)/ein > 1e-9 {
		t.Fatalf("Parseval violated: %v vs %v", ein, eout/256)
	}
}
