package mg

import (
	"math"
	"testing"

	"commchar/internal/mesh"
	"commchar/internal/mp"
	"commchar/internal/sim"
	"commchar/internal/trace"
)

func TestResidualDecreases(t *testing.T) {
	cfg := Config{N: 16, Cycles: 4, PreSmooth: 2, PostSmooth: 2, CoarseSmooth: 40, RngSeed: 1}
	const procs = 4
	w := mp.NewWorld(mp.DefaultConfig(procs))
	res, err := Run(w, cfg, procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Norms) != cfg.Cycles+1 {
		t.Fatalf("norm history length %d", len(res.Norms))
	}
	for i := 1; i < len(res.Norms); i++ {
		if res.Norms[i] >= res.Norms[i-1] {
			t.Fatalf("residual did not decrease at cycle %d: %v", i, res.Norms)
		}
	}
	if res.Norms[len(res.Norms)-1] > 0.35*res.Norms[0] {
		t.Fatalf("weak convergence: %v", res.Norms)
	}
}

func TestMatchesSingleRank(t *testing.T) {
	// Pin the hierarchy depth with CoarsestN so every decomposition does
	// the same arithmetic.
	cfg := Config{N: 16, Cycles: 3, PreSmooth: 2, PostSmooth: 2, CoarseSmooth: 30, CoarsestN: 8, RngSeed: 2}
	run := func(procs int) []float64 {
		w := mp.NewWorld(mp.DefaultConfig(procs))
		res, err := Run(w, cfg, procs)
		if err != nil {
			t.Fatalf("%d procs: %v", procs, err)
		}
		return res.Norms
	}
	one := run(1)
	two := run(2)
	four := run(4)
	for i := range one {
		if math.Abs(one[i]-four[i]) > 1e-9*one[0] || math.Abs(one[i]-two[i]) > 1e-9*one[0] {
			t.Fatalf("norms diverge across decompositions: %v vs %v vs %v", one, two, four)
		}
	}
}

func TestNearestNeighbourPattern(t *testing.T) {
	cfg := Config{N: 16, Cycles: 2, PreSmooth: 2, PostSmooth: 2, CoarseSmooth: 10, RngSeed: 3}
	const procs = 8
	w := mp.NewWorld(mp.DefaultConfig(procs))
	if _, err := Run(w, cfg, procs); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ghost exchanges dominate: most point-to-point bytes go to the two
	// z-neighbours.
	for src := 0; src < procs; src++ {
		bytesTo := map[int]int{}
		for _, e := range tr.Events[src] {
			if e.Op == trace.OpSend {
				bytesTo[e.Peer] += e.Bytes
			}
		}
		up, down := (src+1)%procs, (src-1+procs)%procs
		neighbour := bytesTo[up] + bytesTo[down]
		var rest int
		for p, b := range bytesTo {
			if p != up && p != down {
				rest += b
			}
		}
		if neighbour <= rest {
			t.Fatalf("rank %d: neighbour bytes %d <= other bytes %d", src, neighbour, rest)
		}
	}
}

func TestMessageSizesAreLevelDependent(t *testing.T) {
	cfg := Config{N: 16, Cycles: 1, PreSmooth: 1, PostSmooth: 1, CoarseSmooth: 4, RngSeed: 4}
	const procs = 4
	w := mp.NewWorld(mp.DefaultConfig(procs))
	if _, err := Run(w, cfg, procs); err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	for _, seq := range w.Trace().Events {
		for _, e := range seq {
			if e.Op == trace.OpSend && e.Bytes > 64 {
				sizes[e.Bytes] = true
			}
		}
	}
	// 16³ with 4 ranks coarsens to 8³: at least two plane sizes
	// (16²·8 = 2048B and 8²·8 = 512B).
	if !sizes[2048] || !sizes[512] {
		t.Fatalf("plane sizes seen: %v", sizes)
	}
}

func TestTraceReplays(t *testing.T) {
	cfg := Config{N: 16, Cycles: 2, PreSmooth: 1, PostSmooth: 1, CoarseSmooth: 4, RngSeed: 5}
	const procs = 8
	w := mp.NewWorld(mp.DefaultConfig(procs))
	if _, err := Run(w, cfg, procs); err != nil {
		t.Fatal(err)
	}
	tr := w.Trace()
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(4, 2))
	if err := trace.Replay(s, net, tr, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if int(net.Delivered()) != tr.Messages() {
		t.Fatalf("replayed %d of %d", net.Delivered(), tr.Messages())
	}
}

func TestRejectsBadGeometry(t *testing.T) {
	w := mp.NewWorld(mp.DefaultConfig(4))
	if _, err := Run(w, Config{N: 12, Cycles: 1}, 4); err == nil {
		t.Fatal("non-power-of-two grid accepted")
	}
	w2 := mp.NewWorld(mp.DefaultConfig(3))
	if _, err := Run(w2, Config{N: 16, Cycles: 1}, 3); err == nil {
		t.Fatal("non-power-of-two ranks accepted")
	}
	w3 := mp.NewWorld(mp.DefaultConfig(16))
	if _, err := Run(w3, Config{N: 16, Cycles: 1}, 16); err == nil {
		t.Fatal("one-plane-per-rank grid accepted")
	}
}

func TestRHSZeroMean(t *testing.T) {
	f := RHS(Config{N: 8, RngSeed: 6})
	var sum float64
	for _, v := range f {
		sum += v
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("RHS mean = %v", sum/float64(len(f)))
	}
}
