// Package mg implements the paper's MG message-passing application: the NAS
// multigrid benchmark [15], a simple multigrid V-cycle solver computing a
// three-dimensional potential field (constant-coefficient Poisson equation
// on a uniform cubical grid with periodic boundaries). It requires a
// power-of-two number of processors. The grid is decomposed in z-planes;
// every stencil sweep exchanges ghost planes with the two z-neighbours, so
// the communication is nearest-neighbour dominated with large, level-
// dependent message sizes, plus a residual-norm reduction rooted at rank 0.
package mg

import (
	"fmt"
	"math"
	"math/bits"

	"commchar/internal/mp"
	"commchar/internal/sim"
)

// Config sizes the problem.
type Config struct {
	N                                   int // finest grid dimension (n³ points), power of two
	Cycles                              int // V-cycles to run
	PreSmooth, PostSmooth, CoarseSmooth int
	// CoarsestN stops coarsening at this grid size (default 4). The
	// hierarchy also stops when a rank would own fewer than two planes,
	// so runs being compared across decompositions should set CoarsestN
	// to pin the hierarchy depth.
	CoarsestN int
	FlopTime  sim.Duration
	RngSeed   uint64
}

// DefaultConfig returns the benchmark problem.
func DefaultConfig() Config {
	return Config{
		N: 32, Cycles: 4,
		PreSmooth: 2, PostSmooth: 2, CoarseSmooth: 40,
		FlopTime: 10 * sim.Nanosecond, RngSeed: 0x36,
	}
}

// Result carries the convergence history.
type Result struct {
	// Norms[i] is the L2 residual norm after i V-cycles (Norms[0] is the
	// initial norm).
	Norms    []float64
	Makespan sim.Time
}

// level is one rank's slab at one grid level.
type level struct {
	n     int // global dimension
	nzLoc int // owned planes
	u     []float64
	rhs   []float64
	res   []float64
	tmp   []float64
}

func (l *level) idx(z, y, x int) int { return x + l.n*(y+l.n*z) }

func newLevel(n, nzLoc int) *level {
	size := (nzLoc + 2) * n * n
	return &level{
		n: n, nzLoc: nzLoc,
		u: make([]float64, size), rhs: make([]float64, size),
		res: make([]float64, size), tmp: make([]float64, size),
	}
}

// RHS regenerates the deterministic zero-mean right-hand side.
func RHS(cfg Config) []float64 {
	n := cfg.N
	st := sim.NewStream(cfg.RngSeed)
	f := make([]float64, n*n*n)
	var mean float64
	for i := range f {
		f[i] = st.Float64()*2 - 1
		mean += f[i]
	}
	mean /= float64(len(f))
	for i := range f {
		f[i] -= mean
	}
	return f
}

// Run executes the solver on the world with the given rank count.
func Run(w *mp.World, cfg Config, procs int) (*Result, error) {
	if cfg.N < 4 || bits.OnesCount(uint(cfg.N)) != 1 {
		return nil, fmt.Errorf("mg: grid %d must be a power of two >= 4", cfg.N)
	}
	if bits.OnesCount(uint(procs)) != 1 {
		return nil, fmt.Errorf("mg: %d processors (power of two required)", procs)
	}
	if cfg.N/procs < 2 {
		return nil, fmt.Errorf("mg: grid %d too small for %d processors", cfg.N, procs)
	}
	if cfg.Cycles < 1 {
		cfg.Cycles = 1
	}
	if cfg.FlopTime <= 0 {
		cfg.FlopTime = DefaultConfig().FlopTime
	}
	if cfg.CoarsestN < 4 {
		cfg.CoarsestN = 4
	}
	rhs := RHS(cfg)

	res := &Result{}
	makespan, err := w.Run(func(r *mp.Rank) {
		s := &solver{r: r, cfg: cfg, procs: procs}
		// Build the level hierarchy: coarsen while each rank keeps at
		// least two whole planes (restriction needs plane pairs).
		for n := cfg.N; n >= cfg.CoarsestN && n/procs >= 2; n /= 2 {
			s.levels = append(s.levels, newLevel(n, n/procs))
		}
		// Load the owned slab of the RHS.
		f := s.levels[0]
		for zl := 1; zl <= f.nzLoc; zl++ {
			z := r.ID()*f.nzLoc + zl - 1
			for y := 0; y < f.n; y++ {
				for x := 0; x < f.n; x++ {
					f.rhs[f.idx(zl, y, x)] = rhs[x+cfg.N*(y+cfg.N*z)]
				}
			}
		}

		norms := []float64{s.residualNorm(0)}
		for c := 0; c < cfg.Cycles; c++ {
			s.vcycle(0)
			norms = append(norms, s.residualNorm(0))
		}
		if r.ID() == 0 {
			res.Norms = norms
		}
	})
	if err != nil {
		return nil, err
	}
	res.Makespan = makespan
	return res, nil
}

type solver struct {
	r      *mp.Rank
	cfg    Config
	procs  int
	levels []*level
}

// exchange refreshes the ghost planes of the given field at level li.
func (s *solver) exchange(li int, field []float64) {
	l := s.levels[li]
	r := s.r
	plane := l.n * l.n
	if s.procs == 1 {
		// Periodic wrap within the single rank.
		copy(field[0:plane], field[l.nzLoc*plane:(l.nzLoc+1)*plane])
		copy(field[(l.nzLoc+1)*plane:(l.nzLoc+2)*plane], field[plane:2*plane])
		return
	}
	up := (r.ID() + 1) % s.procs
	down := (r.ID() - 1 + s.procs) % s.procs
	tagUp, tagDown := 2*li, 2*li+1
	bytes := plane * 8

	// Copy-out keeps payloads stable while in flight.
	top := append([]float64(nil), field[l.nzLoc*plane:(l.nzLoc+1)*plane]...)
	bottom := append([]float64(nil), field[plane:2*plane]...)
	r.Send(up, tagUp, bytes, top)        // my top plane: up's bottom ghost
	r.Send(down, tagDown, bytes, bottom) // my bottom plane: down's top ghost
	_, fromDown := r.Recv(down, tagUp)   // down's top plane: my bottom ghost
	_, fromUp := r.Recv(up, tagDown)     // up's bottom plane: my top ghost
	copy(field[0:plane], fromDown.([]float64))
	copy(field[(l.nzLoc+1)*plane:(l.nzLoc+2)*plane], fromUp.([]float64))
}

// smooth performs one weighted-Jacobi sweep on level li.
func (s *solver) smooth(li int) {
	l := s.levels[li]
	s.exchange(li, l.u)
	const omega = 0.8
	n := l.n
	for z := 1; z <= l.nzLoc; z++ {
		for y := 0; y < n; y++ {
			ym, yp := (y-1+n)%n, (y+1)%n
			for x := 0; x < n; x++ {
				xm, xp := (x-1+n)%n, (x+1)%n
				nb := l.u[l.idx(z, y, xm)] + l.u[l.idx(z, y, xp)] +
					l.u[l.idx(z, ym, x)] + l.u[l.idx(z, yp, x)] +
					l.u[l.idx(z-1, y, x)] + l.u[l.idx(z+1, y, x)]
				jac := (l.rhs[l.idx(z, y, x)] + nb) / 6
				l.tmp[l.idx(z, y, x)] = (1-omega)*l.u[l.idx(z, y, x)] + omega*jac
			}
		}
	}
	interior := l.n * l.n
	copy(l.u[interior:(l.nzLoc+1)*interior], l.tmp[interior:(l.nzLoc+1)*interior])
	s.r.Compute(s.cfg.FlopTime * sim.Duration(8*l.nzLoc*n*n))
}

// residual computes res = rhs - A·u on level li (A = -∇², 7-point).
func (s *solver) residual(li int) {
	l := s.levels[li]
	s.exchange(li, l.u)
	n := l.n
	for z := 1; z <= l.nzLoc; z++ {
		for y := 0; y < n; y++ {
			ym, yp := (y-1+n)%n, (y+1)%n
			for x := 0; x < n; x++ {
				xm, xp := (x-1+n)%n, (x+1)%n
				nb := l.u[l.idx(z, y, xm)] + l.u[l.idx(z, y, xp)] +
					l.u[l.idx(z, ym, x)] + l.u[l.idx(z, yp, x)] +
					l.u[l.idx(z-1, y, x)] + l.u[l.idx(z+1, y, x)]
				au := 6*l.u[l.idx(z, y, x)] - nb
				l.res[l.idx(z, y, x)] = l.rhs[l.idx(z, y, x)] - au
			}
		}
	}
	s.r.Compute(s.cfg.FlopTime * sim.Duration(8*l.nzLoc*n*n))
}

// residualNorm returns the global L2 norm of the residual at level li
// (all ranks receive it via allreduce).
func (s *solver) residualNorm(li int) float64 {
	s.residual(li)
	l := s.levels[li]
	var local float64
	for z := 1; z <= l.nzLoc; z++ {
		for y := 0; y < l.n; y++ {
			for x := 0; x < l.n; x++ {
				v := l.res[l.idx(z, y, x)]
				local += v * v
			}
		}
	}
	sum := s.r.Allreduce(8, local, func(a, b any) any { return a.(float64) + b.(float64) })
	return math.Sqrt(sum.(float64))
}

// restrict averages 2×2×2 fine residual cells into the coarse RHS.
func (s *solver) restrictTo(li int) {
	fine, coarse := s.levels[li], s.levels[li+1]
	for i := range coarse.u {
		coarse.u[i] = 0
		coarse.rhs[i] = 0
	}
	nC := coarse.n
	for zc := 1; zc <= coarse.nzLoc; zc++ {
		zf := 2*zc - 1 // fine local plane of the first child
		for yc := 0; yc < nC; yc++ {
			for xc := 0; xc < nC; xc++ {
				var sum float64
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							sum += fine.res[fine.idx(zf+dz, 2*yc+dy, 2*xc+dx)]
						}
					}
				}
				// Scale by 4: restriction averaging (1/8) times the h²
				// factor between grids (×4 for -∇² with h_c = 2h_f),
				// folded into one constant since h is unit at the finest
				// level and only ratios matter for convergence.
				coarse.rhs[coarse.idx(zc, yc, xc)] = sum / 2
			}
		}
	}
	s.r.Compute(s.cfg.FlopTime * sim.Duration(coarse.nzLoc*nC*nC*8))
}

// prolong adds the piecewise-constant interpolation of the coarse
// correction into the fine solution.
func (s *solver) prolong(li int) {
	fine, coarse := s.levels[li], s.levels[li+1]
	nC := coarse.n
	for zc := 1; zc <= coarse.nzLoc; zc++ {
		zf := 2*zc - 1
		for yc := 0; yc < nC; yc++ {
			for xc := 0; xc < nC; xc++ {
				v := coarse.u[coarse.idx(zc, yc, xc)]
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							fine.u[fine.idx(zf+dz, 2*yc+dy, 2*xc+dx)] += v
						}
					}
				}
			}
		}
	}
	s.r.Compute(s.cfg.FlopTime * sim.Duration(coarse.nzLoc*nC*nC*8))
}

// vcycle runs one V-cycle rooted at level li.
func (s *solver) vcycle(li int) {
	if li == len(s.levels)-1 {
		for i := 0; i < s.cfg.CoarseSmooth; i++ {
			s.smooth(li)
		}
		return
	}
	for i := 0; i < s.cfg.PreSmooth; i++ {
		s.smooth(li)
	}
	s.residual(li)
	s.restrictTo(li)
	s.vcycle(li + 1)
	s.prolong(li)
	for i := 0; i < s.cfg.PostSmooth; i++ {
		s.smooth(li)
	}
}
