// Package maxflow implements the paper's Maxflow application [26]: finding
// the maximum flow from a source to a sink in a directed graph with
// Goldberg's push-relabel algorithm. Active nodes are discharged from a
// lock-protected shared work queue, so the communication pattern is
// data-dependent and lock-heavy — the dynamic end of the paper's
// application spectrum.
//
// Graph mutation during a discharge is serialized by a global graph lock
// (a simplification of per-node locking that preserves both correctness
// and the hot-spot synchronization traffic the characterization measures).
package maxflow

import (
	"fmt"

	"commchar/internal/sim"
	"commchar/internal/spasm"
)

// Edge is one directed edge in the residual representation; edge i and
// edge i^1 are a forward/reverse pair.
type Edge struct {
	To  int
	Cap int64
}

// Graph is a flow network.
type Graph struct {
	N      int
	Edges  []Edge  // pairs: Edges[i^1] is the reverse of Edges[i]
	Adj    [][]int // adjacency lists of edge indices
	Source int
	Sink   int
}

// AddEdge inserts a forward edge and its zero-capacity reverse.
func (g *Graph) AddEdge(u, v int, cap int64) {
	g.Adj[u] = append(g.Adj[u], len(g.Edges))
	g.Edges = append(g.Edges, Edge{To: v, Cap: cap})
	g.Adj[v] = append(g.Adj[v], len(g.Edges))
	g.Edges = append(g.Edges, Edge{To: u, Cap: 0})
}

// Config sizes the generated problem.
type Config struct {
	Layers  int
	Width   int
	OpTime  sim.Duration
	RngSeed uint64
}

// DefaultConfig returns the benchmark problem.
func DefaultConfig() Config {
	return Config{Layers: 10, Width: 12, OpTime: 30 * sim.Nanosecond, RngSeed: 0xF10}
}

// Generate builds a layered random network: source → layer 0 → … →
// layer L-1 → sink, with a few skip edges for irregularity.
func Generate(cfg Config) *Graph {
	st := sim.NewStream(cfg.RngSeed)
	n := cfg.Layers*cfg.Width + 2
	g := &Graph{N: n, Adj: make([][]int, n), Source: 0, Sink: n - 1}
	node := func(layer, i int) int { return 1 + layer*cfg.Width + i }
	for i := 0; i < cfg.Width; i++ {
		g.AddEdge(g.Source, node(0, i), int64(5+st.IntN(20)))
	}
	for l := 0; l < cfg.Layers-1; l++ {
		for i := 0; i < cfg.Width; i++ {
			outs := 2 + st.IntN(2)
			for k := 0; k < outs; k++ {
				g.AddEdge(node(l, i), node(l+1, st.IntN(cfg.Width)), int64(1+st.IntN(15)))
			}
			if st.Float64() < 0.1 && l+2 < cfg.Layers {
				g.AddEdge(node(l, i), node(l+2, st.IntN(cfg.Width)), int64(1+st.IntN(10)))
			}
		}
	}
	for i := 0; i < cfg.Width; i++ {
		g.AddEdge(node(cfg.Layers-1, i), g.Sink, int64(5+st.IntN(20)))
	}
	return g
}

// Result carries the flow value.
type Result struct {
	Flow     int64
	Makespan sim.Time
	Pushes   int64
	Relabels int64
}

// Lock identifiers.
const (
	queueLock = 0
	graphLock = 1
)

// Run computes the maximum flow on the machine.
func Run(m *spasm.Machine, g *Graph, opTime sim.Duration) (*Result, error) {
	if g.N < 4 {
		return nil, fmt.Errorf("maxflow: %d nodes too small", g.N)
	}
	if opTime <= 0 {
		opTime = DefaultConfig().OpTime
	}

	// Shared state (the algorithm's data plane).
	excessArr := m.NewArray(g.N, 8)
	heightArr := m.NewArray(g.N, 8)
	flowArr := m.NewArray(len(g.Edges), 8)

	excess := make([]int64, g.N)
	height := make([]int, g.N)
	flow := make([]int64, len(g.Edges))
	arc := make([]int, g.N)

	// Initialize: saturate source edges.
	height[g.Source] = g.N
	var queue []int
	inQueue := make([]bool, g.N)
	for _, ei := range g.Adj[g.Source] {
		e := g.Edges[ei]
		if e.Cap > 0 {
			flow[ei] = e.Cap
			flow[ei^1] = -e.Cap
			excess[e.To] += e.Cap
			excess[g.Source] -= e.Cap
			if e.To != g.Sink && !inQueue[e.To] {
				queue = append(queue, e.To)
				inQueue[e.To] = true
			}
		}
	}
	inProgress := 0
	var pushes, relabels int64

	makespan, err := m.Run(func(e *spasm.Env) {
		for {
			e.Lock(queueLock)
			if len(queue) == 0 {
				if inProgress == 0 {
					e.Unlock(queueLock)
					return
				}
				e.Unlock(queueLock)
				e.Compute(500 * sim.Nanosecond)
				continue
			}
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			inProgress++
			e.Unlock(queueLock)

			// Discharge u under the graph lock.
			var activated []int
			e.Lock(graphLock)
			e.ReadArray(excessArr, u)
			e.ReadArray(heightArr, u)
			for excess[u] > 0 {
				if arc[u] == len(g.Adj[u]) {
					// Relabel: 1 + min height over residual edges.
					minH := 1 << 30
					for _, ei := range g.Adj[u] {
						e.ReadArray(flowArr, ei)
						if g.Edges[ei].Cap-flow[ei] > 0 {
							e.ReadArray(heightArr, g.Edges[ei].To)
							if h := height[g.Edges[ei].To]; h < minH {
								minH = h
							}
						}
						e.Compute(opTime)
					}
					if minH == 1<<30 {
						break // no residual edges: excess is stuck
					}
					height[u] = minH + 1
					e.WriteArray(heightArr, u)
					arc[u] = 0
					relabels++
					continue
				}
				ei := g.Adj[u][arc[u]]
				ed := g.Edges[ei]
				e.ReadArray(flowArr, ei)
				e.ReadArray(heightArr, ed.To)
				res := ed.Cap - flow[ei]
				if res > 0 && height[u] == height[ed.To]+1 {
					// Push.
					delta := excess[u]
					if res < delta {
						delta = res
					}
					flow[ei] += delta
					flow[ei^1] -= delta
					excess[u] -= delta
					excess[ed.To] += delta
					e.WriteArray(flowArr, ei)
					e.WriteArray(flowArr, ei^1)
					e.WriteArray(excessArr, u)
					e.WriteArray(excessArr, ed.To)
					pushes++
					if ed.To != g.Source && ed.To != g.Sink && !inQueue[ed.To] {
						activated = append(activated, ed.To)
						inQueue[ed.To] = true
					}
				} else {
					arc[u]++
				}
				e.Compute(opTime)
			}
			e.Unlock(graphLock)

			e.Lock(queueLock)
			queue = append(queue, activated...)
			inProgress--
			e.Unlock(queueLock)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{Flow: excess[g.Sink], Makespan: makespan, Pushes: pushes, Relabels: relabels}, nil
}

// Reference computes the maximum flow with Edmonds-Karp on a private copy,
// for verification.
func Reference(g *Graph) int64 {
	flow := make([]int64, len(g.Edges))
	var total int64
	for {
		// BFS for a shortest augmenting path.
		parent := make([]int, g.N) // edge index into each node, -1 unset
		for i := range parent {
			parent[i] = -1
		}
		qu := []int{g.Source}
		found := false
		for len(qu) > 0 && !found {
			u := qu[0]
			qu = qu[1:]
			for _, ei := range g.Adj[u] {
				ed := g.Edges[ei]
				if ed.Cap-flow[ei] > 0 && parent[ed.To] == -1 && ed.To != g.Source {
					parent[ed.To] = ei
					if ed.To == g.Sink {
						found = true
						break
					}
					qu = append(qu, ed.To)
				}
			}
		}
		if !found {
			return total
		}
		// Bottleneck.
		var aug int64 = 1 << 62
		for v := g.Sink; v != g.Source; {
			ei := parent[v]
			if r := g.Edges[ei].Cap - flow[ei]; r < aug {
				aug = r
			}
			v = g.Edges[ei^1].To
		}
		for v := g.Sink; v != g.Source; {
			ei := parent[v]
			flow[ei] += aug
			flow[ei^1] -= aug
			v = g.Edges[ei^1].To
		}
		total += aug
	}
}
