package maxflow

import (
	"testing"
	"testing/quick"

	"commchar/internal/spasm"
)

func TestTinyHandGraph(t *testing.T) {
	// s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (5).
	g := &Graph{N: 4, Adj: make([][]int, 4), Source: 0, Sink: 3}
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 2, 2)
	g.AddEdge(1, 3, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(1, 2, 5)
	if f := Reference(g); f != 5 {
		t.Fatalf("reference flow = %d, want 5", f)
	}
	m := spasm.NewDefault(2)
	res, err := Run(m, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 {
		t.Fatalf("push-relabel flow = %d, want 5", res.Flow)
	}
}

func TestGeneratedGraphMatchesReference(t *testing.T) {
	g := Generate(Config{Layers: 6, Width: 6, RngSeed: 11})
	want := Reference(g)
	if want <= 0 {
		t.Fatalf("degenerate test graph (flow %d)", want)
	}
	m := spasm.NewDefault(8)
	res, err := Run(m, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != want {
		t.Fatalf("flow = %d, want %d", res.Flow, want)
	}
	if res.Pushes == 0 {
		t.Fatal("no pushes recorded")
	}
}

func TestMatchesReferenceProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		g := Generate(Config{Layers: 4, Width: 4, RngSeed: seed})
		m := spasm.NewDefault(4)
		res, err := Run(m, g, 0)
		if err != nil {
			return false
		}
		return res.Flow == Reference(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestIndependentOfProcessorCount(t *testing.T) {
	g := Generate(Config{Layers: 5, Width: 5, RngSeed: 12})
	want := Reference(g)
	for _, procs := range []int{1, 4, 16} {
		m := spasm.NewDefault(procs)
		res, err := Run(m, g, 0)
		if err != nil {
			t.Fatalf("%d procs: %v", procs, err)
		}
		if res.Flow != want {
			t.Fatalf("%d procs: flow %d, want %d", procs, res.Flow, want)
		}
	}
}

func TestLockTrafficDominates(t *testing.T) {
	g := Generate(Config{Layers: 6, Width: 6, RngSeed: 13})
	m := spasm.NewDefault(8)
	_, err := Run(m, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Net.Delivered() == 0 {
		t.Fatal("no traffic")
	}
	// Lock homes (processors 0 and 1 for locks 0 and 1) must be traffic
	// concentration points.
	recv := make([]int, 8)
	for _, d := range m.Net.Log() {
		recv[d.Dst]++
	}
	hot := recv[0] + recv[1]
	rest := 0
	for i := 2; i < 8; i++ {
		rest += recv[i]
	}
	if hot*3 < rest {
		t.Fatalf("lock homes received %d vs others %d: expected hot-spot pattern", hot, rest)
	}
	if err := m.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsTinyGraph(t *testing.T) {
	g := &Graph{N: 2, Adj: make([][]int, 2), Source: 0, Sink: 1}
	m := spasm.NewDefault(2)
	if _, err := Run(m, g, 0); err == nil {
		t.Fatal("tiny graph accepted")
	}
}
