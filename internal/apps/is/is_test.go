package is

import (
	"sort"
	"testing"

	"commchar/internal/spasm"
)

func verifyRanks(t *testing.T, res *Result) {
	t.Helper()
	n := len(res.Keys)
	// Ranks must be a permutation of 0..n-1.
	seen := make([]bool, n)
	for i, r := range res.Ranks {
		if r < 0 || r >= n || seen[r] {
			t.Fatalf("rank of key %d invalid or duplicated: %d", i, r)
		}
		seen[r] = true
	}
	// Scattering keys by rank must yield the sorted sequence.
	out := make([]int, n)
	for i, r := range res.Ranks {
		out[r] = res.Keys[i]
	}
	if !sort.IntsAreSorted(out) {
		t.Fatal("keys not sorted by computed ranks")
	}
	// And it must be the same multiset.
	a := append([]int(nil), res.Keys...)
	sort.Ints(a)
	for i := range a {
		if a[i] != out[i] {
			t.Fatalf("rank permutation lost keys at %d", i)
		}
	}
}

func TestSortCorrect4Procs(t *testing.T) {
	m := spasm.NewDefault(4)
	res, err := Run(m, Config{Keys: 2048, MaxKey: 128, RngSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	verifyRanks(t, res)
}

func TestSortCorrect16Procs(t *testing.T) {
	m := spasm.NewDefault(16)
	res, err := Run(m, Config{Keys: 4096, MaxKey: 256, RngSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	verifyRanks(t, res)
	if err := m.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStableWithinValue(t *testing.T) {
	// Equal keys keep processor-then-position order (counting sort is
	// stable by construction here); just re-verify with heavy duplicates.
	m := spasm.NewDefault(4)
	res, err := Run(m, Config{Keys: 1024, MaxKey: 4, RngSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	verifyRanks(t, res)
}

func TestGeneratesTraffic(t *testing.T) {
	m := spasm.NewDefault(8)
	_, err := Run(m, Config{Keys: 2048, MaxKey: 256, RngSeed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Net.Delivered() == 0 {
		t.Fatal("no communication")
	}
	// Every processor participates, and the barrier protocol must have
	// sent each non-zero processor's arrivals to processor 0.
	toZero := map[int]bool{}
	bySrc := map[int]bool{}
	for _, d := range m.Net.Log() {
		bySrc[d.Src] = true
		if d.Dst == 0 {
			toZero[d.Src] = true
		}
	}
	if len(bySrc) != 8 {
		t.Fatalf("traffic from %d sources, want 8", len(bySrc))
	}
	for s := 1; s < 8; s++ {
		if !toZero[s] {
			t.Fatalf("processor %d never messaged processor 0", s)
		}
	}
	if err := m.Mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	m := spasm.NewDefault(4)
	if _, err := Run(m, Config{Keys: 10, MaxKey: 128}); err == nil {
		t.Fatal("indivisible keys accepted")
	}
	if _, err := Run(m, Config{Keys: 2, MaxKey: 2}); err == nil {
		t.Fatal("tiny problem accepted")
	}
}
