// Package is implements the paper's IS application [8]: an Integer Sort
// kernel that ranks a list of integers by bucket (counting) sort. The input
// is equally partitioned; each processor builds local bucket counts, the
// bucket space is partitioned for the global-histogram phase, processor 0
// combines the per-range totals (one source of its "favorite processor"
// status in the paper's spatial distributions), and each processor finally
// ranks its own keys.
package is

import (
	"fmt"

	"commchar/internal/sim"
	"commchar/internal/spasm"
)

// Config sizes the problem.
type Config struct {
	Keys    int // number of integers to rank
	MaxKey  int // keys are drawn uniformly from [0, MaxKey)
	OpTime  sim.Duration
	RngSeed uint64
}

// DefaultConfig returns the benchmark problem.
func DefaultConfig() Config {
	return Config{Keys: 65536, MaxKey: 1024, OpTime: 20 * sim.Nanosecond, RngSeed: 0x15}
}

// Result carries the computed ranks.
type Result struct {
	Keys     []int // the input keys
	Ranks    []int // rank of each key: its position in sorted order
	Makespan sim.Time
}

// Run executes the sort.
func Run(m *spasm.Machine, cfg Config) (*Result, error) {
	n, b := cfg.Keys, cfg.MaxKey
	p := m.Config().Processors
	if n < p || b < p {
		return nil, fmt.Errorf("is: %d keys / %d buckets too small for %d processors", n, b, p)
	}
	if n%p != 0 || b%p != 0 {
		return nil, fmt.Errorf("is: keys (%d) and buckets (%d) must divide processors (%d)", n, b, p)
	}
	if cfg.OpTime <= 0 {
		cfg.OpTime = DefaultConfig().OpTime
	}

	// Input keys.
	keys := make([]int, n)
	st := sim.NewStream(cfg.RngSeed)
	for i := range keys {
		keys[i] = st.IntN(b)
	}

	// Shared arrays (8-byte elements).
	keysArr := m.NewArray(n, 8)
	localHist := m.NewArray(p*b, 8) // proc-major: proc q's counts at q*b+v
	rankBase := m.NewArray(b, 8)    // global rank of the first key with value v
	rangeTot := m.NewArray(p, 8)    // keys in each processor's bucket range
	offsets := m.NewArray(p, 8)     // prefix sums of rangeTot, by processor 0

	// Real data.
	hist := make([]int, p*b)
	base := make([]int, b)
	totals := make([]int, p)
	offs := make([]int, p)
	ranks := make([]int, n)

	per := n / p
	bper := b / p

	makespan, err := m.Run(func(e *spasm.Env) {
		id := e.ID()

		// Phase 1: local histogram.
		for i := id * per; i < (id+1)*per; i++ {
			e.ReadArray(keysArr, i)
			hist[id*b+keys[i]]++
			e.Compute(cfg.OpTime)
		}
		for v := 0; v < b; v++ {
			e.WriteArray(localHist, id*b+v)
		}
		e.Barrier()

		// Phase 2: global counts for the owned bucket range, plus the
		// range total (reads every processor's local histogram — the
		// all-to-all phase).
		total := 0
		for v := id * bper; v < (id+1)*bper; v++ {
			sum := 0
			for q := 0; q < p; q++ {
				e.ReadArray(localHist, q*b+v)
				sum += hist[q*b+v]
			}
			base[v] = sum // temporarily the global count
			e.WriteArray(rankBase, v)
			total += sum
			e.Compute(cfg.OpTime * sim.Duration(p))
		}
		totals[id] = total
		e.WriteArray(rangeTot, id)
		e.Barrier()

		// Phase 3: processor 0 prefixes the range totals.
		if id == 0 {
			acc := 0
			for q := 0; q < p; q++ {
				e.ReadArray(rangeTot, q)
				offs[q] = acc
				acc += totals[q]
				e.WriteArray(offsets, q)
				e.Compute(cfg.OpTime)
			}
		}
		e.Barrier()

		// Phase 4: turn global counts into global rank bases for the
		// owned range.
		e.ReadArray(offsets, id)
		acc := offs[id]
		for v := id * bper; v < (id+1)*bper; v++ {
			e.ReadArray(rankBase, v)
			cnt := base[v]
			base[v] = acc
			acc += cnt
			e.WriteArray(rankBase, v)
			e.Compute(cfg.OpTime)
		}
		e.Barrier()

		// Phase 5: rank local keys. The rank of the t-th local occurrence
		// of value v at processor id is
		//   rankBase[v] + (occurrences at processors < id) + t.
		before := make([]int, b)
		for v := 0; v < b; v++ {
			e.ReadArray(rankBase, v)
			s := base[v]
			for q := 0; q < id; q++ {
				e.ReadArray(localHist, q*b+v)
				s += hist[q*b+v]
			}
			before[v] = s
		}
		for i := id * per; i < (id+1)*per; i++ {
			v := keys[i]
			ranks[i] = before[v]
			before[v]++
			e.Compute(cfg.OpTime)
		}
		e.Barrier()
	})
	if err != nil {
		return nil, err
	}
	return &Result{Keys: keys, Ranks: ranks, Makespan: makespan}, nil
}
