// Package apps assembles the paper's application suite — five shared-memory
// applications characterized by the dynamic (execution-driven) strategy and
// two message-passing applications characterized by the static
// (trace-driven) strategy — behind one uniform Workload interface that the
// experiment harness drives.
package apps

import (
	"fmt"

	"commchar/internal/apps/cholesky"
	"commchar/internal/apps/fft1d"
	"commchar/internal/apps/fft3d"
	"commchar/internal/apps/is"
	"commchar/internal/apps/maxflow"
	"commchar/internal/apps/mg"
	"commchar/internal/apps/nbody"
	"commchar/internal/core"
	"commchar/internal/mp"
	"commchar/internal/sp2"
	"commchar/internal/spasm"
)

// Scale selects a problem-size tier.
type Scale int

const (
	// ScaleSmall is for quick tests.
	ScaleSmall Scale = iota
	// ScaleFull is the benchmark tier used for the paper's experiments.
	ScaleFull
)

// Workload is one application of the suite, ready to characterize.
type Workload struct {
	Name        string
	Strategy    core.Strategy
	Description string
	// Characterize runs the application on procs processors and returns
	// its communication characterization.
	Characterize func(procs int) (*core.Characterization, error)
}

// smSizes holds the shared-memory problem sizes per scale tier.
type smSizes struct {
	fftPoints          int
	isKeys, isBuckets  int
	cholN              int
	cholDensity        float64
	nbodyN, nbodySteps int
	mfLayers, mfWidth  int
}

func sizesFor(scale Scale) smSizes {
	if scale == ScaleFull {
		return smSizes{
			fftPoints: 16384, isKeys: 65536, isBuckets: 1024,
			cholN: 192, cholDensity: 0.06,
			nbodyN: 256, nbodySteps: 2,
			mfLayers: 10, mfWidth: 12,
		}
	}
	return smSizes{
		fftPoints: 4096, isKeys: 8192, isBuckets: 256,
		cholN: 96, cholDensity: 0.08,
		nbodyN: 128, nbodySteps: 1,
		mfLayers: 6, mfWidth: 8,
	}
}

// RunSharedMemoryOn executes a shared-memory workload by name on a
// caller-supplied machine, so experiments can vary the machine (protocol,
// routing, barrier) and inspect it afterwards (profiles, stats).
func RunSharedMemoryOn(m *spasm.Machine, scale Scale, name string) error {
	sz := sizesFor(scale)
	switch name {
	case "1D-FFT":
		cfg := fft1d.DefaultConfig()
		cfg.Points = sz.fftPoints
		_, err := fft1d.Run(m, cfg)
		return err
	case "IS":
		cfg := is.DefaultConfig()
		cfg.Keys, cfg.MaxKey = sz.isKeys, sz.isBuckets
		_, err := is.Run(m, cfg)
		return err
	case "Cholesky":
		ccfg := cholesky.DefaultConfig()
		ccfg.N, ccfg.Density = sz.cholN, sz.cholDensity
		prob := cholesky.Generate(ccfg)
		_, err := cholesky.Run(m, prob, ccfg.OpTime)
		return err
	case "Nbody":
		cfg := nbody.DefaultConfig()
		cfg.Bodies, cfg.Steps = sz.nbodyN, sz.nbodySteps
		_, err := nbody.Run(m, cfg)
		return err
	case "Maxflow":
		mcfg := maxflow.DefaultConfig()
		mcfg.Layers, mcfg.Width = sz.mfLayers, sz.mfWidth
		g := maxflow.Generate(mcfg)
		_, err := maxflow.Run(m, g, mcfg.OpTime)
		return err
	default:
		return fmt.Errorf("apps: unknown shared-memory workload %q", name)
	}
}

// RunMessagePassingOn executes a message-passing workload by name on a
// caller-supplied world, so the pipeline can build the world itself and
// reuse the recorded trace.
func RunMessagePassingOn(w *mp.World, scale Scale, name string, procs int) error {
	ftN, ftIters := 16, 2
	mgN, mgCycles := 16, 2
	if scale == ScaleFull {
		ftN, ftIters = 32, 3
		mgN, mgCycles = 32, 4
	}
	switch name {
	case "3D-FFT":
		cfg := fft3d.DefaultConfig()
		cfg.NX, cfg.NY, cfg.NZ, cfg.Iterations = ftN, ftN, ftN, ftIters
		_, err := fft3d.Run(w, cfg, procs)
		return err
	case "MG":
		cfg := mg.DefaultConfig()
		cfg.N, cfg.Cycles = mgN, mgCycles
		_, err := mg.Run(w, cfg, procs)
		return err
	default:
		return fmt.Errorf("apps: unknown message-passing workload %q", name)
	}
}

// SharedMemory returns the five shared-memory applications at the scale.
func SharedMemory(scale Scale) []Workload {
	mk := func(name, desc string) Workload {
		return Workload{
			Name:        name,
			Strategy:    core.StrategyDynamic,
			Description: desc,
			Characterize: func(procs int) (*core.Characterization, error) {
				return core.CharacterizeSharedMemory(name, procs, func(m *spasm.Machine) error {
					return RunSharedMemoryOn(m, scale, name)
				})
			},
		}
	}
	return []Workload{
		mk("1D-FFT", "1-D complex FFT; local butterflies around a transpose phase [8]"),
		mk("IS", "integer sort by bucket ranking [8]"),
		mk("Cholesky", "sparse Cholesky factorization with dynamic task queue [17]"),
		mk("Nbody", "gravitational N-body with static body allocation [17]"),
		mk("Maxflow", "Goldberg push-relabel maximum flow [26]"),
	}
}

// MessagePassing returns the two NAS message-passing applications at the
// scale.
func MessagePassing(scale Scale) []Workload {
	mk := func(name, desc string) Workload {
		return Workload{
			Name:        name,
			Strategy:    core.StrategyStatic,
			Description: desc,
			Characterize: func(procs int) (*core.Characterization, error) {
				return core.CharacterizeMessagePassing(name, procs, sp2.Default(), func(w *mp.World) error {
					return RunMessagePassingOn(w, scale, name, procs)
				})
			},
		}
	}
	return []Workload{
		mk("3D-FFT", "NAS FT kernel: 3-D FFT with all-to-all transpose [15]"),
		mk("MG", "NAS MG: multigrid V-cycle Poisson solver [15]"),
	}
}

// Suite returns all seven applications at the scale.
func Suite(scale Scale) []Workload {
	return append(SharedMemory(scale), MessagePassing(scale)...)
}

// ByName finds a workload in the suite.
func ByName(scale Scale, name string) (Workload, error) {
	for _, w := range Suite(scale) {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("apps: unknown workload %q", name)
}
