package obs

import (
	"flag"
	"fmt"
	"io"
)

// Flags is the uniform observability flag set shared by every cmd/
// tool: -debug-addr starts the live debug server, -trace-out writes the
// Chrome trace at exit, -events-out writes the flight-recorder JSONL,
// and -progress reports per-spec stage transitions on stderr.
type Flags struct {
	DebugAddr string
	TraceOut  string
	EventsOut string
	Progress  bool
}

// AddFlags registers the observability flags on a flag set.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve the debug endpoints (/metrics, /healthz, /progress, /events, /debug/pprof) on this address (empty: disabled)")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a Chrome trace-event JSON timeline (engine spans + simulated message slices; load in Perfetto) to this file")
	fs.StringVar(&f.EventsOut, "events-out", "",
		"write the flight-recorder event log (JSON Lines) to this file")
	fs.BoolVar(&f.Progress, "progress", false,
		"report per-spec pipeline stage transitions on stderr")
	return f
}

// enabled reports whether any observability feature was requested.
func (f *Flags) enabled() bool {
	return f.DebugAddr != "" || f.TraceOut != "" || f.EventsOut != "" || f.Progress
}

// Observer builds the observer the flags describe, starting the debug
// server when -debug-addr is set and echoing its bound address to
// stderr. With every flag off it returns nil — the nil observer is the
// documented no-op, so untraced runs skip all bookkeeping. The caller
// owns Close (which writes -trace-out/-events-out and stops the
// server).
func (f *Flags) Observer(stderr io.Writer) (*Observer, error) {
	if f == nil || !f.enabled() {
		return nil, nil
	}
	o := NewObserver(System())
	o.TracePath = f.TraceOut
	o.EventsPath = f.EventsOut
	if f.Progress {
		o.Progress.SetReporter(stderr)
	}
	if f.DebugAddr != "" {
		if err := o.ServeDebug(f.DebugAddr); err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "debug server listening on http://%s\n", o.DebugAddr())
	}
	return o, nil
}
