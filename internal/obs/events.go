package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// A LogEvent is one structured entry in the event log.
type LogEvent struct {
	// Seq is the deterministic per-log sequence number.
	Seq int64 `json:"seq"`
	// T is the wall instant the event was emitted (from the log's Clock).
	T time.Time `json:"t"`
	// Name identifies the event, dot-scoped: "spec.done", "cache.hit",
	// "journal.append", "retry".
	Name string `json:"event"`
	// Fields carry the event's annotations (encoding/json renders map
	// keys sorted, keeping exports deterministic).
	Fields map[string]string `json:"fields,omitempty"`
}

// An EventLog is a bounded flight recorder: it retains the most recent
// capacity events in a ring buffer (the tail of a long sweep stays
// inspectable at /events without unbounded memory) while counting every
// emission. All methods are safe for concurrent use and safe on a nil
// *EventLog.
type EventLog struct {
	mu    sync.Mutex
	clock Clock
	ring  []LogEvent
	next  int   // ring slot the next event lands in
	total int64 // events emitted since construction
}

// NewEventLog returns a flight recorder retaining the last capacity
// events (minimum 1; nil clock means System()).
func NewEventLog(clock Clock, capacity int) *EventLog {
	if clock == nil {
		clock = System()
	}
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{clock: clock, ring: make([]LogEvent, 0, capacity)}
}

// Emit appends an event, evicting the oldest once the ring is full.
func (l *EventLog) Emit(name string, fields map[string]string) {
	if l == nil {
		return
	}
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	ev := LogEvent{Seq: l.total, T: now, Name: name, Fields: fields}
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
		return
	}
	l.ring[l.next] = ev
	l.next = (l.next + 1) % cap(l.ring)
}

// Total reports the number of events emitted since construction
// (including ones the ring has already evicted).
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns the retained events, oldest first.
func (l *EventLog) Recent() []LogEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEvent, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		return append(out, l.ring...)
	}
	out = append(out, l.ring[l.next:]...)
	return append(out, l.ring[:l.next]...)
}

// WriteJSONL writes the retained events as JSON Lines, oldest first.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	for _, ev := range l.Recent() {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("obs: encoding event %q: %w", ev.Name, err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
