package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// epoch is the fake clock's fixed start; the step makes successive reads
// visibly distinct in the exports.
var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// fixtureTracer records a deterministic mix of engine spans, instants,
// and pre-built simulated-time slices under the fake clock.
func fixtureTracer() *Tracer {
	tr := NewTracer(NewFake(epoch, 10*time.Millisecond))
	sp := tr.StartSpan("engine", "IS#0a1b2c3d", "stage", "acquire").SetArg("key", "0a1b2c3d")
	tr.Instant("engine", "IS#0a1b2c3d", "cache", "disk-miss", nil)
	sp.End()
	rp := tr.StartSpan("engine", "IS#0a1b2c3d", "stage", "replay")
	rp.End()
	tr.StartSpan("engine", "FFT#99ffee00", "stage", "analyze").End()
	tr.Add(
		TraceEvent{Process: "sim IS#0a1b2c3d", Track: "rank 00", Cat: "msg",
			Name: "msg 0→1", TS: 0.5, Dur: 0.4, Phase: 'X',
			Args: map[string]string{"bytes": "64", "hops": "1"}},
		TraceEvent{Process: "sim IS#0a1b2c3d", Track: "rank 01", Cat: "msg",
			Name: "msg 1→0 (failed)", TS: 0.9, Dur: 0.001, Phase: 'X',
			Args: map[string]string{"bytes": "32", "hops": "2", "status": "failed"}},
	)
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureTracer().Events()); err != nil {
		t.Fatal(err)
	}
	// The export must be valid JSON before it is byte-compared: Perfetto
	// parses it, not us.
	var doc []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc) == 0 {
		t.Fatal("trace has no events")
	}
	checkGolden(t, "trace.golden.json", buf.Bytes())
}

// fixtureRegistry populates one of every metric kind deterministically.
func fixtureRegistry() *Registry {
	r := NewRegistry()
	runs := r.Counter("commchar_pipeline_runs_total", "simulations actually executed")
	runs.Add(3)
	r.CounterFunc("commchar_pipeline_cache_hits_disk_total", "artifacts served from the on-disk cache",
		func() int64 { return 2 })
	g := r.Gauge("commchar_sim_clock_ns", "most recently reported simulated clock (ns)")
	g.Set(1.25e6)
	r.GaugeFunc("commchar_workers_busy", "worker slots in use", func() float64 { return 4 })
	r.ConstGauge("commchar_build_info", "build identity of the running binary (value is always 1)",
		map[string]string{"path": "commchar", "version": "(devel)", "revision": "deadbeef", "go_version": "go1.22"}, 1)
	h := r.Histogram("commchar_pipeline_replay_seconds", "wall time of the replay stage per executed run", nil)
	for _, v := range []float64{0.0004, 0.003, 0.003, 0.07, 1.5, 120} {
		h.Observe(v)
	}
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.prom", buf.Bytes())
}

func TestExpvarGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WriteExpvar(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("expvar export is not valid JSON: %v", err)
	}
	checkGolden(t, "varz.golden.json", buf.Bytes())
}

func TestExportsAreReproducible(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, fixtureTracer().Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, fixtureTracer().Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical traced sequences exported different bytes")
	}
}
