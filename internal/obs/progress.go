package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Pipeline stage names reported by the engine; /progress and the stderr
// reporter render these verbatim.
const (
	StagePending = "pending" // spec registered, not yet scheduled
	StageQueued  = "queued"  // waiting for a worker slot
	StageAcquire = "acquire" // executing the application / reading the trace
	StageReplay  = "replay"  // replaying through the mesh
	StageAnalyze = "analyze" // statistical characterization
	StageRemote  = "remote"  // executing on a distributed worker (internal/dist)
	StageDone    = "done"    // artifact produced (Source says from where)
	StageFailed  = "failed"  // spec produced no artifact
)

// A SpecState is the live view of one spec's progress through the
// pipeline stages.
type SpecState struct {
	Spec string `json:"spec"`
	// Stage is the current pipeline stage (see the Stage constants).
	Stage string `json:"stage"`
	// Source is set once done: run, memory, or disk.
	Source string `json:"source,omitempty"`
	// Err is set once failed.
	Err string `json:"error,omitempty"`
	// Since is when the spec entered its current stage.
	Since time.Time `json:"since"`
}

// A Progress tracks per-spec stage states for a running sweep: the
// engine updates it at every stage transition, the debug server's
// /progress endpoint snapshots it, and an optional reporter prints
// transitions to stderr for interactive runs. All methods are safe for
// concurrent use and safe on a nil *Progress.
type Progress struct {
	mu       sync.Mutex
	clock    Clock
	order    []string
	states   map[string]*SpecState
	reporter io.Writer
}

// NewProgress returns an empty tracker (nil clock means System()).
func NewProgress(clock Clock) *Progress {
	if clock == nil {
		clock = System()
	}
	return &Progress{clock: clock, states: map[string]*SpecState{}}
}

// SetReporter directs a one-line report of every stage transition to w
// (the -progress stderr reporter). Pass nil to silence it.
func (p *Progress) SetReporter(w io.Writer) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.reporter = w
	p.mu.Unlock()
}

// transition moves spec into stage, creating its state on first sight;
// it reports the transition when a reporter is set and the stage
// actually changed.
func (p *Progress) transition(spec string, mutate func(*SpecState)) {
	if p == nil {
		return
	}
	now := p.clock.Now()
	p.mu.Lock()
	st, ok := p.states[spec]
	if !ok {
		st = &SpecState{Spec: spec, Stage: StagePending, Since: now}
		p.states[spec] = st
		p.order = append(p.order, spec)
	}
	before := st.Stage
	mutate(st)
	changed := st.Stage != before
	if changed {
		st.Since = now
	}
	w := p.reporter
	var line string
	if changed && w != nil {
		done, failed, total := p.countsLocked()
		line = fmt.Sprintf("progress: [%d/%d done", done, total)
		if failed > 0 {
			line += fmt.Sprintf(", %d failed", failed)
		}
		line += fmt.Sprintf("] %s %s", st.Spec, st.Stage)
		if st.Source != "" {
			line += " (" + st.Source + ")"
		}
		if st.Err != "" {
			line += ": " + st.Err
		}
		line += "\n"
	}
	p.mu.Unlock()
	if line != "" {
		io.WriteString(w, line)
	}
}

// countsLocked tallies terminal states; callers hold p.mu.
func (p *Progress) countsLocked() (done, failed, total int) {
	for _, st := range p.states {
		switch st.Stage {
		case StageDone:
			done++
		case StageFailed:
			failed++
		}
	}
	return done, failed, len(p.states)
}

// Update moves spec into a (non-terminal) stage.
func (p *Progress) Update(spec, stage string) {
	p.transition(spec, func(st *SpecState) { st.Stage = stage })
}

// Done marks spec complete, recording where the artifact came from.
func (p *Progress) Done(spec, source string) {
	p.transition(spec, func(st *SpecState) {
		st.Stage = StageDone
		st.Source = source
		st.Err = ""
	})
}

// Fail marks spec failed.
func (p *Progress) Fail(spec string, err error) {
	p.transition(spec, func(st *SpecState) {
		st.Stage = StageFailed
		if err != nil {
			st.Err = err.Error()
		}
	})
}

// Snapshot returns the specs in first-seen order.
func (p *Progress) Snapshot() []SpecState {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SpecState, 0, len(p.order))
	for _, spec := range p.order {
		out = append(out, *p.states[spec])
	}
	return out
}

// Counts reports done, failed, and total spec counts.
func (p *Progress) Counts() (done, failed, total int) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.countsLocked()
}
