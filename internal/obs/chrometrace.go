package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is the JSON shape of one Chrome trace-event record. Args
// is a map so encoding/json's sorted-key marshalling keeps the output
// deterministic.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes events as Chrome trace-event JSON (the array
// form), loadable in Perfetto and chrome://tracing. Processes and
// tracks are assigned numeric pids/tids in sorted-name order and
// announced with process_name/thread_name metadata records, so the same
// event set always serializes to the same bytes.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	// Assign pids to processes and tids to tracks in sorted order.
	procSet := map[string]map[string]bool{}
	for _, ev := range events {
		if procSet[ev.Process] == nil {
			procSet[ev.Process] = map[string]bool{}
		}
		procSet[ev.Process][ev.Track] = true
	}
	procNames := make([]string, 0, len(procSet))
	for p := range procSet {
		procNames = append(procNames, p)
	}
	sort.Strings(procNames)

	pids := map[string]int{}
	tids := map[string]map[string]int{}
	var records []chromeEvent
	for pi, p := range procNames {
		pid := pi + 1
		pids[p] = pid
		records = append(records, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": p},
		})
		tracks := make([]string, 0, len(procSet[p]))
		for tr := range procSet[p] {
			tracks = append(tracks, tr)
		}
		sort.Strings(tracks)
		tids[p] = map[string]int{}
		for ti, tr := range tracks {
			tid := ti + 1
			tids[p][tr] = tid
			records = append(records, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]string{"name": tr},
			})
		}
	}

	sorted := make([]TraceEvent, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].TS != sorted[j].TS {
			return sorted[i].TS < sorted[j].TS
		}
		return sorted[i].ID < sorted[j].ID
	})
	for _, ev := range sorted {
		rec := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Phase),
			PID: pids[ev.Process], TID: tids[ev.Process][ev.Track],
			TS: ev.TS, Dur: ev.Dur, Args: ev.Args,
		}
		if ev.Phase == 'i' {
			rec.S = "t" // thread-scoped instant
		}
		records = append(records, rec)
	}

	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, rec := range records {
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("obs: encoding trace event %q: %w", rec.Name, err)
		}
		sep := ",\n"
		if i == len(records)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
