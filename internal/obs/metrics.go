package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// A Registry is the unified metrics surface: counters, gauges, and
// histograms registered by name, exportable as Prometheus text format
// (WritePrometheus, the /metrics endpoint) and expvar-style JSON
// (WriteExpvar, the /varz endpoint). Registration is last-writer-wins:
// re-registering a name replaces the previous source, so several
// engines can share one registry without ceremony. All methods are safe
// for concurrent use and safe on a nil *Registry.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// entry is one registered metric family.
type entry struct {
	name, help string
	col        collector
}

// collector is the value side of a registered metric.
type collector interface {
	// kind is the Prometheus TYPE keyword: counter, gauge, histogram.
	kind() string
	// writeProm writes the sample lines (no HELP/TYPE header).
	writeProm(w io.Writer, name string) error
	// exportVar returns the expvar JSON value.
	exportVar() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: map[string]*entry{}} }

// register installs (or replaces) a named metric.
func (r *Registry) register(name, help string, col collector) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = &entry{name: name, help: help, col: col}
}

// A Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) kind() string { return "counter" }
func (c *Counter) writeProm(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
	return err
}
func (c *Counter) exportVar() any { return c.Value() }

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, c)
	return c
}

// funcCollector adapts a read callback into a collector; integer
// callbacks render as counters, float callbacks as gauges.
type funcCollector struct {
	kindName string
	intFn    func() int64
	floatFn  func() float64
}

func (f *funcCollector) kind() string { return f.kindName }
func (f *funcCollector) writeProm(w io.Writer, name string) error {
	var err error
	if f.intFn != nil {
		_, err = fmt.Fprintf(w, "%s %d\n", name, f.intFn())
	} else {
		_, err = fmt.Fprintf(w, "%s %s\n", name, formatFloat(f.floatFn()))
	}
	return err
}
func (f *funcCollector) exportVar() any {
	if f.intFn != nil {
		return f.intFn()
	}
	return f.floatFn()
}

// CounterFunc registers a counter whose value is read from fn at export
// time — the bridge for pre-existing atomic counters (pipeline.Metrics).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, help, &funcCollector{kindName: "counter", intFn: fn})
}

// GaugeFunc registers a gauge read from fn at export time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, &funcCollector{kindName: "gauge", floatFn: fn})
}

// A Gauge is a settable instantaneous value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) writeProm(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
	return err
}
func (g *Gauge) exportVar() any { return g.Value() }

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, g)
	return g
}

// constGauge is a fixed-value gauge with a label set — build_info.
type constGauge struct {
	labels string // pre-rendered {k="v",...}, keys sorted
	value  float64
	vars   map[string]string
}

func (c *constGauge) kind() string { return "gauge" }
func (c *constGauge) writeProm(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, c.labels, formatFloat(c.value))
	return err
}
func (c *constGauge) exportVar() any {
	out := map[string]any{"value": c.value}
	for k, v := range c.vars {
		out[k] = v
	}
	return out
}

// ConstGauge registers a fixed gauge with a label set (labels rendered
// in sorted key order) — the shape of the build_info metric.
func (r *Registry) ConstGauge(name, help string, labels map[string]string, value float64) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rendered := ""
	if len(keys) > 0 {
		rendered = "{"
		for i, k := range keys {
			if i > 0 {
				rendered += ","
			}
			rendered += k + "=" + strconv.Quote(labels[k])
		}
		rendered += "}"
	}
	vars := make(map[string]string, len(labels))
	for k, v := range labels {
		vars[k] = v
	}
	r.register(name, help, &constGauge{labels: rendered, value: value, vars: vars})
}

// vecFunc renders a whole labeled counter family from one snapshot
// callback: each key of the returned map becomes a series with the
// configured label, in sorted key order (scrapes are deterministic).
type vecFunc struct {
	label string
	fn    func() map[string]int64
}

func (v *vecFunc) kind() string { return "counter" }
func (v *vecFunc) writeProm(w io.Writer, name string) error {
	m := v.fn()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=%s} %d\n", name, v.label, strconv.Quote(k), m[k]); err != nil {
			return err
		}
	}
	return nil
}
func (v *vecFunc) exportVar() any { return v.fn() }

// CounterVecFunc registers a labeled counter family whose series are read
// from fn at scrape time: fn returns label-value -> count. The family
// grows lazily as the callback's map does — the shape of per-topology
// metrics, where the label values are not known at registration time.
func (r *Registry) CounterVecFunc(name, help, label string, fn func() map[string]int64) {
	if r == nil {
		return
	}
	r.register(name, help, &vecFunc{label: label, fn: fn})
}

// DefBuckets are the default histogram bucket upper bounds, in seconds,
// spanning sub-millisecond cache hits to minute-long cold sweeps.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

// A Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []int64 // per-bucket (non-cumulative); rendered cumulatively
	sum     float64
	samples int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.counts) {
		h.counts[i]++
	} else {
		h.counts[len(h.counts)-1]++ // +Inf bucket
	}
	h.sum += v
	h.samples++
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

func (h *Histogram) kind() string { return "histogram" }
func (h *Histogram) writeProm(w io.Writer, name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := int64(0)
	for i, b := range h.bounds {
		if b == inf {
			break
		}
		cum += h.counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.samples); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.samples)
	return err
}
func (h *Histogram) exportVar() any {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets := map[string]int64{}
	cum := int64(0)
	for i, b := range h.bounds {
		if b == inf {
			break
		}
		cum += h.counts[i]
		buckets[formatFloat(b)] = cum
	}
	buckets["+Inf"] = h.samples
	return map[string]any{"count": h.samples, "sum": h.sum, "buckets": buckets}
}

var inf = math.Inf(1)

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (nil means DefBuckets); a +Inf bucket is implied.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append(append([]float64{}, buckets...), inf)
	h := &Histogram{bounds: bounds, counts: make([]int64, len(bounds))}
	r.register(name, help, h)
	return h
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// snapshot returns the entries sorted by name (names are unique — they
// are the registration keys — so the order is total).
func (r *Registry) snapshot() []*entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*entry, 0, len(names))
	for _, name := range names {
		out = append(out, r.entries[name])
	}
	r.mu.Unlock()
	return out
}

// WritePrometheus writes every registered metric in Prometheus text
// exposition format, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, e := range r.snapshot() {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.col.kind()); err != nil {
			return err
		}
		if err := e.col.writeProm(w, e.name); err != nil {
			return err
		}
	}
	return nil
}

// WriteExpvar writes every registered metric as one JSON object keyed
// by metric name (expvar-style), keys sorted.
func (r *Registry) WriteExpvar(w io.Writer) error {
	vars := map[string]any{}
	for _, e := range r.snapshot() {
		vars[e.name] = e.col.exportVar()
	}
	b, err := json.MarshalIndent(vars, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding expvar export: %w", err)
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}
