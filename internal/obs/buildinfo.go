package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies a deployed binary: module version plus the VCS
// revision stamped by the go toolchain. Scraped as the build_info gauge
// so dashboards can tell which build produced which metrics.
type BuildInfo struct {
	Path      string // main module path
	Version   string // module version ("(devel)" for local builds)
	Revision  string // VCS commit, "" when not stamped
	Time      string // VCS commit time, "" when not stamped
	Modified  bool   // working tree was dirty at build time
	GoVersion string
}

// ReadBuildInfo extracts the binary's identity from
// runtime/debug.ReadBuildInfo. Binaries built without module info
// (rare: only go test-compiled internals) report just the Go version.
func ReadBuildInfo() BuildInfo {
	info := BuildInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Path = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the identity as the -version flag prints it.
func (b BuildInfo) String() string {
	out := b.Path
	if out == "" {
		out = "unknown"
	}
	version := b.Version
	if version == "" {
		version = "(devel)"
	}
	out += " " + version
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " " + rev
		if b.Modified {
			out += "+dirty"
		}
	}
	return fmt.Sprintf("%s (%s)", out, b.GoVersion)
}

// RegisterBuildInfo publishes b as the constant commchar_build_info
// gauge (value 1, identity in the labels — the Prometheus convention).
func (r *Registry) RegisterBuildInfo(b BuildInfo) {
	rev := b.Revision
	if b.Modified && rev != "" {
		rev += "+dirty"
	}
	r.ConstGauge("commchar_build_info",
		"build identity of the running binary (value is always 1)",
		map[string]string{
			"path":       b.Path,
			"version":    b.Version,
			"revision":   rev,
			"go_version": b.GoVersion,
		}, 1)
}
