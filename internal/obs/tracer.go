package obs

import (
	"sort"
	"sync"
	"time"
)

// A TraceEvent is one renderable slice or instant on a timeline. Two
// kinds of time flow through the same type: wall-clock engine spans
// (recorded by a Tracer against its Clock) and simulated-time message
// slices (converted from replay logs, sim nanoseconds mapped onto the
// trace's microsecond axis). Process and Track name the Perfetto
// process and thread rows the event renders on.
type TraceEvent struct {
	// ID is the deterministic per-tracer sequence number, assigned in
	// recording order; it breaks ties when events share a timestamp.
	ID int64
	// Process groups tracks: "engine" for wall-clock pipeline spans,
	// "sim <spec>" for a run's simulated-time message timeline.
	Process string
	// Track is the thread row within the process: a spec label for
	// engine spans, "rank NN" for message timelines.
	Track string
	Name  string
	Cat   string
	// TS is the event start in microseconds on the trace's time axis.
	TS float64
	// Dur is the slice length in microseconds (0 for instants).
	Dur float64
	// Phase is the Chrome trace phase: 'X' complete slice, 'i' instant.
	Phase byte
	// Args are the key/value annotations shown in the trace viewer.
	Args map[string]string
}

// A Tracer records spans and instants against an injected Clock. IDs
// are a plain sequence, so under a fake clock and deterministic call
// order the whole event stream — and any export of it — is reproducible
// byte for byte. All methods are safe for concurrent use and safe on a
// nil *Tracer (they become no-ops), so instrumented code needs no
// "is tracing on" guards.
type Tracer struct {
	mu     sync.Mutex
	clock  Clock
	epoch  time.Time
	nextID int64
	events []TraceEvent
}

// NewTracer returns a tracer whose time axis starts at the clock's
// current instant (a nil clock means System()).
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = System()
	}
	return &Tracer{clock: clock, epoch: clock.Now()}
}

// micros converts an instant to microseconds since the tracer's epoch.
func (t *Tracer) micros(at time.Time) float64 {
	return float64(at.Sub(t.epoch)) / float64(time.Microsecond)
}

// A Span is an in-progress slice started by StartSpan. End closes it
// and commits it to the tracer. A nil *Span (from a nil tracer) accepts
// every call as a no-op.
type Span struct {
	t     *Tracer
	start time.Time
	ev    TraceEvent
}

// StartSpan opens a slice on the given process/track rows. The returned
// span must be closed with End; arguments added in between travel with
// the committed event.
func (t *Tracer) StartSpan(process, track, cat, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, start: t.clock.Now(), ev: TraceEvent{
		Process: process, Track: track, Cat: cat, Name: name, Phase: 'X',
	}}
}

// SetArg attaches a key/value annotation to the span and returns the
// span for chaining.
func (s *Span) SetArg(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.ev.Args == nil {
		s.ev.Args = map[string]string{}
	}
	s.ev.Args[key] = value
	return s
}

// End closes the span and commits it to the tracer, returning the
// span's wall duration (zero on a nil span).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	end := s.t.clock.Now()
	d := end.Sub(s.start)
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.ev.ID = s.t.nextID
	s.t.nextID++
	s.ev.TS = s.t.micros(s.start)
	s.ev.Dur = float64(d) / float64(time.Microsecond)
	s.t.events = append(s.t.events, s.ev)
	return d
}

// Instant records a zero-duration event at the clock's current instant.
func (t *Tracer) Instant(process, track, cat, name string, args map[string]string) {
	if t == nil {
		return
	}
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, TraceEvent{
		ID: t.nextID, Process: process, Track: track, Cat: cat, Name: name,
		TS: t.micros(now), Phase: 'i', Args: args,
	})
	t.nextID++
}

// Add commits pre-built events — the simulated-time timelines, whose
// timestamps come from sim cycles, not this tracer's clock. Each event
// still receives a tracer sequence ID so exports order deterministically.
func (t *Tracer) Add(events ...TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ev := range events {
		ev.ID = t.nextID
		t.nextID++
		t.events = append(t.events, ev)
	}
}

// Len reports the number of committed events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a snapshot of the committed events sorted by
// (process, track, timestamp, ID) — the stable order the exporters
// render in.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Process != out[j].Process {
			return out[i].Process < out[j].Process
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].ID < out[j].ID
	})
	return out
}
