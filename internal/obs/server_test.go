package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// get fetches a debug-server path and returns status and body.
func get(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	o := NewObserver(NewFake(epoch, time.Millisecond))
	o.Registry.Counter("commchar_pipeline_runs_total", "simulations actually executed").Add(7)
	o.Progress.Done("IS#1", "run")
	o.Events.Emit("spec.done", map[string]string{"spec": "IS#1"})
	if err := o.ServeDebug("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	addr := o.DebugAddr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	if err := o.ServeDebug("127.0.0.1:0"); err == nil {
		t.Error("second ServeDebug must refuse")
	}

	if code, body := get(t, addr, "/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body := get(t, addr, "/metrics")
	if code != 200 ||
		!strings.Contains(body, "# TYPE commchar_pipeline_runs_total counter") ||
		!strings.Contains(body, "commchar_pipeline_runs_total 7") ||
		!strings.Contains(body, "commchar_build_info") {
		t.Errorf("/metrics = %d\n%s", code, body)
	}
	if code, body := get(t, addr, "/varz"); code != 200 || !strings.Contains(body, `"commchar_pipeline_runs_total": 7`) {
		t.Errorf("/varz = %d\n%s", code, body)
	}
	if code, body := get(t, addr, "/progress"); code != 200 ||
		!strings.Contains(body, `"done": 1`) || !strings.Contains(body, `"IS#1"`) {
		t.Errorf("/progress = %d\n%s", code, body)
	}
	if code, body := get(t, addr, "/events"); code != 200 || !strings.Contains(body, "spec.done") {
		t.Errorf("/events = %d\n%s", code, body)
	}
	if code, _ := get(t, addr, "/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}
