package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// A Server is the opt-in debug HTTP endpoint (-debug-addr): it serves
// Prometheus metrics, liveness, live sweep progress, the flight
// recorder, and net/http/pprof profiling, without touching the tool's
// stdout/stderr contract.
//
// Endpoints:
//
//	/healthz       liveness ("ok")
//	/metrics       Prometheus text exposition of the Registry
//	/varz          expvar-style JSON of the Registry
//	/progress      per-spec pipeline stage states (JSON)
//	/events        flight-recorder tail (JSON Lines)
//	/debug/pprof/  CPU, heap, goroutine, ... profiles
type Server struct {
	srv *http.Server
	ln  net.Listener
	mux *http.ServeMux
}

// StartServer listens on addr (host:port; port 0 picks a free port) and
// serves the debug endpoints in a background goroutine. The registry,
// progress tracker, and event log may each be nil; their endpoints then
// serve empty documents.
func StartServer(addr string, reg *Registry, prog *Progress, events *EventLog) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteExpvar(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		done, failed, total := prog.Counts()
		doc := struct {
			Done   int         `json:"done"`
			Failed int         `json:"failed"`
			Total  int         `json:"total"`
			Specs  []SpecState `json:"specs"`
		}{done, failed, total, prog.Snapshot()}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		events.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
		mux: mux,
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Handle mounts an additional handler on the debug server's mux, so a
// subsystem can expose its own state page (internal/dist mounts /distz)
// without running a second server. ServeMux registration is
// concurrency-safe, so handlers may be added after the server is live; a
// nil server ignores the registration.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s == nil {
		return
	}
	s.mux.Handle(pattern, h)
}

// Addr returns the server's bound address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server immediately. A debug server holds no state
// worth draining, so this is abrupt by design (and therefore needs no
// caller context).
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
