package obs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFakeClockAdvancesPerRead(t *testing.T) {
	c := NewFake(epoch, time.Second)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("first read = %v, want %v", got, epoch)
	}
	if got := c.Now(); !got.Equal(epoch.Add(time.Second)) {
		t.Fatalf("second read = %v, want epoch+1s", got)
	}
	c.Advance(time.Minute)
	if got := c.Now(); !got.Equal(epoch.Add(2*time.Second + time.Minute)) {
		t.Fatalf("after Advance = %v", got)
	}
}

func TestEventLogRingEvicts(t *testing.T) {
	l := NewEventLog(NewFake(epoch, time.Millisecond), 3)
	for i := 0; i < 5; i++ {
		l.Emit(fmt.Sprintf("e%d", i), nil)
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5", l.Total())
	}
	recent := l.Recent()
	if len(recent) != 3 {
		t.Fatalf("Recent retained %d, want 3", len(recent))
	}
	for i, want := range []string{"e2", "e3", "e4"} {
		if recent[i].Name != want {
			t.Errorf("recent[%d] = %s, want %s (oldest first)", i, recent[i].Name, want)
		}
	}
	if recent[0].Seq != 2 {
		t.Errorf("seq of oldest retained = %d, want 2", recent[0].Seq)
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("JSONL lines = %d, want 3", lines)
	}
}

func TestProgressTransitionsAndReporter(t *testing.T) {
	var out bytes.Buffer
	p := NewProgress(NewFake(epoch, time.Millisecond))
	p.SetReporter(&out)
	p.Update("IS#1", StageQueued)
	p.Update("IS#1", StageQueued) // no change: no extra report line
	p.Update("IS#1", StageReplay)
	p.Done("IS#1", "run")
	p.Fail("FFT#2", errors.New("boom"))

	done, failed, total := p.Counts()
	if done != 1 || failed != 1 || total != 2 {
		t.Fatalf("Counts = (%d,%d,%d), want (1,1,2)", done, failed, total)
	}
	snap := p.Snapshot()
	if len(snap) != 2 || snap[0].Spec != "IS#1" || snap[1].Spec != "FFT#2" {
		t.Fatalf("Snapshot order = %+v, want first-seen order", snap)
	}
	if snap[0].Stage != StageDone || snap[0].Source != "run" {
		t.Errorf("IS#1 state = %+v", snap[0])
	}
	if snap[1].Err != "boom" {
		t.Errorf("FFT#2 error = %q", snap[1].Err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("reporter printed %d lines, want 4 (no line for a same-stage update):\n%s",
			len(lines), out.String())
	}
	if !strings.Contains(lines[2], "IS#1 done (run)") {
		t.Errorf("done line = %q", lines[2])
	}
	if !strings.Contains(lines[3], "1 failed") || !strings.Contains(lines[3], "boom") {
		t.Errorf("fail line = %q", lines[3])
	}
}

// TestNilObserverIsNoOp pins the zero-overhead contract: every method of
// a nil observer (and nil components) must be callable.
func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	o.StartSpan("p", "t", "c", "n").SetArg("k", "v").End()
	o.Instant("p", "t", "c", "n", nil)
	o.AddTraceEvents(TraceEvent{Name: "x"})
	o.Emit("e", nil)
	o.SpecStage("s", StageQueued)
	o.SpecDone("s", "run")
	o.SpecFail("s", errors.New("x"))
	if o.DebugAddr() != "" {
		t.Error("nil observer has a debug address")
	}
	if o.ClockOrSystem() == nil {
		t.Error("nil observer must still yield a clock")
	}
	if err := o.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
	if err := o.ServeDebug("127.0.0.1:0"); err == nil {
		t.Error("nil ServeDebug must refuse")
	}

	var tr *Tracer
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer not empty")
	}
	var reg *Registry
	reg.Counter("x", "").Inc()
	reg.Gauge("y", "").Set(1)
	reg.Histogram("z", "", nil).Observe(1)
	var el *EventLog
	el.Emit("e", nil)
	var pr *Progress
	pr.Update("s", StageQueued)
}

func TestNilFakeClockIsNoOp(t *testing.T) {
	var c *Fake
	if !c.Now().IsZero() {
		t.Error("nil fake clock does not read as the zero time")
	}
	c.Advance(time.Hour) // must not panic
	if !c.Now().IsZero() {
		t.Error("advancing a nil fake clock changed its reading")
	}
}

func TestDisabledFlagsYieldNilObserver(t *testing.T) {
	var buf bytes.Buffer
	var f *Flags
	if o, err := f.Observer(&buf); o != nil || err != nil {
		t.Errorf("nil Flags: Observer = %v, %v; want nil, nil", o, err)
	}
	if o, err := new(Flags).Observer(&buf); o != nil || err != nil {
		t.Errorf("zero Flags: Observer = %v, %v; want nil, nil", o, err)
	}
	if buf.Len() != 0 {
		t.Errorf("disabled flags wrote to stderr: %q", buf.String())
	}
}

func TestObserverCloseWritesExports(t *testing.T) {
	dir := t.TempDir()
	o := NewObserver(NewFake(epoch, time.Millisecond))
	o.TracePath = filepath.Join(dir, "trace.json")
	o.EventsPath = filepath.Join(dir, "events.jsonl")
	o.StartSpan("engine", "IS#1", "stage", "replay").End()
	o.Emit("spec.done", map[string]string{"spec": "IS#1"})
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	trace, err := os.ReadFile(o.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"replay"`) {
		t.Errorf("trace file missing span:\n%s", trace)
	}
	events, err := os.ReadFile(o.EventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), "spec.done") {
		t.Errorf("events file missing event:\n%s", events)
	}
}

func TestBuildInfoString(t *testing.T) {
	b := BuildInfo{Path: "commchar", Version: "(devel)",
		Revision: "0123456789abcdef", Modified: true, GoVersion: "go1.22.1"}
	want := "commchar (devel) 0123456789ab+dirty (go1.22.1)"
	if got := b.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := ReadBuildInfo().GoVersion; got == "" {
		t.Error("ReadBuildInfo lost the Go version")
	}
}
