package obs

import (
	"errors"
	"fmt"
	"net/http"
	"os"
)

// An Observer bundles the subsystem's components — tracer, metrics
// registry, progress tracker, flight recorder, debug server — behind
// one handle the pipeline is instrumented against. Every method is safe
// on a nil *Observer (a no-op), so an untraced run pays only nil checks
// and stays byte-identical to a traced one.
type Observer struct {
	clock    Clock
	Tracer   *Tracer
	Registry *Registry
	Progress *Progress
	Events   *EventLog
	server   *Server

	// TracePath and EventsPath, when set, receive the Chrome trace JSON
	// and the flight-recorder JSONL at Close.
	TracePath  string
	EventsPath string
}

// flightRecorderCapacity bounds the event ring: enough to hold the tail
// of any realistic sweep, small enough to never matter.
const flightRecorderCapacity = 4096

// NewObserver builds an observer with every component attached (no
// debug server — see ServeDebug). A nil clock means System(); tests
// pass a Fake for deterministic exports. The binary's build identity is
// registered immediately, so any scrape identifies the build.
func NewObserver(clock Clock) *Observer {
	if clock == nil {
		clock = System()
	}
	o := &Observer{
		clock:    clock,
		Tracer:   NewTracer(clock),
		Registry: NewRegistry(),
		Progress: NewProgress(clock),
		Events:   NewEventLog(clock, flightRecorderCapacity),
	}
	o.Registry.RegisterBuildInfo(ReadBuildInfo())
	return o
}

// ClockOrSystem returns the observer's clock, or the system clock for a
// nil observer — the pipeline's one wall-clock source either way.
func (o *Observer) ClockOrSystem() Clock {
	if o == nil {
		return System()
	}
	return o.clock
}

// StartSpan opens a tracer span (nil observer: a nil, no-op span).
func (o *Observer) StartSpan(process, track, cat, name string) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.StartSpan(process, track, cat, name)
}

// Instant records a zero-duration tracer event.
func (o *Observer) Instant(process, track, cat, name string, args map[string]string) {
	if o == nil {
		return
	}
	o.Tracer.Instant(process, track, cat, name, args)
}

// AddTraceEvents commits pre-built trace events (simulated-time
// message timelines).
func (o *Observer) AddTraceEvents(events ...TraceEvent) {
	if o == nil {
		return
	}
	o.Tracer.Add(events...)
}

// Emit appends an event to the flight recorder.
func (o *Observer) Emit(name string, fields map[string]string) {
	if o == nil {
		return
	}
	o.Events.Emit(name, fields)
}

// SpecStage records a spec's transition into a pipeline stage.
func (o *Observer) SpecStage(spec, stage string) {
	if o == nil {
		return
	}
	o.Progress.Update(spec, stage)
}

// SpecDone records a spec's completion and its artifact source.
func (o *Observer) SpecDone(spec, source string) {
	if o == nil {
		return
	}
	o.Progress.Done(spec, source)
}

// SpecFail records a spec's failure.
func (o *Observer) SpecFail(spec string, err error) {
	if o == nil {
		return
	}
	o.Progress.Fail(spec, err)
}

// ServeDebug starts the debug HTTP server on addr. At most one server
// per observer; a second call is an error.
func (o *Observer) ServeDebug(addr string) error {
	if o == nil {
		return errors.New("obs: ServeDebug on a nil Observer")
	}
	if o.server != nil {
		return errors.New("obs: debug server already running")
	}
	srv, err := StartServer(addr, o.Registry, o.Progress, o.Events)
	if err != nil {
		return err
	}
	o.server = srv
	return nil
}

// HandleDebug mounts h on the running debug server at pattern, reporting
// whether a server was there to take it (nil observer or no -debug-addr:
// false, and the registration is dropped — debug pages are strictly
// opt-in observability).
func (o *Observer) HandleDebug(pattern string, h http.Handler) bool {
	if o == nil || o.server == nil {
		return false
	}
	o.server.Handle(pattern, h)
	return true
}

// DebugAddr returns the debug server's bound address, or "".
func (o *Observer) DebugAddr() string {
	if o == nil {
		return ""
	}
	return o.server.Addr()
}

// Close flushes the file exports (Chrome trace to TracePath, flight
// recorder to EventsPath) and stops the debug server. It is safe on a
// nil observer and safe to call once at tool exit.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	var errs []error
	if o.TracePath != "" {
		if err := writeFileWith(o.TracePath, func(f *os.File) error {
			return WriteChromeTrace(f, o.Tracer.Events())
		}); err != nil {
			errs = append(errs, fmt.Errorf("obs: writing trace: %w", err))
		}
	}
	if o.EventsPath != "" {
		if err := writeFileWith(o.EventsPath, func(f *os.File) error {
			return o.Events.WriteJSONL(f)
		}); err != nil {
			errs = append(errs, fmt.Errorf("obs: writing events: %w", err))
		}
	}
	if o.server != nil {
		if err := o.server.Close(); err != nil {
			errs = append(errs, fmt.Errorf("obs: closing debug server: %w", err))
		}
		o.server = nil
	}
	return errors.Join(errs...)
}

// writeFileWith creates path, runs write, and keeps the first error
// (including the close, which carries the flush).
func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
