// Package obs is the observability subsystem: span tracing with
// deterministic IDs, a unified metrics registry exportable as Prometheus
// text and expvar-style JSON, Chrome trace-event timelines (loadable in
// Perfetto), a JSONL event log with a bounded flight-recorder ring, and
// an opt-in debug HTTP server.
//
// The package is standard-library only and imports nothing else from the
// repository, so every layer — pipeline, CLI harness, report — can
// depend on it without cycles.
//
// Wall-clock discipline: the rest of the repository never calls time.Now
// directly (repolint's determinism analyzer enforces this for
// internal/pipeline and internal/obs itself). All host-time readings go
// through the Clock interface; System() is the one sanctioned shim onto
// the real clock, and Fake provides a deterministic clock for tests and
// golden exports. Simulated time is a different axis entirely — it comes
// from sim cycles and reaches this package only as pre-computed
// TraceEvent timestamps.
package obs

import (
	"sync"
	"time"
)

// Clock abstracts wall-clock reads so instrumented code can run under
// the real clock in production and a deterministic fake in tests. It is
// the only sanctioned path to host time outside internal/cli.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time
}

// System returns the process wall clock.
func System() Clock { return systemClock{} }

type systemClock struct{}

// Now reads the host clock. This is the repository's single sanctioned
// real-clock shim; everything else injects a Clock.
func (systemClock) Now() time.Time {
	//lint:allow determinism the one sanctioned wall-clock read; all other packages inject obs.Clock
	return time.Now()
}

// Fake is a deterministic Clock for tests and golden exports: it starts
// at a fixed instant and advances by a fixed step on every read, so a
// sequence of instrumented operations produces identical timestamps —
// and therefore byte-identical trace and metrics exports — on every run.
type Fake struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

// NewFake returns a fake clock starting at start that advances by step
// after each Now call (step 0 freezes the clock).
func NewFake(start time.Time, step time.Duration) *Fake {
	return &Fake{now: start, step: step}
}

// Now returns the fake instant, then advances the clock by the step.
// A nil Fake reads as the zero time: like every obs handle, the nil
// value is a safe no-op.
func (c *Fake) Now() time.Time {
	if c == nil {
		return time.Time{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// Advance moves the fake clock forward by d without counting as a read.
// Advancing a nil Fake is a no-op.
func (c *Fake) Advance(d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}
