// Package report renders characterizations as plain-text tables and
// figures: the reproduction's equivalent of the paper's tables
// (inter-arrival fits per application) and figures (inter-arrival
// histograms with fitted CDFs, spatial "fraction of messages from pX"
// bar charts, and message-volume distributions).
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/stats"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bars renders a horizontal bar chart: one labeled bar per value, scaled to
// width characters at the maximum value.
func Bars(w io.Writer, title string, labels []string, values []float64, width int) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(math.Round(float64(width) * v / max))
		}
		fmt.Fprintf(w, "  %s |%s %.4f\n", pad(labels[i], labelW), strings.Repeat("#", n), v)
	}
}

// CDFOverlay renders the empirical CDF of the sample against the fitted
// distribution at evenly spaced quantiles — the textual form of the paper's
// "measured vs. fitted" inter-arrival figures.
func CDFOverlay(w io.Writer, title string, samples []float64, d stats.Distribution, points, width int) {
	if len(samples) == 0 || points < 2 {
		return
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	ecdf := stats.NewECDF(samples)
	xs, ys := ecdf.Points(points)
	fmt.Fprintf(w, "  %-14s %-9s %-9s  (E = empirical, + = fitted, * = both)\n", "x (ns)", "F_emp", "F_fit")
	for i := range xs {
		fe, ff := ys[i], d.CDF(xs[i])
		pe := int(math.Round(float64(width) * fe))
		pf := int(math.Round(float64(width) * ff))
		row := make([]byte, width+1)
		for j := range row {
			row[j] = ' '
		}
		put := func(p int, c byte) {
			if p < 0 {
				p = 0
			}
			if p > width {
				p = width
			}
			if row[p] != ' ' && row[p] != c {
				row[p] = '*'
			} else {
				row[p] = c
			}
		}
		put(pe, 'E')
		put(pf, '+')
		fmt.Fprintf(w, "  %-14.4g %-9.4f %-9.4f |%s|\n", xs[i], fe, ff, string(row))
	}
}

// SpatialFigure renders the paper's per-source spatial figure: "fraction of
// messages sent by processor src to others in the system".
func SpatialFigure(w io.Writer, c *core.Characterization, src int, width int) {
	sd := c.Spatial[src]
	labels := make([]string, c.Procs)
	for i := range labels {
		labels[i] = fmt.Sprintf("p%d", i)
	}
	title := fmt.Sprintf("Message Distribution for p%d (%d procs) — pattern: %s",
		src, c.Procs, sd.Pattern)
	Bars(w, title, labels, sd.Fractions, width)
}

// VolumeFigure renders the message-length spectrum.
func VolumeFigure(w io.Writer, c *core.Characterization, width int) {
	labels := make([]string, len(c.Volume.Distinct))
	values := make([]float64, len(c.Volume.Distinct))
	for i, lc := range c.Volume.Distinct {
		labels[i] = fmt.Sprintf("%dB", lc.Bytes)
		values[i] = float64(lc.Count) / float64(c.Volume.Total)
	}
	Bars(w, fmt.Sprintf("Message Volume Distribution — %s (mean %.1fB, %d msgs)",
		c.Name, c.Volume.Mean, c.Volume.Total), labels, values, width)
}

// RateFigure renders the message-generation-rate time series: the temporal
// attribute as the paper's "message generation frequency", exposing phase
// structure.
func RateFigure(w io.Writer, c *core.Characterization, windows, width int) {
	pts := c.RateOverTime(windows)
	if len(pts) == 0 {
		return
	}
	var max float64
	for _, p := range pts {
		if p.Rate > max {
			max = p.Rate
		}
	}
	fmt.Fprintf(w, "Message generation rate over time — %s (peak %.2f msg/us, burst ratio %.1f)\n",
		c.Name, max, c.BurstRatio(windows))
	for _, p := range pts {
		n := 0
		if max > 0 {
			n = int(math.Round(float64(width) * p.Rate / max))
		}
		fmt.Fprintf(w, "  t=%8.1fus |%s %.2f\n", float64(p.Start)/1000, strings.Repeat("#", n), p.Rate)
	}
}

// FitRow formats a fitted family for a table: name, parameters, R².
func FitRow(f *stats.CandidateFit) (name, params, r2 string) {
	if f == nil {
		return "-", "-", "-"
	}
	return f.Dist.Name(), f.Dist.String(), fmt.Sprintf("%.4f", f.R2)
}

// TemporalTable builds the paper's headline table: one row per application
// with the winning inter-arrival family, its parameters, R², KS, and the
// sample statistics.
func TemporalTable(title string, cs []*core.Characterization) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"Application", "Strategy", "Msgs", "MeanGap(us)", "CV", "BestFit", "Parameters", "R2", "KS"},
	}
	for _, c := range cs {
		best := c.BestAggregate()
		name, params, r2 := FitRow(best)
		ks := "-"
		if best != nil {
			ks = fmt.Sprintf("%.4f", best.KS)
		}
		t.AddRow(
			c.Name, string(c.Strategy),
			fmt.Sprintf("%d", c.Messages),
			fmt.Sprintf("%.2f", c.Aggregate.Summary.Mean/1000),
			fmt.Sprintf("%.2f", c.Aggregate.Summary.CV),
			name, params, r2, ks,
		)
	}
	return t
}

// SpatialTable summarizes every application's dominant spatial pattern.
func SpatialTable(title string, cs []*core.Characterization) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"Application", "DominantPattern", "Sources", "MeanEntropy", "MeanFavFrac"},
	}
	for _, c := range cs {
		pattern, n := c.DominantSpatial()
		var entSum, favSum float64
		var active int
		for _, s := range c.Spatial {
			if s.Total == 0 {
				continue
			}
			active++
			entSum += s.Entropy
			favSum += s.FavoriteFraction
		}
		ent, fav := 0.0, 0.0
		if active > 0 {
			ent, fav = entSum/float64(active), favSum/float64(active)
		}
		t.AddRow(c.Name, pattern.String(), fmt.Sprintf("%d/%d", n, active),
			fmt.Sprintf("%.3f", ent), fmt.Sprintf("%.3f", fav))
	}
	return t
}

// VolumeTable summarizes the volume attribute across applications.
func VolumeTable(title string, cs []*core.Characterization) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"Application", "Msgs", "TotalKB", "MeanBytes", "DistinctLens", "Top", "Bimodal"},
	}
	for _, c := range cs {
		top := "-"
		if len(c.Volume.Distinct) > 0 {
			lc := c.Volume.Distinct[0]
			top = fmt.Sprintf("%dB x%d", lc.Bytes, lc.Count)
		}
		t.AddRow(c.Name,
			fmt.Sprintf("%d", c.Messages),
			fmt.Sprintf("%.1f", float64(c.TotalBytes)/1024),
			fmt.Sprintf("%.1f", c.Volume.Mean),
			fmt.Sprintf("%d", len(c.Volume.Distinct)),
			top,
			fmt.Sprintf("%v", c.Volume.Bimodal),
		)
	}
	return t
}

// Render writes the complete characterization report for one application:
// summary, per-source temporal fits, spatial figures for p0/p1, and the
// volume spectrum.
func Render(w io.Writer, c *core.Characterization) {
	fmt.Fprintf(w, "=== %s (%s strategy, %d processors) ===\n", c.Name, c.Strategy, c.Procs)
	fmt.Fprintf(w, "messages: %d   bytes: %d   simulated time: %.3f ms\n",
		c.Messages, c.TotalBytes, float64(c.Elapsed)/1e6)
	fmt.Fprintf(w, "network: mean latency %.0f ns, mean blocked %.0f ns, mean hops %.2f, mean link utilization %.4f\n\n",
		c.MeanLatencyNS, c.MeanBlockedNS, c.MeanHops, c.MeanUtilization)

	tt := &Table{
		Title:   "Inter-arrival time fits per source",
		Columns: []string{"Source", "Samples", "Mean(us)", "CV", "BestFit", "R2"},
	}
	for _, s := range c.PerSource {
		name, _, r2 := FitRow(s.Best())
		tt.AddRow(fmt.Sprintf("p%d", s.Src), fmt.Sprintf("%d", s.Samples),
			fmt.Sprintf("%.2f", s.Summary.Mean/1000), fmt.Sprintf("%.2f", s.Summary.CV), name, r2)
	}
	name, params, r2 := FitRow(c.BestAggregate())
	tt.AddRow("all", fmt.Sprintf("%d", c.Aggregate.Samples),
		fmt.Sprintf("%.2f", c.Aggregate.Summary.Mean/1000),
		fmt.Sprintf("%.2f", c.Aggregate.Summary.CV), name, r2)
	tt.Render(w)
	fmt.Fprintf(w, "  aggregate model: %s\n\n", params)

	for _, src := range []int{0, 1} {
		if src < len(c.Spatial) {
			SpatialFigure(w, c, src, 40)
			fmt.Fprintln(w)
		}
	}
	VolumeFigure(w, c, 40)

	if c.Coll != nil {
		fmt.Fprintln(w)
		Collectives(w, c.Coll)
	}
}

// FaultSummary renders the fault-injection outcome of a mesh run: how much
// of the traffic was touched by which fault class, the retransmission
// volume, and the structured per-message failures. It prints nothing for a
// clean log, so callers can emit it unconditionally.
func FaultSummary(w io.Writer, log []mesh.Delivery, failures []error) {
	flagNames := []struct {
		bit  mesh.FaultFlags
		name string
	}{
		{mesh.FaultDropped, "dropped"},
		{mesh.FaultCorrupted, "corrupted"},
		{mesh.FaultLinkDown, "link down"},
		{mesh.FaultSlowed, "slowed"},
		{mesh.FaultRerouted, "rerouted"},
		{mesh.FaultPartitioned, "partitioned"},
	}
	counts := make([]int, len(flagNames))
	var faulted, failed, retries int
	for _, d := range log {
		retries += d.Retries
		if d.Status != mesh.StatusDelivered {
			failed++
		}
		if d.Faults == 0 {
			continue
		}
		faulted++
		for i, f := range flagNames {
			if d.Faults&f.bit != 0 {
				counts[i]++
			}
		}
	}
	if faulted == 0 && failed == 0 && len(failures) == 0 {
		return
	}
	fmt.Fprintf(w, "faulted msgs  : %d of %d (%d failed, %d retransmissions)\n",
		faulted, len(log), failed, retries)
	for i, f := range flagNames {
		if counts[i] > 0 {
			fmt.Fprintf(w, "  %-11s : %d\n", f.name, counts[i])
		}
	}
	for _, err := range failures {
		fmt.Fprintf(w, "  failure     : %v\n", err)
	}
}
