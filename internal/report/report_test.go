package report

import (
	"strings"
	"testing"

	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/stats"
)

func sampleCharacterization(t *testing.T) *core.Characterization {
	t.Helper()
	st := sim.NewStream(1)
	var log []mesh.Delivery
	id := int64(0)
	for src := 0; src < 4; src++ {
		tm := sim.Time(0)
		for i := 0; i < 200; i++ {
			tm += sim.Time(st.Exponential(5000)) + 1
			dst := st.IntN(3)
			if dst >= src {
				dst++
			}
			id++
			bytes := 8
			if i%3 == 0 {
				bytes = 40
			}
			log = append(log, mesh.Delivery{
				Message: mesh.Message{ID: id, Src: src, Dst: dst, Bytes: bytes, Inject: tm},
				End:     tm + 300, Latency: 300, Hops: 2,
			})
		}
	}
	c, err := core.Analyze("TestApp", core.StrategyDynamic, log, 4, 1<<24, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow("xxx", "y")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "xxx") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, separator, row
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestBars(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "B", []string{"p0", "p1"}, []float64{1, 0.5}, 10)
	out := sb.String()
	if !strings.Contains(out, "##########") {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Fatalf("half bar missing:\n%s", out)
	}
}

func TestBarsZeroValues(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "", []string{"a"}, []float64{0}, 10)
	if strings.Contains(sb.String(), "#") {
		t.Fatal("zero value drew a bar")
	}
}

func TestCDFOverlay(t *testing.T) {
	d := stats.Exponential{Rate: 0.001}
	st := sim.NewStream(2)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = d.Sample(st)
	}
	var sb strings.Builder
	CDFOverlay(&sb, "overlay", xs, d, 10, 30)
	out := sb.String()
	if strings.Count(out, "\n") < 10 {
		t.Fatalf("overlay too short:\n%s", out)
	}
	// A good fit means most rows show the coincidence marker.
	if strings.Count(out, "*") < 6 {
		t.Fatalf("empirical and fitted diverge unexpectedly:\n%s", out)
	}
}

func TestRenderFullReport(t *testing.T) {
	c := sampleCharacterization(t)
	var sb strings.Builder
	Render(&sb, c)
	out := sb.String()
	for _, want := range []string{
		"=== TestApp", "Inter-arrival time fits per source",
		"Message Distribution for p0", "Message Volume Distribution",
		"aggregate model:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryTables(t *testing.T) {
	c := sampleCharacterization(t)
	cs := []*core.Characterization{c}
	var sb strings.Builder
	TemporalTable("T2", cs).Render(&sb)
	SpatialTable("S", cs).Render(&sb)
	VolumeTable("V", cs).Render(&sb)
	out := sb.String()
	for _, want := range []string{"T2", "BestFit", "DominantPattern", "Bimodal", "TestApp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary tables missing %q:\n%s", want, out)
		}
	}
}

func TestFitRowNil(t *testing.T) {
	n, p, r := FitRow(nil)
	if n != "-" || p != "-" || r != "-" {
		t.Fatal("nil fit row not dashed")
	}
}
