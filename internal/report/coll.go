package report

import (
	"fmt"
	"io"

	"commchar/internal/coll"
)

// maxInstanceRows caps the per-instance table so apps with hundreds of
// collectives (iterative solvers) keep readable reports.
const maxInstanceRows = 12

// Collectives renders the collective-communication and asynchronicity
// section: the fitted per-op span models, the per-instance records, and
// the idle-wave/desynchronization figures from the reconstructed
// per-rank timelines.
func Collectives(w io.Writer, cc *coll.Characterization) {
	if cc == nil {
		return
	}
	fmt.Fprintf(w, "Collectives & asynchronicity — %d instances, %d messages (%d point-to-point), %.1f KB\n",
		len(cc.Instances), cc.Messages, cc.PointToPoint, float64(cc.Bytes)/1024)

	mt := &Table{
		Title:   "Fitted span models per op (span = L + o*S + G*S*m, ns)",
		Columns: []string{"Op", "Alg", "Count", "Msgs", "MeanSpan(us)", "L(ns)", "o(ns)", "G(ns/B)", "R2", "MeanRelErr", "MaxRelErr"},
	}
	for _, m := range cc.PerOp {
		mt.AddRow(m.Op, m.Algorithm,
			fmt.Sprintf("%d", m.Count),
			fmt.Sprintf("%d", m.Messages),
			fmt.Sprintf("%.2f", m.MeanSpanNS/1000),
			fmt.Sprintf("%.0f", m.L),
			fmt.Sprintf("%.1f", m.O),
			fmt.Sprintf("%.3f", m.G),
			fmt.Sprintf("%.4f", m.R2),
			fmt.Sprintf("%.4f", m.MeanRelErr),
			fmt.Sprintf("%.4f", m.MaxRelErr),
		)
	}
	mt.Render(w)
	fmt.Fprintln(w)

	it := &Table{
		Title:   fmt.Sprintf("Collective instances (first %d of %d)", min(maxInstanceRows, len(cc.Instances)), len(cc.Instances)),
		Columns: []string{"Seq", "Op", "Alg", "Shape", "Root", "P", "Bytes", "Regime", "Span(us)", "DesyncIdx", "Wave(ns/rank)"},
	}
	for i, inst := range cc.Instances {
		if i >= maxInstanceRows {
			break
		}
		op := inst.Op
		if inst.Composite != "" {
			op = inst.Composite + ":" + inst.Op
		}
		root := "-"
		if inst.Root >= 0 {
			root = fmt.Sprintf("p%d", inst.Root)
		}
		it.AddRow(
			fmt.Sprintf("%d", inst.Seq), op, inst.Algorithm, inst.Shape, root,
			fmt.Sprintf("%d", inst.Ranks),
			fmt.Sprintf("%d", inst.MsgBytes),
			inst.Regime,
			fmt.Sprintf("%.2f", float64(inst.Span)/1000),
			fmt.Sprintf("%.3f", inst.DesyncIndex),
			fmt.Sprintf("%.1f", inst.WaveNSPerRank),
		)
	}
	it.Render(w)
	fmt.Fprintln(w)

	rt := &Table{
		Title:   "Per-rank activity (reconstructed timeline)",
		Columns: []string{"Rank", "Busy(us)", "Overhead(us)", "Idle(us)", "IdleFrac", "Waits"},
	}
	for _, ra := range cc.Idle.PerRank {
		rt.AddRow(
			fmt.Sprintf("p%d", ra.Rank),
			fmt.Sprintf("%.2f", float64(ra.BusyNS)/1000),
			fmt.Sprintf("%.2f", float64(ra.OverheadNS)/1000),
			fmt.Sprintf("%.2f", float64(ra.IdleNS)/1000),
			fmt.Sprintf("%.4f", ra.IdleFraction),
			fmt.Sprintf("%d", ra.Waits),
		)
	}
	rt.Render(w)
	fmt.Fprintf(w, "  idle fraction: mean %.4f, max %.4f   desync index: mean %.3f   idle wave: mean |%.1f| ns/rank\n",
		cc.Idle.MeanIdleFraction, cc.Idle.MaxIdleFraction, cc.Idle.MeanDesyncIndex, cc.Idle.MeanAbsWaveNSPerRank)
}
