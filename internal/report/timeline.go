package report

import (
	"fmt"

	"commchar/internal/mesh"
	"commchar/internal/obs"
)

// MaxTimelineMessages bounds the per-run message timeline exported into
// a Chrome trace: beyond it the timeline is truncated (announced with
// an instant marker) so a huge sweep cannot balloon the trace file.
const MaxTimelineMessages = 50000

// TimelineEvents converts a run's delivery log into simulated-time
// Chrome trace slices: one Perfetto process per run, one track per
// source rank, one slice per message spanning injection to tail-flit
// delivery (sim nanoseconds rendered on the trace's microsecond axis).
// Blocked time, hop count, and fault outcomes travel as slice
// arguments, so the message-flow structure the paper characterizes
// statistically is also directly inspectable.
func TimelineEvents(label string, log []mesh.Delivery) []obs.TraceEvent {
	process := "sim " + label
	n := len(log)
	truncated := n > MaxTimelineMessages
	if truncated {
		n = MaxTimelineMessages
	}
	events := make([]obs.TraceEvent, 0, n+1)
	for _, d := range log[:n] {
		args := map[string]string{
			"bytes": fmt.Sprintf("%d", d.Bytes),
			"hops":  fmt.Sprintf("%d", d.Hops),
		}
		if d.Blocked > 0 {
			args["blocked_ns"] = fmt.Sprintf("%d", int64(d.Blocked))
		}
		if d.Retries > 0 {
			args["retries"] = fmt.Sprintf("%d", d.Retries)
		}
		if d.Faults != 0 {
			args["faults"] = d.Faults.String()
		}
		name := fmt.Sprintf("msg %d→%d", d.Src, d.Dst)
		if d.Status != mesh.StatusDelivered {
			name += " (failed)"
			args["status"] = "failed"
		}
		dur := float64(d.Latency) / 1e3
		if dur <= 0 {
			// Zero-length slices vanish in the viewer; render the
			// minimum visible width instead.
			dur = 0.001
		}
		events = append(events, obs.TraceEvent{
			Process: process,
			Track:   fmt.Sprintf("rank %02d", d.Src),
			Cat:     "msg",
			Name:    name,
			TS:      float64(d.Inject) / 1e3,
			Dur:     dur,
			Phase:   'X',
		})
		events[len(events)-1].Args = args
	}
	if truncated {
		events = append(events, obs.TraceEvent{
			Process: process, Track: "rank 00", Cat: "msg",
			Name:  "timeline truncated",
			TS:    float64(log[n-1].Inject) / 1e3,
			Phase: 'i',
			Args: map[string]string{
				"messages_total": fmt.Sprintf("%d", len(log)),
				"messages_kept":  fmt.Sprintf("%d", n),
			},
		})
	}
	return events
}
