package cli

import (
	"flag"

	"commchar/internal/obs"
)

// CommonFlags is the tool-agnostic flag set every cmd/ binary carries:
// -metrics prints the pipeline counters summary on stderr at exit, and
// -version prints the build identity and exits.
type CommonFlags struct {
	Metrics bool
	Version bool
}

// AddCommonFlags registers the common flags on a flag set.
func AddCommonFlags(fs *flag.FlagSet) *CommonFlags {
	f := &CommonFlags{}
	fs.BoolVar(&f.Metrics, "metrics", false,
		"print the pipeline metrics summary on stderr at exit")
	fs.BoolVar(&f.Version, "version", false,
		"print the build identity (module version, VCS revision, Go version) and exit")
	return f
}

// VersionString is what -version prints: the binary's module path,
// version, VCS revision, and Go toolchain, from the build metadata the
// go tool stamps into every binary.
func VersionString() string { return obs.ReadBuildInfo().String() }
