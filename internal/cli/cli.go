// Package cli is the shared command-line harness of the cmd/ tools. Every
// tool implements run(ctx, args, stdout, stderr) error; this package wires
// SIGINT/SIGTERM into the context (first signal cancels cooperatively,
// second kills), maps the returned error onto the exit-code conventions,
// and converts panics escaping a tool into structured errors instead of
// raw crashes, so a broken sub-step degrades gracefully.
//
// Exit codes:
//
//	0    success (also -h/-help)
//	1    runtime failure — the tool produced no usable result
//	2    usage mistake (bad flag value, missing argument)
//	3    degraded success — a sweep under -on-error=continue completed
//	     with partial results; some specs failed, the rest are valid
//	130  cancelled — the run was interrupted (128 + SIGINT), after
//	     draining workers and flushing the cache and journal
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"commchar/internal/resilience"
)

// Exit codes of the cmd/ tools (see the package comment).
const (
	ExitOK        = 0
	ExitFailure   = 1
	ExitUsage     = 2
	ExitDegraded  = 3
	ExitCancelled = 130
)

// UsageError marks a command-line mistake (bad flag value, missing
// argument); tools exit with ExitUsage on it.
type UsageError struct {
	Msg string
}

func (e *UsageError) Error() string { return e.Msg }

// Usagef builds a *UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{Msg: fmt.Sprintf(format, args...)}
}

// ParseFlags parses args with fs, classifying parse failures (unknown
// flag, malformed value) as usage errors; -h/-help passes through as
// flag.ErrHelp, which still exits 0.
func ParseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return Usagef("%v", err)
	}
	return nil
}

// PanicError is a panic converted into an error at a recovery boundary.
// It is an alias of the resilience package's type, kept here so existing
// errors.As call sites keep matching panics recovered at either layer.
type PanicError = resilience.PanicError

// Protect runs fn, converting a panic into a *PanicError. It is the
// recovery boundary the tools and the experiment pipeline wrap around
// sub-steps so one failing step cannot take down the whole run.
func Protect(fn func() error) error { return resilience.Protect(fn) }

// degraded is the marker interface of partial-success errors (see
// pipeline.DegradedError); defined structurally so cli does not import
// the pipeline.
type degraded interface{ Degraded() bool }

// ExitCode maps an error from run onto the process exit status (see the
// package comment for the table). Cancellation is checked before the
// degraded marker: a sweep cut short by SIGINT reports "interrupted", not
// "partially failed", even though both are true.
func ExitCode(err error) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return ExitOK
	}
	var ue *UsageError
	if errors.As(err, &ue) {
		return ExitUsage
	}
	if errors.Is(err, context.Canceled) {
		return ExitCancelled
	}
	var d degraded
	if errors.As(err, &d) && d.Degraded() {
		return ExitDegraded
	}
	return ExitFailure
}

// Main is the shared main() body: it installs the signal-cancelled
// context, runs the tool under the panic recovery boundary, reports the
// error, and exits with the conventional status. The first SIGINT or
// SIGTERM cancels the context — the tool drains its workers, flushes its
// cache and journal, and returns context.Canceled (exit 130); a second
// signal reverts to the default handler and kills the process
// immediately. A *PanicError additionally dumps the captured stack.
func Main(name string, run func(ctx context.Context, args []string, stdout, stderr io.Writer) error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Restore default signal disposition once cancellation is under
		// way, so an impatient second Ctrl-C still works.
		stop()
	}()

	err := Protect(func() error {
		return run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	})
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		var pe *PanicError
		if errors.As(err, &pe) {
			os.Stderr.Write(pe.Stack)
		}
	}
	os.Exit(ExitCode(err))
}
