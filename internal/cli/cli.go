// Package cli is the shared command-line harness of the cmd/ tools. Every
// tool implements run(args, stdout, stderr) error; this package maps the
// returned error onto the conventional exit codes (2 for usage mistakes, 1
// for runtime failures) and converts panics escaping a tool into structured
// errors instead of raw crashes, so a broken sub-step degrades gracefully.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
)

// UsageError marks a command-line mistake (bad flag value, missing
// argument); tools exit with status 2 on it.
type UsageError struct {
	Msg string
}

func (e *UsageError) Error() string { return e.Msg }

// Usagef builds a *UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{Msg: fmt.Sprintf(format, args...)}
}

// PanicError is a panic converted into an error at a recovery boundary. It
// keeps the panic value and the stack of the panicking goroutine so the
// failure stays diagnosable after recovery.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("internal error: panic: %v", e.Value)
}

// Protect runs fn, converting a panic into a *PanicError. It is the
// recovery boundary the tools and the experiment pipeline wrap around
// sub-steps so one failing step cannot take down the whole run.
func Protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// ExitCode maps an error from run onto the process exit status: 0 for nil
// (and for -h/-help), 2 for usage errors, 1 for everything else.
func ExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	default:
		var ue *UsageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
}

// Main is the shared main() body: it runs the tool under the panic
// recovery boundary, reports the error, and exits with the conventional
// status. A *PanicError additionally dumps the captured stack.
func Main(name string, run func(args []string, stdout, stderr io.Writer) error) {
	err := Protect(func() error {
		return run(os.Args[1:], os.Stdout, os.Stderr)
	})
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		var pe *PanicError
		if errors.As(err, &pe) {
			os.Stderr.Write(pe.Stack)
		}
	}
	os.Exit(ExitCode(err))
}
