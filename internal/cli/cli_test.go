package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"
	"testing"
)

// degradedErr is a stand-in for pipeline.DegradedError (cli matches the
// marker structurally, so the test does not need the pipeline).
type degradedErr struct{ err error }

func (e *degradedErr) Error() string  { return "partial: " + e.err.Error() }
func (e *degradedErr) Unwrap() error  { return e.err }
func (e *degradedErr) Degraded() bool { return true }

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"clean", nil, ExitOK},
		{"help", flag.ErrHelp, ExitOK},
		{"usage", Usagef("-trace required"), ExitUsage},
		{"wrapped usage", errors.Join(errors.New("ctx"), Usagef("bad")), ExitUsage},
		{"runtime", errors.New("boom"), ExitFailure},
		{"panic", &PanicError{Value: "boom"}, ExitFailure},
		{"cancelled", context.Canceled, ExitCancelled},
		{"wrapped cancelled", fmt.Errorf("sweep: %w", context.Canceled), ExitCancelled},
		{"deadline", context.DeadlineExceeded, ExitFailure},
		{"degraded", &degradedErr{err: errors.New("2 of 7 failed")}, ExitDegraded},
		{"wrapped degraded", fmt.Errorf("experiments: %w", &degradedErr{err: errors.New("x")}), ExitDegraded},
		// An interrupted sweep is both degraded and cancelled; the
		// interruption wins (the partial results are an artifact of the
		// interrupt, not a finding).
		{"degraded by cancellation", &degradedErr{err: fmt.Errorf("run: %w", context.Canceled)}, ExitCancelled},
		// Usage beats everything: the run never started.
		{"usage and cancelled", errors.Join(Usagef("bad"), context.Canceled), ExitUsage},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: exit %d, want %d", c.name, got, c.want)
		}
	}
}

func TestProtectConvertsPanics(t *testing.T) {
	err := Protect(func() error { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected PanicError, got %v", err)
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("panic value lost: %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("stack not captured")
	}
}

func TestProtectPassesThrough(t *testing.T) {
	want := errors.New("plain failure")
	if err := Protect(func() error { return want }); err != want {
		t.Fatalf("got %v", err)
	}
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("got %v", err)
	}
}

func TestParseFlagsClassification(t *testing.T) {
	newSet := func() *flag.FlagSet {
		fs := flag.NewFlagSet("tool", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		fs.Int("n", 1, "")
		return fs
	}

	if err := ParseFlags(newSet(), []string{"-n", "3"}); err != nil {
		t.Fatalf("clean parse: %v", err)
	}
	var ue *UsageError
	if err := ParseFlags(newSet(), []string{"-no-such-flag"}); !errors.As(err, &ue) {
		t.Fatalf("unknown flag: expected UsageError, got %v", err)
	}
	if err := ParseFlags(newSet(), []string{"-n", "zebra"}); !errors.As(err, &ue) {
		t.Fatalf("bad value: expected UsageError, got %v", err)
	}
	// -h must stay flag.ErrHelp so the tools still exit 0 on it.
	if err := ParseFlags(newSet(), []string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: expected flag.ErrHelp, got %v", err)
	}
	if got := ExitCode(ParseFlags(newSet(), []string{"-h"})); got != ExitOK {
		t.Fatalf("-h exit = %d, want %d", got, ExitOK)
	}
}
