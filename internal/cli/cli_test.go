package cli

import (
	"errors"
	"flag"
	"strings"
	"testing"
)

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"clean", nil, 0},
		{"help", flag.ErrHelp, 0},
		{"usage", Usagef("-trace required"), 2},
		{"wrapped usage", errors.Join(errors.New("ctx"), Usagef("bad")), 2},
		{"runtime", errors.New("boom"), 1},
		{"panic", &PanicError{Value: "boom"}, 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: exit %d, want %d", c.name, got, c.want)
		}
	}
}

func TestProtectConvertsPanics(t *testing.T) {
	err := Protect(func() error { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected PanicError, got %v", err)
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("panic value lost: %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("stack not captured")
	}
}

func TestProtectPassesThrough(t *testing.T) {
	want := errors.New("plain failure")
	if err := Protect(func() error { return want }); err != want {
		t.Fatalf("got %v", err)
	}
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("got %v", err)
	}
}
