package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// livelock installs a self-perpetuating event chain, so the calendar never
// drains and only cancellation (or a watchdog) can stop the run.
func livelock(s *Simulator) {
	var tick func()
	tick = func() { s.Schedule(1, tick) }
	s.Schedule(0, tick)
}

func TestRunStopsOnCancelledContext(t *testing.T) {
	s := New()
	livelock(s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.SetContext(ctx)
	s.Run() // must return instead of spinning forever
	if err := s.Interrupted(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Interrupted = %v, want context.Canceled", err)
	}
	if s.EventsFired() > 512 {
		t.Fatalf("cancellation took %d events to notice", s.EventsFired())
	}
}

func TestInterruptedNilOnCleanRun(t *testing.T) {
	s := New()
	s.SetContext(context.Background())
	s.Spawn("worker", func(p *Process) { p.Hold(10) })
	s.Run()
	if err := s.Interrupted(); err != nil {
		t.Fatalf("clean run reports %v", err)
	}
}

func TestRunCheckedContextCancellation(t *testing.T) {
	s := New()
	livelock(s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.RunCheckedContext(ctx)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected *DeadlockError, got %v", err)
	}
	// The cancellation keeps the simulator diagnostics AND unwraps to the
	// context error, so callers can errors.Is their way to exit codes.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run does not unwrap to context.Canceled: %v", err)
	}
	if !strings.Contains(de.Reason, "cancelled") {
		t.Fatalf("reason = %q", de.Reason)
	}
	if de.BudgetExceeded() {
		t.Fatal("cancellation misclassified as a watchdog budget trip")
	}
}

func TestDeadlockErrorBudgetClassification(t *testing.T) {
	s := New()
	livelock(s)
	s.SetWatchdog(Watchdog{MaxEvents: 500})
	err := s.RunChecked()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected *DeadlockError, got %v", err)
	}
	if !de.BudgetExceeded() {
		t.Fatalf("event-budget trip not classified as budget: %+v", de)
	}

	// A structural deadlock is not a budget trip.
	s2 := New()
	a := NewFacility(s2, "A")
	b := NewFacility(s2, "B")
	s2.Spawn("p1", func(p *Process) { a.Reserve(p); p.Hold(10); b.Reserve(p) })
	s2.Spawn("p2", func(p *Process) { b.Reserve(p); p.Hold(10); a.Reserve(p) })
	err = s2.RunChecked()
	if !errors.As(err, &de) {
		t.Fatalf("expected *DeadlockError, got %v", err)
	}
	if de.BudgetExceeded() {
		t.Fatal("structural deadlock misclassified as a budget trip")
	}
}
