package sim

import "testing"

func TestAccessors(t *testing.T) {
	s := New()
	if s.Pending() != 0 {
		t.Fatal("fresh simulator has pending events")
	}
	e := s.Schedule(10, func() {})
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	if e.Time() != 10 {
		t.Fatalf("event time = %d", e.Time())
	}

	f := NewFacility(s, "srv")
	if f.Name() != "srv" || f.Busy() || f.QueueLen() != 0 {
		t.Fatal("fresh facility state wrong")
	}
	if u := f.Utilization(); u != 0 {
		t.Fatalf("utilization at t=0 = %v", u)
	}

	mb := NewMailbox(s)
	mb.Put(1)
	if mb.Len() != 1 {
		t.Fatalf("mailbox len = %d", mb.Len())
	}

	var name string
	p := s.Spawn("worker", func(p *Process) {
		name = p.Name()
		if p.Sim() != s {
			t.Error("process simulator mismatch")
		}
		f.Reserve(p)
		p.Hold(50)
		f.Release(p)
	})
	_ = p
	s.Run()
	if name != "worker" {
		t.Fatalf("process name = %q", name)
	}
	// Facility was held 50 of 50 elapsed ticks.
	if u := f.Utilization(); u != 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestUtilizationWhileHeld(t *testing.T) {
	s := New()
	f := NewFacility(s, "f")
	s.Spawn("p", func(p *Process) {
		f.Reserve(p)
		p.Hold(100)
		// Never released: Utilization must count the open interval.
	})
	s.Run()
	if u := f.Utilization(); u != 1 {
		t.Fatalf("utilization with open hold = %v", u)
	}
}

func TestStreamVariates(t *testing.T) {
	st := NewStream(3)
	perm := st.Perm(10)
	seen := make([]bool, 10)
	for _, v := range perm {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", perm)
		}
		seen[v] = true
	}
	for i := 0; i < 1000; i++ {
		if v := st.Uniform(5, 7); v < 5 || v >= 7 {
			t.Fatalf("uniform out of range: %v", v)
		}
		if v := st.IntN(3); v < 0 || v > 2 {
			t.Fatalf("IntN out of range: %v", v)
		}
	}
	// Normal: mean check.
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += st.Normal(10, 2)
	}
	if m := sum / n; m < 9.9 || m > 10.1 {
		t.Fatalf("normal mean = %v", m)
	}
}
