package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %d, want 30", s.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(10, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []Duration{5, 15, 25} {
		d := d
		s.Schedule(d, func() { fired = append(fired, s.Now()) })
	}
	s.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want two events", fired)
	}
	if s.Now() != 20 {
		t.Fatalf("clock = %d, want 20", s.Now())
	}
	s.Run()
	if len(fired) != 3 || fired[2] != 25 {
		t.Fatalf("remaining event mishandled: %v", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var ts []Time
	s.Schedule(10, func() {
		ts = append(ts, s.Now())
		s.Schedule(10, func() { ts = append(ts, s.Now()) })
	})
	s.Run()
	if len(ts) != 2 || ts[0] != 10 || ts[1] != 20 {
		t.Fatalf("nested schedule times = %v", ts)
	}
}

func TestProcessHold(t *testing.T) {
	s := New()
	var marks []Time
	s.Spawn("p", func(p *Process) {
		marks = append(marks, p.Now())
		p.Hold(100)
		marks = append(marks, p.Now())
		p.Hold(50)
		marks = append(marks, p.Now())
	})
	s.Run()
	want := []Time{0, 100, 150}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Process) {
		p.Hold(10)
		order = append(order, "a10")
		p.Hold(20)
		order = append(order, "a30")
	})
	s.Spawn("b", func(p *Process) {
		p.Hold(20)
		order = append(order, "b20")
	})
	s.Run()
	if len(order) != 3 || order[0] != "a10" || order[1] != "b20" || order[2] != "a30" {
		t.Fatalf("interleaving = %v", order)
	}
}

func TestSuspendWake(t *testing.T) {
	s := New()
	var woke Time = -1
	var target *Process
	target = s.Spawn("sleeper", func(p *Process) {
		p.Suspend()
		woke = p.Now()
	})
	s.Spawn("waker", func(p *Process) {
		p.Hold(42)
		WakerFor(target).Wake()
	})
	s.Run()
	if woke != 42 {
		t.Fatalf("woke at %d, want 42", woke)
	}
}

func TestFacilityFCFSAndUtilization(t *testing.T) {
	s := New()
	f := NewFacility(s, "link")
	var grants []string
	serve := func(name string, arrive Time, service Duration) {
		s.SpawnAt(arrive, name, func(p *Process) {
			f.Reserve(p)
			grants = append(grants, name)
			p.Hold(service)
			f.Release(p)
		})
	}
	serve("a", 0, 100)
	serve("b", 10, 100)
	serve("c", 20, 100)
	s.Run()
	if len(grants) != 3 || grants[0] != "a" || grants[1] != "b" || grants[2] != "c" {
		t.Fatalf("grant order = %v", grants)
	}
	if s.Now() != 300 {
		t.Fatalf("end time = %d, want 300", s.Now())
	}
	if f.BusyTime != 300 {
		t.Fatalf("busy time = %d, want 300", f.BusyTime)
	}
	if u := f.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
	if f.MaxQueue != 2 {
		t.Fatalf("max queue = %d, want 2", f.MaxQueue)
	}
}

func TestFacilityTryReserve(t *testing.T) {
	s := New()
	f := NewFacility(s, "f")
	var got []bool
	s.Spawn("a", func(p *Process) {
		got = append(got, f.TryReserve(p))
		p.Hold(10)
		f.Release(p)
	})
	s.Spawn("b", func(p *Process) {
		got = append(got, f.TryReserve(p)) // same instant: a holds it
	})
	s.Run()
	if len(got) != 2 || !got[0] || got[1] {
		t.Fatalf("TryReserve results = %v", got)
	}
}

func TestReleaseByNonHolderPanics(t *testing.T) {
	s := New()
	f := NewFacility(s, "f")
	panicked := false
	s.Spawn("x", func(p *Process) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		f.Release(p)
	})
	s.Run()
	if !panicked {
		t.Fatal("expected panic releasing unheld facility")
	}
}

func TestSemaphore(t *testing.T) {
	s := New()
	sem := NewSemaphore(s, 2)
	var inFlight, maxInFlight int
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Process) {
			sem.Acquire(p)
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			p.Hold(10)
			inFlight--
			sem.Release()
		})
	}
	s.Run()
	if maxInFlight != 2 {
		t.Fatalf("max in flight = %d, want 2", maxInFlight)
	}
}

func TestMailboxBlockingGet(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	var got any
	var at Time
	s.Spawn("recv", func(p *Process) {
		got = mb.Get(p)
		at = p.Now()
	})
	s.Spawn("send", func(p *Process) {
		p.Hold(77)
		mb.Put("hello")
	})
	s.Run()
	if got != "hello" || at != 77 {
		t.Fatalf("got %v at %d", got, at)
	}
}

func TestMailboxFIFO(t *testing.T) {
	s := New()
	mb := NewMailbox(s)
	mb.Put(1)
	mb.Put(2)
	mb.Put(3)
	var got []int
	s.Spawn("r", func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Get(p).(int))
		}
	})
	s.Run()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("mailbox order = %v", got)
		}
	}
}

// Property: for any list of non-negative delays, events fire in sorted
// order and the clock ends at the maximum delay.
func TestEventOrderingProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := New()
		var fired []Time
		var max Time
		for _, r := range raw {
			d := Duration(r)
			if Time(d) > max {
				max = Time(d)
			}
			s.Schedule(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain of Holds accumulates exactly.
func TestHoldAccumulationProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		s := New()
		var end Time
		var sum Time
		for _, r := range raw {
			sum += Time(r)
		}
		s.Spawn("p", func(p *Process) {
			for _, r := range raw {
				p.Hold(Duration(r))
			}
			end = p.Now()
		})
		s.Run()
		return end == sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(7), NewStream(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewStream(8)
	same := true
	a2 := NewStream(7)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamExponentialMean(t *testing.T) {
	st := NewStream(123)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += st.Exponential(5.0)
	}
	mean := sum / n
	if mean < 4.9 || mean > 5.1 {
		t.Fatalf("exponential mean = %v, want ~5.0", mean)
	}
}
