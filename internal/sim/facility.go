package sim

// Facility is a single server with an FCFS queue, modeled after CSIM's
// facility. Processes Reserve it, hold it for some service time, and
// Release it. The facility accumulates busy time so utilization can be
// reported at the end of a run.
type Facility struct {
	sim  *Simulator
	name string

	busy      bool
	holder    *Process
	waiters   []*waiter
	busySince Time

	// Statistics.
	BusyTime   Duration // total time the server was held
	Grants     int64    // number of successful reservations
	QueuedTime Duration // total time processes spent waiting
	MaxQueue   int      // high-water mark of the wait queue
}

type waiter struct {
	p       *Process
	arrived Time
}

// NewFacility creates an idle facility.
func NewFacility(s *Simulator, name string) *Facility {
	return &Facility{sim: s, name: name}
}

// Name returns the facility's name.
func (f *Facility) Name() string { return f.name }

// ResourceName implements Resource for deadlock diagnostics.
func (f *Facility) ResourceName() string { return "facility " + f.name }

// Holders implements Resource: the current holder, if any.
func (f *Facility) Holders() []*Process {
	if f.holder == nil {
		return nil
	}
	return []*Process{f.holder}
}

// Busy reports whether the server is currently held.
func (f *Facility) Busy() bool { return f.busy }

// QueueLen reports the number of processes waiting.
func (f *Facility) QueueLen() int { return len(f.waiters) }

// Reserve acquires the facility for process p, blocking p in FCFS order if
// the server is busy.
func (f *Facility) Reserve(p *Process) {
	if !f.busy {
		f.grant(p)
		return
	}
	w := &waiter{p: p, arrived: f.sim.now}
	f.waiters = append(f.waiters, w)
	if len(f.waiters) > f.MaxQueue {
		f.MaxQueue = len(f.waiters)
	}
	p.SuspendOn(f)
	// Control returns here once grant() has woken us; bookkeeping was
	// done by the releaser.
}

// TryReserve acquires the facility if it is idle, without blocking.
func (f *Facility) TryReserve(p *Process) bool {
	if f.busy {
		return false
	}
	f.grant(p)
	return true
}

func (f *Facility) grant(p *Process) {
	f.busy = true
	f.holder = p
	f.busySince = f.sim.now
	f.Grants++
}

// Release frees the facility and hands it to the head of the queue, if any.
// Only the holder may release.
func (f *Facility) Release(p *Process) {
	if !f.busy || f.holder != p {
		panic("sim: Release by non-holder of facility " + f.name)
	}
	f.BusyTime += Duration(f.sim.now - f.busySince)
	f.busy = false
	f.holder = nil
	if len(f.waiters) > 0 {
		w := f.waiters[0]
		f.waiters = f.waiters[1:]
		f.QueuedTime += Duration(f.sim.now - w.arrived)
		f.grant(w.p)
		WakerFor(w.p).Wake()
	}
}

// Utilization returns the fraction of [0, Now()] the server was busy. If the
// facility is still held, the current holding interval is included.
func (f *Facility) Utilization() float64 {
	if f.sim.now == 0 {
		return 0
	}
	busy := f.BusyTime
	if f.busy {
		busy += Duration(f.sim.now - f.busySince)
	}
	return float64(busy) / float64(f.sim.now)
}

// Semaphore is a counting semaphore for processes.
type Semaphore struct {
	sim     *Simulator
	count   int
	waiters []*Process
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(s *Simulator, count int) *Semaphore {
	return &Semaphore{sim: s, count: count}
}

// ResourceName implements Resource for deadlock diagnostics.
func (sem *Semaphore) ResourceName() string { return "semaphore" }

// Holders implements Resource. A counting semaphore has no identifiable
// holder, so the wait-for graph gains no edge here.
func (sem *Semaphore) Holders() []*Process { return nil }

// Acquire decrements the count, blocking the process while the count is zero.
func (sem *Semaphore) Acquire(p *Process) {
	if sem.count > 0 {
		sem.count--
		return
	}
	sem.waiters = append(sem.waiters, p)
	p.SuspendOn(sem)
}

// Release increments the count, waking the longest-waiting process if any.
func (sem *Semaphore) Release() {
	if len(sem.waiters) > 0 {
		p := sem.waiters[0]
		sem.waiters = sem.waiters[1:]
		WakerFor(p).Wake()
		return
	}
	sem.count++
}

// Mailbox is an unbounded FIFO of items that processes can block on, in the
// style of CSIM mailboxes.
type Mailbox struct {
	sim     *Simulator
	items   []any
	waiters []*Process
}

// NewMailbox creates an empty mailbox.
func NewMailbox(s *Simulator) *Mailbox {
	return &Mailbox{sim: s}
}

// ResourceName implements Resource for deadlock diagnostics.
func (m *Mailbox) ResourceName() string { return "mailbox" }

// Holders implements Resource: no specific process holds an empty mailbox.
func (m *Mailbox) Holders() []*Process { return nil }

// Len reports the number of queued items.
func (m *Mailbox) Len() int { return len(m.items) }

// Put deposits an item, waking the longest-waiting receiver if any. Put may
// be called from kernel context or a process.
func (m *Mailbox) Put(item any) {
	m.items = append(m.items, item)
	if len(m.waiters) > 0 {
		p := m.waiters[0]
		m.waiters = m.waiters[1:]
		WakerFor(p).Wake()
	}
}

// Get removes and returns the oldest item, blocking the process while the
// mailbox is empty.
//lint:allow ctxflow blocks in simulated time via SuspendOn, not host time; the deadlock watchdog, not a ctx, bounds it
func (m *Mailbox) Get(p *Process) any {
	for len(m.items) == 0 {
		m.waiters = append(m.waiters, p)
		p.SuspendOn(m)
	}
	item := m.items[0]
	m.items = m.items[1:]
	return item
}
