package sim

import "fmt"

// Process is a coroutine that lives in simulated time, in the style of a
// CSIM process. A process runs on its own goroutine but control is handed
// off explicitly: whenever the process blocks (Hold, Suspend, or a
// synchronization primitive), the kernel resumes; whenever the kernel fires
// a resume event, the process continues. Exactly one party runs at a time.
type Process struct {
	sim    *Simulator
	name   string
	resume chan struct{}
	yield  chan struct{}
	ended  bool

	// Blocking bookkeeping for the watchdog's wait-for graph. A process is
	// "suspended" between SuspendOn and the wake that resumes it; blockedOn
	// (possibly nil) names what it waits for.
	suspended bool
	blockedOn Resource
}

// Resource is anything a process can block on that the watchdog should be
// able to describe: a facility, a link, a message channel. Holders returns
// the processes that currently prevent the waiter from proceeding (the
// wait-for graph edges); it may be empty when no specific process holds the
// resource (e.g. an empty mailbox).
type Resource interface {
	ResourceName() string
	Holders() []*Process
}

// Blocked reports whether the process is parked in Suspend/SuspendOn.
func (p *Process) Blocked() bool { return p.suspended }

// BlockedOn returns the resource the process is suspended on, or nil.
func (p *Process) BlockedOn() Resource { return p.blockedOn }

// Name returns the name given at Spawn time.
func (p *Process) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Process) Sim() *Simulator { return p.sim }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.sim.now }

// Spawn creates a process whose body starts executing at the current
// simulated time (after currently scheduled same-time events).
func (s *Simulator) Spawn(name string, body func(p *Process)) *Process {
	return s.SpawnAt(s.now, name, body)
}

// SpawnAt creates a process whose body starts executing at time t.
func (s *Simulator) SpawnAt(t Time, name string, body func(p *Process)) *Process {
	p := &Process{
		sim:    s,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	s.live++
	s.procs = append(s.procs, p)
	go func() {
		<-p.resume // wait for first activation
		body(p)
		p.ended = true
		s.live--
		p.yield <- struct{}{} // final hand-back to kernel
	}()
	s.At(t, func() { p.activate() })
	return p
}

// activate transfers control to the process and blocks until it yields.
// Must only be called from kernel context (inside an event callback).
func (p *Process) activate() {
	if p.ended {
		panic(fmt.Sprintf("sim: activating ended process %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.yield
}

// block yields control back to the kernel and waits to be activated again.
// Must only be called from the process's own goroutine.
func (p *Process) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// Hold advances the process's local view of time by d: the process sleeps
// and resumes at Now()+d.
func (p *Process) Hold(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q holds negative duration %d", p.name, d))
	}
	if d == 0 {
		return
	}
	p.sim.Schedule(d, func() { p.activate() })
	p.block()
}

// Suspend parks the process until another party calls Wake.
func (p *Process) Suspend() {
	p.SuspendOn(nil)
}

// SuspendOn parks the process until another party calls Wake, recording the
// resource it waits for so a deadlock diagnostic can name it. r may be nil.
func (p *Process) SuspendOn(r Resource) {
	p.suspended = true
	p.blockedOn = r
	p.block()
	p.suspended = false
	p.blockedOn = nil
}

// Waker resumes a suspended process at the current simulated time. It is
// safe to schedule from kernel context or from another process.
type Waker struct {
	p *Process
}

// WakerFor returns a Waker that, when fired, resumes p from Suspend.
func WakerFor(p *Process) Waker { return Waker{p: p} }

// Wake schedules the suspended process to resume now (after same-time
// events already on the calendar).
func (w Waker) Wake() {
	w.p.sim.Schedule(0, func() { w.p.activate() })
}
