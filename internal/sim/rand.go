package sim

import (
	"math"
	"math/rand/v2"
)

// Stream is a deterministic random-number stream with the variate
// generators a workload model needs. Distinct streams with distinct seeds
// are independent, so different model components never perturb each other's
// draws (the classic simulation-methodology requirement).
type Stream struct {
	rng *rand.Rand
}

// NewStream returns a stream seeded deterministically from seed.
func NewStream(seed uint64) *Stream {
	return &Stream{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Float64 returns a uniform variate in [0, 1).
func (st *Stream) Float64() float64 { return st.rng.Float64() }

// IntN returns a uniform integer in [0, n).
func (st *Stream) IntN(n int) int { return st.rng.IntN(n) }

// Perm returns a random permutation of [0, n).
func (st *Stream) Perm(n int) []int { return st.rng.Perm(n) }

// Exponential returns an exponential variate with the given mean.
//lint:allow ctxflow rejection loop over the seeded stream; terminates after finitely many draws with probability one
func (st *Stream) Exponential(mean float64) float64 {
	u := st.rng.Float64()
	for u == 0 {
		u = st.rng.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normal variate.
func (st *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*st.rng.NormFloat64()
}

// Uniform returns a uniform variate in [lo, hi).
func (st *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*st.rng.Float64()
}
