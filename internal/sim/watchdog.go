package sim

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Watchdog is the progress budget for a checked run. Any zero field is
// unlimited. The budgets guard against runaway simulations (livelock,
// retransmission storms); true communication deadlocks are detected
// structurally when the calendar drains with processes still blocked.
type Watchdog struct {
	// MaxEvents aborts the run after this many events have fired.
	MaxEvents int64
	// MaxSimTime aborts the run once the clock passes this horizon.
	MaxSimTime Time
	// MaxWall aborts the run after this much real (wall-clock) time.
	MaxWall time.Duration
}

func (w Watchdog) enabled() bool {
	return w.MaxEvents > 0 || w.MaxSimTime > 0 || w.MaxWall > 0
}

// SetWatchdog installs the progress budget consulted by RunChecked.
func (s *Simulator) SetWatchdog(w Watchdog) { s.watchdog = w }

// BlockedProcess describes one suspended process in a deadlock report:
// its name, the resource it waits on, and who holds that resource.
type BlockedProcess struct {
	Name     string
	Resource string
	Holders  []string
}

// DeadlockError is the diagnostic produced when a checked run cannot make
// progress: either a structural deadlock (calendar drained with blocked
// processes) or a watchdog budget breach. It carries the wait-for graph
// snapshot, the first cycle found in it (if any), and any dumps registered
// with AddDiagnostic.
type DeadlockError struct {
	Reason      string // what tripped: "deadlock", "event budget", ...
	Now         Time
	Events      int64
	Pending     int // events left on the calendar at abort time
	Blocked     []BlockedProcess
	Cycle       []string // process names forming a wait-for cycle, if found
	Diagnostics []string // named dumps from AddDiagnostic sources

	// Cause, when non-nil, is the underlying trigger — a cancelled
	// context's error for a run stopped by RunCheckedContext — surfaced
	// through Unwrap so errors.Is(err, context.Canceled) works.
	Cause error
}

// Unwrap exposes the underlying trigger (context cancellation) to the
// errors package; it returns nil for watchdog and structural stops.
func (e *DeadlockError) Unwrap() error { return e.Cause }

// BudgetExceeded reports whether a watchdog progress budget tripped, as
// opposed to a structural deadlock or a cancellation. Budget trips are
// the retryable kind: a livelocked run may clear under a different
// schedule or a raised budget, whereas a structural deadlock reproduces.
func (e *DeadlockError) BudgetExceeded() bool {
	return e.Cause == nil && !strings.HasPrefix(e.Reason, "deadlock")
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s at t=%d after %d events (%d pending)", e.Reason, e.Now, e.Events, e.Pending)
	if len(e.Cycle) > 0 {
		fmt.Fprintf(&b, "\n  wait-for cycle: %s", strings.Join(e.Cycle, " -> "))
	}
	for _, bp := range e.Blocked {
		fmt.Fprintf(&b, "\n  blocked: %s waits on %s", bp.Name, bp.Resource)
		if len(bp.Holders) > 0 {
			fmt.Fprintf(&b, " held by %s", strings.Join(bp.Holders, ", "))
		}
	}
	for _, d := range e.Diagnostics {
		fmt.Fprintf(&b, "\n%s", d)
	}
	return b.String()
}

// blockedSnapshot enumerates the suspended processes in spawn order.
func (s *Simulator) blockedSnapshot() []BlockedProcess {
	var out []BlockedProcess
	for _, p := range s.procs {
		if p.ended || !p.suspended {
			continue
		}
		bp := BlockedProcess{Name: p.name, Resource: "(unnamed)"}
		if r := p.blockedOn; r != nil {
			bp.Resource = r.ResourceName()
			for _, h := range r.Holders() {
				if h != nil && !h.ended {
					bp.Holders = append(bp.Holders, h.name)
				}
			}
		}
		out = append(out, bp)
	}
	return out
}

// findCycle looks for a cycle in the wait-for graph (edges from each
// suspended process to the holders of the resource it waits on) and returns
// the process names along the first cycle found, closed with its first
// node. Traversal order is spawn order, so the report is deterministic.
func (s *Simulator) findCycle() []string {
	edges := make(map[*Process][]*Process)
	for _, p := range s.procs {
		if p.ended || !p.suspended || p.blockedOn == nil {
			continue
		}
		for _, h := range p.blockedOn.Holders() {
			if h != nil && !h.ended {
				edges[p] = append(edges[p], h)
			}
		}
	}
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make(map[*Process]int)
	var path []*Process
	var dfs func(p *Process) []string
	dfs = func(p *Process) []string {
		color[p] = grey
		path = append(path, p)
		for _, h := range edges[p] {
			switch color[h] {
			case grey:
				// Found a cycle: slice the path from h's position.
				var names []string
				start := 0
				for i, q := range path {
					if q == h {
						start = i
						break
					}
				}
				for _, q := range path[start:] {
					names = append(names, q.name)
				}
				return append(names, h.name)
			case white:
				if c := dfs(h); c != nil {
					return c
				}
			}
		}
		path = path[:len(path)-1]
		color[p] = black
		return nil
	}
	for _, p := range s.procs {
		if color[p] == white && !p.ended && p.suspended {
			if c := dfs(p); c != nil {
				return c
			}
		}
	}
	return nil
}

func (s *Simulator) stallError(reason string) *DeadlockError {
	e := &DeadlockError{
		Reason:  reason,
		Now:     s.now,
		Events:  s.fired,
		Pending: len(s.queue),
		Blocked: s.blockedSnapshot(),
		Cycle:   s.findCycle(),
	}
	for _, d := range s.diagnostics {
		e.Diagnostics = append(e.Diagnostics, fmt.Sprintf("  [%s]\n%s", d.name, d.fn()))
	}
	return e
}

// RunChecked fires events until the calendar is empty, like Run, but under
// the installed watchdog and with structural deadlock detection: if the
// calendar drains while processes are still blocked, or a progress budget
// is exceeded, it stops and returns a *DeadlockError describing who waits
// on what instead of hanging or finishing silently.
func (s *Simulator) RunChecked() error {
	//lint:allow ctxflow context-free compatibility wrapper over RunCheckedContext
	return s.RunCheckedContext(context.Background())
}

// RunCheckedContext is RunChecked under cooperative cancellation: the
// cycle loop polls ctx periodically and, once it is cancelled, stops and
// returns a *DeadlockError carrying the usual blocked-process and
// wait-for diagnostics with the context's error as its Cause (so
// errors.Is(err, context.Canceled) holds). A context installed via
// SetContext is honoured as well.
func (s *Simulator) RunCheckedContext(ctx context.Context) error {
	if s.running {
		panic("sim: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()

	done := ctx.Done()
	var installed <-chan struct{}
	if s.ctx != nil {
		installed = s.ctx.Done()
	}
	cancelError := func() error {
		err := ctx.Err()
		if err == nil && s.ctx != nil {
			err = s.ctx.Err()
		}
		e := s.stallError(fmt.Sprintf("cancelled: %v", err))
		e.Cause = err
		return e
	}

	wd := s.watchdog
	var deadline time.Time
	if wd.MaxWall > 0 {
		//lint:allow determinism MaxWall is deliberately a host-wall-clock safety budget; a trip yields a transient DeadlockError (retried), never a changed characterization
		deadline = time.Now().Add(wd.MaxWall)
	}
	startEvents := s.fired
	for i := int64(0); ; i++ {
		if wd.MaxEvents > 0 && s.fired-startEvents >= wd.MaxEvents {
			return s.stallError(fmt.Sprintf("event budget of %d exceeded", wd.MaxEvents))
		}
		if wd.MaxSimTime > 0 && s.now > wd.MaxSimTime {
			return s.stallError(fmt.Sprintf("simulated-time horizon %d exceeded", wd.MaxSimTime))
		}
		// Wall-clock and cancellation checks are amortized: time.Now and
		// channel polls are cheap but not free.
		//lint:allow determinism host-clock poll of the deliberate wall-clock budget above
		if wd.MaxWall > 0 && i%1024 == 0 && time.Now().After(deadline) {
			return s.stallError(fmt.Sprintf("wall-clock budget %v exceeded", wd.MaxWall))
		}
		if i&255 == 0 {
			select {
			case <-done:
				return cancelError()
			default:
			}
			if installed != nil {
				select {
				case <-installed:
					return cancelError()
				default:
				}
			}
		}
		if !s.Step() {
			break
		}
	}
	for _, p := range s.procs {
		if !p.ended && p.suspended {
			return s.stallError("deadlock: calendar drained with blocked processes")
		}
	}
	return nil
}
