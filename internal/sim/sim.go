// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel. It plays the role CSIM plays in the paper: simulated
// time, an event calendar, coroutine-style processes, and facilities
// (servers with FCFS queues and utilization statistics).
//
// The kernel is strictly single-threaded from the simulation's point of
// view: although processes run on goroutines, exactly one goroutine (either
// the kernel or one process) executes at any instant, handed off through
// channel rendezvous. Events at equal times fire in scheduling order, so
// every run with the same inputs is bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"context"
	"fmt"
)

// Time is a point in simulated time. The kernel assigns no unit; by
// convention throughout this repository one tick is one nanosecond.
type Time int64

// Duration is a span of simulated time, in the same ticks as Time.
type Duration int64

// Common durations, following the one-tick-is-one-nanosecond convention.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       int64
	fn        func()
	index     int // heap index, -1 once removed
	cancelled bool
}

// Time reports when the event is scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the event calendar and the simulation clock.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     int64
	running bool
	// live counts spawned processes that have not terminated; it is
	// bookkeeping only (Run drains the calendar regardless).
	live int

	// procs is the spawn-ordered registry of every process, live or ended,
	// used by the watchdog to enumerate blocked processes deterministically.
	procs []*Process

	fired       int64 // events fired since construction
	watchdog    Watchdog
	diagnostics []diagnosticSource

	// ctx, when set, makes the run loops cooperatively cancellable: Run and
	// RunChecked poll it periodically and stop early once it is done.
	ctx context.Context

	// progress, when set, is called every progressEvery fired events — an
	// observation seam for live monitoring of long replays. The hook runs
	// between events and receives values only, so it cannot perturb the
	// simulation.
	progress      ProgressFunc
	progressEvery int64
}

// ProgressFunc observes a running simulation: the current simulated time
// and the cumulative events fired so far.
type ProgressFunc func(now Time, fired int64)

// SetProgress installs fn to be called every interval fired events.
// A nil fn or non-positive interval removes the hook.
func (s *Simulator) SetProgress(interval int64, fn ProgressFunc) {
	if fn == nil || interval <= 0 {
		s.progress, s.progressEvery = nil, 0
		return
	}
	s.progress, s.progressEvery = fn, interval
}

type diagnosticSource struct {
	name string
	fn   func() string
}

// EventsFired reports the number of events fired since construction.
func (s *Simulator) EventsFired() int64 { return s.fired }

// AddDiagnostic registers a named dump included in watchdog/deadlock
// reports — e.g. a network registers its in-flight messages and link
// occupancy here.
func (s *Simulator) AddDiagnostic(name string, fn func() string) {
	s.diagnostics = append(s.diagnostics, diagnosticSource{name: name, fn: fn})
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// SetContext installs the cancellation context polled by the run loops. A
// cancelled context stops Run (check Interrupted afterwards) and makes
// RunChecked return a diagnostic error wrapping the context's error.
func (s *Simulator) SetContext(ctx context.Context) { s.ctx = ctx }

// Interrupted reports whether the installed context has been cancelled,
// wrapping the context's error with the simulation state at the stop. It
// returns nil when no context is installed or the context is still live.
func (s *Simulator) Interrupted() error {
	if s.ctx == nil {
		return nil
	}
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("sim: interrupted at t=%d after %d events: %w", s.now, s.fired, err)
	}
	return nil
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending reports the number of events (including cancelled ones not yet
// reaped) remaining on the calendar.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule arranges for fn to run at Now()+d. A negative delay is an error
// in the caller; the kernel panics to surface the bug immediately.
func (s *Simulator) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.At(s.now+Time(d), fn)
}

// At arranges for fn to run at absolute time t, which must not be in the
// simulated past.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Step fires the next event, advancing the clock. It returns false when the
// calendar is empty. Step is the simulator's cycle loop — every event of
// every characterization run funnels through it — so it is a hot root:
// nothing it reaches may allocate.
//
//lint:hot
//lint:allow ctxflow pops at most one event per iteration, bounded by the calendar; cancellation is Run's and RunCheckedContext's job
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		s.fired++
		if s.progress != nil && s.fired%s.progressEvery == 0 {
			s.progress(s.now, s.fired)
		}
		e.fn()
		return true
	}
	return false
}

// Run fires events until the calendar is empty — or, when a context is
// installed, until it is cancelled (poll Interrupted to distinguish the
// two; cancellation leaves the remaining calendar untouched).
func (s *Simulator) Run() {
	if s.running {
		panic("sim: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	var done <-chan struct{}
	if s.ctx != nil {
		done = s.ctx.Done()
	}
	for i := 0; ; i++ {
		// Cancellation checks are amortized across the cycle loop; one
		// channel poll per 256 events is noise next to the event work.
		if done != nil && i&255 == 0 {
			select {
			case <-done:
				return
			default:
			}
		}
		if !s.Step() {
			return
		}
	}
}

// RunUntil fires events with time <= t, then sets the clock to t (if the
// simulation had not already advanced past it).
//lint:allow ctxflow drains only events at or before t, bounded by the calendar; cancellable runs go through RunCheckedContext
func (s *Simulator) RunUntil(t Time) {
	for len(s.queue) > 0 {
		// Peek without popping: queue[0] is the minimum.
		if s.queue[0].at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}
