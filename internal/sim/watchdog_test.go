package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRunCheckedClean(t *testing.T) {
	s := New()
	ran := 0
	s.Spawn("worker", func(p *Process) {
		p.Hold(10)
		ran++
	})
	s.SetWatchdog(Watchdog{MaxEvents: 1000, MaxWall: time.Second})
	if err := s.RunChecked(); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if ran != 1 {
		t.Fatalf("worker did not run")
	}
}

func TestRunCheckedDetectsFacilityCycle(t *testing.T) {
	s := New()
	a := NewFacility(s, "A")
	b := NewFacility(s, "B")
	// Classic two-lock deadlock: p1 holds A wants B, p2 holds B wants A.
	s.Spawn("p1", func(p *Process) {
		a.Reserve(p)
		p.Hold(10)
		b.Reserve(p)
	})
	s.Spawn("p2", func(p *Process) {
		b.Reserve(p)
		p.Hold(10)
		a.Reserve(p)
	})
	err := s.RunChecked()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Cycle) == 0 {
		t.Fatalf("no wait-for cycle in %v", de)
	}
	msg := de.Error()
	for _, want := range []string{"p1", "p2", "facility A", "facility B", "wait-for cycle"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
	if len(de.Blocked) != 2 {
		t.Errorf("expected 2 blocked processes, got %d", len(de.Blocked))
	}
}

func TestRunCheckedEventBudget(t *testing.T) {
	s := New()
	// A self-perpetuating event chain: livelock the calendar never drains.
	var tick func()
	tick = func() { s.Schedule(1, tick) }
	s.Schedule(0, tick)
	s.SetWatchdog(Watchdog{MaxEvents: 500})
	err := s.RunChecked()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if !strings.Contains(de.Reason, "event budget") {
		t.Fatalf("wrong reason: %q", de.Reason)
	}
	if de.Events < 500 {
		t.Fatalf("stopped after %d events", de.Events)
	}
}

func TestRunCheckedSimTimeHorizon(t *testing.T) {
	s := New()
	var tick func()
	tick = func() { s.Schedule(100, tick) }
	s.Schedule(0, tick)
	s.SetWatchdog(Watchdog{MaxSimTime: 10_000})
	err := s.RunChecked()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if !strings.Contains(de.Reason, "horizon") {
		t.Fatalf("wrong reason: %q", de.Reason)
	}
}

func TestDiagnosticSourcesIncluded(t *testing.T) {
	s := New()
	s.AddDiagnostic("custom", func() string { return "  42 widgets in flight" })
	s.Spawn("stuck", func(p *Process) { p.Suspend() })
	err := s.RunChecked()
	if err == nil || !strings.Contains(err.Error(), "42 widgets") {
		t.Fatalf("diagnostic dump missing: %v", err)
	}
}
