package stats

import (
	"errors"
	"fmt"
	"math"
)

// ParamTransform maps a model parameter between its natural (constrained)
// space and the unconstrained space the optimizer works in. This mirrors
// how PROC NLIN users bound rates and probabilities.
type ParamTransform int

const (
	// TransformIdentity leaves the parameter unconstrained.
	TransformIdentity ParamTransform = iota
	// TransformLog constrains the parameter to be positive.
	TransformLog
	// TransformLogit constrains the parameter to (0, 1).
	TransformLogit
)

func (t ParamTransform) toUnconstrained(v float64) float64 {
	switch t {
	case TransformLog:
		return math.Log(v)
	case TransformLogit:
		return math.Log(v / (1 - v))
	default:
		return v
	}
}

func (t ParamTransform) toNatural(u float64) float64 {
	switch t {
	case TransformLog:
		return math.Exp(u)
	case TransformLogit:
		return 1 / (1 + math.Exp(-u))
	default:
		return u
	}
}

// Model is a parametric curve y = F(theta; x) to be fitted by non-linear
// least squares. Transforms has one entry per parameter.
type Model struct {
	Name       string
	F          func(theta []float64, x float64) float64
	Transforms []ParamTransform
}

// FitOptions controls the DUD iteration.
type FitOptions struct {
	MaxIter int     // default 200
	Tol     float64 // relative RSS improvement tolerance, default 1e-10
}

func (o FitOptions) withDefaults() FitOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 400
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	return o
}

// stallLimit is how many consecutive iterations without a best-point
// improvement DUD tolerates before declaring convergence.
const stallLimit = 10

// FitResult reports the outcome of a regression.
type FitResult struct {
	Theta []float64 // fitted parameters, natural space
	RSS   float64   // residual sum of squares
	Iters int
}

// FitDUD fits the model to (xs, ys) by the DUD ("doesn't use derivatives")
// algorithm of Ralston & Jennrich — the multivariate secant method that SAS
// PROC NLIN provides and that the paper used. theta0 is the initial
// estimate in natural parameter space.
//
// DUD maintains p+1 parameter vectors; the model surface is locally
// approximated by secants through their function values, a linear
// least-squares step predicts a better point, and step halving guards the
// descent. No derivatives of F are ever taken.
func FitDUD(m Model, xs, ys []float64, theta0 []float64, opt FitOptions) (FitResult, error) {
	opt = opt.withDefaults()
	if len(xs) != len(ys) {
		return FitResult{}, fmt.Errorf("stats: %d xs vs %d ys", len(xs), len(ys))
	}
	p := len(theta0)
	if p == 0 {
		return FitResult{}, errors.New("stats: no parameters")
	}
	if len(m.Transforms) != p {
		return FitResult{}, fmt.Errorf("stats: %d transforms for %d parameters", len(m.Transforms), p)
	}
	if len(xs) < p+1 {
		return FitResult{}, fmt.Errorf("stats: %d observations cannot identify %d parameters", len(xs), p)
	}

	natural := func(u []float64) []float64 {
		th := make([]float64, p)
		for j := range th {
			th[j] = m.Transforms[j].toNatural(u[j])
		}
		return th
	}
	rss := func(u []float64) float64 {
		th := natural(u)
		var s float64
		for i := range xs {
			r := ys[i] - m.F(th, xs[i])
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return math.Inf(1)
			}
			s += r * r
		}
		return s
	}

	// Initial simplex of p+1 points: theta0 plus per-coordinate nudges.
	u0 := make([]float64, p)
	for j := range u0 {
		u0[j] = m.Transforms[j].toUnconstrained(theta0[j])
		if math.IsNaN(u0[j]) || math.IsInf(u0[j], 0) {
			return FitResult{}, fmt.Errorf("stats: initial parameter %d (%v) not in the transform's domain", j, theta0[j])
		}
	}
	pts := make([][]float64, p+1)
	vals := make([]float64, p+1)
	pts[0] = u0
	vals[0] = rss(u0)
	for j := 0; j < p; j++ {
		u := append([]float64(nil), u0...)
		step := 0.1 * math.Abs(u[j])
		if step < 0.1 {
			step = 0.1
		}
		u[j] += step
		pts[j+1] = u
		vals[j+1] = rss(u)
	}

	// order sorts points so pts[0] is worst and pts[p] is best.
	order := func() {
		for i := 0; i < len(pts); i++ {
			for k := i + 1; k < len(pts); k++ {
				if vals[k] > vals[i] {
					pts[i], pts[k] = pts[k], pts[i]
					vals[i], vals[k] = vals[k], vals[i]
				}
			}
		}
	}
	order()

	iters := 0
	stall := 0
	for ; iters < opt.MaxIter; iters++ {
		best := pts[p]
		bestVal := vals[p]
		if math.IsInf(bestVal, 1) {
			return FitResult{}, errors.New("stats: model not evaluable near initial estimate")
		}

		// Secant approximation around the best point.
		thBest := natural(best)
		gBest := make([]float64, len(xs))
		for i := range xs {
			gBest[i] = m.F(thBest, xs[i])
		}
		// Columns: dTheta[j] = pts[j] - best; dG[j][i] = F(pts[j]) - F(best).
		dTheta := make([][]float64, p)
		dG := make([][]float64, p)
		for j := 0; j < p; j++ {
			dTheta[j] = make([]float64, p)
			for k := 0; k < p; k++ {
				dTheta[j][k] = pts[j][k] - best[k]
			}
			th := natural(pts[j])
			col := make([]float64, len(xs))
			for i := range xs {
				col[i] = m.F(th, xs[i]) - gBest[i]
			}
			dG[j] = col
		}

		// Solve min_alpha || r - dG alpha || where r = y - g(best):
		// normal equations (dG^T dG) alpha = dG^T r, with ridge fallback.
		r := make([]float64, len(xs))
		for i := range xs {
			r[i] = ys[i] - gBest[i]
		}
		ata := make([][]float64, p)
		atb := make([]float64, p)
		for j := 0; j < p; j++ {
			ata[j] = make([]float64, p)
			for k := 0; k <= j; k++ {
				var s float64
				for i := range xs {
					s += dG[j][i] * dG[k][i]
				}
				ata[j][k] = s
			}
			var s float64
			for i := range xs {
				s += dG[j][i] * r[i]
			}
			atb[j] = s
		}
		for j := 0; j < p; j++ {
			for k := j + 1; k < p; k++ {
				ata[j][k] = ata[k][j]
			}
		}
		alpha, ok := solveLinear(ata, atb)
		if !ok {
			// Degenerate secant set: regularize by re-nudging the worst
			// point off the best and retry next iteration.
			for j := range pts[0] {
				pts[0][j] = best[j] + (0.05+1e-3*float64(iters))*(1+math.Abs(best[j]))*sign(float64(j%2)*2-1)
			}
			vals[0] = rss(pts[0])
			order()
			continue
		}

		// Candidate step with halving, under a trust-region cap: an
		// unconstrained-space move bigger than maxStep per coordinate
		// would leap onto the CDF's flat plateaus (F≡0 or F≡1) where the
		// secants carry no information.
		const maxStep = 2.0
		var maxMove float64
		for k := 0; k < p; k++ {
			var move float64
			for j := 0; j < p; j++ {
				move += dTheta[j][k] * alpha[j]
			}
			if a := math.Abs(move); a > maxMove {
				maxMove = a
			}
		}
		improved := false
		scale := 1.0
		if maxMove > maxStep {
			scale = maxStep / maxMove
		}
		for h := 0; h < 10; h++ {
			cand := make([]float64, p)
			for k := 0; k < p; k++ {
				var move float64
				for j := 0; j < p; j++ {
					move += dTheta[j][k] * alpha[j] * scale
				}
				cand[k] = best[k] + move
			}
			cv := rss(cand)
			if cv < vals[0] { // better than the worst: accept
				pts[0] = cand
				vals[0] = cv
				improved = true
				break
			}
			scale /= 2
		}
		if !improved {
			// Shrink the simplex toward the best point (the DUD restart
			// recommended when the secant step fails) and keep going
			// unless the simplex has collapsed.
			var size float64
			for j := 0; j < p; j++ {
				for k := 0; k < p; k++ {
					pts[j][k] = best[k] + 0.5*(pts[j][k]-best[k])
					d := pts[j][k] - best[k]
					size += d * d
				}
				vals[j] = rss(pts[j])
			}
			if size < 1e-24 {
				break
			}
			order()
			continue
		}
		prevBest := bestVal
		order()
		if prevBest-vals[p] <= opt.Tol*math.Max(prevBest, 1e-30) {
			stall++
			if stall >= stallLimit {
				break
			}
		} else {
			stall = 0
		}
	}

	order()
	return FitResult{Theta: natural(pts[p]), RSS: vals[p], Iters: iters}, nil
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// solveLinear solves A x = b for small dense systems by Gaussian elimination
// with partial pivoting. It reports false for (near-)singular systems.
func solveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-14 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		x[col], x[piv] = x[piv], x[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false
		}
	}
	return x, true
}
