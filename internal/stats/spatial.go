package stats

import (
	"fmt"
	"math"
	"sort"
)

// SpatialPattern classifies the spatial distribution of one processor's
// messages, in the paper's vocabulary.
type SpatialPattern int

const (
	// SpatialUniform: every other processor receives an equal share.
	SpatialUniform SpatialPattern = iota
	// SpatialBimodalUniform: one "favorite" processor receives the
	// maximum share and the rest receive equal shares (the pattern the
	// paper reports for IS and Cholesky).
	SpatialBimodalUniform
	// SpatialStructured: traffic concentrates on a few fixed partners
	// (butterfly, transpose, or nearest-neighbour patterns).
	SpatialStructured
	// SpatialGeneral: none of the closed forms fit; the empirical vector
	// itself is the model.
	SpatialGeneral
)

func (p SpatialPattern) String() string {
	switch p {
	case SpatialUniform:
		return "uniform"
	case SpatialBimodalUniform:
		return "bimodal-uniform"
	case SpatialStructured:
		return "structured"
	case SpatialGeneral:
		return "general"
	default:
		return fmt.Sprintf("SpatialPattern(%d)", int(p))
	}
}

// SpatialDist is the analyzed spatial distribution of one source processor.
type SpatialDist struct {
	Src       int
	Total     int       // messages sent
	Fractions []float64 // share per destination (index = processor number)
	Pattern   SpatialPattern

	// Favorite processor, meaningful for bimodal-uniform.
	Favorite         int
	FavoriteFraction float64

	// Partners is the number of destinations receiving any traffic.
	Partners int
	// Entropy is the normalized Shannon entropy of the destination
	// distribution: 1 = perfectly uniform over the other processors.
	Entropy float64
	// UniformChi is the χ² test of the full vector against uniform.
	UniformChi ChiSquareResult
	// RestChi is the χ² test of the non-favorite remainder against
	// uniform (backs the bimodal-uniform classification).
	RestChi ChiSquareResult
}

// significance threshold for the classification tests.
const spatialAlpha = 0.05

// AnalyzeSpatial classifies the destination counts of one source.
// counts[i] is the number of messages src sent to processor i; counts[src]
// is ignored (self-messages never enter the network).
func AnalyzeSpatial(src int, counts []int) SpatialDist {
	n := len(counts)
	d := SpatialDist{Src: src, Fractions: make([]float64, n), Favorite: -1}
	var others []int // destination indices excluding self
	for i, c := range counts {
		if i == src {
			continue
		}
		others = append(others, i)
		d.Total += c
		if c > 0 {
			d.Partners++
		}
	}
	if d.Total == 0 {
		d.Pattern = SpatialGeneral
		return d
	}
	for _, i := range others {
		d.Fractions[i] = float64(counts[i]) / float64(d.Total)
	}

	// Normalized entropy over the other processors.
	var h float64
	for _, i := range others {
		p := d.Fractions[i]
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	if len(others) > 1 {
		d.Entropy = h / math.Log(float64(len(others)))
	}

	// Favorite: destination with the maximum share.
	for _, i := range others {
		if d.Favorite < 0 || counts[i] > counts[d.Favorite] {
			d.Favorite = i
		}
	}
	d.FavoriteFraction = d.Fractions[d.Favorite]

	// Structured: traffic confined to a few fixed partners.
	if d.Partners <= structuredPartnerLimit(len(others)) {
		d.Pattern = SpatialStructured
		return d
	}

	// Uniform: χ² of all destinations against equal shares.
	obs := make([]int, len(others))
	exp := make([]float64, len(others))
	for k, i := range others {
		obs[k] = counts[i]
		exp[k] = 1
	}
	d.UniformChi = ChiSquareCounts(obs, exp)
	if d.UniformChi.PValue > spatialAlpha {
		d.Pattern = SpatialUniform
		return d
	}

	// Bimodal-uniform: remove the favorite; the rest must look uniform and
	// the favorite must stand clearly above them.
	restObs := make([]int, 0, len(others)-1)
	for _, i := range others {
		if i == d.Favorite {
			continue
		}
		restObs = append(restObs, counts[i])
	}
	restExp := make([]float64, len(restObs))
	for k := range restExp {
		restExp[k] = 1
	}
	d.RestChi = ChiSquareCounts(restObs, restExp)
	meanRest := (1 - d.FavoriteFraction) / float64(len(restObs))
	if d.RestChi.PValue > spatialAlpha && d.FavoriteFraction > 1.5*meanRest {
		d.Pattern = SpatialBimodalUniform
		return d
	}

	d.Pattern = SpatialGeneral
	return d
}

// structuredPartnerLimit: with n possible destinations, traffic touching at
// most ~log2(n)+1 partners is a fixed communication structure rather than a
// distribution over the machine.
func structuredPartnerLimit(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Floor(math.Log2(float64(n)))) + 1
}

// AggregateSpatial sums per-source destination counts into a single
// machine-wide destination profile and classifies it.
func AggregateSpatial(perSource [][]int) []SpatialDist {
	out := make([]SpatialDist, len(perSource))
	for src, counts := range perSource {
		out[src] = AnalyzeSpatial(src, counts)
	}
	return out
}

// LengthCount is one distinct message length and its frequency.
type LengthCount struct {
	Bytes int
	Count int
}

// LengthProfile characterizes the volume attribute: message count, mean
// length, and the distinct-length spectrum (shared-memory traffic is a
// small set of fixed sizes; message-passing traffic is app-defined).
type LengthProfile struct {
	Total    int
	Bytes    int64 // total bytes
	Mean     float64
	Distinct []LengthCount // sorted by descending count, then size
	Bimodal  bool          // exactly two distinct sizes (control + data)
}

// AnalyzeLengths builds the volume profile from raw message lengths.
func AnalyzeLengths(lengths []int) LengthProfile {
	p := LengthProfile{Total: len(lengths)}
	if len(lengths) == 0 {
		return p
	}
	byLen := map[int]int{}
	for _, l := range lengths {
		byLen[l]++
		p.Bytes += int64(l)
	}
	p.Mean = float64(p.Bytes) / float64(p.Total)
	for l, c := range byLen {
		p.Distinct = append(p.Distinct, LengthCount{Bytes: l, Count: c})
	}
	sort.SliceStable(p.Distinct, func(i, j int) bool {
		if p.Distinct[i].Count != p.Distinct[j].Count {
			return p.Distinct[i].Count > p.Distinct[j].Count
		}
		return p.Distinct[i].Bytes < p.Distinct[j].Bytes
	})
	p.Bimodal = len(p.Distinct) == 2
	return p
}
