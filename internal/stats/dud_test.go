package stats

import (
	"math"
	"testing"

	"commchar/internal/sim"
)

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := solveLinear(a, b)
	if !ok {
		t.Fatal("solver failed")
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3
	if !almostEqual(x[0], 1, 1e-9) || !almostEqual(x[1], 3, 1e-9) {
		t.Fatalf("solution = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, ok := solveLinear(a, []float64{1, 2}); ok {
		t.Fatal("singular system solved")
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Zero on the diagonal forces a pivot swap.
	a := [][]float64{{0, 1}, {1, 0}}
	x, ok := solveLinear(a, []float64{3, 4})
	if !ok || !almostEqual(x[0], 4, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("pivoted solve = %v ok=%v", x, ok)
	}
}

func TestTransformsRoundTrip(t *testing.T) {
	cases := []struct {
		tr ParamTransform
		v  float64
	}{
		{TransformIdentity, -3.5},
		{TransformLog, 0.02},
		{TransformLog, 1234},
		{TransformLogit, 0.001},
		{TransformLogit, 0.999},
	}
	for _, c := range cases {
		u := c.tr.toUnconstrained(c.v)
		back := c.tr.toNatural(u)
		if !almostEqual(back, c.v, 1e-9*math.Max(1, math.Abs(c.v))) {
			t.Errorf("transform %v: %v -> %v -> %v", c.tr, c.v, u, back)
		}
	}
}

// exponential CDF regression should recover the rate from clean data.
func TestDUDRecoversExponential(t *testing.T) {
	trueDist := Exponential{Rate: 0.37}
	var xs, ys []float64
	for x := 0.1; x < 20; x += 0.2 {
		xs = append(xs, x)
		ys = append(ys, trueDist.CDF(x))
	}
	m := Model{
		Name:       "exp",
		F:          func(th []float64, x float64) float64 { return Exponential{Rate: th[0]}.CDF(x) },
		Transforms: []ParamTransform{TransformLog},
	}
	res, err := FitDUD(m, xs, ys, []float64{1.0}, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Theta[0], 0.37, 1e-3) {
		t.Fatalf("recovered rate %v, want 0.37 (rss %v)", res.Theta[0], res.RSS)
	}
}

func TestDUDRecoversWeibull(t *testing.T) {
	trueDist := Weibull{Shape: 2.2, Scale: 5}
	var xs, ys []float64
	for x := 0.2; x < 15; x += 0.1 {
		xs = append(xs, x)
		ys = append(ys, trueDist.CDF(x))
	}
	m := Model{
		Name:       "weibull",
		F:          func(th []float64, x float64) float64 { return Weibull{Shape: th[0], Scale: th[1]}.CDF(x) },
		Transforms: []ParamTransform{TransformLog, TransformLog},
	}
	res, err := FitDUD(m, xs, ys, []float64{1, 3}, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Theta[0], 2.2, 0.02) || !almostEqual(res.Theta[1], 5, 0.05) {
		t.Fatalf("recovered %v, want [2.2 5]", res.Theta)
	}
}

func TestDUDRecoversHyperExpFromSamples(t *testing.T) {
	trueDist := HyperExp2{P: 0.7, Rate1: 3, Rate2: 0.3}
	st := sim.NewStream(11)
	sample := make([]float64, 40000)
	for i := range sample {
		sample[i] = trueDist.Sample(st)
	}
	xs, ys := NewECDF(sample).Points(200)
	m := Model{
		Name: "h2",
		F: func(th []float64, x float64) float64 {
			return HyperExp2{P: th[0], Rate1: th[1], Rate2: th[2]}.CDF(x)
		},
		Transforms: []ParamTransform{TransformLogit, TransformLog, TransformLog},
	}
	sum := Summarize(sample)
	p0, l1, l2 := hyperInit(sum.Mean, sum.CV)
	res, err := FitDUD(m, xs, ys, []float64{p0, l1, l2}, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fit := HyperExp2{P: res.Theta[0], Rate1: res.Theta[1], Rate2: res.Theta[2]}
	// Parameter identifiability of H2 is weak; check the CDF matches.
	if ks := KolmogorovSmirnov(sample, fit); ks > 0.02 {
		t.Fatalf("fitted H2 KS = %v (fit %v)", ks, fit)
	}
}

func TestDUDErrorsOnBadInput(t *testing.T) {
	m := Model{
		Name:       "exp",
		F:          func(th []float64, x float64) float64 { return Exponential{Rate: th[0]}.CDF(x) },
		Transforms: []ParamTransform{TransformLog},
	}
	if _, err := FitDUD(m, []float64{1, 2}, []float64{1}, []float64{1}, FitOptions{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitDUD(m, nil, nil, nil, FitOptions{}); err == nil {
		t.Fatal("no parameters accepted")
	}
	if _, err := FitDUD(m, []float64{1, 2}, []float64{0.1, 0.2}, []float64{-1}, FitOptions{}); err == nil {
		t.Fatal("out-of-domain init accepted (log of negative)")
	}
}

func TestDUDImprovesOnInitialGuess(t *testing.T) {
	trueDist := Exponential{Rate: 2.5}
	var xs, ys []float64
	for x := 0.05; x < 4; x += 0.05 {
		xs = append(xs, x)
		ys = append(ys, trueDist.CDF(x))
	}
	m := Model{
		Name:       "exp",
		F:          func(th []float64, x float64) float64 { return Exponential{Rate: th[0]}.CDF(x) },
		Transforms: []ParamTransform{TransformLog},
	}
	badInit := []float64{0.01}
	var initRSS float64
	for i := range xs {
		r := ys[i] - Exponential{Rate: badInit[0]}.CDF(xs[i])
		initRSS += r * r
	}
	res, err := FitDUD(m, xs, ys, badInit, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RSS >= initRSS/100 {
		t.Fatalf("RSS %v barely improved on initial %v", res.RSS, initRSS)
	}
}
