package stats

import (
	"math"
	"testing"
	"testing/quick"

	"commchar/internal/sim"
)

// allDists returns one instance of every family, for shared property tests.
func allDists() []Distribution {
	return []Distribution{
		Exponential{Rate: 0.5},
		HyperExp2{P: 0.3, Rate1: 2, Rate2: 0.2},
		Erlang{K: 4, Rate: 2},
		Weibull{Shape: 1.7, Scale: 3},
		Lognormal{Mu: 0.5, Sigma: 0.8},
		Uniform{Lo: 1, Hi: 5},
		Deterministic{Value: 2.5},
		Normal{Mu: 10, Sigma: 2},
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	for _, d := range allDists() {
		prev := -1.0
		for x := -5.0; x <= 50; x += 0.25 {
			f := d.CDF(x)
			if f < 0 || f > 1 {
				t.Fatalf("%s: CDF(%v) = %v out of [0,1]", d.Name(), x, f)
			}
			if f < prev-1e-12 {
				t.Fatalf("%s: CDF not monotone at %v", d.Name(), x)
			}
			prev = f
		}
		if d.CDF(1e12) < 0.999 {
			t.Fatalf("%s: CDF does not approach 1", d.Name())
		}
	}
}

func TestSampleMeanMatchesMean(t *testing.T) {
	const n = 100000
	for _, d := range allDists() {
		if d.Name() == "normal" {
			continue // sampling truncates at zero; mean shifts slightly
		}
		st := sim.NewStream(42)
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Sample(st)
		}
		got := sum / n
		want := d.Mean()
		tol := 0.03 * math.Max(want, 0.1)
		if math.Abs(got-want) > tol {
			t.Errorf("%s: sample mean %v, analytic %v", d.Name(), got, want)
		}
	}
}

func TestSampleAgainstCDFProperty(t *testing.T) {
	// The empirical CDF of samples must approach the analytic CDF: a
	// self-consistency check between Sample and CDF.
	for _, d := range allDists() {
		switch d.Name() {
		case "normal", "deterministic":
			// normal samples truncate at zero; the KS formula assumes a
			// continuous CDF, which a point mass is not.
			continue
		}
		st := sim.NewStream(7)
		const n = 20000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = d.Sample(st)
		}
		if ks := KolmogorovSmirnov(xs, d); ks > 0.02 {
			t.Errorf("%s: KS(sample, analytic) = %v", d.Name(), ks)
		}
	}
}

func TestErlangCDFAgainstExponential(t *testing.T) {
	// Erlang with k=1 is exponential.
	e1 := Erlang{K: 1, Rate: 0.7}
	ex := Exponential{Rate: 0.7}
	for x := 0.0; x < 20; x += 0.5 {
		if !almostEqual(e1.CDF(x), ex.CDF(x), 1e-12) {
			t.Fatalf("Erlang(1) CDF diverges from exponential at %v", x)
		}
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	w := Weibull{Shape: 1, Scale: 4}
	ex := Exponential{Rate: 0.25}
	for x := 0.0; x < 30; x += 0.5 {
		if !almostEqual(w.CDF(x), ex.CDF(x), 1e-12) {
			t.Fatalf("Weibull(1) CDF diverges at %v", x)
		}
	}
}

func TestHyperExpMean(t *testing.T) {
	d := HyperExp2{P: 0.25, Rate1: 1, Rate2: 0.1}
	want := 0.25/1.0 + 0.75/0.1
	if !almostEqual(d.Mean(), want, 1e-12) {
		t.Fatalf("mean = %v, want %v", d.Mean(), want)
	}
}

func TestDeterministicCDFStep(t *testing.T) {
	d := Deterministic{Value: 3}
	if d.CDF(2.999) != 0 || d.CDF(3) != 1 || d.CDF(4) != 1 {
		t.Fatal("deterministic CDF is not a step at the value")
	}
}

func TestUniformQuantiles(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 6}
	if d.CDF(2) != 0 || d.CDF(6) != 1 || !almostEqual(d.CDF(4), 0.5, 1e-12) {
		t.Fatal("uniform CDF wrong")
	}
}

func TestCDFNonNegativeSupportProperty(t *testing.T) {
	// Families used for inter-arrival fitting must put no mass below zero.
	prop := func(x float64) bool {
		if math.IsNaN(x) || x >= 0 {
			return true
		}
		for _, d := range allDists() {
			switch d.Name() {
			case "normal":
				continue
			}
			if d.CDF(x) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
