package stats

import (
	"testing"
	"testing/quick"

	"commchar/internal/sim"
)

func TestSpatialUniform(t *testing.T) {
	// 16 processors, src 0 sends ~equal counts everywhere else.
	st := sim.NewStream(1)
	counts := make([]int, 16)
	for i := 0; i < 15000; i++ {
		d := 1 + st.IntN(15)
		counts[d]++
	}
	sd := AnalyzeSpatial(0, counts)
	if sd.Pattern != SpatialUniform {
		t.Fatalf("pattern = %v (chi p=%v)", sd.Pattern, sd.UniformChi.PValue)
	}
	if sd.Entropy < 0.99 {
		t.Fatalf("entropy = %v", sd.Entropy)
	}
}

func TestSpatialBimodalUniform(t *testing.T) {
	// The paper's "favorite processor" pattern: one destination gets the
	// lion's share, the rest equal.
	st := sim.NewStream(2)
	counts := make([]int, 16)
	for i := 0; i < 20000; i++ {
		if st.Float64() < 0.5 {
			counts[7]++
		} else {
			// Uniform over {1..15} minus the favorite.
			d := 1 + st.IntN(14)
			if d >= 7 {
				d++
			}
			counts[d]++
		}
	}
	sd := AnalyzeSpatial(0, counts)
	if sd.Pattern != SpatialBimodalUniform {
		t.Fatalf("pattern = %v, favorite %d (%.3f)", sd.Pattern, sd.Favorite, sd.FavoriteFraction)
	}
	if sd.Favorite != 7 {
		t.Fatalf("favorite = %d, want 7", sd.Favorite)
	}
	if sd.FavoriteFraction < 0.4 {
		t.Fatalf("favorite fraction = %v", sd.FavoriteFraction)
	}
}

func TestSpatialStructured(t *testing.T) {
	// Butterfly-style: only log2(16)=4 partners.
	counts := make([]int, 16)
	counts[1] = 100
	counts[2] = 100
	counts[4] = 100
	counts[8] = 100
	sd := AnalyzeSpatial(0, counts)
	if sd.Pattern != SpatialStructured {
		t.Fatalf("pattern = %v, want structured", sd.Pattern)
	}
	if sd.Partners != 4 {
		t.Fatalf("partners = %d", sd.Partners)
	}
}

func TestSpatialGeneral(t *testing.T) {
	// Linearly increasing traffic: neither uniform nor bimodal.
	counts := make([]int, 16)
	for i := 1; i < 16; i++ {
		counts[i] = i * 100
	}
	sd := AnalyzeSpatial(0, counts)
	if sd.Pattern != SpatialGeneral {
		t.Fatalf("pattern = %v, want general", sd.Pattern)
	}
}

func TestSpatialNoTraffic(t *testing.T) {
	sd := AnalyzeSpatial(3, make([]int, 8))
	if sd.Total != 0 || sd.Pattern != SpatialGeneral {
		t.Fatalf("empty spatial = %+v", sd)
	}
}

func TestSpatialSelfExcluded(t *testing.T) {
	counts := make([]int, 8)
	counts[2] = 500 // self traffic must be ignored
	counts[1] = 10
	counts[3] = 10
	sd := AnalyzeSpatial(2, counts)
	if sd.Total != 20 {
		t.Fatalf("total = %d, want 20 (self excluded)", sd.Total)
	}
	if sd.Fractions[2] != 0 {
		t.Fatal("self fraction not zero")
	}
}

func TestSpatialFractionsSumToOneProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		st := sim.NewStream(seed)
		counts := make([]int, 16)
		for i := 0; i < 500; i++ {
			counts[st.IntN(16)]++
		}
		sd := AnalyzeSpatial(0, counts)
		if sd.Total == 0 {
			return true
		}
		var sum float64
		for _, f := range sd.Fractions {
			if f < 0 || f > 1 {
				return false
			}
			sum += f
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeLengthsBimodal(t *testing.T) {
	lengths := []int{8, 8, 8, 40, 40, 8}
	p := AnalyzeLengths(lengths)
	if !p.Bimodal {
		t.Fatal("two sizes not flagged bimodal")
	}
	if p.Total != 6 || p.Bytes != 8*4+40*2 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Distinct[0].Bytes != 8 || p.Distinct[0].Count != 4 {
		t.Fatalf("distinct = %+v", p.Distinct)
	}
}

func TestAnalyzeLengthsEmpty(t *testing.T) {
	p := AnalyzeLengths(nil)
	if p.Total != 0 || p.Bimodal {
		t.Fatalf("empty profile = %+v", p)
	}
}

func TestAggregateSpatial(t *testing.T) {
	per := [][]int{
		{0, 10, 10, 10},
		{30, 0, 0, 0},
		{5, 5, 0, 5},
		{0, 0, 0, 0},
	}
	out := AggregateSpatial(per)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	if out[1].Total != 30 || out[1].Partners != 1 {
		t.Fatalf("source 1 = %+v", out[1])
	}
}
