package stats

import (
	"encoding/json"
	"fmt"
)

// candidateFitJSON is the wire form of a CandidateFit: the distribution is
// tagged with its family name so the concrete type can be restored on
// decode (Distribution is an interface, which encoding/json cannot
// unmarshal unaided).
type candidateFitJSON struct {
	Family string
	Dist   json.RawMessage
	R2     float64
	KS     float64
	Chi    ChiSquareResult
	Iters  int
}

func decodeDist[D Distribution](raw []byte) (Distribution, error) {
	var d D
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, err
	}
	return d, nil
}

// distDecoders maps Distribution.Name() to its concrete decoder. Every
// family the fitters can produce must appear here for a fit to survive a
// serialization round trip.
var distDecoders = map[string]func([]byte) (Distribution, error){
	Exponential{}.Name():   decodeDist[Exponential],
	HyperExp2{}.Name():     decodeDist[HyperExp2],
	Erlang{}.Name():        decodeDist[Erlang],
	Weibull{}.Name():       decodeDist[Weibull],
	Lognormal{}.Name():     decodeDist[Lognormal],
	Uniform{}.Name():       decodeDist[Uniform],
	Deterministic{}.Name(): decodeDist[Deterministic],
	Normal{}.Name():        decodeDist[Normal],
	Gamma{}.Name():         decodeDist[Gamma],
	Lomax{}.Name():         decodeDist[Lomax],
}

// MarshalJSON encodes the fit with its distribution tagged by family.
func (f CandidateFit) MarshalJSON() ([]byte, error) {
	if f.Dist == nil {
		return nil, fmt.Errorf("stats: cannot serialize a fit with no distribution")
	}
	raw, err := json.Marshal(f.Dist)
	if err != nil {
		return nil, err
	}
	return json.Marshal(candidateFitJSON{
		Family: f.Dist.Name(), Dist: raw, R2: f.R2, KS: f.KS, Chi: f.Chi, Iters: f.Iters,
	})
}

// UnmarshalJSON restores a fit serialized by MarshalJSON.
func (f *CandidateFit) UnmarshalJSON(b []byte) error {
	var aux candidateFitJSON
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	dec, ok := distDecoders[aux.Family]
	if !ok {
		return fmt.Errorf("stats: unknown distribution family %q", aux.Family)
	}
	d, err := dec(aux.Dist)
	if err != nil {
		return err
	}
	*f = CandidateFit{Dist: d, R2: aux.R2, KS: aux.KS, Chi: aux.Chi, Iters: aux.Iters}
	return nil
}
