package stats

import (
	"math"
	"testing"

	"commchar/internal/sim"
)

func TestRSquaredPerfect(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if r := RSquared(y, y); r != 1 {
		t.Fatalf("R² of perfect fit = %v", r)
	}
}

func TestRSquaredMeanPredictor(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	yhat := []float64{2.5, 2.5, 2.5, 2.5}
	if r := RSquared(y, yhat); !almostEqual(r, 0, 1e-12) {
		t.Fatalf("R² of mean predictor = %v, want 0", r)
	}
}

func TestGammaIncRegKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaIncReg(1, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0; P(a, inf) -> 1.
	if GammaIncReg(3, 0) != 0 {
		t.Error("P(3,0) != 0")
	}
	if got := GammaIncReg(3, 1e6); !almostEqual(got, 1, 1e-9) {
		t.Errorf("P(3,1e6) = %v", got)
	}
	// χ² with 2 df: SF(x) = e^{-x/2}.
	for _, x := range []float64{0.5, 1, 3, 8} {
		want := math.Exp(-x / 2)
		if got := ChiSquareSF(x, 2); !almostEqual(got, want, 1e-9) {
			t.Errorf("ChiSquareSF(%v,2) = %v, want %v", x, got, want)
		}
	}
}

func TestKolmogorovSmirnovSelf(t *testing.T) {
	d := Exponential{Rate: 1}
	st := sim.NewStream(3)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = d.Sample(st)
	}
	if ks := KolmogorovSmirnov(xs, d); ks > 0.01 {
		t.Fatalf("KS against true distribution = %v", ks)
	}
	wrong := Exponential{Rate: 3}
	if ks := KolmogorovSmirnov(xs, wrong); ks < 0.2 {
		t.Fatalf("KS against wrong distribution = %v, too small", ks)
	}
}

func TestChiSquareGoFAcceptsTrueRejectsFalse(t *testing.T) {
	d := Exponential{Rate: 0.5}
	st := sim.NewStream(9)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = d.Sample(st)
	}
	good := ChiSquareGoF(xs, d, 20, 1)
	if good.PValue < 0.001 {
		t.Fatalf("true distribution rejected: %+v", good)
	}
	bad := ChiSquareGoF(xs, Exponential{Rate: 2}, 20, 1)
	if bad.PValue > 0.001 {
		t.Fatalf("wrong distribution accepted: %+v", bad)
	}
}

func TestChiSquareCountsUniform(t *testing.T) {
	obs := []int{100, 98, 102, 101, 99}
	exp := []float64{1, 1, 1, 1, 1}
	res := ChiSquareCounts(obs, exp)
	if res.PValue < 0.5 {
		t.Fatalf("near-uniform counts rejected: %+v", res)
	}
	skew := []int{400, 10, 10, 10, 10}
	res2 := ChiSquareCounts(skew, exp)
	if res2.PValue > 1e-6 {
		t.Fatalf("skewed counts accepted: %+v", res2)
	}
}
