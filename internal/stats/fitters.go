package stats

import (
	"errors"
	"math"
	"sort"
)

// CandidateFit is one fitted distribution family with its goodness-of-fit
// measures, as reported in the paper's tables.
type CandidateFit struct {
	Dist  Distribution
	R2    float64 // regression R² against the empirical CDF
	KS    float64 // Kolmogorov-Smirnov statistic
	Chi   ChiSquareResult
	Iters int // DUD iterations spent refining
}

// maxRegressionPoints bounds the ECDF points handed to DUD so fitting cost
// is independent of trace length.
const maxRegressionPoints = 256

// chiSquareBins is the equal-probability bin count used for χ² tests.
const chiSquareBins = 20

// FitInterarrival fits every candidate family to the sample by non-linear
// regression on the empirical CDF (method-of-moments or MLE starting
// values, DUD refinement) and returns the candidates sorted best-first by
// R². This is the paper's Section 3 procedure with SAS replaced by the
// stats package.
func FitInterarrival(samples []float64) ([]CandidateFit, error) {
	if len(samples) < 8 {
		return nil, errors.New("stats: too few samples to characterize")
	}
	sum := Summarize(samples)
	if sum.Mean <= 0 {
		return nil, errors.New("stats: non-positive mean; inter-arrival samples must be positive")
	}

	// Degenerate sample: a point mass. Continuous families cannot beat
	// it, and regression on a single x is ill-posed.
	if sum.StdDev <= 1e-12*math.Abs(sum.Mean) {
		return []CandidateFit{{
			Dist: Deterministic{Value: sum.Mean},
			R2:   1, KS: 0,
			Chi: ChiSquareResult{Statistic: 0, DF: 1, PValue: 1},
		}}, nil
	}

	ecdf := NewECDF(samples)
	xs, ys := ecdf.Points(maxRegressionPoints)

	var out []CandidateFit
	for _, c := range candidateModels(sum, samples) {
		fit := refineAndScore(c, xs, ys, samples)
		if fit != nil {
			out = append(out, *fit)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("stats: no candidate family could be fitted")
	}
	sortFits(out)
	return out, nil
}

// sortFits ranks candidate fits best-first under a total order: R²
// descending, then KS ascending (smaller is better), then family name.
// Ranking by R² alone is a partial order: two families that fit a
// sample equally well (R² ties are common on near-degenerate phase
// samples) would keep whatever relative order candidate enumeration
// produced, so the selected family — and with it the serialized
// characterization — could change between runs. The repolint
// determinism analyzer flags the tie-less form this replaces.
func sortFits(fits []CandidateFit) {
	sort.SliceStable(fits, func(i, j int) bool {
		if fits[i].R2 != fits[j].R2 {
			return fits[i].R2 > fits[j].R2
		}
		if fits[i].KS != fits[j].KS {
			return fits[i].KS < fits[j].KS
		}
		return fits[i].Dist.Name() < fits[j].Dist.Name()
	})
}

// candidate couples a family's CDF model with its initial estimate and a
// constructor back from the fitted parameter vector.
type candidate struct {
	model Model
	init  []float64
	build func(theta []float64) Distribution
	// nparams counted against the χ² degrees of freedom.
	nparams int
}

func candidateModels(sum Summary, samples []float64) []candidate {
	mean := sum.Mean
	cv := sum.CV

	cands := []candidate{
		{
			model: Model{
				Name: "exponential",
				F: func(th []float64, x float64) float64 {
					return Exponential{Rate: th[0]}.CDF(x)
				},
				Transforms: []ParamTransform{TransformLog},
			},
			init:    []float64{1 / mean},
			build:   func(th []float64) Distribution { return Exponential{Rate: th[0]} },
			nparams: 1,
		},
		{
			model: Model{
				Name: "weibull",
				F: func(th []float64, x float64) float64 {
					return Weibull{Shape: th[0], Scale: th[1]}.CDF(x)
				},
				Transforms: []ParamTransform{TransformLog, TransformLog},
			},
			init:    weibullInit(samples, mean),
			build:   func(th []float64) Distribution { return Weibull{Shape: th[0], Scale: th[1]} },
			nparams: 2,
		},
		{
			model: Model{
				Name: "uniform",
				F: func(th []float64, x float64) float64 {
					if th[1] <= th[0] {
						return math.NaN()
					}
					return Uniform{Lo: th[0], Hi: th[1]}.CDF(x)
				},
				Transforms: []ParamTransform{TransformIdentity, TransformIdentity},
			},
			init:    []float64{sum.Min, sum.Max},
			build:   func(th []float64) Distribution { return Uniform{Lo: th[0], Hi: th[1]} },
			nparams: 2,
		},
		{
			model: Model{
				Name: "normal",
				F: func(th []float64, x float64) float64 {
					return Normal{Mu: th[0], Sigma: th[1]}.CDF(x)
				},
				Transforms: []ParamTransform{TransformIdentity, TransformLog},
			},
			init:    []float64{mean, sum.StdDev},
			build:   func(th []float64) Distribution { return Normal{Mu: th[0], Sigma: th[1]} },
			nparams: 2,
		},
	}

	// Hyperexponential models CV > 1 (bursty traffic). Seed it from the
	// balanced-means moment match when valid, else a generic split.
	p, l1, l2 := hyperInit(mean, cv)
	cands = append(cands, candidate{
		model: Model{
			Name: "hyperexponential",
			F: func(th []float64, x float64) float64 {
				return HyperExp2{P: th[0], Rate1: th[1], Rate2: th[2]}.CDF(x)
			},
			Transforms: []ParamTransform{TransformLogit, TransformLog, TransformLog},
		},
		init:    []float64{p, l1, l2},
		build:   func(th []float64) Distribution { return HyperExp2{P: th[0], Rate1: th[1], Rate2: th[2]} },
		nparams: 3,
	})

	// Erlang-k models CV < 1; k is discrete so it is chosen by moments and
	// only the rate is regressed.
	k := erlangStages(cv)
	cands = append(cands, candidate{
		model: Model{
			Name: "erlang",
			F: func(th []float64, x float64) float64 {
				return Erlang{K: k, Rate: th[0]}.CDF(x)
			},
			Transforms: []ParamTransform{TransformLog},
		},
		init:    []float64{float64(k) / mean},
		build:   func(th []float64) Distribution { return Erlang{K: k, Rate: th[0]} },
		nparams: 2, // k and rate
	})

	// Gamma, seeded by moments (k = 1/CV², rate = k/mean).
	gk := 1.0
	if cv > 0 {
		gk = 1 / (cv * cv)
	}
	if gk < 0.05 {
		gk = 0.05
	}
	if gk > 200 {
		gk = 200
	}
	cands = append(cands, candidate{
		model: Model{
			Name: "gamma",
			F: func(th []float64, x float64) float64 {
				return Gamma{Shape: th[0], Rate: th[1]}.CDF(x)
			},
			Transforms: []ParamTransform{TransformLog, TransformLog},
		},
		init:    []float64{gk, gk / mean},
		build:   func(th []float64) Distribution { return Gamma{Shape: th[0], Rate: th[1]} },
		nparams: 2,
	})

	// Pareto (Lomax), seeded for a moderately heavy tail.
	pa := 2.5
	if cv > 1 {
		c2 := cv * cv
		if a := 2 * c2 / (c2 - 1); a > 2.05 && a < 50 {
			pa = a
		}
	}
	cands = append(cands, candidate{
		model: Model{
			Name: "pareto",
			F: func(th []float64, x float64) float64 {
				return Lomax{Alpha: th[0], Scale: th[1]}.CDF(x)
			},
			Transforms: []ParamTransform{TransformLog, TransformLog},
		},
		init:    []float64{pa, mean * (pa - 1)},
		build:   func(th []float64) Distribution { return Lomax{Alpha: th[0], Scale: th[1]} },
		nparams: 2,
	})

	// Lognormal, seeded by MLE on the positive subsample.
	if mu, sigma, ok := lognormalInit(samples); ok {
		cands = append(cands, candidate{
			model: Model{
				Name: "lognormal",
				F: func(th []float64, x float64) float64 {
					return Lognormal{Mu: th[0], Sigma: th[1]}.CDF(x)
				},
				Transforms: []ParamTransform{TransformIdentity, TransformLog},
			},
			init:    []float64{mu, sigma},
			build:   func(th []float64) Distribution { return Lognormal{Mu: th[0], Sigma: th[1]} },
			nparams: 2,
		})
	}
	return cands
}

func refineAndScore(c candidate, xs, ys []float64, samples []float64) *CandidateFit {
	theta := c.init
	iters := 0
	bestRSS := math.Inf(1)
	// Multi-start: the moment/MLE seed plus scaled variants, to dodge the
	// local minima multi-parameter families (H2 especially) suffer from.
	for _, f := range []float64{1, 0.3, 3} {
		seed := make([]float64, len(c.init))
		for j, v := range c.init {
			seed[j] = scaleParam(c.model.Transforms[j], v, f)
		}
		res, err := FitDUD(c.model, xs, ys, seed, FitOptions{})
		if err == nil && res.RSS < bestRSS {
			bestRSS = res.RSS
			theta = res.Theta
			iters += res.Iters
		}
	}
	dist := c.build(theta)
	yhat := make([]float64, len(xs))
	bad := false
	for i, x := range xs {
		yhat[i] = dist.CDF(x)
		if math.IsNaN(yhat[i]) {
			bad = true
			break
		}
	}
	if bad {
		// Fall back to the initial estimate if refinement went astray.
		dist = c.build(c.init)
		for i, x := range xs {
			yhat[i] = dist.CDF(x)
			if math.IsNaN(yhat[i]) {
				return nil
			}
		}
	}
	r2 := RSquared(ys, yhat)
	if math.IsNaN(r2) || math.IsInf(r2, 0) {
		return nil
	}
	return &CandidateFit{
		Dist:  dist,
		R2:    r2,
		KS:    KolmogorovSmirnov(samples, dist),
		Chi:   ChiSquareGoF(samples, dist, chiSquareBins, c.nparams),
		Iters: iters,
	}
}

// scaleParam perturbs a starting value for multi-start fitting in a way
// that stays inside the parameter's domain.
func scaleParam(tr ParamTransform, v, f float64) float64 {
	switch tr {
	case TransformLog:
		return v * f
	case TransformLogit:
		// Pull toward 0.5 or the edges while staying in (0,1).
		u := math.Log(v/(1-v)) * f
		return 1 / (1 + math.Exp(-u))
	default:
		if f == 1 {
			return v
		}
		return v * f
	}
}

// hyperInit returns balanced-means moment-matched H2 parameters for the
// given mean and CV, or a generic bursty split when CV <= 1.
func hyperInit(mean, cv float64) (p, l1, l2 float64) {
	c2 := cv * cv
	if c2 <= 1.0001 {
		c2 = 2 // generic burstiness seed; DUD moves it if the data disagree
	}
	p = 0.5 * (1 + math.Sqrt((c2-1)/(c2+1)))
	l1 = 2 * p / mean
	l2 = 2 * (1 - p) / mean
	return p, l1, l2
}

// erlangStages chooses k ≈ 1/CV², clamped to a sane range.
func erlangStages(cv float64) int {
	if cv <= 0 {
		return 50
	}
	k := int(math.Round(1 / (cv * cv)))
	if k < 1 {
		k = 1
	}
	if k > 50 {
		k = 50
	}
	return k
}

// weibullInit estimates (shape, scale) by linear regression on the
// linearized CDF: ln(-ln(1-F)) = k·ln x - k·ln λ.
func weibullInit(samples []float64, mean float64) []float64 {
	xs := make([]float64, 0, len(samples))
	for _, x := range samples {
		if x > 0 {
			xs = append(xs, x)
		}
	}
	if len(xs) < 8 {
		return []float64{1, mean}
	}
	sort.Float64s(xs)
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	var m int
	for i, x := range xs {
		f := (float64(i) + 0.5) / n
		lx := math.Log(x)
		ly := math.Log(-math.Log(1 - f))
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		m++
	}
	den := float64(m)*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return []float64{1, mean}
	}
	shape := (float64(m)*sxy - sx*sy) / den
	if shape <= 0.05 || math.IsNaN(shape) {
		return []float64{1, mean}
	}
	intercept := (sy - shape*sx) / float64(m)
	scale := math.Exp(-intercept / shape)
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		scale = mean
	}
	return []float64{shape, scale}
}

// lognormalInit is the MLE on the positive subsample.
func lognormalInit(samples []float64) (mu, sigma float64, ok bool) {
	var logs []float64
	for _, x := range samples {
		if x > 0 {
			logs = append(logs, math.Log(x))
		}
	}
	if len(logs) < 8 {
		return 0, 0, false
	}
	s := Summarize(logs)
	if s.StdDev <= 0 {
		return 0, 0, false
	}
	return s.Mean, s.StdDev, true
}
