package stats

import (
	"math"
	"sort"
)

// RSquared computes the coefficient of determination of predictions yhat
// against observations y: 1 - RSS/TSS.
func RSquared(y, yhat []float64) float64 {
	if len(y) != len(yhat) || len(y) == 0 {
		return math.NaN()
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var rss, tss float64
	for i := range y {
		r := y[i] - yhat[i]
		rss += r * r
		d := y[i] - mean
		tss += d * d
	}
	if tss == 0 {
		if rss == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - rss/tss
}

// KolmogorovSmirnov returns the KS statistic sup_x |F_n(x) - F(x)| of the
// sample against the distribution's CDF.
func KolmogorovSmirnov(sample []float64, d Distribution) float64 {
	n := len(sample)
	if n == 0 {
		return math.NaN()
	}
	xs := make([]float64, n)
	copy(xs, sample)
	sort.Float64s(xs)
	var ks float64
	for i, x := range xs {
		f := d.CDF(x)
		lo := math.Abs(f - float64(i)/float64(n))
		hi := math.Abs(float64(i+1)/float64(n) - f)
		if lo > ks {
			ks = lo
		}
		if hi > ks {
			ks = hi
		}
	}
	return ks
}

// ChiSquareResult is the outcome of a χ² goodness-of-fit test.
type ChiSquareResult struct {
	Statistic float64
	DF        int
	PValue    float64
}

// ChiSquareGoF performs a χ² goodness-of-fit test of the sample against the
// distribution, using equal-probability bins (so expected counts are uniform)
// and the given number of estimated parameters for the degrees of freedom.
func ChiSquareGoF(sample []float64, d Distribution, bins, estimatedParams int) ChiSquareResult {
	n := len(sample)
	if n == 0 || bins < 2 {
		return ChiSquareResult{Statistic: math.NaN(), PValue: math.NaN()}
	}
	xs := make([]float64, n)
	copy(xs, sample)
	sort.Float64s(xs)

	expected := float64(n) / float64(bins)
	var stat float64
	idx := 0
	for b := 0; b < bins; b++ {
		// Bin b covers CDF mass ((b)/bins, (b+1)/bins]; count sample
		// points whose model CDF falls there.
		upper := float64(b+1) / float64(bins)
		count := 0
		for idx < n && (d.CDF(xs[idx]) <= upper || b == bins-1) {
			count++
			idx++
		}
		diff := float64(count) - expected
		stat += diff * diff / expected
	}
	df := bins - 1 - estimatedParams
	if df < 1 {
		df = 1
	}
	return ChiSquareResult{Statistic: stat, DF: df, PValue: ChiSquareSF(stat, df)}
}

// ChiSquareCounts performs a χ² test of observed category counts against
// expected probabilities (which are normalized internally).
func ChiSquareCounts(observed []int, expectedProb []float64) ChiSquareResult {
	if len(observed) != len(expectedProb) || len(observed) < 2 {
		return ChiSquareResult{Statistic: math.NaN(), PValue: math.NaN()}
	}
	total := 0
	for _, c := range observed {
		total += c
	}
	var probSum float64
	for _, p := range expectedProb {
		probSum += p
	}
	if total == 0 || probSum <= 0 {
		return ChiSquareResult{Statistic: math.NaN(), PValue: math.NaN()}
	}
	var stat float64
	for i, c := range observed {
		e := float64(total) * expectedProb[i] / probSum
		if e <= 0 {
			if c != 0 {
				stat = math.Inf(1)
			}
			continue
		}
		diff := float64(c) - e
		stat += diff * diff / e
	}
	df := len(observed) - 1
	return ChiSquareResult{Statistic: stat, DF: df, PValue: ChiSquareSF(stat, df)}
}

// ChiSquareSF is the survival function (1 - CDF) of the χ² distribution
// with df degrees of freedom: the p-value of a test statistic.
func ChiSquareSF(x float64, df int) float64 {
	if math.IsInf(x, 1) {
		return 0
	}
	if x <= 0 {
		return 1
	}
	return 1 - GammaIncReg(float64(df)/2, x/2)
}

// GammaIncReg is the regularized lower incomplete gamma function P(a, x),
// computed by series expansion for x < a+1 and continued fraction otherwise
// (Numerical Recipes' gammp).
func GammaIncReg(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
