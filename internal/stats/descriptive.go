// Package stats is the statistical-analysis substrate of the reproduction,
// standing in for SAS/STAT in the paper's methodology. It provides
// descriptive statistics, the candidate distribution families used to model
// message inter-arrival times, non-linear least-squares fitting by the
// multivariate secant method (DUD — the method SAS PROC NLIN calls
// METHOD=DUD and the paper says it used), maximum-likelihood and
// method-of-moments initial estimators, and goodness-of-fit measures
// (R², Kolmogorov-Smirnov, χ²).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1)
	StdDev   float64
	CV       float64 // coefficient of variation: StdDev/Mean
	Min, Max float64
	Median   float64
}

// Summarize computes descriptive statistics. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	min, max := xs[0], xs[0]
	for _, x := range xs {
		sum += x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	variance := 0.0
	if n > 1 {
		variance = ss / float64(n-1)
	}
	sd := math.Sqrt(variance)
	cv := 0.0
	if mean != 0 {
		cv = sd / mean
	}
	return Summary{
		N: n, Mean: mean, Variance: variance, StdDev: sd, CV: cv,
		Min: min, Max: max, Median: Percentile(xs, 0.5),
	}
}

// Percentile returns the p-th quantile (0 <= p <= 1) using linear
// interpolation between order statistics. It copies and sorts internally.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	xs []float64 // sorted sample
}

// NewECDF builds an ECDF from a sample (copied and sorted).
func NewECDF(sample []float64) *ECDF {
	xs := make([]float64, len(sample))
	copy(xs, sample)
	sort.Float64s(xs)
	return &ECDF{xs: xs}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.xs) }

// At returns F_n(x) = fraction of sample <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.xs) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.xs, x)
	// SearchFloat64s finds the first index >= x; advance over equals.
	for i < len(e.xs) && e.xs[i] == x {
		i++
	}
	return float64(i) / float64(len(e.xs))
}

// Points returns up to max (x, F_n(x)) pairs spread evenly through the
// sorted sample, suitable as regression data. Each point uses the midpoint
// plotting position (i+0.5)/n, which avoids F=0 and F=1 exactly.
func (e *ECDF) Points(max int) (xs, ys []float64) {
	n := len(e.xs)
	if n == 0 {
		return nil, nil
	}
	if max <= 0 || max > n {
		max = n
	}
	xs = make([]float64, 0, max)
	ys = make([]float64, 0, max)
	for k := 0; k < max; k++ {
		i := k * n / max
		xs = append(xs, e.xs[i])
		ys = append(ys, (float64(i)+0.5)/float64(n))
	}
	return xs, ys
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram bins the sample into the given number of equal-width bins
// spanning [min, max]. Values exactly at max land in the last bin.
func NewHistogram(xs []float64, bins int) *Histogram {
	if bins < 1 {
		panic(fmt.Sprintf("stats: %d bins", bins))
	}
	h := &Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		return h
	}
	h.Lo, h.Hi = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Lo {
			h.Lo = x
		}
		if x > h.Hi {
			h.Hi = x
		}
	}
	width := h.Hi - h.Lo
	for _, x := range xs {
		var b int
		if width > 0 {
			pos := float64(bins) * (x - h.Lo) / width
			if !math.IsNaN(pos) {
				b = int(pos)
			}
		}
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Fraction returns the fraction of the sample in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}
