package stats

import (
	"fmt"
	"math"

	"commchar/internal/sim"
)

// Distribution is a parametric family instance: the closed-form expression
// the paper's methodology reduces a communication attribute to. Every
// distribution can evaluate its CDF (what regression fits), report its
// parameters (what the tables print), and generate variates (what the
// synthetic traffic generator consumes).
type Distribution interface {
	Name() string
	Params() map[string]float64
	CDF(x float64) float64
	Mean() float64
	Sample(st *sim.Stream) float64
	String() string
}

// ---------------------------------------------------------------- Exponential

// Exponential is the M (Markovian) inter-arrival model: CDF 1 - e^{-λx}.
type Exponential struct {
	Rate float64 // λ > 0
}

func (d Exponential) Name() string               { return "exponential" }
func (d Exponential) Params() map[string]float64 { return map[string]float64{"lambda": d.Rate} }
func (d Exponential) Mean() float64              { return 1 / d.Rate }
func (d Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-d.Rate*x)
}
func (d Exponential) Sample(st *sim.Stream) float64 { return st.Exponential(1 / d.Rate) }
func (d Exponential) String() string {
	return fmt.Sprintf("Exponential(lambda=%.6g)", d.Rate)
}

// ------------------------------------------------------------ Hyperexponential

// HyperExp2 is a two-phase hyperexponential: with probability P an
// exponential of rate Rate1, otherwise rate Rate2. CV > 1; this is the
// family the paper fits to bursty, irregular applications.
type HyperExp2 struct {
	P     float64 // 0 < P < 1
	Rate1 float64
	Rate2 float64
}

func (d HyperExp2) Name() string { return "hyperexponential" }
func (d HyperExp2) Params() map[string]float64 {
	return map[string]float64{"p": d.P, "lambda1": d.Rate1, "lambda2": d.Rate2}
}
func (d HyperExp2) Mean() float64 { return d.P/d.Rate1 + (1-d.P)/d.Rate2 }
func (d HyperExp2) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - d.P*math.Exp(-d.Rate1*x) - (1-d.P)*math.Exp(-d.Rate2*x)
}
func (d HyperExp2) Sample(st *sim.Stream) float64 {
	if st.Float64() < d.P {
		return st.Exponential(1 / d.Rate1)
	}
	return st.Exponential(1 / d.Rate2)
}
func (d HyperExp2) String() string {
	return fmt.Sprintf("HyperExp2(p=%.4g, lambda1=%.6g, lambda2=%.6g)", d.P, d.Rate1, d.Rate2)
}

// ---------------------------------------------------------------------- Erlang

// Erlang is the k-stage Erlang distribution (sum of k exponentials), the
// low-variability (CV < 1) counterpart of the hyperexponential.
type Erlang struct {
	K    int     // stages, >= 1
	Rate float64 // per-stage rate
}

func (d Erlang) Name() string { return "erlang" }
func (d Erlang) Params() map[string]float64 {
	return map[string]float64{"k": float64(d.K), "lambda": d.Rate}
}
func (d Erlang) Mean() float64 { return float64(d.K) / d.Rate }
func (d Erlang) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// 1 - sum_{i=0}^{k-1} e^{-λx} (λx)^i / i!
	lx := d.Rate * x
	term := 1.0
	sum := 1.0
	for i := 1; i < d.K; i++ {
		term *= lx / float64(i)
		sum += term
	}
	return 1 - math.Exp(-lx)*sum
}
func (d Erlang) Sample(st *sim.Stream) float64 {
	var total float64
	for i := 0; i < d.K; i++ {
		total += st.Exponential(1 / d.Rate)
	}
	return total
}
func (d Erlang) String() string {
	return fmt.Sprintf("Erlang(k=%d, lambda=%.6g)", d.K, d.Rate)
}

// --------------------------------------------------------------------- Weibull

// Weibull has CDF 1 - exp(-(x/Scale)^Shape).
type Weibull struct {
	Shape float64 // k > 0
	Scale float64 // λ > 0
}

func (d Weibull) Name() string { return "weibull" }
func (d Weibull) Params() map[string]float64 {
	return map[string]float64{"shape": d.Shape, "scale": d.Scale}
}
func (d Weibull) Mean() float64 {
	return d.Scale * math.Gamma(1+1/d.Shape)
}
func (d Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/d.Scale, d.Shape))
}
func (d Weibull) Sample(st *sim.Stream) float64 {
	u := st.Float64()
	for u == 0 {
		u = st.Float64()
	}
	return d.Scale * math.Pow(-math.Log(1-u), 1/d.Shape)
}
func (d Weibull) String() string {
	return fmt.Sprintf("Weibull(shape=%.4g, scale=%.6g)", d.Shape, d.Scale)
}

// ------------------------------------------------------------------- Lognormal

// Lognormal: ln X ~ N(Mu, Sigma²).
type Lognormal struct {
	Mu    float64
	Sigma float64 // > 0
}

func (d Lognormal) Name() string { return "lognormal" }
func (d Lognormal) Params() map[string]float64 {
	return map[string]float64{"mu": d.Mu, "sigma": d.Sigma}
}
func (d Lognormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }
func (d Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-d.Mu)/(d.Sigma*math.Sqrt2))
}
func (d Lognormal) Sample(st *sim.Stream) float64 {
	return math.Exp(st.Normal(d.Mu, d.Sigma))
}
func (d Lognormal) String() string {
	return fmt.Sprintf("Lognormal(mu=%.4g, sigma=%.4g)", d.Mu, d.Sigma)
}

// --------------------------------------------------------------------- Uniform

// Uniform is continuous uniform on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

func (d Uniform) Name() string               { return "uniform" }
func (d Uniform) Params() map[string]float64 { return map[string]float64{"lo": d.Lo, "hi": d.Hi} }
func (d Uniform) Mean() float64              { return (d.Lo + d.Hi) / 2 }
func (d Uniform) CDF(x float64) float64 {
	switch {
	case x <= d.Lo:
		return 0
	case x >= d.Hi:
		return 1
	default:
		return (x - d.Lo) / (d.Hi - d.Lo)
	}
}
func (d Uniform) Sample(st *sim.Stream) float64 { return st.Uniform(d.Lo, d.Hi) }
func (d Uniform) String() string {
	return fmt.Sprintf("Uniform(lo=%.6g, hi=%.6g)", d.Lo, d.Hi)
}

// --------------------------------------------------------------- Deterministic

// Deterministic is a point mass: every variate equals Value. It models
// fixed message lengths and lock-step phase behavior.
type Deterministic struct {
	Value float64
}

func (d Deterministic) Name() string               { return "deterministic" }
func (d Deterministic) Params() map[string]float64 { return map[string]float64{"value": d.Value} }
func (d Deterministic) Mean() float64              { return d.Value }
func (d Deterministic) CDF(x float64) float64 {
	if x < d.Value {
		return 0
	}
	return 1
}
func (d Deterministic) Sample(*sim.Stream) float64 { return d.Value }
func (d Deterministic) String() string {
	return fmt.Sprintf("Deterministic(%.6g)", d.Value)
}

// ---------------------------------------------------------------------- Normal

// Normal is the Gaussian distribution, truncated at zero when sampling for
// inter-arrival use (negative gaps are not physical).
type Normal struct {
	Mu    float64
	Sigma float64
}

func (d Normal) Name() string { return "normal" }
func (d Normal) Params() map[string]float64 {
	return map[string]float64{"mu": d.Mu, "sigma": d.Sigma}
}
func (d Normal) Mean() float64 { return d.Mu }
func (d Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-d.Mu)/(d.Sigma*math.Sqrt2))
}
func (d Normal) Sample(st *sim.Stream) float64 {
	for {
		v := st.Normal(d.Mu, d.Sigma)
		if v >= 0 {
			return v
		}
	}
}
func (d Normal) String() string {
	return fmt.Sprintf("Normal(mu=%.6g, sigma=%.6g)", d.Mu, d.Sigma)
}
