package stats

import (
	"fmt"
	"math"

	"commchar/internal/sim"
)

// Gamma is the gamma distribution with shape k and rate λ. It generalizes
// both the exponential (k=1) and the Erlang (integer k), covering CV below
// and slightly above 1 with a single two-parameter family.
type Gamma struct {
	Shape float64 // k > 0
	Rate  float64 // λ > 0
}

func (d Gamma) Name() string { return "gamma" }
func (d Gamma) Params() map[string]float64 {
	return map[string]float64{"shape": d.Shape, "lambda": d.Rate}
}
func (d Gamma) Mean() float64 { return d.Shape / d.Rate }
func (d Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaIncReg(d.Shape, d.Rate*x)
}

// Sample draws by Marsaglia-Tsang squeeze (with the k<1 boost).
func (d Gamma) Sample(st *sim.Stream) float64 {
	k := d.Shape
	boost := 1.0
	if k < 1 {
		u := st.Float64()
		for u == 0 {
			u = st.Float64()
		}
		boost = math.Pow(u, 1/k)
		k++
	}
	dd := k - 1.0/3.0
	c := 1 / math.Sqrt(9*dd)
	for {
		x := st.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := st.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * dd * v / d.Rate
		}
		if u > 0 && math.Log(u) < 0.5*x*x+dd*(1-v+math.Log(v)) {
			return boost * dd * v / d.Rate
		}
	}
}
func (d Gamma) String() string {
	return fmt.Sprintf("Gamma(shape=%.4g, lambda=%.6g)", d.Shape, d.Rate)
}

// Lomax is the Pareto type-II distribution (Pareto shifted to start at 0):
// CDF 1 - (1 + x/Scale)^(-Alpha). It models the genuinely heavy-tailed
// inter-arrival behavior of the most irregular applications.
type Lomax struct {
	Alpha float64 // tail index > 0
	Scale float64 // > 0
}

func (d Lomax) Name() string { return "pareto" }
func (d Lomax) Params() map[string]float64 {
	return map[string]float64{"alpha": d.Alpha, "scale": d.Scale}
}
func (d Lomax) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Scale / (d.Alpha - 1)
}
func (d Lomax) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Pow(1+x/d.Scale, -d.Alpha)
}
func (d Lomax) Sample(st *sim.Stream) float64 {
	u := st.Float64()
	for u == 0 {
		u = st.Float64()
	}
	return d.Scale * (math.Pow(u, -1/d.Alpha) - 1)
}
func (d Lomax) String() string {
	return fmt.Sprintf("Pareto(alpha=%.4g, scale=%.6g)", d.Alpha, d.Scale)
}
