package stats

import (
	"testing"

	"commchar/internal/sim"
)

func sampleFrom(d Distribution, n int, seed uint64) []float64 {
	st := sim.NewStream(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(st)
	}
	return xs
}

// fitRecovery runs the full pipeline on synthetic data and requires the true
// family to win (or tie within tolerance of whatever wins).
func fitRecovery(t *testing.T, trueDist Distribution, n int, seed uint64) CandidateFit {
	t.Helper()
	fits, err := FitInterarrival(sampleFrom(trueDist, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	best := fits[0]
	if best.R2 < 0.98 {
		t.Fatalf("best fit for %s is %s with R²=%v", trueDist, best.Dist, best.R2)
	}
	var trueFit *CandidateFit
	for i := range fits {
		if fits[i].Dist.Name() == trueDist.Name() {
			trueFit = &fits[i]
			break
		}
	}
	if trueFit == nil {
		t.Fatalf("true family %s missing from candidates", trueDist.Name())
	}
	if trueFit.R2 < best.R2-0.01 {
		t.Fatalf("true family %s scored R²=%v, winner %s scored %v",
			trueDist.Name(), trueFit.R2, best.Dist.Name(), best.R2)
	}
	return best
}

func TestFitRecoversExponential(t *testing.T) {
	best := fitRecovery(t, Exponential{Rate: 0.02}, 20000, 1)
	if best.KS > 0.05 {
		t.Fatalf("KS = %v", best.KS)
	}
}

func TestFitRecoversHyperexponential(t *testing.T) {
	fitRecovery(t, HyperExp2{P: 0.8, Rate1: 0.05, Rate2: 0.002}, 20000, 2)
}

func TestFitRecoversErlang(t *testing.T) {
	fitRecovery(t, Erlang{K: 4, Rate: 0.08}, 20000, 3)
}

func TestFitRecoversWeibull(t *testing.T) {
	fitRecovery(t, Weibull{Shape: 2.5, Scale: 120}, 20000, 4)
}

func TestFitRecoversUniform(t *testing.T) {
	fitRecovery(t, Uniform{Lo: 10, Hi: 30}, 20000, 5)
}

func TestFitDeterministicSample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 42
	}
	fits, err := FitInterarrival(xs)
	if err != nil {
		t.Fatal(err)
	}
	if fits[0].Dist.Name() != "deterministic" {
		t.Fatalf("constant sample fitted as %s", fits[0].Dist.Name())
	}
	if fits[0].Dist.Mean() != 42 {
		t.Fatalf("deterministic mean = %v", fits[0].Dist.Mean())
	}
}

func TestFitRejectsTinySamples(t *testing.T) {
	if _, err := FitInterarrival([]float64{1, 2, 3}); err == nil {
		t.Fatal("tiny sample accepted")
	}
}

func TestFitPreservesMean(t *testing.T) {
	trueDist := Exponential{Rate: 0.01}
	xs := sampleFrom(trueDist, 30000, 9)
	fits, err := FitInterarrival(xs)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(xs)
	got := fits[0].Dist.Mean()
	if got < 0.9*s.Mean || got > 1.1*s.Mean {
		t.Fatalf("fitted mean %v, sample mean %v", got, s.Mean)
	}
}

func TestFitsSortedByR2(t *testing.T) {
	fits, err := FitInterarrival(sampleFrom(Weibull{Shape: 3, Scale: 50}, 10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fits); i++ {
		if fits[i].R2 > fits[i-1].R2 {
			t.Fatalf("fits not sorted: %v then %v", fits[i-1].R2, fits[i].R2)
		}
	}
}

func TestErlangStages(t *testing.T) {
	if k := erlangStages(1); k != 1 {
		t.Fatalf("CV=1 -> k=%d", k)
	}
	if k := erlangStages(0.5); k != 4 {
		t.Fatalf("CV=0.5 -> k=%d", k)
	}
	if k := erlangStages(0.01); k != 50 {
		t.Fatalf("tiny CV -> k=%d (want clamp 50)", k)
	}
}

func TestHyperInitMatchesMoments(t *testing.T) {
	mean, cv := 10.0, 2.0
	p, l1, l2 := hyperInit(mean, cv)
	d := HyperExp2{P: p, Rate1: l1, Rate2: l2}
	if !almostEqual(d.Mean(), mean, 1e-9) {
		t.Fatalf("moment-matched mean = %v, want %v", d.Mean(), mean)
	}
	if p <= 0 || p >= 1 || l1 <= 0 || l2 <= 0 {
		t.Fatalf("invalid H2 parameters: %v %v %v", p, l1, l2)
	}
}

// TestSortFitsBreaksR2Ties pins the total order behind candidate
// ranking: fits with equal R² must fall back to KS (smaller first) and
// then family name, so the winning family — and the serialized
// characterization built from it — cannot depend on candidate
// enumeration order. The repolint determinism analyzer found the
// previous comparator ranking by R² alone.
func TestSortFitsBreaksR2Ties(t *testing.T) {
	mk := func(d Distribution, r2, ks float64) CandidateFit {
		return CandidateFit{Dist: d, R2: r2, KS: ks}
	}
	perms := [][]CandidateFit{
		{
			mk(Uniform{0, 1}, 0.9, 0.2),
			mk(Exponential{1}, 0.9, 0.1),
			mk(Deterministic{1}, 0.95, 0.3),
			mk(Weibull{1, 1}, 0.9, 0.1),
		},
		{
			mk(Weibull{1, 1}, 0.9, 0.1),
			mk(Deterministic{1}, 0.95, 0.3),
			mk(Uniform{0, 1}, 0.9, 0.2),
			mk(Exponential{1}, 0.9, 0.1),
		},
	}
	// Best R² first; among the 0.9 ties, KS 0.1 beats 0.2; among the
	// (0.9, 0.1) ties, "exponential" sorts before "weibull".
	want := []string{"deterministic", "exponential", "weibull", "uniform"}
	for p, fits := range perms {
		sortFits(fits)
		for i, f := range fits {
			if f.Dist.Name() != want[i] {
				t.Fatalf("perm %d: position %d is %s, want %s", p, i, f.Dist.Name(), want[i])
			}
		}
	}
}
