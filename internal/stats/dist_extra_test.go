package stats

import (
	"math"
	"testing"

	"commchar/internal/sim"
)

func TestGammaCDFSpecialCases(t *testing.T) {
	// Gamma(1, λ) is exponential.
	g := Gamma{Shape: 1, Rate: 0.4}
	e := Exponential{Rate: 0.4}
	for x := 0.0; x < 20; x += 0.5 {
		if !almostEqual(g.CDF(x), e.CDF(x), 1e-9) {
			t.Fatalf("Gamma(1) CDF diverges from exponential at %v", x)
		}
	}
	// Gamma(k∈N, λ) is Erlang.
	g4 := Gamma{Shape: 4, Rate: 2}
	e4 := Erlang{K: 4, Rate: 2}
	for x := 0.0; x < 10; x += 0.25 {
		if !almostEqual(g4.CDF(x), e4.CDF(x), 1e-9) {
			t.Fatalf("Gamma(4) CDF diverges from Erlang(4) at %v", x)
		}
	}
}

func TestGammaSampling(t *testing.T) {
	for _, d := range []Gamma{{Shape: 0.5, Rate: 1}, {Shape: 2.5, Rate: 0.2}, {Shape: 9, Rate: 3}} {
		st := sim.NewStream(11)
		const n = 60000
		var sum float64
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = d.Sample(st)
			sum += xs[i]
		}
		mean := sum / n
		if math.Abs(mean-d.Mean()) > 0.03*d.Mean() {
			t.Fatalf("%v sample mean %v, want %v", d, mean, d.Mean())
		}
		if ks := KolmogorovSmirnov(xs, d); ks > 0.015 {
			t.Fatalf("%v sample KS = %v", d, ks)
		}
	}
}

func TestLomaxCDFAndSampling(t *testing.T) {
	d := Lomax{Alpha: 3, Scale: 10}
	if d.CDF(0) != 0 || d.CDF(-1) != 0 {
		t.Fatal("Lomax CDF must vanish at the origin")
	}
	if !almostEqual(d.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", d.Mean())
	}
	st := sim.NewStream(12)
	const n = 80000
	xs := make([]float64, n)
	var sum float64
	for i := range xs {
		xs[i] = d.Sample(st)
		sum += xs[i]
	}
	if mean := sum / n; math.Abs(mean-5) > 0.25 {
		t.Fatalf("sample mean %v, want ~5", mean)
	}
	if ks := KolmogorovSmirnov(xs, d); ks > 0.01 {
		t.Fatalf("sample KS = %v", ks)
	}
}

func TestLomaxInfiniteMean(t *testing.T) {
	d := Lomax{Alpha: 0.9, Scale: 1}
	if !math.IsInf(d.Mean(), 1) {
		t.Fatal("alpha <= 1 should have infinite mean")
	}
}

func TestFitRecoversGamma(t *testing.T) {
	fitRecovery(t, Gamma{Shape: 3.5, Rate: 0.02}, 20000, 21)
}

func TestFitRecoversPareto(t *testing.T) {
	// Heavy-tailed recovery: the Pareto family must beat the light-tailed
	// candidates on its own data.
	fits, err := FitInterarrival(sampleFrom(Lomax{Alpha: 2.2, Scale: 100}, 20000, 22))
	if err != nil {
		t.Fatal(err)
	}
	var pareto *CandidateFit
	for i := range fits {
		if fits[i].Dist.Name() == "pareto" {
			pareto = &fits[i]
		}
	}
	if pareto == nil {
		t.Fatal("pareto missing from candidates")
	}
	if pareto.R2 < fits[0].R2-0.005 {
		t.Fatalf("pareto R²=%v, winner %s R²=%v", pareto.R2, fits[0].Dist.Name(), fits[0].R2)
	}
}
