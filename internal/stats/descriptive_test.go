package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEqual(s.Variance, 2.5, 1e-12) {
		t.Fatalf("variance = %v, want 2.5", s.Variance)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeConstant(t *testing.T) {
	s := Summarize([]float64{7, 7, 7, 7})
	if s.StdDev != 0 || s.CV != 0 {
		t.Fatalf("constant sample summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if v := Percentile(xs, 0); v != 10 {
		t.Fatalf("p0 = %v", v)
	}
	if v := Percentile(xs, 1); v != 40 {
		t.Fatalf("p100 = %v", v)
	}
	if v := Percentile(xs, 0.5); !almostEqual(v, 25, 1e-12) {
		t.Fatalf("median = %v, want 25", v)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, probe []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				return true
			}
		}
		e := NewECDF(raw)
		prev := -1.0
		xs := append([]float64(nil), probe...)
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				return true
			}
		}
		// Check monotonicity over sorted probes.
		for _, x := range sortedCopy(xs) {
			f := e.At(x)
			if f < prev-1e-12 || f < 0 || f > 1 {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func TestECDFPoints(t *testing.T) {
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = float64(i)
	}
	xs, ys := NewECDF(sample).Points(10)
	if len(xs) != 10 || len(ys) != 10 {
		t.Fatalf("got %d points", len(xs))
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] <= ys[i-1] || xs[i] < xs[i-1] {
			t.Fatalf("points not increasing: %v %v", xs, ys)
		}
	}
	if ys[0] <= 0 || ys[len(ys)-1] >= 1 {
		t.Fatalf("plotting positions out of (0,1): %v", ys)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if h.Total != 10 {
		t.Fatalf("total = %d", h.Total)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d count = %d, want 2 (%v)", i, c, h.Counts)
		}
	}
	if !almostEqual(h.Fraction(0), 0.2, 1e-12) {
		t.Fatalf("fraction = %v", h.Fraction(0))
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("histogram lost values: %v", h.Counts)
	}
}

func TestHistogramConservesMassProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		clean := raw[:0:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		h := NewHistogram(clean, 7)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(clean)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
