package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"sync"
	"time"

	"commchar/internal/obs"
	"commchar/internal/pipeline"
)

// Item states in the coordinator's queue.
const (
	statePending = "pending" // enqueued, waiting for a worker
	stateLeased  = "leased"  // held by a worker under a live lease
	stateDone    = "done"    // artifact accepted
	stateFailed  = "failed"  // permanently failed (or abandoned by its submitter)
)

// item is one unit of distributed work: a RunSpec the engine asked the
// coordinator to execute remotely.
type item struct {
	id       uint64
	spec     pipeline.RunSpec
	specJSON json.RawMessage
	key      string
	label    string

	state    string
	worker   string    // lease holder while leased
	deadline time.Time // lease expiry while leased
	stage    string    // last heartbeat-reported pipeline stage
	attempts int       // leases granted for this item

	done chan struct{} // closed exactly once on done or failed
	art  *pipeline.Artifact
	err  error
}

// CoordinatorOptions configures a Coordinator. The zero value works.
type CoordinatorOptions struct {
	// Lease is how long a worker may hold a spec between heartbeats
	// before the work is re-enqueued. Default 15s.
	Lease time.Duration
	// MaxAttempts bounds how many leases one spec may consume (initial
	// grant plus re-grants after expiry or transient worker failure)
	// before the coordinator fails it permanently. Default 5.
	MaxAttempts int
	// Obs receives lease-lifecycle events and spans; nil is a no-op.
	Obs *obs.Observer
	// Metrics receives the commchar_dist_* counters; nil allocates a
	// private set.
	Metrics *Metrics
}

// A Coordinator owns the distributed work queue: it implements
// pipeline.Executor on the submission side (the engine calls Execute for
// every cache-miss spec) and serves the worker-facing HTTP API on the
// other (Handler). Work is handed out as time-bounded leases; an expired
// lease is re-enqueued, so a crashed or hung worker never strands a
// spec. Completions are deduplicated on the spec's content-addressed
// cache key: whichever worker delivers first wins, later deliveries are
// acknowledged as duplicates and discarded.
type Coordinator struct {
	lease       time.Duration
	maxAttempts int
	ob          *obs.Observer
	metrics     *Metrics

	mu        sync.Mutex
	nextID    uint64
	items     map[uint64]*item
	queue     []uint64 // FIFO of item ids; entries may be stale (lazy skip)
	finished  bool
	lost      map[string]bool // workers currently presumed lost
	seen      map[string]bool // workers that have ever polled for a lease
	dismissed map[string]bool // workers answered StatusDone since Finish
}

// NewCoordinator builds a coordinator. Call Start to run lease expiry,
// mount Handler on a listener for workers, and hand the coordinator to
// the engine as its pipeline.Executor.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.Lease <= 0 {
		opts.Lease = 15 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.Metrics == nil {
		opts.Metrics = &Metrics{}
	}
	return &Coordinator{
		lease:       opts.Lease,
		maxAttempts: opts.MaxAttempts,
		ob:          opts.Obs,
		metrics:     opts.Metrics,
		items:       map[uint64]*item{},
		lost:        map[string]bool{},
		seen:        map[string]bool{},
		dismissed:   map[string]bool{},
	}
}

// Metrics returns the coordinator's counter set (for registration on a
// debug server's registry).
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// Start runs the lease-expiry sweep until ctx is cancelled. Leases are
// checked at a quarter of the lease interval, so an expired lease is
// re-enqueued at most 1.25 lease durations after its last heartbeat.
func (c *Coordinator) Start(ctx context.Context) {
	go func() {
		tick := time.NewTicker(c.lease / 4)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				c.expire(time.Now())
			}
		}
	}()
}

// Execute implements pipeline.Executor: it enqueues spec for the worker
// fleet and blocks until a worker delivers the artifact, the spec fails
// permanently, or ctx is cancelled. The engine's caching, journalling,
// and retry semantics wrap this call unchanged.
func (c *Coordinator) Execute(ctx context.Context, spec pipeline.RunSpec, key string) (*pipeline.Artifact, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding spec for transport: %w", err)
	}
	it := &item{
		spec:     spec,
		specJSON: specJSON,
		key:      key,
		label:    spec.Label(),
		state:    statePending,
		done:     make(chan struct{}),
	}
	c.mu.Lock()
	c.nextID++
	it.id = c.nextID
	c.items[it.id] = it
	c.queue = append(c.queue, it.id)
	c.mu.Unlock()
	c.metrics.Enqueued.Add(1)
	c.emit("dist.enqueued", map[string]string{"spec": it.label, "key": key})

	select {
	case <-it.done:
		return it.art, it.err
	case <-ctx.Done():
		c.abandon(it, ctx.Err())
		return nil, ctx.Err()
	}
}

// Finish marks the sweep complete: subsequent lease requests answer
// StatusDone, dismissing pollers. Call it after the last Execute has
// returned.
func (c *Coordinator) Finish() {
	c.mu.Lock()
	c.finished = true
	c.mu.Unlock()
}

// abandon fails it on behalf of its submitter (context cancellation). A
// completion that races in first wins; a later one is a duplicate.
func (c *Coordinator) abandon(it *item, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if it.state == stateDone || it.state == stateFailed {
		return
	}
	it.state = stateFailed
	it.err = err
	close(it.done)
}

// expire re-enqueues every leased item whose deadline has passed. The
// expiry is an event, not a failure: the work moves to another worker,
// unless the spec has exhausted its attempt budget.
func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Collect-then-sort before requeueing: map iteration order must not
	// decide which expired spec re-runs first.
	var expiredIDs []uint64
	for id, it := range c.items {
		if it.state == stateLeased && !now.Before(it.deadline) {
			expiredIDs = append(expiredIDs, id)
		}
	}
	slices.Sort(expiredIDs)
	for _, id := range expiredIDs {
		it := c.items[id]
		worker := it.worker
		c.metrics.LeaseExpiries.Add(1)
		c.emit("dist.lease.expired", map[string]string{
			"spec": it.label, "key": it.key, "worker": worker,
			"attempt": strconv.Itoa(it.attempts),
		})
		if !c.lost[worker] {
			c.lost[worker] = true
			c.metrics.WorkersLost.Add(1)
			c.emit("dist.worker.lost", map[string]string{"worker": worker})
		}
		if it.attempts >= c.maxAttempts {
			it.state = stateFailed
			it.err = fmt.Errorf("dist: spec %s: lease expired on attempt %d/%d (last worker %s)",
				it.label, it.attempts, c.maxAttempts, worker)
			close(it.done)
			continue
		}
		it.state = statePending
		it.worker, it.stage = "", ""
		c.queue = append(c.queue, it.id)
		c.metrics.Requeues.Add(1)
	}
}

// touch records a sign of life from worker, clearing any lost mark.
func (c *Coordinator) touch(worker string) {
	if worker == "" {
		return
	}
	if c.lost[worker] {
		delete(c.lost, worker)
		c.emit("dist.worker.recovered", map[string]string{"worker": worker})
	}
}

// grant pops the next pending item and leases it to worker.
func (c *Coordinator) grant(worker string) LeaseResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(worker)
	if worker != "" {
		c.seen[worker] = true
	}
	for len(c.queue) > 0 {
		id := c.queue[0]
		c.queue = c.queue[1:]
		it := c.items[id]
		if it == nil || it.state != statePending {
			continue // stale queue entry: leased elsewhere, done, or abandoned
		}
		it.state = stateLeased
		it.worker = worker
		it.deadline = now.Add(c.lease)
		it.attempts++
		c.metrics.LeasesGranted.Add(1)
		c.emit("dist.lease.granted", map[string]string{
			"spec": it.label, "key": it.key, "worker": worker,
			"attempt": strconv.Itoa(it.attempts),
		})
		return LeaseResponse{
			Status:  StatusLease,
			ID:      it.id,
			Spec:    it.specJSON,
			Key:     it.key,
			LeaseMS: c.lease.Milliseconds(),
		}
	}
	if c.finished {
		if worker != "" {
			c.dismissed[worker] = true
		}
		return LeaseResponse{Status: StatusDone}
	}
	return LeaseResponse{Status: StatusWait}
}

// Drain blocks until every worker that ever polled this coordinator has
// been dismissed with StatusDone or declared lost, so the coordinator
// process can exit without stranding its fleet in the unreachable-grace
// backstop. Call it after Finish, with the lease API still being served.
// The wait is bounded by ctx and timeout: a worker that died while idle
// never polls again and must not pin the coordinator on its way out.
func (c *Coordinator) Drain(ctx context.Context, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		waiting := 0
		for w := range c.seen {
			if !c.dismissed[w] && !c.lost[w] {
				waiting++
			}
		}
		c.mu.Unlock()
		if waiting == 0 || ctx.Err() != nil || !time.Now().Before(deadline) {
			return
		}
		if !sleepCtx(ctx, 25*time.Millisecond) {
			return
		}
	}
}

// heartbeat extends worker's lease on item id; Abandon reports that the
// lease is no longer held.
func (c *Coordinator) heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(req.Worker)
	it := c.items[req.ID]
	if it == nil || it.state != stateLeased || it.worker != req.Worker {
		return HeartbeatResponse{Abandon: true}
	}
	it.deadline = time.Now().Add(c.lease)
	if req.Stage != "" {
		it.stage = req.Stage
	}
	c.metrics.Heartbeats.Add(1)
	return HeartbeatResponse{}
}

// complete accepts an artifact for item id. Completion is idempotent and
// ownership-blind: the artifact is content-addressed by key and
// bit-identical no matter which worker produced it, so a delivery from
// an expired lease is as good as one from the live holder — whichever
// lands first wins, the rest are duplicates.
func (c *Coordinator) complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	it := c.items[req.ID]
	if it == nil || it.state == stateDone || it.state == stateFailed {
		c.mu.Unlock()
		c.metrics.Duplicates.Add(1)
		return CompleteResponse{Duplicate: true}, nil
	}
	if req.Key != it.key {
		c.mu.Unlock()
		return CompleteResponse{}, &ProtocolError{
			Detail: fmt.Sprintf("complete for item %d: key %.16s does not match lease key %.16s", req.ID, req.Key, it.key),
		}
	}
	spec, key, label := it.spec, it.key, it.label
	c.mu.Unlock()

	// Decode outside the lock: artifacts are large and decoding is pure.
	art, err := pipeline.UnmarshalArtifact(req.Artifact, spec, key)
	if err != nil {
		c.metrics.RejectedWrites.Add(1)
		return CompleteResponse{}, fmt.Errorf("dist: decoding artifact for %s: %w", label, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(req.Worker)
	if it.state == stateDone || it.state == stateFailed {
		c.metrics.Duplicates.Add(1)
		return CompleteResponse{Duplicate: true}, nil
	}
	it.state = stateDone
	it.art = art
	it.worker = req.Worker
	close(it.done)
	c.metrics.Completions.Add(1)
	c.emit("dist.completed", map[string]string{"spec": label, "key": key, "worker": req.Worker})
	return CompleteResponse{}, nil
}

// fail records a worker-side failure for item id. A transient failure
// within the attempt budget re-enqueues the spec; anything else fails it
// for the sweep. Stale reports (expired lease, already finished) are
// acknowledged and dropped.
func (c *Coordinator) fail(req FailRequest) FailResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(req.Worker)
	it := c.items[req.ID]
	if it == nil || it.state != stateLeased || it.worker != req.Worker {
		return FailResponse{Acked: true}
	}
	c.emit("dist.failed", map[string]string{
		"spec": it.label, "worker": req.Worker, "error": req.Error,
		"transient": strconv.FormatBool(req.Transient),
	})
	if req.Transient && it.attempts < c.maxAttempts {
		it.state = statePending
		it.worker, it.stage = "", ""
		c.queue = append(c.queue, it.id)
		c.metrics.Requeues.Add(1)
		return FailResponse{Acked: true}
	}
	it.state = stateFailed
	it.err = fmt.Errorf("dist: spec %s failed on worker %s (attempt %d/%d): %s",
		it.label, req.Worker, it.attempts, c.maxAttempts, req.Error)
	close(it.done)
	c.metrics.RemoteFailures.Add(1)
	return FailResponse{}
}

// State snapshots the queue for /v1/state and the /distz debug page.
func (c *Coordinator) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := State{Finished: c.finished}
	for _, it := range c.items {
		is := ItemState{
			ID: it.id, Spec: it.label, Key: it.key, State: it.state,
			Worker: it.worker, Stage: it.stage, Attempts: it.attempts,
		}
		if it.err != nil {
			is.Err = it.err.Error()
		}
		st.Items = append(st.Items, is)
		switch it.state {
		case statePending:
			st.Pending++
		case stateLeased:
			st.Leased++
		case stateDone:
			st.Done++
		case stateFailed:
			st.Failed++
		}
	}
	sort.Slice(st.Items, func(i, j int) bool {
		if st.Items[i].ID != st.Items[j].ID {
			return st.Items[i].ID < st.Items[j].ID
		}
		return st.Items[i].Key < st.Items[j].Key
	})
	return st
}

// emit forwards an event to the flight recorder.
func (c *Coordinator) emit(name string, fields map[string]string) {
	c.ob.Emit(name, fields)
}

// Handler returns the worker-facing HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		writeJSON(w, c.grant(req.Worker))
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		writeJSON(w, c.heartbeat(req))
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		resp, err := c.complete(req)
		if err != nil {
			var pe *ProtocolError
			if errors.As(err, &pe) {
				// A key that contradicts the lease is protocol skew, not a
				// flaky upload: permanent on the worker side.
				writeError(w, http.StatusBadRequest, "", err.Error())
				return
			}
			// A rejected upload is the worker's to retry: the bytes were
			// damaged in transit or the marshal was cut short.
			writeError(w, http.StatusInternalServerError, "", err.Error())
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/fail", func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		writeJSON(w, c.fail(req))
	})
	mux.HandleFunc("GET /v1/state", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.State())
	})
	return mux
}

// DebugHandler returns the /distz human-readable state page for the obs
// debug server.
func (c *Coordinator) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.State())
	})
}

// version accessors let decodeRequest check V without reflection.
func (r LeaseRequest) version() int     { return r.V }
func (r HeartbeatRequest) version() int { return r.V }
func (r CompleteRequest) version() int  { return r.V }
func (r FailRequest) version() int      { return r.V }
