package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"sync"
	"time"

	"commchar/internal/obs"
	"commchar/internal/pipeline"
)

// Item states in the coordinator's queue.
const (
	statePending = "pending" // enqueued, waiting for a worker
	stateLeased  = "leased"  // held by a worker under a live lease
	stateDone    = "done"    // artifact accepted
	stateFailed  = "failed"  // permanently failed (or abandoned by its submitter)
)

// item is one unit of distributed work: a RunSpec the engine asked the
// coordinator to execute remotely.
type item struct {
	id       uint64
	spec     pipeline.RunSpec
	specJSON json.RawMessage
	key      string
	label    string

	state      string
	worker     string    // lease holder while leased
	deadline   time.Time // lease expiry while leased
	leaseStart time.Time // when the current holder's lease was granted
	stage      string    // last heartbeat-reported pipeline stage
	stageStart time.Time // when the current stage began (grant, or last stage change)
	attempts   int       // leases granted for this item

	// Speculative re-lease (straggler hedging) state. hedgePending marks
	// the item flagged for hedging and re-queued; the hedge fields hold
	// the second, concurrent lease once an idle worker picks it up.
	hedgePending  bool
	hedgeWorker   string
	hedgeDeadline time.Time
	hedgeStart    time.Time

	done chan struct{} // closed exactly once on done or failed
	art  *pipeline.Artifact
	err  error
}

// CoordinatorOptions configures a Coordinator. The zero value works.
type CoordinatorOptions struct {
	// Lease is how long a worker may hold a spec between heartbeats
	// before the work is re-enqueued. Default 15s.
	Lease time.Duration
	// MaxAttempts bounds how many leases one spec may consume (initial
	// grant plus re-grants after expiry or transient worker failure)
	// before the coordinator fails it permanently. Default 5.
	MaxAttempts int
	// Obs receives lease-lifecycle events and spans; nil is a no-op.
	Obs *obs.Observer
	// Metrics receives the commchar_dist_* counters; nil allocates a
	// private set.
	Metrics *Metrics
	// Store, when non-nil, is the shared blob store the coordinator
	// serves to its fleet: Handler mounts GET/PUT /v1/blob/{key} on it,
	// leases advertise it, and every accepted completion is fed into it
	// write-behind.
	Store *BlobStore
	// SpeculateFactor enables speculative re-lease of stragglers: a
	// leased spec whose current stage has run longer than SpeculateFactor
	// times the running median stage duration is hedged onto an idle
	// worker (first finish wins; completions are idempotent). 0 (the
	// default) disables hedging — duplicate simulation work is only worth
	// it when the operator says so.
	SpeculateFactor float64
	// Clock supplies the coordinator's time base; nil means the
	// observer's clock (the system clock when unobserved). Tests inject
	// an obs.Fake to drive lease expiry and hedging deterministically.
	Clock obs.Clock
}

// A Coordinator owns the distributed work queue: it implements
// pipeline.Executor on the submission side (the engine calls Execute for
// every cache-miss spec) and serves the worker-facing HTTP API on the
// other (Handler). Work is handed out as time-bounded leases; an expired
// lease is re-enqueued, so a crashed or hung worker never strands a
// spec. Completions are deduplicated on the spec's content-addressed
// cache key: whichever worker delivers first wins, later deliveries are
// acknowledged as duplicates and discarded.
type Coordinator struct {
	lease           time.Duration
	maxAttempts     int
	ob              *obs.Observer
	metrics         *Metrics
	store           *BlobStore
	speculateFactor float64
	clock           obs.Clock

	mu        sync.Mutex
	nextID    uint64
	items     map[uint64]*item
	queue     []uint64 // FIFO of item ids; entries may be stale (lazy skip)
	finished  bool
	degraded  bool            // store fallback reported, or a straggler rescued
	durations []time.Duration // completed stage durations (speculation median)
	lost      map[string]bool // workers currently presumed lost
	seen      map[string]bool // workers that have ever polled for a lease
	dismissed map[string]bool // workers answered StatusDone since Finish
}

// NewCoordinator builds a coordinator. Call Start to run lease expiry,
// mount Handler on a listener for workers, and hand the coordinator to
// the engine as its pipeline.Executor.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.Lease <= 0 {
		opts.Lease = 15 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.Metrics == nil {
		opts.Metrics = &Metrics{}
	}
	if opts.Clock == nil {
		opts.Clock = opts.Obs.ClockOrSystem()
	}
	return &Coordinator{
		lease:           opts.Lease,
		maxAttempts:     opts.MaxAttempts,
		ob:              opts.Obs,
		metrics:         opts.Metrics,
		store:           opts.Store,
		speculateFactor: opts.SpeculateFactor,
		clock:           opts.Clock,
		items:           map[uint64]*item{},
		lost:            map[string]bool{},
		seen:            map[string]bool{},
		dismissed:       map[string]bool{},
	}
}

// Metrics returns the coordinator's counter set (for registration on a
// debug server's registry).
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// Degraded reports whether the sweep completed degraded: some worker
// fell back from the shared store, or a straggler had to be rescued by a
// speculative re-lease. The results are still complete and correct —
// degradation is an availability finding, surfaced as exit code 3 so
// operators notice without diffing metrics.
func (c *Coordinator) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// Start runs the lease-expiry sweep until ctx is cancelled. Leases are
// checked at a quarter of the lease interval, so an expired lease is
// re-enqueued at most 1.25 lease durations after its last heartbeat.
func (c *Coordinator) Start(ctx context.Context) {
	go func() {
		//lint:allow determinism the expiry sweep needs a real ticker; the Clock seam only supplies Now, and every decision the tick triggers goes through c.clock
		tick := time.NewTicker(c.lease / 4)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				c.expire(c.clock.Now())
			}
		}
	}()
}

// Execute implements pipeline.Executor: it enqueues spec for the worker
// fleet and blocks until a worker delivers the artifact, the spec fails
// permanently, or ctx is cancelled. The engine's caching, journalling,
// and retry semantics wrap this call unchanged.
func (c *Coordinator) Execute(ctx context.Context, spec pipeline.RunSpec, key string) (*pipeline.Artifact, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding spec for transport: %w", err)
	}
	it := &item{
		spec:     spec,
		specJSON: specJSON,
		key:      key,
		label:    spec.Label(),
		state:    statePending,
		done:     make(chan struct{}),
	}
	c.mu.Lock()
	c.nextID++
	it.id = c.nextID
	c.items[it.id] = it
	c.queue = append(c.queue, it.id)
	c.mu.Unlock()
	c.metrics.Enqueued.Add(1)
	c.emit("dist.enqueued", map[string]string{"spec": it.label, "key": key})

	select {
	case <-it.done:
		return it.art, it.err
	case <-ctx.Done():
		c.abandon(it, ctx.Err())
		return nil, ctx.Err()
	}
}

// Finish marks the sweep complete: subsequent lease requests answer
// StatusDone, dismissing pollers. Call it after the last Execute has
// returned.
func (c *Coordinator) Finish() {
	c.mu.Lock()
	c.finished = true
	c.mu.Unlock()
}

// abandon fails it on behalf of its submitter (context cancellation). A
// completion that races in first wins; a later one is a duplicate.
func (c *Coordinator) abandon(it *item, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if it.state == stateDone || it.state == stateFailed {
		return
	}
	it.state = stateFailed
	it.err = err
	close(it.done)
}

// expire re-enqueues every leased item whose deadline has passed, then
// flags stragglers for speculative re-lease. The expiry is an event, not
// a failure: the work moves to another worker, unless the spec has
// exhausted its attempt budget.
func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Collect-then-sort before requeueing: map iteration order must not
	// decide which expired spec re-runs first.
	var expiredIDs []uint64
	for id, it := range c.items {
		if it.state != stateLeased {
			continue
		}
		if !now.Before(it.deadline) || (it.hedgeWorker != "" && !now.Before(it.hedgeDeadline)) {
			expiredIDs = append(expiredIDs, id)
		}
	}
	slices.Sort(expiredIDs)
	for _, id := range expiredIDs {
		it := c.items[id]
		primaryExpired := !now.Before(it.deadline)
		hedgeExpired := it.hedgeWorker != "" && !now.Before(it.hedgeDeadline)

		if hedgeExpired {
			c.expireLease(it, it.hedgeWorker, "hedge")
			it.hedgeWorker, it.hedgeDeadline, it.hedgeStart = "", time.Time{}, time.Time{}
		}
		if !primaryExpired {
			continue // only the hedge died; the primary lease stands
		}
		c.expireLease(it, it.worker, "primary")
		if it.hedgeWorker != "" {
			// The primary expired under a live hedge: promote the hedge to
			// sole holder instead of re-enqueueing — the work is already
			// running on a healthy worker.
			c.emit("dist.hedge.promoted", map[string]string{
				"spec": it.label, "key": it.key, "worker": it.hedgeWorker,
			})
			it.worker, it.deadline, it.leaseStart = it.hedgeWorker, it.hedgeDeadline, it.hedgeStart
			it.stageStart = it.hedgeStart
			it.hedgeWorker, it.hedgeDeadline, it.hedgeStart = "", time.Time{}, time.Time{}
			continue
		}
		if it.attempts >= c.maxAttempts {
			it.state = stateFailed
			it.err = fmt.Errorf("dist: spec %s: lease expired on attempt %d/%d (last worker %s)",
				it.label, it.attempts, c.maxAttempts, it.worker)
			close(it.done)
			continue
		}
		it.state = statePending
		it.worker, it.stage = "", ""
		it.leaseStart, it.stageStart = time.Time{}, time.Time{}
		it.hedgePending = false
		c.queue = append(c.queue, it.id)
		c.metrics.Requeues.Add(1)
	}
	c.speculate(now)
}

// expireLease records one expired lease (primary or hedge) and marks its
// holder lost. Callers hold mu.
func (c *Coordinator) expireLease(it *item, worker, role string) {
	c.metrics.LeaseExpiries.Add(1)
	c.emit("dist.lease.expired", map[string]string{
		"spec": it.label, "key": it.key, "worker": worker, "role": role,
		"attempt": strconv.Itoa(it.attempts),
	})
	if !c.lost[worker] {
		c.lost[worker] = true
		c.metrics.WorkersLost.Add(1)
		c.emit("dist.worker.lost", map[string]string{"worker": worker})
	}
}

// speculate flags stragglers for hedging: any singly-leased item whose
// current stage has outlived the speculation threshold is re-queued so
// an idle worker can race the (possibly hung) holder. The running median
// of completed stage durations is the yardstick — with no completions
// yet there is no yardstick, and lease expiry remains the only backstop.
// Callers hold mu.
func (c *Coordinator) speculate(now time.Time) {
	if c.speculateFactor <= 0 || len(c.durations) == 0 {
		return
	}
	med := c.medianDuration()
	threshold := time.Duration(c.speculateFactor * float64(med))
	if threshold <= 0 {
		return
	}
	var ids []uint64
	for id, it := range c.items {
		if it.state != stateLeased || it.hedgePending || it.hedgeWorker != "" {
			continue
		}
		if it.stageStart.IsZero() || now.Sub(it.stageStart) <= threshold {
			continue
		}
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		it := c.items[id]
		it.hedgePending = true
		c.queue = append(c.queue, id)
		c.metrics.Speculations.Add(1)
		c.emit("dist.speculate", map[string]string{
			"spec": it.label, "key": it.key, "worker": it.worker,
			"stage": it.stage, "stage_age": now.Sub(it.stageStart).String(),
			"threshold": threshold.String(),
		})
	}
}

// medianDuration returns the running median of completed stage
// durations. Callers hold mu and have checked len(durations) > 0.
func (c *Coordinator) medianDuration() time.Duration {
	sorted := slices.Clone(c.durations)
	slices.Sort(sorted)
	return sorted[len(sorted)/2]
}

// touch records a sign of life from worker, clearing any lost mark.
func (c *Coordinator) touch(worker string) {
	if worker == "" {
		return
	}
	if c.lost[worker] {
		delete(c.lost, worker)
		c.emit("dist.worker.recovered", map[string]string{"worker": worker})
	}
}

// grant pops the next grantable queue entry and leases it to worker: a
// pending item as a primary lease, or a hedge-flagged straggler as a
// speculative second lease (never to the straggler's own holder — the
// whole point is a different worker).
func (c *Coordinator) grant(worker string) LeaseResponse {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(worker)
	if worker != "" {
		c.seen[worker] = true
	}
	// Bound the scan to the current queue length: a hedge entry this
	// worker cannot take is pushed back, and without the bound that one
	// entry would spin this loop forever.
	for i, n := 0, len(c.queue); i < n && len(c.queue) > 0; i++ {
		id := c.queue[0]
		c.queue = c.queue[1:]
		it := c.items[id]
		if it == nil {
			continue
		}
		switch {
		case it.state == statePending:
			it.state = stateLeased
			it.worker = worker
			it.deadline = now.Add(c.lease)
			it.leaseStart, it.stageStart = now, now
			it.attempts++
			c.metrics.LeasesGranted.Add(1)
			c.emit("dist.lease.granted", map[string]string{
				"spec": it.label, "key": it.key, "worker": worker,
				"attempt": strconv.Itoa(it.attempts),
			})
		case it.state == stateLeased && it.hedgePending:
			if worker == "" || worker == it.worker {
				c.queue = append(c.queue, id) // keep the hedge for another poller
				continue
			}
			it.hedgePending = false
			it.hedgeWorker = worker
			it.hedgeDeadline = now.Add(c.lease)
			it.hedgeStart = now
			it.attempts++
			c.metrics.LeasesGranted.Add(1)
			c.emit("dist.lease.hedged", map[string]string{
				"spec": it.label, "key": it.key, "worker": worker,
				"holder": it.worker, "attempt": strconv.Itoa(it.attempts),
			})
		default:
			continue // stale queue entry: done, failed, or abandoned
		}
		return LeaseResponse{
			Status:  StatusLease,
			ID:      it.id,
			Spec:    it.specJSON,
			Key:     it.key,
			LeaseMS: c.lease.Milliseconds(),
			Store:   c.store != nil,
		}
	}
	if c.finished {
		if worker != "" {
			c.dismissed[worker] = true
		}
		return LeaseResponse{Status: StatusDone}
	}
	return LeaseResponse{Status: StatusWait}
}

// Drain blocks until every worker that ever polled this coordinator has
// been dismissed with StatusDone or declared lost, so the coordinator
// process can exit without stranding its fleet in the unreachable-grace
// backstop. Call it after Finish, with the lease API still being served.
// The wait is bounded by ctx and timeout: a worker that died while idle
// never polls again and must not pin the coordinator on its way out.
func (c *Coordinator) Drain(ctx context.Context, timeout time.Duration) {
	deadline := c.clock.Now().Add(timeout)
	for {
		c.mu.Lock()
		waiting := 0
		for w := range c.seen {
			if !c.dismissed[w] && !c.lost[w] {
				waiting++
			}
		}
		c.mu.Unlock()
		if waiting == 0 || ctx.Err() != nil || !c.clock.Now().Before(deadline) {
			return
		}
		if !sleepCtx(ctx, 25*time.Millisecond) {
			return
		}
	}
}

// heartbeat extends worker's lease on item id — the primary or the
// hedge, whichever the worker holds; Abandon reports that the lease is
// no longer held. A stage change reported by the primary holder closes
// out the previous stage's duration for the speculation median and
// restarts the straggler stopwatch.
func (c *Coordinator) heartbeat(req HeartbeatRequest) HeartbeatResponse {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(req.Worker)
	it := c.items[req.ID]
	if it == nil || it.state != stateLeased {
		return HeartbeatResponse{Abandon: true}
	}
	switch req.Worker {
	case it.worker:
		it.deadline = now.Add(c.lease)
		if req.Stage != "" && req.Stage != it.stage {
			if it.stage != "" && !it.stageStart.IsZero() {
				c.durations = append(c.durations, now.Sub(it.stageStart))
			}
			it.stage = req.Stage
			it.stageStart = now
		}
	case it.hedgeWorker:
		it.hedgeDeadline = now.Add(c.lease)
	default:
		return HeartbeatResponse{Abandon: true}
	}
	c.metrics.Heartbeats.Add(1)
	return HeartbeatResponse{}
}

// complete accepts an artifact for item id. Completion is idempotent and
// ownership-blind: the artifact is content-addressed by key and
// bit-identical no matter which worker produced it, so a delivery from
// an expired lease is as good as one from the live holder — whichever
// lands first wins, the rest are duplicates.
func (c *Coordinator) complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	c.noteStoreDegraded(req)
	it := c.items[req.ID]
	if it == nil || it.state == stateDone || it.state == stateFailed {
		c.mu.Unlock()
		c.metrics.Duplicates.Add(1)
		return CompleteResponse{Duplicate: true}, nil
	}
	if req.Key != it.key {
		c.mu.Unlock()
		return CompleteResponse{}, &ProtocolError{
			Detail: fmt.Sprintf("complete for item %d: key %.16s does not match lease key %.16s", req.ID, req.Key, it.key),
		}
	}
	spec, key, label := it.spec, it.key, it.label
	c.mu.Unlock()

	// Decode outside the lock: artifacts are large and decoding is pure.
	art, err := pipeline.UnmarshalArtifact(req.Artifact, spec, key)
	if err != nil {
		c.metrics.RejectedWrites.Add(1)
		return CompleteResponse{}, fmt.Errorf("dist: decoding artifact for %s: %w", label, err)
	}

	now := c.clock.Now()
	c.mu.Lock()
	c.touch(req.Worker)
	if it.state == stateDone || it.state == stateFailed {
		c.mu.Unlock()
		c.metrics.Duplicates.Add(1)
		return CompleteResponse{Duplicate: true}, nil
	}
	// A hedged straggler whose hedge delivered first was rescued: the
	// sweep stays correct (first finish wins, artifacts are
	// content-addressed) but the original holder was hung — a degraded
	// outcome worth an exit code.
	if it.hedgeWorker != "" && req.Worker == it.hedgeWorker {
		c.metrics.Rescues.Add(1)
		c.degraded = true
		c.emit("dist.speculation.rescued", map[string]string{
			"spec": label, "key": key, "hedge": req.Worker, "holder": it.worker,
		})
		if !it.hedgeStart.IsZero() {
			c.durations = append(c.durations, now.Sub(it.hedgeStart))
		}
	} else if req.Worker == it.worker && !it.stageStart.IsZero() {
		c.durations = append(c.durations, now.Sub(it.stageStart))
	}
	it.state = stateDone
	it.art = art
	it.worker = req.Worker
	it.hedgePending = false
	it.hedgeWorker, it.hedgeDeadline, it.hedgeStart = "", time.Time{}, time.Time{}
	close(it.done)
	c.metrics.Completions.Add(1)
	c.emit("dist.completed", map[string]string{"spec": label, "key": key, "worker": req.Worker})
	c.mu.Unlock()

	// Feed the accepted artifact into the shared store write-behind: the
	// worker already has its answer, and the next worker to need this key
	// gets a warm fleet-wide hit. Best-effort by design.
	if c.store != nil {
		if err := c.store.Put(key, req.Artifact); err != nil {
			c.emit("dist.store.feed.error", map[string]string{"key": key, "err": err.Error()})
		} else {
			c.metrics.StoreBlobs.Add(1)
		}
	}
	return CompleteResponse{}, nil
}

// noteStoreDegraded records a worker's store-degradation report: the
// sweep will finish, but not at full fleet health. Callers hold mu.
func (c *Coordinator) noteStoreDegraded(req CompleteRequest) {
	if !req.StoreDegraded {
		return
	}
	c.metrics.DegradedReports.Add(1)
	c.degraded = true
	c.emit("dist.store.degraded.reported", map[string]string{"worker": req.Worker})
}

// fail records a worker-side failure for item id. A transient failure
// within the attempt budget re-enqueues the spec; anything else fails it
// for the sweep. Stale reports (expired lease, already finished) are
// acknowledged and dropped.
func (c *Coordinator) fail(req FailRequest) FailResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(req.Worker)
	it := c.items[req.ID]
	if it == nil || it.state != stateLeased {
		return FailResponse{Acked: true}
	}
	if req.Worker == it.hedgeWorker && it.hedgeWorker != "" {
		// The hedge failed; the primary lease stands. Hedge failures are
		// advisory — the primary may yet deliver — so drop the hedge and
		// move on.
		c.emit("dist.hedge.failed", map[string]string{
			"spec": it.label, "worker": req.Worker, "error": req.Error,
		})
		it.hedgeWorker, it.hedgeDeadline, it.hedgeStart = "", time.Time{}, time.Time{}
		return FailResponse{Acked: true}
	}
	if it.worker != req.Worker {
		return FailResponse{Acked: true}
	}
	if it.hedgeWorker != "" {
		// The primary failed under a live hedge: promote the hedge rather
		// than requeueing work that is already running elsewhere.
		c.emit("dist.hedge.promoted", map[string]string{
			"spec": it.label, "key": it.key, "worker": it.hedgeWorker,
		})
		it.worker, it.deadline, it.leaseStart = it.hedgeWorker, it.hedgeDeadline, it.hedgeStart
		it.stageStart = it.hedgeStart
		it.hedgeWorker, it.hedgeDeadline, it.hedgeStart = "", time.Time{}, time.Time{}
		return FailResponse{Acked: true}
	}
	c.emit("dist.failed", map[string]string{
		"spec": it.label, "worker": req.Worker, "error": req.Error,
		"transient": strconv.FormatBool(req.Transient),
	})
	if req.Transient && it.attempts < c.maxAttempts {
		it.state = statePending
		it.worker, it.stage = "", ""
		it.leaseStart, it.stageStart = time.Time{}, time.Time{}
		it.hedgePending = false
		c.queue = append(c.queue, it.id)
		c.metrics.Requeues.Add(1)
		return FailResponse{Acked: true}
	}
	it.state = stateFailed
	it.err = fmt.Errorf("dist: spec %s failed on worker %s (attempt %d/%d): %s",
		it.label, req.Worker, it.attempts, c.maxAttempts, req.Error)
	close(it.done)
	c.metrics.RemoteFailures.Add(1)
	return FailResponse{}
}

// State snapshots the queue for /v1/state and the /distz debug page.
func (c *Coordinator) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := State{Finished: c.finished}
	for _, it := range c.items {
		is := ItemState{
			ID: it.id, Spec: it.label, Key: it.key, State: it.state,
			Worker: it.worker, Stage: it.stage, Attempts: it.attempts,
		}
		switch {
		case it.hedgeWorker != "":
			is.Hedge = it.hedgeWorker
		case it.hedgePending:
			is.Hedge = "pending"
		}
		if it.err != nil {
			is.Err = it.err.Error()
		}
		st.Items = append(st.Items, is)
		switch it.state {
		case statePending:
			st.Pending++
		case stateLeased:
			st.Leased++
		case stateDone:
			st.Done++
		case stateFailed:
			st.Failed++
		}
	}
	sort.Slice(st.Items, func(i, j int) bool {
		if st.Items[i].ID != st.Items[j].ID {
			return st.Items[i].ID < st.Items[j].ID
		}
		return st.Items[i].Key < st.Items[j].Key
	})
	return st
}

// emit forwards an event to the flight recorder.
func (c *Coordinator) emit(name string, fields map[string]string) {
	c.ob.Emit(name, fields)
}

// Handler returns the worker-facing HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		writeJSON(w, c.grant(req.Worker))
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		writeJSON(w, c.heartbeat(req))
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		resp, err := c.complete(req)
		if err != nil {
			var pe *ProtocolError
			if errors.As(err, &pe) {
				// A key that contradicts the lease is protocol skew, not a
				// flaky upload: permanent on the worker side.
				writeError(w, http.StatusBadRequest, "", err.Error())
				return
			}
			// A rejected upload is the worker's to retry: the bytes were
			// damaged in transit or the marshal was cut short.
			writeError(w, http.StatusInternalServerError, "", err.Error())
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/fail", func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !decodeRequest(w, r, &req) {
			return
		}
		writeJSON(w, c.fail(req))
	})
	mux.HandleFunc("GET /v1/state", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.State())
	})
	if c.store != nil {
		// The shared blob store rides on the coordinator's own listener:
		// workers derive its URL from the coordinator URL they already
		// have, no extra discovery.
		mux.Handle("/v1/blob/", c.store.Handler())
	}
	return mux
}

// DebugHandler returns the /distz human-readable state page for the obs
// debug server.
func (c *Coordinator) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.State())
	})
}

// version accessors let decodeRequest check V without reflection.
func (r LeaseRequest) version() int     { return r.V }
func (r HeartbeatRequest) version() int { return r.V }
func (r CompleteRequest) version() int  { return r.V }
func (r FailRequest) version() int      { return r.V }
