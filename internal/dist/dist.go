// Package dist is the fault-tolerant distributed sweep layer: a
// lease-based coordinator/worker protocol (HTTP/JSON, standard library
// only) that partitions a sweep's RunSpecs across worker processes and is
// robust by construction.
//
// The coordinator hands out work as time-bounded leases. A leased spec
// whose lease expires — because the worker crashed, hung past its
// heartbeats, or lost the network — is re-enqueued, so no failure mode of
// a worker can strand work. Workers poll for leases, send heartbeats that
// extend their lease and report per-spec progress, and stream the
// completed artifact back through the pipeline's wire codec. Duplicate
// completions from lease-expiry races are idempotent: artifacts are
// content-addressed by the spec's cache key and bit-identical by the
// determinism invariant, so whichever completion lands first wins and the
// loser is acknowledged as a duplicate.
//
// The coordinator side plugs into the run engine as a pipeline.Executor,
// which is what makes the distribution transparent: the engine's
// content-addressed cache, write-ahead journal (-resume works across
// coordinator restarts), singleflight dedup, retry policy, and failure
// taxonomy all apply to remote runs exactly as to local ones, and a
// distributed sweep's output is byte-identical to a local sequential run.
//
// Worker RPCs go through the internal/resilience retry machinery with the
// taxonomy extended to the network: a refused, reset, or timed-out
// connection is transient (the coordinator may be restarting); a protocol
// version mismatch is a *ProtocolError and permanent. A lost worker is an
// event, not a failure: the coordinator emits flight-recorder events and
// commchar_dist_* metrics and moves the work elsewhere.
package dist

import (
	"fmt"
	"sync/atomic"

	"commchar/internal/obs"
)

// ProtoVersion is the coordinator/worker wire-protocol version. Every
// request carries it; a mismatch is rejected with a *ProtocolError, which
// the resilience taxonomy classifies as permanent — mixed-version fleets
// must fail loudly, not flake.
//
// Version 2: RunSpec gained Topology/Dims. An older worker would silently
// drop the fields from the leased spec and simulate the wrong fabric, so
// the skew must be fatal, not lossy.
//
// Version 3: LeaseResponse gained Store (the coordinator serves a shared
// blob store) and CompleteRequest gained StoreDegraded (the worker fell
// back from that store at least once). An older worker would ignore the
// store — correct but silently slower — and, worse, a v2 coordinator
// would drop the degradation report a v3 worker is owed an exit code
// for; the skew stays fatal.
const ProtoVersion = 3

// DegradedError reports a sweep that completed — every artifact was
// produced and the output is byte-identical to a local run — but not at
// full fleet health: workers fell back from the shared store, or a
// straggler had to be rescued by a speculative re-lease. It implements
// the Degraded marker the CLI harness maps to exit code 3, so operators
// notice availability findings without diffing metrics.
type DegradedError struct {
	// StoreReports counts completions whose worker reported falling back
	// from the shared store.
	StoreReports int64
	// Rescues counts hedged stragglers whose speculative re-lease
	// finished first.
	Rescues int64
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("dist: sweep completed degraded (%d store fallbacks reported, %d stragglers rescued)",
		e.StoreReports, e.Rescues)
}

// Degraded marks the sweep as degraded-but-complete (see cli.ExitCode).
func (e *DegradedError) Degraded() bool { return true }

// ProtocolError reports a coordinator/worker protocol incompatibility
// (version skew, malformed envelope). It is permanent by construction:
// the same request will be rejected the same way.
type ProtocolError struct {
	Detail string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("dist: protocol error: %s", e.Detail)
}

// Metrics aggregates the coordinator's counters. All fields are updated
// atomically; RegisterWith exposes them as commchar_dist_* on the debug
// server's /metrics.
type Metrics struct {
	Enqueued       atomic.Int64 // specs submitted for distributed execution
	LeasesGranted  atomic.Int64 // leases handed to workers (includes re-grants)
	Heartbeats     atomic.Int64 // heartbeats accepted (lease extensions)
	LeaseExpiries  atomic.Int64 // leases that expired without completion
	WorkersLost    atomic.Int64 // lease expiries attributed to a lost worker
	Requeues       atomic.Int64 // specs re-enqueued (expiry or transient failure)
	Completions    atomic.Int64 // artifacts accepted from workers
	Duplicates     atomic.Int64 // duplicate completions acknowledged idempotently
	RejectedWrites atomic.Int64 // artifact uploads that failed to decode
	RemoteFailures atomic.Int64 // specs failed permanently by a worker

	// Shared-store counters. StoreBlobs is coordinator-side (write-behind
	// from completions); the rest are client-side (HTTPStore).
	StoreBlobs      atomic.Int64 // blobs fed into the coordinator's store
	StoreFetches    atomic.Int64 // verified blob fetches served to this client
	StoreUploads    atomic.Int64 // blob uploads accepted from this client
	StoreDegraded   atomic.Int64 // store operations degraded to the local cache
	DegradedReports atomic.Int64 // completions whose worker reported store degradation

	// Speculative re-lease counters.
	Speculations atomic.Int64 // hedge leases granted against suspected stragglers
	Rescues      atomic.Int64 // hedged specs whose hedge finished first
}

// RegisterWith exposes every counter through an obs registry under the
// commchar_dist_* namespace.
func (m *Metrics) RegisterWith(r *obs.Registry) {
	counter := func(name, help string, v *atomic.Int64) {
		r.CounterFunc("commchar_dist_"+name, help, v.Load)
	}
	counter("enqueued_total", "specs submitted for distributed execution", &m.Enqueued)
	counter("leases_granted_total", "leases handed to workers, re-grants included", &m.LeasesGranted)
	counter("heartbeats_total", "heartbeats accepted as lease extensions", &m.Heartbeats)
	counter("lease_expiries_total", "leases that expired without completion", &m.LeaseExpiries)
	counter("workers_lost_total", "lease expiries attributed to a lost worker", &m.WorkersLost)
	counter("requeues_total", "specs re-enqueued after expiry or transient failure", &m.Requeues)
	counter("completions_total", "artifacts accepted from workers", &m.Completions)
	counter("duplicates_total", "duplicate completions acknowledged idempotently", &m.Duplicates)
	counter("rejected_writes_total", "artifact uploads that failed to decode", &m.RejectedWrites)
	counter("remote_failures_total", "specs failed permanently by a worker", &m.RemoteFailures)
	counter("store_blobs_total", "blobs fed into the coordinator's shared store", &m.StoreBlobs)
	counter("store_fetches_total", "verified blob fetches served from the shared store", &m.StoreFetches)
	counter("store_uploads_total", "blob uploads accepted by the shared store", &m.StoreUploads)
	counter("store_degraded_total", "store operations degraded to the local cache", &m.StoreDegraded)
	counter("degraded_reports_total", "completions whose worker reported store degradation", &m.DegradedReports)
	counter("speculations_total", "hedge leases granted against suspected stragglers", &m.Speculations)
	counter("rescues_total", "hedged specs whose hedge finished first", &m.Rescues)
}
