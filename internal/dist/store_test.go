package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/resilience"
)

// TestBlobStoreRoundTripOverHTTP: an HTTPStore Put lands in the blob
// directory and a Get returns the verified bytes, with the client-side
// counters advancing and no degradation.
func TestBlobStoreRoundTripOverHTTP(t *testing.T) {
	bs, err := NewBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(bs.Handler())
	defer srv.Close()

	m := &Metrics{}
	hs := NewHTTPStore(HTTPStoreOptions{Base: srv.URL, Metrics: m})
	key := testKey(70)
	blob := marshalArtifact(t, testArtifact("IS"))

	// A miss on an empty store is healthy, not degraded.
	if _, ok, err := hs.Get(context.Background(), key); ok || err != nil {
		t.Fatalf("empty-store get: ok=%t err=%v", ok, err)
	}
	if hs.Degraded() {
		t.Fatal("healthy miss marked the store degraded")
	}

	if err := hs.Put(context.Background(), key, blob); err != nil {
		t.Fatal(err)
	}
	if bs.Len() != 1 {
		t.Fatalf("blob store holds %d blobs, want 1", bs.Len())
	}
	got, ok, err := hs.Get(context.Background(), key)
	if err != nil || !ok || !bytes.Equal(got, blob) {
		t.Fatalf("get: ok=%t err=%v len=%d want=%d", ok, err, len(got), len(blob))
	}
	if m.StoreUploads.Load() != 1 || m.StoreFetches.Load() != 1 {
		t.Fatalf("uploads=%d fetches=%d", m.StoreUploads.Load(), m.StoreFetches.Load())
	}
	if hs.Degraded() || m.StoreDegraded.Load() != 0 {
		t.Fatal("clean round trip degraded the store")
	}
}

// TestBlobStoreRejectsBadKeysAndDamagedUploads: path-escaping keys are
// rejected on both verbs, and an upload whose hash header disagrees with
// its body is refused before it can poison readers.
func TestBlobStoreRejectsBadKeysAndDamagedUploads(t *testing.T) {
	bs, err := NewBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(bs.Handler())
	defer srv.Close()

	for _, key := range []string{"..%2f..%2fetc", "short", testKey(0)[:63] + "G"} {
		resp, err := http.Get(srv.URL + "/v1/blob/" + key)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound &&
			resp.StatusCode != http.StatusMovedPermanently {
			t.Fatalf("key %q: status %d", key, resp.StatusCode)
		}
	}

	// Damaged upload: hash header from different bytes.
	key := testKey(71)
	wrong := sha256.Sum256([]byte("other bytes entirely"))
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/blob/"+key, bytes.NewReader([]byte("blob body")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(blobHashHeader, hex.EncodeToString(wrong[:]))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("damaged upload accepted: status %d", resp.StatusCode)
	}
	if bs.Len() != 0 {
		t.Fatal("damaged upload reached the blob directory")
	}
}

// TestHTTPStoreDegradesOnDeadEndpoint: an unreachable store degrades to
// misses — never errors — and after the breaker's threshold the circuit
// opens, so further operations do not even touch the network.
func TestHTTPStoreDegradesOnDeadEndpoint(t *testing.T) {
	// Bind-then-close gives a dead address that refuses connections.
	srv := httptest.NewServer(http.NotFoundHandler())
	deadURL := srv.URL
	srv.Close()

	ob := obs.NewObserver(nil)
	m := &Metrics{}
	hs := NewHTTPStore(HTTPStoreOptions{
		Base: deadURL, Obs: ob, Metrics: m,
		Breaker: resilience.BreakerOptions{Threshold: 2, Cooldown: time.Hour},
	})
	for i := 0; i < 5; i++ {
		if _, ok, err := hs.Get(context.Background(), testKey(72)); ok || err != nil {
			t.Fatalf("get %d: ok=%t err=%v, want degraded miss", i, ok, err)
		}
	}
	if !hs.Degraded() {
		t.Fatal("dead endpoint did not set the sticky degraded flag")
	}
	if got := m.StoreDegraded.Load(); got != 5 {
		t.Fatalf("store degraded counter = %d, want 5", got)
	}
	if hs.Breaker().State() != resilience.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", hs.Breaker().State())
	}
	// Puts behind the open circuit degrade without touching the network.
	if err := hs.Put(context.Background(), testKey(72), []byte("x")); err != nil {
		t.Fatalf("degraded put returned an error: %v", err)
	}
	var sawDegraded bool
	for _, ev := range ob.Events.Recent() {
		if ev.Name == "dist.store.degraded" {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("dist.store.degraded event not recorded")
	}
}

// TestHTTPStoreRejectsCorruptBlob: a body that fails SHA-256
// verification is a degraded miss, not a poisoned hit.
func TestHTTPStoreRejectsCorruptBlob(t *testing.T) {
	good := []byte("the blob the hash was computed over")
	sum := sha256.Sum256(good)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(blobHashHeader, hex.EncodeToString(sum[:]))
		w.Write([]byte("corrupted in transit"))
	}))
	defer srv.Close()

	m := &Metrics{}
	hs := NewHTTPStore(HTTPStoreOptions{Base: srv.URL, Metrics: m})
	if _, ok, err := hs.Get(context.Background(), testKey(73)); ok || err != nil {
		t.Fatalf("corrupt blob: ok=%t err=%v, want degraded miss", ok, err)
	}
	if !hs.Degraded() || m.StoreDegraded.Load() != 1 || m.StoreFetches.Load() != 0 {
		t.Fatalf("degraded=%t counter=%d fetches=%d",
			hs.Degraded(), m.StoreDegraded.Load(), m.StoreFetches.Load())
	}
}

// TestWorkerAttachesStoreAndCoordinatorFeedsIt: end to end — the lease
// advertises the coordinator's store, the worker attaches its HTTPStore
// to the coordinator URL, and the accepted completion is fed write-behind
// into the blob directory, where a fresh client can fetch it verified.
func TestWorkerAttachesStoreAndCoordinatorFeedsIt(t *testing.T) {
	bs, err := NewBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(CoordinatorOptions{Lease: time.Second, Store: bs})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	runner := &fakeRunner{fn: func(ctx context.Context, spec pipeline.RunSpec) (*pipeline.Artifact, error) {
		return testArtifact(spec.App), nil
	}}
	hs := NewHTTPStore(HTTPStoreOptions{Metrics: coord.Metrics()})
	w, err := NewWorker(WorkerOptions{
		Name: "w1", Runner: runner, Store: hs, PollInterval: 5 * time.Millisecond,
		Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	go w.Poll(ctx, srv.URL)

	key := testKey(74)
	if _, err := coord.Execute(context.Background(), testSpec("IS"), key); err != nil {
		t.Fatal(err)
	}
	coord.Finish()

	if hs.Base() != srv.URL {
		t.Fatalf("worker store base %q, want %q (attached from the lease)", hs.Base(), srv.URL)
	}
	if coord.Metrics().StoreBlobs.Load() != 1 || bs.Len() != 1 {
		t.Fatalf("write-behind feed: blobs metric=%d, stored=%d",
			coord.Metrics().StoreBlobs.Load(), bs.Len())
	}
	fresh := NewHTTPStore(HTTPStoreOptions{Base: srv.URL, Metrics: &Metrics{}})
	data, ok, err := fresh.Get(context.Background(), key)
	if err != nil || !ok {
		t.Fatalf("fed blob not fetchable: ok=%t err=%v", ok, err)
	}
	if art, err := pipeline.UnmarshalArtifact(data, testSpec("IS"), key); err != nil || art.C.Name != "IS" {
		t.Fatalf("fed blob does not decode: %v", err)
	}
	if coord.Degraded() {
		t.Fatal("healthy store run marked degraded")
	}
}

// TestDegradedReportSurfacesThroughCoordinator: a completion carrying
// StoreDegraded marks the sweep degraded — even when it arrives as a
// duplicate — and is counted and flight-recorded.
func TestDegradedReportSurfacesThroughCoordinator(t *testing.T) {
	ob := obs.NewObserver(nil)
	coord := NewCoordinator(CoordinatorOptions{Lease: time.Second, Obs: ob})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	key := testKey(75)
	var wg sync.WaitGroup
	wg.Add(1)
	var execErr error
	go func() {
		defer wg.Done()
		_, execErr = coord.Execute(context.Background(), testSpec("IS"), key)
	}()
	var lease LeaseResponse
	for deadline := time.Now().Add(5 * time.Second); ; {
		postJSON(t, srv.URL+"/v1/lease", LeaseRequest{V: ProtoVersion, Worker: "w1"}, &lease)
		if lease.Status == StatusLease {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease granted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lease.Store {
		t.Fatal("lease advertises a store the coordinator does not serve")
	}
	var comp CompleteResponse
	postJSON(t, srv.URL+"/v1/complete", CompleteRequest{
		V: ProtoVersion, Worker: "w1", ID: lease.ID, Key: key,
		Artifact: marshalArtifact(t, testArtifact("IS")), StoreDegraded: true,
	}, &comp)
	wg.Wait()
	if execErr != nil {
		t.Fatal(execErr)
	}
	if !coord.Degraded() {
		t.Fatal("worker's degradation report did not mark the sweep degraded")
	}
	if coord.Metrics().DegradedReports.Load() != 1 {
		t.Fatalf("degraded reports = %d", coord.Metrics().DegradedReports.Load())
	}
	var saw bool
	for _, ev := range ob.Events.Recent() {
		if ev.Name == "dist.store.degraded.reported" {
			saw = true
		}
	}
	if !saw {
		t.Fatal("dist.store.degraded.reported event not recorded")
	}
}
