package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/resilience"
)

// A Runner executes one RunSpec to an artifact. *pipeline.Engine
// satisfies it, which gives a worker the full local pipeline — disk
// cache, retries, panic isolation — under each lease; tests substitute
// fakes to script crashes and hangs.
type Runner interface {
	RunContext(ctx context.Context, spec pipeline.RunSpec) (*pipeline.Artifact, error)
}

// WorkerOptions configures a Worker. Zero values take the defaults.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator (heartbeats, lease
	// bookkeeping, lost-worker events). Required.
	Name string
	// Runner executes leased specs; normally a *pipeline.Engine with its
	// own cache directory. Required.
	Runner Runner
	// Obs receives worker-side events; nil is a no-op.
	Obs *obs.Observer
	// Retry is the RPC retry schedule; zero means resilience defaults.
	Retry resilience.Policy
	// RPCTimeout bounds one RPC attempt; default 30s.
	RPCTimeout time.Duration
	// PollInterval is the idle wait between lease polls when the
	// coordinator answers "wait"; default 250ms.
	PollInterval time.Duration
	// UnreachableGrace is how long Poll keeps retrying a coordinator
	// that answers nothing at all before giving it up for dead; default
	// 2m. (A coordinator mid-restart answers within the grace; one whose
	// process is gone for good should not pin a worker forever.)
	UnreachableGrace time.Duration
	// Store, when non-nil, is the worker's shared-store client: when a
	// coordinator advertises its blob store (LeaseResponse.Store), the
	// worker points the client there and reports the client's sticky
	// degradation flag on every completion.
	Store *HTTPStore
	// Transport overrides the RPC client's HTTP transport (fault
	// injection for the chaos matrix).
	Transport http.RoundTripper
	// Clock supplies the worker's time base; nil means the observer's
	// clock (the system clock when unobserved).
	Clock obs.Clock
}

// A Worker executes leased specs from a coordinator: poll for a lease,
// run the spec through the Runner, heartbeat while it runs, report the
// artifact (or the classified failure) back. A worker holds no sweep
// state — killing one loses nothing but its in-flight lease, which the
// coordinator re-enqueues on expiry.
type Worker struct {
	name             string
	runner           Runner
	ob               *obs.Observer
	client           *client
	store            *HTTPStore
	clock            obs.Clock
	pollInterval     time.Duration
	unreachableGrace time.Duration
	attach           chan string
}

// NewWorker builds a worker from opts.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Name == "" {
		return nil, fmt.Errorf("dist: worker needs a name")
	}
	if opts.Runner == nil {
		return nil, fmt.Errorf("dist: worker %s needs a runner", opts.Name)
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 250 * time.Millisecond
	}
	if opts.UnreachableGrace <= 0 {
		opts.UnreachableGrace = 2 * time.Minute
	}
	if opts.Clock == nil {
		opts.Clock = opts.Obs.ClockOrSystem()
	}
	cl := newClient(opts.Retry, opts.RPCTimeout)
	if opts.Transport != nil {
		cl.setTransport(opts.Transport)
	}
	return &Worker{
		name:             opts.Name,
		runner:           opts.Runner,
		ob:               opts.Obs,
		client:           cl,
		store:            opts.Store,
		clock:            opts.Clock,
		pollInterval:     opts.PollInterval,
		unreachableGrace: opts.UnreachableGrace,
		attach:           make(chan string, 4),
	}, nil
}

// storeDegraded reports the store client's sticky degradation flag (false
// without a store).
func (w *Worker) storeDegraded() bool {
	return w.store != nil && w.store.Degraded()
}

// Poll serves one coordinator until its sweep is done, ctx is
// cancelled, or the coordinator stays unreachable past the grace
// period. Every lease failure mode is survivable by design: a crash of
// this process only costs the in-flight lease.
func (w *Worker) Poll(ctx context.Context, coordinatorURL string) error {
	w.ob.Emit("dist.worker.attach", map[string]string{"worker": w.name, "coordinator": coordinatorURL})
	unreachableSince := time.Time{}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		err := w.client.post(ctx, coordinatorURL+"/v1/lease", LeaseRequest{V: ProtoVersion, Worker: w.name}, &lease)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if resilience.Classify(err) == resilience.Permanent {
				return fmt.Errorf("dist: worker %s: lease poll: %w", w.name, err)
			}
			// Transient and already retried by the client's policy: the
			// coordinator is unreachable. Keep knocking until the grace
			// period runs out — it may be restarting around its journal.
			if unreachableSince.IsZero() {
				unreachableSince = w.clock.Now()
				w.ob.Emit("dist.coordinator.unreachable", map[string]string{"worker": w.name, "coordinator": coordinatorURL})
			} else if w.clock.Now().Sub(unreachableSince) > w.unreachableGrace {
				return fmt.Errorf("dist: worker %s: coordinator %s unreachable for %v: %w",
					w.name, coordinatorURL, w.unreachableGrace, err)
			}
			if !sleepCtx(ctx, w.pollInterval) {
				return ctx.Err()
			}
			continue
		}
		unreachableSince = time.Time{}
		switch lease.Status {
		case StatusDone:
			w.ob.Emit("dist.worker.detach", map[string]string{"worker": w.name, "coordinator": coordinatorURL})
			return nil
		case StatusWait:
			if !sleepCtx(ctx, w.pollInterval) {
				return ctx.Err()
			}
		case StatusLease:
			if w.store != nil && lease.Store && w.store.Base() == "" {
				// The coordinator serves a shared blob store on its own
				// base URL; point the engine's store client there.
				w.store.SetBase(coordinatorURL)
				w.ob.Emit("dist.store.attached", map[string]string{"worker": w.name, "store": coordinatorURL})
			}
			w.serve(ctx, coordinatorURL, lease)
		default:
			return fmt.Errorf("dist: worker %s: coordinator answered unknown lease status %q", w.name, lease.Status)
		}
	}
}

// serve executes one lease end to end: run the spec with heartbeats,
// then report the artifact or the classified failure. Errors inside a
// lease never abort the polling loop — they are reported to the
// coordinator (or swallowed when the lease was already abandoned) and
// the worker moves on.
func (w *Worker) serve(ctx context.Context, coordinatorURL string, lease LeaseResponse) {
	var spec pipeline.RunSpec
	if err := json.Unmarshal(lease.Spec, &spec); err != nil {
		// An undecodable spec is permanent by definition; report it so the
		// coordinator fails the item instead of waiting out the lease.
		w.reportFailure(ctx, coordinatorURL, lease.ID,
			fmt.Errorf("dist: worker %s: decoding leased spec: %w", w.name, err), false)
		return
	}
	label := spec.Label()
	w.ob.Emit("dist.lease.run", map[string]string{"worker": w.name, "spec": label, "key": lease.Key})
	sp := w.ob.StartSpan("worker", w.name, "dist", "run "+label)
	defer sp.End()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	abandoned := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(runCtx, coordinatorURL, lease, cancel, abandoned)
	}()

	art, err := w.runner.RunContext(runCtx, spec)
	cancel()
	<-hbDone
	select {
	case <-abandoned:
		// The coordinator re-granted the lease (or finished the item):
		// drop the result. If the run did complete, deliver it anyway —
		// completion is idempotent and a duplicate costs one upload.
		if err != nil {
			w.ob.Emit("dist.lease.abandoned", map[string]string{"worker": w.name, "spec": label})
			return
		}
	default:
	}
	if err != nil {
		if ctx.Err() != nil {
			return // the worker itself is shutting down; the lease will expire
		}
		transient := resilience.Classify(err) == resilience.Transient
		w.reportFailure(ctx, coordinatorURL, lease.ID, err, transient)
		return
	}
	w.deliver(ctx, coordinatorURL, lease, art)
}

// heartbeatLoop extends the lease at a third of its duration until the
// run context ends; an Abandon answer cancels the run.
func (w *Worker) heartbeatLoop(ctx context.Context, coordinatorURL string, lease LeaseResponse, cancel context.CancelFunc, abandoned chan<- struct{}) {
	interval := time.Duration(lease.LeaseMS) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	//lint:allow determinism heartbeats pace a real network lease; the Clock seam only supplies Now
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		var resp HeartbeatResponse
		req := HeartbeatRequest{V: ProtoVersion, Worker: w.name, ID: lease.ID}
		// One attempt per tick: a missed heartbeat is recovered by the
		// next tick well inside the lease, and queueing retries behind a
		// slow coordinator would bunch them.
		body, err := json.Marshal(req)
		if err != nil {
			continue
		}
		if err := w.client.postOnce(ctx, coordinatorURL+"/v1/heartbeat", body, &resp); err != nil {
			continue
		}
		if resp.Abandon {
			close(abandoned)
			cancel()
			return
		}
	}
}

// deliver uploads the artifact, retrying transient failures; a duplicate
// acknowledgement is success (someone else delivered first).
func (w *Worker) deliver(ctx context.Context, coordinatorURL string, lease LeaseResponse, art *pipeline.Artifact) {
	data, err := pipeline.MarshalArtifact(art)
	if err != nil {
		w.reportFailure(ctx, coordinatorURL, lease.ID,
			fmt.Errorf("dist: worker %s: encoding artifact: %w", w.name, err), false)
		return
	}
	req := CompleteRequest{
		V: ProtoVersion, Worker: w.name, ID: lease.ID, Key: lease.Key,
		Artifact: data, StoreDegraded: w.storeDegraded(),
	}
	var resp CompleteResponse
	if err := w.client.post(ctx, coordinatorURL+"/v1/complete", req, &resp); err != nil {
		w.ob.Emit("dist.deliver.failed", map[string]string{"worker": w.name, "key": lease.Key, "error": err.Error()})
		return // the lease expires and the work is re-enqueued elsewhere
	}
	name := "dist.delivered"
	if resp.Duplicate {
		name = "dist.delivered.duplicate"
	}
	w.ob.Emit(name, map[string]string{"worker": w.name, "key": lease.Key})
}

// reportFailure posts a classified failure for the lease; if even the
// report cannot be delivered, the lease expiry carries the news.
func (w *Worker) reportFailure(ctx context.Context, coordinatorURL string, id uint64, runErr error, transient bool) {
	req := FailRequest{V: ProtoVersion, Worker: w.name, ID: id, Error: runErr.Error(), Transient: transient}
	var resp FailResponse
	if err := w.client.post(ctx, coordinatorURL+"/v1/fail", req, &resp); err != nil {
		w.ob.Emit("dist.fail.undelivered", map[string]string{"worker": w.name, "error": err.Error()})
	}
}

// Run is the long-lived worker loop: it waits for attach requests
// (delivered through ControlHandler) and serves each coordinator until
// its sweep completes, then goes back to waiting. It returns when ctx
// is cancelled.
func (w *Worker) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case coordinatorURL := <-w.attach:
			if err := w.Poll(ctx, coordinatorURL); err != nil && ctx.Err() == nil {
				w.ob.Emit("dist.poll.ended", map[string]string{"worker": w.name, "error": err.Error()})
			}
		}
	}
}

// ControlHandler returns the worker's own HTTP surface: POST /v1/attach
// points the worker at a coordinator, /healthz answers liveness.
func (w *Worker) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/attach", func(rw http.ResponseWriter, r *http.Request) {
		var req AttachRequest
		if !decodeRequest(rw, r, &req) {
			return
		}
		if req.Coordinator == "" {
			writeError(rw, http.StatusBadRequest, "", "attach needs a coordinator URL")
			return
		}
		select {
		case w.attach <- req.Coordinator:
			writeJSON(rw, AttachResponse{Acked: true})
		default:
			writeError(rw, http.StatusServiceUnavailable, "", "attach queue full")
		}
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// Attach points the worker listening at workerURL to a coordinator: the
// client side of the worker's POST /v1/attach control endpoint. Transport
// failures are retried on the default schedule (the worker may still be
// binding its listener).
func Attach(ctx context.Context, workerURL, coordinatorURL string) error {
	c := newClient(resilience.Policy{}, 0)
	var resp AttachResponse
	req := AttachRequest{V: ProtoVersion, Coordinator: coordinatorURL}
	if err := c.post(ctx, workerURL+"/v1/attach", req, &resp); err != nil {
		return fmt.Errorf("dist: attaching worker %s: %w", workerURL, err)
	}
	return nil
}

// version accessor for AttachRequest (see decodeRequest).
func (r AttachRequest) version() int { return r.V }

// sleepCtx waits d or until ctx is cancelled, reporting whether the full
// wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	//lint:allow determinism cancellable real-time wait between polls; the Clock seam only supplies Now
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
