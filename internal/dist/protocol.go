package dist

import "encoding/json"

// The wire protocol is four worker→coordinator POSTs plus a state
// snapshot, all JSON over HTTP:
//
//	POST /v1/lease      LeaseRequest     → LeaseResponse
//	POST /v1/heartbeat  HeartbeatRequest → HeartbeatResponse
//	POST /v1/complete   CompleteRequest  → CompleteResponse
//	POST /v1/fail       FailRequest      → FailResponse
//	GET  /v1/state      —                → State
//
// Every request carries V (ProtoVersion); a mismatch is answered with
// HTTP 400 and an errorResponse whose Code is "version-mismatch", which
// the client surfaces as a permanent *ProtocolError.

// Lease statuses returned by /v1/lease.
const (
	// StatusLease means the response carries a lease: run Spec, report
	// against ID, and heartbeat before LeaseMS elapses.
	StatusLease = "lease"
	// StatusWait means nothing is pending right now; poll again.
	StatusWait = "wait"
	// StatusDone means the sweep is finished; the worker may disconnect.
	StatusDone = "done"
)

// LeaseRequest asks the coordinator for one unit of work.
type LeaseRequest struct {
	V      int    `json:"v"`
	Worker string `json:"worker"`
}

// LeaseResponse grants a lease (StatusLease), asks the worker to poll
// again (StatusWait), or dismisses it (StatusDone).
type LeaseResponse struct {
	Status string `json:"status"`
	// ID names the leased item in heartbeats and reports. IDs are
	// per-coordinator-process; the durable identity of the work is Key.
	ID uint64 `json:"id,omitempty"`
	// Spec is the pipeline.RunSpec to execute, verbatim JSON.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Key is the spec's content-addressed cache key; completions are
	// deduplicated on it.
	Key string `json:"key,omitempty"`
	// LeaseMS is the lease duration in milliseconds: the worker must
	// complete or heartbeat within it or the work is re-enqueued.
	LeaseMS int64 `json:"lease_ms,omitempty"`
	// Store reports that the coordinator serves the shared blob store
	// (GET/PUT /v1/blob/{key} on its own base URL); the worker should
	// point its HTTPStore there.
	Store bool `json:"store,omitempty"`
}

// HeartbeatRequest extends a lease and reports the spec's current
// pipeline stage.
type HeartbeatRequest struct {
	V      int    `json:"v"`
	Worker string `json:"worker"`
	ID     uint64 `json:"id"`
	Stage  string `json:"stage,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat. Abandon is set when the
// lease is no longer held (it expired and was re-granted, or the item
// already finished): the worker should cancel the run and drop the
// result rather than racing the new holder.
type HeartbeatResponse struct {
	Abandon bool `json:"abandon,omitempty"`
}

// CompleteRequest delivers a finished artifact.
type CompleteRequest struct {
	V      int    `json:"v"`
	Worker string `json:"worker"`
	ID     uint64 `json:"id"`
	Key    string `json:"key"`
	// Artifact is the pipeline wire codec's serialization
	// (pipeline.MarshalArtifact).
	Artifact json.RawMessage `json:"artifact"`
	// StoreDegraded reports that this worker fell back from the shared
	// store at least once: the sweep completed, but degraded. The
	// coordinator surfaces it through Degraded (exit code 3).
	StoreDegraded bool `json:"store_degraded,omitempty"`
}

// CompleteResponse acknowledges an artifact. Duplicate reports that the
// work was already complete (a lease-expiry race); the upload was
// discarded idempotently and the worker owes nothing further.
type CompleteResponse struct {
	Duplicate bool `json:"duplicate,omitempty"`
}

// FailRequest reports that a leased spec failed on the worker.
type FailRequest struct {
	V      int    `json:"v"`
	Worker string `json:"worker"`
	ID     uint64 `json:"id"`
	Error  string `json:"error"`
	// Transient carries the worker-side resilience classification: a
	// transient failure is re-enqueued (up to the attempt budget), a
	// permanent one fails the spec for the whole sweep.
	Transient bool `json:"transient,omitempty"`
}

// FailResponse acknowledges a failure report.
type FailResponse struct {
	Acked bool `json:"acked"`
}

// AttachRequest (POST /v1/attach on a worker's control server) points a
// long-running worker at a coordinator; the worker polls it until the
// sweep reports done.
type AttachRequest struct {
	V           int    `json:"v"`
	Coordinator string `json:"coordinator"`
}

// AttachResponse acknowledges an attach.
type AttachResponse struct {
	Acked bool `json:"acked"`
}

// errorResponse is the body of every non-2xx coordinator answer.
type errorResponse struct {
	Error string `json:"error"`
	// Code is a machine-readable discriminator; "version-mismatch" marks
	// the permanent protocol rejection.
	Code string `json:"code,omitempty"`
}

// codeVersionMismatch marks an errorResponse caused by protocol skew.
const codeVersionMismatch = "version-mismatch"

// ItemState is one work item in a State snapshot.
type ItemState struct {
	ID       uint64 `json:"id"`
	Spec     string `json:"spec"`
	Key      string `json:"key"`
	State    string `json:"state"` // pending | leased | done | failed
	Worker   string `json:"worker,omitempty"`
	Stage    string `json:"stage,omitempty"`
	Attempts int    `json:"attempts"`
	// Hedge is the speculative re-lease holder while a straggler is
	// hedged (or "pending" while the hedge waits for an idle worker).
	Hedge string `json:"hedge,omitempty"`
	Err   string `json:"error,omitempty"`
}

// State is the coordinator's queue snapshot (GET /v1/state, and the
// /distz debug page).
type State struct {
	Finished bool        `json:"finished"`
	Pending  int         `json:"pending"`
	Leased   int         `json:"leased"`
	Done     int         `json:"done"`
	Failed   int         `json:"failed"`
	Items    []ItemState `json:"items"`
}
