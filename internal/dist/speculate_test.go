package dist

import (
	"context"
	"testing"
	"time"

	"commchar/internal/obs"
	"commchar/internal/pipeline"
)

// specClock returns a frozen fake clock and a coordinator wired to it,
// with speculation enabled at the given factor.
func specCoordinator(t *testing.T, factor float64, lease time.Duration) (*Coordinator, *obs.Fake, *obs.Observer) {
	t.Helper()
	clock := obs.NewFake(time.Unix(1000, 0), 0)
	ob := obs.NewObserver(nil)
	coord := NewCoordinator(CoordinatorOptions{
		Lease: lease, SpeculateFactor: factor, Clock: clock, Obs: ob,
	})
	return coord, clock, ob
}

// enqueue starts Execute in a goroutine and waits until the item is
// grantable, returning the result channel.
func enqueue(t *testing.T, coord *Coordinator, spec pipeline.RunSpec, key string) chan error {
	t.Helper()
	resCh := make(chan error, 1)
	go func() {
		_, err := coord.Execute(context.Background(), spec, key)
		resCh <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		coord.mu.Lock()
		queued := len(coord.queue) > 0
		coord.mu.Unlock()
		if queued {
			return resCh
		}
		if time.Now().After(deadline) {
			t.Fatal("spec never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSpeculativeRescueBeforeExpiry is the acceptance test for
// speculative re-lease: a deliberately stalled worker — alive and
// heartbeating, so lease expiry never fires — is hedged once its stage
// outlives the speculation threshold, and the hedge's completion rescues
// the spec strictly before lease expiry would have re-enqueued it
// (LeaseExpiries and Requeues both still zero at rescue time).
func TestSpeculativeRescueBeforeExpiry(t *testing.T) {
	coord, clock, ob := specCoordinator(t, 3, 10*time.Minute)

	// Seed the stage-duration median: a fast spec completes in 1 minute.
	fastKey := testKey(50)
	fastRes := enqueue(t, coord, testSpec("IS"), fastKey)
	if lease := coord.grant("wA"); lease.Status != StatusLease {
		t.Fatalf("fast lease status %q", lease.Status)
	}
	clock.Advance(time.Minute)
	if _, err := coord.complete(CompleteRequest{
		V: ProtoVersion, Worker: "wA", ID: 1, Key: fastKey,
		Artifact: marshalArtifact(t, testArtifact("IS")),
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-fastRes; err != nil {
		t.Fatal(err)
	}

	// The straggler: leased to a worker that heartbeats (the lease never
	// expires) but makes no stage progress.
	slowKey := testKey(51)
	slowRes := enqueue(t, coord, testSpec("MG"), slowKey)
	slow := coord.grant("stall")
	if slow.Status != StatusLease {
		t.Fatalf("straggler lease status %q", slow.Status)
	}

	// 4 minutes pass — past the 3×median = 3m threshold, nowhere near the
	// 10m lease — with the holder dutifully heartbeating.
	clock.Advance(4 * time.Minute)
	if hb := coord.heartbeat(HeartbeatRequest{V: ProtoVersion, Worker: "stall", ID: slow.ID}); hb.Abandon {
		t.Fatal("live straggler told to abandon")
	}
	coord.expire(clock.Now())

	m := coord.Metrics()
	if m.Speculations.Load() != 1 {
		t.Fatalf("speculations = %d, want 1", m.Speculations.Load())
	}
	if m.LeaseExpiries.Load() != 0 || m.Requeues.Load() != 0 {
		t.Fatalf("speculation leaked into expiry path: expiries=%d requeues=%d",
			m.LeaseExpiries.Load(), m.Requeues.Load())
	}

	// The straggler's own holder cannot take the hedge — that would just
	// double-book the hung worker.
	if l := coord.grant("stall"); l.Status != StatusWait {
		t.Fatalf("holder was granted its own hedge: %+v", l)
	}
	hedge := coord.grant("wB")
	if hedge.Status != StatusLease || hedge.ID != slow.ID || hedge.Key != slowKey {
		t.Fatalf("hedge grant = %+v, want item %d", hedge, slow.ID)
	}
	if st := coord.State(); st.Items[1].Hedge != "wB" {
		t.Fatalf("state does not show the hedge holder: %+v", st.Items[1])
	}

	// The hedge delivers first: the spec is rescued while the original
	// lease is still live — strictly before expiry would have acted.
	clock.Advance(30 * time.Second)
	resp, err := coord.complete(CompleteRequest{
		V: ProtoVersion, Worker: "wB", ID: hedge.ID, Key: slowKey,
		Artifact: marshalArtifact(t, testArtifact("MG")),
	})
	if err != nil || resp.Duplicate {
		t.Fatalf("hedge completion: resp=%+v err=%v", resp, err)
	}
	if err := <-slowRes; err != nil {
		t.Fatalf("rescued spec failed: %v", err)
	}
	if m.Rescues.Load() != 1 {
		t.Fatalf("rescues = %d, want 1", m.Rescues.Load())
	}
	if m.LeaseExpiries.Load() != 0 || m.Requeues.Load() != 0 {
		t.Fatalf("rescue arrived after the expiry path acted: expiries=%d requeues=%d",
			m.LeaseExpiries.Load(), m.Requeues.Load())
	}
	if !coord.Degraded() {
		t.Fatal("a rescued straggler must mark the sweep degraded")
	}
	var sawRescue bool
	for _, ev := range ob.Events.Recent() {
		if ev.Name == "dist.speculation.rescued" {
			sawRescue = true
		}
	}
	if !sawRescue {
		t.Fatal("dist.speculation.rescued event not recorded")
	}

	// The stalled original finally answers: an idempotent duplicate.
	if resp, err := coord.complete(CompleteRequest{
		V: ProtoVersion, Worker: "stall", ID: slow.ID, Key: slowKey,
		Artifact: marshalArtifact(t, testArtifact("MG")),
	}); err != nil || !resp.Duplicate {
		t.Fatalf("original's late completion: resp=%+v err=%v", resp, err)
	}
}

// TestSpeculationDisabledByDefault: with the factor at its zero default
// no straggler is ever hedged, no matter how stale its stage.
func TestSpeculationDisabledByDefault(t *testing.T) {
	coord, clock, _ := specCoordinator(t, 0, time.Hour)

	key := testKey(55)
	resCh := enqueue(t, coord, testSpec("IS"), key)
	if lease := coord.grant("wA"); lease.Status != StatusLease {
		t.Fatalf("lease status %q", lease.Status)
	}
	clock.Advance(30 * time.Minute)
	coord.expire(clock.Now())
	if n := coord.Metrics().Speculations.Load(); n != 0 {
		t.Fatalf("speculations = %d with factor 0", n)
	}
	if _, err := coord.complete(CompleteRequest{
		V: ProtoVersion, Worker: "wA", ID: 1, Key: key,
		Artifact: marshalArtifact(t, testArtifact("IS")),
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-resCh; err != nil {
		t.Fatal(err)
	}
	if coord.Degraded() {
		t.Fatal("clean sweep marked degraded")
	}
}

// TestHedgePromotedWhenPrimaryExpires: the primary dies under a live
// hedge; the same expiry sweep promotes the hedge to sole holder instead
// of re-enqueueing work that is already running, and the promoted
// worker's completion is not counted as a rescue (it is the rightful
// holder by then).
func TestHedgePromotedWhenPrimaryExpires(t *testing.T) {
	coord, clock, ob := specCoordinator(t, 2, 10*time.Minute)

	// Seed the median with a 1-minute completion.
	fastKey := testKey(56)
	fastRes := enqueue(t, coord, testSpec("IS"), fastKey)
	coord.grant("wA")
	clock.Advance(time.Minute)
	if _, err := coord.complete(CompleteRequest{
		V: ProtoVersion, Worker: "wA", ID: 1, Key: fastKey,
		Artifact: marshalArtifact(t, testArtifact("IS")),
	}); err != nil {
		t.Fatal(err)
	}
	<-fastRes

	slowKey := testKey(57)
	slowRes := enqueue(t, coord, testSpec("MG"), slowKey)
	slow := coord.grant("stall")
	clock.Advance(3 * time.Minute) // past 2×1m threshold
	coord.expire(clock.Now())
	hedge := coord.grant("wB")
	if hedge.Status != StatusLease || hedge.ID != slow.ID {
		t.Fatalf("hedge grant = %+v", hedge)
	}

	// The primary goes fully silent: its lease (granted at t+1m, last
	// touched then) expires while the hedge — granted at t+4m — is live.
	clock.Advance(8 * time.Minute)
	if hb := coord.heartbeat(HeartbeatRequest{V: ProtoVersion, Worker: "wB", ID: hedge.ID}); hb.Abandon {
		t.Fatal("live hedge told to abandon")
	}
	coord.expire(clock.Now())

	m := coord.Metrics()
	if m.LeaseExpiries.Load() != 1 {
		t.Fatalf("primary expiry not recorded: %d", m.LeaseExpiries.Load())
	}
	if m.Requeues.Load() != 0 {
		t.Fatal("promotion must not re-enqueue work that is already running")
	}
	var sawPromoted bool
	for _, ev := range ob.Events.Recent() {
		if ev.Name == "dist.hedge.promoted" {
			sawPromoted = true
		}
	}
	if !sawPromoted {
		t.Fatal("dist.hedge.promoted event not recorded")
	}

	// The promoted worker completes as the ordinary holder: no rescue.
	if _, err := coord.complete(CompleteRequest{
		V: ProtoVersion, Worker: "wB", ID: slow.ID, Key: slowKey,
		Artifact: marshalArtifact(t, testArtifact("MG")),
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-slowRes; err != nil {
		t.Fatal(err)
	}
	if m.Rescues.Load() != 0 {
		t.Fatal("promoted holder's completion counted as a rescue")
	}

	// The stalled original's heartbeat after losing the item: abandon.
	if hb := coord.heartbeat(HeartbeatRequest{V: ProtoVersion, Worker: "stall", ID: slow.ID}); !hb.Abandon {
		t.Fatal("dispossessed worker's heartbeat not told to abandon")
	}
}

// TestHeartbeatAfterCompletionAbandons: a heartbeat landing after the
// item completed — the classic slow-network straggler — is told to
// abandon and extends nothing.
func TestHeartbeatAfterCompletionAbandons(t *testing.T) {
	coord, clock, _ := specCoordinator(t, 0, time.Minute)

	key := testKey(58)
	resCh := enqueue(t, coord, testSpec("IS"), key)
	lease := coord.grant("wA")
	clock.Advance(time.Second)
	if _, err := coord.complete(CompleteRequest{
		V: ProtoVersion, Worker: "wA", ID: lease.ID, Key: key,
		Artifact: marshalArtifact(t, testArtifact("IS")),
	}); err != nil {
		t.Fatal(err)
	}
	<-resCh

	before := coord.Metrics().Heartbeats.Load()
	if hb := coord.heartbeat(HeartbeatRequest{V: ProtoVersion, Worker: "wA", ID: lease.ID}); !hb.Abandon {
		t.Fatal("post-completion heartbeat not told to abandon")
	}
	if got := coord.Metrics().Heartbeats.Load(); got != before {
		t.Fatalf("post-completion heartbeat counted as an extension (%d -> %d)", before, got)
	}
}

// TestDoubleDismissalOfDrainedWorker: a worker that polls StatusDone
// twice after Finish is dismissed idempotently, and Drain returns
// immediately once every seen worker is dismissed — even on a frozen
// clock, where only the empty wait set can end the loop.
func TestDoubleDismissalOfDrainedWorker(t *testing.T) {
	coord, _, _ := specCoordinator(t, 0, time.Minute)

	if l := coord.grant("w1"); l.Status != StatusWait {
		t.Fatalf("pre-finish poll status %q", l.Status)
	}
	coord.Finish()
	if l := coord.grant("w1"); l.Status != StatusDone {
		t.Fatalf("post-finish poll status %q", l.Status)
	}
	// The second dismissal must be as clean as the first.
	if l := coord.grant("w1"); l.Status != StatusDone {
		t.Fatalf("second post-finish poll status %q", l.Status)
	}
	coord.mu.Lock()
	dismissed := len(coord.dismissed)
	coord.mu.Unlock()
	if dismissed != 1 {
		t.Fatalf("dismissed set has %d entries, want 1", dismissed)
	}

	done := make(chan struct{})
	go func() {
		coord.Drain(context.Background(), time.Hour)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return with every worker dismissed")
	}
}

// TestHedgeWinnerAndOriginalInSameExpirySweep: both the hedge's win and
// the original's late answer land around one expiry sweep; the sweep
// must not expire, requeue, or double-complete a finished item.
func TestHedgeWinnerAndOriginalInSameExpirySweep(t *testing.T) {
	coord, clock, _ := specCoordinator(t, 2, 5*time.Minute)

	fastKey := testKey(59)
	fastRes := enqueue(t, coord, testSpec("IS"), fastKey)
	coord.grant("wA")
	clock.Advance(time.Minute)
	if _, err := coord.complete(CompleteRequest{
		V: ProtoVersion, Worker: "wA", ID: 1, Key: fastKey,
		Artifact: marshalArtifact(t, testArtifact("IS")),
	}); err != nil {
		t.Fatal(err)
	}
	<-fastRes

	slowKey := testKey(60)
	slowRes := enqueue(t, coord, testSpec("MG"), slowKey)
	slow := coord.grant("stall")
	clock.Advance(150 * time.Second) // past 2×1m, inside the 5m lease
	coord.expire(clock.Now())
	hedge := coord.grant("wB")
	if hedge.Status != StatusLease {
		t.Fatalf("hedge grant = %+v", hedge)
	}

	// Hedge wins; original answers immediately after; then the expiry
	// sweep fires at a time where both stale deadlines have passed.
	if resp, err := coord.complete(CompleteRequest{
		V: ProtoVersion, Worker: "wB", ID: hedge.ID, Key: slowKey,
		Artifact: marshalArtifact(t, testArtifact("MG")),
	}); err != nil || resp.Duplicate {
		t.Fatalf("hedge completion: %+v %v", resp, err)
	}
	if resp, err := coord.complete(CompleteRequest{
		V: ProtoVersion, Worker: "stall", ID: slow.ID, Key: slowKey,
		Artifact: marshalArtifact(t, testArtifact("MG")),
	}); err != nil || !resp.Duplicate {
		t.Fatalf("original completion not a duplicate: %+v %v", resp, err)
	}
	if err := <-slowRes; err != nil {
		t.Fatal(err)
	}

	m := coord.Metrics()
	expiriesBefore, requeuesBefore := m.LeaseExpiries.Load(), m.Requeues.Load()
	clock.Advance(time.Hour)
	coord.expire(clock.Now())
	if m.LeaseExpiries.Load() != expiriesBefore || m.Requeues.Load() != requeuesBefore {
		t.Fatalf("expiry sweep acted on a finished item: expiries %d->%d requeues %d->%d",
			expiriesBefore, m.LeaseExpiries.Load(), requeuesBefore, m.Requeues.Load())
	}
	if m.Completions.Load() != 2 || m.Duplicates.Load() != 1 || m.Rescues.Load() != 1 {
		t.Fatalf("completions=%d duplicates=%d rescues=%d",
			m.Completions.Load(), m.Duplicates.Load(), m.Rescues.Load())
	}
	st := coord.State()
	if st.Done != 2 || st.Pending+st.Leased+st.Failed != 0 {
		t.Fatalf("state = %+v", st)
	}
}
