package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"commchar/internal/obs"
	"commchar/internal/resilience"
)

// The shared artifact store is the fleet-wide tier of the pipeline's
// cache hierarchy: a content-addressed blob store the coordinator serves
// over HTTP (GET/PUT /v1/blob/{key}), holding wire-codec artifact
// serializations keyed by the spec's cache key. The coordinator feeds it
// write-behind from every accepted completion; workers attach an
// HTTPStore as their engine's pipeline.CacheStore, so one worker's
// finished run is every other worker's warm hit.
//
// The store is strictly best-effort by contract. The HTTPStore client
// verifies every fetch against its SHA-256 transfer hash and guards the
// endpoint with a resilience.Breaker: an unreachable, erroring, or
// corrupt store trips the breaker and the engine falls back to the local
// disk cache — counted (commchar_dist_store_degraded_total) and
// flight-recorded, never a failed spec.

// blobHashHeader carries the hex SHA-256 of the blob body on both blob
// verbs, so either end can prove the transfer intact.
const blobHashHeader = "X-Blob-SHA256"

// validBlobKey reports whether key has the cache key's shape: lowercase
// hex, 64 digits. Anything else is rejected before it can name a path.
func validBlobKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// A BlobStore is the coordinator-side blob directory: one file per cache
// key, written atomically. It is safe for concurrent use.
type BlobStore struct {
	dir string
	// seq decorrelates concurrent same-key writers' temp names.
	seq atomic.Uint64
}

// NewBlobStore opens (creating if needed) a blob directory.
//
//lint:allow ctxflow one bounded local mkdir at setup; the serving ctx belongs to the HTTP layer above
func NewBlobStore(dir string) (*BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: opening blob store: %w", err)
	}
	return &BlobStore{dir: dir}, nil
}

// Get reads the blob for key; ok reports whether it exists.
//
//lint:allow ctxflow one bounded local-file read; request cancellation is the HTTP handler's job
func (s *BlobStore) Get(key string) ([]byte, bool, error) {
	if !validBlobKey(key) {
		return nil, false, fmt.Errorf("dist: blob store: malformed key %q", key)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("dist: blob store: reading %s: %w", key, err)
	}
	return data, true, nil
}

// Put writes the blob for key atomically (tmp + rename). Concurrent
// writers of one key race benignly: the blobs are bit-identical by the
// determinism invariant, and rename is atomic.
//
//lint:allow ctxflow one bounded local write+rename; abandoning it midway would leave torn blobs
func (s *BlobStore) Put(key string, data []byte) error {
	if !validBlobKey(key) {
		return fmt.Errorf("dist: blob store: malformed key %q", key)
	}
	tmp := filepath.Join(s.dir, fmt.Sprintf(".%s.tmp%d", key, s.seq.Add(1)))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("dist: blob store: writing %s: %w", key, err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dist: blob store: publishing %s: %w", key, err)
	}
	return nil
}

// Len counts the stored blobs (tests and the /distz page).
//
//lint:allow ctxflow one bounded local directory listing for diagnostics
func (s *BlobStore) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if validBlobKey(e.Name()) {
			n++
		}
	}
	return n
}

// Handler serves the blob API:
//
//	GET /v1/blob/{key}  200 blob bytes + X-Blob-SHA256, or 404
//	PUT /v1/blob/{key}  204 on accept; the body's hash must match the
//	                    X-Blob-SHA256 header when the client sends one
func (s *BlobStore) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/blob/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validBlobKey(key) {
			writeError(w, http.StatusBadRequest, "", fmt.Sprintf("malformed blob key %q", key))
			return
		}
		data, ok, err := s.Get(key)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "", err.Error())
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, "", "no such blob")
			return
		}
		sum := sha256.Sum256(data)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(blobHashHeader, hex.EncodeToString(sum[:]))
		w.Write(data)
	})
	mux.HandleFunc("PUT /v1/blob/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validBlobKey(key) {
			writeError(w, http.StatusBadRequest, "", fmt.Sprintf("malformed blob key %q", key))
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "", fmt.Sprintf("reading blob: %v", err))
			return
		}
		if want := r.Header.Get(blobHashHeader); want != "" {
			sum := sha256.Sum256(data)
			if got := hex.EncodeToString(sum[:]); got != want {
				// A hash that disagrees with the body means the upload was
				// damaged in transit; storing it would poison every reader.
				writeError(w, http.StatusBadRequest, "",
					fmt.Sprintf("blob hash mismatch: body %.16s, header %.16s", got, want))
				return
			}
		}
		if err := s.Put(key, data); err != nil {
			writeError(w, http.StatusInternalServerError, "", err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// HTTPStoreOptions configures an HTTPStore. Zero values take defaults.
type HTTPStoreOptions struct {
	// Base is the store server's URL prefix (the coordinator's base URL).
	// It may be left empty and set later with SetBase — a worker learns
	// its coordinator at attach time.
	Base string
	// Timeout bounds one store operation; default 10s. Deliberately
	// shorter than an RPC timeout: a slow store is a degraded store, and
	// the local fallback is always available.
	Timeout time.Duration
	// Breaker tunes the endpoint's circuit breaker; the zero value takes
	// the resilience defaults.
	Breaker resilience.BreakerOptions
	// Transport overrides the HTTP transport (fault injection).
	Transport http.RoundTripper
	// Obs receives degradation events; nil is a no-op.
	Obs *obs.Observer
	// Metrics receives the store counters; nil allocates a private set.
	Metrics *Metrics
}

// An HTTPStore is the worker-side client of the coordinator's blob API;
// it implements pipeline.CacheStore with graceful degradation. Every
// operation is one attempt, gated by a circuit breaker — no retries: the
// fallback (run locally, hit the local disk cache) is cheaper than
// waiting out a flaky store, and the breaker's deterministic half-open
// schedule re-probes a recovered store soon enough.
type HTTPStore struct {
	hc      *http.Client
	timeout time.Duration
	breaker *resilience.Breaker
	ob      *obs.Observer
	metrics *Metrics

	mu   sync.Mutex
	base string

	degraded atomic.Bool // sticky: any operation ever degraded
}

// NewHTTPStore builds a store client from opts.
func NewHTTPStore(opts HTTPStoreOptions) *HTTPStore {
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Metrics == nil {
		opts.Metrics = &Metrics{}
	}
	hc := &http.Client{}
	if opts.Transport != nil {
		hc.Transport = opts.Transport
	}
	return &HTTPStore{
		hc:      hc,
		timeout: opts.Timeout,
		breaker: resilience.NewBreaker(opts.Breaker),
		ob:      opts.Obs,
		metrics: opts.Metrics,
		base:    strings.TrimSuffix(opts.Base, "/"),
	}
}

// SetBase points the store at a server; an empty base disables it (every
// Get is a miss, every Put a no-op).
func (s *HTTPStore) SetBase(base string) {
	s.mu.Lock()
	s.base = strings.TrimSuffix(base, "/")
	s.mu.Unlock()
}

// Base returns the current server prefix ("" when detached).
func (s *HTTPStore) Base() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// Degraded reports whether any operation has ever fallen back — the
// sticky flag workers attach to their completion reports, so the
// coordinator can surface a degraded-but-complete sweep.
func (s *HTTPStore) Degraded() bool { return s.degraded.Load() }

// Breaker exposes the endpoint's circuit breaker (metrics, tests).
func (s *HTTPStore) Breaker() *resilience.Breaker { return s.breaker }

// degrade records one operation that fell back to the local cache.
func (s *HTTPStore) degrade(op, key string, err error) {
	s.metrics.StoreDegraded.Add(1)
	s.degraded.Store(true)
	fields := map[string]string{"op": op, "key": key}
	if err != nil {
		fields["err"] = err.Error()
	}
	s.ob.Emit("dist.store.degraded", fields)
}

// Get implements pipeline.CacheStore: fetch and verify the blob for key.
// Every failure mode degrades to (nil, false, nil) — a miss the engine
// serves locally — never an error.
func (s *HTTPStore) Get(ctx context.Context, key string) ([]byte, bool, error) {
	base := s.Base()
	if base == "" {
		return nil, false, nil
	}
	if !s.breaker.Allow() {
		s.degrade("get", key, fmt.Errorf("circuit open"))
		return nil, false, nil
	}
	opCtx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(opCtx, http.MethodGet, base+"/v1/blob/"+key, nil)
	if err != nil {
		s.breaker.Record(false)
		s.degrade("get", key, err)
		return nil, false, nil
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		s.breaker.Record(false)
		s.degrade("get", key, err)
		return nil, false, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// A miss is a healthy answer: the store is up, the blob just is
		// not there yet.
		s.breaker.Record(true)
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		s.breaker.Record(false)
		s.degrade("get", key, fmt.Errorf("HTTP %d", resp.StatusCode))
		return nil, false, nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		s.breaker.Record(false)
		s.degrade("get", key, err)
		return nil, false, nil
	}
	sum := sha256.Sum256(data)
	if got, want := hex.EncodeToString(sum[:]), resp.Header.Get(blobHashHeader); got != want {
		// Truncated or damaged in transit; trusting it would trade a warm
		// hit for a wrong artifact.
		s.breaker.Record(false)
		s.degrade("get", key, fmt.Errorf("blob hash mismatch: got %.16s, want %.16s", got, want))
		return nil, false, nil
	}
	s.breaker.Record(true)
	s.metrics.StoreFetches.Add(1)
	return data, true, nil
}

// Put implements pipeline.CacheStore: upload the blob for key,
// best-effort. Failures degrade silently (counted, flight-recorded) —
// the artifact is already safe in the local cache.
func (s *HTTPStore) Put(ctx context.Context, key string, data []byte) error {
	base := s.Base()
	if base == "" {
		return nil
	}
	if !s.breaker.Allow() {
		s.degrade("put", key, fmt.Errorf("circuit open"))
		return nil
	}
	opCtx, cancel := context.WithTimeout(ctx, s.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(opCtx, http.MethodPut, base+"/v1/blob/"+key, bytes.NewReader(data))
	if err != nil {
		s.breaker.Record(false)
		s.degrade("put", key, err)
		return nil
	}
	sum := sha256.Sum256(data)
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(blobHashHeader, hex.EncodeToString(sum[:]))
	resp, err := s.hc.Do(req)
	if err != nil {
		s.breaker.Record(false)
		s.degrade("put", key, err)
		return nil
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		s.breaker.Record(false)
		s.degrade("put", key, fmt.Errorf("HTTP %d", resp.StatusCode))
		return nil
	}
	s.breaker.Record(true)
	s.metrics.StoreUploads.Add(1)
	return nil
}
