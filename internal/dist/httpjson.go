package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"commchar/internal/resilience"
)

// maxBodyBytes bounds coordinator-side request bodies. The dominant
// payload is a serialized artifact: the largest sweep artifacts are a
// few tens of megabytes of CSV, so 256 MiB is generous headroom while
// still refusing a runaway stream.
const maxBodyBytes = 256 << 20

// versioned is any request that carries the protocol version.
type versioned interface{ version() int }

// decodeRequest reads and validates a JSON request body into dst (a
// pointer). It answers the request itself on failure — 400 with a
// version-mismatch code for protocol skew, 400 for malformed JSON — and
// reports whether the handler should proceed.
func decodeRequest(w http.ResponseWriter, r *http.Request, dst versioned) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "", fmt.Sprintf("malformed request: %v", err))
		return false
	}
	if v := dst.version(); v != ProtoVersion {
		writeError(w, http.StatusBadRequest, codeVersionMismatch,
			fmt.Sprintf("protocol version %d, coordinator speaks %d", v, ProtoVersion))
		return false
	}
	return true
}

// writeJSON answers a request with 200 and a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(v)
}

// writeError answers a request with an errorResponse.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg, Code: code})
}

// client is the worker's resilient RPC stub: every call retries through
// the resilience policy with the network taxonomy — refused, reset, and
// timed-out connections are transient (the coordinator may be
// restarting), a version mismatch is a permanent *ProtocolError.
type client struct {
	hc    *http.Client
	retry resilience.Policy
	// rpcTimeout bounds one attempt; the retry budget spans attempts.
	rpcTimeout time.Duration
}

// newClient builds a client; zero-valued options take the resilience
// defaults and a 30s per-attempt timeout.
func newClient(retry resilience.Policy, rpcTimeout time.Duration) *client {
	if retry.MaxAttempts == 0 {
		retry = resilience.DefaultPolicy()
	}
	if rpcTimeout <= 0 {
		rpcTimeout = 30 * time.Second
	}
	return &client{hc: &http.Client{}, retry: retry, rpcTimeout: rpcTimeout}
}

// setTransport overrides the client's HTTP transport (fault injection).
func (c *client) setTransport(rt http.RoundTripper) { c.hc.Transport = rt }

// post sends req to url and decodes the answer into resp, retrying
// transient failures on a schedule seeded by the URL (so concurrent
// workers decorrelate deterministically).
func (c *client) post(ctx context.Context, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("dist: encoding %s request: %w", url, err)
	}
	_, err = c.retry.Do(ctx, jitterSeed(url), func() error {
		return c.postOnce(ctx, url, body, resp)
	})
	return err
}

// postOnce is one RPC attempt. Classification rules:
//
//   - transport errors pass through (the net taxonomy in
//     resilience.Classify already calls them transient);
//   - an attempt that outlives rpcTimeout while the caller's context is
//     still live is marked transient explicitly, because the raw error
//     is context.DeadlineExceeded, which Classify must keep permanent
//     for real cancellation;
//   - a 5xx answer is transient (the coordinator can be mid-restart);
//   - a 4xx answer with the version-mismatch code is a permanent
//     *ProtocolError; other 4xx answers are plain permanent errors;
//   - an undecodable 2xx body is transient: the connection was cut
//     mid-answer.
func (c *client) postOnce(ctx context.Context, url string, body []byte, resp any) error {
	rpcCtx, cancel := context.WithTimeout(ctx, c.rpcTimeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(rpcCtx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: building %s request: %w", url, err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.hc.Do(httpReq)
	if err != nil {
		if rpcCtx.Err() != nil && ctx.Err() == nil {
			// The attempt timed out, not the caller: retryable.
			return resilience.MarkTransient(fmt.Errorf("dist: %s: attempt timed out: %w", url, err))
		}
		return fmt.Errorf("dist: %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, maxBodyBytes))
	if err != nil {
		// A cut answer is always worth one more try unless the caller
		// itself was cancelled (Classify keeps that permanent).
		if ctx.Err() != nil {
			return fmt.Errorf("dist: %s: reading answer: %w", url, err)
		}
		return resilience.MarkTransient(fmt.Errorf("dist: %s: reading answer: %w", url, err))
	}
	if httpResp.StatusCode != http.StatusOK {
		var er errorResponse
		detail := string(data)
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			detail = er.Error
			if er.Code == codeVersionMismatch {
				return &ProtocolError{Detail: detail}
			}
		}
		err := fmt.Errorf("dist: %s: HTTP %d: %s", url, httpResp.StatusCode, detail)
		if httpResp.StatusCode >= 500 {
			return resilience.MarkTransient(err)
		}
		return err
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return resilience.MarkTransient(fmt.Errorf("dist: %s: decoding answer: %w", url, err))
	}
	return nil
}

// jitterSeed derives a stable backoff seed from an RPC URL, so each
// worker/endpoint pair follows its own deterministic schedule.
func jitterSeed(url string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, url)
	return h.Sum64()
}
