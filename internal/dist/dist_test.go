package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"commchar/internal/apps"
	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/obs"
	"commchar/internal/pipeline"
	"commchar/internal/resilience"
)

// testArtifact builds a small, fully wire-round-trippable artifact.
func testArtifact(name string) *pipeline.Artifact {
	log := []mesh.Delivery{
		{Message: mesh.Message{ID: 1, Src: 0, Dst: 1, Bytes: 64, Inject: 10}, End: 30, Latency: 20, Blocked: 0, Hops: 1},
		{Message: mesh.Message{ID: 2, Src: 1, Dst: 0, Bytes: 128, Inject: 40}, End: 90, Latency: 50, Blocked: 5, Hops: 1},
	}
	return &pipeline.Artifact{
		C: &core.Characterization{
			Name: name, Strategy: core.StrategyDynamic, Procs: 2,
			Messages: len(log), TotalBytes: 192, Elapsed: 90,
			Log: log,
		},
	}
}

func testSpec(name string) pipeline.RunSpec {
	return pipeline.RunSpec{App: name, Procs: 4, Scale: apps.ScaleSmall}
}

func testKey(i int) string { return fmt.Sprintf("%064x", 0xd15c0+i) }

// postJSON is the raw-HTTP side of the protocol tests: no client retry
// machinery, just one request.
func postJSON(t *testing.T, url string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if resp != nil && httpResp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return httpResp.StatusCode
}

func marshalArtifact(t *testing.T, a *pipeline.Artifact) []byte {
	t.Helper()
	data, err := pipeline.MarshalArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLeaseLifecycleOverHTTP drives the full protocol with raw HTTP:
// lease, heartbeat, complete, duplicate, finish.
func TestLeaseLifecycleOverHTTP(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{Lease: time.Second})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	spec, key := testSpec("IS"), testKey(0)
	type result struct {
		art *pipeline.Artifact
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		art, err := coord.Execute(context.Background(), spec, key)
		resCh <- result{art, err}
	}()

	// Poll until the enqueue is visible; then the lease must carry the spec.
	var lease LeaseResponse
	for deadline := time.Now().Add(5 * time.Second); ; {
		postJSON(t, srv.URL+"/v1/lease", LeaseRequest{V: ProtoVersion, Worker: "w1"}, &lease)
		if lease.Status == StatusLease {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no lease granted, last status %q", lease.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lease.Key != key || lease.LeaseMS != 1000 {
		t.Fatalf("lease = %+v", lease)
	}
	var leasedSpec pipeline.RunSpec
	if err := json.Unmarshal(lease.Spec, &leasedSpec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(leasedSpec, spec) {
		t.Fatalf("leased spec %+v != %+v", leasedSpec, spec)
	}

	// Nothing else pending: the next poll waits.
	var second LeaseResponse
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{V: ProtoVersion, Worker: "w2"}, &second)
	if second.Status != StatusWait {
		t.Fatalf("second lease status %q, want wait", second.Status)
	}

	var hb HeartbeatResponse
	postJSON(t, srv.URL+"/v1/heartbeat", HeartbeatRequest{V: ProtoVersion, Worker: "w1", ID: lease.ID, Stage: "replay"}, &hb)
	if hb.Abandon {
		t.Fatal("live lease told to abandon")
	}

	art := testArtifact("IS")
	var comp CompleteResponse
	postJSON(t, srv.URL+"/v1/complete",
		CompleteRequest{V: ProtoVersion, Worker: "w1", ID: lease.ID, Key: key, Artifact: marshalArtifact(t, art)}, &comp)
	if comp.Duplicate {
		t.Fatal("first completion reported duplicate")
	}

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !reflect.DeepEqual(res.art.C, art.C) {
		t.Fatal("artifact did not round-trip through the wire")
	}

	// Completion is idempotent: a second upload is a duplicate, not an error.
	postJSON(t, srv.URL+"/v1/complete",
		CompleteRequest{V: ProtoVersion, Worker: "w2", ID: lease.ID, Key: key, Artifact: marshalArtifact(t, art)}, &comp)
	if !comp.Duplicate {
		t.Fatal("second completion not reported duplicate")
	}
	if coord.Metrics().Duplicates.Load() == 0 {
		t.Fatal("duplicate not counted")
	}

	coord.Finish()
	var done LeaseResponse
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{V: ProtoVersion, Worker: "w1"}, &done)
	if done.Status != StatusDone {
		t.Fatalf("post-finish lease status %q, want done", done.Status)
	}

	st := coord.State()
	if st.Done != 1 || st.Pending+st.Leased+st.Failed != 0 || !st.Finished {
		t.Fatalf("state = %+v", st)
	}
}

// TestLeaseExpiryRequeues proves the crash-recovery core: a worker that
// takes a lease and goes silent loses it, the spec is re-enqueued, a
// second worker completes it, and the loss shows up as events and
// metrics — never as a sweep failure.
func TestLeaseExpiryRequeues(t *testing.T) {
	ob := obs.NewObserver(nil)
	coord := NewCoordinator(CoordinatorOptions{Lease: 60 * time.Millisecond, Obs: ob})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	spec, key := testSpec("MG"), testKey(1)
	resCh := make(chan error, 1)
	go func() {
		_, err := coord.Execute(context.Background(), spec, key)
		resCh <- err
	}()

	// w1 takes the lease and "crashes" (never heartbeats, never reports).
	var first LeaseResponse
	for deadline := time.Now().Add(5 * time.Second); ; {
		postJSON(t, srv.URL+"/v1/lease", LeaseRequest{V: ProtoVersion, Worker: "w1"}, &first)
		if first.Status == StatusLease {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("w1 never got the lease")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The lease expires and w2 inherits the work.
	var second LeaseResponse
	for deadline := time.Now().Add(5 * time.Second); ; {
		postJSON(t, srv.URL+"/v1/lease", LeaseRequest{V: ProtoVersion, Worker: "w2"}, &second)
		if second.Status == StatusLease {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease never re-granted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if second.ID != first.ID || second.Key != key {
		t.Fatalf("re-grant is a different item: %+v vs %+v", second, first)
	}

	// w1's heartbeat after the re-grant is told to abandon.
	var hb HeartbeatResponse
	postJSON(t, srv.URL+"/v1/heartbeat", HeartbeatRequest{V: ProtoVersion, Worker: "w1", ID: first.ID}, &hb)
	if !hb.Abandon {
		t.Fatal("expired holder's heartbeat not told to abandon")
	}

	art := testArtifact("MG")
	var comp CompleteResponse
	postJSON(t, srv.URL+"/v1/complete",
		CompleteRequest{V: ProtoVersion, Worker: "w2", ID: second.ID, Key: key, Artifact: marshalArtifact(t, art)}, &comp)
	if comp.Duplicate {
		t.Fatal("w2's completion reported duplicate")
	}
	if err := <-resCh; err != nil {
		t.Fatalf("sweep failed despite failover: %v", err)
	}

	m := coord.Metrics()
	if m.LeaseExpiries.Load() < 1 || m.Requeues.Load() < 1 || m.WorkersLost.Load() != 1 {
		t.Fatalf("metrics: expiries=%d requeues=%d lost=%d",
			m.LeaseExpiries.Load(), m.Requeues.Load(), m.WorkersLost.Load())
	}
	var sawLost, sawExpired bool
	for _, ev := range ob.Events.Recent() {
		switch ev.Name {
		case "dist.worker.lost":
			sawLost = true
		case "dist.lease.expired":
			sawExpired = true
		}
	}
	if !sawLost || !sawExpired {
		t.Fatalf("flight recorder missing events: lost=%t expired=%t", sawLost, sawExpired)
	}
}

// TestHeartbeatKeepsLeaseAlive: a slow worker that heartbeats holds its
// lease well past the lease duration.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{Lease: 80 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	spec, key := testSpec("FFT"), testKey(2)
	resCh := make(chan error, 1)
	go func() {
		_, err := coord.Execute(context.Background(), spec, key)
		resCh <- err
	}()

	var lease LeaseResponse
	for deadline := time.Now().Add(5 * time.Second); ; {
		postJSON(t, srv.URL+"/v1/lease", LeaseRequest{V: ProtoVersion, Worker: "w1"}, &lease)
		if lease.Status == StatusLease {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease granted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Hold for 4 lease durations, heartbeating at a third of the lease.
	for i := 0; i < 12; i++ {
		time.Sleep(25 * time.Millisecond)
		var hb HeartbeatResponse
		postJSON(t, srv.URL+"/v1/heartbeat", HeartbeatRequest{V: ProtoVersion, Worker: "w1", ID: lease.ID}, &hb)
		if hb.Abandon {
			t.Fatalf("heartbeating lease abandoned on tick %d", i)
		}
	}
	if n := coord.Metrics().LeaseExpiries.Load(); n != 0 {
		t.Fatalf("%d lease expiries despite heartbeats", n)
	}

	var comp CompleteResponse
	postJSON(t, srv.URL+"/v1/complete",
		CompleteRequest{V: ProtoVersion, Worker: "w1", ID: lease.ID, Key: key, Artifact: marshalArtifact(t, testArtifact("FFT"))}, &comp)
	if comp.Duplicate {
		t.Fatal("completion after long heartbeat run reported duplicate")
	}
	if err := <-resCh; err != nil {
		t.Fatal(err)
	}
}

// TestVersionMismatchIsPermanent: protocol skew is rejected with a
// *ProtocolError the resilience taxonomy calls permanent, and the client
// does not retry it.
func TestVersionMismatchIsPermanent(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		coord.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := newClient(resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond}, time.Second)
	var lease LeaseResponse
	err := c.post(context.Background(), srv.URL+"/v1/lease", LeaseRequest{V: ProtoVersion + 7, Worker: "w1"}, &lease)
	if err == nil {
		t.Fatal("mismatched version accepted")
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *ProtocolError: %v", err)
	}
	if resilience.Classify(err) != resilience.Permanent {
		t.Fatalf("version mismatch classified transient: %v", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("permanent rejection was retried: %d requests", n)
	}
}

// TestClientRetriesTransient: 5xx answers and refused connections are
// retried on the deterministic backoff schedule.
func TestClientRetriesTransient(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "coordinator mid-restart", http.StatusInternalServerError)
			return
		}
		writeJSON(w, LeaseResponse{Status: StatusWait})
	}))
	defer srv.Close()

	c := newClient(resilience.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}, time.Second)
	var lease LeaseResponse
	if err := c.post(context.Background(), srv.URL+"/v1/lease", LeaseRequest{V: ProtoVersion, Worker: "w1"}, &lease); err != nil {
		t.Fatalf("transient 5xx not survived: %v", err)
	}
	if lease.Status != StatusWait {
		t.Fatalf("status %q", lease.Status)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("%d requests, want 3 (two 5xx then success)", n)
	}
}

// fakeRunner scripts worker-side execution per spec name.
type fakeRunner struct {
	mu sync.Mutex
	fn func(ctx context.Context, spec pipeline.RunSpec) (*pipeline.Artifact, error)
	// runs counts invocations per spec name.
	runs map[string]int
}

func (f *fakeRunner) RunContext(ctx context.Context, spec pipeline.RunSpec) (*pipeline.Artifact, error) {
	f.mu.Lock()
	if f.runs == nil {
		f.runs = map[string]int{}
	}
	f.runs[spec.App]++
	f.mu.Unlock()
	return f.fn(ctx, spec)
}

// TestWorkerPollServesSweep: a worker polls, executes every spec through
// its runner, delivers, and exits cleanly when the coordinator finishes.
func TestWorkerPollServesSweep(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{Lease: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	runner := &fakeRunner{fn: func(ctx context.Context, spec pipeline.RunSpec) (*pipeline.Artifact, error) {
		return testArtifact(spec.App), nil
	}}
	w, err := NewWorker(WorkerOptions{
		Name: "w1", Runner: runner, PollInterval: 5 * time.Millisecond,
		Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	pollErr := make(chan error, 1)
	go func() { pollErr <- w.Poll(ctx, srv.URL) }()

	names := []string{"IS", "MG", "FFT"}
	arts := make([]*pipeline.Artifact, len(names))
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			art, err := coord.Execute(context.Background(), testSpec(name), testKey(10+i))
			mu.Lock()
			arts[i] = art
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(i, name)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	for i, name := range names {
		if arts[i] == nil || arts[i].C.Name != name {
			t.Fatalf("spec %s: wrong artifact %+v", name, arts[i])
		}
	}
	coord.Finish()
	select {
	case err := <-pollErr:
		if err != nil {
			t.Fatalf("poll ended with: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit after finish")
	}
	if n := coord.Metrics().Completions.Load(); n != int64(len(names)) {
		t.Fatalf("completions = %d", n)
	}
}

// TestChaosCrashedWorkerFailsOver is the in-process kill test: worker 1
// hangs mid-run and its process "dies" (its context is cut, like a
// SIGKILL); the lease expires, worker 2 inherits the spec, and the sweep
// completes with the loss visible in metrics and the flight recorder.
func TestChaosCrashedWorkerFailsOver(t *testing.T) {
	ob := obs.NewObserver(nil)
	coord := NewCoordinator(CoordinatorOptions{Lease: 60 * time.Millisecond, Obs: ob})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Worker 1 wedges on its first spec and never returns until killed.
	w1Ctx, killW1 := context.WithCancel(ctx)
	defer killW1()
	hung := make(chan struct{}, 1)
	r1 := &fakeRunner{fn: func(ctx context.Context, spec pipeline.RunSpec) (*pipeline.Artifact, error) {
		hung <- struct{}{}
		<-ctx.Done() // wedged until the "kill"
		return nil, ctx.Err()
	}}
	w1, err := NewWorker(WorkerOptions{Name: "w1", Runner: r1, PollInterval: 5 * time.Millisecond,
		Retry: resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	go w1.Poll(w1Ctx, srv.URL)

	resCh := make(chan error, 1)
	go func() {
		_, err := coord.Execute(context.Background(), testSpec("IS"), testKey(20))
		resCh <- err
	}()

	// Wait until w1 holds the lease and is wedged, then kill it.
	select {
	case <-hung:
	case <-time.After(5 * time.Second):
		t.Fatal("w1 never started the spec")
	}
	killW1()

	// Worker 2 joins and inherits the expired lease.
	r2 := &fakeRunner{fn: func(ctx context.Context, spec pipeline.RunSpec) (*pipeline.Artifact, error) {
		return testArtifact(spec.App), nil
	}}
	w2, err := NewWorker(WorkerOptions{Name: "w2", Runner: r2, PollInterval: 5 * time.Millisecond,
		Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	go w2.Poll(ctx, srv.URL)

	select {
	case err := <-resCh:
		if err != nil {
			t.Fatalf("sweep failed despite failover: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("failover never completed the spec")
	}
	m := coord.Metrics()
	if m.LeaseExpiries.Load() < 1 || m.WorkersLost.Load() < 1 {
		t.Fatalf("metrics: expiries=%d lost=%d", m.LeaseExpiries.Load(), m.WorkersLost.Load())
	}
	var sawLost bool
	for _, ev := range ob.Events.Recent() {
		if ev.Name == "dist.worker.lost" && ev.Fields["worker"] == "w1" {
			sawLost = true
		}
	}
	if !sawLost {
		t.Fatal("dist.worker.lost event not recorded")
	}
	coord.Finish()
}

// TestWorkerReportsPermanentFailure: a permanent worker-side failure
// fails the spec for the sweep (no endless requeue), carrying the
// worker's error text.
func TestWorkerReportsPermanentFailure(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{Lease: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	runner := &fakeRunner{fn: func(ctx context.Context, spec pipeline.RunSpec) (*pipeline.Artifact, error) {
		return nil, errors.New("simulation rejected the spec")
	}}
	w, err := NewWorker(WorkerOptions{Name: "w1", Runner: runner, PollInterval: 5 * time.Millisecond,
		Retry: resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	go w.Poll(ctx, srv.URL)

	_, execErr := coord.Execute(context.Background(), testSpec("CG"), testKey(30))
	if execErr == nil {
		t.Fatal("permanent worker failure did not fail the spec")
	}
	if got := execErr.Error(); !bytes.Contains([]byte(got), []byte("simulation rejected the spec")) {
		t.Fatalf("worker error text lost: %v", got)
	}
	if n := coord.Metrics().RemoteFailures.Load(); n != 1 {
		t.Fatalf("remote failures = %d", n)
	}
	coord.Finish()
}

// TestTransientWorkerFailureRequeues: a transient failure is retried on
// another lease grant rather than failing the sweep.
func TestTransientWorkerFailureRequeues(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{Lease: time.Second, MaxAttempts: 3})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var calls atomic.Int64
	runner := &fakeRunner{fn: func(ctx context.Context, spec pipeline.RunSpec) (*pipeline.Artifact, error) {
		if calls.Add(1) == 1 {
			return nil, resilience.MarkTransient(errors.New("cache flake"))
		}
		return testArtifact(spec.App), nil
	}}
	w, err := NewWorker(WorkerOptions{Name: "w1", Runner: runner, PollInterval: 5 * time.Millisecond,
		Retry: resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	go w.Poll(ctx, srv.URL)

	art, execErr := coord.Execute(context.Background(), testSpec("LU"), testKey(40))
	if execErr != nil {
		t.Fatalf("transient failure was not retried: %v", execErr)
	}
	if art == nil || art.C.Name != "LU" {
		t.Fatalf("artifact = %+v", art)
	}
	if calls.Load() != 2 {
		t.Fatalf("runner called %d times, want 2", calls.Load())
	}
	if coord.Metrics().Requeues.Load() != 1 {
		t.Fatalf("requeues = %d", coord.Metrics().Requeues.Load())
	}
	coord.Finish()
}

// TestEngineRemoteMatchesLocal runs one real spec both locally and
// through a coordinator/worker pair wired into a real engine, and
// requires the wire-serialized artifacts to be byte-identical — the
// distributed determinism invariant at its smallest.
func TestEngineRemoteMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	spec := pipeline.RunSpec{App: "IS", Procs: 4, Scale: apps.ScaleSmall}

	local, err := pipeline.New(pipeline.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(CoordinatorOptions{Lease: 5 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	workerEngine, err := pipeline.New(pipeline.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerOptions{Name: "w1", Runner: workerEngine, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	go w.Poll(ctx, srv.URL)

	front, err := pipeline.New(pipeline.Options{Parallel: 1, Remote: coord})
	if err != nil {
		t.Fatal(err)
	}
	got, err := front.RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	coord.Finish()

	if got.Source != pipeline.SourceRemote {
		t.Fatalf("source = %q, want remote", got.Source)
	}
	wantWire := marshalArtifact(t, want)
	gotWire := marshalArtifact(t, got)
	if !bytes.Equal(wantWire, gotWire) {
		t.Fatalf("remote artifact differs from local: %d vs %d bytes", len(gotWire), len(wantWire))
	}
	if !reflect.DeepEqual(got.C, want.C) {
		t.Fatal("characterizations differ between remote and local")
	}
}
