package mesh

import "fmt"

// hypercube is the binary d-cube with e-cube (dimension-order) routing:
// port d flips address bit d. E-cube resolves bits lowest-first, which
// orders channel use by dimension and keeps single-lane wormhole routing
// deadlock-free.
type hypercube struct {
	dimensions int
}

func (t *hypercube) Name() string          { return fmt.Sprintf("hypercube%dd", t.dimensions) }
func (t *hypercube) Nodes() int            { return 1 << t.dimensions }
func (t *hypercube) Endpoints() int        { return 1 << t.dimensions }
func (t *hypercube) Degree(node int) int   { return t.dimensions }
func (t *hypercube) MinVirtualChannels() int { return 1 }

func (t *hypercube) Neighbor(node, port int) int { return node ^ (1 << port) }

func (t *hypercube) Route(src, dst int) []Step {
	var path []Step
	cur := src
	for d := 0; d < t.dimensions; d++ {
		if (cur^dst)&(1<<d) != 0 {
			path = append(path, Step{Port: d, Lane: LaneAny})
			cur ^= 1 << d
		}
	}
	return path
}
