package mesh

import (
	"testing"
	"testing/quick"

	"commchar/internal/sim"
)

func westFirstConfig(w, h int) Config {
	cfg := DefaultConfig(w, h)
	cfg.Routing = RoutingWestFirst
	return cfg
}

func TestWestFirstValidation(t *testing.T) {
	if err := westFirstConfig(4, 4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := westFirstConfig(4, 4)
	bad.Topology = TorusTopology
	bad.VirtualChannels = 2
	if bad.Validate() == nil {
		t.Fatal("west-first on torus accepted")
	}
}

func TestWestFirstPathsAreMinimal(t *testing.T) {
	s := sim.New()
	cfg := westFirstConfig(4, 4)
	n := New(s, cfg)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			src, dst := src, dst
			n.Inject(Message{
				ID: int64(src*16 + dst + 1), Src: src, Dst: dst, Bytes: 8,
				Inject: sim.Time((src*16 + dst) * 2000), // spaced out: no contention
			}, func(d Delivery) {
				if d.Hops != manhattan(cfg, src, dst) {
					t.Errorf("%d->%d took %d hops, minimal %d", src, dst, d.Hops, manhattan(cfg, src, dst))
				}
			})
		}
	}
	s.Run()
}

func TestWestFirstConservationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		s := sim.New()
		n := New(s, westFirstConfig(4, 4))
		st := sim.NewStream(seed)
		const total = 400
		for i := 0; i < total; i++ {
			n.Inject(Message{
				ID: int64(i + 1), Src: st.IntN(16), Dst: st.IntN(16),
				Bytes: 1 + st.IntN(256), Inject: sim.Time(st.IntN(4000)),
			}, nil)
		}
		s.Run()
		return n.Delivered() == total && n.InFlight() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWestFirstDeadlockFreedomUnderSaturation(t *testing.T) {
	s := sim.New()
	n := New(s, westFirstConfig(4, 4))
	id := int64(0)
	// Saturating adversarial pattern including the cyclic shifts that
	// break non-turn-model adaptive routers.
	for round := 0; round < 60; round++ {
		for src := 0; src < 16; src++ {
			id++
			n.Inject(Message{
				ID: id, Src: src, Dst: (src + 5) % 16,
				Bytes: 512, Inject: sim.Time(round * 20),
			}, nil)
		}
	}
	s.Run()
	if n.InFlight() != 0 {
		t.Fatalf("%d messages stuck", n.InFlight())
	}
}

func TestWestFirstSpreadsLoadOffHotColumn(t *testing.T) {
	// Many concurrent east-bound messages with vertical freedom: the
	// adaptive router must reduce blocking versus deterministic XY.
	run := func(routing RoutingAlgorithm) sim.Duration {
		s := sim.New()
		cfg := DefaultConfig(4, 4)
		cfg.Routing = routing
		n := New(s, cfg)
		id := int64(0)
		for round := 0; round < 40; round++ {
			// Column 0 sources all target the far corner region.
			for y := 0; y < 4; y++ {
				id++
				n.Inject(Message{
					ID: id, Src: cfg.NodeAt(0, y), Dst: cfg.NodeAt(3, (y+2)%4),
					Bytes: 256, Inject: sim.Time(round * 100),
				}, nil)
			}
		}
		s.Run()
		var blocked sim.Duration
		for _, d := range n.Log() {
			blocked += d.Blocked
		}
		return blocked
	}
	xy := run(RoutingDimensionOrder)
	wf := run(RoutingWestFirst)
	if wf > xy {
		t.Fatalf("west-first blocked %d, XY blocked %d: adaptivity made it worse", wf, xy)
	}
}
