package mesh

import (
	"fmt"
	"strings"

	"commchar/internal/sim"
)

// LinkFault is the fault state of one directed physical link at one
// instant, as reported by an Injector.
type LinkFault struct {
	// Down marks the link unusable right now. A worm that needs it is
	// killed and the message retransmitted from the source after backoff
	// (transient outage), or rerouted around it (permanent failure).
	Down bool
	// Permanent marks a Down link as never recovering, which makes the
	// network reroute deterministically around it instead of retrying.
	Permanent bool
	// SlowFactor >= 2 multiplies the per-hop flit time on a degraded link.
	// 0 and 1 both mean full speed.
	SlowFactor int
}

// Injector is the fault-injection hook consulted by the network on every
// hop and delivery. Implementations must be deterministic functions of
// their arguments (plus any fixed seed) so that equal-seed runs produce
// byte-identical delivery logs. internal/fault provides the standard
// schedule-driven implementation.
type Injector interface {
	// LinkFault reports the state of link from->to at time now.
	LinkFault(from, to int, now sim.Time) LinkFault
	// Drop reports whether this traversal (message, retransmission
	// attempt, hop index) is lost in transit.
	Drop(msgID int64, attempt, hop, from, to int, now sim.Time) bool
	// Corrupt reports whether this attempt arrives length-corrupted at
	// the destination, forcing a retransmission.
	Corrupt(msgID int64, attempt int, now sim.Time) bool
}

// FaultFlags records, per delivery, which fault classes the message
// encountered on its way through the fabric, so characterization can
// separate faulted from clean traffic.
type FaultFlags int

const (
	// FaultDropped: at least one traversal was dropped in transit.
	FaultDropped FaultFlags = 1 << iota
	// FaultCorrupted: an attempt arrived length-corrupted and was
	// retransmitted.
	FaultCorrupted
	// FaultLinkDown: the worm met a transiently-down link and retried.
	FaultLinkDown
	// FaultSlowed: the worm crossed at least one degraded link.
	FaultSlowed
	// FaultRerouted: the path was recomputed around a permanent failure.
	FaultRerouted
	// FaultPartitioned: no route to the destination existed; the message
	// failed with ErrPartitioned.
	FaultPartitioned
)

func (f FaultFlags) String() string {
	if f == 0 {
		return "clean"
	}
	var parts []string
	for _, fl := range []struct {
		bit  FaultFlags
		name string
	}{
		{FaultDropped, "dropped"},
		{FaultCorrupted, "corrupted"},
		{FaultLinkDown, "linkdown"},
		{FaultSlowed, "slowed"},
		{FaultRerouted, "rerouted"},
		{FaultPartitioned, "partitioned"},
	} {
		if f&fl.bit != 0 {
			parts = append(parts, fl.name)
		}
	}
	return strings.Join(parts, "|")
}

// DeliveryStatus distinguishes messages that reached their destination
// from messages the network gave up on.
type DeliveryStatus int

const (
	// StatusDelivered: the tail flit reached the destination.
	StatusDelivered DeliveryStatus = iota
	// StatusFailed: retransmissions were exhausted or the destination was
	// unreachable; End is the give-up time.
	StatusFailed
)

// ErrPartitioned is the structured error recorded when a message cannot
// reach its destination because permanent link failures disconnected the
// fabric between them.
type ErrPartitioned struct {
	MsgID    int64
	Src, Dst int
	At       int // node where the worm ran out of routes
	Time     sim.Time
}

func (e *ErrPartitioned) Error() string {
	return fmt.Sprintf("mesh: message %d (%d->%d) partitioned at node %d, t=%d",
		e.MsgID, e.Src, e.Dst, e.At, e.Time)
}

// ErrExhausted is the structured error recorded when a message used up its
// retransmission budget without being delivered.
type ErrExhausted struct {
	MsgID    int64
	Src, Dst int
	Retries  int
	Time     sim.Time
}

func (e *ErrExhausted) Error() string {
	return fmt.Sprintf("mesh: message %d (%d->%d) dropped after %d retransmissions, t=%d",
		e.MsgID, e.Src, e.Dst, e.Retries, e.Time)
}

// ErrCancelled is the structured error recorded when a worm gave up
// because the run's context was cancelled: the message was abandoned by
// the shutdown, not lost to a fault.
type ErrCancelled struct {
	MsgID    int64
	Src, Dst int
	Retries  int
	Time     sim.Time
}

func (e *ErrCancelled) Error() string {
	return fmt.Sprintf("mesh: message %d (%d->%d) abandoned by cancellation after %d retransmissions, t=%d",
		e.MsgID, e.Src, e.Dst, e.Retries, e.Time)
}
