// Package mesh implements the common network substrate of the paper: a
// wormhole-routed fabric with deterministic routing, per-link FCFS
// arbitration, optional virtual channels, and a complete network log. The
// wiring and routing live behind the Topology interface — 2-D mesh (the
// paper's machine), k-ary n-cube torus, binary hypercube, k-ary n-tree fat
// tree, and dragonfly — while the wormhole engine in Network is shared.
//
// Both workload acquisition strategies (execution-driven shared memory and
// trace-driven message passing) inject their messages here, exactly as in
// the paper, so that the characterization is performed on one common
// interconnect. The simulator records, for every message, its source,
// destination, length, injection time, network latency, and time lost to
// contention, plus per-link utilization.
package mesh

import (
	"fmt"

	"commchar/internal/sim"
)

// Kind selects the fabric family built by Config.Fabric.
type Kind int

const (
	// MeshTopology is the paper's 2-D mesh: no wraparound links. With
	// Dims set it generalizes to an n-dimensional mesh.
	MeshTopology Kind = iota
	// TorusTopology adds wraparound links in every dimension (a k-ary
	// n-cube; the QCDSP machine is the 4-D member). Dimension-order
	// routing on a torus requires VirtualChannels >= 2 to stay deadlock-
	// free; the constructor enforces that.
	TorusTopology
	// HypercubeTopology is a binary d-cube with e-cube (dimension-order)
	// routing, the other wormhole fabric prominent in the paper's era
	// (cf. [4], [23]). Set Config.Dimensions; Width/Height are ignored.
	HypercubeTopology
	// FatTreeTopology is the k-ary n-tree indirect fabric: processors at
	// the leaves, n levels of switches, deterministic up/down routing.
	// Set Config.FatTreeArity and Config.FatTreeLevels.
	FatTreeTopology
	// DragonflyTopology is the balanced two-tier direct fabric: groups of
	// DragonflyRouters routers joined by a complete graph, one endpoint
	// per router, DragonflyGlobals global links per router. Requires
	// VirtualChannels >= 2.
	DragonflyTopology
)

func (t Kind) String() string {
	switch t {
	case MeshTopology:
		return "mesh"
	case TorusTopology:
		return "torus"
	case HypercubeTopology:
		return "hypercube"
	case FatTreeTopology:
		return "fattree"
	case DragonflyTopology:
		return "dragonfly"
	default:
		return fmt.Sprintf("Kind(%d)", int(t))
	}
}

// Config describes the network. The zero value is not usable; call
// DefaultConfig and adjust.
// RoutingAlgorithm selects how the head flit picks its path.
type RoutingAlgorithm int

const (
	// RoutingDimensionOrder is the deterministic routing native to each
	// topology: XY on a grid, e-cube on a hypercube, up/down on a fat
	// tree, minimal on a dragonfly. The paper's configuration.
	RoutingDimensionOrder RoutingAlgorithm = iota
	// RoutingWestFirst is the minimal adaptive turn-model router for 2-D
	// meshes: all westward hops are taken first, after which the head
	// adaptively picks the least-loaded productive direction. Deadlock-
	// free by the turn-model argument; 2-D mesh topology only.
	RoutingWestFirst
)

func (r RoutingAlgorithm) String() string {
	switch r {
	case RoutingDimensionOrder:
		return "dimension-order"
	case RoutingWestFirst:
		return "west-first"
	default:
		return fmt.Sprintf("RoutingAlgorithm(%d)", int(r))
	}
}

type Config struct {
	Width, Height int   // routers per dimension (2-D grid topologies)
	Topology      Kind  // mesh (default), torus, hypercube, fattree, or dragonfly
	Dims          []int // grid sizes per dimension (mesh/torus); overrides Width/Height when set
	Dimensions    int   // cube dimensions (hypercube topology only)
	Routing       RoutingAlgorithm

	// FatTreeArity (k) and FatTreeLevels (n) size a k-ary n-tree: k^n
	// processors under n switch levels. Fat-tree topology only.
	FatTreeArity  int
	FatTreeLevels int

	// DragonflyRouters (a) and DragonflyGlobals (h) size a balanced
	// dragonfly: a*h+1 groups of a routers, one processor per router.
	// Dragonfly topology only.
	DragonflyRouters int
	DragonflyGlobals int

	FlitBytes   int          // bytes carried per flit
	HeaderFlits int          // flits of routing/header overhead per message
	CycleTime   sim.Duration // time for one flit to cross one link
	RouterDelay int          // extra cycles of routing decision per hop

	// VirtualChannels is the number of lanes multiplexed on each physical
	// link. 1 models plain wormhole (the paper's configuration). Values
	// above 1 reduce head-of-line blocking; each lane is modeled with full
	// link bandwidth, which is optimistic but preserves the qualitative
	// contention-reduction effect studied in [20].
	VirtualChannels int

	// LocalDelay is the latency charged to a message whose source and
	// destination coincide (it never enters the fabric).
	LocalDelay sim.Duration

	// MaxRetries bounds the retransmissions of a message whose worm is
	// killed by an injected fault (drop, transient outage, corruption).
	// Only consulted when a fault injector is installed.
	MaxRetries int
	// RetryBase is the first retransmission backoff; attempt k waits
	// RetryBase << k, capped at RetryCap (capped exponential backoff, in
	// simulated time).
	RetryBase sim.Duration
	// RetryCap bounds the exponential backoff. 0 means uncapped.
	RetryCap sim.Duration
}

// DefaultConfig returns the configuration used throughout the reproduction:
// a 40 MHz wormhole mesh with 8-byte flits and single-cycle routers.
func DefaultConfig(width, height int) Config {
	return Config{
		Width:           width,
		Height:          height,
		Topology:        MeshTopology,
		FlitBytes:       8,
		HeaderFlits:     1,
		CycleTime:       25 * sim.Nanosecond, // 40 MHz
		RouterDelay:     1,
		VirtualChannels: 1,
		LocalDelay:      25 * sim.Nanosecond,
		MaxRetries:      8,
		RetryBase:       200 * sim.Nanosecond,
		RetryCap:        10 * sim.Microsecond,
	}
}

// HypercubeConfig returns the standard configuration for a binary d-cube.
func HypercubeConfig(dimensions int) Config {
	cfg := DefaultConfig(1, 1)
	cfg.Topology = HypercubeTopology
	cfg.Dimensions = dimensions
	return cfg
}

// KAryConfig returns the standard configuration for an n-dimensional grid
// with the given per-dimension sizes: a mesh, or with wraparound a torus
// (which gets the two dateline virtual channels it needs).
func KAryConfig(kind Kind, dims ...int) Config {
	cfg := DefaultConfig(1, 1)
	cfg.Width, cfg.Height = 0, 0
	cfg.Topology = kind
	cfg.Dims = append([]int(nil), dims...)
	if len(dims) == 2 {
		cfg.Width, cfg.Height = dims[0], dims[1]
	}
	if kind == TorusTopology {
		cfg.VirtualChannels = 2
	}
	return cfg
}

// FatTreeConfig returns the standard configuration for a k-ary n-tree.
func FatTreeConfig(arity, levels int) Config {
	cfg := DefaultConfig(1, 1)
	cfg.Topology = FatTreeTopology
	cfg.FatTreeArity = arity
	cfg.FatTreeLevels = levels
	return cfg
}

// DragonflyConfig returns the standard configuration for a balanced
// dragonfly with a routers per group and h global links per router,
// including the two virtual channels its routing needs.
func DragonflyConfig(routers, globals int) Config {
	cfg := DefaultConfig(1, 1)
	cfg.Topology = DragonflyTopology
	cfg.DragonflyRouters = routers
	cfg.DragonflyGlobals = globals
	cfg.VirtualChannels = 2
	return cfg
}

// gridDims returns the per-dimension sizes of a grid fabric.
func (c Config) gridDims() []int {
	if len(c.Dims) > 0 {
		return c.Dims
	}
	return []int{c.Width, c.Height}
}

// Fabric builds the Topology described by the configuration. It panics on
// an invalid configuration; call Validate first.
func (c Config) Fabric() Topology {
	switch c.Topology {
	case HypercubeTopology:
		return &hypercube{dimensions: c.Dimensions}
	case FatTreeTopology:
		return newFatTree(c.FatTreeArity, c.FatTreeLevels)
	case DragonflyTopology:
		return newDragonfly(c.DragonflyRouters, c.DragonflyGlobals)
	default:
		return newKAryCube(c.gridDims(), c.Topology == TorusTopology)
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch c.Topology {
	case HypercubeTopology:
		if c.Dimensions < 1 || c.Dimensions > 20 {
			return fmt.Errorf("mesh: hypercube dimensions %d invalid", c.Dimensions)
		}
	case FatTreeTopology:
		if c.FatTreeArity < 2 || c.FatTreeLevels < 1 {
			return fmt.Errorf("mesh: fat tree k=%d n=%d invalid (need arity >= 2, levels >= 1)",
				c.FatTreeArity, c.FatTreeLevels)
		}
		if c.Nodes() > 1<<20 {
			return fmt.Errorf("mesh: fat tree k=%d n=%d exceeds 2^20 endpoints", c.FatTreeArity, c.FatTreeLevels)
		}
	case DragonflyTopology:
		if c.DragonflyRouters < 2 || c.DragonflyGlobals < 1 {
			return fmt.Errorf("mesh: dragonfly a=%d h=%d invalid (need routers >= 2, globals >= 1)",
				c.DragonflyRouters, c.DragonflyGlobals)
		}
	case MeshTopology, TorusTopology:
		if len(c.Dims) > 0 {
			if len(c.Dims) > 8 {
				return fmt.Errorf("mesh: %d grid dimensions invalid (max 8)", len(c.Dims))
			}
			for _, k := range c.Dims {
				if k < 1 || (c.Topology == TorusTopology && k < 2) {
					return fmt.Errorf("mesh: grid dimension %d invalid for %s", k, c.Topology)
				}
			}
		} else if c.Width < 1 || c.Height < 1 {
			return fmt.Errorf("mesh: dimensions %dx%d invalid", c.Width, c.Height)
		}
	default:
		return fmt.Errorf("mesh: unknown topology %s", c.Topology)
	}
	switch {
	case c.FlitBytes < 1:
		return fmt.Errorf("mesh: flit size %d invalid", c.FlitBytes)
	case c.HeaderFlits < 0:
		return fmt.Errorf("mesh: header flits %d invalid", c.HeaderFlits)
	case c.CycleTime < 1:
		return fmt.Errorf("mesh: cycle time %d invalid", c.CycleTime)
	case c.RouterDelay < 0:
		return fmt.Errorf("mesh: router delay %d invalid", c.RouterDelay)
	case c.VirtualChannels < 1:
		return fmt.Errorf("mesh: virtual channels %d invalid", c.VirtualChannels)
	case c.MaxRetries < 0:
		return fmt.Errorf("mesh: max retries %d invalid", c.MaxRetries)
	case c.RetryBase < 0 || c.RetryCap < 0:
		return fmt.Errorf("mesh: negative retry backoff")
	case c.Topology == TorusTopology && c.VirtualChannels < 2:
		return fmt.Errorf("mesh: torus requires >= 2 virtual channels for deadlock freedom")
	case c.Topology == DragonflyTopology && c.VirtualChannels < 2:
		return fmt.Errorf("mesh: dragonfly requires >= 2 virtual channels for deadlock freedom")
	case c.Routing == RoutingWestFirst && (c.Topology != MeshTopology || len(c.gridDims()) != 2):
		return fmt.Errorf("mesh: west-first routing is defined for the 2-D mesh topology only")
	}
	return nil
}

// Nodes returns the number of attached processors (addressable endpoints).
// Indirect fabrics have additional internal switch nodes beyond these; see
// Topology.Nodes.
func (c Config) Nodes() int {
	switch c.Topology {
	case HypercubeTopology:
		return 1 << c.Dimensions
	case FatTreeTopology:
		n := 1
		for i := 0; i < c.FatTreeLevels; i++ {
			n *= c.FatTreeArity
		}
		return n
	case DragonflyTopology:
		return c.DragonflyRouters * (c.DragonflyRouters*c.DragonflyGlobals + 1)
	default:
		if len(c.Dims) > 0 {
			n := 1
			for _, k := range c.Dims {
				n *= k
			}
			return n
		}
		return c.Width * c.Height
	}
}

// Flits returns the number of flits a message of the given byte length
// occupies, including header flits.
func (c Config) Flits(bytes int) int {
	payload := (bytes + c.FlitBytes - 1) / c.FlitBytes
	if payload < 1 {
		payload = 1
	}
	return payload + c.HeaderFlits
}

// Coord converts a node index into (x, y) mesh coordinates (2-D grids).
func (c Config) Coord(node int) (x, y int) {
	return node % c.Width, node / c.Width
}

// NodeAt converts (x, y) mesh coordinates into a node index (2-D grids).
func (c Config) NodeAt(x, y int) int {
	return y*c.Width + x
}
