// Package mesh implements the common network substrate of the paper: a
// wormhole-routed 2-D mesh with dimension-order (XY) routing, per-link FCFS
// arbitration, optional virtual channels, and a complete network log.
//
// Both workload acquisition strategies (execution-driven shared memory and
// trace-driven message passing) inject their messages here, exactly as in
// the paper, so that the characterization is performed on one common
// interconnect. The simulator records, for every message, its source,
// destination, length, injection time, network latency, and time lost to
// contention, plus per-link utilization.
package mesh

import (
	"fmt"

	"commchar/internal/sim"
)

// Topology selects the wiring of the 2-D fabric.
type Topology int

const (
	// MeshTopology is the paper's 2-D mesh: no wraparound links.
	MeshTopology Topology = iota
	// TorusTopology adds wraparound links in both dimensions. XY routing
	// on a torus requires VirtualChannels >= 2 to stay deadlock-free; the
	// constructor enforces that.
	TorusTopology
	// HypercubeTopology is a binary d-cube with e-cube (dimension-order)
	// routing, the other wormhole fabric prominent in the paper's era
	// (cf. [4], [23]). Set Config.Dimensions; Width/Height are ignored.
	HypercubeTopology
)

func (t Topology) String() string {
	switch t {
	case MeshTopology:
		return "mesh"
	case TorusTopology:
		return "torus"
	case HypercubeTopology:
		return "hypercube"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Config describes the network. The zero value is not usable; call
// DefaultConfig and adjust.
// RoutingAlgorithm selects how the head flit picks its path.
type RoutingAlgorithm int

const (
	// RoutingDimensionOrder is deterministic XY (grid) or e-cube
	// (hypercube) routing: the paper's configuration.
	RoutingDimensionOrder RoutingAlgorithm = iota
	// RoutingWestFirst is the minimal adaptive turn-model router for
	// meshes: all westward hops are taken first, after which the head
	// adaptively picks the least-loaded productive direction. Deadlock-
	// free by the turn-model argument; mesh topology only.
	RoutingWestFirst
)

func (r RoutingAlgorithm) String() string {
	switch r {
	case RoutingDimensionOrder:
		return "dimension-order"
	case RoutingWestFirst:
		return "west-first"
	default:
		return fmt.Sprintf("RoutingAlgorithm(%d)", int(r))
	}
}

type Config struct {
	Width, Height int      // routers per dimension (grid topologies)
	Topology      Topology // mesh (default), torus, or hypercube
	Dimensions    int      // cube dimensions (hypercube topology only)
	Routing       RoutingAlgorithm

	FlitBytes   int          // bytes carried per flit
	HeaderFlits int          // flits of routing/header overhead per message
	CycleTime   sim.Duration // time for one flit to cross one link
	RouterDelay int          // extra cycles of routing decision per hop

	// VirtualChannels is the number of lanes multiplexed on each physical
	// link. 1 models plain wormhole (the paper's configuration). Values
	// above 1 reduce head-of-line blocking; each lane is modeled with full
	// link bandwidth, which is optimistic but preserves the qualitative
	// contention-reduction effect studied in [20].
	VirtualChannels int

	// LocalDelay is the latency charged to a message whose source and
	// destination coincide (it never enters the fabric).
	LocalDelay sim.Duration

	// MaxRetries bounds the retransmissions of a message whose worm is
	// killed by an injected fault (drop, transient outage, corruption).
	// Only consulted when a fault injector is installed.
	MaxRetries int
	// RetryBase is the first retransmission backoff; attempt k waits
	// RetryBase << k, capped at RetryCap (capped exponential backoff, in
	// simulated time).
	RetryBase sim.Duration
	// RetryCap bounds the exponential backoff. 0 means uncapped.
	RetryCap sim.Duration
}

// DefaultConfig returns the configuration used throughout the reproduction:
// a 40 MHz wormhole mesh with 8-byte flits and single-cycle routers.
func DefaultConfig(width, height int) Config {
	return Config{
		Width:           width,
		Height:          height,
		Topology:        MeshTopology,
		FlitBytes:       8,
		HeaderFlits:     1,
		CycleTime:       25 * sim.Nanosecond, // 40 MHz
		RouterDelay:     1,
		VirtualChannels: 1,
		LocalDelay:      25 * sim.Nanosecond,
		MaxRetries:      8,
		RetryBase:       200 * sim.Nanosecond,
		RetryCap:        10 * sim.Microsecond,
	}
}

// HypercubeConfig returns the standard configuration for a binary d-cube.
func HypercubeConfig(dimensions int) Config {
	cfg := DefaultConfig(1, 1)
	cfg.Topology = HypercubeTopology
	cfg.Dimensions = dimensions
	return cfg
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.Topology == HypercubeTopology {
		if c.Dimensions < 1 || c.Dimensions > 20 {
			return fmt.Errorf("mesh: hypercube dimensions %d invalid", c.Dimensions)
		}
	} else if c.Width < 1 || c.Height < 1 {
		return fmt.Errorf("mesh: dimensions %dx%d invalid", c.Width, c.Height)
	}
	switch {
	case c.FlitBytes < 1:
		return fmt.Errorf("mesh: flit size %d invalid", c.FlitBytes)
	case c.HeaderFlits < 0:
		return fmt.Errorf("mesh: header flits %d invalid", c.HeaderFlits)
	case c.CycleTime < 1:
		return fmt.Errorf("mesh: cycle time %d invalid", c.CycleTime)
	case c.RouterDelay < 0:
		return fmt.Errorf("mesh: router delay %d invalid", c.RouterDelay)
	case c.VirtualChannels < 1:
		return fmt.Errorf("mesh: virtual channels %d invalid", c.VirtualChannels)
	case c.MaxRetries < 0:
		return fmt.Errorf("mesh: max retries %d invalid", c.MaxRetries)
	case c.RetryBase < 0 || c.RetryCap < 0:
		return fmt.Errorf("mesh: negative retry backoff")
	case c.Topology == TorusTopology && c.VirtualChannels < 2:
		return fmt.Errorf("mesh: torus requires >= 2 virtual channels for deadlock freedom")
	case c.Routing == RoutingWestFirst && c.Topology != MeshTopology:
		return fmt.Errorf("mesh: west-first routing is defined for the mesh topology only")
	}
	return nil
}

// Nodes returns the number of routers (and attached processors).
func (c Config) Nodes() int {
	if c.Topology == HypercubeTopology {
		return 1 << c.Dimensions
	}
	return c.Width * c.Height
}

// Flits returns the number of flits a message of the given byte length
// occupies, including header flits.
func (c Config) Flits(bytes int) int {
	payload := (bytes + c.FlitBytes - 1) / c.FlitBytes
	if payload < 1 {
		payload = 1
	}
	return payload + c.HeaderFlits
}

// Coord converts a node index into (x, y) mesh coordinates.
func (c Config) Coord(node int) (x, y int) {
	return node % c.Width, node / c.Width
}

// NodeAt converts (x, y) mesh coordinates into a node index.
func (c Config) NodeAt(x, y int) int {
	return y*c.Width + x
}
