package mesh

import "fmt"

// fatTree is the k-ary n-tree: k^n endpoint leaves under n levels of
// k^(n-1) switches each, the indirect fabric of SP2-class machines. Leaves
// are nodes 0..k^n-1; the level-l switch w is node k^n + l*k^(n-1) + w.
//
// Wiring follows the standard digit construction: level-l switch w and
// level-(l+1) switch w' are connected iff their base-k digits agree at
// every index except l. Switch ports 0..k-1 go down (port j sets digit
// l-1, or selects leaf j at level 0), ports k..2k-1 go up (port k+j sets
// digit l). Routing is deterministic up/down: climb to the nearest common
// ancestor level choosing each up port from the destination's digits (so
// the whole path is a pure function of (src, dst)), then descend along
// the destination's digits. Up/down channel ordering is acyclic, so a
// single lane is deadlock-free.
type fatTree struct {
	arity  int // k
	levels int // n
	leaves int // k^n
	perLvl int // switches per level, k^(n-1)
}

func newFatTree(arity, levels int) *fatTree {
	t := &fatTree{arity: arity, levels: levels, leaves: 1, perLvl: 1}
	for i := 0; i < levels; i++ {
		t.leaves *= arity
	}
	for i := 0; i < levels-1; i++ {
		t.perLvl *= arity
	}
	return t
}

func (t *fatTree) Name() string   { return fmt.Sprintf("fattree%d:%d", t.arity, t.levels) }
func (t *fatTree) Endpoints() int { return t.leaves }
func (t *fatTree) Nodes() int     { return t.leaves + t.levels*t.perLvl }

func (t *fatTree) MinVirtualChannels() int { return 1 }

// digit returns base-k digit i of x.
func (t *fatTree) digit(x, i int) int {
	for ; i > 0; i-- {
		x /= t.arity
	}
	return x % t.arity
}

// setDigit returns x with base-k digit i replaced by v.
func (t *fatTree) setDigit(x, i, v int) int {
	p := 1
	for j := 0; j < i; j++ {
		p *= t.arity
	}
	return x + (v-t.digit(x, i))*p
}

// level returns the switch level of node (-1 for a leaf) and its index
// within the level.
func (t *fatTree) level(node int) (l, w int) {
	if node < t.leaves {
		return -1, node
	}
	s := node - t.leaves
	return s / t.perLvl, s % t.perLvl
}

func (t *fatTree) switchID(l, w int) int { return t.leaves + l*t.perLvl + w }

func (t *fatTree) Degree(node int) int {
	l, _ := t.level(node)
	switch {
	case l < 0: // leaf: one up port to its level-0 switch
		return 1
	case l == t.levels-1: // top level: down ports only
		return t.arity
	default:
		return 2 * t.arity
	}
}

func (t *fatTree) Neighbor(node, port int) int {
	l, w := t.level(node)
	switch {
	case l < 0:
		return t.switchID(0, w/t.arity)
	case port < t.arity: // down
		if l == 0 {
			return w*t.arity + port
		}
		return t.switchID(l-1, t.setDigit(w, l-1, port))
	default: // up
		return t.switchID(l+1, t.setDigit(w, l, port-t.arity))
	}
}

func (t *fatTree) Route(src, dst int) []Step {
	// Nearest-common-ancestor level: the highest differing digit.
	nca := 0
	for i := 0; i < t.levels; i++ {
		if t.digit(src, i) != t.digit(dst, i) {
			nca = i
		}
	}
	path := []Step{{Port: 0, Lane: LaneAny}} // leaf -> level-0 switch
	for l := 0; l < nca; l++ {
		path = append(path, Step{Port: t.arity + t.digit(dst, l+1), Lane: LaneAny})
	}
	for l := nca; l >= 0; l-- {
		path = append(path, Step{Port: t.digit(dst, l), Lane: LaneAny})
	}
	return path
}
