package mesh

import (
	"math/bits"
	"reflect"
	"testing"
)

// testFabrics returns one instance of every topology family, sized small
// enough that exhaustive all-pairs properties stay fast.
func testFabrics() map[string]Topology {
	return map[string]Topology{
		"mesh4x4":      newKAryCube([]int{4, 4}, false),
		"mesh2x3x2":    newKAryCube([]int{2, 3, 2}, false),
		"torus4x4":     newKAryCube([]int{4, 4}, true),
		"torus3x3x3":   newKAryCube([]int{3, 3, 3}, true),
		"torus2x2x2x2": newKAryCube([]int{2, 2, 2, 2}, true),
		"hypercube4d":  &hypercube{dimensions: 4},
		"fattree2:3":   newFatTree(2, 3),
		"fattree4:2":   newFatTree(4, 2),
		"dragonfly41":  newDragonfly(4, 1),
		"dragonfly42":  newDragonfly(4, 2),
	}
}

// walkRoute follows a route step by step through Neighbor and returns the
// terminal node, failing the test on an unwired port.
func walkRoute(t *testing.T, topo Topology, src int, path []Step) int {
	t.Helper()
	cur := src
	for i, s := range path {
		if s.Port < 0 || s.Port >= topo.Degree(cur) {
			t.Fatalf("%s: step %d of route from %d uses port %d of a degree-%d node",
				topo.Name(), i, src, s.Port, topo.Degree(cur))
		}
		next := topo.Neighbor(cur, s.Port)
		if next < 0 {
			t.Fatalf("%s: step %d of route from %d crosses unwired port %d of node %d",
				topo.Name(), i, src, s.Port, cur)
		}
		cur = next
	}
	return cur
}

// TestRouteDeterministicAndWellFormed: Route is a pure function of
// (src, dst), every step crosses a wired port, the path ends at dst, and
// every lane class fits inside MinVirtualChannels.
func TestRouteDeterministicAndWellFormed(t *testing.T) {
	for name, topo := range testFabrics() {
		t.Run(name, func(t *testing.T) {
			n := topo.Endpoints()
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					path := topo.Route(src, dst)
					if again := topo.Route(src, dst); !reflect.DeepEqual(path, again) {
						t.Fatalf("route %d->%d differs between calls", src, dst)
					}
					if len(path) == 0 {
						t.Fatalf("route %d->%d is empty", src, dst)
					}
					if end := walkRoute(t, topo, src, path); end != dst {
						t.Fatalf("route %d->%d ends at %d", src, dst, end)
					}
					for i, s := range path {
						if s.Lane != LaneAny && (s.Lane < 0 || s.Lane >= topo.MinVirtualChannels()) {
							t.Fatalf("route %d->%d step %d lane %d outside [0,%d)",
								src, dst, i, s.Lane, topo.MinVirtualChannels())
						}
					}
				}
			}
		})
	}
}

// bfsDistances returns the hop distance from src to every node over the
// Neighbor graph (switches included), -1 where unreachable.
func bfsDistances(topo Topology, src int) []int {
	dist := make([]int, topo.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for p := 0; p < topo.Degree(cur); p++ {
			next := topo.Neighbor(cur, p)
			if next >= 0 && dist[next] < 0 {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	return dist
}

// TestRouteMinimality: fabrics that claim minimal routing produce routes
// exactly as long as the BFS shortest path (mesh, torus, hypercube, fat
// tree — where up/down is provably a geodesic). The dragonfly's claim is
// minimal *direct* routing: at most local-global-local, three hops.
func TestRouteMinimality(t *testing.T) {
	for name, topo := range testFabrics() {
		t.Run(name, func(t *testing.T) {
			direct := false
			if _, ok := topo.(*dragonfly); ok {
				direct = true
			}
			n := topo.Endpoints()
			for src := 0; src < n; src++ {
				dist := bfsDistances(topo, src)
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					got := len(topo.Route(src, dst))
					if direct {
						if got > 3 {
							t.Fatalf("dragonfly route %d->%d takes %d hops, max 3", src, dst, got)
						}
						continue
					}
					if got != dist[dst] {
						t.Fatalf("route %d->%d takes %d hops, shortest path is %d", src, dst, got, dist[dst])
					}
				}
			}
		})
	}
}

// TestHypercubeRoutesAreHamming pins the hypercube's minimality to the
// closed form: path length equals the Hamming distance of the endpoints.
func TestHypercubeRoutesAreHamming(t *testing.T) {
	topo := &hypercube{dimensions: 5}
	for src := 0; src < topo.Endpoints(); src++ {
		for dst := 0; dst < topo.Endpoints(); dst++ {
			if src == dst {
				continue
			}
			want := bits.OnesCount(uint(src ^ dst))
			if got := len(topo.Route(src, dst)); got != want {
				t.Fatalf("route %d->%d takes %d hops, Hamming distance is %d", src, dst, got, want)
			}
		}
	}
}

// TestNeighborSymmetry: every wired port has a reverse port on the peer —
// the physical links of each fabric are bidirectional pairs.
func TestNeighborSymmetry(t *testing.T) {
	for name, topo := range testFabrics() {
		t.Run(name, func(t *testing.T) {
			for node := 0; node < topo.Nodes(); node++ {
				for p := 0; p < topo.Degree(node); p++ {
					peer := topo.Neighbor(node, p)
					if peer < 0 {
						continue
					}
					back := false
					for q := 0; q < topo.Degree(peer); q++ {
						if topo.Neighbor(peer, q) == node {
							back = true
							break
						}
					}
					if !back {
						t.Fatalf("link %d->%d (port %d) has no reverse port", node, peer, p)
					}
				}
			}
		})
	}
}

// chanID is a virtual channel of the dependency graph: a directed link
// plus the lane class a route acquires on it (LaneAny collapses to 0,
// which is exact for single-lane disciplines).
type chanID struct {
	from, to, lane int
}

// TestChannelDependencyAcyclic builds the channel-dependency graph over
// every endpoint-pair route of every fabric and rejects cycles: the
// Dally/Seitz condition for wormhole deadlock freedom, which each lane
// discipline (torus datelines, fat-tree up/down phases, dragonfly global
// hop increments) exists to guarantee.
func TestChannelDependencyAcyclic(t *testing.T) {
	for name, topo := range testFabrics() {
		t.Run(name, func(t *testing.T) {
			ids := map[chanID]int{}
			var order []chanID
			id := func(c chanID) int {
				if i, ok := ids[c]; ok {
					return i
				}
				i := len(order)
				ids[c] = i
				order = append(order, c)
				return i
			}
			adj := map[int][]int{}
			seen := map[[2]int]bool{}
			n := topo.Endpoints()
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					cur, prev := src, -1
					for _, s := range topo.Route(src, dst) {
						next := topo.Neighbor(cur, s.Port)
						lane := s.Lane
						if lane == LaneAny {
							lane = 0
						}
						c := id(chanID{from: cur, to: next, lane: lane})
						if prev >= 0 && !seen[[2]int{prev, c}] {
							seen[[2]int{prev, c}] = true
							adj[prev] = append(adj[prev], c)
						}
						prev, cur = c, next
					}
				}
			}
			// Iterative three-color DFS over channel ids in creation order.
			const (
				white = iota
				gray
				black
			)
			color := make([]int, len(order))
			for start := range order {
				if color[start] != white {
					continue
				}
				stack := []int{start}
				for len(stack) > 0 {
					v := stack[len(stack)-1]
					if color[v] == white {
						color[v] = gray
						for _, w := range adj[v] {
							switch color[w] {
							case gray:
								t.Fatalf("channel dependency cycle through %+v -> %+v",
									order[v], order[w])
							case white:
								stack = append(stack, w)
							}
						}
						continue
					}
					color[v] = black
					stack = stack[:len(stack)-1]
				}
			}
		})
	}
}

// TestFabricNamesStable pins the config strings: they appear in metrics
// labels, debug pages, and report rows, so renames are breaking changes.
func TestFabricNamesStable(t *testing.T) {
	want := map[string]string{
		"mesh4x4":      "mesh4x4",
		"torus3x3x3":   "torus3x3x3",
		"torus2x2x2x2": "torus2x2x2x2",
		"hypercube4d":  "hypercube4d",
		"fattree4:2":   "fattree4:2",
		"dragonfly41":  "dragonfly a4h1",
	}
	fabrics := testFabrics()
	for key, name := range want {
		if got := fabrics[key].Name(); got != name {
			t.Errorf("%s renders as %q, want %q", key, got, name)
		}
	}
}

// TestEndpointsArePrefix: endpoint ids precede switch ids, and the
// arithmetic endpoint counts of Config.Nodes agree with the fabric.
func TestEndpointsArePrefix(t *testing.T) {
	cfgs := map[string]Config{
		"mesh":      DefaultConfig(4, 4),
		"torus":     KAryConfig(TorusTopology, 3, 3, 3),
		"hypercube": HypercubeConfig(4),
		"fattree":   FatTreeConfig(4, 2),
		"dragonfly": DragonflyConfig(4, 1),
	}
	for name, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		topo := cfg.Fabric()
		if topo.Endpoints() != cfg.Nodes() {
			t.Errorf("%s: fabric has %d endpoints, config says %d", name, topo.Endpoints(), cfg.Nodes())
		}
		if topo.Endpoints() > topo.Nodes() {
			t.Errorf("%s: %d endpoints exceed %d nodes", name, topo.Endpoints(), topo.Nodes())
		}
	}
}
