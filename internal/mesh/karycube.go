package mesh

import (
	"fmt"
	"strings"
)

// karyCube is the k-ary n-cube family: an n-dimensional grid with (torus)
// or without (mesh) wraparound links, dimension-order routed. The paper's
// 2-D mesh and torus are the dims=[W,H] members; a 3-D or 4-D torus (the
// QCDSP machine) is the same code with more dimensions.
//
// Port numbering: port 2d is the +direction of dimension d, port 2d+1 the
// -direction. For dims=[W,H] this reproduces the historical east(0),
// west(1), north(2), south(3) order exactly, so link ids, routes, and
// therefore simulation outcomes for the 2-D fabrics are unchanged.
type karyCube struct {
	dims   []int
	wrap   bool  // torus when true, mesh when false
	stride []int // node id stride per dimension; stride[0] = 1
	nodes  int
}

// newKAryCube builds the fabric. Every dimension must be >= 1; wraparound
// on a 1-wide dimension is degenerate and rejected by Config.Validate.
func newKAryCube(dims []int, wrap bool) *karyCube {
	t := &karyCube{dims: append([]int(nil), dims...), wrap: wrap}
	t.stride = make([]int, len(dims))
	t.nodes = 1
	for d, k := range dims {
		t.stride[d] = t.nodes
		t.nodes *= k
	}
	return t
}

func (t *karyCube) Name() string {
	var b strings.Builder
	if t.wrap {
		b.WriteString("torus")
	} else {
		b.WriteString("mesh")
	}
	for d, k := range t.dims {
		if d > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", k)
	}
	return b.String()
}

func (t *karyCube) Nodes() int     { return t.nodes }
func (t *karyCube) Endpoints() int { return t.nodes }

func (t *karyCube) Degree(node int) int { return 2 * len(t.dims) }

// coord extracts the coordinate of node along dimension d.
func (t *karyCube) coord(node, d int) int { return node / t.stride[d] % t.dims[d] }

func (t *karyCube) Neighbor(node, port int) int {
	d := port / 2
	c := t.coord(node, d)
	nc := c + 1
	if port%2 == 1 {
		nc = c - 1
	}
	if nc < 0 || nc >= t.dims[d] {
		if !t.wrap {
			return -1
		}
		nc = (nc + t.dims[d]) % t.dims[d]
	}
	return node + (nc-c)*t.stride[d]
}

func (t *karyCube) MinVirtualChannels() int {
	if t.wrap {
		return 2 // dateline lane classes
	}
	return 1
}

// Route is dimension-order routing, lowest dimension first (XY on the 2-D
// members). On a torus each dimension independently picks the shorter way
// around (ties to the +direction) and switches from lane 0 to lane 1 after
// crossing that dimension's dateline, the classic deadlock-avoidance
// discipline; on a mesh any lane works.
func (t *karyCube) Route(src, dst int) []Step {
	var path []Step
	cur := src
	for d := range t.dims {
		c, target, size := t.coord(cur, d), t.coord(dst, d), t.dims[d]
		if c == target {
			continue
		}
		pos, dist := true, 0
		if t.wrap {
			fwd := (target - c + size) % size
			if fwd <= size-fwd {
				dist = fwd
			} else {
				pos, dist = false, size-fwd
			}
		} else if target > c {
			dist = target - c
		} else {
			pos, dist = false, c-target
		}
		port := 2 * d
		if !pos {
			port++
		}
		lane := 0
		if !t.wrap {
			lane = LaneAny
		}
		for i := 0; i < dist; i++ {
			path = append(path, Step{Port: port, Lane: lane})
			next := t.Neighbor(cur, port)
			nc := t.coord(next, d)
			// Crossing the dateline (a wraparound hop) switches the
			// virtual-channel class on a torus.
			if t.wrap && ((pos && nc < c) || (!pos && nc > c)) {
				lane = 1
			}
			cur, c = next, nc
		}
	}
	return path
}

// AdaptiveNext implements minimal west-first adaptive routing for the 2-D
// mesh member: all westward hops are mandatory; afterwards the productive
// directions (east, then north/south) are candidates and the engine picks
// the least loaded. Config.Validate restricts west-first to 2-D meshes.
func (t *karyCube) AdaptiveNext(cur, dst int) []int {
	cx, cy := t.coord(cur, 0), t.coord(cur, 1)
	dx, dy := t.coord(dst, 0), t.coord(dst, 1)
	if dx < cx {
		return []int{int(dirWest)}
	}
	var candidates []int
	if dx > cx {
		candidates = append(candidates, int(dirEast))
	}
	if dy > cy {
		candidates = append(candidates, int(dirNorth))
	} else if dy < cy {
		candidates = append(candidates, int(dirSouth))
	}
	return candidates
}
