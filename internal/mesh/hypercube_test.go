package mesh

import (
	"math/bits"
	"testing"
	"testing/quick"

	"commchar/internal/sim"
)

func TestHypercubeConfig(t *testing.T) {
	cfg := HypercubeConfig(4)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes() != 16 {
		t.Fatalf("nodes = %d", cfg.Nodes())
	}
	if HypercubeConfig(0).Validate() == nil {
		t.Fatal("0-cube accepted")
	}
	if HypercubeConfig(25).Validate() == nil {
		t.Fatal("25-cube accepted")
	}
}

func TestHypercubeHopsAreHammingDistance(t *testing.T) {
	s := sim.New()
	n := New(s, HypercubeConfig(4))
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			want := bits.OnesCount(uint(src ^ dst))
			if got := n.Hops(src, dst); got != want {
				t.Fatalf("hops(%d,%d) = %d, want %d", src, dst, got, want)
			}
		}
	}
}

func TestHypercubeECubeOrder(t *testing.T) {
	// e-cube corrects bits from LSB to MSB; the route must be contiguous
	// and flip one new dimension per hop, in ascending order.
	s := sim.New()
	n := New(s, HypercubeConfig(4))
	path := n.route(0b0101, 0b1010) // differs in all four bits
	if len(path) != 4 {
		t.Fatalf("path length %d", len(path))
	}
	cur := 0b0101
	lastDim := -1
	for _, h := range path {
		if h.link.from != cur {
			t.Fatal("route not contiguous")
		}
		dim := bits.TrailingZeros(uint(h.link.from ^ h.link.to))
		if dim <= lastDim {
			t.Fatalf("dimension order violated: %d after %d", dim, lastDim)
		}
		lastDim = dim
		cur = h.link.to
	}
	if cur != 0b1010 {
		t.Fatalf("route ends at %b", cur)
	}
}

func TestHypercubeUncontendedLatency(t *testing.T) {
	s := sim.New()
	cfg := HypercubeConfig(3)
	n := New(s, cfg)
	var d Delivery
	n.Inject(Message{ID: 1, Src: 0, Dst: 7, Bytes: 8, Inject: 0}, func(x Delivery) { d = x })
	s.Run()
	hopTime := cfg.CycleTime * sim.Duration(1+cfg.RouterDelay)
	want := 3*hopTime + sim.Duration(cfg.Flits(8)-1)*cfg.CycleTime
	if d.Latency != want {
		t.Fatalf("latency = %d, want %d", d.Latency, want)
	}
}

func TestHypercubeConservationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		s := sim.New()
		n := New(s, HypercubeConfig(4))
		st := sim.NewStream(seed)
		const total = 300
		for i := 0; i < total; i++ {
			n.Inject(Message{
				ID: int64(i), Src: st.IntN(16), Dst: st.IntN(16),
				Bytes: 1 + st.IntN(256), Inject: sim.Time(st.IntN(5000)),
			}, nil)
		}
		s.Run()
		return n.Delivered() == total && n.InFlight() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHypercubeDeadlockFreedomUnderLoad(t *testing.T) {
	s := sim.New()
	n := New(s, HypercubeConfig(4))
	id := int64(0)
	// Adversarial: every node sends long messages to its complement.
	for round := 0; round < 30; round++ {
		for src := 0; src < 16; src++ {
			id++
			n.Inject(Message{ID: id, Src: src, Dst: src ^ 15, Bytes: 512, Inject: sim.Time(round * 50)}, nil)
		}
	}
	s.Run()
	if n.InFlight() != 0 {
		t.Fatalf("%d messages stuck", n.InFlight())
	}
}

func TestHypercubeLinkCount(t *testing.T) {
	s := sim.New()
	n := New(s, HypercubeConfig(4))
	n.Inject(Message{ID: 1, Src: 0, Dst: 15, Bytes: 8, Inject: 0}, nil)
	s.Run()
	// d·2^d directed links: 4·16 = 64.
	if got := len(n.LinkStats()); got != 64 {
		t.Fatalf("links = %d, want 64", got)
	}
}

func TestHypercubeMeanHopAdvantage(t *testing.T) {
	// For 16 nodes, a 4-cube has lower mean distance than a 4x4 mesh:
	// the topology comparison the ablations rely on.
	s1 := sim.New()
	cube := New(s1, HypercubeConfig(4))
	s2 := sim.New()
	grid := New(s2, DefaultConfig(4, 4))
	var cubeSum, gridSum int
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			cubeSum += cube.Hops(src, dst)
			gridSum += grid.Hops(src, dst)
		}
	}
	if cubeSum >= gridSum {
		t.Fatalf("hypercube mean distance %d not below mesh %d", cubeSum, gridSum)
	}
}
