package mesh

import (
	"fmt"
	"testing"
	"testing/quick"

	"commchar/internal/sim"
)

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func manhattan(cfg Config, src, dst int) int {
	x1, y1 := cfg.Coord(src)
	x2, y2 := cfg.Coord(dst)
	return abs(x1-x2) + abs(y1-y2)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4, 4).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(0, 4)
	if bad.Validate() == nil {
		t.Fatal("zero-width config accepted")
	}
	torus := DefaultConfig(4, 4)
	torus.Topology = TorusTopology
	if torus.Validate() == nil {
		t.Fatal("torus with one VC accepted")
	}
	torus.VirtualChannels = 2
	if err := torus.Validate(); err != nil {
		t.Fatalf("torus with 2 VCs rejected: %v", err)
	}
}

func TestFlitCount(t *testing.T) {
	cfg := DefaultConfig(4, 4) // 8-byte flits, 1 header flit
	cases := []struct{ bytes, want int }{
		{1, 2}, {8, 2}, {9, 3}, {32, 5}, {40, 6},
	}
	for _, c := range cases {
		if got := cfg.Flits(c.bytes); got != c.want {
			t.Errorf("Flits(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestRouteIsXYAndMinimal(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(4, 4)
	n := New(s, cfg)
	for src := 0; src < cfg.Nodes(); src++ {
		for dst := 0; dst < cfg.Nodes(); dst++ {
			if src == dst {
				if n.Hops(src, dst) != 0 {
					t.Fatalf("Hops(%d,%d) != 0", src, dst)
				}
				continue
			}
			path := n.route(src, dst)
			if len(path) != manhattan(cfg, src, dst) {
				t.Fatalf("route %d->%d has %d hops, want %d", src, dst, len(path), manhattan(cfg, src, dst))
			}
			// XY discipline: once a Y move happens, no more X moves.
			seenY := false
			cur := src
			for _, h := range path {
				if h.link.from != cur {
					t.Fatalf("route %d->%d not contiguous", src, dst)
				}
				cx, _ := cfg.Coord(h.link.from)
				nx, _ := cfg.Coord(h.link.to)
				if cx != nx {
					if seenY {
						t.Fatalf("route %d->%d moves X after Y", src, dst)
					}
				} else {
					seenY = true
				}
				cur = h.link.to
			}
			if cur != dst {
				t.Fatalf("route %d->%d ends at %d", src, dst, cur)
			}
		}
	}
}

func TestRouteCacheReusesPath(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(4, 4)
	n := New(s, cfg)
	first := n.route(0, 15)
	second := n.route(0, 15)
	if len(first) == 0 || len(second) != len(first) {
		t.Fatalf("cached route differs: %d vs %d hops", len(second), len(first))
	}
	if &first[0] != &second[0] {
		t.Error("route(0,15) recomputed instead of returning the cached path")
	}
	// The cache must not leak into the public accessors' results.
	p1 := n.Path(0, 15)
	p2 := n.Path(0, 15)
	if &p1[0] == &p2[0] {
		t.Error("Path returns the cached backing array; callers could corrupt it")
	}
	if n.Hops(0, 15) != manhattan(cfg, 0, 15) {
		t.Errorf("Hops(0,15) = %d, want %d", n.Hops(0, 15), manhattan(cfg, 0, 15))
	}
}

func TestMsgNameMatchesSprintf(t *testing.T) {
	for _, id := range []int64{0, 1, 7, 42, 1 << 40, -1, -9000} {
		if got, want := msgName(id), fmt.Sprintf("msg%d", id); got != want {
			t.Errorf("msgName(%d) = %q, want %q", id, got, want)
		}
	}
}

func TestUncontendedLatency(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(4, 4)
	n := New(s, cfg)
	var got Delivery
	m := Message{ID: 1, Src: 0, Dst: 15, Bytes: 8, Inject: 0}
	n.Inject(m, func(d Delivery) { got = d })
	s.Run()
	hops := manhattan(cfg, 0, 15) // 6
	flits := cfg.Flits(8)         // 2
	hopTime := cfg.CycleTime * sim.Duration(1+cfg.RouterDelay)
	want := sim.Duration(hops)*hopTime + sim.Duration(flits-1)*cfg.CycleTime
	if got.Latency != want {
		t.Fatalf("latency = %d, want %d", got.Latency, want)
	}
	if got.Blocked != 0 {
		t.Fatalf("blocked = %d, want 0 on idle network", got.Blocked)
	}
	if got.Hops != hops {
		t.Fatalf("hops = %d, want %d", got.Hops, hops)
	}
}

func TestLocalDelivery(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(2, 2)
	n := New(s, cfg)
	var got Delivery
	n.Inject(Message{ID: 1, Src: 3, Dst: 3, Bytes: 100, Inject: 10}, func(d Delivery) { got = d })
	s.Run()
	if got.Latency != cfg.LocalDelay {
		t.Fatalf("local latency = %d, want %d", got.Latency, cfg.LocalDelay)
	}
	if got.Hops != 0 {
		t.Fatalf("local hops = %d", got.Hops)
	}
}

func TestContentionSerializes(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(4, 1) // a line: 0-1-2-3
	n := New(s, cfg)
	var a, b Delivery
	// Two long messages over the same path, injected simultaneously.
	n.Inject(Message{ID: 1, Src: 0, Dst: 3, Bytes: 256, Inject: 0}, func(d Delivery) { a = d })
	n.Inject(Message{ID: 2, Src: 0, Dst: 3, Bytes: 256, Inject: 0}, func(d Delivery) { b = d })
	s.Run()
	if a.Blocked != 0 {
		t.Fatalf("first message blocked %d", a.Blocked)
	}
	if b.Blocked == 0 {
		t.Fatal("second message saw no contention")
	}
	if b.End <= a.End {
		t.Fatalf("second message finished at %d, first at %d", b.End, a.End)
	}
	if b.Latency <= a.Latency {
		t.Fatal("contended message not slower")
	}
}

func TestVirtualChannelsReduceBlocking(t *testing.T) {
	run := func(vcs int) sim.Duration {
		s := sim.New()
		cfg := DefaultConfig(4, 1)
		cfg.VirtualChannels = vcs
		n := New(s, cfg)
		// A long message 0->3 and a short one 1->2 that shares link 1->2.
		var short Delivery
		n.Inject(Message{ID: 1, Src: 0, Dst: 3, Bytes: 1024, Inject: 0}, nil)
		n.Inject(Message{ID: 2, Src: 1, Dst: 2, Bytes: 8, Inject: 100}, func(d Delivery) { short = d })
		s.Run()
		return short.Blocked
	}
	b1 := run(1)
	b4 := run(4)
	if b1 == 0 {
		t.Fatal("expected blocking with one VC")
	}
	if b4 >= b1 {
		t.Fatalf("4 VCs blocked %d, 1 VC blocked %d: VCs did not help", b4, b1)
	}
}

func TestTorusWraparound(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(4, 4)
	cfg.Topology = TorusTopology
	cfg.VirtualChannels = 2
	n := New(s, cfg)
	// 0 -> 3 on a 4-wide torus: one wrap hop west instead of 3 east.
	if h := n.Hops(0, 3); h != 1 {
		t.Fatalf("torus hops 0->3 = %d, want 1", h)
	}
	// Corner to corner: 2 hops via wraparound.
	if h := n.Hops(0, 15); h != 2 {
		t.Fatalf("torus hops 0->15 = %d, want 2", h)
	}
	var d Delivery
	n.Inject(Message{ID: 1, Src: 0, Dst: 15, Bytes: 8, Inject: 0}, func(x Delivery) { d = x })
	s.Run()
	if d.Hops != 2 {
		t.Fatalf("delivered hops = %d", d.Hops)
	}
}

func TestConservationProperty(t *testing.T) {
	prop := func(seed uint64, count uint8) bool {
		s := sim.New()
		cfg := DefaultConfig(4, 4)
		n := New(s, cfg)
		st := sim.NewStream(seed)
		total := int(count)%200 + 1
		for i := 0; i < total; i++ {
			m := Message{
				ID:     int64(i),
				Src:    st.IntN(cfg.Nodes()),
				Dst:    st.IntN(cfg.Nodes()),
				Bytes:  1 + st.IntN(256),
				Inject: sim.Time(st.IntN(10000)),
			}
			n.Inject(m, nil)
		}
		s.Run()
		return n.Delivered() == int64(total) && n.InFlight() == 0 && len(n.Log()) == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyAtLeastUncontendedProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		s := sim.New()
		cfg := DefaultConfig(4, 4)
		n := New(s, cfg)
		st := sim.NewStream(seed)
		type expect struct {
			hops  int
			flits int
		}
		expects := map[int64]expect{}
		for i := 0; i < 100; i++ {
			m := Message{
				ID:     int64(i),
				Src:    st.IntN(cfg.Nodes()),
				Dst:    st.IntN(cfg.Nodes()),
				Bytes:  1 + st.IntN(128),
				Inject: sim.Time(st.IntN(2000)),
			}
			expects[m.ID] = expect{hops: manhattan(cfg, m.Src, m.Dst), flits: cfg.Flits(m.Bytes)}
			n.Inject(m, nil)
		}
		s.Run()
		hopTime := cfg.CycleTime * sim.Duration(1+cfg.RouterDelay)
		for _, d := range n.Log() {
			e := expects[d.Message.ID]
			var min sim.Duration
			if d.Src == d.Dst {
				min = cfg.LocalDelay
			} else {
				min = sim.Duration(e.hops)*hopTime + sim.Duration(e.flits-1)*cfg.CycleTime
			}
			if d.Latency < min {
				return false
			}
			if d.Latency != min && d.Blocked == 0 {
				return false // slower than physics with no recorded contention
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockFreedomUnderLoad(t *testing.T) {
	// Saturate a small mesh with long messages in adversarial (cyclic)
	// patterns; everything must still drain.
	s := sim.New()
	cfg := DefaultConfig(3, 3)
	n := New(s, cfg)
	id := int64(0)
	for round := 0; round < 50; round++ {
		for src := 0; src < cfg.Nodes(); src++ {
			dst := (src + 1 + round%(cfg.Nodes()-1)) % cfg.Nodes()
			id++
			n.Inject(Message{ID: id, Src: src, Dst: dst, Bytes: 512, Inject: sim.Time(round * 10)}, nil)
		}
	}
	s.Run()
	if n.InFlight() != 0 {
		t.Fatalf("%d messages stuck in flight", n.InFlight())
	}
	if n.Delivered() != id {
		t.Fatalf("delivered %d of %d", n.Delivered(), id)
	}
}

func TestTorusDeadlockFreedomUnderLoad(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(4, 4)
	cfg.Topology = TorusTopology
	cfg.VirtualChannels = 2
	n := New(s, cfg)
	id := int64(0)
	st := sim.NewStream(99)
	for i := 0; i < 600; i++ {
		id++
		n.Inject(Message{
			ID: id, Src: st.IntN(16), Dst: st.IntN(16),
			Bytes: 64 + st.IntN(512), Inject: sim.Time(st.IntN(5000)),
		}, nil)
	}
	s.Run()
	if n.InFlight() != 0 {
		t.Fatalf("%d messages stuck on torus", n.InFlight())
	}
}

func TestLinkStatsBounded(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(4, 4)
	n := New(s, cfg)
	st := sim.NewStream(5)
	for i := 0; i < 300; i++ {
		n.Inject(Message{
			ID: int64(i), Src: st.IntN(16), Dst: st.IntN(16),
			Bytes: 1 + st.IntN(128), Inject: sim.Time(st.IntN(3000)),
		}, nil)
	}
	s.Run()
	stats := n.LinkStats()
	// 4x4 mesh: 2*(3*4)*2 = 48 directed links.
	if len(stats) != 48 {
		t.Fatalf("got %d links, want 48", len(stats))
	}
	for _, ls := range stats {
		if ls.Utilization < 0 || ls.Utilization > 1 {
			t.Fatalf("link %d->%d utilization %v out of range", ls.From, ls.To, ls.Utilization)
		}
	}
	if n.MeanUtilization() <= 0 {
		t.Fatal("mean utilization should be positive after traffic")
	}
}

func TestLogSortedByInjection(t *testing.T) {
	s := sim.New()
	n := New(s, DefaultConfig(4, 4))
	n.Inject(Message{ID: 1, Src: 0, Dst: 15, Bytes: 64, Inject: 100}, nil)
	n.Inject(Message{ID: 2, Src: 1, Dst: 2, Bytes: 8, Inject: 0}, nil)
	s.Run()
	log := n.Log()
	if log[0].Message.ID != 2 || log[1].Message.ID != 1 {
		t.Fatalf("log not injection-ordered: %+v", log)
	}
}

func TestWhenIdle(t *testing.T) {
	s := sim.New()
	n := New(s, DefaultConfig(2, 2))
	calls := 0
	n.WhenIdle(func() { calls++ }) // idle now: immediate
	if calls != 1 {
		t.Fatal("immediate idle callback not invoked")
	}
	n.Inject(Message{ID: 1, Src: 0, Dst: 3, Bytes: 8, Inject: 0}, nil)
	n.WhenIdle(func() { calls++ })
	s.Run()
	if calls != 2 {
		t.Fatalf("idle callbacks = %d, want 2", calls)
	}
}

func TestInjectValidation(t *testing.T) {
	s := sim.New()
	n := New(s, DefaultConfig(2, 2))
	for _, m := range []Message{
		{ID: 1, Src: -1, Dst: 0, Bytes: 8},
		{ID: 2, Src: 0, Dst: 99, Bytes: 8},
		{ID: 3, Src: 0, Dst: 1, Bytes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("message %+v accepted", m)
				}
			}()
			n.Inject(m, nil)
		}()
	}
}
