package mesh

import (
	"fmt"
	"sort"

	"commchar/internal/sim"
)

// Message is the unit of network traffic: the paper's
// (source, destination, length, injection time) record.
type Message struct {
	ID    int64
	Src   int
	Dst   int
	Bytes int
	// Inject is the absolute time the message is handed to the source's
	// network interface. It must not precede the simulator's current time.
	Inject sim.Time
}

// Delivery is the network log record produced for every message, from which
// all three communication attributes are characterized.
type Delivery struct {
	Message
	End     sim.Time     // tail flit delivered at the destination
	Latency sim.Duration // End - Inject
	Blocked sim.Duration // time the head spent waiting on busy channels
	Hops    int          // physical links traversed
}

// hop is one step of a precomputed route: which link, and on which lane
// class (torus dateline discipline) the worm must travel.
type hop struct {
	link *link
	lane int
}

// Network is the wormhole-routed fabric (2-D mesh, torus, or hypercube).
type Network struct {
	sim    *sim.Simulator
	cfg    Config
	links  [][]*link // indexed [node][port]; grid ports are directions, cube ports are dimensions
	nextID int64

	log       []Delivery
	inFlight  int
	onIdle    []func()
	delivered int64
}

// New builds the network on the given simulator. It panics on an invalid
// configuration: network construction errors are programming errors in this
// codebase, not runtime conditions.
func New(s *sim.Simulator, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{sim: s, cfg: cfg}
	n.links = make([][]*link, cfg.Nodes())
	id := 0
	mkLink := func(from, to int) *link {
		l := &link{
			id:    id,
			from:  from,
			to:    to,
			lanes: make([]laneState, cfg.VirtualChannels),
		}
		id++
		return l
	}
	if cfg.Topology == HypercubeTopology {
		for node := 0; node < cfg.Nodes(); node++ {
			ports := make([]*link, cfg.Dimensions)
			for d := 0; d < cfg.Dimensions; d++ {
				ports[d] = mkLink(node, node^(1<<d))
			}
			n.links[node] = ports
		}
		return n
	}
	for node := 0; node < cfg.Nodes(); node++ {
		x, y := cfg.Coord(node)
		ports := make([]*link, numDirections)
		mk := func(dir direction, nx, ny int) {
			if nx < 0 || nx >= cfg.Width || ny < 0 || ny >= cfg.Height {
				if cfg.Topology != TorusTopology {
					return
				}
				nx = (nx + cfg.Width) % cfg.Width
				ny = (ny + cfg.Height) % cfg.Height
			}
			ports[dir] = mkLink(node, cfg.NodeAt(nx, ny))
		}
		mk(dirEast, x+1, y)
		mk(dirWest, x-1, y)
		mk(dirNorth, x, y+1)
		mk(dirSouth, x, y-1)
		n.links[node] = ports
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// NextID allocates a fresh message ID. Callers may also assign their own.
func (n *Network) NextID() int64 {
	n.nextID++
	return n.nextID
}

// route computes the dimension-order path from src to dst: XY on a grid
// (with dateline virtual-channel classes on a torus), e-cube on a
// hypercube.
func (n *Network) route(src, dst int) []hop {
	cfg := n.cfg
	if cfg.Topology == HypercubeTopology {
		var path []hop
		cur := src
		for d := 0; d < cfg.Dimensions; d++ {
			if (cur^dst)&(1<<d) != 0 {
				path = append(path, hop{link: n.links[cur][d], lane: anyLane})
				cur ^= 1 << d
			}
		}
		return path
	}
	x, y := cfg.Coord(src)
	dx, dy := cfg.Coord(dst)
	var path []hop

	step := func(cur, target, size int, pos, neg direction) (int, direction, bool) {
		if cur == target {
			return 0, pos, false
		}
		if cfg.Topology == TorusTopology {
			fwd := (target - cur + size) % size
			if fwd <= size-fwd && fwd != 0 {
				return fwd, pos, true
			}
			return size - fwd, neg, true
		}
		if target > cur {
			return target - cur, pos, true
		}
		return cur - target, neg, true
	}

	walk := func(fromX, fromY int, horizontal bool) (int, int) {
		cx, cy := fromX, fromY
		var dist int
		var dir direction
		var move bool
		if horizontal {
			dist, dir, move = step(cx, dx, cfg.Width, dirEast, dirWest)
		} else {
			dist, dir, move = step(cy, dy, cfg.Height, dirNorth, dirSouth)
		}
		if !move {
			return cx, cy
		}
		lane := 0
		if cfg.Topology == MeshTopology {
			lane = anyLane
		}
		for i := 0; i < dist; i++ {
			node := cfg.NodeAt(cx, cy)
			l := n.links[node][dir]
			if l == nil {
				panic(fmt.Sprintf("mesh: no %d link at node %d", dir, node))
			}
			path = append(path, hop{link: l, lane: lane})
			nx, ny := cfg.Coord(l.to)
			// Crossing the dateline (a wraparound hop) switches the
			// virtual-channel class on a torus.
			if cfg.Topology == TorusTopology {
				if (dir == dirEast && nx < cx) || (dir == dirWest && nx > cx) ||
					(dir == dirNorth && ny < cy) || (dir == dirSouth && ny > cy) {
					lane = 1
				}
			}
			cx, cy = nx, ny
		}
		return cx, cy
	}

	cx, cy := walk(x, y, true) // X first
	cx, cy = walk(cx, cy, false)
	if cfg.NodeAt(cx, cy) != dst {
		panic(fmt.Sprintf("mesh: route %d->%d ended at %d", src, dst, cfg.NodeAt(cx, cy)))
	}
	return path
}

// Hops returns the XY route length in physical links between two nodes.
func (n *Network) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return len(n.route(src, dst))
}

// Path returns the dimension-order route between two nodes as (from, to)
// link endpoints, for analytical models that need per-link flow rates.
func (n *Network) Path(src, dst int) [][2]int {
	if src == dst {
		return nil
	}
	path := n.route(src, dst)
	out := make([][2]int, len(path))
	for i, h := range path {
		out[i] = [2]int{h.link.from, h.link.to}
	}
	return out
}

// Inject hands a message to the network. done, if non-nil, is invoked (in
// kernel context) when the tail flit reaches the destination. Inject may be
// called before the simulator runs or at any point during the run, as long
// as m.Inject is not in the simulated past.
func (n *Network) Inject(m Message, done func(Delivery)) {
	if m.Src < 0 || m.Src >= n.cfg.Nodes() || m.Dst < 0 || m.Dst >= n.cfg.Nodes() {
		panic(fmt.Sprintf("mesh: message %d has endpoints %d->%d outside %d-node fabric",
			m.ID, m.Src, m.Dst, n.cfg.Nodes()))
	}
	if m.Bytes <= 0 {
		panic(fmt.Sprintf("mesh: message %d has length %d", m.ID, m.Bytes))
	}
	if m.Inject < n.sim.Now() {
		panic(fmt.Sprintf("mesh: message %d injected at %d, before now %d", m.ID, m.Inject, n.sim.Now()))
	}
	n.inFlight++
	n.sim.SpawnAt(m.Inject, fmt.Sprintf("msg%d", m.ID), func(p *sim.Process) {
		n.deliver(p, m, done)
	})
}

// deliver is the wormhole worm: the process that walks the message's head
// across the fabric, holding the channels the worm occupies and releasing
// each channel once the tail has passed it. The head's next hop comes from
// the configured router: a precomputed dimension-order path, or per-hop
// west-first adaptive selection.
func (n *Network) deliver(p *sim.Process, m Message, done func(Delivery)) {
	cfg := n.cfg
	if m.Src == m.Dst {
		p.Hold(cfg.LocalDelay)
		n.complete(m, 0, 0, done)
		return
	}

	var nextHop func(cur int) hop
	if cfg.Routing == RoutingWestFirst {
		nextHop = func(cur int) hop {
			return hop{link: n.chooseWestFirst(cur, m.Dst), lane: anyLane}
		}
	} else {
		path := n.route(m.Src, m.Dst)
		i := 0
		nextHop = func(int) hop {
			h := path[i]
			i++
			return h
		}
	}

	flits := cfg.Flits(m.Bytes)
	hopTime := cfg.CycleTime * sim.Duration(1+cfg.RouterDelay)
	var blocked sim.Duration

	var acquired []hop // hops taken, in order
	var held []int     // lane per acquired hop; -1 after release
	cur := m.Src
	for cur != m.Dst {
		h := nextHop(cur)
		lane, waited := h.link.acquire(p, h.lane, p.Now)
		blocked += waited
		acquired = append(acquired, h)
		held = append(held, lane)
		p.Hold(hopTime) // head crosses the link
		h.link.flits += int64(flits)
		// With single-flit buffers the tail crosses link i when the head
		// has crossed link i+flits-1; free that channel for other worms.
		if back := len(acquired) - 1 - (flits - 1); back >= 0 {
			acquired[back].link.release(held[back], p.Now())
			held[back] = -1
		}
		cur = h.link.to
	}
	// Head is at the destination; the remaining flits stream in one per
	// cycle, and trailing channels drain in pipeline order.
	drain := sim.Duration(flits-1) * cfg.CycleTime
	end := p.Now() + sim.Time(drain)
	for i, lane := range held {
		if lane < 0 {
			continue
		}
		tailPass := end - sim.Time(len(acquired)-1-i)*sim.Time(cfg.CycleTime)
		if tailPass < p.Now() {
			tailPass = p.Now()
		}
		li, la := acquired[i].link, lane
		n.sim.At(tailPass, func() { li.release(la, n.sim.Now()) })
	}
	p.Hold(drain)
	n.complete(m, blocked, len(acquired), done)
}

// chooseWestFirst returns the next link under minimal west-first adaptive
// routing: mandatory westward hops first, then the least-loaded productive
// direction among east/north/south.
func (n *Network) chooseWestFirst(cur, dst int) *link {
	cfg := n.cfg
	cx, cy := cfg.Coord(cur)
	dx, dy := cfg.Coord(dst)
	ports := n.links[cur]
	if dx < cx {
		return ports[dirWest]
	}
	var candidates []*link
	if dx > cx {
		candidates = append(candidates, ports[dirEast])
	}
	if dy > cy {
		candidates = append(candidates, ports[dirNorth])
	} else if dy < cy {
		candidates = append(candidates, ports[dirSouth])
	}
	best := candidates[0]
	for _, l := range candidates[1:] {
		if l.load() < best.load() {
			best = l
		}
	}
	return best
}

func (n *Network) complete(m Message, blocked sim.Duration, hops int, done func(Delivery)) {
	d := Delivery{
		Message: m,
		End:     n.sim.Now(),
		Latency: sim.Duration(n.sim.Now() - m.Inject),
		Blocked: blocked,
		Hops:    hops,
	}
	n.log = append(n.log, d)
	n.delivered++
	n.inFlight--
	if done != nil {
		done(d)
	}
	if n.inFlight == 0 {
		cbs := n.onIdle
		n.onIdle = nil
		for _, cb := range cbs {
			cb()
		}
	}
}

// InFlight reports the number of injected but undelivered messages.
func (n *Network) InFlight() int { return n.inFlight }

// Delivered reports the number of completed messages.
func (n *Network) Delivered() int64 { return n.delivered }

// WhenIdle registers a callback invoked when the last in-flight message
// completes. If the network is already idle the callback runs immediately.
func (n *Network) WhenIdle(fn func()) {
	if n.inFlight == 0 {
		fn()
		return
	}
	n.onIdle = append(n.onIdle, fn)
}

// Log returns the deliveries recorded so far, sorted by injection time
// (ties broken by message ID). The returned slice is a copy.
func (n *Network) Log() []Delivery {
	out := make([]Delivery, len(n.log))
	copy(out, n.log)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Inject != out[j].Inject {
			return out[i].Inject < out[j].Inject
		}
		return out[i].Message.ID < out[j].Message.ID
	})
	return out
}

// LinkStats returns utilization records for every physical link, ordered by
// (from, to). Elapsed time is the simulator's current clock.
func (n *Network) LinkStats() []LinkStat {
	elapsed := n.sim.Now()
	var out []LinkStat
	for _, ports := range n.links {
		for _, l := range ports {
			if l == nil {
				continue
			}
			busy := l.busyLaneTime
			for _, lane := range l.lanes {
				if lane.busy {
					busy += sim.Duration(elapsed - lane.busySince)
				}
			}
			u := 0.0
			if elapsed > 0 {
				u = float64(busy) / (float64(elapsed) * float64(len(l.lanes)))
			}
			out = append(out, LinkStat{From: l.from, To: l.to, Grants: l.grants, Flits: l.flits, Utilization: u})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// MeanUtilization returns the average utilization across all links.
func (n *Network) MeanUtilization() float64 {
	stats := n.LinkStats()
	if len(stats) == 0 {
		return 0
	}
	var sum float64
	for _, s := range stats {
		sum += s.Utilization
	}
	return sum / float64(len(stats))
}
