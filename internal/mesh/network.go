package mesh

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"commchar/internal/sim"
)

// Message is the unit of network traffic: the paper's
// (source, destination, length, injection time) record.
type Message struct {
	ID    int64
	Src   int
	Dst   int
	Bytes int
	// Inject is the absolute time the message is handed to the source's
	// network interface. It must not precede the simulator's current time.
	Inject sim.Time
}

// Delivery is the network log record produced for every message, from which
// all three communication attributes are characterized.
type Delivery struct {
	Message
	End     sim.Time     // tail flit delivered at the destination (or give-up time)
	Latency sim.Duration // End - Inject
	Blocked sim.Duration // time the head spent waiting on busy channels
	Hops    int          // physical links traversed

	// Fault bookkeeping (all zero on fault-free runs).
	Retries int            // retransmission attempts before success/failure
	Faults  FaultFlags     // fault classes encountered
	Status  DeliveryStatus // delivered, or failed (partitioned/exhausted)
}

// hop is one step of a precomputed route: which link, and on which lane
// class (torus dateline discipline) the worm must travel.
type hop struct {
	link *link
	lane int
}

// Network is the topology-agnostic wormhole engine: it owns the links,
// lane arbitration, fault handling, and the delivery log, and delegates
// wiring and path selection to the configured Topology.
type Network struct {
	sim    *sim.Simulator
	cfg    Config
	topo   Topology
	links  [][]*link // indexed [node][port], ports as numbered by the topology
	nextID int64

	log       []Delivery
	inFlight  int
	onIdle    []func()
	delivered int64

	faults   Injector          // nil on fault-free runs
	failures []error           // ErrPartitioned / ErrExhausted, in give-up order
	pending  map[int64]Message // injected but not yet completed, for diagnostics

	// routeCache memoizes the fault-free path per (src, dst): the fabric
	// is immutable after New, so each pair is materialized exactly once
	// and the steady-state routing step stays allocation-free. Fault
	// detours (routeAvoiding) are time-dependent and never cached.
	routeCache map[[2]int][]hop
}

// New builds the network on the given simulator. It panics on an invalid
// configuration: network construction errors are programming errors in this
// codebase, not runtime conditions.
func New(s *sim.Simulator, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{sim: s, cfg: cfg, topo: cfg.Fabric(), pending: map[int64]Message{},
		routeCache: map[[2]int][]hop{}}
	s.AddDiagnostic("mesh", n.diagnostic)
	n.links = make([][]*link, n.topo.Nodes())
	id := 0
	for node := range n.links {
		ports := make([]*link, n.topo.Degree(node))
		for port := range ports {
			to := n.topo.Neighbor(node, port)
			if to < 0 {
				continue // unwired port (mesh boundary)
			}
			ports[port] = &link{
				id:    id,
				from:  node,
				to:    to,
				lanes: make([]laneState, cfg.VirtualChannels),
			}
			id++
		}
		n.links[node] = ports
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Topology returns the fabric the network was built on.
func (n *Network) Topology() Topology { return n.topo }

// SetFaults installs a fault injector consulted on every hop and delivery.
// Pass nil to disable injection. Must be set before the run starts.
func (n *Network) SetFaults(inj Injector) { n.faults = inj }

// Failures returns the structured errors (*ErrPartitioned, *ErrExhausted)
// for every message the network gave up on, in give-up order.
func (n *Network) Failures() []error {
	out := make([]error, len(n.failures))
	copy(out, n.failures)
	return out
}

// diagnostic dumps the network state for watchdog/deadlock reports:
// in-flight messages and occupied or contended links.
func (n *Network) diagnostic() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  in-flight: %d messages, delivered: %d, failed: %d",
		n.inFlight, n.delivered, len(n.failures))
	ids := make([]int64, 0, len(n.pending))
	for id := range n.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	const maxLines = 20
	for i, id := range ids {
		if i == maxLines {
			fmt.Fprintf(&b, "\n  ... %d more pending messages", len(ids)-maxLines)
			break
		}
		m := n.pending[id]
		fmt.Fprintf(&b, "\n  pending msg %d: %d->%d, %d bytes, injected t=%d", m.ID, m.Src, m.Dst, m.Bytes, m.Inject)
	}
	lines := 0
	for _, ports := range n.links {
		for _, l := range ports {
			if l == nil {
				continue
			}
			busy := 0
			for _, lane := range l.lanes {
				if lane.busy {
					busy++
				}
			}
			if busy == 0 && len(l.queue) == 0 {
				continue
			}
			if lines == maxLines {
				fmt.Fprintf(&b, "\n  ... more occupied links elided")
				return b.String()
			}
			lines++
			fmt.Fprintf(&b, "\n  link %d->%d: %d/%d lanes busy, %d queued", l.from, l.to, busy, len(l.lanes), len(l.queue))
		}
	}
	return b.String()
}

// NextID allocates a fresh message ID. Callers may also assign their own.
func (n *Network) NextID() int64 {
	n.nextID++
	return n.nextID
}

// route returns the topology's deterministic path from src to dst,
// memoized per (src, dst). It is the per-message routing step of the
// wormhole engine; everything it reaches must stay allocation-free in
// the steady state, which the cache provides: each pair's path is
// materialized once and returned by reference afterwards. Callers must
// treat the returned slice as read-only (attempt and Path already do —
// detours replace the slice, never elements).
//
//lint:hot
func (n *Network) route(src, dst int) []hop {
	key := [2]int{src, dst}
	if path, ok := n.routeCache[key]; ok {
		return path
	}
	path := n.computeRoute(src, dst)
	n.routeCache[key] = path
	return path
}

// computeRoute materializes the topology's deterministic path from src
// to dst: links to traverse, with the topology's lane discipline
// attached (torus datelines, fat-tree up/down, dragonfly minimal-path
// lane increment).
func (n *Network) computeRoute(src, dst int) []hop {
	steps := n.topo.Route(src, dst)
	//lint:allow hotpath each (src, dst) path is materialized once and cached by route; steady-state routing is allocation-free
	path := make([]hop, len(steps))
	cur := src
	for i, s := range steps {
		l := n.links[cur][s.Port]
		if l == nil {
			panic(fmt.Sprintf("mesh: no port %d link at node %d", s.Port, cur))
		}
		path[i] = hop{link: l, lane: s.Lane}
		cur = l.to
	}
	if cur != dst {
		panic(fmt.Sprintf("mesh: route %d->%d ended at %d", src, dst, cur))
	}
	return path
}

// Hops returns the deterministic route length in physical links between
// two endpoints.
func (n *Network) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return len(n.route(src, dst))
}

// Path returns the dimension-order route between two nodes as (from, to)
// link endpoints, for analytical models that need per-link flow rates.
func (n *Network) Path(src, dst int) [][2]int {
	if src == dst {
		return nil
	}
	path := n.route(src, dst)
	out := make([][2]int, len(path))
	for i, h := range path {
		out[i] = [2]int{h.link.from, h.link.to}
	}
	return out
}

// Inject hands a message to the network. done, if non-nil, is invoked (in
// kernel context) when the tail flit reaches the destination. Inject may be
// called before the simulator runs or at any point during the run, as long
// as m.Inject is not in the simulated past. Traffic generators call it once
// per message inside the cycle loop, so it is a hot root: its only
// allocations are the per-message worm process itself.
//
//lint:hot
func (n *Network) Inject(m Message, done func(Delivery)) {
	if eps := n.topo.Endpoints(); m.Src < 0 || m.Src >= eps || m.Dst < 0 || m.Dst >= eps {
		panic(fmt.Sprintf("mesh: message %d has endpoints %d->%d outside %d-node fabric",
			m.ID, m.Src, m.Dst, eps))
	}
	if m.Bytes <= 0 {
		panic(fmt.Sprintf("mesh: message %d has length %d", m.ID, m.Bytes))
	}
	if m.Inject < n.sim.Now() {
		panic(fmt.Sprintf("mesh: message %d injected at %d, before now %d", m.ID, m.Inject, n.sim.Now()))
	}
	n.inFlight++
	n.pending[m.ID] = m
	//lint:allow hotpath one worm process per injected message is the admission cost of the wormhole model, amortized across all its flits
	n.sim.SpawnAt(m.Inject, msgName(m.ID), func(p *sim.Process) {
		n.deliver(p, m, done)
	})
}

// msgName renders the worm process name without fmt's reflection:
// Inject is on the hot path, and fmt.Sprintf("msg%d", …) was its one
// avoidable per-message allocation (the int64 boxed into fmt's variadic
// any slot, plus the format machinery itself).
func msgName(id int64) string {
	return "msg" + strconv.FormatInt(id, 10)
}

// deliver is the wormhole worm: the process that walks the message's head
// across the fabric, holding the channels the worm occupies and releasing
// each channel once the tail has passed it. The head's next hop comes from
// the configured router: a precomputed dimension-order path, or per-hop
// west-first adaptive selection.
//
// With a fault injector installed, a killed worm (drop, transient outage,
// corrupted delivery) is retransmitted from the source after capped
// exponential backoff; a permanently-failed link triggers a deterministic
// reroute around the fault, and an unreachable destination fails the
// message with ErrPartitioned.
func (n *Network) deliver(p *sim.Process, m Message, done func(Delivery)) {
	cfg := n.cfg
	if m.Src == m.Dst {
		p.Hold(cfg.LocalDelay)
		n.complete(m, Delivery{Message: m}, done)
		return
	}

	var blocked sim.Duration
	var flags FaultFlags
	for attempt := 0; ; attempt++ {
		// A cancelled run must not keep retransmitting: if the simulator
		// is stepped past the cancellation point (a caller draining the
		// calendar), the worm gives itself up instead of spinning through
		// its backoff schedule.
		if n.sim.Interrupted() != nil {
			d := Delivery{Message: m, Blocked: blocked, Retries: attempt, Faults: flags,
				Status: StatusFailed}
			n.failures = append(n.failures, &ErrCancelled{
				MsgID: m.ID, Src: m.Src, Dst: m.Dst, Retries: attempt, Time: p.Now(),
			})
			n.complete(m, d, done)
			return
		}
		hops, outcome := n.attempt(p, m, attempt, &blocked, &flags)
		d := Delivery{Message: m, Blocked: blocked, Hops: hops, Retries: attempt, Faults: flags}
		switch outcome {
		case wormDelivered:
			n.complete(m, d, done)
			return
		case wormPartitioned:
			d.Status = StatusFailed
			n.failures = append(n.failures, &ErrPartitioned{
				MsgID: m.ID, Src: m.Src, Dst: m.Dst, At: hops, Time: p.Now(),
			})
			d.Hops = 0
			n.complete(m, d, done)
			return
		case wormKilled:
			if attempt >= cfg.MaxRetries {
				d.Status = StatusFailed
				n.failures = append(n.failures, &ErrExhausted{
					MsgID: m.ID, Src: m.Src, Dst: m.Dst, Retries: attempt, Time: p.Now(),
				})
				n.complete(m, d, done)
				return
			}
			backoff := cfg.RetryBase << attempt
			if cfg.RetryCap > 0 && backoff > cfg.RetryCap {
				backoff = cfg.RetryCap
			}
			p.Hold(backoff)
		}
	}
}

// wormOutcome is the result of one traversal attempt.
type wormOutcome int

const (
	wormDelivered   wormOutcome = iota // tail reached the destination
	wormKilled                         // dropped/outage/corrupted: retransmit
	wormPartitioned                    // no route exists: fail the message
)

// attempt walks the worm once from source to destination. It returns the
// hop count and the outcome; for wormPartitioned the hop count is
// repurposed as the node where the worm ran out of routes. blocked and
// flags accumulate across attempts.
func (n *Network) attempt(p *sim.Process, m Message, attempt int, blocked *sim.Duration, flags *FaultFlags) (int, wormOutcome) {
	cfg := n.cfg
	flits := cfg.Flits(m.Bytes)
	baseHop := cfg.CycleTime * sim.Duration(1+cfg.RouterDelay)

	// Route selection. Dimension-order paths are precomputed and, when a
	// permanently-failed link blocks them, replaced by the deterministic
	// BFS detour; west-first picks each hop adaptively.
	var path []hop
	pathIdx := 0
	usePath := cfg.Routing != RoutingWestFirst
	if usePath {
		path = n.route(m.Src, m.Dst)
		if n.faults != nil && n.pathBroken(path, p.Now()) {
			path = n.routeAvoiding(m.Src, m.Dst, p.Now())
			if path == nil {
				*flags |= FaultPartitioned
				return m.Src, wormPartitioned
			}
			*flags |= FaultRerouted
		}
	}

	var acquired []hop // hops taken, in order
	var held []int     // lane per acquired hop; -1 after release
	releaseAll := func() {
		for i, lane := range held {
			if lane >= 0 {
				acquired[i].link.release(lane, p.Now())
				held[i] = -1
			}
		}
	}

	cur := m.Src
	for cur != m.Dst {
		var h hop
		if usePath {
			h = path[pathIdx]
		} else {
			h = hop{link: n.chooseWestFirst(cur, m.Dst), lane: anyLane}
		}
		hopTime := baseHop
		if n.faults != nil {
			f := n.faults.LinkFault(h.link.from, h.link.to, p.Now())
			if f.Down {
				if f.Permanent && usePath {
					// Reroute around the failure from the current node,
					// keeping the channels already acquired.
					alt := n.routeAvoiding(cur, m.Dst, p.Now())
					if alt == nil {
						releaseAll()
						*flags |= FaultPartitioned
						return cur, wormPartitioned
					}
					*flags |= FaultRerouted
					path, pathIdx = alt, 0
					continue
				}
				// Transient outage (or adaptive routing, which cannot
				// follow a detour path): kill the worm and retransmit.
				releaseAll()
				*flags |= FaultLinkDown
				return len(acquired), wormKilled
			}
			if n.faults.Drop(m.ID, attempt, len(acquired), h.link.from, h.link.to, p.Now()) {
				releaseAll()
				*flags |= FaultDropped
				return len(acquired), wormKilled
			}
			if f.SlowFactor > 1 {
				*flags |= FaultSlowed
				hopTime *= sim.Duration(f.SlowFactor)
			}
		}
		lane, waited := h.link.acquire(p, h.lane, p.Now)
		*blocked += waited
		acquired = append(acquired, h)
		held = append(held, lane)
		p.Hold(hopTime) // head crosses the link
		h.link.flits += int64(flits)
		// With single-flit buffers the tail crosses link i when the head
		// has crossed link i+flits-1; free that channel for other worms.
		if back := len(acquired) - 1 - (flits - 1); back >= 0 {
			acquired[back].link.release(held[back], p.Now())
			held[back] = -1
		}
		if usePath {
			pathIdx++
		}
		cur = h.link.to
	}

	// A corrupted-length delivery is detected at the destination after the
	// worm has consumed the fabric; its channels are freed and the message
	// is retransmitted.
	if n.faults != nil && n.faults.Corrupt(m.ID, attempt, p.Now()) {
		releaseAll()
		*flags |= FaultCorrupted
		return len(acquired), wormKilled
	}

	// Head is at the destination; the remaining flits stream in one per
	// cycle, and trailing channels drain in pipeline order.
	drain := sim.Duration(flits-1) * cfg.CycleTime
	end := p.Now() + sim.Time(drain)
	for i, lane := range held {
		if lane < 0 {
			continue
		}
		tailPass := end - sim.Time(len(acquired)-1-i)*sim.Time(cfg.CycleTime)
		if tailPass < p.Now() {
			tailPass = p.Now()
		}
		li, la := acquired[i].link, lane
		n.sim.At(tailPass, func() { li.release(la, n.sim.Now()) })
	}
	p.Hold(drain)
	return len(acquired), wormDelivered
}

// pathBroken reports whether any link on the path is permanently down.
func (n *Network) pathBroken(path []hop, now sim.Time) bool {
	for _, h := range path {
		f := n.faults.LinkFault(h.link.from, h.link.to, now)
		if f.Down && f.Permanent {
			return true
		}
	}
	return false
}

// routeAvoiding computes a deterministic shortest detour from src to dst
// over links that are not permanently down at time now: breadth-first
// search expanding ports in fixed order, so equal-seed runs reroute
// identically. It returns nil when the failures disconnect src from dst.
// Detour hops use whichever virtual channel frees first.
func (n *Network) routeAvoiding(src, dst int, now sim.Time) []hop {
	if src == dst {
		return nil
	}
	prev := make([]*link, n.cfg.Nodes())
	visited := make([]bool, n.cfg.Nodes())
	visited[src] = true
	frontier := []int{src}
	for len(frontier) > 0 && !visited[dst] {
		var next []int
		for _, node := range frontier {
			for _, l := range n.links[node] {
				if l == nil || visited[l.to] {
					continue
				}
				f := n.faults.LinkFault(l.from, l.to, now)
				if f.Down && f.Permanent {
					continue
				}
				visited[l.to] = true
				prev[l.to] = l
				next = append(next, l.to)
			}
		}
		frontier = next
	}
	if !visited[dst] {
		return nil
	}
	var rev []hop
	for at := dst; at != src; at = prev[at].from {
		rev = append(rev, hop{link: prev[at], lane: anyLane})
	}
	path := make([]hop, len(rev))
	for i, h := range rev {
		path[len(rev)-1-i] = h
	}
	return path
}

// chooseWestFirst returns the next link under adaptive routing: the
// topology names the candidate ports in preference order (west-first's
// mandatory westward hops return a single candidate) and the engine picks
// the least loaded, ties resolved to the earliest candidate so equal-seed
// runs stay byte-identical.
func (n *Network) chooseWestFirst(cur, dst int) *link {
	ports := n.links[cur]
	candidates := n.topo.(Adaptive).AdaptiveNext(cur, dst)
	best := ports[candidates[0]]
	for _, p := range candidates[1:] {
		if l := ports[p]; l.load() < best.load() {
			best = l
		}
	}
	return best
}

func (n *Network) complete(m Message, d Delivery, done func(Delivery)) {
	d.End = n.sim.Now()
	d.Latency = sim.Duration(n.sim.Now() - m.Inject)
	n.log = append(n.log, d)
	if d.Status == StatusDelivered {
		n.delivered++
	}
	n.inFlight--
	delete(n.pending, m.ID)
	if done != nil {
		done(d)
	}
	if n.inFlight == 0 {
		cbs := n.onIdle
		n.onIdle = nil
		for _, cb := range cbs {
			cb()
		}
	}
}

// InFlight reports the number of injected but undelivered messages.
func (n *Network) InFlight() int { return n.inFlight }

// Delivered reports the number of completed messages.
func (n *Network) Delivered() int64 { return n.delivered }

// WhenIdle registers a callback invoked when the last in-flight message
// completes. If the network is already idle the callback runs immediately.
func (n *Network) WhenIdle(fn func()) {
	if n.inFlight == 0 {
		fn()
		return
	}
	n.onIdle = append(n.onIdle, fn)
}

// Log returns the deliveries recorded so far, sorted by injection time
// (ties broken by message ID). The returned slice is a copy.
func (n *Network) Log() []Delivery {
	out := make([]Delivery, len(n.log))
	copy(out, n.log)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Inject != out[j].Inject {
			return out[i].Inject < out[j].Inject
		}
		return out[i].Message.ID < out[j].Message.ID
	})
	return out
}

// LinkStats returns utilization records for every physical link, ordered by
// (from, to). Elapsed time is the simulator's current clock.
func (n *Network) LinkStats() []LinkStat {
	elapsed := n.sim.Now()
	var out []LinkStat
	for _, ports := range n.links {
		for _, l := range ports {
			if l == nil {
				continue
			}
			busy := l.busyLaneTime
			for _, lane := range l.lanes {
				if lane.busy {
					busy += sim.Duration(elapsed - lane.busySince)
				}
			}
			u := 0.0
			if elapsed > 0 {
				u = float64(busy) / (float64(elapsed) * float64(len(l.lanes)))
			}
			out = append(out, LinkStat{From: l.from, To: l.to, Grants: l.grants, Flits: l.flits, Utilization: u})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// MeanUtilization returns the average utilization across all links.
func (n *Network) MeanUtilization() float64 {
	stats := n.LinkStats()
	if len(stats) == 0 {
		return 0
	}
	var sum float64
	for _, s := range stats {
		sum += s.Utilization
	}
	return sum / float64(len(stats))
}
