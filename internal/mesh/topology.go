package mesh

// Topology is the pluggable interconnect seam: it describes the wiring
// (nodes and directed ports) and the deterministic routing function of one
// fabric. Network is the topology-agnostic wormhole engine on top.
//
// A Topology distinguishes *endpoints* (addressable processors, node ids
// 0..Endpoints()-1) from *nodes* (endpoints plus any internal switches, as
// in a fat tree). Route is only defined between endpoints; its result must
// be identical across calls (determinism is a repo-wide invariant) and must
// respect the fabric's channel-dependency discipline — dateline lane
// switching on tori, up/down phases on fat trees, minimal-path lane
// increments on dragonflies — so that wormhole routing stays deadlock-free
// with MinVirtualChannels lanes per link.
type Topology interface {
	// Name is the stable, human-readable config string of this fabric
	// instance (e.g. "torus4x4x4"). Equal fabrics render equal names.
	Name() string
	// Nodes is the total node count, endpoints plus internal switches.
	Nodes() int
	// Endpoints is the number of addressable processors. Endpoint ids are
	// 0..Endpoints()-1 and are always a prefix of the node id space.
	Endpoints() int
	// Degree is the number of outgoing ports of a node. Ports without a
	// neighbor (mesh boundary) report Neighbor == -1.
	Degree(node int) int
	// Neighbor is the node reached by the given outgoing port, or -1 when
	// the port is unwired.
	Neighbor(node, port int) int
	// Route returns the deterministic path from one endpoint to another as
	// a sequence of (port, lane) steps. src != dst; both are endpoints.
	Route(src, dst int) []Step
	// MinVirtualChannels is the smallest lane count per link under which
	// Route's lane discipline is deadlock-free (1 when any lane works).
	MinVirtualChannels() int
}

// Step is one hop of a topology route: the outgoing port to take from the
// current node, and the virtual-channel lane class the worm must use on it
// (LaneAny when any free lane works).
type Step struct {
	Port int
	Lane int
}

// LaneAny, as a Step lane, requests whichever virtual channel frees first.
const LaneAny = anyLane

// Adaptive is implemented by topologies that also offer per-hop adaptive
// route selection. AdaptiveNext returns the candidate outgoing ports from
// cur toward dst, in fixed preference order; the engine picks the least
// loaded (ties resolved to the earliest candidate, keeping runs
// deterministic). Mandatory hops return a single candidate.
type Adaptive interface {
	AdaptiveNext(cur, dst int) []int
}
