package mesh

import "fmt"

// dragonfly is the balanced two-tier direct fabric of Kim/Dally: groups of
// a routers, each router owning one endpoint, a complete graph inside each
// group, and h global links per router giving g = a*h + 1 groups so every
// group pair is joined by exactly one global channel. Node id = group*a +
// router-in-group.
//
// Ports 0..a-2 are the intra-group links to the other a-1 routers in
// ascending index order; ports a-1..a-2+h are the global channels. Global
// channel j (= routerInGroup*h + localChannel) of group G lands in group
// (G+j+1) mod g, whose paired channel back is g-2-j — a fixed bijection,
// so the wiring and every route are pure functions of the parameters.
//
// Routing is minimal and deterministic: at most local→global→local. The
// lane class increments from 0 to 1 after the global hop, the standard
// virtual-channel discipline that cuts the local/global/local dependency
// cycle, so two lanes suffice for deadlock freedom.
type dragonfly struct {
	routers int // a: routers per group
	globals int // h: global channels per router
	groups  int // g = a*h + 1
}

func newDragonfly(routers, globals int) *dragonfly {
	return &dragonfly{routers: routers, globals: globals, groups: routers*globals + 1}
}

func (t *dragonfly) Name() string {
	return fmt.Sprintf("dragonfly a%dh%d", t.routers, t.globals)
}

func (t *dragonfly) Nodes() int              { return t.routers * t.groups }
func (t *dragonfly) Endpoints() int          { return t.routers * t.groups }
func (t *dragonfly) Degree(node int) int     { return t.routers - 1 + t.globals }
func (t *dragonfly) MinVirtualChannels() int { return 2 }

func (t *dragonfly) Neighbor(node, port int) int {
	group, ri := node/t.routers, node%t.routers
	if port < t.routers-1 {
		// Intra-group: the port-th other router in ascending order.
		peer := port
		if peer >= ri {
			peer++
		}
		return group*t.routers + peer
	}
	// Global channel j of this group, owned by router ri.
	j := ri*t.globals + (port - (t.routers - 1))
	dstGroup := (group + j + 1) % t.groups
	back := t.groups - 2 - j // the paired channel in the destination group
	return dstGroup*t.routers + back/t.globals
}

// intraPort returns the port on router from (within a group) that reaches
// router to of the same group.
func (t *dragonfly) intraPort(from, to int) int {
	if to > from {
		return to - 1
	}
	return to
}

func (t *dragonfly) Route(src, dst int) []Step {
	sg, si := src/t.routers, src%t.routers
	dg, di := dst/t.routers, dst%t.routers
	if sg == dg {
		return []Step{{Port: t.intraPort(si, di), Lane: 0}}
	}
	// The unique global channel from sg to dg, and the routers it joins.
	j := (dg - sg - 1 + t.groups) % t.groups
	exit := j / t.globals
	entry := (t.groups - 2 - j) / t.globals
	var path []Step
	if si != exit {
		path = append(path, Step{Port: t.intraPort(si, exit), Lane: 0})
	}
	path = append(path, Step{Port: t.routers - 1 + j%t.globals, Lane: 0})
	if entry != di {
		path = append(path, Step{Port: t.intraPort(entry, di), Lane: 1})
	}
	return path
}
