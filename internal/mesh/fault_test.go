package mesh_test

import (
	"errors"
	"reflect"
	"testing"

	"commchar/internal/fault"
	"commchar/internal/mesh"
	"commchar/internal/sim"
)

// uniformRun drives a fixed synthetic workload through a 4x4 mesh with the
// given fault schedule and returns the delivery log.
func uniformRun(t *testing.T, spec string, seed uint64) []mesh.Delivery {
	t.Helper()
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(4, 4))
	if spec != "" {
		sched, err := fault.Parse(spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		net.SetFaults(sched)
	}
	st := sim.NewStream(0xBEEF)
	for src := 0; src < 16; src++ {
		at := sim.Time(0)
		for i := 0; i < 50; i++ {
			at += sim.Time(st.Exponential(3000)) + 1
			dst := st.IntN(16)
			if dst == src {
				dst = (dst + 1) % 16
			}
			net.Inject(mesh.Message{ID: net.NextID(), Src: src, Dst: dst, Bytes: 64, Inject: at}, nil)
		}
	}
	s.SetWatchdog(sim.Watchdog{MaxEvents: 5_000_000})
	if err := s.RunChecked(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return net.Log()
}

func TestDropRetransmitDeterministic(t *testing.T) {
	a := uniformRun(t, "drop:0.05", 42)
	b := uniformRun(t, "drop:0.05", 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal-seed fault runs diverged")
	}
	var flagged, retried int
	for _, d := range a {
		if d.Faults&mesh.FaultDropped != 0 {
			flagged++
		}
		if d.Retries > 0 {
			retried++
		}
		if d.Status != mesh.StatusDelivered {
			t.Errorf("message %d failed: %v", d.ID, d.Faults)
		}
	}
	if flagged == 0 || retried == 0 {
		t.Fatalf("p=0.05 drop left no trace: %d flagged, %d retried", flagged, retried)
	}
	// A different seed must produce a different fault pattern.
	c := uniformRun(t, "drop:0.05", 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical logs")
	}
	// And faulted messages must still be separable from clean traffic.
	clean := uniformRun(t, "", 0)
	if len(clean) != len(a) {
		t.Fatalf("fault run lost messages: %d vs %d", len(a), len(clean))
	}
	for _, d := range clean {
		if d.Faults != 0 || d.Retries != 0 {
			t.Fatalf("clean run has fault flags: %+v", d)
		}
	}
}

func TestTransientOutageRetries(t *testing.T) {
	// Take a central link down briefly; messages crossing it during the
	// window are killed and retried. The 20us window is shorter than the
	// full backoff chain (~32us), so every kill recovers once it lifts.
	log := uniformRun(t, "down:5<->6@0-20us", 1)
	var hit int
	for _, d := range log {
		if d.Faults&mesh.FaultLinkDown != 0 {
			hit++
			if d.Status != mesh.StatusDelivered {
				t.Errorf("message %d not recovered: %+v", d.ID, d)
			}
			if d.Retries == 0 {
				t.Errorf("message %d flagged linkdown without retries", d.ID)
			}
		}
	}
	if hit == 0 {
		t.Fatal("no message crossed the downed link during the outage")
	}
}

func TestPermanentFailureReroutes(t *testing.T) {
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(4, 4))
	// Kill 0->1 (the only XY first hop of 0->3) permanently from t=0.
	sched, err := fault.Parse("down:0<->1@0ns", 7)
	if err != nil {
		t.Fatal(err)
	}
	net.SetFaults(sched)
	net.Inject(mesh.Message{ID: 1, Src: 0, Dst: 3, Bytes: 32, Inject: 0}, nil)
	if err := s.RunChecked(); err != nil {
		t.Fatalf("run: %v", err)
	}
	log := net.Log()
	if len(log) != 1 {
		t.Fatalf("got %d deliveries", len(log))
	}
	d := log[0]
	if d.Status != mesh.StatusDelivered {
		t.Fatalf("not delivered: %+v", d)
	}
	if d.Faults&mesh.FaultRerouted == 0 {
		t.Fatalf("not flagged rerouted: %v", d.Faults)
	}
	// The direct XY route is 3 hops; the detour via row 1 costs 2 extra.
	if d.Hops != 5 {
		t.Fatalf("detour took %d hops, want 5", d.Hops)
	}
	if len(net.Failures()) != 0 {
		t.Fatalf("unexpected failures: %v", net.Failures())
	}
}

func TestPartitionedReturnsStructuredError(t *testing.T) {
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(2, 1))
	// The only link between the two nodes is dead: the fabric is split.
	sched, err := fault.Parse("down:0<->1@0ns", 7)
	if err != nil {
		t.Fatal(err)
	}
	net.SetFaults(sched)
	var got mesh.Delivery
	net.Inject(mesh.Message{ID: 9, Src: 0, Dst: 1, Bytes: 16, Inject: 0}, func(d mesh.Delivery) { got = d })
	if err := s.RunChecked(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got.Status != mesh.StatusFailed || got.Faults&mesh.FaultPartitioned == 0 {
		t.Fatalf("delivery not failed/partitioned: %+v", got)
	}
	fails := net.Failures()
	if len(fails) != 1 {
		t.Fatalf("got %d failures", len(fails))
	}
	var pe *mesh.ErrPartitioned
	if !errors.As(fails[0], &pe) {
		t.Fatalf("not ErrPartitioned: %v", fails[0])
	}
	if pe.MsgID != 9 || pe.Src != 0 || pe.Dst != 1 {
		t.Fatalf("wrong context: %+v", pe)
	}
	if net.InFlight() != 0 {
		t.Fatal("failed message left in flight")
	}
}

func TestRetryExhaustionFailsDeterministically(t *testing.T) {
	run := func() []mesh.Delivery {
		s := sim.New()
		cfg := mesh.DefaultConfig(2, 2)
		cfg.MaxRetries = 3
		net := mesh.New(s, cfg)
		sched, _ := fault.Parse("drop:1.0", 11)
		net.SetFaults(sched)
		net.Inject(mesh.Message{ID: 1, Src: 0, Dst: 3, Bytes: 16, Inject: 0}, nil)
		if err := s.RunChecked(); err != nil {
			t.Fatalf("run: %v", err)
		}
		if len(net.Failures()) != 1 {
			t.Fatalf("got failures %v", net.Failures())
		}
		var ee *mesh.ErrExhausted
		if !errors.As(net.Failures()[0], &ee) {
			t.Fatalf("not ErrExhausted: %v", net.Failures()[0])
		}
		if ee.Retries != 3 {
			t.Fatalf("retries %d", ee.Retries)
		}
		return net.Log()
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("exhaustion runs diverged")
	}
}

func TestSlowLinkFlagsAndDelays(t *testing.T) {
	oneShot := func(spec string) mesh.Delivery {
		s := sim.New()
		net := mesh.New(s, mesh.DefaultConfig(4, 1))
		if spec != "" {
			sched, _ := fault.Parse(spec, 3)
			net.SetFaults(sched)
		}
		net.Inject(mesh.Message{ID: 1, Src: 0, Dst: 3, Bytes: 64, Inject: 0}, nil)
		s.Run()
		return net.Log()[0]
	}
	clean := oneShot("")
	slowed := oneShot("slow:1->2:x8")
	if slowed.Faults&mesh.FaultSlowed == 0 {
		t.Fatalf("not flagged slowed: %v", slowed.Faults)
	}
	if slowed.Latency <= clean.Latency {
		t.Fatalf("slow link did not add latency: %d vs %d", slowed.Latency, clean.Latency)
	}
}

func TestCorruptedDeliveryRetransmitted(t *testing.T) {
	s := sim.New()
	net := mesh.New(s, mesh.DefaultConfig(2, 2))
	// Each attempt is corrupted with p=0.5, so across 20 messages some
	// deliveries arrive corrupted and are retransmitted to success.
	sched, _ := fault.Parse("corrupt:0.5", 21)
	net.SetFaults(sched)
	for i := 0; i < 20; i++ {
		net.Inject(mesh.Message{ID: net.NextID(), Src: i % 4, Dst: (i + 1) % 4, Bytes: 32, Inject: sim.Time(i * 10_000)}, nil)
	}
	s.SetWatchdog(sim.Watchdog{MaxEvents: 1_000_000})
	if err := s.RunChecked(); err != nil {
		t.Fatalf("run: %v", err)
	}
	var corrupted, recovered int
	for _, d := range net.Log() {
		if d.Faults&mesh.FaultCorrupted != 0 {
			corrupted++
			if d.Status == mesh.StatusDelivered {
				recovered++
				if d.Retries == 0 {
					t.Errorf("message %d corrupted but zero retries", d.ID)
				}
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("no corruption at p=0.5")
	}
	if recovered == 0 {
		t.Fatal("no corrupted message recovered")
	}
}

func TestTorusWraparoundLinkFailureReroutes(t *testing.T) {
	// On a 4x4 torus the route 0->3 prefers the single-hop wraparound link
	// (west from x=0 lands at x=3). Kill that link permanently: the worm
	// must detour the long way around the row and still deliver.
	s := sim.New()
	net := mesh.New(s, mesh.KAryConfig(mesh.TorusTopology, 4, 4))
	sched, err := fault.Parse("down:0<->3@0ns", 11)
	if err != nil {
		t.Fatal(err)
	}
	net.SetFaults(sched)
	net.Inject(mesh.Message{ID: 1, Src: 0, Dst: 3, Bytes: 32, Inject: 0}, nil)
	if err := s.RunChecked(); err != nil {
		t.Fatalf("run: %v", err)
	}
	log := net.Log()
	if len(log) != 1 {
		t.Fatalf("got %d deliveries", len(log))
	}
	d := log[0]
	if d.Status != mesh.StatusDelivered {
		t.Fatalf("not delivered: %+v", d)
	}
	if d.Faults&mesh.FaultRerouted == 0 {
		t.Fatalf("not flagged rerouted: %v", d.Faults)
	}
	// The detour abandons the 1-hop wraparound for the 3-hop row walk.
	if d.Hops != 3 {
		t.Fatalf("detour took %d hops, want 3", d.Hops)
	}
	// Determinism survives the fault: an identical run is bit-identical.
	s2 := sim.New()
	net2 := mesh.New(s2, mesh.KAryConfig(mesh.TorusTopology, 4, 4))
	sched2, _ := fault.Parse("down:0<->3@0ns", 11)
	net2.SetFaults(sched2)
	net2.Inject(mesh.Message{ID: 1, Src: 0, Dst: 3, Bytes: 32, Inject: 0}, nil)
	if err := s2.RunChecked(); err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !reflect.DeepEqual(log, net2.Log()) {
		t.Fatal("equal torus fault runs diverged")
	}
}
