package mesh

import (
	"fmt"

	"commchar/internal/sim"
)

// direction indexes the four outgoing physical links of a router.
type direction int

const (
	dirEast  direction = iota // +X
	dirWest                   // -X
	dirNorth                  // +Y
	dirSouth                  // -Y
	numDirections
)

// anyLane requests whichever virtual channel is free first.
const anyLane = -1

// link is one directed physical channel between adjacent routers, carrying
// Config.VirtualChannels lanes. Arbitration is a single FCFS queue; a
// waiter may demand a specific lane (torus dateline classes) or any lane.
type link struct {
	id    int
	from  int
	to    int
	lanes []laneState
	queue []*linkWaiter

	// Statistics.
	grants       int64
	busyLaneTime sim.Duration
	flits        int64
}

type laneState struct {
	busy      bool
	busySince sim.Time
	holder    *sim.Process // worm currently holding the lane (diagnostics)
}

type linkWaiter struct {
	p       *sim.Process
	lane    int // anyLane or a specific lane index
	arrived sim.Time
	granted int // lane granted, set by release path
}

// acquire obtains a lane on the link for process p, blocking FCFS.
// It returns the lane index granted and the time spent waiting.
func (l *link) acquire(p *sim.Process, lane int, now func() sim.Time) (int, sim.Duration) {
	if got := l.tryGrant(p, lane, now()); got >= 0 {
		return got, 0
	}
	w := &linkWaiter{p: p, lane: lane, arrived: now(), granted: -1}
	l.queue = append(l.queue, w)
	p.SuspendOn(l)
	return w.granted, sim.Duration(now() - w.arrived)
}

// tryGrant grants a lane immediately if one matching the request is free.
func (l *link) tryGrant(p *sim.Process, lane int, now sim.Time) int {
	if lane == anyLane {
		for i := range l.lanes {
			if !l.lanes[i].busy {
				l.grantLane(p, i, now)
				return i
			}
		}
		return -1
	}
	if !l.lanes[lane].busy {
		l.grantLane(p, lane, now)
		return lane
	}
	return -1
}

func (l *link) grantLane(p *sim.Process, i int, now sim.Time) {
	l.lanes[i].busy = true
	l.lanes[i].busySince = now
	l.lanes[i].holder = p
	l.grants++
}

// release frees lane i and hands it to the first compatible waiter. It may
// be called from kernel context (scheduled drain events) or from a process.
func (l *link) release(i int, now sim.Time) {
	if !l.lanes[i].busy {
		panic("mesh: releasing idle lane")
	}
	l.busyLaneTime += sim.Duration(now - l.lanes[i].busySince)
	l.lanes[i].busy = false
	l.lanes[i].holder = nil
	for qi, w := range l.queue {
		if w.lane == anyLane || w.lane == i {
			l.queue = append(l.queue[:qi], l.queue[qi+1:]...)
			l.grantLane(w.p, i, now)
			w.granted = i
			sim.WakerFor(w.p).Wake()
			return
		}
	}
}

// ResourceName implements sim.Resource for deadlock diagnostics.
func (l *link) ResourceName() string {
	return fmt.Sprintf("link %d->%d", l.from, l.to)
}

// Holders implements sim.Resource: the worms currently holding lanes.
func (l *link) Holders() []*sim.Process {
	var out []*sim.Process
	for _, lane := range l.lanes {
		if lane.busy && lane.holder != nil {
			out = append(out, lane.holder)
		}
	}
	return out
}

// load is the adaptive router's congestion estimate for this link: busy
// lanes plus queued worms.
func (l *link) load() int {
	busy := 0
	for _, lane := range l.lanes {
		if lane.busy {
			busy++
		}
	}
	return busy + len(l.queue)
}

// LinkStat is the per-physical-link utilization record exposed in reports.
type LinkStat struct {
	From, To    int
	Grants      int64
	Flits       int64
	Utilization float64 // busy lane-time / (lanes × elapsed)
}
