package resilience

import (
	"context"
	"fmt"
	"time"
)

// Policy is a bounded retry schedule with exponential backoff and
// deterministic jitter. The zero value never retries (one attempt).
type Policy struct {
	// MaxAttempts is the total number of tries, first included; values
	// below 1 mean 1 (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff; 0 means uncapped.
	MaxDelay time.Duration
	// Multiplier grows the backoff between retries; values <= 1 mean 2.
	Multiplier float64
}

// DefaultPolicy is the pipeline's standard schedule: three attempts with
// 5ms base backoff doubling to a 250ms cap.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Multiplier: 2}
}

// splitmix64 is the deterministic jitter generator: a full-period mixer,
// so equal seeds give equal backoff schedules (and tests stay exact).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Backoff returns the delay before retry number n (1-based), with equal
// jitter: half the exponential delay fixed, half drawn deterministically
// from the seed, so concurrent retriers with distinct seeds decorrelate
// while every run of one seed reproduces exactly.
func (p Policy) Backoff(n int, seed uint64) time.Duration {
	if n < 1 || p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= mult
		if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	// Equal jitter in [d/2, d): fixed half plus a seeded fraction.
	frac := float64(splitmix64(seed+uint64(n))>>11) / float64(1<<53)
	return time.Duration(d/2 + frac*d/2)
}

// Do runs fn until it succeeds, fails permanently, exhausts the attempt
// budget, or the context is cancelled. It returns the number of attempts
// made and the final error. Backoff sleeps are cut short by cancellation,
// which is reported as the context's error.
func (p Policy) Do(ctx context.Context, seed uint64, fn func() error) (int, error) {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for n := 1; ; n++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return n - 1, err
		}
		err = fn()
		if err == nil {
			return n, nil
		}
		if n >= attempts || Classify(err) != Transient {
			return n, err
		}
		if d := p.Backoff(n, seed); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				// The cancellation dominates — Classify checks the context
				// sentinels before anything else — but the last attempt's
				// error must stay reachable by errors.Is/As too, so both
				// branches are wrapped with %w (the errtaxonomy analyzer
				// flags the stringifying %v this replaces).
				return n, fmt.Errorf("retry interrupted: %w (last attempt: %w)", ctx.Err(), err)
			case <-t.C:
			}
		}
	}
}
