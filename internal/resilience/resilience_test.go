package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"commchar/internal/sim"
	"commchar/internal/trace"
)

func TestProtectConvertsPanics(t *testing.T) {
	err := Protect(func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("clean fn returned %v", err)
	}
	sentinel := errors.New("plain")
	if err := Protect(func() error { return sentinel }); err != sentinel {
		t.Fatalf("plain error not passed through: %v", err)
	}
}

func TestClassify(t *testing.T) {
	budgetTrip := &sim.DeadlockError{Reason: "watchdog: event budget exceeded"}
	deadlock := &sim.DeadlockError{Reason: "deadlock: no runnable process"}
	cancelled := &sim.DeadlockError{Reason: "cancelled: context canceled", Cause: context.Canceled}
	table := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, Permanent},
		{"plain", errors.New("x"), Permanent},
		{"canceled", context.Canceled, Permanent},
		{"deadline", context.DeadlineExceeded, Permanent},
		{"wrapped-canceled", fmt.Errorf("run: %w", context.Canceled), Permanent},
		{"panic", Protect(func() error { panic("x") }), Permanent},
		{"marked", MarkTransient(errors.New("flaky")), Transient},
		{"wrapped-marked", fmt.Errorf("outer: %w", MarkTransient(errors.New("flaky"))), Transient},
		{"path-error", &os.PathError{Op: "open", Path: "x", Err: errors.New("io")}, Transient},
		{"truncated", &trace.TruncatedError{Line: 3}, Transient},
		{"watchdog-budget", budgetTrip, Transient},
		{"structural-deadlock", deadlock, Permanent},
		{"cancelled-deadlock", cancelled, Permanent},
		// The network taxonomy (internal/dist RPCs).
		{"op-error", &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("refused")}, Transient},
		{"conn-refused", fmt.Errorf("post: %w", syscall.ECONNREFUSED), Transient},
		{"conn-reset", fmt.Errorf("read: %w", syscall.ECONNRESET), Transient},
		{"broken-pipe", fmt.Errorf("write: %w", syscall.EPIPE), Transient},
		{"net-closed", fmt.Errorf("lease: %w", net.ErrClosed), Transient},
		{"short-body", fmt.Errorf("artifact: %w", io.ErrUnexpectedEOF), Transient},
		{"net-timeout", fmt.Errorf("rpc: %w", &timeoutError{}), Transient},
	}
	for _, tc := range table {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// timeoutError satisfies net.Error with Timeout() true, like a
// *http.httpError from an exhausted client timeout.
type timeoutError struct{}

func (*timeoutError) Error() string   { return "i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// TestBackoffGoldenSchedule pins the exact splitmix64 jitter sequence of
// the default policy for fixed seeds. Any change to these numbers is a
// change to every retry schedule in every recorded run — deliberate
// changes must update the goldens, accidental ones fail here.
func TestBackoffGoldenSchedule(t *testing.T) {
	p := DefaultPolicy()
	golden := map[uint64][]time.Duration{
		0:          {3916403, 7955948, 11134503, 28629116, 55470721, 139185361, 173728718, 202313078},
		42:         {4320446, 9907620, 19684135, 34603985, 59328471, 81262361, 138814148, 216323873},
		0xdeadbeef: {2850450, 9215675, 10986797, 32509460, 51183929, 151258158, 181323758, 158426282},
	}
	for seed, want := range golden {
		for i, w := range want {
			if got := p.Backoff(i+1, seed); got != w {
				t.Errorf("seed %d attempt %d: Backoff = %d, want %d", seed, i+1, int64(got), int64(w))
			}
		}
	}
}

// TestBackoffStableUnderConcurrency: the schedule is pure — many
// goroutines computing the same (seed, attempt) pairs concurrently all
// see the golden values, so a parallel sweep's retry timing cannot
// depend on scheduling. This is what keeps -parallel=1 and -parallel=N
// sweeps byte-identical even when retries fire.
func TestBackoffStableUnderConcurrency(t *testing.T) {
	p := DefaultPolicy()
	want := make([]time.Duration, 16)
	for n := range want {
		want[n] = p.Backoff(n, 7)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 100; rep++ {
				for n := range want {
					if got := p.Backoff(n, 7); got != want[n] {
						errs <- fmt.Sprintf("attempt %d: %v != %v", n, got, want[n])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := DefaultPolicy()
	for n := 0; n < 6; n++ {
		a := p.Backoff(n, 42)
		b := p.Backoff(n, 42)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", n, a, b)
		}
		if a < 0 || a >= p.MaxDelay {
			t.Fatalf("attempt %d: backoff %v outside [0, %v)", n, a, p.MaxDelay)
		}
	}
	// Different seeds decorrelate, at least somewhere in the schedule.
	same := true
	for n := 0; n < 6; n++ {
		if p.Backoff(n, 1) != p.Backoff(n, 2) {
			same = false
		}
	}
	if same {
		t.Fatal("jitter ignores the seed")
	}
	// The schedule grows until the cap.
	if p.Backoff(0, 7) >= p.MaxDelay {
		t.Fatal("first backoff already at cap")
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Multiplier: 2}

	calls := 0
	attempts, err := p.Do(context.Background(), 1, func() error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 || attempts != 3 {
		t.Fatalf("transient recovery: err=%v calls=%d attempts=%d", err, calls, attempts)
	}

	calls = 0
	perm := errors.New("broken")
	attempts, err = p.Do(context.Background(), 1, func() error { calls++; return perm })
	if !errors.Is(err, perm) || calls != 1 || attempts != 1 {
		t.Fatalf("permanent failure retried: err=%v calls=%d attempts=%d", err, calls, attempts)
	}

	calls = 0
	attempts, err = p.Do(context.Background(), 1, func() error {
		calls++
		return MarkTransient(errors.New("always flaky"))
	})
	if err == nil || calls != 4 || attempts != 4 {
		t.Fatalf("exhaustion: err=%v calls=%d attempts=%d", err, calls, attempts)
	}
}

// TestDoInterruptedKeepsLastAttemptInspectable pins the errtaxonomy
// contract on the "retry interrupted" wrap: both the cancellation and
// the last attempt's error must stay reachable by errors.Is/As. The
// repolint errtaxonomy analyzer found the previous form stringifying
// the last attempt with %v, which made the underlying *os.PathError
// invisible to callers triaging an interrupted sweep.
func TestDoInterruptedKeepsLastAttemptInspectable(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour, Multiplier: 2}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pathErr := &os.PathError{Op: "open", Path: "cache/artifact", Err: os.ErrNotExist}
	attempts, err := p.Do(ctx, 1, func() error {
		// Cancel after the attempt: Do then enters its backoff sleep and
		// must return immediately with the interruption wrap.
		cancel()
		return pathErr
	})
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled reachable", err)
	}
	var pe *os.PathError
	if !errors.As(err, &pe) || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("last attempt's cause not wrapped: %v", err)
	}
	// The interrupted wrap must still classify as Permanent: the
	// cancellation dominates the transient last attempt.
	if Classify(err) != Permanent {
		t.Fatalf("Classify(%v) = %v, want Permanent", err, Classify(err))
	}
}

func TestDoStopsOnCancelledContext(t *testing.T) {
	p := Policy{MaxAttempts: 1000, BaseDelay: time.Hour, MaxDelay: time.Hour, Multiplier: 1}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = p.Do(ctx, 1, func() error {
			calls++
			return MarkTransient(errors.New("flaky"))
		})
	}()
	// The first failure puts Do into its hour-long backoff sleep; cancelling
	// must cut it short immediately.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times after cancellation", calls)
	}

	// A context cancelled before the first attempt never runs fn.
	calls = 0
	attempts, err := p.Do(ctx, 1, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 || attempts != 0 {
		t.Fatalf("pre-cancelled: err=%v calls=%d attempts=%d", err, calls, attempts)
	}
}

func TestZeroPolicyRunsOnce(t *testing.T) {
	var p Policy
	calls := 0
	attempts, err := p.Do(context.Background(), 1, func() error {
		calls++
		return MarkTransient(errors.New("flaky"))
	})
	if calls != 1 || attempts != 1 || err == nil {
		t.Fatalf("zero policy: calls=%d attempts=%d err=%v", calls, attempts, err)
	}
}
