package resilience

import (
	"sync"
	"time"

	"commchar/internal/obs"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes every call through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits every call until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe call; its outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerOptions configures a Breaker. The zero value takes the defaults.
type BreakerOptions struct {
	// Threshold is how many consecutive failures trip the breaker open.
	// Default 3.
	Threshold int
	// Cooldown is the open interval before the first half-open probe.
	// Default 500ms.
	Cooldown time.Duration
	// MaxCooldown caps the grown cooldown; default 16x Cooldown. The
	// probe schedule doubles the cooldown after every failed probe —
	// deterministically, with no jitter, so a test (or an operator
	// reading a flight recording) can predict exactly when the next
	// probe is admitted.
	MaxCooldown time.Duration
	// Clock supplies the breaker's time base; nil means obs.System().
	Clock obs.Clock
}

// A Breaker is a per-endpoint circuit breaker: after Threshold
// consecutive failures it opens and rejects calls instantly, so a dead
// endpoint costs a nil check instead of a connect timeout on every
// operation. After a deterministic cooldown it admits exactly one probe
// (half-open); a successful probe closes the circuit, a failed one
// re-opens it with the cooldown doubled up to MaxCooldown. The schedule
// is deliberately jitter-free: breakers guard best-effort paths (the
// shared artifact store), where the reproducibility of the probe
// schedule is worth more than decorrelation.
//
// Breaker is safe for concurrent use.
type Breaker struct {
	threshold   int
	cooldown    time.Duration
	maxCooldown time.Duration
	clock       obs.Clock

	mu       sync.Mutex
	state    BreakerState
	failures int           // consecutive failures while closed
	openedAt time.Time     // when the breaker last opened
	wait     time.Duration // current cooldown before the next probe
	probing  bool          // a half-open probe is in flight
	opens    int64         // times the breaker tripped open (for metrics)
}

// NewBreaker builds a breaker from opts.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.Threshold <= 0 {
		opts.Threshold = 3
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 500 * time.Millisecond
	}
	if opts.MaxCooldown <= 0 {
		opts.MaxCooldown = 16 * opts.Cooldown
	}
	if opts.Clock == nil {
		opts.Clock = obs.System()
	}
	return &Breaker{
		threshold:   opts.Threshold,
		cooldown:    opts.Cooldown,
		maxCooldown: opts.MaxCooldown,
		clock:       opts.Clock,
		wait:        opts.Cooldown,
	}
}

// Allow reports whether a call may proceed right now. While open it
// returns false until the cooldown has elapsed; the first Allow after
// the cooldown admits the half-open probe (and concurrent callers keep
// getting false until that probe reports through Record).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		// One probe at a time; everyone else stays short-circuited.
		return false
	default: // BreakerOpen
		if b.clock.Now().Sub(b.openedAt) < b.wait {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	}
}

// Record reports a call's outcome. Failures while closed count toward
// the threshold; a failed half-open probe re-opens the breaker with the
// cooldown doubled (capped), a successful one closes it and resets the
// schedule.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.state = BreakerClosed
			b.failures = 0
			b.wait = b.cooldown
			return
		}
		// Failed probe: back to open with the cooldown doubled.
		b.wait *= 2
		if b.wait > b.maxCooldown {
			b.wait = b.maxCooldown
		}
		b.trip()
	case BreakerOpen:
		// A straggling Record from before the trip; nothing to update.
	}
}

// trip moves the breaker to open at the current instant. Callers hold mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.clock.Now()
	b.opens++
}

// State returns the breaker's current position (open breakers whose
// cooldown has elapsed still report open until a probe is admitted).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
