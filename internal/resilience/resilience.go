// Package resilience is the failure-semantics layer under the run
// pipeline: a panic-recovery boundary, a retryable-error taxonomy, and a
// deterministic retry policy with exponential backoff and jitter.
//
// The taxonomy splits failures into two classes. Transient failures —
// disk-cache I/O errors, truncated trace reads that salvaged a prefix,
// watchdog budget trips on a fault-livelocked run — are worth retrying.
// Permanent failures — structural deadlocks, panics, validation errors,
// cancellation — are not: the same inputs will fail the same way, or the
// caller asked us to stop.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/debug"
	"syscall"

	"commchar/internal/sim"
	"commchar/internal/trace"
)

// PanicError is a panic converted into an error at a recovery boundary. It
// keeps the panic value and the stack of the panicking goroutine so the
// failure stays diagnosable after recovery.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("internal error: panic: %v", e.Value)
}

// Protect runs fn, converting a panic into a *PanicError. It is the
// recovery boundary the tools and the run pipeline wrap around sub-steps
// so one failing step cannot take down the whole process.
func Protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Class partitions failures by whether a retry can plausibly succeed.
type Class int

const (
	// Permanent failures reproduce deterministically (or must not be
	// retried at all, like cancellation); retrying wastes work.
	Permanent Class = iota
	// Transient failures come from the environment — filesystem flake,
	// a truncated read, a tripped progress budget — and may clear.
	Transient
)

func (c Class) String() string {
	if c == Transient {
		return "transient"
	}
	return "permanent"
}

// transientMark wraps an error explicitly classified as transient.
type transientMark struct{ err error }

func (t *transientMark) Error() string { return t.err.Error() }
func (t *transientMark) Unwrap() error { return t.err }

// MarkTransient explicitly classifies err as transient; Classify honours
// the mark through any amount of wrapping. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientMark{err: err}
}

// Classify places an error in the retry taxonomy:
//
//   - cancellation and deadline expiry are Permanent (the caller asked us
//     to stop; retrying would fight the context);
//   - panics are Permanent (a bug reproduces deterministically);
//   - errors wrapped by MarkTransient are Transient;
//   - filesystem errors (*os.PathError, *os.LinkError, *os.SyscallError)
//     are Transient — the disk-cache I/O flake taxonomy;
//   - network errors are Transient: a refused or reset connection, a
//     dial or read timeout (*net.OpError, net.Error with Timeout, the
//     ECONNREFUSED/ECONNRESET/EPIPE sentinels), a closed connection
//     (net.ErrClosed), and a short body (io.ErrUnexpectedEOF) all come
//     from the environment — a worker restarting, a coordinator
//     rebinding — and clear on retry. A protocol-level rejection (for
//     example dist's version mismatch) is a plain error and therefore
//     Permanent: the same request will be rejected the same way;
//   - a *trace.TruncatedError is Transient: the writer may still be
//     flushing, or the next read of the entry may be whole;
//   - a *sim.DeadlockError is Transient only when a watchdog budget
//     tripped (a livelocked run may clear under a raised budget or a
//     different schedule); a structural deadlock is Permanent.
//
// Everything else is Permanent.
func Classify(err error) Class {
	if err == nil {
		return Permanent
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Permanent
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return Permanent
	}
	var tm *transientMark
	if errors.As(err, &tm) {
		return Transient
	}
	var (
		pathErr *os.PathError
		linkErr *os.LinkError
		sysErr  *os.SyscallError
	)
	if errors.As(err, &pathErr) || errors.As(err, &linkErr) || errors.As(err, &sysErr) {
		return Transient
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return Transient
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return Transient
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return Transient
	}
	var te *trace.TruncatedError
	if errors.As(err, &te) {
		return Transient
	}
	var de *sim.DeadlockError
	if errors.As(err, &de) && de.BudgetExceeded() {
		return Transient
	}
	return Permanent
}
