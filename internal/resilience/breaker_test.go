package resilience

import (
	"testing"
	"time"

	"commchar/internal/obs"
)

// TestBreakerLifecycle drives the breaker through its whole state
// machine under a fake clock: closed -> open after the threshold,
// short-circuit during the cooldown, one half-open probe, re-open with
// a doubled cooldown on probe failure, closed again on probe success.
func TestBreakerLifecycle(t *testing.T) {
	clock := obs.NewFake(time.Unix(0, 0), 0)
	b := NewBreaker(BreakerOptions{Threshold: 3, Cooldown: 100 * time.Millisecond, Clock: clock})

	// Closed: calls pass; two failures stay under the threshold.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after 2 failures, want closed", b.State())
	}
	// A success resets the consecutive count.
	b.Record(true)
	for i := 0; i < 2; i++ {
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the failure count")
	}
	// The third consecutive failure trips it.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}

	// Open: short-circuit until the cooldown elapses.
	if b.Allow() {
		t.Fatal("open breaker admitted a call before the cooldown")
	}
	clock.Advance(99 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker admitted a call 1ms early")
	}
	clock.Advance(1 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe not admitted")
	}
	// Half-open: exactly one probe; concurrent callers stay rejected.
	if b.Allow() {
		t.Fatal("second caller admitted during the half-open probe")
	}
	// Probe fails: re-open with the cooldown doubled (200ms).
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	clock.Advance(199 * time.Millisecond)
	if b.Allow() {
		t.Fatal("doubled cooldown not honoured")
	}
	clock.Advance(1 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe not admitted after doubled cooldown")
	}
	// Probe succeeds: closed, schedule reset to the base cooldown.
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	clock.Advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown did not reset to the base after recovery")
	}
}

// TestBreakerCooldownCap pins the deterministic probe schedule: the
// cooldown doubles per failed probe and saturates at MaxCooldown.
func TestBreakerCooldownCap(t *testing.T) {
	clock := obs.NewFake(time.Unix(0, 0), 0)
	b := NewBreaker(BreakerOptions{
		Threshold: 1, Cooldown: 10 * time.Millisecond,
		MaxCooldown: 40 * time.Millisecond, Clock: clock,
	})
	b.Record(false) // trip

	want := []time.Duration{10, 20, 40, 40, 40} // ms; capped at 40
	for i, w := range want {
		w *= time.Millisecond
		clock.Advance(w - time.Millisecond)
		if b.Allow() {
			t.Fatalf("probe %d admitted before its %v cooldown", i, w)
		}
		clock.Advance(time.Millisecond)
		if !b.Allow() {
			t.Fatalf("probe %d not admitted at its %v cooldown", i, w)
		}
		b.Record(false) // keep failing: next cooldown doubles (until the cap)
	}
	if b.Opens() != int64(len(want))+1 {
		t.Fatalf("opens = %d, want %d", b.Opens(), len(want)+1)
	}
}
