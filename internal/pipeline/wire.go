package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"

	"commchar/internal/trace"
)

// The wire codec serializes a complete Artifact for transport between a
// distributed worker and its coordinator (see internal/dist). It reuses
// the disk cache's entry layout — the family-tagged characterization JSON
// plus CSV renderings of the bulky row data — so the transfer has exactly
// the fidelity the cache round-trip tests already prove: a decoded
// artifact is byte-identical to the original, which is what keeps a
// distributed sweep's output byte-identical to a local one.

// wireArtifact is the transport form of an Artifact.
type wireArtifact struct {
	// Meta is the disk cache's entry metadata: the characterization with
	// Log and Trace stripped, integrity counts, and the machine-level
	// observations.
	Meta entryMeta
	// LogCSV is the delivery log in trace.WriteDeliveries format.
	LogCSV []byte
	// TraceCSV is the application trace (static strategy only).
	TraceCSV []byte `json:",omitempty"`
}

// MarshalArtifact serializes an artifact for transport. The artifact must
// carry a characterization (failed specs produce no artifact and are
// reported through the failure path instead).
func MarshalArtifact(a *Artifact) ([]byte, error) {
	if a == nil || a.C == nil {
		return nil, fmt.Errorf("pipeline: marshal artifact: no characterization")
	}
	slim := *a.C
	slim.Log, slim.Trace = nil, nil
	w := wireArtifact{
		Meta: entryMeta{
			C:             &slim,
			Messages:      len(a.C.Log),
			HasTrace:      a.C.Trace != nil,
			MemStats:      a.MemStats,
			Profiles:      a.Profiles,
			Failures:      a.Failures,
			FaultCounters: a.FaultCounters,
		},
	}
	var log bytes.Buffer
	if err := trace.WriteDeliveries(&log, a.C.Log); err != nil {
		return nil, fmt.Errorf("pipeline: marshal artifact log: %w", err)
	}
	w.LogCSV = log.Bytes()
	if a.C.Trace != nil {
		var tr bytes.Buffer
		if err := a.C.Trace.WriteCSV(&tr); err != nil {
			return nil, fmt.Errorf("pipeline: marshal artifact trace: %w", err)
		}
		w.TraceCSV = tr.Bytes()
	}
	return json.Marshal(w)
}

// UnmarshalArtifact decodes a wire artifact back into an Artifact for the
// given spec and cache key (the receiver knows both; they are not
// round-tripped). Like the disk cache's load path, any inconsistency —
// malformed JSON, a truncated CSV, a delivery count that does not match
// the metadata — is an error: a partial transfer must never masquerade as
// the run it describes. The caller sets Source.
func UnmarshalArtifact(data []byte, spec RunSpec, key string) (*Artifact, error) {
	var w wireArtifact
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("pipeline: unmarshal artifact: %w", err)
	}
	if w.Meta.C == nil {
		return nil, fmt.Errorf("pipeline: unmarshal artifact: no characterization")
	}
	log, err := trace.ReadDeliveries(bytes.NewReader(w.LogCSV))
	if err != nil {
		return nil, fmt.Errorf("pipeline: unmarshal artifact log: %w", err)
	}
	if len(log) != w.Meta.Messages {
		return nil, fmt.Errorf("pipeline: unmarshal artifact: %d deliveries, metadata says %d", len(log), w.Meta.Messages)
	}
	c := w.Meta.C
	c.Log = log
	if w.Meta.HasTrace {
		tr, err := trace.ReadCSV(bytes.NewReader(w.TraceCSV), c.Procs)
		if err != nil {
			return nil, fmt.Errorf("pipeline: unmarshal artifact trace: %w", err)
		}
		c.Trace = tr
	}
	return &Artifact{
		Spec:          spec,
		Key:           key,
		C:             c,
		MemStats:      w.Meta.MemStats,
		Profiles:      w.Meta.Profiles,
		Failures:      w.Meta.Failures,
		FaultCounters: w.Meta.FaultCounters,
	}, nil
}
