package pipeline

import (
	"testing"

	"commchar/internal/apps"
)

// BenchmarkColdSweepTopology measures the cold (cache-disabled) cost of one
// full pipeline run — generate, simulate, characterize — per interconnect
// fabric, on the same IS workload at 16 processors. The empty topology is
// the paper's default 2-D mesh and serves as the baseline; the deltas are
// the price of richer fabrics (more nodes for the fat tree's switch
// stages, wider radix for the dragonfly). Results are recorded in
// BENCH_topology.json at the repo root.
func BenchmarkColdSweepTopology(b *testing.B) {
	for _, topo := range []string{"", "torus", "torus3d", "hypercube", "fattree", "dragonfly"} {
		name := topo
		if name == "" {
			name = "mesh"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := New(Options{Parallel: 1})
				if err != nil {
					b.Fatal(err)
				}
				arts, err := eng.RunAll(RunSpec{App: "IS", Procs: 16, Scale: apps.ScaleSmall, Topology: topo})
				if err != nil {
					b.Fatal(err)
				}
				if len(arts) != 1 || arts[0].C == nil || arts[0].C.Messages == 0 {
					b.Fatalf("topology %q: empty artifact", topo)
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
