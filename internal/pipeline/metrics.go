package pipeline

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"commchar/internal/obs"
	"commchar/internal/report"
)

// Metrics aggregates the engine's per-stage counters and timings. All
// fields are updated atomically, so a single Metrics can be shared by
// concurrent runs (and by several engines, if a caller wants one summary
// across tools).
type Metrics struct {
	Runs       atomic.Int64 // simulations actually executed
	MemoryHits atomic.Int64 // served from the in-memory artifact cache
	DiskHits   atomic.Int64 // served from the on-disk cache
	DedupHits  atomic.Int64 // callers that piggybacked on an identical in-flight run

	Faulted atomic.Int64 // delivered messages touched by injected faults
	Failed  atomic.Int64 // messages that were never delivered

	SimEvents atomic.Int64 // simulation events fired across executed runs
	SimTimeNS atomic.Int64 // simulated time accumulated across executed runs

	AcquireNS atomic.Int64 // wall time in the acquire stage (app execution)
	ReplayNS  atomic.Int64 // wall time in the log stage (trace replay)
	AnalyzeNS atomic.Int64 // wall time in the analyze stage (fitting)

	DiskStoreErrors atomic.Int64 // best-effort cache writes that failed

	RemoteRuns atomic.Int64 // specs executed through the remote executor
	RemoteNS   atomic.Int64 // wall time waiting on remote executions

	StoreHits      atomic.Int64 // artifacts served from the shared remote store
	StorePuts      atomic.Int64 // artifacts uploaded to the shared remote store
	StoreErrors    atomic.Int64 // store fetches that failed or decoded inconsistently
	StorePutErrors atomic.Int64 // best-effort store uploads that failed

	Retries       atomic.Int64 // extra stage executions after transient failures
	Panics        atomic.Int64 // worker panics contained by the recovery boundary
	Cancelled     atomic.Int64 // runs stopped by cancellation or a deadline
	SpecFailures  atomic.Int64 // specs that produced no artifact
	Resumed       atomic.Int64 // journaled specs recognized as already complete
	JournalErrors atomic.Int64 // best-effort journal appends that failed

	// Per-topology accounting, keyed by the interconnect family that a run
	// actually simulated on ("mesh", "torus", "hypercube", "fattree",
	// "dragonfly"). Exported as labeled commchar_mesh_* counter families;
	// absent from the text Summary so its byte layout stays stable.
	topoMu    sync.Mutex
	topoRuns  map[string]int64
	topoMsgs  map[string]int64
	topoSimNS map[string]int64

	// Per-collective-op accounting, keyed by "op/algorithm" (e.g.
	// "bcast/binomial") as characterized by internal/coll. Exported as
	// labeled commchar_coll_* counter families; absent from the text
	// Summary so its byte layout stays stable.
	collMu    sync.Mutex
	collInsts map[string]int64
	collMsgs  map[string]int64
	collBytes map[string]int64
}

// collRun records one executed run's collective characterization for one
// (op, algorithm) group: its instances, messages, and payload bytes.
func (m *Metrics) collRun(op string, instances, messages, bytes int64) {
	m.collMu.Lock()
	defer m.collMu.Unlock()
	if m.collInsts == nil {
		m.collInsts = map[string]int64{}
		m.collMsgs = map[string]int64{}
		m.collBytes = map[string]int64{}
	}
	m.collInsts[op] += instances
	m.collMsgs[op] += messages
	m.collBytes[op] += bytes
}

// CollInstances returns the per-op collective instance counts (a copy).
func (m *Metrics) CollInstances() map[string]int64 { return m.collSnapshot(&m.collInsts) }

// CollMessages returns the per-op collective message counts (a copy).
func (m *Metrics) CollMessages() map[string]int64 { return m.collSnapshot(&m.collMsgs) }

// CollBytes returns the per-op collective payload bytes (a copy).
func (m *Metrics) CollBytes() map[string]int64 { return m.collSnapshot(&m.collBytes) }

func (m *Metrics) collSnapshot(src *map[string]int64) map[string]int64 {
	m.collMu.Lock()
	defer m.collMu.Unlock()
	out := make(map[string]int64, len(*src))
	for k, v := range *src {
		out[k] = v
	}
	return out
}

// topoRun records one executed simulation on the named topology: the run
// itself, the messages its network log delivered, and its simulated time.
func (m *Metrics) topoRun(topology string, messages, simNS int64) {
	m.topoMu.Lock()
	defer m.topoMu.Unlock()
	if m.topoRuns == nil {
		m.topoRuns = map[string]int64{}
		m.topoMsgs = map[string]int64{}
		m.topoSimNS = map[string]int64{}
	}
	m.topoRuns[topology]++
	m.topoMsgs[topology] += messages
	m.topoSimNS[topology] += simNS
}

// TopoRuns returns the per-topology executed-run counts (a copy).
func (m *Metrics) TopoRuns() map[string]int64 { return m.topoSnapshot(&m.topoRuns) }

// TopoMessages returns the per-topology delivered-message counts (a copy).
func (m *Metrics) TopoMessages() map[string]int64 { return m.topoSnapshot(&m.topoMsgs) }

// TopoSimTimeNS returns the per-topology simulated time in ns (a copy).
func (m *Metrics) TopoSimTimeNS() map[string]int64 { return m.topoSnapshot(&m.topoSimNS) }

func (m *Metrics) topoSnapshot(src *map[string]int64) map[string]int64 {
	m.topoMu.Lock()
	defer m.topoMu.Unlock()
	out := make(map[string]int64, len(*src))
	for k, v := range *src {
		out[k] = v
	}
	return out
}

// Summary renders the counters as a report table: the pipeline's per-run
// summary of what executed, what was cached, and where the time went.
func (m *Metrics) Summary() *report.Table {
	t := &report.Table{
		Title:   "Pipeline summary",
		Columns: []string{"Counter", "Value"},
	}
	ms := func(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e6) }
	t.AddRow("runs executed", fmt.Sprintf("%d", m.Runs.Load()))
	t.AddRow("cache hits (memory)", fmt.Sprintf("%d", m.MemoryHits.Load()))
	t.AddRow("cache hits (disk)", fmt.Sprintf("%d", m.DiskHits.Load()))
	t.AddRow("dedup hits", fmt.Sprintf("%d", m.DedupHits.Load()))
	t.AddRow("faulted messages", fmt.Sprintf("%d", m.Faulted.Load()))
	t.AddRow("failed deliveries", fmt.Sprintf("%d", m.Failed.Load()))
	t.AddRow("total sim events", fmt.Sprintf("%d", m.SimEvents.Load()))
	t.AddRow("total sim time (ms)", ms(m.SimTimeNS.Load()))
	t.AddRow("acquire wall (ms)", ms(m.AcquireNS.Load()))
	t.AddRow("replay wall (ms)", ms(m.ReplayNS.Load()))
	t.AddRow("analyze wall (ms)", ms(m.AnalyzeNS.Load()))
	// Resilience counters appear only when something went wrong (or was
	// resumed), so the summary of a clean run is unchanged from older
	// versions and byte-stable across cold and warm cache states.
	if n := m.RemoteRuns.Load(); n > 0 {
		t.AddRow("remote runs", fmt.Sprintf("%d", n))
		t.AddRow("remote wall (ms)", ms(m.RemoteNS.Load()))
	}
	if n := m.StoreHits.Load(); n > 0 {
		t.AddRow("cache hits (store)", fmt.Sprintf("%d", n))
	}
	if n := m.StorePuts.Load(); n > 0 {
		t.AddRow("store uploads", fmt.Sprintf("%d", n))
	}
	if n := m.StoreErrors.Load(); n > 0 {
		t.AddRow("store errors", fmt.Sprintf("%d", n))
	}
	if n := m.StorePutErrors.Load(); n > 0 {
		t.AddRow("store upload errors", fmt.Sprintf("%d", n))
	}
	if n := m.DiskStoreErrors.Load(); n > 0 {
		t.AddRow("disk store errors", fmt.Sprintf("%d", n))
	}
	if n := m.Retries.Load(); n > 0 {
		t.AddRow("retries", fmt.Sprintf("%d", n))
	}
	if n := m.Panics.Load(); n > 0 {
		t.AddRow("worker panics", fmt.Sprintf("%d", n))
	}
	if n := m.Cancelled.Load(); n > 0 {
		t.AddRow("cancelled runs", fmt.Sprintf("%d", n))
	}
	if n := m.SpecFailures.Load(); n > 0 {
		t.AddRow("failed specs", fmt.Sprintf("%d", n))
	}
	if n := m.Resumed.Load(); n > 0 {
		t.AddRow("resumed specs", fmt.Sprintf("%d", n))
	}
	if n := m.JournalErrors.Load(); n > 0 {
		t.AddRow("journal errors", fmt.Sprintf("%d", n))
	}
	// Collective rows appear only when an executed run carried collective
	// traffic, keeping pre-collectives summaries byte-stable.
	if insts := m.CollInstances(); len(insts) > 0 {
		var total int64
		keys := make([]string, 0, len(insts))
		for k := range insts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			total += insts[k]
		}
		t.AddRow("collective instances", fmt.Sprintf("%d", total))
		t.AddRow("collective ops", strings.Join(keys, " "))
	}
	return t
}

// Render writes the summary table.
func (m *Metrics) Render(w io.Writer) { m.Summary().Render(w) }

// RegisterWith exposes every counter through an obs registry under the
// commchar_pipeline_* namespace (Prometheus on /metrics, JSON on /varz).
// The registrations read the live atomics at scrape time, so one Metrics
// shared by several engines exports one consistent view.
func (m *Metrics) RegisterWith(r *obs.Registry) {
	counter := func(name, help string, v *atomic.Int64) {
		r.CounterFunc("commchar_pipeline_"+name, help, v.Load)
	}
	counter("runs_total", "simulations actually executed", &m.Runs)
	counter("cache_hits_memory_total", "artifacts served from the in-memory cache", &m.MemoryHits)
	counter("cache_hits_disk_total", "artifacts served from the on-disk cache", &m.DiskHits)
	counter("dedup_hits_total", "callers that piggybacked on an identical in-flight run", &m.DedupHits)
	counter("faulted_messages_total", "delivered messages touched by injected faults", &m.Faulted)
	counter("failed_deliveries_total", "messages that were never delivered", &m.Failed)
	counter("sim_events_total", "simulation events fired across executed runs", &m.SimEvents)
	counter("sim_time_ns_total", "simulated time accumulated across executed runs", &m.SimTimeNS)
	counter("acquire_ns_total", "wall time spent in the acquire stage", &m.AcquireNS)
	counter("replay_ns_total", "wall time spent in the log (replay) stage", &m.ReplayNS)
	counter("analyze_ns_total", "wall time spent in the analyze stage", &m.AnalyzeNS)
	counter("remote_runs_total", "specs executed through the remote executor", &m.RemoteRuns)
	counter("remote_ns_total", "wall time spent waiting on remote executions", &m.RemoteNS)
	counter("cache_hits_store_total", "artifacts served from the shared remote store", &m.StoreHits)
	counter("store_puts_total", "artifacts uploaded to the shared remote store", &m.StorePuts)
	counter("store_errors_total", "store fetches that failed or decoded inconsistently", &m.StoreErrors)
	counter("store_put_errors_total", "best-effort store uploads that failed", &m.StorePutErrors)
	counter("disk_store_errors_total", "best-effort cache writes that failed", &m.DiskStoreErrors)
	counter("retries_total", "extra stage executions after transient failures", &m.Retries)
	counter("panics_total", "worker panics contained by the recovery boundary", &m.Panics)
	counter("cancelled_total", "runs stopped by cancellation or a deadline", &m.Cancelled)
	counter("spec_failures_total", "specs that produced no artifact", &m.SpecFailures)
	counter("resumed_total", "journaled specs recognized as already complete", &m.Resumed)
	counter("journal_errors_total", "best-effort journal appends that failed", &m.JournalErrors)
	r.CounterVecFunc("commchar_mesh_runs_total",
		"simulations executed per interconnect topology", "topology", m.TopoRuns)
	r.CounterVecFunc("commchar_mesh_messages_total",
		"network-log messages recorded per interconnect topology", "topology", m.TopoMessages)
	r.CounterVecFunc("commchar_mesh_sim_time_ns_total",
		"simulated time accumulated per interconnect topology", "topology", m.TopoSimTimeNS)
	r.CounterVecFunc("commchar_coll_instances_total",
		"collective instances characterized per op/algorithm", "op", m.CollInstances)
	r.CounterVecFunc("commchar_coll_messages_total",
		"collective messages attributed per op/algorithm", "op", m.CollMessages)
	r.CounterVecFunc("commchar_coll_bytes_total",
		"collective payload bytes attributed per op/algorithm", "op", m.CollBytes)
}
