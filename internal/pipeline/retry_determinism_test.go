package pipeline

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"commchar/internal/resilience"
)

// TestRetryScheduleDeterministicAcrossParallelism: with every spec
// failing transiently twice before succeeding, a -parallel=1 sweep and a
// -parallel=8 sweep must make exactly the same retry decisions (the
// jitter is seeded per spec key, not per goroutine) and produce
// identical artifacts. This is the determinism half of the retry
// machinery the distributed layer leans on.
func TestRetryScheduleDeterministicAcrossParallelism(t *testing.T) {
	specs := chaosSpecs("IS", "MG", "FFT", "CG", "LU", "Nbody")

	sweep := func(parallel int) ([]*Artifact, int64) {
		var mu sync.Mutex
		failures := map[string]int{}
		e := chaosEngine(t, Options{
			Parallel: parallel,
			Retry:    resilience.Policy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 50 * time.Microsecond, Multiplier: 2},
		}, nil)
		inner := e.runStages
		e.runStages = func(ctx context.Context, spec RunSpec, track string) (*stageResult, error) {
			mu.Lock()
			failures[spec.App]++
			n := failures[spec.App]
			mu.Unlock()
			if n <= 2 {
				return nil, resilience.MarkTransient(&flakyError{app: spec.App, attempt: n})
			}
			return inner(ctx, spec, track)
		}
		arts, err := e.RunAll(specs...)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return arts, e.Metrics().Retries.Load()
	}

	seqArts, seqRetries := sweep(1)
	parArts, parRetries := sweep(8)

	if wantRetries := int64(2 * len(specs)); seqRetries != wantRetries || parRetries != wantRetries {
		t.Fatalf("retries: sequential=%d parallel=%d, want %d both", seqRetries, parRetries, wantRetries)
	}
	for i := range specs {
		if !reflect.DeepEqual(seqArts[i].C, parArts[i].C) {
			t.Fatalf("spec %s: artifact differs between parallel=1 and parallel=8 under retries", specs[i].App)
		}
		if seqArts[i].Key != parArts[i].Key {
			t.Fatalf("spec %s: cache key differs across parallelism", specs[i].App)
		}
	}
}

// TestJitterSeedStableAcrossRuns: the per-spec jitter seed is a pure
// function of the cache key, so the same spec retries on the same
// schedule in every run of every process.
func TestJitterSeedStableAcrossRuns(t *testing.T) {
	for _, spec := range chaosSpecs("IS", "MG") {
		key, err := spec.Key("")
		if err != nil {
			t.Fatal(err)
		}
		a, b := jitterSeed(key), jitterSeed(key)
		if a != b {
			t.Fatalf("%s: jitterSeed not stable: %d vs %d", spec.App, a, b)
		}
		if a == 0 {
			t.Fatalf("%s: degenerate zero seed", spec.App)
		}
	}
	// Distinct keys give distinct schedules (with overwhelming probability
	// for these fixed inputs; pinned here so a regression to a constant
	// seed cannot hide).
	k1, _ := RunSpec{App: "IS", Procs: 4}.Key("")
	k2, _ := RunSpec{App: "MG", Procs: 4}.Key("")
	if jitterSeed(k1) == jitterSeed(k2) {
		t.Fatal("different specs share a jitter seed")
	}
}

// flakyError is a typed transient failure for the chaos stage stub.
type flakyError struct {
	app     string
	attempt int
}

func (e *flakyError) Error() string {
	return "synthetic transient failure " + e.app
}
