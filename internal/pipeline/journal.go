package pipeline

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Journal is the write-ahead sweep journal: one cache key per line,
// appended (and fsynced) the moment a spec's artifact lands. After a
// crash or an interrupt, reopening the journal in resume mode replays the
// recorded keys so finished work is recognized without re-simulation —
// the disk cache holds the artifacts, the journal holds the proof of
// completion.
//
// Appends are atomic at the filesystem level: each record is a single
// short write to an O_APPEND descriptor, well under PIPE_BUF, so
// concurrent workers never interleave partial lines. A torn final line
// from a crash mid-write is detected on open and truncated away.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[string]struct{}
}

// isKeyLine accepts exactly the journal's record shape: a lowercase-hex
// SHA-256 cache key. Anything else is damage and is discarded on open.
func isKeyLine(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// OpenJournal opens (creating if needed) the sweep journal at path. With
// resume true, previously recorded keys are loaded and reported by Done;
// otherwise the journal is truncated and the sweep starts fresh.
//
// Recovery is total over the file's contents: the longest prefix of
// complete, well-formed records is kept and everything after it — a torn
// final line from a crash mid-append, arbitrary corruption of any length,
// even a record-shaped line missing its newline (the append protocol
// always writes one, so its absence means the write was cut) — is
// truncated away. No journal contents can make resume fail; only a real
// I/O error can.
//lint:allow ctxflow opening the journal is one bounded open+scan of a local file; the sweep ctx governs the replay work, not this setup step
func OpenJournal(path string, resume bool) (*Journal, error) {
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pipeline: journal: %w", err)
	}
	j := &Journal{f: f, path: path, done: map[string]struct{}{}}
	if !resume {
		return j, nil
	}

	// Replay with a plain delimiter reader, not a Scanner: a Scanner
	// errors out on an over-long corrupt line, and recovery must never
	// error on damage.
	r := bufio.NewReader(f)
	valid := int64(0)
	for {
		rec, err := r.ReadString('\n')
		if err == io.EOF {
			// A record without its terminator is a torn tail, however
			// plausible its bytes look.
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("pipeline: journal: %w", err)
		}
		line := strings.TrimRight(rec, "\r\n")
		if !isKeyLine(line) {
			break
		}
		j.done[line] = struct{}{}
		valid += int64(len(rec))
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("pipeline: journal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("pipeline: journal: %w", err)
	}
	return j, nil
}

// Done reports whether key was recorded as completed (in this run or, in
// resume mode, a previous one).
func (j *Journal) Done(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[key]
	return ok
}

// Len returns the number of recorded keys.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Append records key as completed and syncs the record to disk. Appending
// an already recorded key is a no-op.
func (j *Journal) Append(key string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.done[key]; ok {
		return nil
	}
	if _, err := j.f.WriteString(key + "\n"); err != nil {
		return fmt.Errorf("pipeline: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("pipeline: journal: %w", err)
	}
	j.done[key] = struct{}{}
	return nil
}

// Close flushes and closes the journal file. The Journal must not be used
// afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
