package pipeline

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"commchar/internal/apps"
	"commchar/internal/ccnuma"
	"commchar/internal/core"
	"commchar/internal/fault"
	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/spasm"
)

// syntheticRaw builds a deterministic fake acquisition result: enough
// messages for the analyze stage to fit distributions, no simulator run.
func syntheticRaw(procs int) *core.RawRun {
	var log []mesh.Delivery
	t := sim.Time(0)
	id := int64(0)
	for i := 0; i < 60; i++ {
		t += sim.Time(500 + 137*(i%7))
		id++
		src := i % procs
		dst := (i + 1 + i%3) % procs
		if dst == src {
			dst = (dst + 1) % procs
		}
		log = append(log, mesh.Delivery{
			Message: mesh.Message{ID: id, Src: src, Dst: dst, Bytes: 32 + 8*(i%4), Inject: t},
			End:     t + 400,
			Latency: 400,
			Blocked: sim.Duration(10 * (i % 5)),
			Hops:    1 + i%3,
		})
	}
	return &RawRun{Procs: procs, Elapsed: t + 1000, MeanUtil: 0.125, Events: 4321, Log: log}
}

// RawRun is aliased locally so the helper reads naturally.
type RawRun = core.RawRun

// stubEngine returns an engine whose acquisition is replaced by a counter
// around syntheticRaw, so cache/dedup behavior is observable without
// simulation.
func stubEngine(t *testing.T, opts Options) (*Engine, *int) {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	var mu sync.Mutex
	e.runStages = func(ctx context.Context, spec RunSpec, track string) (*stageResult, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		st := ccnuma.Stats{Upgrades: 7, SilentUpgrades: 3}
		return &stageResult{
			raw:      syntheticRaw(spec.Procs),
			memStats: &st,
			profiles: []spasm.Profile{{Compute: 100, Memory: 20, Sync: 5, End: 125}},
			faultCounters: fault.Counters{
				Drops: 2, Corruptions: 1,
			},
		}, nil
	}
	return e, &calls
}

func TestKeyDistinguishesEveryField(t *testing.T) {
	base := RunSpec{App: "IS", Procs: 8, Scale: apps.ScaleSmall}
	variants := map[string]RunSpec{
		"app":      {App: "Nbody", Procs: 8, Scale: apps.ScaleSmall},
		"procs":    {App: "IS", Procs: 16, Scale: apps.ScaleSmall},
		"scale":    {App: "IS", Procs: 8, Scale: apps.ScaleFull},
		"cycle":    {App: "IS", Procs: 8, Scale: apps.ScaleSmall, CycleTime: 1 * sim.Nanosecond},
		"cache":    {App: "IS", Procs: 8, Scale: apps.ScaleSmall, CacheBytes: 8 << 10},
		"vcs":      {App: "IS", Procs: 8, Scale: apps.ScaleSmall, VirtualChannels: 4},
		"mesh":     {App: "IS", Procs: 8, Scale: apps.ScaleSmall, Width: 8, Height: 1},
		"barrier":  {App: "IS", Procs: 8, Scale: apps.ScaleSmall, Barrier: spasm.BarrierTree},
		"protocol": {App: "IS", Procs: 8, Scale: apps.ScaleSmall, Protocol: ccnuma.MESI},
		"routing":  {App: "IS", Procs: 8, Scale: apps.ScaleSmall, Routing: mesh.RoutingWestFirst},
		"faults":   {App: "IS", Procs: 8, Scale: apps.ScaleSmall, Faults: "drop:0.01"},
		"seed":     {App: "IS", Procs: 8, Scale: apps.ScaleSmall, Faults: "drop:0.01", FaultSeed: 9},
		"sp2":      {App: "IS", Procs: 8, Scale: apps.ScaleSmall, UseSP2: true},
	}
	baseKey, err := base.Key("")
	if err != nil {
		t.Fatal(err)
	}
	again, _ := base.Key("")
	if baseKey != again {
		t.Fatal("key not deterministic")
	}
	seen := map[string]string{"base": baseKey}
	for name, v := range variants {
		k, err := v.Key("")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for prev, pk := range seen {
			if k == pk {
				t.Fatalf("variant %q collides with %q", name, prev)
			}
		}
		seen[name] = k
	}
	salted, err := base.Key("other-code-version")
	if err != nil {
		t.Fatal(err)
	}
	if salted == baseKey {
		t.Fatal("salt does not change the key")
	}
}

func TestKeyIgnoresWatchdog(t *testing.T) {
	a := RunSpec{App: "IS", Procs: 8}
	b := a
	b.Watchdog = sim.Watchdog{MaxEvents: 5}
	ka, _ := a.Key("")
	kb, _ := b.Key("")
	if ka != kb {
		t.Fatal("watchdog must not be part of the cache key (failed runs are never cached)")
	}
}

func TestValidateRejectsMalformedSpecs(t *testing.T) {
	bad := []RunSpec{
		{Procs: 8},                                 // neither App nor Trace
		{App: "IS", Procs: 1},                      // too few processors
		{App: "IS", Procs: 8, Width: 4},            // width without height
		{App: "IS", Procs: 8, Width: 2, Height: 2}, // mesh too small
	}
	for i, spec := range bad {
		if _, err := NewDefault().Run(spec); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestMemoryCacheHit(t *testing.T) {
	e, calls := stubEngine(t, Options{Parallel: 2})
	spec := RunSpec{App: "IS", Procs: 4, Scale: apps.ScaleSmall}
	a, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != SourceRun {
		t.Fatalf("first run source = %q", a.Source)
	}
	b, err := e.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second run did not hit the in-memory cache")
	}
	if *calls != 1 {
		t.Fatalf("acquisition ran %d times", *calls)
	}
	if got := e.Metrics().MemoryHits.Load(); got != 1 {
		t.Fatalf("MemoryHits = %d", got)
	}
}

func TestConcurrentIdenticalSpecsDeduplicate(t *testing.T) {
	e, err := New(Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	var mu sync.Mutex
	e.runStages = func(ctx context.Context, spec RunSpec, track string) (*stageResult, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		close(started)
		<-release
		return &stageResult{raw: syntheticRaw(spec.Procs)}, nil
	}

	spec := RunSpec{App: "IS", Procs: 4, Scale: apps.ScaleSmall}
	const waiters = 5
	arts := make([]*Artifact, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		arts[0], _ = e.Run(spec)
	}()
	<-started // the leader is inside the stub, holding the in-flight slot
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i], _ = e.Run(spec)
		}(i)
	}
	// Wait until every follower has registered as a dedup hit (each
	// increments the counter before blocking on the leader's completion).
	for deadline := time.Now().Add(10 * time.Second); ; {
		if e.Metrics().DedupHits.Load() == waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dedup hits = %d, want %d", e.Metrics().DedupHits.Load(), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("acquisition ran %d times for %d concurrent identical specs", calls, waiters+1)
	}
	for i, a := range arts {
		if a == nil || a != arts[0] {
			t.Fatalf("caller %d got a different artifact", i)
		}
	}
}

func TestRunAllPreservesOrder(t *testing.T) {
	e, _ := stubEngine(t, Options{Parallel: 4})
	specs := []RunSpec{
		{App: "IS", Procs: 4, Scale: apps.ScaleSmall},
		{App: "Nbody", Procs: 4, Scale: apps.ScaleSmall},
		{App: "IS", Procs: 8, Scale: apps.ScaleSmall},
	}
	arts, err := e.RunAll(specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arts {
		if a.Spec.App != specs[i].App || a.Spec.Procs != specs[i].Procs {
			t.Fatalf("slot %d holds %s/%d", i, a.Spec.App, a.Spec.Procs)
		}
	}
}

// sameCharacterization compares two characterizations for deep equality,
// diffing the trace (by CSV content) separately from the analyzed fields.
func sameCharacterization(t *testing.T, fresh, cached *core.Characterization) {
	t.Helper()
	if (fresh.Trace == nil) != (cached.Trace == nil) {
		t.Fatal("trace presence differs between fresh and cached artifacts")
	}
	if fresh.Trace != nil {
		var a, b bytes.Buffer
		if err := fresh.Trace.WriteCSV(&a); err != nil {
			t.Fatal(err)
		}
		if err := cached.Trace.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("cached trace differs from the fresh one")
		}
	}
	f, c := *fresh, *cached
	f.Trace, c.Trace = nil, nil
	if !reflect.DeepEqual(&f, &c) {
		t.Fatalf("cached characterization differs from fresh:\nfresh:  %+v\ncached: %+v", f, c)
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := RunSpec{App: "IS", Procs: 4, Scale: apps.ScaleSmall}

	e1, calls1 := stubEngine(t, Options{Parallel: 1, CacheDir: dir})
	fresh, err := e1.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Source != SourceRun || *calls1 != 1 {
		t.Fatalf("cold run: source=%q calls=%d", fresh.Source, *calls1)
	}

	// A second engine on the same directory must serve the artifact from
	// disk without touching the acquisition stage.
	e2, calls2 := stubEngine(t, Options{Parallel: 1, CacheDir: dir})
	cached, err := e2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Source != SourceDisk {
		t.Fatalf("warm run source = %q", cached.Source)
	}
	if *calls2 != 0 {
		t.Fatalf("warm run executed the acquisition stage %d times", *calls2)
	}
	if got := e2.Metrics().DiskHits.Load(); got != 1 {
		t.Fatalf("DiskHits = %d", got)
	}

	sameCharacterization(t, fresh.C, cached.C)
	if !reflect.DeepEqual(fresh.MemStats, cached.MemStats) {
		t.Fatalf("MemStats: fresh %+v cached %+v", fresh.MemStats, cached.MemStats)
	}
	if !reflect.DeepEqual(fresh.Profiles, cached.Profiles) {
		t.Fatalf("Profiles: fresh %+v cached %+v", fresh.Profiles, cached.Profiles)
	}
	if !reflect.DeepEqual(fresh.FaultCounters, cached.FaultCounters) {
		t.Fatalf("FaultCounters: fresh %+v cached %+v", fresh.FaultCounters, cached.FaultCounters)
	}
	if fresh.Key != cached.Key {
		t.Fatalf("keys differ: %s vs %s", fresh.Key, cached.Key)
	}
}

// TestDiskCacheRoundTripReal exercises the disk cache with a genuine
// simulation per strategy — dynamic (Nbody) and static (3D-FFT, which
// carries an application trace) — asserting the cached artifact is
// bit-identical to the fresh one.
func TestDiskCacheRoundTripReal(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	for _, app := range []string{"Nbody", "3D-FFT"} {
		t.Run(app, func(t *testing.T) {
			dir := t.TempDir()
			spec := RunSpec{App: app, Procs: 4, Scale: apps.ScaleSmall}
			e1, err := New(Options{Parallel: 1, CacheDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := e1.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if fresh.Source != SourceRun {
				t.Fatalf("cold source = %q", fresh.Source)
			}
			e2, err := New(Options{Parallel: 1, CacheDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			cached, err := e2.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if cached.Source != SourceDisk {
				t.Fatalf("warm source = %q (runs=%d)", cached.Source, e2.Metrics().Runs.Load())
			}
			sameCharacterization(t, fresh.C, cached.C)
		})
	}
}

func TestDiskCacheCorruptionFallsBackToRun(t *testing.T) {
	dir := t.TempDir()
	spec := RunSpec{App: "IS", Procs: 4, Scale: apps.ScaleSmall}
	e1, _ := stubEngine(t, Options{Parallel: 1, CacheDir: dir})
	art, err := e1.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the stored delivery log mid-record: loading must detect the
	// damage (trace.TruncatedError / count mismatch) and report a miss.
	logPath := filepath.Join(dir, art.Key[:2], art.Key, "log.csv")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	e2, calls2 := stubEngine(t, Options{Parallel: 1, CacheDir: dir})
	again, err := e2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != SourceRun {
		t.Fatalf("corrupt entry served from %q", again.Source)
	}
	if *calls2 != 1 {
		t.Fatalf("fallback executed %d runs", *calls2)
	}
	if e2.Metrics().DiskHits.Load() != 0 {
		t.Fatal("corrupt entry counted as a disk hit")
	}

	// The fallback run re-stores a good entry; a third engine hits it.
	e3, calls3 := stubEngine(t, Options{Parallel: 1, CacheDir: dir})
	healed, err := e3.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Source != SourceDisk || *calls3 != 0 {
		t.Fatalf("repaired entry not served from disk (source=%q calls=%d)", healed.Source, *calls3)
	}
}

func TestDiskCacheMetaCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	spec := RunSpec{App: "IS", Procs: 4, Scale: apps.ScaleSmall}
	e1, _ := stubEngine(t, Options{Parallel: 1, CacheDir: dir})
	art, err := e1.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	metaPath := filepath.Join(dir, art.Key[:2], art.Key, "meta.json")
	if err := os.WriteFile(metaPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2, calls2 := stubEngine(t, Options{Parallel: 1, CacheDir: dir})
	again, err := e2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != SourceRun || *calls2 != 1 {
		t.Fatalf("corrupt meta served from %q (calls=%d)", again.Source, *calls2)
	}
}

func TestSaltInvalidatesDiskCache(t *testing.T) {
	dir := t.TempDir()
	spec := RunSpec{App: "IS", Procs: 4, Scale: apps.ScaleSmall}
	e1, _ := stubEngine(t, Options{Parallel: 1, CacheDir: dir, Salt: "code-v1"})
	if _, err := e1.Run(spec); err != nil {
		t.Fatal(err)
	}

	// Same directory, same spec, new code-version salt: the old entry must
	// not be visible.
	e2, calls2 := stubEngine(t, Options{Parallel: 1, CacheDir: dir, Salt: "code-v2"})
	art, err := e2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if art.Source != SourceRun || *calls2 != 1 {
		t.Fatalf("stale-salt entry served from %q (calls=%d)", art.Source, *calls2)
	}

	// And the original salt still hits its own entry.
	e3, calls3 := stubEngine(t, Options{Parallel: 1, CacheDir: dir, Salt: "code-v1"})
	art, err = e3.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if art.Source != SourceDisk || *calls3 != 0 {
		t.Fatalf("original salt missed its entry (source=%q calls=%d)", art.Source, *calls3)
	}
}
