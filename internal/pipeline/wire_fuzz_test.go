package pipeline

import (
	"encoding/json"
	"reflect"
	"testing"

	"commchar/internal/apps"
	"commchar/internal/ccnuma"
	"commchar/internal/core"
	"commchar/internal/fault"
	"commchar/internal/mesh"
	"commchar/internal/spasm"
)

// wireFuzzArtifact is a small but fully populated artifact: a real
// delivery log, coherence stats, profiles, and fault counters, so the
// seed corpus covers every field the codec serializes.
func wireFuzzArtifact() *Artifact {
	log := []mesh.Delivery{
		{Message: mesh.Message{ID: 1, Src: 0, Dst: 1, Bytes: 64, Inject: 10}, End: 30, Latency: 20, Blocked: 0, Hops: 1},
		{Message: mesh.Message{ID: 2, Src: 1, Dst: 0, Bytes: 128, Inject: 40}, End: 90, Latency: 50, Blocked: 5, Hops: 2},
	}
	return &Artifact{
		C: &core.Characterization{
			Name: "FZ", Strategy: core.StrategyDynamic, Procs: 2,
			Messages: len(log), TotalBytes: 192, Elapsed: 90,
			Log: log,
		},
		MemStats:      &ccnuma.Stats{Upgrades: 7, SilentUpgrades: 3},
		Profiles:      []spasm.Profile{{Compute: 100, Memory: 20, Sync: 5, End: 125}},
		Failures:      []string{"msg 9: dropped"},
		FaultCounters: fault.Counters{Drops: 2, Corruptions: 1},
	}
}

// FuzzUnmarshalArtifact throws arbitrary bytes at the dist wire codec's
// decode path and asserts its contract: UnmarshalArtifact never panics
// and never returns a partial decode — every truncated, corrupt, or
// version-skewed payload is an error, and every accepted payload decodes
// to an artifact that re-marshals and round-trips stably. This is the
// codec-side mirror of FuzzJournalRecovery: the journal guards the
// coordinator's resume path, this guards the worker→coordinator and
// blob-store transfer path.
func FuzzUnmarshalArtifact(f *testing.F) {
	valid, err := MarshalArtifact(wireFuzzArtifact())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-JSON
	f.Add(valid[:17])           // truncated in the header
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20 // one damaged byte
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte(`{}`))             // decodes, but no characterization
	f.Add([]byte(`{"Meta":{}}`))    // metadata present, C still nil
	f.Add([]byte(`{"Meta":null}`))  //
	f.Add([]byte("\x00\xff\x00\n")) // binary garbage

	// Version-skew shapes built in-package: a delivery count that
	// disagrees with the log, and a trace promised but not shipped.
	skew := func(mutate func(w *wireArtifact)) []byte {
		var w wireArtifact
		if err := json.Unmarshal(valid, &w); err != nil {
			f.Fatal(err)
		}
		mutate(&w)
		data, err := json.Marshal(w)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(skew(func(w *wireArtifact) { w.Meta.Messages++ }))
	f.Add(skew(func(w *wireArtifact) { w.Meta.HasTrace = true }))
	f.Add(skew(func(w *wireArtifact) { w.LogCSV = w.LogCSV[:len(w.LogCSV)-3] }))
	f.Add(skew(func(w *wireArtifact) { w.LogCSV = nil; w.Meta.Messages = 0 }))

	spec := RunSpec{App: "FZ", Procs: 2, Scale: apps.ScaleSmall}
	key := testKey(0)
	f.Fuzz(func(t *testing.T, data []byte) {
		art, err := UnmarshalArtifact(data, spec, key)
		if err != nil {
			if art != nil {
				t.Fatal("error with non-nil artifact: a failed decode must not leak a partial artifact")
			}
			return
		}
		// Accepted payloads must be internally consistent and must
		// round-trip: re-marshal succeeds and a second decode agrees
		// with the first, so a relayed blob (worker → coordinator →
		// another worker's store fetch) cannot drift.
		if art.C == nil {
			t.Fatal("accepted artifact has no characterization")
		}
		if !reflect.DeepEqual(art.Spec, spec) || art.Key != key {
			t.Fatalf("spec/key not taken from the caller: %+v %q", art.Spec, art.Key)
		}
		again, err := MarshalArtifact(art)
		if err != nil {
			t.Fatalf("accepted artifact does not re-marshal: %v", err)
		}
		art2, err := UnmarshalArtifact(again, spec, key)
		if err != nil {
			t.Fatalf("re-marshaled artifact does not decode: %v", err)
		}
		if !reflect.DeepEqual(art, art2) {
			t.Fatal("decode → marshal → decode is not a fixed point")
		}
	})
}
