package pipeline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"commchar/internal/ccnuma"
	"commchar/internal/core"
	"commchar/internal/fault"
	"commchar/internal/spasm"
	"commchar/internal/trace"
)

// diskCache is the content-addressed on-disk artifact store. Each entry is
// a directory named by the spec's canonical key holding
//
//	meta.json   the serialized characterization, machine stats, and
//	            integrity counts
//	log.csv     the network delivery log (trace.WriteDeliveries format)
//	trace.csv   the application trace (static strategy only)
//
// The characterization is stored in full — distribution fits included, via
// the family-tagged codec in internal/stats — so a warm load skips both
// the simulate and the analyze stage. Only the bulky row data (the
// delivery log and the application trace) lives outside the JSON, in the
// CSV sidecars, and is rehydrated on load. A corrupt entry (unreadable
// meta, truncated log, mismatched counts) reads as a miss and the run
// falls back to simulation.
type diskCache struct {
	dir string
}

// entryMeta is the JSON body of one cache entry.
type entryMeta struct {
	// C is the characterization with Log and Trace stripped; they are
	// rehydrated from the CSV sidecars.
	C *core.Characterization
	// Messages is the delivery count; a salvaged (truncated) log that
	// parses short is rejected against it.
	Messages int
	HasTrace bool

	MemStats      *ccnuma.Stats   `json:",omitempty"`
	Profiles      []spasm.Profile `json:",omitempty"`
	Failures      []string        `json:",omitempty"`
	FaultCounters fault.Counters
}

func newDiskCache(dir string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

// path returns the entry directory for a key, sharded by its first byte.
func (d *diskCache) path(key string) string {
	return filepath.Join(d.dir, key[:2], key)
}

// load reads an entry and rehydrates its characterization. Any
// inconsistency — missing files, truncated or malformed CSV, counts that
// do not match the metadata — reports a miss.
func (d *diskCache) load(key string, spec RunSpec) (*Artifact, bool) {
	dir := d.path(key)
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, false
	}
	var meta entryMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil || meta.C == nil {
		return nil, false
	}

	lf, err := os.Open(filepath.Join(dir, "log.csv"))
	if err != nil {
		return nil, false
	}
	log, err := trace.ReadDeliveries(lf)
	lf.Close()
	// A *trace.TruncatedError would salvage a prefix, but a partial log is
	// not the run the characterization describes: reject and re-run.
	if err != nil || len(log) != meta.Messages {
		return nil, false
	}

	c := meta.C
	c.Log = log
	if meta.HasTrace {
		tf, err := os.Open(filepath.Join(dir, "trace.csv"))
		if err != nil {
			return nil, false
		}
		tr, err := trace.ReadCSV(tf, c.Procs)
		tf.Close()
		if err != nil {
			return nil, false
		}
		c.Trace = tr
	}

	return &Artifact{
		Spec:          spec,
		Key:           key,
		C:             c,
		MemStats:      meta.MemStats,
		Profiles:      meta.Profiles,
		Failures:      meta.Failures,
		FaultCounters: meta.FaultCounters,
		Source:        SourceDisk,
	}, true
}

// store writes an entry atomically: into a temp directory first, then one
// rename. A concurrent writer of the same key wins harmlessly — the
// loser's temp directory is discarded.
func (d *diskCache) store(key string, art *Artifact) error {
	tmp, err := os.MkdirTemp(d.dir, "tmp-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	slim := *art.C
	slim.Log, slim.Trace = nil, nil
	meta := entryMeta{
		C:             &slim,
		Messages:      len(art.C.Log),
		HasTrace:      art.C.Trace != nil,
		MemStats:      art.MemStats,
		Profiles:      art.Profiles,
		Failures:      art.Failures,
		FaultCounters: art.FaultCounters,
	}
	metaBytes, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(tmp, "meta.json"), metaBytes, 0o644); err != nil {
		return err
	}

	lf, err := os.Create(filepath.Join(tmp, "log.csv"))
	if err != nil {
		return err
	}
	if err := trace.WriteDeliveries(lf, art.C.Log); err != nil {
		lf.Close()
		return err
	}
	if err := lf.Close(); err != nil {
		return err
	}

	if art.C.Trace != nil {
		tf, err := os.Create(filepath.Join(tmp, "trace.csv"))
		if err != nil {
			return err
		}
		if err := art.C.Trace.WriteCSV(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
	}

	final := d.path(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return err
	}
	// Publishing can collide: two engines (or two processes) may finish the
	// same key together, and rename-onto-a-nonempty-directory fails on
	// every platform. Two writers of one key hold bit-identical artifacts,
	// so whoever lands a readable entry wins; the loser only has to notice.
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if err := os.Rename(tmp, final); err == nil {
			return nil
		} else {
			lastErr = err
		}
		if _, ok := d.load(key, art.Spec); ok {
			// A concurrent writer published an intact entry; ours is
			// redundant, not lost.
			return nil
		}
		// The existing entry is corrupt (or a racer is mid-replace):
		// clear it and retry the publish.
		if err := os.RemoveAll(final); err != nil {
			return err
		}
	}
	return fmt.Errorf("pipeline: cache store %s: %w", key[:12], lastErr)
}
