package pipeline

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testKey(i int) string {
	return fmt.Sprintf("%064x", 0xabc0+i)
}

func TestJournalAppendAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(testKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate appends are no-ops.
	if err := j.Append(testKey(1)); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("Len = %d", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 3 {
		t.Fatalf("resumed Len = %d", r.Len())
	}
	for i := 0; i < 3; i++ {
		if !r.Done(testKey(i)) {
			t.Fatalf("key %d lost on resume", i)
		}
	}
	if r.Done(testKey(9)) {
		t.Fatal("unknown key reported done")
	}
}

func TestJournalFreshOpenTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _ := OpenJournal(path, false)
	j.Append(testKey(0))
	j.Close()

	fresh, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.Len() != 0 || fresh.Done(testKey(0)) {
		t.Fatal("non-resume open kept old records")
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _ := OpenJournal(path, false)
	j.Append(testKey(0))
	j.Append(testKey(1))
	j.Close()

	// Simulate a crash mid-append: a torn, partial record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(testKey(2)[:17]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("resumed Len = %d, want 2 (torn tail dropped)", r.Len())
	}
	// The file is truncated back to a clean boundary, so the next append
	// lands intact.
	if err := r.Append(testKey(3)); err != nil {
		t.Fatal(err)
	}
	r.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines after heal: %q", len(lines), lines)
	}
	for _, l := range lines {
		if !isKeyLine(l) {
			t.Fatalf("malformed line survived: %q", l)
		}
	}
}

func TestJournalRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	content := testKey(0) + "\nnot a key at all\n" + testKey(1) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Replay stops at the first damaged line; everything after is suspect
	// and dropped (the runs re-execute harmlessly).
	if r.Len() != 1 || !r.Done(testKey(0)) || r.Done(testKey(1)) {
		t.Fatalf("garbage handling: Len=%d", r.Len())
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append(testKey(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()

	r, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != n {
		t.Fatalf("resumed Len = %d, want %d", r.Len(), n)
	}
}
