package pipeline

import (
	"context"
)

// A CacheStore is a shared, remote artifact cache: a content-addressed
// blob store keyed by the spec's cache key, holding wire-codec
// serializations (MarshalArtifact). Where the disk cache makes warm hits
// per-process, a CacheStore makes them fleet-wide — one worker's finished
// run becomes every worker's warm hit (see dist.HTTPStore, backed by the
// coordinator's /v1/blob/{key} endpoint).
//
// The store is strictly best-effort. The engine reads through it after a
// disk miss and writes behind it after a fresh run, but never depends on
// it: an unreachable, slow, or corrupt store degrades the run to the
// local path (counted and flight-recorded, not failed). Implementations
// are expected to swallow transport-level failures the same way —
// returning ok=false rather than an error — and to guard themselves with
// a circuit breaker so a dead store costs a nil check, not a connect
// timeout per spec. Any error that does escape is still treated as a
// miss.
type CacheStore interface {
	// Get fetches the blob for key; ok reports a verified hit. A miss,
	// an unreachable store, and a failed integrity check are all
	// (false, nil); err is reserved for failures worth surfacing in
	// metrics beyond the store's own.
	Get(ctx context.Context, key string) (data []byte, ok bool, err error)
	// Put uploads the blob for key. Best-effort: the engine calls it
	// write-behind (asynchronously) and only counts errors.
	Put(ctx context.Context, key string, data []byte) error
}

// storeGet reads through the shared store after a disk miss: on a
// verified hit the blob is decoded, persisted into the local disk cache
// (so the next hit is local), and served as the artifact. Every failure
// mode — miss, degraded store, undecodable blob — returns (nil, false)
// and the caller falls back to executing the spec.
func (e *Engine) storeGet(ctx context.Context, spec RunSpec, key, track string) (*Artifact, bool) {
	if e.store == nil {
		return nil, false
	}
	ssp := e.obs.StartSpan("engine", track, "cache", "store-lookup")
	data, ok, err := e.store.Get(ctx, key)
	ssp.End()
	if err != nil {
		e.metrics.StoreErrors.Add(1)
		e.obs.Emit("store.error", map[string]string{"spec": track, "err": err.Error()})
		return nil, false
	}
	if !ok {
		return nil, false
	}
	art, err := UnmarshalArtifact(data, spec, key)
	if err != nil {
		// The transport hash matched, so the blob decodes-but-disagrees:
		// a version-skewed or internally inconsistent serialization.
		// Degrade to a local run; never trust a partial decode.
		e.metrics.StoreErrors.Add(1)
		e.obs.Emit("store.corrupt", map[string]string{"spec": track, "err": err.Error()})
		return nil, false
	}
	art.Source = SourceStore
	e.metrics.StoreHits.Add(1)
	e.obs.Instant("engine", track, "cache", "store-hit", nil)
	e.obs.Emit("cache.hit", map[string]string{"spec": track, "level": "store"})
	if e.disk != nil {
		if serr := e.disk.store(key, art); serr != nil {
			e.metrics.DiskStoreErrors.Add(1)
		}
	}
	return art, true
}

// storePut writes a freshly executed artifact behind to the shared
// store, asynchronously: the run's caller never waits on the upload, and
// a failed upload costs a counter, not the sweep. Close drains the
// in-flight uploads.
func (e *Engine) storePut(spec RunSpec, key, track string, art *Artifact) {
	if e.store == nil {
		return
	}
	data, err := MarshalArtifact(art)
	if err != nil {
		e.metrics.StorePutErrors.Add(1)
		e.obs.Emit("store.put.error", map[string]string{"spec": track, "err": err.Error()})
		return
	}
	e.storeWG.Add(1)
	go func() {
		defer e.storeWG.Done()
		// The upload outlives the run's context on purpose: the artifact
		// is already safe locally, and cancelling a write-behind because
		// its spec finished would starve the fleet of exactly the blobs
		// it wants. Close drains this WaitGroup, bounding the detachment.
		//lint:allow ctxflow write-behind uploads deliberately outlive the run ctx; Close drains them
		if err := e.store.Put(context.Background(), key, data); err != nil {
			e.metrics.StorePutErrors.Add(1)
			e.obs.Emit("store.put.error", map[string]string{"spec": track, "err": err.Error()})
			return
		}
		e.metrics.StorePuts.Add(1)
	}()
}
