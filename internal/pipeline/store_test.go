package pipeline

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"commchar/internal/apps"
)

// fakeStore is an in-memory CacheStore with scriptable failure modes.
type fakeStore struct {
	mu      sync.Mutex
	blobs   map[string][]byte
	gets    int
	puts    int
	getErr  error
	putErr  error
	corrupt bool
}

func newFakeStore() *fakeStore { return &fakeStore{blobs: map[string][]byte{}} }

func (s *fakeStore) Get(ctx context.Context, key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	if s.getErr != nil {
		return nil, false, s.getErr
	}
	data, ok := s.blobs[key]
	if !ok {
		return nil, false, nil
	}
	if s.corrupt {
		return []byte(`{"Meta":{}}`), true, nil
	}
	return data, true, nil
}

func (s *fakeStore) Put(ctx context.Context, key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.putErr != nil {
		return s.putErr
	}
	s.blobs[key] = append([]byte(nil), data...)
	return nil
}

func storeSpec() RunSpec { return RunSpec{App: "IS", Procs: 4, Scale: apps.ScaleSmall} }

// TestStoreWriteBehindThenReadThrough proves the fleet-sharing round trip:
// one engine's fresh run is uploaded write-behind, and a second engine
// with a cold local cache serves the same spec from the store — zero
// simulations — with a byte-identical artifact, persisted into its own
// disk cache for next time.
func TestStoreWriteBehindThenReadThrough(t *testing.T) {
	store := newFakeStore()

	e1, calls1 := stubEngine(t, Options{CacheDir: t.TempDir(), Store: store})
	ref, err := e1.Run(storeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil { // drains the write-behind
		t.Fatal(err)
	}
	if *calls1 != 1 {
		t.Fatalf("first engine executed %d runs, want 1", *calls1)
	}
	if got := e1.Metrics().StorePuts.Load(); got != 1 {
		t.Fatalf("store puts = %d, want 1", got)
	}
	if len(store.blobs) != 1 {
		t.Fatalf("store holds %d blobs, want 1", len(store.blobs))
	}

	cache2 := t.TempDir()
	e2, calls2 := stubEngine(t, Options{CacheDir: cache2, Store: store})
	art, err := e2.Run(storeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if *calls2 != 0 {
		t.Fatalf("second engine executed %d runs, want 0 (store hit)", *calls2)
	}
	if art.Source != SourceStore {
		t.Fatalf("source = %q, want %q", art.Source, SourceStore)
	}
	if got := e2.Metrics().StoreHits.Load(); got != 1 {
		t.Fatalf("store hits = %d, want 1", got)
	}
	want := *ref
	want.Source = SourceStore
	got := *art
	if !reflect.DeepEqual(got.C, want.C) || !reflect.DeepEqual(got.MemStats, want.MemStats) ||
		!reflect.DeepEqual(got.Profiles, want.Profiles) || got.FaultCounters != want.FaultCounters {
		t.Fatal("store round trip did not reproduce the artifact")
	}

	// The store hit was persisted locally: a third engine on the same
	// cache dir but with no store serves it from disk.
	e3, calls3 := stubEngine(t, Options{CacheDir: cache2})
	a3, err := e3.Run(storeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if *calls3 != 0 || a3.Source != SourceDisk {
		t.Fatalf("third engine: calls=%d source=%q, want 0/disk", *calls3, a3.Source)
	}
}

// TestStoreDegradationFallsBackToRun proves graceful degradation: a store
// that errors on every operation costs counters, never the sweep.
func TestStoreDegradationFallsBackToRun(t *testing.T) {
	store := newFakeStore()
	store.getErr = errors.New("store unreachable")
	store.putErr = errors.New("store unreachable")

	e, calls := stubEngine(t, Options{CacheDir: t.TempDir(), Store: store})
	art, err := e.Run(storeSpec())
	if err != nil {
		t.Fatalf("degraded store failed the run: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if *calls != 1 || art.Source != SourceRun {
		t.Fatalf("calls=%d source=%q, want 1/run", *calls, art.Source)
	}
	if got := e.Metrics().StoreErrors.Load(); got != 1 {
		t.Fatalf("store errors = %d, want 1", got)
	}
	if got := e.Metrics().StorePutErrors.Load(); got != 1 {
		t.Fatalf("store put errors = %d, want 1", got)
	}
	if got := e.Metrics().StoreHits.Load(); got != 0 {
		t.Fatalf("store hits = %d, want 0", got)
	}
}

// TestStoreCorruptBlobFallsBackToRun proves a blob that decodes
// inconsistently is treated as a miss, not trusted and not fatal.
func TestStoreCorruptBlobFallsBackToRun(t *testing.T) {
	store := newFakeStore()

	seed, _ := stubEngine(t, Options{Store: store})
	if _, err := seed.Run(storeSpec()); err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	store.corrupt = true

	e, calls := stubEngine(t, Options{Store: store})
	art, err := e.Run(storeSpec())
	if err != nil {
		t.Fatalf("corrupt store blob failed the run: %v", err)
	}
	if *calls != 1 || art.Source != SourceRun {
		t.Fatalf("calls=%d source=%q, want 1/run", *calls, art.Source)
	}
	if got := e.Metrics().StoreErrors.Load(); got != 1 {
		t.Fatalf("store errors = %d, want 1", got)
	}
}
