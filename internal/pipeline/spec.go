package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"time"

	"commchar/internal/apps"
	"commchar/internal/ccnuma"
	"commchar/internal/cli"
	"commchar/internal/core"
	"commchar/internal/mesh"
	"commchar/internal/mp"
	"commchar/internal/sim"
	"commchar/internal/spasm"
	"commchar/internal/trace"
)

// DefaultSalt is the code-version component of every cache key. Bump it
// whenever a change to the simulators or the analysis alters what a spec
// produces, so stale on-disk artifacts invalidate themselves.
const DefaultSalt = "commchar-pipeline-v2"

// RunSpec names one characterization run: which application (or trace) to
// acquire, on how many processors, at what scale, and under which machine
// configuration. Two specs with equal canonical keys produce bit-identical
// artifacts, which is what makes the run cacheable and deduplicatable.
//
// Zero-valued override fields mean "package default"; the defaults are
// part of the key, so changing an override never aliases a cached run.
type RunSpec struct {
	// App names a workload of the suite (see internal/apps). Mutually
	// exclusive with Trace.
	App   string
	Procs int
	Scale apps.Scale

	// Name labels the run in reports; defaults to App (or "trace").
	Name string

	// Machine overrides. Zero values select the package defaults.
	CycleTime       sim.Duration          // mesh flit-cycle time
	CacheBytes      int                   // per-processor cache capacity
	VirtualChannels int                   // lanes per physical link
	Width, Height   int                   // mesh geometry (both or neither)
	Barrier         spasm.BarrierKind     // barrier algorithm (dynamic strategy)
	Protocol        ccnuma.Protocol       // coherence protocol (dynamic strategy)
	Routing         mesh.RoutingAlgorithm // mesh routing algorithm

	// Topology selects the interconnect fabric by name (see
	// core.TopologyFor): "mesh" (the default when empty), "torus",
	// "torus3d", "torus4d", "hypercube", "fattree", or "dragonfly". Dims,
	// when non-nil, pins the fabric's shape instead of deriving the
	// smallest instance that fits Procs: per-dimension sizes for
	// mesh/torus*, [d] for a hypercube, [arity, levels] for a fat tree,
	// [routers, globals] for a dragonfly. The zero values select the
	// historical 2-D mesh and render nothing into the spec string, so
	// existing cache keys and journals stay valid.
	Topology string
	Dims     []int

	// Collectives selects the collective algorithm family of the static
	// strategy's native execution by name (see mp.AlgorithmNames):
	// "linear" (the default when empty) or "binomial". The zero value
	// renders nothing into the spec string, so existing cache keys and
	// journals stay valid.
	Collectives string

	// Fault injection: a deterministic schedule (see internal/fault) and
	// its seed. Empty means a fault-free run.
	Faults    string
	FaultSeed uint64

	// Trace switches acquisition to trace replay: the trace is replayed
	// through the mesh instead of executing an application. The cache key
	// covers the full trace content.
	Trace *trace.Trace
	// UseSP2 charges IBM SP2 software overheads during trace replay.
	UseSP2 bool

	// Watchdog bounds the run (trace replay only). It is not part of the
	// cache key: a tripped watchdog fails the run, and failed runs are
	// never cached.
	Watchdog sim.Watchdog

	// Timeout bounds the run's wall time, overriding the engine's
	// SpecTimeout; 0 defers to the engine. Like Watchdog it is not part
	// of the cache key: a timed-out run fails, and failed runs are never
	// cached.
	Timeout time.Duration
}

// Label returns the run's display name.
func (s RunSpec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	if s.App != "" {
		return s.App
	}
	return "trace"
}

// validate rejects malformed specs before any simulation runs.
// Topology-invalid specs — unknown fabric name, a shape too small for
// Procs, a lane count below the fabric's deadlock-freedom floor — are
// usage errors (exit code 2): the sweep fails fast here instead of
// mid-replay.
func (s RunSpec) validate() error {
	if (s.App == "") == (s.Trace == nil) {
		return fmt.Errorf("pipeline: spec needs exactly one of App or Trace")
	}
	if s.Procs < 2 {
		return fmt.Errorf("pipeline: %d processors (need at least 2)", s.Procs)
	}
	if (s.Width > 0) != (s.Height > 0) {
		return fmt.Errorf("pipeline: mesh override needs both Width and Height")
	}
	if s.Width > 0 && s.Width*s.Height < s.Procs {
		return fmt.Errorf("pipeline: %dx%d mesh too small for %d processors", s.Width, s.Height, s.Procs)
	}
	if s.Topology != "" || s.Dims != nil {
		if s.Width > 0 && s.Topology != "mesh" {
			return cli.Usagef("pipeline: Width/Height override applies to the mesh topology only, not %q", s.Topology)
		}
		cfg, err := core.TopologyFor(s.Topology, s.Dims, s.Procs)
		if err != nil {
			return cli.Usagef("pipeline: %v", err)
		}
		if s.VirtualChannels > 0 {
			cfg.VirtualChannels = s.VirtualChannels
		}
		cfg.Routing = s.Routing
		if err := cfg.Validate(); err != nil {
			return cli.Usagef("pipeline: %v", err)
		}
	}
	if s.Collectives != "" {
		if _, err := mp.ParseAlgorithm(s.Collectives); err != nil {
			return cli.Usagef("pipeline: %v", err)
		}
	}
	return nil
}

// String renders the spec's canonical machine-configuration string: every
// result-affecting field except the trace content, in a fixed order. It is
// the exact byte sequence hashed into the cache key (after the salt), so
// its stability is a compatibility contract: zero-valued Topology/Dims
// render nothing, keeping keys from before the topology generalization
// valid.
func (s RunSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "app=%s|procs=%d|scale=%d|", s.App, s.Procs, s.Scale)
	fmt.Fprintf(&b, "cycle=%d|cache=%d|vcs=%d|mesh=%dx%d|barrier=%d|protocol=%d|routing=%d|",
		s.CycleTime, s.CacheBytes, s.VirtualChannels, s.Width, s.Height, s.Barrier, s.Protocol, s.Routing)
	fmt.Fprintf(&b, "faults=%s|faultseed=%d|sp2=%t|", s.Faults, s.FaultSeed, s.UseSP2)
	if s.Topology != "" {
		fmt.Fprintf(&b, "topo=%s|", s.Topology)
	}
	if len(s.Dims) > 0 {
		b.WriteString("dims=")
		for i, d := range s.Dims {
			if i > 0 {
				b.WriteByte('x')
			}
			fmt.Fprintf(&b, "%d", d)
		}
		b.WriteByte('|')
	}
	if s.Collectives != "" {
		fmt.Fprintf(&b, "coll=%s|", s.Collectives)
	}
	return b.String()
}

// Key returns the spec's content-addressed cache key: a hex SHA-256 over
// the canonical rendering (String) of every result-affecting field plus
// the code-version salt. Trace specs hash the full trace content.
func (s RunSpec) Key(salt string) (string, error) {
	if salt == "" {
		salt = DefaultSalt
	}
	h := sha256.New()
	fmt.Fprintf(h, "salt=%s|", salt)
	io.WriteString(h, s.String())
	if s.Trace != nil {
		io.WriteString(h, "trace=")
		if err := s.Trace.WriteCSV(h); err != nil {
			return "", fmt.Errorf("pipeline: hashing trace: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
