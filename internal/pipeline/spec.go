package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"commchar/internal/apps"
	"commchar/internal/ccnuma"
	"commchar/internal/mesh"
	"commchar/internal/sim"
	"commchar/internal/spasm"
	"commchar/internal/trace"
)

// DefaultSalt is the code-version component of every cache key. Bump it
// whenever a change to the simulators or the analysis alters what a spec
// produces, so stale on-disk artifacts invalidate themselves.
const DefaultSalt = "commchar-pipeline-v1"

// RunSpec names one characterization run: which application (or trace) to
// acquire, on how many processors, at what scale, and under which machine
// configuration. Two specs with equal canonical keys produce bit-identical
// artifacts, which is what makes the run cacheable and deduplicatable.
//
// Zero-valued override fields mean "package default"; the defaults are
// part of the key, so changing an override never aliases a cached run.
type RunSpec struct {
	// App names a workload of the suite (see internal/apps). Mutually
	// exclusive with Trace.
	App   string
	Procs int
	Scale apps.Scale

	// Name labels the run in reports; defaults to App (or "trace").
	Name string

	// Machine overrides. Zero values select the package defaults.
	CycleTime       sim.Duration          // mesh flit-cycle time
	CacheBytes      int                   // per-processor cache capacity
	VirtualChannels int                   // lanes per physical link
	Width, Height   int                   // mesh geometry (both or neither)
	Barrier         spasm.BarrierKind     // barrier algorithm (dynamic strategy)
	Protocol        ccnuma.Protocol       // coherence protocol (dynamic strategy)
	Routing         mesh.RoutingAlgorithm // mesh routing algorithm

	// Fault injection: a deterministic schedule (see internal/fault) and
	// its seed. Empty means a fault-free run.
	Faults    string
	FaultSeed uint64

	// Trace switches acquisition to trace replay: the trace is replayed
	// through the mesh instead of executing an application. The cache key
	// covers the full trace content.
	Trace *trace.Trace
	// UseSP2 charges IBM SP2 software overheads during trace replay.
	UseSP2 bool

	// Watchdog bounds the run (trace replay only). It is not part of the
	// cache key: a tripped watchdog fails the run, and failed runs are
	// never cached.
	Watchdog sim.Watchdog

	// Timeout bounds the run's wall time, overriding the engine's
	// SpecTimeout; 0 defers to the engine. Like Watchdog it is not part
	// of the cache key: a timed-out run fails, and failed runs are never
	// cached.
	Timeout time.Duration
}

// Label returns the run's display name.
func (s RunSpec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	if s.App != "" {
		return s.App
	}
	return "trace"
}

// validate rejects malformed specs before any simulation runs.
func (s RunSpec) validate() error {
	if (s.App == "") == (s.Trace == nil) {
		return fmt.Errorf("pipeline: spec needs exactly one of App or Trace")
	}
	if s.Procs < 2 {
		return fmt.Errorf("pipeline: %d processors (need at least 2)", s.Procs)
	}
	if (s.Width > 0) != (s.Height > 0) {
		return fmt.Errorf("pipeline: mesh override needs both Width and Height")
	}
	if s.Width > 0 && s.Width*s.Height < s.Procs {
		return fmt.Errorf("pipeline: %dx%d mesh too small for %d processors", s.Width, s.Height, s.Procs)
	}
	return nil
}

// Key returns the spec's content-addressed cache key: a hex SHA-256 over
// the canonical rendering of every result-affecting field plus the
// code-version salt. Trace specs hash the full trace content.
func (s RunSpec) Key(salt string) (string, error) {
	if salt == "" {
		salt = DefaultSalt
	}
	h := sha256.New()
	fmt.Fprintf(h, "salt=%s|app=%s|procs=%d|scale=%d|", salt, s.App, s.Procs, s.Scale)
	fmt.Fprintf(h, "cycle=%d|cache=%d|vcs=%d|mesh=%dx%d|barrier=%d|protocol=%d|routing=%d|",
		s.CycleTime, s.CacheBytes, s.VirtualChannels, s.Width, s.Height, s.Barrier, s.Protocol, s.Routing)
	fmt.Fprintf(h, "faults=%s|faultseed=%d|sp2=%t|", s.Faults, s.FaultSeed, s.UseSP2)
	if s.Trace != nil {
		io.WriteString(h, "trace=")
		if err := s.Trace.WriteCSV(h); err != nil {
			return "", fmt.Errorf("pipeline: hashing trace: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
