package pipeline

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// refRecover is the reference recovery semantics for arbitrary journal
// bytes: the longest prefix of complete, well-formed records wins; the
// first torn or malformed line (including a record-shaped line with no
// newline) ends the prefix.
func refRecover(data []byte) (keys map[string]struct{}, prefix int64) {
	keys = map[string]struct{}{}
	rest := data
	for {
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			return keys, prefix
		}
		line := strings.TrimRight(string(rest[:i]), "\r")
		if !isKeyLine(line) {
			return keys, prefix
		}
		keys[line] = struct{}{}
		prefix += int64(i) + 1
		rest = rest[i+1:]
	}
}

// FuzzJournalRecovery throws arbitrary bytes at the journal's resume
// path and asserts the recovery contract: OpenJournal never fails on
// damage, keeps exactly the longest valid prefix, truncates the file to
// it, and leaves the journal appendable — the torn-tail guarantee the
// distributed coordinator's restart/resume flow rests on.
func FuzzJournalRecovery(f *testing.F) {
	k0 := testKey(0)
	f.Add([]byte{})
	f.Add([]byte(k0 + "\n"))
	f.Add([]byte(k0 + "\n" + testKey(1) + "\n"))
	f.Add([]byte(k0 + "\n" + testKey(1)[:17]))     // torn tail
	f.Add([]byte(k0))                              // full key, no newline: torn
	f.Add([]byte(k0 + "\r\n"))                     // CRLF record
	f.Add([]byte(k0 + "\nnot a key\n" + k0 + "\n")) // damage mid-file
	f.Add([]byte(strings.ToUpper(k0) + "\n"))      // wrong case
	f.Add(bytes.Repeat([]byte{0xff}, 100_000))     // long binary garbage, no newline
	f.Add(append(bytes.Repeat([]byte{'a'}, 100_000), '\n')) // over-long "line"
	f.Add([]byte("\n\n\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "sweep.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path, true)
		if err != nil {
			t.Fatalf("OpenJournal must recover from any contents, got: %v", err)
		}
		want, prefix := refRecover(data)
		if j.Len() != len(want) {
			j.Close()
			t.Fatalf("recovered %d keys, want %d", j.Len(), len(want))
		}
		for k := range want {
			if !j.Done(k) {
				j.Close()
				t.Fatalf("key %s lost in recovery", k)
			}
		}
		if fi, err := os.Stat(path); err != nil {
			t.Fatal(err)
		} else if fi.Size() != prefix {
			j.Close()
			t.Fatalf("file is %d bytes after recovery, want prefix %d", fi.Size(), prefix)
		}

		// The healed journal must accept appends on a clean boundary and
		// survive a second resume with nothing lost.
		fresh := testKey(7)
		if err := j.Append(fresh); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(path, true)
		if err != nil {
			t.Fatalf("reopen after heal+append: %v", err)
		}
		defer j2.Close()
		if !j2.Done(fresh) {
			t.Fatal("appended key lost across reopen")
		}
		for k := range want {
			if !j2.Done(k) {
				t.Fatalf("recovered key %s lost across reopen", k)
			}
		}
		wantLen := len(want)
		if _, ok := want[fresh]; !ok {
			wantLen++
		}
		if j2.Len() != wantLen {
			t.Fatalf("reopened Len = %d, want %d", j2.Len(), wantLen)
		}
	})
}
