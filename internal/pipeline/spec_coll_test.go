package pipeline

import (
	"errors"
	"strings"
	"testing"

	"commchar/internal/apps"
	"commchar/internal/cli"
)

// TestSpecStringCollectives: the Collectives knob follows the same
// compatibility contract as Topology — the zero value renders nothing
// (pre-collectives specs keep their canonical bytes), every non-zero
// value is part of the string and the cache key.
func TestSpecStringCollectives(t *testing.T) {
	base := RunSpec{App: "MG", Procs: 8, Scale: apps.ScaleSmall}
	if s := base.String(); strings.Contains(s, "coll=") {
		t.Fatalf("zero-valued Collectives leaked into the spec string: %q", s)
	}
	baseKey, err := base.Key("")
	if err != nil {
		t.Fatal(err)
	}

	bin := base
	bin.Collectives = "binomial"
	if s := bin.String(); !strings.Contains(s, "coll=binomial|") {
		t.Fatalf("Collectives rendering drifted: %q", s)
	}
	binKey, err := bin.Key("")
	if err != nil {
		t.Fatal(err)
	}
	if binKey == baseKey {
		t.Fatal("Collectives not part of the cache key")
	}

	// "linear" is the explicit spelling of the default family: it is a
	// distinct spec string (and key) because the trace it produces tags
	// the same algorithm, but callers wanting the default should leave
	// the field empty.
	lin := base
	lin.Collectives = "linear"
	if s := lin.String(); !strings.Contains(s, "coll=linear|") {
		t.Fatalf("explicit linear rendering drifted: %q", s)
	}
}

func TestValidateRejectsUnknownCollectives(t *testing.T) {
	spec := RunSpec{App: "MG", Procs: 8, Collectives: "hypercubic"}
	err := spec.validate()
	if err == nil {
		t.Fatal("unknown collective family accepted")
	}
	var ue *cli.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("%v is not a usage error", err)
	}
	for _, ok := range []string{"", "linear", "binomial"} {
		spec.Collectives = ok
		if err := spec.validate(); err != nil {
			t.Fatalf("%q rejected: %v", ok, err)
		}
	}
}
