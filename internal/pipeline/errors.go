package pipeline

import (
	"errors"
	"fmt"
)

// SpecError is the typed per-spec failure: one run of the sweep that did
// not produce an artifact, after panic recovery and retries. Under the
// continue policy it is what the sweep reports for the lost spec while
// every other spec's artifact survives.
type SpecError struct {
	Spec RunSpec
	Key  string
	// Attempts is how many times the stages ran before giving up.
	Attempts int
	Err      error
}

func (e *SpecError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("pipeline: %s: after %d attempts: %v", e.Spec.Label(), e.Attempts, e.Err)
	}
	return fmt.Sprintf("pipeline: %s: %v", e.Spec.Label(), e.Err)
}

func (e *SpecError) Unwrap() error { return e.Err }

// DegradedError reports a sweep that completed under the continue policy
// with partial success: some specs produced artifacts, some failed. It
// implements the Degraded marker the CLI harness maps to its own exit
// code, distinguishing a degraded run from a clean one and from a total
// failure.
type DegradedError struct {
	Failed, Total int
	Err           error // the joined per-spec failures
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("%d of %d runs failed: %v", e.Failed, e.Total, e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }

// Degraded marks the sweep as partially successful (see cli.ExitCode).
func (e *DegradedError) Degraded() bool { return true }

// OnError is the sweep-level failure policy of RunAll.
type OnError int

const (
	// OnErrorContinue runs every spec regardless of failures and reports
	// the losses afterwards (a *DegradedError when any spec succeeded).
	// It is the default: one crashing spec costs only that spec.
	OnErrorContinue OnError = iota
	// OnErrorFail cancels the remaining specs at the first failure.
	OnErrorFail
)

func (p OnError) String() string {
	if p == OnErrorFail {
		return "fail"
	}
	return "continue"
}

// ParseOnError maps the -on-error flag values onto the policy.
func ParseOnError(s string) (OnError, error) {
	switch s {
	case "continue":
		return OnErrorContinue, nil
	case "fail":
		return OnErrorFail, nil
	}
	return OnErrorContinue, errors.New(`on-error policy must be "fail" or "continue"`)
}
