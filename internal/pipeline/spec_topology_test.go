package pipeline

import (
	"errors"
	"strings"
	"testing"

	"commchar/internal/apps"
	"commchar/internal/cli"
)

// TestSpecStringLegacyGolden pins the exact canonical bytes of a spec that
// predates the topology generalization. This string is hashed into every
// cache key and journal entry, so any drift silently invalidates every
// on-disk artifact: the golden value is a compatibility contract, not a
// snapshot to regenerate.
func TestSpecStringLegacyGolden(t *testing.T) {
	spec := RunSpec{App: "IS", Procs: 8, Scale: apps.ScaleSmall, Width: 4, Height: 2, VirtualChannels: 1}
	const want = "app=IS|procs=8|scale=0|cycle=0|cache=0|vcs=1|mesh=4x2|barrier=0|protocol=0|routing=0|faults=|faultseed=0|sp2=false|"
	if got := spec.String(); got != want {
		t.Fatalf("legacy spec string drifted:\n got %q\nwant %q", got, want)
	}
	// Zero-valued Topology/Dims must render nothing at all.
	if s := spec.String(); strings.Contains(s, "topo=") || strings.Contains(s, "dims=") {
		t.Fatalf("zero-valued topology leaked into the spec string: %q", s)
	}
}

// TestKeyStableForDefaultTopology: the cache key of a default-topology
// spec is byte-identical whether the Topology/Dims fields exist unset or
// the spec was built by a pre-topology caller — and every non-zero value
// changes it.
func TestKeyStableForDefaultTopology(t *testing.T) {
	base := RunSpec{App: "IS", Procs: 8, Scale: apps.ScaleSmall}
	baseKey, err := base.Key("")
	if err != nil {
		t.Fatal(err)
	}

	explicit := base
	explicit.Topology = ""
	explicit.Dims = nil
	if k, _ := explicit.Key(""); k != baseKey {
		t.Fatal("explicitly zeroed topology fields changed the key")
	}

	topo := base
	topo.Topology = "torus3d"
	topoKey, err := topo.Key("")
	if err != nil {
		t.Fatal(err)
	}
	if topoKey == baseKey {
		t.Fatal("Topology not part of the cache key")
	}

	dims := topo
	dims.Dims = []int{3, 3, 3}
	dimsKey, err := dims.Key("")
	if err != nil {
		t.Fatal(err)
	}
	if dimsKey == topoKey {
		t.Fatal("Dims not part of the cache key")
	}
	if !strings.Contains(dims.String(), "topo=torus3d|dims=3x3x3|") {
		t.Fatalf("topology rendering drifted: %q", dims.String())
	}
}

// TestValidateFailsFastOnTopologyInvalidSpecs: a spec naming an unknown
// fabric, a shape too small for its processors, or a lane count below the
// fabric's deadlock-freedom floor is rejected as a usage error (exit code
// 2) before any simulation state exists.
func TestValidateFailsFastOnTopologyInvalidSpecs(t *testing.T) {
	cases := map[string]RunSpec{
		"unknown fabric": {App: "IS", Procs: 8, Topology: "nosuch"},
		"torus one lane": {App: "IS", Procs: 8, Topology: "torus", VirtualChannels: 1},
		"hypercube too small": {App: "IS", Procs: 16, Topology: "hypercube",
			Dims: []int{3}},
		"fattree bad dims": {App: "IS", Procs: 8, Topology: "fattree",
			Dims: []int{4}},
		"dragonfly one lane": {App: "IS", Procs: 8, Topology: "dragonfly",
			VirtualChannels: 1},
		"width override off-mesh": {App: "IS", Procs: 8, Topology: "torus3d",
			Width: 4, Height: 2},
	}
	for name, spec := range cases {
		err := spec.validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		var ue *cli.UsageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: %v is not a usage error", name, err)
		}
	}

	// The same shapes sized correctly pass.
	good := []RunSpec{
		{App: "IS", Procs: 8, Topology: "torus3d"},
		{App: "IS", Procs: 16, Topology: "hypercube", Dims: []int{4}},
		{App: "IS", Procs: 8, Topology: "fattree", Dims: []int{4, 2}},
		{App: "IS", Procs: 8, Topology: "dragonfly"},
	}
	for _, spec := range good {
		if err := spec.validate(); err != nil {
			t.Errorf("%+v rejected: %v", spec, err)
		}
	}
}
