package pipeline

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"commchar/internal/apps"
	"commchar/internal/obs"
)

// fakeObserver builds an observer on a deterministic clock, as the
// golden-export and integration tests use it.
func fakeObserver() *obs.Observer {
	return obs.NewObserver(obs.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), time.Millisecond))
}

// TestEngineInstrumentation runs one spec twice through an observed
// stub engine and asserts the full observability surface: spans for
// every stage, a memory-hit instant on the repeat, progress states,
// exported counters, and the simulated-time message timeline.
func TestEngineInstrumentation(t *testing.T) {
	ob := fakeObserver()
	e, calls := stubEngine(t, Options{Parallel: 1, Obs: ob})
	spec := RunSpec{App: "IS", Procs: 8, Scale: apps.ScaleSmall}
	if _, err := e.Run(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(spec); err != nil {
		t.Fatal(err)
	}
	if *calls != 1 {
		t.Fatalf("stages ran %d times, want 1 (second run is a memory hit)", *calls)
	}

	events := ob.Tracer.Events()
	var names []string
	byName := map[string]obs.TraceEvent{}
	for _, ev := range events {
		names = append(names, ev.Name)
		byName[ev.Name] = ev
	}
	for _, want := range []string{"queued", "analyze", "run IS", "memory-hit"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("no %q event in trace; got %v", want, names)
		}
	}
	// The stub bypasses acquire/replay, but the synthetic delivery log
	// must still render as simulated-time slices on its own process.
	simSlices := 0
	for _, ev := range events {
		if strings.HasPrefix(ev.Process, "sim IS#") && ev.Phase == 'X' {
			simSlices++
		}
	}
	if simSlices == 0 {
		t.Error("no simulated-time message slices in the trace")
	}
	if run := byName["run IS"]; run.Args["attempts"] != "1" {
		t.Errorf("run span attempts = %q, want 1", run.Args["attempts"])
	}

	done, failed, total := ob.Progress.Counts()
	if done != 1 || failed != 0 || total != 1 {
		t.Errorf("progress counts = (%d,%d,%d), want (1,0,1)", done, failed, total)
	}
	snap := ob.Progress.Snapshot()
	if len(snap) != 1 || snap[0].Source != string(SourceMemory) {
		// The second run completed last, so the terminal source is the
		// memory cache.
		t.Errorf("progress snapshot = %+v", snap)
	}

	var prom bytes.Buffer
	if err := ob.Registry.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"commchar_pipeline_runs_total 1",
		"commchar_pipeline_cache_hits_memory_total 1",
		"commchar_pipeline_analyze_seconds_count 1",
		"commchar_build_info",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if ob.Events.Total() == 0 {
		t.Error("flight recorder saw no events")
	}
}

// TestObservedFailureIsTracked pins the failure path: a failing spec
// must surface in progress as failed with its error, and in the flight
// recorder.
func TestObservedFailureIsTracked(t *testing.T) {
	ob := fakeObserver()
	e, err := New(Options{Parallel: 1, Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	e.runStages = func(ctx context.Context, spec RunSpec, track string) (*stageResult, error) {
		return nil, errors.New("synthetic stage failure")
	}
	spec := RunSpec{App: "IS", Procs: 8, Scale: apps.ScaleSmall}
	if _, err := e.Run(spec); err == nil {
		t.Fatal("expected failure")
	}
	done, failed, total := ob.Progress.Counts()
	if done != 0 || failed != 1 || total != 1 {
		t.Fatalf("progress counts = (%d,%d,%d), want (0,1,1)", done, failed, total)
	}
	snap := ob.Progress.Snapshot()
	if !strings.Contains(snap[0].Err, "synthetic stage failure") {
		t.Errorf("progress error = %q", snap[0].Err)
	}
	found := false
	for _, ev := range ob.Events.Recent() {
		if ev.Name == "spec.failed" {
			found = true
		}
	}
	if !found {
		t.Error("no spec.failed event in the flight recorder")
	}
}

// TestUnobservedEngineUnchanged pins the nil-observer contract at the
// engine level: no observer means no clock reads beyond the system shim
// and artifacts identical to an observed engine's.
func TestUnobservedEngineUnchanged(t *testing.T) {
	plain, _ := stubEngine(t, Options{Parallel: 1})
	seen, _ := stubEngine(t, Options{Parallel: 1, Obs: fakeObserver()})
	spec := RunSpec{App: "IS", Procs: 8, Scale: apps.ScaleSmall}
	a, err := plain.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := seen.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key != b.Key {
		t.Fatalf("keys differ: %s vs %s", a.Key, b.Key)
	}
	if len(a.C.Log) != len(b.C.Log) || a.C.Messages != b.C.Messages {
		t.Error("observed and unobserved runs produced different characterizations")
	}
}
