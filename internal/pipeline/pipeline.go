// Package pipeline is the concurrent, cache-backed run engine behind the
// experiment harness and the cmd/ tools. A RunSpec — application (or
// trace), processor count, scale, machine configuration, fault schedule —
// flows through the methodology's composable stages:
//
//	acquire  execute the application (dynamic strategy) or obtain its
//	         application-level trace (static strategy);
//	log      replay the trace through the mesh, recording deliveries;
//	analyze  run the core characterization over the network log.
//
// The engine schedules independent specs across a bounded worker pool,
// deduplicates concurrent requests for the same spec (singleflight), and
// backs its in-memory artifact cache with an optional content-addressed
// on-disk cache, so repeated invocations skip simulation entirely.
//
// Every run owns its simulator, machine, RNG streams, and log; parallel
// execution is therefore bit-for-bit identical to sequential execution (a
// property the experiments test suite enforces).
package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"commchar/internal/apps"
	"commchar/internal/ccnuma"
	"commchar/internal/core"
	"commchar/internal/fault"
	"commchar/internal/mesh"
	"commchar/internal/mp"
	"commchar/internal/sp2"
	"commchar/internal/spasm"
	"commchar/internal/trace"
)

// Source says where an artifact came from.
type Source string

const (
	// SourceRun is a freshly executed simulation.
	SourceRun Source = "run"
	// SourceMemory is the engine's in-memory artifact cache.
	SourceMemory Source = "memory"
	// SourceDisk is the content-addressed on-disk cache.
	SourceDisk Source = "disk"
)

// Artifact is the pipeline's product for one spec: the characterization
// plus the machine-level observations the experiments draw on.
type Artifact struct {
	Spec RunSpec
	Key  string
	C    *core.Characterization

	// MemStats are the coherence-protocol counters (dynamic strategy).
	MemStats *ccnuma.Stats
	// Profiles are the per-processor execution profiles (dynamic strategy).
	Profiles []spasm.Profile
	// Failures are per-message delivery failures of fault-injected runs.
	Failures []string
	// FaultCounters are the injector's event counts (fault-injected runs).
	FaultCounters fault.Counters

	Source Source
}

// stageResult is what the acquisition stages hand to analyze.
type stageResult struct {
	raw           *core.RawRun
	memStats      *ccnuma.Stats
	profiles      []spasm.Profile
	faultCounters fault.Counters
}

// Options configures an engine.
type Options struct {
	// Parallel bounds concurrent simulation runs; <= 0 means
	// runtime.GOMAXPROCS(0).
	Parallel int
	// CacheDir enables the content-addressed on-disk cache. Empty
	// disables it.
	CacheDir string
	// Salt is the cache-key code-version salt; empty means DefaultSalt.
	Salt string
	// Metrics, when non-nil, receives this engine's counters (so several
	// engines can share one summary). Nil allocates a fresh set.
	Metrics *Metrics
}

// Engine runs specs through the stages with caching, deduplication, and a
// bounded worker pool. It is safe for concurrent use.
type Engine struct {
	parallel int
	salt     string
	disk     *diskCache
	metrics  *Metrics
	sem      chan struct{}

	mu       sync.Mutex
	mem      map[string]*Artifact
	inflight map[string]*call

	// runStages is the acquisition seam; tests substitute synthetic runs.
	runStages func(RunSpec) (*stageResult, error)
}

type call struct {
	done chan struct{}
	art  *Artifact
	err  error
}

// New builds an engine. It fails only if the cache directory cannot be
// created.
func New(opts Options) (*Engine, error) {
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	salt := opts.Salt
	if salt == "" {
		salt = DefaultSalt
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = &Metrics{}
	}
	e := &Engine{
		parallel: parallel,
		salt:     salt,
		metrics:  metrics,
		sem:      make(chan struct{}, parallel),
		mem:      map[string]*Artifact{},
		inflight: map[string]*call{},
	}
	e.runStages = e.acquire
	if opts.CacheDir != "" {
		d, err := newDiskCache(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		e.disk = d
	}
	return e, nil
}

// NewDefault builds an engine with default options (GOMAXPROCS workers, no
// disk cache). It cannot fail.
func NewDefault() *Engine {
	e, err := New(Options{})
	if err != nil {
		panic(err) // unreachable: no cache dir to create
	}
	return e
}

// Metrics returns the engine's counters.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Run characterizes one spec, serving it from cache when possible and
// joining an identical in-flight run instead of duplicating it.
func (e *Engine) Run(spec RunSpec) (*Artifact, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	key, err := spec.Key(e.salt)
	if err != nil {
		return nil, err
	}

	e.mu.Lock()
	if a := e.mem[key]; a != nil {
		e.mu.Unlock()
		e.metrics.MemoryHits.Add(1)
		return a, nil
	}
	if c := e.inflight[key]; c != nil {
		e.mu.Unlock()
		e.metrics.DedupHits.Add(1)
		<-c.done
		return c.art, c.err
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	art, err := e.execute(spec, key)

	e.mu.Lock()
	delete(e.inflight, key)
	if err == nil {
		e.mem[key] = art
	}
	e.mu.Unlock()

	c.art, c.err = art, err
	close(c.done)
	return art, err
}

// RunAll characterizes every spec concurrently (bounded by the worker
// pool) and returns the artifacts in spec order. Errors are joined; the
// artifact slot of a failed spec is nil.
func (e *Engine) RunAll(specs ...RunSpec) ([]*Artifact, error) {
	arts := make([]*Artifact, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec RunSpec) {
			defer wg.Done()
			art, err := e.Run(spec)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", spec.label(), err)
				return
			}
			arts[i] = art
		}(i, spec)
	}
	wg.Wait()
	return arts, errors.Join(errs...)
}

// execute produces the artifact for a spec the caches cannot serve.
func (e *Engine) execute(spec RunSpec, key string) (*Artifact, error) {
	if e.disk != nil {
		if art, ok := e.disk.load(key, spec); ok {
			e.metrics.DiskHits.Add(1)
			return art, nil
		}
	}

	e.sem <- struct{}{}
	res, err := e.runStages(spec)
	<-e.sem
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", spec.label(), err)
	}

	strategy := core.StrategyStatic
	if res.raw.Trace == nil {
		strategy = core.StrategyDynamic
	}
	start := time.Now()
	c, err := res.raw.Characterize(spec.label(), strategy)
	e.metrics.AnalyzeNS.Add(int64(time.Since(start)))
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", spec.label(), err)
	}

	e.metrics.Runs.Add(1)
	e.metrics.SimEvents.Add(res.raw.Events)
	e.metrics.SimTimeNS.Add(int64(res.raw.Elapsed))
	var faulted, failed int64
	for _, d := range res.raw.Log {
		if d.Faults != 0 {
			faulted++
		}
		if d.Status != mesh.StatusDelivered {
			failed++
		}
	}
	e.metrics.Faulted.Add(faulted)
	e.metrics.Failed.Add(failed)

	failures := make([]string, 0, len(res.raw.Failures))
	for _, err := range res.raw.Failures {
		failures = append(failures, err.Error())
	}
	art := &Artifact{
		Spec:          spec,
		Key:           key,
		C:             c,
		MemStats:      res.memStats,
		Profiles:      res.profiles,
		Failures:      failures,
		FaultCounters: res.faultCounters,
		Source:        SourceRun,
	}
	if e.disk != nil {
		if err := e.disk.store(key, art); err != nil {
			e.metrics.DiskStoreErrors.Add(1)
		}
	}
	return art, nil
}

// meshConfig builds the run's mesh configuration from the spec overrides.
func (e *Engine) meshConfig(spec RunSpec) mesh.Config {
	cfg := core.MeshFor(spec.Procs)
	if spec.Width > 0 {
		cfg = mesh.DefaultConfig(spec.Width, spec.Height)
	}
	if spec.CycleTime > 0 {
		cfg.CycleTime = spec.CycleTime
	}
	if spec.VirtualChannels > 0 {
		cfg.VirtualChannels = spec.VirtualChannels
	}
	cfg.Routing = spec.Routing
	return cfg
}

// faultSchedule parses the spec's fault schedule; every run gets its own
// (schedules carry RNG state, so they must never be shared across runs).
func (e *Engine) faultSchedule(spec RunSpec) (*fault.Schedule, error) {
	if spec.Faults == "" {
		return nil, nil
	}
	return fault.Parse(spec.Faults, spec.FaultSeed)
}

// acquire is the real acquisition path: run the application (or replay the
// given trace) and collect the raw network log.
func (e *Engine) acquire(spec RunSpec) (*stageResult, error) {
	if spec.Trace != nil {
		return e.acquireReplay(spec)
	}
	wl, err := apps.ByName(spec.Scale, spec.App)
	if err != nil {
		return nil, err
	}
	if wl.Strategy == core.StrategyDynamic {
		return e.acquireDynamic(spec)
	}
	return e.acquireStatic(spec)
}

// acquireDynamic executes a shared-memory application on a machine built
// from the spec (execution-driven strategy).
func (e *Engine) acquireDynamic(spec RunSpec) (*stageResult, error) {
	cfg := spasm.DefaultConfig(spec.Procs)
	cfg.Mesh = e.meshConfig(spec)
	cfg.Barrier = spec.Barrier
	cfg.Memory.Protocol = spec.Protocol
	if spec.CacheBytes > 0 {
		cfg.Memory.CacheBytes = spec.CacheBytes
	}
	sched, err := e.faultSchedule(spec)
	if err != nil {
		return nil, err
	}
	m := spasm.New(cfg)
	if sched != nil {
		m.Net.SetFaults(sched)
	}
	start := time.Now()
	raw, err := core.AcquireSharedMemoryOn(m, func(m *spasm.Machine) error {
		return apps.RunSharedMemoryOn(m, spec.Scale, spec.App)
	})
	e.metrics.AcquireNS.Add(int64(time.Since(start)))
	if err != nil {
		return nil, err
	}
	res := &stageResult{raw: raw, profiles: m.Profiles()}
	st := m.Mem.Stats()
	res.memStats = &st
	if sched != nil {
		res.faultCounters = sched.Counters()
	}
	return res, nil
}

// acquireStatic executes a message-passing application natively to record
// its trace, then replays the trace through the mesh (trace-driven
// strategy).
func (e *Engine) acquireStatic(spec RunSpec) (*stageResult, error) {
	start := time.Now()
	tr, err := core.AcquireMessagePassing(spec.Procs, func(w *mp.World) error {
		return apps.RunMessagePassingOn(w, spec.Scale, spec.App, spec.Procs)
	})
	e.metrics.AcquireNS.Add(int64(time.Since(start)))
	if err != nil {
		return nil, err
	}
	return e.replay(spec, tr, sp2.Default())
}

// acquireReplay is the acquisition path of an externally supplied trace
// (meshsim): the acquire stage is the trace itself; only the log stage
// runs.
func (e *Engine) acquireReplay(spec RunSpec) (*stageResult, error) {
	var cost trace.CostModel
	if spec.UseSP2 {
		cost = sp2.Default()
	}
	return e.replay(spec, spec.Trace, cost)
}

// replay is the shared log stage: drive the trace through the mesh.
func (e *Engine) replay(spec RunSpec, tr *trace.Trace, cost trace.CostModel) (*stageResult, error) {
	sched, err := e.faultSchedule(spec)
	if err != nil {
		return nil, err
	}
	var inj mesh.Injector
	if sched != nil {
		inj = sched
	}
	start := time.Now()
	raw, err := core.ReplayTrace(tr, e.meshConfig(spec), cost, inj, spec.Watchdog)
	e.metrics.ReplayNS.Add(int64(time.Since(start)))
	if err != nil {
		return nil, err
	}
	res := &stageResult{raw: raw}
	if sched != nil {
		res.faultCounters = sched.Counters()
	}
	return res, nil
}
